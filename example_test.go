package hls_test

import (
	"fmt"
	"log"

	hls "repro"
)

// ExampleSynthesizeSource synthesizes a small behavior and prints its
// cost structure.
func ExampleSynthesizeSource() {
	d, err := hls.SynthesizeSource(`
design ex
input a, b
s = a + b
p = s * b
`, hls.Config{CS: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ALUs:", d.Datapath.ALUSummary())
	fmt.Println("steps:", d.Schedule.CS)
	vals, _ := d.Simulate(map[string]int64{"a": 2, "b": 3})
	fmt.Println("p =", vals["p"])
	// Output:
	// ALUs: (*); (+)
	// steps: 2
	// p = 15
}

// ExampleScheduleGraph runs resource-constrained MFS on a programmatic
// graph.
func ExampleScheduleGraph() {
	g := hls.NewGraph("rc")
	if err := g.AddInput("a"); err != nil {
		log.Fatal(err)
	}
	if _, err := g.AddOp("x", hls.Mul, "a", "a"); err != nil {
		log.Fatal(err)
	}
	if _, err := g.AddOp("y", hls.Mul, "a", "a"); err != nil {
		log.Fatal(err)
	}
	if _, err := g.AddOp("z", hls.Add, "x", "y"); err != nil {
		log.Fatal(err)
	}
	d, err := hls.ScheduleGraph(g, hls.Config{Limits: map[string]int{"*": 1, "+": 1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("steps with one multiplier:", d.Schedule.CS)
	// Output:
	// steps with one multiplier: 3
}

// ExampleParseBehavior shows the conditional/mutual-exclusion surface.
func ExampleParseBehavior() {
	g, _, err := hls.ParseBehavior(`
design cond
input a, b
if a < b {
    lo = a + 1
} else {
    hi = b - 1
}
`)
	if err != nil {
		log.Fatal(err)
	}
	lo, _ := g.Lookup("lo")
	hi, _ := g.Lookup("hi")
	fmt.Println("exclusive:", g.MutuallyExclusive(lo.ID, hi.ID))
	// Output:
	// exclusive: true
}
