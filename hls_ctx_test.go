// Cancellation and resource-guard tests for the public facade: a
// cancelled or expired context must surface promptly (the issue's bar is
// 100ms) with ctx.Err() and no partial results, a never-cancelled
// context must change nothing about the results, and degenerate inputs
// must be rejected with the typed guard errors instead of hanging.
// These run under `go test -race ./...` as part of the tier-1 verify
// path, so the cancellation paths are also race-checked.
package hls_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	hls "repro"
	"repro/internal/benchmarks"
	"repro/internal/gen"
)

// benchGraphs returns all six paper benchmarks — the grid the issue's
// acceptance criterion names.
func benchGraphs() []*hls.Graph {
	var gs []*hls.Graph
	for _, ex := range benchmarks.All() {
		gs = append(gs, ex.Graph)
	}
	return gs
}

func TestSweepGraphsCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	points, err := hls.SweepGraphsCtx(ctx, benchGraphs(), hls.Config{}, 1, 21)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("pre-cancelled sweep took %v, want < 100ms", d)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if points != nil {
		t.Fatalf("cancelled sweep returned partial results: %v", points)
	}
}

func TestSweepGraphsCtxMidFlightCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		points [][]hls.SweepPoint
		err    error
	}
	done := make(chan result, 1)
	go func() {
		// The range must reach EWF's 17-cycle critical path: a range no
		// graph can meet is now a typed *hls.RangeError before any work
		// starts, which would win the race against the cancel below.
		p, err := hls.SweepGraphsCtx(ctx, benchGraphs(), hls.Config{}, 1, 21)
		done <- result{p, err}
	}()
	// Let the sweep get airborne, then pull the plug.
	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case r := <-done:
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("sweep returned %v after cancel, want < 100ms", d)
		}
		// The sweep may have finished legitimately before the cancel
		// landed; only a cancelled run must surface ctx.Err().
		if r.err != nil && !errors.Is(r.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled or nil", r.err)
		}
		if r.err != nil && r.points != nil {
			t.Fatal("cancelled sweep returned partial results alongside its error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep never returned after cancellation")
	}
}

func TestSweepCtxBackgroundMatchesSweep(t *testing.T) {
	ex := benchmarks.Diffeq()
	want, err := hls.Sweep(ex.Graph, hls.Config{}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hls.SweepCtx(context.Background(), ex.Graph, hls.Config{}, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SweepCtx(Background) differs from Sweep:\n got %+v\nwant %+v", got, want)
	}
}

func TestConfigTimeoutExpires(t *testing.T) {
	ex := benchmarks.Diffeq()
	start := time.Now()
	_, err := hls.Sweep(ex.Graph, hls.Config{Timeout: time.Nanosecond}, 1, 64)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("expired sweep took %v, want < 100ms", d)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestMaxNodesGuard(t *testing.T) {
	ex := benchmarks.Diffeq()
	_, err := hls.Synthesize(ex.Graph, hls.Config{MaxNodes: 2, CS: 4})
	var le *hls.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *hls.LimitError", err)
	}
	if le.What != "graph nodes" || le.Max != 2 {
		t.Fatalf("unexpected limit error: %+v", le)
	}
}

func TestMaxCStepsGuard(t *testing.T) {
	ex := benchmarks.Diffeq()
	_, err := hls.ScheduleGraph(ex.Graph, hls.Config{CS: hls.DefaultMaxCSteps + 1})
	var le *hls.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *hls.LimitError", err)
	}
	// A negative knob disables the cap (the caller owns the risk).
	if _, err := hls.ScheduleGraph(ex.Graph, hls.Config{CS: 6, MaxCSteps: -1}); err != nil {
		t.Fatalf("disabled cap rejected a legal run: %v", err)
	}
}

func TestBadSweepRange(t *testing.T) {
	ex := benchmarks.Diffeq()
	for _, r := range [][2]int{{0, 4}, {5, 4}, {-3, -1}} {
		_, err := hls.Sweep(ex.Graph, hls.Config{}, r[0], r[1])
		var re *hls.RangeError
		if !errors.As(err, &re) {
			t.Fatalf("Sweep(%d, %d) err = %v, want *hls.RangeError", r[0], r[1], err)
		}
	}
	_, err := hls.Sweep(ex.Graph, hls.Config{}, 1, hls.DefaultMaxCSteps+1)
	var le *hls.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("oversized sweep err = %v, want *hls.LimitError", err)
	}
}

// TestSynthesizeCtx100kNodeCancel pins the cancellation bar at the top
// of the engine's supported size range: mid-flight cancellation of a
// 100k-node synthesis — the guard.DefaultMaxNodes ceiling — must
// surface within 100ms, same as the small-graph tests above. Large
// runs use Config.NoTrace, matching the batch-mode recipe the scale
// ladder and README document.
func TestSynthesizeCtx100kNodeCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node graph build")
	}
	g, err := gen.Generate(gen.Config{Nodes: 100_000, Seed: 5, MulCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := hls.Config{CS: g.CriticalPathCycles() + 4, NoTrace: true}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := hls.SynthesizeCtx(ctx, g, cfg)
		done <- err
	}()
	// Let the run get deep into scheduling before pulling the plug: a
	// 100k-node synthesis takes tens of seconds, so 250ms lands the
	// cancel mid-flight with enormous margin against an early finish.
	time.Sleep(250 * time.Millisecond)
	// The 100ms bar is for normal builds; race instrumentation slows the
	// longest poll-free stretch (frame/priority setup) about tenfold.
	budget := 100 * time.Millisecond
	if raceEnabled {
		budget = time.Second
	}
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if d := time.Since(start); d > budget {
			t.Fatalf("synthesis returned %v after cancel, want < %v", d, budget)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("synthesis never returned after cancellation")
	}
}

func TestSynthesizeCtxPreCancelled(t *testing.T) {
	ex := benchmarks.Diffeq()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := hls.SynthesizeCtx(ctx, ex.Graph, hls.Config{CS: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SynthesizeCtx err = %v, want context.Canceled", err)
	}
	if _, err := hls.ScheduleGraphCtx(ctx, ex.Graph, hls.Config{CS: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScheduleGraphCtx err = %v, want context.Canceled", err)
	}
	if _, err := hls.SynthesizeSourceCtx(ctx, "design d\ninput a\nx = a + a\n", hls.Config{CS: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SynthesizeSourceCtx err = %v, want context.Canceled", err)
	}
}
