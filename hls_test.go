package hls_test

import (
	"strings"
	"testing"

	hls "repro"
)

const quick = `
design quick
input a, b, c
s = a + b
p = s * c
`

func TestFacadeSynthesizeSource(t *testing.T) {
	d, err := hls.SynthesizeSource(quick, hls.Config{CS: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cost.Total <= 0 {
		t.Error("no cost")
	}
	net, err := d.Netlist()
	if err != nil || !strings.Contains(net, "module quick") {
		t.Errorf("netlist err=%v", err)
	}
	vals, err := d.Simulate(map[string]int64{"a": 1, "b": 2, "c": 3})
	if err != nil || vals["p"] != 9 {
		t.Errorf("p = %d, err=%v", vals["p"], err)
	}
}

func TestFacadeGraphBuilding(t *testing.T) {
	g := hls.NewGraph("manual")
	if err := g.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	x, err := g.AddOp("x", hls.Add, "a", "a")
	if err != nil {
		t.Fatal(err)
	}
	y, err := g.AddOp("y", hls.Mul, "x", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetCycles(y, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Tag(x, hls.CondTag{Cond: 1, Branch: 0}); err != nil {
		t.Fatal(err)
	}
	d, err := hls.ScheduleGraph(g, hls.Config{CS: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SelfCheck(3); err != nil {
		t.Error(err)
	}
	// Resource-constrained mode.
	d2, err := hls.ScheduleGraph(g, hls.Config{Limits: map[string]int{"+": 1, "*": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Schedule.CS < 3 {
		t.Errorf("resource-constrained CS = %d", d2.Schedule.CS)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g, _, err := hls.ParseBehavior(quick)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hls.ForceDirected(g, 3); err != nil {
		t.Error(err)
	}
	if _, err := hls.ListSchedule(g, map[string]int{"+": 1, "*": 1}); err != nil {
		t.Error(err)
	}
	if _, err := hls.ASAPSchedule(g); err != nil {
		t.Error(err)
	}
}

func TestFacadeLibrary(t *testing.T) {
	lib := hls.NCRLibrary()
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
	alu := hls.ComposeALU(hls.Add, hls.Sub)
	if !alu.Can(hls.Add) || !alu.Can(hls.Sub) {
		t.Error("composed ALU broken")
	}
	g, _, err := hls.ParseBehavior(quick)
	if err != nil {
		t.Fatal(err)
	}
	d, err := hls.Synthesize(g, hls.Config{CS: 3, Lib: lib, Style: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SelfCheck(2); err != nil {
		t.Error(err)
	}
}

func TestFacadeRandomInputs(t *testing.T) {
	g, _, err := hls.ParseBehavior(quick)
	if err != nil {
		t.Fatal(err)
	}
	in := hls.RandomInputs(g, 1)
	if len(in) != 3 {
		t.Errorf("inputs = %v", in)
	}
}

func TestFacadeScheduleSourceLoops(t *testing.T) {
	src := `
design l
input x
loop acc cycles 2 binds v = x yields r {
    r = v + 1
}
out = acc * x
`
	d, err := hls.ScheduleSource(src, hls.Config{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := d.Simulate(map[string]int64{"x": 6})
	if err != nil {
		t.Fatal(err)
	}
	if vals["out"] != 42 {
		t.Errorf("out = %d", vals["out"])
	}
}

func TestFacadeAllocate(t *testing.T) {
	g, _, err := hls.ParseBehavior(quick)
	if err != nil {
		t.Fatal(err)
	}
	s, err := hls.ForceDirected(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := hls.Allocate(s, hls.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cost.Total <= 0 || d.Controller == nil {
		t.Fatalf("incomplete allocation: %+v", d.Cost)
	}
	if err := d.SelfCheck(3); err != nil {
		t.Error(err)
	}
	// Steps stay put.
	for _, n := range g.Nodes() {
		if d.Schedule.Placements[n.ID].Step != s.Placements[n.ID].Step {
			t.Errorf("node %q moved", n.Name)
		}
	}
}

func TestFacadeSweep(t *testing.T) {
	g, _, err := hls.ParseBehavior(quick)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := hls.Sweep(g, hls.Config{}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || !pts[0].Pareto {
		t.Errorf("sweep = %+v", pts)
	}
}

func TestFacadeCertify(t *testing.T) {
	d, err := hls.SynthesizeSource(quick, hls.Config{CS: 3})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := d.Certify()
	if err != nil {
		t.Fatal(err)
	}
	if cert.Status != "certified" || len(cert.Outputs) == 0 {
		t.Errorf("certificate = %+v", cert)
	}

	// Seed a corruption through the façade's mutation registry and
	// require the refutation to carry a concrete counterexample.
	if got := len(hls.Mutations()); got < 5 {
		t.Fatalf("%d mutations exposed, want >= 5", got)
	}
	u := d.LintUnit()
	if err := hls.ApplyMutation(u, "drop-register"); err != nil {
		t.Fatalf("drop-register: %v", err)
	}
	cert, err = hls.Certify(u)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Status != "refuted" {
		t.Errorf("mutated certificate status = %q, want refuted", cert.Status)
	}
	var cx *hls.Counterexample
	for _, dg := range cert.Diagnostics {
		if dg.Counterexample != nil {
			cx = dg.Counterexample
		}
	}
	if cx == nil {
		t.Errorf("refutation carries no counterexample: %+v", cert.Diagnostics)
	}
}
