// Package hls is a high-level synthesis library implementing Move Frame
// Scheduling (MFS) and Move Frame Scheduling-Allocation (MFSA) from
// Nourani and Papachristou, "Move Frame Scheduling and Mixed
// Scheduling-Allocation for the Automated Synthesis of Digital Systems"
// (DAC 1992), together with the substrates a real synthesis flow needs:
// a behavioral input language, ASAP/ALAP analysis, a cell-library cost
// model, RTL datapath construction with multiplexer and register
// optimization, FSM controller generation, structural netlist emission,
// a cycle-accurate verifying simulator, and baseline schedulers (list
// scheduling and force-directed scheduling) for comparison.
//
// # Quick start
//
//	design := `
//	design quick
//	input a, b, c
//	s = a + b
//	p = s * c
//	`
//	d, err := hls.SynthesizeSource(design, hls.Config{CS: 3})
//	if err != nil { ... }
//	fmt.Println(d.Cost.Total)          // datapath area in µm²
//	netlist, _ := d.Netlist()          // structural Verilog-style text
//	vals, _ := d.Simulate(map[string]int64{"a": 1, "b": 2, "c": 3})
//
// Graphs can also be built programmatically with NewGraph/AddOp, then
// scheduled with Schedule (time- or resource-constrained MFS) or
// synthesized with Synthesize (MFSA, producing a full RTL datapath).
// All scheduling extensions of the paper's §5 are available through
// Config: conditional mutual exclusion, folded loops, multicycle
// operations, chaining, and structural and functional pipelining.
package hls

import (
	"context"

	"repro/internal/baseline"
	"repro/internal/behav"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/dfg"
	"repro/internal/diag"
	"repro/internal/guard"
	"repro/internal/library"
	"repro/internal/lint"
	"repro/internal/mfsa"
	"repro/internal/op"
	"repro/internal/rtl"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Typed failure modes of the hardened entry points. Every synthesis
// entry returns ordinary errors for user mistakes; the types below cover
// the boundary cases:
//
//   - *InternalError: an internal panic was recovered at the facade and
//     converted into an error carrying the panic value and stack. Seeing
//     one always indicates a bug in this library, never in caller code.
//   - *LimitError: an input exceeded a resource guard (Config.MaxNodes,
//     Config.MaxCSteps, or the simulator's step budget).
//   - *RangeError: a malformed [lo, hi] control-step range was passed to
//     Sweep or SweepGraphs, or a well-formed range lies entirely below a
//     graph's critical path (the error names the path length), so the
//     sweep has no feasible point.
//
// Cancelled or timed-out runs return ctx.Err() — context.Canceled or
// context.DeadlineExceeded — unwrapped, so errors.Is works as usual.
type (
	// InternalError is a recovered internal panic; Op names the entry
	// point, Value holds the panic value, Stack the goroutine stack.
	InternalError = guard.InternalError
	// LimitError reports an input that exceeds a configured resource cap.
	LimitError = guard.LimitError
	// RangeError reports a malformed control-step range, or one lying
	// entirely below a graph's critical path.
	RangeError = guard.RangeError
)

// Resource-guard defaults, applied when the corresponding Config knob is
// zero. Set the knob negative to disable a guard.
const (
	// DefaultMaxNodes is the graph-size cap (Config.MaxNodes).
	DefaultMaxNodes = guard.DefaultMaxNodes
	// DefaultMaxCSteps is the time-constraint cap (Config.MaxCSteps).
	DefaultMaxCSteps = guard.DefaultMaxCSteps
)

// Core data-flow-graph types. A Graph is a DAG of operations over named
// signals; see NewGraph.
type (
	// Graph is a behavioral data-flow graph.
	Graph = dfg.Graph
	// Node is one operation in a Graph.
	Node = dfg.Node
	// NodeID identifies a node within its Graph.
	NodeID = dfg.NodeID
	// CondTag marks membership in one branch of a conditional; nodes
	// tagged with the same Cond but different Branch are mutually
	// exclusive and may share hardware.
	CondTag = dfg.CondTag
)

// OpKind identifies an operation type (Add, Mul, Lt, ...).
type OpKind = op.Kind

// Re-exported operation kinds.
const (
	Add = op.Add
	Sub = op.Sub
	Mul = op.Mul
	Div = op.Div
	And = op.And
	Or  = op.Or
	Xor = op.Xor
	Not = op.Not
	Lt  = op.Lt
	Gt  = op.Gt
	Le  = op.Le
	Ge  = op.Ge
	Eq  = op.Eq
	Ne  = op.Ne
	Shl = op.Shl
	Shr = op.Shr
	Neg = op.Neg
	Mov = op.Mov
)

// NewGraph returns an empty data-flow graph with the given name. Build
// it with AddInput and AddOp (arguments must already exist), annotate
// multicycle operations with SetCycles and conditionals with Tag, then
// pass it to Schedule or Synthesize.
func NewGraph(name string) *Graph { return dfg.New(name) }

// Cell-library types for allocation (MFSA).
type (
	// Library is a set of functional-unit cells plus register and
	// multiplexer cost models.
	Library = library.Library
	// Unit is one functional-unit cell.
	Unit = library.Unit
)

// NCRLibrary returns the synthetic stand-in for the NCR ASIC data book
// the paper costs designs against (see DESIGN.md §3).
func NCRLibrary() *Library { return library.NCRLike() }

// ComposeALU builds a multi-function ALU cell covering the given kinds
// with a synthetic area (dearest member plus 30% of the rest).
func ComposeALU(kinds ...OpKind) *Unit { return library.Compose(kinds...) }

// Result types.
type (
	// Config parameterizes a synthesis run; see the field docs.
	Config = core.Config
	// Design is a completed synthesis result.
	Design = core.Design
	// Schedule maps operations to control steps and FU instances.
	Schedule = sched.Schedule
	// Placement is one operation's slot in a Schedule.
	Placement = sched.Placement
	// Datapath is the bound RTL structure MFSA produces.
	Datapath = rtl.Datapath
	// Cost is a datapath's Table 2-style cost breakdown.
	Cost = rtl.Cost
)

// Schedule runs Move Frame Scheduling on a graph: time-constrained when
// cfg.CS > 0, resource-constrained (minimizing control steps under
// cfg.Limits) when cfg.CS == 0.
func ScheduleGraph(g *Graph, cfg Config) (d *Design, err error) {
	defer guard.Recover("hls.ScheduleGraph", &err)
	return core.ScheduleOnly(g, cfg)
}

// ScheduleGraphCtx is ScheduleGraph with cancellation: a cancelled or
// timed-out run (via ctx or cfg.Timeout) returns ctx.Err() promptly.
func ScheduleGraphCtx(ctx context.Context, g *Graph, cfg Config) (d *Design, err error) {
	defer guard.Recover("hls.ScheduleGraph", &err)
	return core.ScheduleOnlyCtx(ctx, g, cfg)
}

// Synthesize runs Move Frame Scheduling-Allocation on a graph, producing
// a schedule, a bound RTL datapath, a controller and a cost breakdown.
func Synthesize(g *Graph, cfg Config) (d *Design, err error) {
	defer guard.Recover("hls.Synthesize", &err)
	return core.Synthesize(g, cfg)
}

// SynthesizeCtx is Synthesize with cancellation: a cancelled or
// timed-out run (via ctx or cfg.Timeout) returns ctx.Err() within one
// placement's worth of work, never a partial design.
func SynthesizeCtx(ctx context.Context, g *Graph, cfg Config) (d *Design, err error) {
	defer guard.Recover("hls.Synthesize", &err)
	return core.SynthesizeCtx(ctx, g, cfg)
}

// SynthesizeSource parses a behavioral description (see ParseBehavior
// for the language) and synthesizes it with MFSA.
func SynthesizeSource(src string, cfg Config) (d *Design, err error) {
	defer guard.Recover("hls.SynthesizeSource", &err)
	return core.SynthesizeSource(src, cfg)
}

// SynthesizeSourceCtx is SynthesizeSource with cancellation.
func SynthesizeSourceCtx(ctx context.Context, src string, cfg Config) (d *Design, err error) {
	defer guard.Recover("hls.SynthesizeSource", &err)
	return core.SynthesizeSourceCtx(ctx, src, cfg)
}

// ScheduleSource parses a behavioral description and schedules it with
// MFS, folding nested loops per the paper's §5.2.
func ScheduleSource(src string, cfg Config) (d *Design, err error) {
	defer guard.Recover("hls.ScheduleSource", &err)
	d, _, err = core.ScheduleSource(src, cfg)
	return d, err
}

// ScheduleSourceCtx is ScheduleSource with cancellation.
func ScheduleSourceCtx(ctx context.Context, src string, cfg Config) (d *Design, err error) {
	defer guard.Recover("hls.ScheduleSource", &err)
	d, _, err = core.ScheduleSourceCtx(ctx, src, cfg)
	return d, err
}

// Allocate binds an externally produced schedule (from ScheduleGraph,
// ForceDirected, ListSchedule, ...) to an RTL datapath using MFSA's cost
// machinery with the operations' control steps frozen — the sequential
// two-phase flow the paper's introduction contrasts with MFSA.
func Allocate(s *Schedule, cfg Config) (*Design, error) {
	return AllocateCtx(context.Background(), s, cfg)
}

// AllocateCtx is Allocate with cancellation and the facade's
// panic-recovery boundary.
func AllocateCtx(ctx context.Context, s *Schedule, cfg Config) (d *Design, err error) {
	defer guard.Recover("hls.Allocate", &err)
	res, err := mfsa.AllocateCtx(ctx, s, mfsa.Options{
		Lib:            cfg.Lib,
		Style:          mfsa.Style(cfg.Style),
		Limits:         cfg.Limits,
		RegisterInputs: cfg.RegisterInputs,
	})
	if err != nil {
		return nil, err
	}
	c, err := ctrl.Build(s.Graph, res.Schedule, res.Datapath)
	if err != nil {
		return nil, err
	}
	return &Design{
		Graph:      s.Graph,
		Schedule:   res.Schedule,
		Datapath:   res.Datapath,
		Controller: c,
		Cost:       res.Cost,
	}, nil
}

// Incremental re-synthesis: apply a local graph edit to a finished
// design and re-derive only the affected decisions.

type (
	// Edit is one local change to a design's graph; exactly one of its
	// fields must be set.
	Edit = core.Edit
	// AddOpEdit appends an operation (Edit.AddOp).
	AddOpEdit = core.AddOpEdit
	// RetimeEdit changes an operation's cycle count (Edit.Retime).
	RetimeEdit = core.RetimeEdit
)

// Resynthesize re-derives a design after a local graph edit under the
// design's original Config, replaying the previous run's recorded
// trajectory for the untouched prefix. The result is bit-identical to
// synthesizing the edited graph from scratch; on a large design whose
// edit perturbs a small cone it is orders of magnitude faster. The
// design must come from Synthesize, ScheduleGraph, the Source variants,
// or a previous Resynthesize (Allocate results carry no configuration
// and are rejected).
//
//hls:sharedok the edit is applied to Edit.apply's private Clone of d.Graph; the input design is only read
func Resynthesize(d *Design, e Edit) (out *Design, err error) {
	defer guard.Recover("hls.Resynthesize", &err)
	return core.Resynthesize(d, e)
}

// ResynthesizeCtx is Resynthesize with cancellation, the original
// Config's Timeout and input guards, and the facade's panic-recovery
// boundary.
//
//hls:sharedok the edit is applied to Edit.apply's private Clone of d.Graph; the input design is only read
func ResynthesizeCtx(ctx context.Context, d *Design, e Edit) (out *Design, err error) {
	defer guard.Recover("hls.Resynthesize", &err)
	return core.ResynthesizeCtx(ctx, d, e)
}

// SweepPoint is one design point of a time-constraint sweep.
type SweepPoint = core.SweepPoint

// Sweep synthesizes g with MFSA at every time constraint in [csLo,
// csHi] (clamped to the critical path) and returns the cost/time design
// points with the Pareto frontier marked. Points are synthesized
// concurrently on cfg.Parallelism workers (0 = GOMAXPROCS); results are
// identical at every parallelism setting.
func Sweep(g *Graph, cfg Config, csLo, csHi int) (pts []SweepPoint, err error) {
	defer guard.Recover("hls.Sweep", &err)
	return core.Sweep(g, cfg, csLo, csHi)
}

// SweepCtx is Sweep with cancellation: cfg.Timeout bounds the whole
// sweep, and a cancelled run returns ctx.Err(), never partial points.
func SweepCtx(ctx context.Context, g *Graph, cfg Config, csLo, csHi int) (pts []SweepPoint, err error) {
	defer guard.Recover("hls.Sweep", &err)
	return core.SweepCtx(ctx, g, cfg, csLo, csHi)
}

// SweepGraphs sweeps several designs at once over one shared worker
// pool, flattening the graphs × constraints grid into independent
// synthesis jobs. The result is indexed like gs; each row carries its
// own Pareto marks and equals the corresponding Sweep call exactly.
func SweepGraphs(gs []*Graph, cfg Config, csLo, csHi int) (pts [][]SweepPoint, err error) {
	defer guard.Recover("hls.SweepGraphs", &err)
	return core.SweepGraphs(gs, cfg, csLo, csHi)
}

// SweepGraphsCtx is SweepGraphs with cancellation; see SweepCtx.
func SweepGraphsCtx(ctx context.Context, gs []*Graph, cfg Config, csLo, csHi int) (pts [][]SweepPoint, err error) {
	defer guard.Recover("hls.SweepGraphs", &err)
	return core.SweepGraphsCtx(ctx, gs, cfg, csLo, csHi)
}

// ParseBehavior lowers a behavioral description to a graph plus the
// values of its literal constants. The language supports `design`,
// `input`/`output` declarations, `const NAME = <int>`, assignments over
// the usual operators with precedence and parentheses, `@k` multicycle
// annotations, `if/else` blocks (mutual exclusion), and nested
// `loop ... cycles k binds ... yields ...` blocks (folded loops).
func ParseBehavior(src string) (g *Graph, consts map[string]int64, err error) {
	defer guard.Recover("hls.ParseBehavior", &err)
	return behav.BuildSource(src)
}

// RandomInputs generates reproducible input vectors for simulation.
func RandomInputs(g *Graph, seed int64) map[string]int64 {
	return sim.RandomInputs(g, seed)
}

// Baseline schedulers, for comparison studies.

// ForceDirected runs HAL-style force-directed scheduling under a time
// constraint.
func ForceDirected(g *Graph, cs int) (s *Schedule, err error) {
	defer guard.Recover("hls.ForceDirected", &err)
	return baseline.ForceDirected(g, cs)
}

// ListSchedule runs priority list scheduling under resource limits
// (op-symbol keyed).
func ListSchedule(g *Graph, limits map[string]int) (s *Schedule, err error) {
	defer guard.Recover("hls.ListSchedule", &err)
	return baseline.List(g, limits)
}

// ASAPSchedule returns the as-soon-as-possible schedule.
func ASAPSchedule(g *Graph) (s *Schedule, err error) {
	defer guard.Recover("hls.ASAPSchedule", &err)
	return baseline.ASAP(g)
}

// Static verification (hlslint).

type (
	// Diagnostic is one typed lint finding with a stable HL code.
	Diagnostic = diag.Diagnostic
	// Diagnostics is a sortable list of findings that also satisfies
	// error.
	Diagnostics = diag.List
	// LintUnit bundles the artifacts of one design for a lint run.
	LintUnit = lint.Unit
	// LintAnalyzer is one registered lint pass.
	LintAnalyzer = lint.Analyzer
	// LintOptions selects analyzers and bounds lint parallelism.
	LintOptions = lint.Options
)

// Severity levels of a Diagnostic.
const (
	SeverityInfo  = diag.Info
	SeverityWarn  = diag.Warn
	SeverityError = diag.Error
)

// Lint runs the static verification analyzers over a unit; see
// Design.Lint for the common case of auditing a synthesis result.
func Lint(u *LintUnit, opts LintOptions) (ds Diagnostics, err error) {
	defer guard.Recover("hls.Lint", &err)
	return lint.Run(u, opts)
}

// LintCtx is Lint with cancellation.
func LintCtx(ctx context.Context, u *LintUnit, opts LintOptions) (ds Diagnostics, err error) {
	defer guard.Recover("hls.Lint", &err)
	return lint.RunCtx(ctx, u, opts)
}

// LintAnalyzers returns the registered lint passes sorted by name.
func LintAnalyzers() []*LintAnalyzer { return lint.Analyzers() }

// Translation validation (the equiv pass).

type (
	// Certificate is the machine-readable result of one translation
	// validation: per-output symbolic proofs that the DFG reference,
	// the scheduled datapath, and the emitted netlist compute the same
	// function, plus any refuting diagnostics.
	Certificate = lint.Certificate
	// OutputProof is one design output's per-layer equivalence verdict.
	OutputProof = lint.OutputProof
	// Counterexample is a concrete input vector witnessing an
	// equivalence failure, attached to a refuting Diagnostic.
	Counterexample = diag.Counterexample
	// Mutation is one seeded artifact corruption of the soundness
	// harness; see Mutations.
	Mutation = lint.Mutation
)

// Certify runs the translation-validation pass over a unit: symbolic
// equivalence of the DFG reference, the scheduled datapath, and the
// emitted netlist, with counterexamples confirmed against the
// simulator. See Design.Certify for the common case of certifying a
// synthesis result.
func Certify(u *LintUnit) (c *Certificate, err error) {
	defer guard.Recover("hls.Certify", &err)
	return lint.Certify(context.Background(), u)
}

// CertifyCtx is Certify with cancellation; a cancelled run returns
// ctx.Err() plus the partial certificate gathered so far.
func CertifyCtx(ctx context.Context, u *LintUnit) (c *Certificate, err error) {
	defer guard.Recover("hls.Certify", &err)
	return lint.Certify(ctx, u)
}

// Mutations lists the seeded artifact corruptions the soundness
// harness can inject (see ApplyMutation and hlslint -mutate); each
// models a realistic synthesis bug the equiv pass must refuse to
// certify.
func Mutations() []Mutation { return lint.Mutations() }

// ApplyMutation corrupts a unit in place with the named mutation.
func ApplyMutation(u *LintUnit, name string) (err error) {
	defer guard.Recover("hls.ApplyMutation", &err)
	return lint.ApplyMutation(u, name)
}
