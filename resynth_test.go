// Incremental re-synthesis through the public facade: Resynthesize must
// be bit-identical to a from-scratch run of the edited graph under the
// original Config — on both the MFS (ScheduleGraph) and MFSA
// (Synthesize) paths, across every edit kind — and on a 10k-node design
// the replayed run must meaningfully beat the from-scratch run (see
// TestResynthesizeSpeedup10k for the bar and its history).
package hls_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	hls "repro"
	"repro/internal/benchmarks"
	"repro/internal/gen"
)

// sameDesign requires bit-identical synthesis results: the schedule's
// placements, the emitted netlist (which covers ALU composition, mux
// lists, register packing and the controller), and the cost breakdown.
func sameDesign(t *testing.T, got, want *hls.Design) {
	t.Helper()
	if fmt.Sprint(got.Schedule.Placements) != fmt.Sprint(want.Schedule.Placements) {
		t.Fatalf("placements differ:\n got: %v\nwant: %v",
			got.Schedule.Placements, want.Schedule.Placements)
	}
	if got.Schedule.CS != want.Schedule.CS {
		t.Fatalf("CS = %d, want %d", got.Schedule.CS, want.Schedule.CS)
	}
	if got.Datapath == nil != (want.Datapath == nil) {
		t.Fatalf("datapath presence differs")
	}
	if got.Datapath != nil {
		gn, err := got.Netlist()
		if err != nil {
			t.Fatal(err)
		}
		wn, err := want.Netlist()
		if err != nil {
			t.Fatal(err)
		}
		if gn != wn {
			t.Fatalf("netlists differ:\n--- resynthesized\n%s\n--- fresh\n%s", gn, wn)
		}
		if got.Cost != want.Cost {
			t.Fatalf("cost = %+v, want %+v", got.Cost, want.Cost)
		}
	}
}

// edits builds one edit of every kind against g, skipping kinds the
// graph cannot express (no sink with a removable shape, ...).
func editsFor(g *hls.Graph) []hls.Edit {
	outs := g.Outputs()
	es := []hls.Edit{
		{AddInput: "rsx_in"},
		{AddOp: &hls.AddOpEdit{Name: "rsx_sum", Op: hls.Add, Args: []string{outs[0], outs[len(outs)-1]}}},
		{AddOp: &hls.AddOpEdit{Name: "rsx_prod", Op: hls.Mul, Args: []string{outs[0], outs[0]}, Cycles: 2}},
		{RemoveSink: outs[0]},
	}
	// Retime an interior multicycle-capable node: the first multiply, or
	// failing that the first op node.
	for _, n := range g.Nodes() {
		if n.Op == hls.Mul {
			es = append(es, hls.Edit{Retime: &hls.RetimeEdit{Node: n.Name, Cycles: n.Cycles%2 + 1}})
			break
		}
	}
	return es
}

func TestResynthesizeMatchesFreshMFSA(t *testing.T) {
	gsmall, err := gen.Generate(gen.Config{Nodes: 120, Seed: 7, MulCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	graphs := append(benchGraphs(), gsmall)
	for _, g := range graphs {
		cfg := hls.Config{CS: g.CriticalPathCycles() + 2}
		d, err := hls.Synthesize(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for i, e := range editsFor(g) {
			inc, err := hls.Resynthesize(d, e)
			if err != nil {
				t.Fatalf("%s edit %d: resynthesize: %v", g.Name, i, err)
			}
			fresh, err := hls.Synthesize(inc.Graph, cfg)
			if err != nil {
				t.Fatalf("%s edit %d: fresh: %v", g.Name, i, err)
			}
			sameDesign(t, inc, fresh)
		}
	}
}

func TestResynthesizeMatchesFreshMFS(t *testing.T) {
	gsmall, err := gen.Generate(gen.Config{Nodes: 120, Seed: 11, MulCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	graphs := append(benchGraphs(), gsmall)
	for _, g := range graphs {
		cfg := hls.Config{CS: g.CriticalPathCycles() + 2}
		d, err := hls.ScheduleGraph(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for i, e := range editsFor(g) {
			inc, err := hls.Resynthesize(d, e)
			if err != nil {
				t.Fatalf("%s edit %d: resynthesize: %v", g.Name, i, err)
			}
			fresh, err := hls.ScheduleGraph(inc.Graph, cfg)
			if err != nil {
				t.Fatalf("%s edit %d: fresh: %v", g.Name, i, err)
			}
			sameDesign(t, inc, fresh)
		}
	}
}

// TestResynthesizeChained applies a sequence of edits, resynthesizing
// each on top of the last — the interactive-loop shape the API exists
// for — and checks the final design against a single from-scratch run.
func TestResynthesizeChained(t *testing.T) {
	g := benchmarks.EWF().Graph
	cfg := hls.Config{CS: g.CriticalPathCycles() + 3}
	d, err := hls.Synthesize(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Outputs()[0]
	for i, e := range []hls.Edit{
		{AddInput: "chain_in"},
		{AddOp: &hls.AddOpEdit{Name: "chain_a", Op: hls.Add, Args: []string{out, "chain_in"}}},
		{AddOp: &hls.AddOpEdit{Name: "chain_b", Op: hls.Mul, Args: []string{"chain_a", "chain_a"}, Cycles: 2}},
		{RemoveSink: "chain_b"},
	} {
		if d, err = hls.Resynthesize(d, e); err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
	}
	fresh, err := hls.Synthesize(d.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameDesign(t, d, fresh)
}

func TestResynthesizeRejectsBadInputs(t *testing.T) {
	g := benchmarks.Diffeq().Graph
	cfg := hls.Config{CS: g.CriticalPathCycles() + 2}
	d, err := hls.Synthesize(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hls.Resynthesize(d, hls.Edit{}); err == nil ||
		!strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("empty edit: err = %v, want 'exactly one'", err)
	}
	if _, err := hls.Resynthesize(d, hls.Edit{
		AddInput:   "x",
		RemoveSink: g.Outputs()[0],
	}); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("double edit: err = %v, want 'exactly one'", err)
	}
	if _, err := hls.Resynthesize(d, hls.Edit{RemoveSink: "nope"}); err == nil {
		t.Fatal("removing a missing node succeeded")
	}
	if _, err := hls.Resynthesize(d, hls.Edit{Retime: &hls.RetimeEdit{Node: "nope", Cycles: 2}}); err == nil {
		t.Fatal("retiming a missing node succeeded")
	}
	if _, err := hls.Resynthesize(nil, hls.Edit{AddInput: "x"}); err == nil {
		t.Fatal("nil design succeeded")
	}
	// Removing a non-sink must be refused.
	interior := ""
	for _, n := range g.Nodes() {
		if len(n.Succs()) > 0 {
			interior = n.Name
			break
		}
	}
	if _, err := hls.Resynthesize(d, hls.Edit{RemoveSink: interior}); err == nil ||
		!strings.Contains(err.Error(), "consumer") {
		t.Fatalf("removing interior node: err = %v, want consumer error", err)
	}
}

// TestResynthesizeRejectsAllocatedDesign pins the contract that designs
// assembled outside the capturing entry points cannot be resynthesized:
// hls.Allocate never records a Config, so there is nothing to replay
// under.
func TestResynthesizeRejectsAllocatedDesign(t *testing.T) {
	g := benchmarks.Diffeq().Graph
	sd, err := hls.ScheduleGraph(g, hls.Config{CS: g.CriticalPathCycles() + 2})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := hls.Allocate(sd.Schedule, hls.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hls.Resynthesize(ad, hls.Edit{AddInput: "x"}); err == nil ||
		!strings.Contains(err.Error(), "configuration") {
		t.Fatalf("err = %v, want missing-configuration error", err)
	}
}

// TestResynthesizeNoTraceFallback: a NoTrace design has no trajectory to
// replay; Resynthesize must fall back to a full run and still match the
// from-scratch result exactly.
func TestResynthesizeNoTraceFallback(t *testing.T) {
	g := benchmarks.EWF().Graph
	cfg := hls.Config{CS: g.CriticalPathCycles() + 2, NoTrace: true}
	d, err := hls.Synthesize(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schedule.Trace != nil {
		t.Fatal("NoTrace design still carries a trace")
	}
	e := hls.Edit{AddOp: &hls.AddOpEdit{Name: "nt", Op: hls.Add,
		Args: []string{g.Outputs()[0], g.Outputs()[0]}}}
	inc, err := hls.Resynthesize(d, e)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := hls.Synthesize(inc.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameDesign(t, inc, fresh)
}

// TestResynthesizeSpeedup10k pins that on a 10k-node design, an
// incremental re-synthesis after a one-node edit is meaningfully faster
// than the from-scratch MFSA run whose result it reproduces bit for
// bit. The bar was 10x (measured ~17x) when from-scratch search walked
// the grid cell by cell; the word-scan occupancy index (DESIGN.md §15)
// then cut the fresh run ~3x while replay — which re-commits recorded
// decisions and never walks a window — kept its old cost, so the
// honest ratio on this workload is now ~2–4x with heavy run-to-run
// noise at these millisecond scales. The 1.5x bar still separates
// "replayed the trajectory" from "fell back to the full search" (a
// fallback makes incremental ≈ fresh plus replay overhead, i.e. ratio
// ≤ 1), which is what the test exists to catch.
//
// Three choices make the trajectory replay end to end instead of
// falling back to the (correct but slow) full search:
//
//   - Config.Limits pins every unit's instance bound. The replay
//     induction requires the fresh run's initial bounds to match the
//     recorded run's, and without limits the bounds derive from
//     capability counts, which any structural edit perturbs.
//   - The graph is all-single-cycle, where the §5.3 priority comparator
//     is a strict total order: the appended node cannot reshuffle the
//     relative order of existing operations (under the multicycle
//     inverted rule the comparator is non-transitive and the order is
//     insertion-dependent).
//   - The new node reads primary inputs only, so no existing frame
//     moves. A deeper edit diverges at its cone's priority position and
//     replays just the prefix; the matches-fresh tests cover those
//     shapes.
func TestResynthesizeSpeedup10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node timing run")
	}
	g, err := gen.Generate(gen.Config{Nodes: 10_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cs := g.CriticalPathCycles() + 16
	// Learn the per-unit instance usage of an unconstrained run, then
	// pin it (plus slack) as explicit limits; units the design never
	// opened are capped to zero so their capability counts — which the
	// edit shifts — drop out of the bound derivation entirely.
	probe0, err := hls.Synthesize(g, hls.Config{CS: cs})
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[string]int)
	for _, a := range probe0.Datapath.ALUs {
		used[a.Unit.Name]++
	}
	limits := make(map[string]int)
	for _, u := range hls.NCRLibrary().Units() {
		if n := used[u.Name]; n > 0 {
			limits[u.Name] = n + 2
		} else {
			limits[u.Name] = 0
		}
	}
	cfg := hls.Config{CS: cs, Limits: limits}

	start := time.Now()
	d, err := hls.Synthesize(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	freshTime := time.Since(start)

	// Pick an op kind whose node count is off a ⌈n/CS⌉ boundary, so the
	// one-node edit cannot shift the initial instance floor either.
	counts := make(map[hls.OpKind]int)
	for _, n := range g.Nodes() {
		counts[n.Op]++
	}
	kind, found := hls.Add, false
	for _, k := range []hls.OpKind{hls.Add, hls.Sub, hls.And, hls.Or, hls.Xor} {
		if counts[k]%cs != 0 {
			kind, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no op kind off the instance-floor boundary; regenerate with another seed")
	}
	ins := g.Inputs()
	e := hls.Edit{AddOp: &hls.AddOpEdit{Name: "probe", Op: kind, Args: []string{ins[0], ins[1]}}}
	start = time.Now()
	inc, err := hls.ResynthesizeCtx(context.Background(), d, e)
	if err != nil {
		t.Fatal(err)
	}
	incTime := time.Since(start)

	fresh, err := hls.Synthesize(inc.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameDesign(t, inc, fresh)
	if float64(freshTime) < 1.5*float64(incTime) {
		t.Fatalf("incremental %v vs fresh %v: speedup %.1fx, want >= 1.5x",
			incTime, freshTime, float64(freshTime)/float64(incTime))
	}
	t.Logf("fresh %v, incremental %v (%.0fx)", freshTime, incTime,
		float64(freshTime)/float64(incTime))
}
