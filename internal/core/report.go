package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rtl"
)

// Report renders a complete human-readable synthesis report: the
// schedule as a Gantt chart, per-type utilization, the RTL cost
// breakdown, the §5.7 interconnect analysis (effective multiplexer
// inputs after register line sharing) and the bus-plan alternative, and
// the controller summary. Schedule-only designs get the scheduling
// sections.
func (d *Design) Report() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "synthesis report — %s\n", d.Graph.Name)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", 20+len(d.Graph.Name)))
	fmt.Fprintf(&b, "operations: %d   inputs: %d   control steps: %d\n",
		d.Graph.Len(), len(d.Graph.Inputs()), d.Schedule.CS)
	if d.Schedule.Latency > 0 {
		fmt.Fprintf(&b, "functional pipelining: new iteration every %d steps\n", d.Schedule.Latency)
	}
	if d.Schedule.ClockNs > 0 {
		fmt.Fprintf(&b, "chaining: %.0f ns control step\n", d.Schedule.ClockNs)
	}
	b.WriteString("\nschedule\n--------\n")
	b.WriteString(d.Schedule.Gantt())

	b.WriteString("\nutilization\n-----------\n")
	util := d.Schedule.Utilization()
	typs := make([]string, 0, len(util))
	for typ := range util {
		typs = append(typs, typ)
	}
	sort.Strings(typs)
	for _, typ := range typs {
		fmt.Fprintf(&b, "  %-16s %4.0f%%\n", typ, util[typ]*100)
	}

	if d.Datapath == nil {
		b.WriteString("\n(schedule-only design: run Synthesize for the RTL sections)\n")
		return b.String(), nil
	}

	c := d.Cost
	b.WriteString("\nRTL structure\n-------------\n")
	fmt.Fprintf(&b, "  ALUs:          %s\n", d.Datapath.ALUSummary())
	fmt.Fprintf(&b, "  total cost:    %.0f um^2 (ALU %.0f, MUX %.0f, REG %.0f)\n",
		c.Total, c.ALUArea, c.MuxArea, c.RegArea)
	fmt.Fprintf(&b, "  registers:     %d\n", c.NumRegs)
	fmt.Fprintf(&b, "  multiplexers:  %d with %d inputs\n", c.NumMux, c.NumMuxInputs)

	ic, err := rtl.AnalyzeInterconnect(d.Graph, d.Schedule, d.Datapath)
	if err != nil {
		return "", err
	}
	b.WriteString("\ninterconnect (§5.7 line sharing)\n--------------------------------\n")
	fmt.Fprintf(&b, "  point-to-point links:      %d\n", ic.NumLinks)
	fmt.Fprintf(&b, "  mux inputs (per signal):   %d\n", ic.SignalInputs)
	fmt.Fprintf(&b, "  mux inputs (per terminal): %d\n", ic.EffectiveInputs)
	fmt.Fprintf(&b, "  effective mux area:        %.0f um^2\n", d.Datapath.EffectiveMuxArea(ic))

	plan, err := rtl.PlanBuses(d.Graph, d.Schedule, d.Datapath)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  bus alternative:           %d buses\n", plan.Buses)

	ta := rtl.AnalyzeTestability(d.Graph, d.Datapath)
	fmt.Fprintf(&b, "\ntestability\n-----------\n  %s\n", ta)

	if d.Controller != nil {
		guarded := 0
		for _, st := range d.Controller.States {
			for _, a := range st.Actions {
				if a.Guarded() {
					guarded++
				}
			}
		}
		b.WriteString("\ncontrol path\n------------\n")
		fmt.Fprintf(&b, "  FSM states:          %d\n", len(d.Controller.States))
		fmt.Fprintf(&b, "  guarded actions:     %d (conditional branches)\n", guarded)
	}
	return b.String(), nil
}
