package core

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
)

const quickSrc = `
design quick
input a, b, c
s = a + b
p = s * c
d = p - a
`

func TestSynthesizeSource(t *testing.T) {
	d, err := SynthesizeSource(quickSrc, Config{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cost.Total <= 0 || d.Controller == nil || d.Datapath == nil {
		t.Fatalf("incomplete design: %+v", d.Cost)
	}
	vals, err := d.Simulate(map[string]int64{"a": 2, "b": 3, "c": 4})
	if err != nil {
		t.Fatal(err)
	}
	if vals["d"] != (2+3)*4-2 {
		t.Errorf("d = %d", vals["d"])
	}
	if err := d.SelfCheck(5); err != nil {
		t.Error(err)
	}
}

func TestNetlist(t *testing.T) {
	d, err := SynthesizeSource(quickSrc, Config{CS: 3})
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v, "module quick") {
		t.Errorf("netlist:\n%s", v)
	}
}

func TestScheduleOnly(t *testing.T) {
	ex := benchmarks.Diffeq()
	d, err := ScheduleOnly(ex.Graph, Config{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Datapath != nil {
		t.Error("ScheduleOnly built a datapath")
	}
	if _, err := d.Netlist(); err == nil {
		t.Error("Netlist without datapath accepted")
	}
	if err := d.SelfCheck(3); err != nil {
		t.Error(err)
	}
}

func TestScheduleSourceWithLoops(t *testing.T) {
	src := `
design looped
input x, dx
loop acc cycles 2 binds s = x, d = dx yields nx {
    nx = s + d
}
out = acc * 3
`
	d, ld, err := ScheduleSource(src, Config{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ld.Inner) != 1 {
		t.Fatalf("inner designs = %d", len(ld.Inner))
	}
	vals, err := d.Simulate(map[string]int64{"x": 5, "dx": 2})
	if err != nil {
		t.Fatal(err)
	}
	if vals["out"] != 21 {
		t.Errorf("out = %d", vals["out"])
	}
}

func TestResourceConstrainedConfig(t *testing.T) {
	ex := benchmarks.Diffeq()
	d, err := ScheduleOnly(ex.Graph, Config{Limits: map[string]int{"*": 1, "+": 1, "-": 1, "<": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Schedule.CS < 7 {
		t.Errorf("CS = %d, want >= 7 with one multiplier", d.Schedule.CS)
	}
}

func TestStyleAndWeightsPassThrough(t *testing.T) {
	d1, err := SynthesizeSource(quickSrc, Config{CS: 4, Style: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.SelfCheck(2); err != nil {
		t.Error(err)
	}
	d2, err := SynthesizeSource(quickSrc, Config{CS: 4, Weights: [4]float64{1, 10, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.SelfCheck(2); err != nil {
		t.Error(err)
	}
}

func TestPipelinedConfig(t *testing.T) {
	ex := benchmarks.Bandpass()
	d, err := ScheduleOnly(ex.Graph, Config{CS: 9, PipelinedOps: []string{"*"}})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Schedule.PipelinedTypes["*"] {
		t.Error("pipelined type not propagated")
	}
}

func TestBadSource(t *testing.T) {
	if _, err := SynthesizeSource("not a design", Config{CS: 4}); err == nil {
		t.Error("bad source accepted")
	}
	if _, _, err := ScheduleSource("also bad", Config{CS: 4}); err == nil {
		t.Error("bad source accepted by ScheduleSource")
	}
}

func TestOptimizeConfig(t *testing.T) {
	src := `
design wasteful
input a, b
output y
c = 3 + 4
d1 = a + b
d2 = b + a
dead = a * 99
y = d1 + c
`
	plain, err := SynthesizeSource(src, Config{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SynthesizeSource(src, Config{CS: 4, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Graph.Len() >= plain.Graph.Len() {
		t.Errorf("optimize did not shrink the graph: %d vs %d", opt.Graph.Len(), plain.Graph.Len())
	}
	// The optimized design still computes y correctly end to end.
	vals, err := opt.Simulate(map[string]int64{"a": 2, "b": 3})
	if err != nil {
		t.Fatal(err)
	}
	if vals["y"] != 2+3+7 {
		t.Errorf("y = %d, want 12", vals["y"])
	}
	if err := opt.SelfCheck(3); err != nil {
		t.Error(err)
	}
	if opt.Cost.Total >= plain.Cost.Total {
		t.Logf("note: optimization did not cut cost (%v vs %v) — acceptable but unusual",
			opt.Cost.Total, plain.Cost.Total)
	}
}
