package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/behav"
)

// TestDesignCorpus runs the whole flow over the .hls corpus under
// testdata/designs: parse, schedule at the critical path and with +2
// slack, synthesize both styles where the design has no folded loop,
// self-check everything, and render the report. Every corpus file must
// pass; the corpus covers conditionals, loops, multicycle ops, shifts
// and logic — the language surface users actually write.
func TestDesignCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "designs", "*.hls"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("corpus has %d designs, want >= 8", len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			g, _, err := behav.BuildSource(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			cp := g.CriticalPathCycles()
			hasLoop := false
			for _, n := range g.Nodes() {
				if n.IsLoop() {
					hasLoop = true
				}
			}
			for _, cs := range []int{cp, cp + 2} {
				d, _, err := ScheduleSource(src, Config{CS: cs})
				if err != nil {
					t.Fatalf("schedule cs=%d: %v", cs, err)
				}
				if err := d.SelfCheck(3); err != nil {
					t.Fatalf("schedule cs=%d: %v", cs, err)
				}
				// The optimized variant must also schedule and verify
				// (cs may tighten as the graph shrinks; keep cs+2 slack).
				if od, _, err := ScheduleSource(src, Config{CS: cs + 2, Optimize: true}); err != nil {
					t.Fatalf("optimized schedule: %v", err)
				} else if err := od.SelfCheck(2); err != nil {
					t.Fatalf("optimized schedule: %v", err)
				}
				if hasLoop {
					continue // MFSA synthesizes flattened bodies only
				}
				for _, style := range []int{1, 2} {
					ds, err := SynthesizeSource(src, Config{CS: cs, Style: style})
					if err != nil {
						t.Fatalf("synth cs=%d style=%d: %v", cs, style, err)
					}
					if err := ds.SelfCheck(3); err != nil {
						t.Fatalf("synth cs=%d style=%d: %v", cs, style, err)
					}
					rep, err := ds.Report()
					if err != nil {
						t.Fatalf("report: %v", err)
					}
					for _, want := range []string{"synthesis report", "utilization", "interconnect", "bus alternative"} {
						if !strings.Contains(rep, want) {
							t.Errorf("report missing %q", want)
						}
					}
				}
			}
		})
	}
}

func TestReportScheduleOnly(t *testing.T) {
	d, _, err := ScheduleSource(`
design tiny
input a
x = a + a
`, Config{CS: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "schedule-only design") {
		t.Errorf("report:\n%s", rep)
	}
}
