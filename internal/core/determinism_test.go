package core_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/emit"
	"repro/internal/gen"
)

// TestCrossProcessTraceDeterminism is the runtime complement of the
// hlsvet maporder/noclock analyzers: it proves that two separate
// processes synthesizing the same generated 1000-node graph produce
// byte-identical results — placements, the full move trace, the cost
// report, and the emitted netlist. Go randomizes map iteration order
// per process, so any order-dependent fold that slipped past the
// static suite shows up here as a fingerprint mismatch.
//
// The test re-execs its own binary twice in child mode (gated by
// HLS_DET_CHILD) so the two syntheses really run under independent
// map-hash seeds rather than in one process.
func TestCrossProcessTraceDeterminism(t *testing.T) {
	if out := os.Getenv("HLS_DET_OUT"); os.Getenv("HLS_DET_CHILD") == "1" {
		fp, err := synthesisFingerprint()
		if err != nil {
			t.Fatalf("child synthesis: %v", err)
		}
		if err := os.WriteFile(out, fp, 0o666); err != nil {
			t.Fatalf("child write: %v", err)
		}
		return
	}
	if testing.Short() {
		t.Skip("re-exec determinism test skipped in -short mode")
	}

	dir := t.TempDir()
	outs := make([][]byte, 2)
	for i := range outs {
		out := filepath.Join(dir, fmt.Sprintf("fp%d", i))
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrossProcessTraceDeterminism$", "-test.count=1")
		cmd.Env = append(os.Environ(), "HLS_DET_CHILD=1", "HLS_DET_OUT="+out)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("child %d failed: %v\n%s", i, err, msg)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatalf("child %d wrote no fingerprint: %v", i, err)
		}
		if len(data) == 0 {
			t.Fatalf("child %d fingerprint is empty", i)
		}
		outs[i] = data
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("two processes synthesized different results from the same input\n"+
			"fingerprints differ: %d vs %d bytes — a map-order or clock dependency reached the synthesis path",
			len(outs[0]), len(outs[1]))
	}
}

// synthesisFingerprint runs one full 1000-node synthesis and renders
// every externally observable artifact into a canonical byte string.
func synthesisFingerprint() ([]byte, error) {
	g, err := gen.Generate(gen.Config{Nodes: 1000, Seed: 42})
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	cs := g.CriticalPathCycles() + 16
	d, err := core.Synthesize(g, core.Config{CS: cs})
	if err != nil {
		return nil, fmt.Errorf("synthesize (CS=%d): %w", cs, err)
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "cs=%d nodes=%d\n", d.Schedule.CS, len(d.Schedule.Placements))

	ids := make([]dfg.NodeID, 0, len(d.Schedule.Placements))
	for id := range d.Schedule.Placements {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := d.Schedule.Placements[id]
		fmt.Fprintf(&b, "place %d: step=%d type=%s idx=%d\n", id, p.Step, p.Type, p.Index)
	}

	if tr := d.Schedule.Trace; tr != nil {
		fmt.Fprintf(&b, "trace steps=%d\n", len(tr.Steps))
		for i, s := range tr.Steps {
			fmt.Fprintf(&b, "step %d: node=%d type=%s pos=%v energy=%v curj=%d maxj=%d cands=%d grown=%v\n",
				i, s.Node, s.Type, s.Pos, s.Energy, s.CurrentJ, s.MaxJ, len(s.Candidates), s.Grown)
			for j, c := range s.Candidates {
				fmt.Fprintf(&b, "  cand %d: %+v\n", j, c)
			}
		}
	} else {
		fmt.Fprintf(&b, "trace nil\n")
	}

	fmt.Fprintf(&b, "cost %+v\n", d.Cost)
	b.WriteString(emit.Verilog(d.Graph, d.Schedule, d.Datapath, d.Controller))
	return b.Bytes(), nil
}
