package core

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/guard"
	"repro/internal/op"
	"repro/internal/rtl"
)

func TestSweepDiffeq(t *testing.T) {
	ex := benchmarks.Diffeq()
	points, err := Sweep(ex.Graph, Config{}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Range starts at the critical path (4), so 5 points.
	if len(points) != 5 {
		t.Fatalf("points = %d, want 5", len(points))
	}
	if points[0].CS != 4 {
		t.Errorf("first point cs = %d, want critical path 4", points[0].CS)
	}
	// The fastest point is always on the frontier.
	if !points[0].Pareto {
		t.Error("fastest point not Pareto")
	}
	// At least one point on the frontier must be cheaper than the
	// fastest (relaxing time buys hardware on this example).
	cheaper := false
	for _, p := range points[1:] {
		if p.Pareto && p.Cost.Total < points[0].Cost.Total {
			cheaper = true
		}
	}
	if !cheaper {
		t.Errorf("no cheaper frontier point found: %+v", points)
	}
	// Pareto correctness: no frontier point dominated by any other.
	for i, p := range points {
		for j, q := range points {
			if i == j || !p.Pareto {
				continue
			}
			if q.CS <= p.CS && q.Cost.Total < p.Cost.Total {
				t.Errorf("frontier point cs=%d dominated by cs=%d", p.CS, q.CS)
			}
		}
	}
}

func TestSweepErrors(t *testing.T) {
	ex := benchmarks.Facet()
	if _, err := Sweep(ex.Graph, Config{}, 0, 5); err == nil {
		t.Error("bad low bound accepted")
	}
	if _, err := Sweep(ex.Graph, Config{}, 5, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

// TestSweepParallelIdentical is the sweep determinism guard: the same
// range computed sequentially and at several worker counts must produce
// byte-identical points and Pareto marks.
func TestSweepParallelIdentical(t *testing.T) {
	ex := benchmarks.Diffeq()
	want, err := Sweep(ex.Graph, Config{Parallelism: 1}, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 16} {
		got, err := Sweep(ex.Graph, Config{Parallelism: workers}, 1, 10)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parallelism %d: points differ\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestSweepGraphs checks the multi-design entry point agrees with
// per-graph Sweep calls: same points, same Pareto marks, per-graph
// critical-path clamping intact.
func TestSweepGraphs(t *testing.T) {
	exs := []*benchmarks.Example{benchmarks.Facet(), benchmarks.Diffeq(), benchmarks.ARLattice()}
	gs := make([]*dfg.Graph, len(exs))
	for i, ex := range exs {
		gs[i] = ex.Graph
	}
	multi, err := SweepGraphs(gs, Config{}, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != len(gs) {
		t.Fatalf("len = %d, want %d", len(multi), len(gs))
	}
	for i, g := range gs {
		single, err := Sweep(g, Config{}, 1, 9)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if !reflect.DeepEqual(multi[i], single) {
			t.Errorf("%s: SweepGraphs row differs from Sweep\ngot  %+v\nwant %+v",
				g.Name, multi[i], single)
		}
	}
	if _, err := SweepGraphs(gs, Config{}, 0, 9); err == nil {
		t.Error("bad low bound accepted")
	}
	if _, err := SweepGraphs([]*dfg.Graph{nil}, Config{}, 1, 4); err == nil {
		t.Error("nil graph accepted")
	}
}

// brute is the original quadratic all-pairs Pareto marker, kept as the
// reference oracle for the sort-then-scan implementation.
func brutePareto(points []SweepPoint) {
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			betterOrEqual := points[j].CS <= points[i].CS && points[j].Cost.Total <= points[i].Cost.Total
			strictlyBetter := points[j].CS < points[i].CS || points[j].Cost.Total < points[i].Cost.Total
			if betterOrEqual && strictlyBetter {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
}

// TestMarkParetoMatchesBruteForce drives the O(n log n) marker against
// the quadratic oracle on random point sets, including duplicate CS
// values and duplicate (CS, Total) pairs (neither occurs in a plain
// sweep, but markPareto must not silently depend on that).
func TestMarkParetoMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(40)
		fast := make([]SweepPoint, n)
		for i := range fast {
			fast[i] = SweepPoint{
				CS:   1 + r.Intn(8),
				Cost: rtl.Cost{Total: float64(100 * (1 + r.Intn(12)))},
			}
		}
		slow := append([]SweepPoint(nil), fast...)
		markPareto(fast)
		brutePareto(slow)
		for i := range fast {
			if fast[i].Pareto != slow[i].Pareto {
				t.Fatalf("trial %d: point %d (cs=%d total=%.0f): fast=%v brute=%v\nall: %+v",
					trial, i, fast[i].CS, fast[i].Cost.Total, fast[i].Pareto, slow[i].Pareto, fast)
			}
		}
	}
}

func TestSweepRangeClampedToCriticalPath(t *testing.T) {
	ex := benchmarks.Facet() // critical path 4
	points, err := Sweep(ex.Graph, Config{}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].CS != 4 {
		t.Errorf("points = %+v, want single cs=4", points)
	}
}

// TestSweepBelowCriticalPath pins the clamp fix: a well-formed range
// lying entirely below the graph's critical path used to come back as
// zero points with a nil error (pool.MapCtx saw n <= 0); it is now a
// typed *guard.RangeError naming the critical path.
func TestSweepBelowCriticalPath(t *testing.T) {
	ex := benchmarks.Facet() // critical path 4
	points, err := Sweep(ex.Graph, Config{}, 1, 3)
	if points != nil {
		t.Errorf("points = %+v, want none", points)
	}
	var re *guard.RangeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *guard.RangeError", err)
	}
	if re.Lo != 1 || re.Hi != 3 || re.CriticalPath != 4 || re.Graph != ex.Graph.Name {
		t.Errorf("RangeError = %+v, want {Lo:1 Hi:3 CriticalPath:4 Graph:%q}", re, ex.Graph.Name)
	}
	if got := err.Error(); !strings.Contains(got, "critical path") || !strings.Contains(got, "4") {
		t.Errorf("error %q does not name the critical path", got)
	}
}

// TestSweepGraphsBelowCriticalPath applies the same contract to the
// per-graph clamp of the multi-design entry point: one infeasible graph
// fails the request with a typed error naming that graph, instead of
// returning a silently empty row (counts[gi] == 0).
func TestSweepGraphsBelowCriticalPath(t *testing.T) {
	shallow := dfg.New("shallow") // critical path 1: inside [1, 3]
	if err := shallow.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if err := shallow.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := shallow.AddOp("s", op.Add, "a", "b"); err != nil {
		t.Fatal(err)
	}
	deep := benchmarks.Facet().Graph // critical path 4: outside [1, 3]

	out, err := SweepGraphs([]*dfg.Graph{shallow, deep}, Config{}, 1, 3)
	if out != nil {
		t.Errorf("rows = %+v, want none", out)
	}
	var re *guard.RangeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *guard.RangeError", err)
	}
	if re.Graph != deep.Name || re.CriticalPath != 4 || re.Lo != 1 || re.Hi != 3 {
		t.Errorf("RangeError = %+v, want {Lo:1 Hi:3 CriticalPath:4 Graph:%q}", re, deep.Name)
	}

	// The same graphs under a feasible range still sweep fine — the fix
	// only rejects ranges with no feasible point for some graph.
	rows, err := SweepGraphs([]*dfg.Graph{shallow, deep}, Config{}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0]) != 4 || len(rows[1]) != 1 {
		t.Errorf("feasible sweep rows = %d/%d points, want 4/1", len(rows[0]), len(rows[1]))
	}
}
