package core

import (
	"testing"

	"repro/internal/benchmarks"
)

func TestSweepDiffeq(t *testing.T) {
	ex := benchmarks.Diffeq()
	points, err := Sweep(ex.Graph, Config{}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Range starts at the critical path (4), so 5 points.
	if len(points) != 5 {
		t.Fatalf("points = %d, want 5", len(points))
	}
	if points[0].CS != 4 {
		t.Errorf("first point cs = %d, want critical path 4", points[0].CS)
	}
	// The fastest point is always on the frontier.
	if !points[0].Pareto {
		t.Error("fastest point not Pareto")
	}
	// At least one point on the frontier must be cheaper than the
	// fastest (relaxing time buys hardware on this example).
	cheaper := false
	for _, p := range points[1:] {
		if p.Pareto && p.Cost.Total < points[0].Cost.Total {
			cheaper = true
		}
	}
	if !cheaper {
		t.Errorf("no cheaper frontier point found: %+v", points)
	}
	// Pareto correctness: no frontier point dominated by any other.
	for i, p := range points {
		for j, q := range points {
			if i == j || !p.Pareto {
				continue
			}
			if q.CS <= p.CS && q.Cost.Total < p.Cost.Total {
				t.Errorf("frontier point cs=%d dominated by cs=%d", p.CS, q.CS)
			}
		}
	}
}

func TestSweepErrors(t *testing.T) {
	ex := benchmarks.Facet()
	if _, err := Sweep(ex.Graph, Config{}, 0, 5); err == nil {
		t.Error("bad low bound accepted")
	}
	if _, err := Sweep(ex.Graph, Config{}, 5, 4); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestSweepRangeClampedToCriticalPath(t *testing.T) {
	ex := benchmarks.Facet() // critical path 4
	points, err := Sweep(ex.Graph, Config{}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].CS != 4 {
		t.Errorf("points = %+v, want single cs=4", points)
	}
}
