package core

import (
	"context"
	"fmt"

	"repro/internal/ctrl"
	"repro/internal/dfg"
	"repro/internal/guard"
	"repro/internal/mfs"
	"repro/internal/mfsa"
	"repro/internal/op"
	"repro/internal/sched"
)

// Edit describes one local change to a synthesized design's graph.
// Exactly one field must be set. The supported edits are the ones an
// interactive design loop makes between synthesis runs: adding a primary
// input, appending an operation, deleting a sink, and changing an
// operation's cycle count.
type Edit struct {
	// AddInput adds a primary input with the given name.
	AddInput string

	// AddOp appends a new operation; see AddOpEdit.
	AddOp *AddOpEdit

	// RemoveSink deletes the named node, which must have no consumers
	// (a sink). Its producers stay; ones left without consumers become
	// outputs.
	RemoveSink string

	// Retime changes an operation's cycle count; see RetimeEdit.
	Retime *RetimeEdit
}

// AddOpEdit appends one operation to the graph. Args must name existing
// inputs or nodes. Cycles < 1 defaults to 1; DelayNs <= 0 leaves the
// chaining delay at the op kind's default.
type AddOpEdit struct {
	Name    string
	Op      op.Kind
	Args    []string
	Cycles  int
	DelayNs float64
}

// RetimeEdit sets the named operation's Cycles — the multicycle
// annotation of §5.3 — without touching the graph structure.
type RetimeEdit struct {
	Node   string
	Cycles int
}

// apply derives the post-edit graph plus the UpdateFrames seed set: the
// new-graph IDs of every node whose timing inputs the edit changed. The
// input graph is never mutated.
func (e Edit) apply(g *dfg.Graph) (*dfg.Graph, []dfg.NodeID, error) {
	set := 0
	if e.AddInput != "" {
		set++
	}
	if e.AddOp != nil {
		set++
	}
	if e.RemoveSink != "" {
		set++
	}
	if e.Retime != nil {
		set++
	}
	if set != 1 {
		return nil, nil, fmt.Errorf("core: edit must set exactly one of AddInput, AddOp, RemoveSink, Retime (got %d)", set)
	}
	switch {
	case e.AddInput != "":
		c := g.Clone()
		if err := c.AddInput(e.AddInput); err != nil {
			return nil, nil, err
		}
		// A fresh input carries no frame; nothing existing moves, but an
		// empty seed set makes UpdateFrames recompute from scratch, which
		// is exactly right for the cheap O(V+E) frame pass.
		return c, nil, nil
	case e.AddOp != nil:
		c := g.Clone()
		id, err := c.AddOp(e.AddOp.Name, e.AddOp.Op, e.AddOp.Args...)
		if err != nil {
			return nil, nil, err
		}
		if e.AddOp.Cycles >= 1 {
			if err := c.SetCycles(id, e.AddOp.Cycles); err != nil {
				return nil, nil, err
			}
		}
		if e.AddOp.DelayNs > 0 {
			if err := c.SetDelayNs(id, e.AddOp.DelayNs); err != nil {
				return nil, nil, err
			}
		}
		return c, []dfg.NodeID{id}, nil
	case e.RemoveSink != "":
		return removeSink(g, e.RemoveSink)
	default:
		c := g.Clone()
		n, ok := c.Lookup(e.Retime.Node)
		if !ok {
			return nil, nil, fmt.Errorf("core: retime: no node %q in %s", e.Retime.Node, g.Name)
		}
		if err := c.SetCycles(n.ID, e.Retime.Cycles); err != nil {
			return nil, nil, err
		}
		return c, []dfg.NodeID{n.ID}, nil
	}
}

// removeSink rebuilds g without the named sink. Node IDs are dense and
// append-only, so deletion means reconstruction; everything else — names,
// args, cycle counts, delays, conditional tags, folded loops — carries
// over verbatim, and IDs past the sink shift down by one.
func removeSink(g *dfg.Graph, name string) (*dfg.Graph, []dfg.NodeID, error) {
	target, ok := g.Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("core: remove: no node %q in %s", name, g.Name)
	}
	if len(target.Succs()) > 0 {
		return nil, nil, fmt.Errorf("core: remove: node %q has %d consumer(s); only sinks can be removed",
			name, len(target.Succs()))
	}
	c := dfg.New(g.Name)
	for _, in := range g.Inputs() {
		if err := c.AddInput(in); err != nil {
			return nil, nil, err
		}
	}
	for _, n := range g.Nodes() {
		if n.ID == target.ID {
			continue
		}
		var id dfg.NodeID
		var err error
		if n.IsLoop() {
			binds := make(map[string]string, len(n.SubIns))
			for i, in := range n.SubIns {
				binds[in] = n.Args[i]
			}
			id, err = c.AddLoop(n.Name, n.Sub.Clone(), n.SubOut, binds)
		} else {
			id, err = c.AddOp(n.Name, n.Op, n.Args...)
		}
		if err != nil {
			return nil, nil, err
		}
		if n.Cycles != 1 {
			if err := c.SetCycles(id, n.Cycles); err != nil {
				return nil, nil, err
			}
		}
		if n.DelayNs != 0 {
			if err := c.SetDelayNs(id, n.DelayNs); err != nil {
				return nil, nil, err
			}
		}
		if len(n.Excl) > 0 {
			if err := c.Tag(id, n.Excl...); err != nil {
				return nil, nil, err
			}
		}
	}
	// Losing a consumer relaxes the producers' latest start times, so
	// each former predecessor seeds the frame update.
	seeds := make([]dfg.NodeID, 0, len(target.Preds()))
	for _, pid := range target.Preds() {
		if p, ok := c.Lookup(g.Node(pid).Name); ok {
			seeds = append(seeds, p.ID)
		}
	}
	return c, seeds, nil
}

// remapFrames carries the pre-edit frames onto the post-edit graph's node
// IDs by name, the shape mfs.ResumeCtx and mfsa.ResumeCtx expect. Nodes
// the old graph never had keep the zero frame; every such node is in the
// seed set, so UpdateFrames re-derives it before anyone reads it.
func remapFrames(newG, oldG *dfg.Graph, old sched.Frames) sched.Frames {
	if old == nil {
		return nil
	}
	byName := make(map[string]sched.Frame, len(old))
	for _, n := range oldG.Nodes() {
		if int(n.ID) < len(old) {
			byName[n.Name] = old[n.ID]
		}
	}
	out := make(sched.Frames, newG.Len())
	for _, n := range newG.Nodes() {
		out[n.ID] = byName[n.Name]
	}
	return out
}

// Resynthesize re-derives a design after a local graph edit, reusing the
// previous run's recorded trajectory for the untouched prefix. The result
// is always bit-identical to synthesizing the edited graph from scratch
// under the design's original Config — replay is an optimization, never a
// semantic shortcut (see mfs.ResumeCtx and mfsa.ResumeCtx for the
// induction) — but on a large design whose edit only perturbs a small
// cone, it skips nearly all of the placement search.
//
// The design must come from Synthesize/ScheduleOnly (or a previous
// Resynthesize): those capture the Config the replay re-runs under.
// Designs assembled by other means (hls.Allocate) are rejected. A design
// synthesized with Config.NoTrace has no trajectory to replay; the call
// still succeeds by falling back to a full run.
//
//hls:sharedok Edit.apply mutates only its own Clone of d.Graph (loop bodies are re-cloned before reuse); d is read-only here
func Resynthesize(d *Design, e Edit) (*Design, error) {
	return ResynthesizeCtx(context.Background(), d, e)
}

// ResynthesizeCtx is Resynthesize with cancellation, the original
// Config's Timeout, input-size guards, and the panic-recovery boundary.
//
//hls:sharedok Edit.apply mutates only its own Clone of d.Graph (loop bodies are re-cloned before reuse); d is read-only here
func ResynthesizeCtx(ctx context.Context, d *Design, e Edit) (out *Design, err error) {
	defer guard.Recover("core.Resynthesize", &err)
	if d == nil || d.Graph == nil || d.Schedule == nil {
		return nil, fmt.Errorf("core: resynthesize needs a completed design (run Synthesize or ScheduleOnly first)")
	}
	if !d.hasCfg {
		return nil, fmt.Errorf("core: resynthesize needs a design produced by Synthesize, ScheduleOnly or Resynthesize; this one carries no synthesis configuration")
	}
	cfg := d.cfg
	newG, seeds, err := e.apply(d.Graph)
	if err != nil {
		return nil, err
	}
	if err := guardInput(newG, cfg); err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, cfg)
	defer cancel()
	oldFrames := remapFrames(newG, d.Graph, d.Schedule.Frames)
	if d.Datapath != nil {
		prev := &mfsa.Result{Schedule: d.Schedule, Datapath: d.Datapath, Cost: d.Cost}
		res, err := mfsa.ResumeCtx(ctx, newG, mfsaOptions(cfg), prev, oldFrames, seeds)
		if err != nil {
			return nil, err
		}
		c, err := ctrl.Build(newG, res.Schedule, res.Datapath)
		if err != nil {
			return nil, err
		}
		out = &Design{
			Graph:      newG,
			Consts:     d.Consts,
			Schedule:   res.Schedule,
			Datapath:   res.Datapath,
			Controller: c,
			Cost:       res.Cost,
		}
	} else {
		s, err := mfs.ResumeCtx(ctx, newG, mfsOptions(cfg), d.Schedule, oldFrames, seeds)
		if err != nil {
			return nil, err
		}
		out = &Design{Graph: newG, Consts: d.Consts, Schedule: s}
	}
	out.captureLintContext(cfg)
	if err := out.lintGate(ctx, cfg); err != nil {
		return nil, err
	}
	return out, nil
}
