// Package core ties the paper's contribution together into the
// end-to-end synthesis flow a SYNTEST-style tool would run (§6):
// behavioral description → data-flow graph → MFS scheduling or MFSA mixed
// scheduling-allocation → FSM controller → structural netlist, with
// simulation-based verification against the behavioral reference at the
// end. The exported entry points here back the public hls façade at the
// repository root and the cmd/ tools.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/behav"
	"repro/internal/ctrl"
	"repro/internal/dfg"
	"repro/internal/diag"
	"repro/internal/emit"
	"repro/internal/guard"
	"repro/internal/library"
	"repro/internal/lint"
	"repro/internal/mfs"
	"repro/internal/mfsa"
	"repro/internal/opt"
	"repro/internal/rtl"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config selects and parameterizes a synthesis run. The zero value is
// invalid: set either CS (time-constrained) or Limits (resource-
// constrained scheduling; MFSA always needs CS).
type Config struct {
	// CS is the time constraint in control steps.
	CS int

	// Limits caps functional units: op symbols for scheduling, library
	// unit names for allocation.
	Limits map[string]int

	// ClockNs enables operation chaining (§5.4).
	ClockNs float64

	// Latency enables functional pipelining with the given initiation
	// interval (§5.5.2).
	Latency int

	// PipelinedOps lists op symbols realized by structurally pipelined
	// units (§5.5.1); scheduling treats their grids as pipelined, and
	// allocation admits matching pipelined library cells.
	PipelinedOps []string

	// Lib is the allocation cell library; nil = library.NCRLike().
	Lib *library.Library

	// Style is the MFSA datapath style (1 or 2); 0 = style 1.
	Style int

	// Weights reweight MFSA's Liapunov terms (time, ALU, mux, register);
	// zeros mean the balanced optimizer.
	Weights [4]float64

	// RegisterInputs allocates registers for primary inputs too.
	RegisterInputs bool

	// Optimize runs the frontend passes (constant folding, common
	// subexpression elimination, dead-code elimination against the
	// declared outputs) before scheduling.
	Optimize bool

	// Parallelism bounds the worker pool used by the parallel hot paths
	// (Sweep, SweepGraphs, the resource-constrained MFS search, and the
	// lint analyzers): 0 = GOMAXPROCS, 1 = sequential, n > 1 = at most n
	// workers. Every setting produces identical results — the knob only
	// trades wall-clock time for CPU share (see DESIGN.md, "Concurrency
	// model").
	Parallelism int

	// Lint runs the internal/lint static verification passes over every
	// produced artifact after synthesis and fails the run on any
	// error-severity diagnostic (warnings and notes are kept on the
	// Design for inspection via Design.Lint).
	Lint bool

	// NoTrace skips recording the move trajectory (Schedule.Trace) and
	// the per-step candidate sets. The schedule and datapath are
	// bit-identical either way; the run just drops the audit metadata,
	// so lint's trace-replay analyzers have nothing to check and the
	// design cannot seed Resynthesize's replay fast path (Resynthesize
	// still works — it falls back to a full run). Intended for very
	// large graphs, where trace materialization dominates the runtime.
	NoTrace bool

	// Timeout bounds the wall-clock time of one entry-point call
	// (Synthesize, ScheduleOnly, Sweep, ...). Zero means no timeout. An
	// expired timeout surfaces as context.DeadlineExceeded, exactly as
	// if the caller had passed an already-expired context.
	Timeout time.Duration

	// MaxNodes caps the number of graph nodes accepted by an entry
	// point: 0 selects guard.DefaultMaxNodes, a negative value disables
	// the check. Oversized inputs fail fast with a *guard.LimitError
	// instead of grinding through an enormous schedule.
	MaxNodes int

	// MaxCSteps caps the time constraint (Config.CS): 0 selects
	// guard.DefaultMaxCSteps, a negative value disables the check.
	// Degenerate constraints fail fast with a *guard.LimitError instead
	// of allocating per-step state for millions of control steps.
	MaxCSteps int
}

// effectiveLimit resolves a limit knob: 0 = the default, negative =
// unlimited (returned as 0, meaning "no check").
func effectiveLimit(knob, def int) int {
	switch {
	case knob == 0:
		return def
	case knob < 0:
		return 0
	default:
		return knob
	}
}

// guardInput is the resource gate every entry point runs before any real
// work: inputs beyond the configured size caps are rejected with a typed
// *guard.LimitError.
func guardInput(g *dfg.Graph, cfg Config) error {
	if max := effectiveLimit(cfg.MaxNodes, guard.DefaultMaxNodes); max > 0 && g != nil && g.Len() > max {
		return &guard.LimitError{What: "graph nodes", Got: g.Len(), Max: max}
	}
	if max := effectiveLimit(cfg.MaxCSteps, guard.DefaultMaxCSteps); max > 0 && cfg.CS > max {
		return &guard.LimitError{What: "control steps", Got: cfg.CS, Max: max}
	}
	return nil
}

// withTimeout applies cfg.Timeout to ctx. The returned cancel must be
// called; it is a no-op when no timeout is configured.
func withTimeout(ctx context.Context, cfg Config) (context.Context, context.CancelFunc) {
	if cfg.Timeout > 0 {
		return context.WithTimeout(ctx, cfg.Timeout)
	}
	return ctx, func() {}
}

// Design is a complete synthesis result. Datapath, Controller and Cost
// are populated by Synthesize (MFSA); Schedule alone by ScheduleOnly
// (MFS).
type Design struct {
	Graph      *dfg.Graph
	Consts     map[string]int64 // literal constants from the behavioral source
	Schedule   *sched.Schedule
	Datapath   *rtl.Datapath
	Controller *ctrl.Controller
	Cost       rtl.Cost

	// lint context captured at synthesis time so Design.Lint can audit
	// the result under the constraints it was produced under.
	limits      map[string]int
	style2      bool
	parallelism int

	// cfg is the full configuration the design was synthesized under,
	// captured so Resynthesize can re-run the exact same flow after a
	// graph edit. hasCfg distinguishes a real capture from a zero value:
	// designs assembled outside the core entry points (hls.Allocate)
	// carry no configuration and cannot be resynthesized.
	cfg    Config
	hasCfg bool
}

// ScheduleOnly runs MFS on a graph.
func ScheduleOnly(g *dfg.Graph, cfg Config) (*Design, error) {
	return ScheduleOnlyCtx(context.Background(), g, cfg)
}

// ScheduleOnlyCtx is ScheduleOnly with cancellation, cfg.Timeout, the
// input-size guards, and the panic-recovery boundary: an internal panic
// surfaces as a *guard.InternalError instead of crashing the caller.
func ScheduleOnlyCtx(ctx context.Context, g *dfg.Graph, cfg Config) (d *Design, err error) {
	defer guard.Recover("core.ScheduleOnly", &err)
	if err := guardInput(g, cfg); err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, cfg)
	defer cancel()
	s, err := mfs.ScheduleCtx(ctx, g, mfsOptions(cfg))
	if err != nil {
		return nil, err
	}
	d = &Design{Graph: g, Schedule: s}
	d.captureLintContext(cfg)
	if err := d.lintGate(ctx, cfg); err != nil {
		return nil, err
	}
	return d, nil
}

// Synthesize runs MFSA on a graph and builds the controller.
func Synthesize(g *dfg.Graph, cfg Config) (*Design, error) {
	return SynthesizeCtx(context.Background(), g, cfg)
}

// SynthesizeCtx is Synthesize with cancellation, cfg.Timeout, the
// input-size guards, and the panic-recovery boundary.
func SynthesizeCtx(ctx context.Context, g *dfg.Graph, cfg Config) (d *Design, err error) {
	defer guard.Recover("core.Synthesize", &err)
	if err := guardInput(g, cfg); err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, cfg)
	defer cancel()
	return synthesize(ctx, g, cfg)
}

// synthesize is the shared MFSA + controller body; guards and timeout
// are already applied by the caller.
func synthesize(ctx context.Context, g *dfg.Graph, cfg Config) (*Design, error) {
	res, err := mfsa.SynthesizeCtx(ctx, g, mfsaOptions(cfg))
	if err != nil {
		return nil, err
	}
	c, err := ctrl.Build(g, res.Schedule, res.Datapath)
	if err != nil {
		return nil, err
	}
	d := &Design{
		Graph:      g,
		Schedule:   res.Schedule,
		Datapath:   res.Datapath,
		Controller: c,
		Cost:       res.Cost,
	}
	d.captureLintContext(cfg)
	if err := d.lintGate(ctx, cfg); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Design) captureLintContext(cfg Config) {
	d.limits = cfg.Limits
	d.style2 = cfg.Style == 2
	d.parallelism = cfg.Parallelism
	d.cfg = cfg
	d.hasCfg = true
}

// lintGate enforces cfg.Lint: any error-severity diagnostic fails the
// synthesis run.
func (d *Design) lintGate(ctx context.Context, cfg Config) error {
	if !cfg.Lint {
		return nil
	}
	ds, err := d.LintCtx(ctx)
	if err != nil {
		return err
	}
	var errs diag.List
	for _, x := range ds {
		if x.Severity >= diag.Error {
			errs = append(errs, x)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("core: lint found %d error(s): %w", len(errs), errs.ErrOrNil())
	}
	return nil
}

// Lint runs the static verification analyzers (internal/lint) over
// every artifact the design has — graph, schedule with its recorded
// trajectory, datapath, controller, and the emitted netlist when the
// design is fully allocated — and returns the aggregated diagnostics.
// Passing analyzer names restricts the run to those passes.
func (d *Design) Lint(analyzers ...string) (diag.List, error) {
	return d.LintCtx(context.Background(), analyzers...)
}

// LintCtx is Lint with cancellation.
func (d *Design) LintCtx(ctx context.Context, analyzers ...string) (diag.List, error) {
	return lint.RunCtx(ctx, d.LintUnit(), lint.Options{Analyzers: analyzers, Parallelism: d.parallelism})
}

// LintUnit bundles the design's artifacts — graph, schedule, datapath,
// controller, and the freshly emitted netlist when the design is fully
// allocated — the way the lint and translation-validation passes
// consume them.
func (d *Design) LintUnit() *lint.Unit {
	u := &lint.Unit{
		Graph:      d.Graph,
		Schedule:   d.Schedule,
		Limits:     d.limits,
		Datapath:   d.Datapath,
		Style2:     d.style2,
		Controller: d.Controller,
	}
	if d.Datapath != nil && d.Controller != nil {
		u.Netlist = emit.Verilog(d.Graph, d.Schedule, d.Datapath, d.Controller)
	}
	return u
}

// Certify runs the translation-validation pass alone: symbolic
// equivalence of the DFG reference, the scheduled datapath, and the
// emitted netlist (see internal/lint's equiv analyzer). The returned
// certificate carries one proof per design output plus any refuting
// diagnostics with their counterexamples.
func (d *Design) Certify() (*lint.Certificate, error) {
	return d.CertifyCtx(context.Background())
}

// CertifyCtx is Certify with cancellation.
func (d *Design) CertifyCtx(ctx context.Context) (*lint.Certificate, error) {
	return lint.Certify(ctx, d.LintUnit())
}

// SynthesizeSource parses a behavioral description and synthesizes it,
// running the frontend optimization passes first when cfg.Optimize is
// set.
func SynthesizeSource(src string, cfg Config) (*Design, error) {
	return SynthesizeSourceCtx(context.Background(), src, cfg)
}

// SynthesizeSourceCtx is SynthesizeSource with cancellation, cfg.Timeout,
// the input-size guards, and the panic-recovery boundary.
func SynthesizeSourceCtx(ctx context.Context, src string, cfg Config) (d *Design, err error) {
	defer guard.Recover("core.SynthesizeSource", &err)
	g, consts, err := frontend(src, cfg)
	if err != nil {
		return nil, err
	}
	if err := guardInput(g, cfg); err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, cfg)
	defer cancel()
	d, err = synthesize(ctx, g, cfg)
	if err != nil {
		return nil, err
	}
	d.Consts = consts
	return d, nil
}

// frontend parses a source and optionally optimizes the graph.
func frontend(src string, cfg Config) (*dfg.Graph, map[string]int64, error) {
	g, consts, outputs, err := behav.Compile(src)
	if err != nil {
		return nil, nil, err
	}
	if !cfg.Optimize {
		return g, consts, nil
	}
	res, err := opt.Pipeline(g, consts, outputs)
	if err != nil {
		return nil, nil, err
	}
	return res.Graph, res.Consts, nil
}

// ScheduleSource parses a behavioral description and schedules it with
// MFS (loops are folded per §5.2).
func ScheduleSource(src string, cfg Config) (*Design, *mfs.LoopDesign, error) {
	return ScheduleSourceCtx(context.Background(), src, cfg)
}

// ScheduleSourceCtx is ScheduleSource with cancellation, cfg.Timeout,
// the input-size guards, and the panic-recovery boundary.
func ScheduleSourceCtx(ctx context.Context, src string, cfg Config) (d *Design, ld *mfs.LoopDesign, err error) {
	defer guard.Recover("core.ScheduleSource", &err)
	g, consts, err := frontend(src, cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := guardInput(g, cfg); err != nil {
		return nil, nil, err
	}
	ctx, cancel := withTimeout(ctx, cfg)
	defer cancel()
	ld, err = mfs.ScheduleLoopsCtx(ctx, g, mfsOptions(cfg))
	if err != nil {
		return nil, nil, err
	}
	d = &Design{Graph: g, Consts: consts, Schedule: ld.Schedule}
	d.captureLintContext(cfg)
	if err := d.lintGate(ctx, cfg); err != nil {
		return nil, nil, err
	}
	return d, ld, nil
}

func mfsOptions(cfg Config) mfs.Options {
	piped := make(map[string]bool, len(cfg.PipelinedOps))
	for _, sym := range cfg.PipelinedOps {
		piped[sym] = true
	}
	return mfs.Options{
		CS:             cfg.CS,
		Limits:         cfg.Limits,
		ClockNs:        cfg.ClockNs,
		Latency:        cfg.Latency,
		PipelinedTypes: piped,
		Parallelism:    cfg.Parallelism,
		NoTrace:        cfg.NoTrace,
	}
}

func mfsaOptions(cfg Config) mfsa.Options {
	return mfsa.Options{
		CS:      cfg.CS,
		Lib:     cfg.Lib,
		Style:   mfsa.Style(cfg.Style),
		ClockNs: cfg.ClockNs,
		Latency: cfg.Latency,
		Weights: mfsa.Weights{
			Time: cfg.Weights[0], ALU: cfg.Weights[1],
			Mux: cfg.Weights[2], Reg: cfg.Weights[3],
		},
		UsePipelinedUnits: len(cfg.PipelinedOps) > 0,
		Limits:            cfg.Limits,
		RegisterInputs:    cfg.RegisterInputs,
		NoTrace:           cfg.NoTrace,
	}
}

// Netlist renders the design's structural netlist; it requires a full
// Synthesize result.
func (d *Design) Netlist() (string, error) {
	if d.Datapath == nil || d.Controller == nil {
		return "", fmt.Errorf("core: netlist needs an allocated design (run Synthesize)")
	}
	return emit.Verilog(d.Graph, d.Schedule, d.Datapath, d.Controller), nil
}

// Simulate runs the design cycle-accurately on the given inputs (merged
// with any literal constants from the source) and returns every signal.
func (d *Design) Simulate(inputs map[string]int64) (map[string]int64, error) {
	return d.SimulateCtx(context.Background(), inputs)
}

// SimulateCtx is Simulate with cancellation and the simulator's step
// budget (see internal/sim).
func (d *Design) SimulateCtx(ctx context.Context, inputs map[string]int64) (map[string]int64, error) {
	all := make(map[string]int64, len(inputs)+len(d.Consts))
	for k, v := range d.Consts {
		all[k] = v
	}
	for k, v := range inputs {
		all[k] = v
	}
	if d.Datapath != nil {
		return sim.RunRTLCtx(ctx, d.Schedule, d.Datapath, all)
	}
	return sim.RunCtx(ctx, d.Schedule, all)
}

// SelfCheck cross-checks the synthesized design against the behavioral
// reference on n reproducible random input vectors (n <= 0 selects
// sim.DefaultCrossCheckSeeds), holding literal constants at their
// declared values.
func (d *Design) SelfCheck(n int) error {
	if err := sim.CrossCheckSeedsCtx(context.Background(), d.Schedule, d.Datapath, n, d.Consts); err != nil {
		return fmt.Errorf("core: self-check %w", err)
	}
	return nil
}
