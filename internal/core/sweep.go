package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dfg"
	"repro/internal/guard"
	"repro/internal/library"
	"repro/internal/pool"
	"repro/internal/rtl"
)

// guardSweepRange validates a [csLo, csHi] sweep request: malformed
// ranges are a *guard.RangeError, ranges reaching past the MaxCSteps cap
// a *guard.LimitError.
func guardSweepRange(cfg Config, csLo, csHi int) error {
	if csLo < 1 || csHi < csLo {
		return fmt.Errorf("core: %w", &guard.RangeError{Lo: csLo, Hi: csHi})
	}
	if max := effectiveLimit(cfg.MaxCSteps, guard.DefaultMaxCSteps); max > 0 && csHi > max {
		return fmt.Errorf("core: %w", &guard.LimitError{What: "sweep control steps", Got: csHi, Max: max})
	}
	return nil
}

// SweepPoint is one design point of a time-constraint sweep.
type SweepPoint struct {
	CS   int
	Cost rtl.Cost
	ALUs string

	// Pareto marks points not dominated by any other point (no other
	// point is both at most as slow and strictly cheaper, or strictly
	// faster and at most as expensive).
	Pareto bool
}

// Sweep synthesizes g with MFSA at every time constraint in [csLo, csHi]
// (skipping constraints below the critical path) and returns the
// cost/time design points with the Pareto frontier marked — the
// trade-off exploration a user of the paper's tool would run before
// committing to a constraint. Every point is an independent synthesis
// over the same read-only graph, so the points are computed concurrently
// on cfg.Parallelism workers; results come back in cs order and are
// identical at every parallelism setting.
func Sweep(g *dfg.Graph, cfg Config, csLo, csHi int) ([]SweepPoint, error) {
	return SweepCtx(context.Background(), g, cfg, csLo, csHi)
}

// SweepCtx is Sweep with cancellation, cfg.Timeout (bounding the whole
// sweep, not each point), the input-size guards, and the panic-recovery
// boundary. A cancelled sweep returns ctx.Err(), never partial points.
func SweepCtx(ctx context.Context, g *dfg.Graph, cfg Config, csLo, csHi int) (points []SweepPoint, err error) {
	defer guard.Recover("core.Sweep", &err)
	if err := guardSweepRange(cfg, csLo, csHi); err != nil {
		return nil, err
	}
	if err := guardInput(g, cfg); err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, cfg)
	defer cancel()
	if cfg.Lib == nil {
		// Resolve the default library once for the whole sweep instead of
		// letting every design point rebuild it.
		cfg.Lib = library.NCRLike()
	}
	// The clamp below never silently empties the range: a request whose
	// whole [csLo, csHi] sits under the critical path used to reach
	// pool.MapCtx with n <= 0 and return zero points with a nil error — a
	// success-shaped failure. It is now a typed *guard.RangeError naming
	// the critical path.
	if cp := g.CriticalPathCycles(); csLo < cp {
		if cp > csHi {
			return nil, fmt.Errorf("core: sweep %s: %w", g.Name,
				&guard.RangeError{Lo: csLo, Hi: csHi, CriticalPath: cp, Graph: g.Name})
		}
		csLo = cp
	}
	points, err = pool.MapCtx(ctx, pool.Size(cfg.Parallelism), csHi-csLo+1,
		func(i int) (SweepPoint, error) {
			c := cfg
			c.CS = csLo + i
			d, err := synthesize(ctx, g, c)
			if err != nil {
				return SweepPoint{}, fmt.Errorf("core: sweep at cs=%d: %w", c.CS, err)
			}
			return SweepPoint{
				CS:   c.CS,
				Cost: d.Cost,
				ALUs: d.Datapath.ALUSummary(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	markPareto(points)
	return points, nil
}

// SweepGraphs sweeps several designs over one shared worker pool: the
// whole graphs × constraints grid is flattened into independent
// synthesis jobs, so a multi-design exploration saturates the machine
// even when individual sweep ranges are short. Each graph's range is
// clamped to its own critical path, exactly as Sweep would clamp it, and
// the returned slice is indexed like gs with per-graph Pareto marks.
func SweepGraphs(gs []*dfg.Graph, cfg Config, csLo, csHi int) ([][]SweepPoint, error) {
	return SweepGraphsCtx(context.Background(), gs, cfg, csLo, csHi)
}

// SweepGraphsCtx is SweepGraphs with cancellation, cfg.Timeout (bounding
// the whole grid), the input-size guards, and the panic-recovery
// boundary. A cancelled sweep returns ctx.Err(), never partial points.
func SweepGraphsCtx(ctx context.Context, gs []*dfg.Graph, cfg Config, csLo, csHi int) (out [][]SweepPoint, err error) {
	defer guard.Recover("core.SweepGraphs", &err)
	if err := guardSweepRange(cfg, csLo, csHi); err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, cfg)
	defer cancel()
	if cfg.Lib == nil {
		cfg.Lib = library.NCRLike()
	}
	type job struct {
		g      *dfg.Graph
		gi, cs int
	}
	var jobs []job
	counts := make([]int, len(gs))
	for gi, g := range gs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if g == nil {
			return nil, fmt.Errorf("core: sweep graphs: nil graph at %d", gi)
		}
		if err := guardInput(g, cfg); err != nil {
			return nil, fmt.Errorf("core: sweep graphs: %s: %w", g.Name, err)
		}
		lo := csLo
		if cp := g.CriticalPathCycles(); lo < cp {
			// Same fix as SweepCtx's clamp: a graph whose critical path
			// exceeds csHi would contribute zero jobs (counts[gi] == 0) and
			// come back as a silently empty row; fail the request instead,
			// naming the graph so a batched caller can drop it and retry.
			if cp > csHi {
				return nil, fmt.Errorf("core: sweep graphs: %w",
					&guard.RangeError{Lo: csLo, Hi: csHi, CriticalPath: cp, Graph: g.Name})
			}
			lo = cp
		}
		for cs := lo; cs <= csHi; cs++ {
			jobs = append(jobs, job{g, gi, cs})
			counts[gi]++
		}
	}
	flat, err := pool.MapCtx(ctx, pool.Size(cfg.Parallelism), len(jobs),
		func(i int) (SweepPoint, error) {
			c := cfg
			c.CS = jobs[i].cs
			d, err := synthesize(ctx, jobs[i].g, c)
			if err != nil {
				return SweepPoint{}, fmt.Errorf("core: sweep %s at cs=%d: %w",
					jobs[i].g.Name, jobs[i].cs, err)
			}
			return SweepPoint{
				CS:   jobs[i].cs,
				Cost: d.Cost,
				ALUs: d.Datapath.ALUSummary(),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	out = make([][]SweepPoint, len(gs))
	next := 0
	//hls:ctxok assembles results the pooled workers already computed; O(points) slicing after the cancellable phase is over
	for gi := range gs {
		if counts[gi] == 0 {
			continue
		}
		out[gi] = flat[next : next+counts[gi] : next+counts[gi]]
		next += counts[gi]
		markPareto(out[gi])
	}
	return out, nil
}

// markPareto marks the non-dominated points in one sort plus a linear
// scan: points are visited in (CS, Total) order, and a point survives
// iff it matches the cheapest total of its own CS group and undercuts
// the cheapest total of every strictly faster group. Equivalent to the
// quadratic all-pairs check (sweep_test.go keeps that as the reference
// oracle) at O(n log n).
func markPareto(points []SweepPoint) {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa.CS != pb.CS {
			return pa.CS < pb.CS
		}
		return pa.Cost.Total < pb.Cost.Total
	})
	bestPrev := math.Inf(1) // cheapest total over strictly faster groups
	for i := 0; i < len(idx); {
		j := i
		for ; j < len(idx) && points[idx[j]].CS == points[idx[i]].CS; j++ {
		}
		groupMin := points[idx[i]].Cost.Total // group sorted cheapest-first
		for k := i; k < j; k++ {
			p := &points[idx[k]]
			p.Pareto = p.Cost.Total <= groupMin && p.Cost.Total < bestPrev
		}
		if groupMin < bestPrev {
			bestPrev = groupMin
		}
		i = j
	}
}
