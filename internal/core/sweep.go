package core

import (
	"fmt"

	"repro/internal/dfg"
	"repro/internal/rtl"
)

// SweepPoint is one design point of a time-constraint sweep.
type SweepPoint struct {
	CS   int
	Cost rtl.Cost
	ALUs string

	// Pareto marks points not dominated by any other point (no other
	// point is both at most as slow and strictly cheaper, or strictly
	// faster and at most as expensive).
	Pareto bool
}

// Sweep synthesizes g with MFSA at every time constraint in [csLo, csHi]
// (skipping constraints below the critical path) and returns the
// cost/time design points with the Pareto frontier marked — the
// trade-off exploration a user of the paper's tool would run before
// committing to a constraint.
func Sweep(g *dfg.Graph, cfg Config, csLo, csHi int) ([]SweepPoint, error) {
	if csLo < 1 || csHi < csLo {
		return nil, fmt.Errorf("core: bad sweep range [%d, %d]", csLo, csHi)
	}
	if cp := g.CriticalPathCycles(); csLo < cp {
		csLo = cp
	}
	var points []SweepPoint
	for cs := csLo; cs <= csHi; cs++ {
		c := cfg
		c.CS = cs
		d, err := Synthesize(g, c)
		if err != nil {
			return nil, fmt.Errorf("core: sweep at cs=%d: %w", cs, err)
		}
		points = append(points, SweepPoint{
			CS:   cs,
			Cost: d.Cost,
			ALUs: d.Datapath.ALUSummary(),
		})
	}
	markPareto(points)
	return points, nil
}

func markPareto(points []SweepPoint) {
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			betterOrEqual := points[j].CS <= points[i].CS && points[j].Cost.Total <= points[i].Cost.Total
			strictlyBetter := points[j].CS < points[i].CS || points[j].Cost.Total < points[i].Cost.Total
			if betterOrEqual && strictlyBetter {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
	}
}
