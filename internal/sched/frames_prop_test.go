package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dfg"
	"repro/internal/op"
)

func randomGraph(r *rand.Rand, n int) *dfg.Graph {
	g := dfg.New("prop")
	g.AddInput("i0")
	names := []string{"i0"}
	kinds := []op.Kind{op.Add, op.Sub, op.Mul, op.Lt}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		id, err := g.AddOp(name, kinds[r.Intn(len(kinds))],
			names[r.Intn(len(names))], names[r.Intn(len(names))])
		if err != nil {
			panic(err)
		}
		if r.Intn(4) == 0 {
			g.SetCycles(id, 1+r.Intn(3))
		}
		names = append(names, name)
	}
	return g
}

// TestFrameInvariants checks, over random DAGs and time constraints:
//  1. ASAP <= ALAP for every node.
//  2. A node's ASAP respects its predecessors' ASAP completion.
//  3. A node's ALAP leaves room for its successors.
//  4. Loosening cs never shrinks a window and widens total mobility.
func TestFrameInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(r, 6+r.Intn(20))
		cp := g.CriticalPathCycles()
		cs := cp + r.Intn(5)
		fr, err := ComputeFrames(g, cs, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, n := range g.Nodes() {
			f := fr[n.ID]
			if f.ASAP > f.ALAP {
				t.Fatalf("trial %d: %q ASAP %d > ALAP %d", trial, n.Name, f.ASAP, f.ALAP)
			}
			if f.ASAP < 1 || f.ALAP+n.Cycles-1 > cs {
				t.Fatalf("trial %d: %q window [%d,%d] breaks bounds", trial, n.Name, f.ASAP, f.ALAP)
			}
			for _, pid := range n.Preds() {
				p := g.Node(pid)
				if fr[n.ID].ASAP < fr[pid].ASAP+p.Cycles {
					t.Fatalf("trial %d: %q ASAP ignores pred %q", trial, n.Name, p.Name)
				}
				if fr[pid].ALAP+p.Cycles > fr[n.ID].ALAP {
					t.Fatalf("trial %d: %q ALAP ignores succ %q", trial, p.Name, n.Name)
				}
			}
		}
		// Loosened constraint: windows only grow.
		fr2, err := ComputeFrames(g, cs+3, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range g.Nodes() {
			if fr2[n.ID].ASAP != fr[n.ID].ASAP {
				t.Fatalf("trial %d: ASAP changed with looser cs", trial)
			}
			if fr2[n.ID].ALAP != fr[n.ID].ALAP+3 {
				t.Fatalf("trial %d: ALAP did not shift by the slack", trial)
			}
		}
	}
}

// TestShiftedMatchesRecompute checks the identity the resource-
// constrained search relies on: Shifted(k) over the frames at cs equals
// ComputeFrames at cs+k, on random DAGs both with and without chaining
// (chained delays exercise the floating-point boundary handling).
func TestShiftedMatchesRecompute(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(r, 6+r.Intn(20))
		cp := g.CriticalPathCycles()
		for _, clockNs := range []float64{0, 50, 100} {
			if clockNs > 0 {
				// Random graphs keep default delays; skip configs where a
				// single-cycle op cannot fit the clock.
				if err := checkDelaysFit(g, clockNs); err != nil {
					continue
				}
			}
			base, err := ComputeFrames(g, cp, clockNs)
			if err != nil {
				t.Fatalf("trial %d clock %v: %v", trial, clockNs, err)
			}
			for _, k := range []int{0, 1, 3, 9} {
				want, err := ComputeFrames(g, cp+k, clockNs)
				if err != nil {
					t.Fatalf("trial %d clock %v k=%d: %v", trial, clockNs, k, err)
				}
				got := base.Shifted(k)
				for _, n := range g.Nodes() {
					if got[n.ID] != want[n.ID] {
						t.Fatalf("trial %d clock %v k=%d: %q Shifted %+v != recomputed %+v",
							trial, clockNs, k, n.Name, got[n.ID], want[n.ID])
					}
				}
			}
		}
	}
}

// TestChainedFrameInvariants checks the continuous-time variant: chained
// windows are never narrower than the unchained ones.
func TestChainedFrameInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 6+r.Intn(14))
		cp := g.CriticalPathCycles()
		cs := cp + 1
		plain, err := ComputeFrames(g, cs, 0)
		if err != nil {
			t.Fatal(err)
		}
		chained, err := ComputeFrames(g, cs, 100)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range g.Nodes() {
			pf, cf := plain[n.ID], chained[n.ID]
			if cf.ASAP > pf.ASAP {
				t.Fatalf("trial %d: %q chained ASAP %d later than plain %d",
					trial, n.Name, cf.ASAP, pf.ASAP)
			}
			if cf.ALAP < pf.ALAP {
				t.Fatalf("trial %d: %q chained ALAP %d earlier than plain %d",
					trial, n.Name, cf.ALAP, pf.ALAP)
			}
		}
	}
}
