package sched

import "repro/internal/dfg"

// PriorityOrder implements MFS step 2: operations are ranked by walking
// the ALAP schedule from the first control step onward, and within a step
// the operation with the smaller mobility goes first. Two refinements from
// §5.3 apply to multicycle operations: when the mobility difference
// between two k-cycle operations is smaller than k the rule inverts (the
// more mobile one goes first, since it can always fall back on empty
// positions), and remaining ties go to the operation whose predecessors
// finish earlier. Final ties break on node ID so runs are deterministic
// (the paper breaks them "arbitrarily").
func PriorityOrder(g *dfg.Graph, frames Frames) []dfg.NodeID {
	ids := g.TopoOrder()
	earliest := make([]int, g.Len())
	for _, id := range ids {
		n := g.Node(id)
		e := 0
		for _, p := range n.Preds() {
			if f := frames[p].ASAP + g.Node(p).Cycles - 1; f > e {
				e = f
			}
		}
		earliest[id] = e // latest finishing step among predecessors' ASAPs
	}
	higher := func(a, b dfg.NodeID) bool {
		fa, fb := frames[a], frames[b]
		if fa.ALAP != fb.ALAP {
			return fa.ALAP < fb.ALAP
		}
		na, nb := g.Node(a), g.Node(b)
		ma, mb := fa.Mobility(), fb.Mobility()
		if ma != mb {
			k := na.Cycles
			if nb.Cycles > k {
				k = nb.Cycles
			}
			if k > 1 && abs(ma-mb) < k {
				return ma > mb // inverted rule for close multicycle ops
			}
			return ma < mb
		}
		if earliest[a] != earliest[b] {
			return earliest[a] < earliest[b]
		}
		return a < b
	}
	// Emit nodes by priority, constrained to topological order: without
	// chaining an operation's ALAP is strictly earlier than its
	// successors', so this reproduces the plain priority sort exactly;
	// chaining can tie ALAPs across an edge, and committing a consumer
	// before its producer would let the consumer's placement strand the
	// producer without a legal chain slot.
	//
	// The ready list is a binary heap under higher(), O(N log W) for
	// ready-width W instead of the historical O(N·W) best-of-list scan.
	// higher() is antisymmetric with a final ID tie-break, but the §5.3
	// inverted rule makes it non-transitive across mixed-cycle pairs
	// (each pair uses its own k = max cycles), so inside that region no
	// comparison-based order is canonical — the paper breaks such ties
	// "arbitrarily", and the heap's arbitrary choice may differ from the
	// scan's. Outside it (equal-ALAP groups of uniform cycle count — in
	// particular every all-single-cycle graph, and all six paper
	// benchmarks) higher() is a strict total order and the heap pops
	// exactly the scan's unique maximum; priority order equivalence is
	// pinned by TestPriorityOrderMatchesScanOracle.
	out := make([]dfg.NodeID, 0, len(ids))
	pending := make([]int, g.Len()) // unprocessed pred count
	for _, id := range ids {
		pending[id] = len(g.Node(id).Preds())
	}
	ready := make([]dfg.NodeID, 0, len(ids))
	push := func(id dfg.NodeID) {
		ready = append(ready, id)
		for i := len(ready) - 1; i > 0; {
			p := (i - 1) / 2
			if !higher(ready[i], ready[p]) {
				break
			}
			ready[i], ready[p] = ready[p], ready[i]
			i = p
		}
	}
	pop := func() dfg.NodeID {
		top := ready[0]
		last := len(ready) - 1
		ready[0] = ready[last]
		ready = ready[:last]
		for i := 0; ; {
			b, l, r := i, 2*i+1, 2*i+2
			if l < last && higher(ready[l], ready[b]) {
				b = l
			}
			if r < last && higher(ready[r], ready[b]) {
				b = r
			}
			if b == i {
				break
			}
			ready[i], ready[b] = ready[b], ready[i]
			i = b
		}
		return top
	}
	for _, id := range ids {
		if pending[id] == 0 {
			push(id)
		}
	}
	for len(ready) > 0 {
		id := pop()
		out = append(out, id)
		for _, s := range g.Node(id).Succs() {
			pending[s]--
			if pending[s] == 0 {
				push(s)
			}
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
