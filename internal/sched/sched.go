// Package sched provides the scheduling substrate shared by MFS, MFSA and
// the baseline schedulers: ASAP/ALAP time frames (with the multicycle and
// chaining extensions of §5.3–5.4), operation mobilities and priority
// ordering (MFS step 2), the Schedule result type, and an independent
// legality verifier used throughout the test suite.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
)

// Placement records where one operation landed: its start control step and
// the functional-unit instance executing it. For MFS the Type is the
// operation symbol (single-function units); for MFSA it is the library
// unit name. Steps and indices are 1-based, matching the paper's grid.
type Placement struct {
	Step  int    // start control step, 1..CS
	Type  string // FU type key (grid identifier)
	Index int    // FU instance within the type, 1..max_j
}

// Schedule is the result of a scheduling (or scheduling-allocation) run.
type Schedule struct {
	Graph *dfg.Graph
	CS    int // total control steps

	// Placements maps every node to its placement.
	Placements map[dfg.NodeID]Placement

	// ClockNs is the control-step clock period when chaining is enabled
	// (§5.4); 0 means one operation level per step.
	ClockNs float64

	// Latency is the functional-pipelining initiation interval L (§5.5.2);
	// 0 means no functional pipelining. Operations in steps t and t+k·L
	// execute concurrently.
	Latency int

	// PipelinedTypes marks FU types implemented by structurally pipelined
	// units (§5.5.1): instances accept a new operation every step, so two
	// operations on one instance conflict only when they start together.
	PipelinedTypes map[string]bool

	// Trace, when non-nil, is the recorded move trajectory of the run
	// that produced the schedule (see Trace). The schedulers record it
	// so the Liapunov audit can replay every placement decision; it is
	// advisory metadata and plays no part in legality.
	Trace *Trace

	// Frames, when non-nil, holds the ASAP/ALAP frames the schedule was
	// derived under. Like Trace it is advisory metadata: incremental
	// re-synthesis (core.Resynthesize) seeds its dirty-cone frame update
	// from it instead of recomputing both graph passes from scratch.
	Frames Frames
}

// NewSchedule returns an empty schedule over g with cs control steps.
func NewSchedule(g *dfg.Graph, cs int) *Schedule {
	return &Schedule{
		Graph:          g,
		CS:             cs,
		Placements:     make(map[dfg.NodeID]Placement, g.Len()),
		PipelinedTypes: make(map[string]bool),
	}
}

// Place records node id at p.
func (s *Schedule) Place(id dfg.NodeID, p Placement) {
	s.Placements[id] = p
}

// StepsOf returns the control-step rows node id occupies, honoring
// multicycle duration, structural pipelining (a pipelined instance holds
// an op only at its start row for conflict purposes), and functional
// pipelining (rows fold modulo Latency). The rows are the conflict
// footprint on the instance, not the externally visible latency.
func (s *Schedule) StepsOf(id dfg.NodeID) []int {
	p, ok := s.Placements[id]
	if !ok {
		return nil
	}
	n := s.Graph.Node(id)
	cycles := n.Cycles
	if s.PipelinedTypes[p.Type] {
		cycles = 1 // the instance frees its first stage the next step
	}
	rows := make([]int, 0, cycles)
	for i := 0; i < cycles; i++ {
		r := p.Step + i
		if s.Latency > 0 {
			r = ((r - 1) % s.Latency) + 1
		}
		rows = append(rows, r)
	}
	return rows
}

// InstancesPerType counts the distinct FU instances the schedule uses per
// type — Table 1's result columns.
func (s *Schedule) InstancesPerType() map[string]int {
	max := make(map[string]int)
	for _, p := range s.Placements {
		if p.Index > max[p.Type] {
			max[p.Type] = p.Index
		}
	}
	return max
}

// TypeNames returns the used FU type keys in sorted order.
func (s *Schedule) TypeNames() []string {
	seen := make(map[string]bool)
	for _, p := range s.Placements {
		seen[p.Type] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders a compact per-step listing for debugging.
func (s *Schedule) String() string {
	byStep := make(map[int][]string)
	//hls:orderok each step's bucket is sorted before rendering, so the listing is identical across runs
	for id, p := range s.Placements {
		n := s.Graph.Node(id)
		byStep[p.Step] = append(byStep[p.Step],
			fmt.Sprintf("%s@%s%d", n.Name, p.Type, p.Index))
	}
	out := fmt.Sprintf("schedule %s cs=%d\n", s.Graph.Name, s.CS)
	for t := 1; t <= s.CS; t++ {
		names := byStep[t]
		sort.Strings(names)
		out += fmt.Sprintf("  t%-3d %v\n", t, names)
	}
	return out
}
