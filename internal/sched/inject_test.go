package sched_test

// Failure-injection meta-tests of the verifier: take legal schedules,
// apply targeted corruptions, and require sched.Verify to reject every
// one. The verifier gates every scheduler and the serialization decoder,
// so its own blind spots would silently undermine the whole test suite.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/mfs"
	"repro/internal/sched"
)

// legalSchedules builds a pool of verified schedules across features.
func legalSchedules(t *testing.T) []*sched.Schedule {
	t.Helper()
	var out []*sched.Schedule
	for _, ex := range benchmarks.All() {
		cs := ex.TimeConstraints[0]
		opt := mfs.Options{CS: cs, ClockNs: ex.ClockNs}
		if ex.Latency != nil {
			opt.Latency = ex.Latency(cs)
		}
		s, err := mfs.Schedule(ex.Graph, opt)
		if err != nil {
			t.Fatalf("%s: %v", ex.Name, err)
		}
		out = append(out, s)
	}
	return out
}

func clone(s *sched.Schedule) *sched.Schedule {
	c := sched.NewSchedule(s.Graph, s.CS)
	c.ClockNs = s.ClockNs
	c.Latency = s.Latency
	for typ, on := range s.PipelinedTypes {
		c.PipelinedTypes[typ] = on
	}
	for id, p := range s.Placements {
		c.Place(id, p)
	}
	return c
}

// mutations are corruption strategies; each returns false when it could
// not apply to the given schedule (e.g. no eligible node).
var mutations = []struct {
	name  string
	apply func(r *rand.Rand, s *sched.Schedule) bool
}{
	{"drop-placement", func(r *rand.Rand, s *sched.Schedule) bool {
		for id := range s.Placements {
			delete(s.Placements, id)
			return true
		}
		return false
	}},
	{"before-predecessor", func(r *rand.Rand, s *sched.Schedule) bool {
		for _, n := range s.Graph.Nodes() {
			if len(n.Preds()) == 0 {
				continue
			}
			pred := s.Graph.Node(n.Preds()[0])
			pp := s.Placements[pred.ID]
			p := s.Placements[n.ID]
			target := pp.Step + pred.Cycles - 2 // strictly before pred completes, minus chaining room
			if s.ClockNs > 0 {
				target = pp.Step - 1
			}
			if target < 1 {
				continue
			}
			p.Step = target
			s.Placements[n.ID] = p
			return true
		}
		return false
	}},
	{"collide-resources", func(r *rand.Rand, s *sched.Schedule) bool {
		// Move one op onto another op's exact (type,index,step) when they
		// are not mutually exclusive.
		nodes := s.Graph.Nodes()
		for i := 0; i < len(nodes); i++ {
			for j := 0; j < len(nodes); j++ {
				if i == j {
					continue
				}
				a, b := nodes[i], nodes[j]
				if s.Graph.MutuallyExclusive(a.ID, b.ID) {
					continue
				}
				pa, pb := s.Placements[a.ID], s.Placements[b.ID]
				if pa.Type != pb.Type || a.Cycles != b.Cycles {
					continue
				}
				// Only a true footprint overlap is illegal; same start
				// guarantees it even on pipelined units.
				if pa.Step != pb.Step {
					continue
				}
				pb.Index = pa.Index
				s.Placements[b.ID] = pb
				return true
			}
		}
		return false
	}},
	{"step-out-of-range", func(r *rand.Rand, s *sched.Schedule) bool {
		for id := range s.Placements {
			p := s.Placements[id]
			p.Step = s.CS + 5
			s.Placements[id] = p
			return true
		}
		return false
	}},
	{"zero-index", func(r *rand.Rand, s *sched.Schedule) bool {
		for id := range s.Placements {
			p := s.Placements[id]
			p.Index = 0
			s.Placements[id] = p
			return true
		}
		return false
	}},
}

func TestVerifierCatchesInjectedFaults(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	pool := legalSchedules(t)
	for _, s := range pool {
		if err := s.Verify(nil); err != nil {
			t.Fatalf("pool schedule not legal: %v", err)
		}
	}
	for _, m := range mutations {
		applied := 0
		for pi, s := range pool {
			c := clone(s)
			if !m.apply(r, c) {
				continue
			}
			applied++
			if err := c.Verify(nil); err == nil {
				t.Errorf("mutation %q on schedule %d not caught", m.name, pi)
			}
		}
		if applied == 0 {
			t.Errorf("mutation %q never applied", m.name)
		}
	}
}

func TestVerifierAcceptsUnmutatedClones(t *testing.T) {
	// The clone helper itself must not break legality.
	for i, s := range legalSchedules(t) {
		if err := clone(s).Verify(nil); err != nil {
			t.Errorf("clone %d: %v", i, err)
		}
	}
	_ = fmt.Sprint()
	_ = dfg.NodeID(0)
}
