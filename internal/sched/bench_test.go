package sched_test

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/sched"
)

func BenchmarkComputeFrames(b *testing.B) {
	g := benchmarks.EWF().Graph
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ComputeFrames(g, 21, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeFramesChained(b *testing.B) {
	g := benchmarks.Chained().Graph
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ComputeFrames(g, 4, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPriorityOrder(b *testing.B) {
	g := benchmarks.EWF().Graph
	frames, err := sched.ComputeFrames(g, 21, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sched.PriorityOrder(g, frames)
	}
}

func BenchmarkVerify(b *testing.B) {
	ss := legalScheduleForBench(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ss.Verify(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func legalScheduleForBench(b *testing.B) *sched.Schedule {
	b.Helper()
	g := benchmarks.EWF().Graph
	frames, err := sched.ComputeFrames(g, 21, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Trivial one-op-per-instance schedule at ASAP steps.
	s := sched.NewSchedule(g, 21)
	idx := make(map[string]int)
	for _, n := range g.Nodes() {
		typ := n.Op.String()
		idx[typ]++
		s.Place(n.ID, sched.Placement{Step: frames[n.ID].ASAP, Type: typ, Index: idx[typ]})
	}
	return s
}
