package sched

import (
	"repro/internal/dfg"
	"repro/internal/grid"
	"repro/internal/liapunov"
)

// TraceCandidate is one evaluated alternative of a placement decision:
// a grid position (on the FU type's table), the type it was evaluated
// on, and its Liapunov energy at decision time. MFSA records the full
// candidate set it compared; MFS leaves Candidates empty because its
// static energy function lets an auditor re-enumerate the alternatives
// from the recorded frames alone.
type TraceCandidate struct {
	Pos    grid.Pos
	Type   string
	Energy float64
}

// TraceStep records one committed placement decision: which node moved,
// the frames it saw (the paper's PF, RF, FF and the derived
// MF = PF − (RF ∪ FF)), the scheduler's running FU estimate at that
// moment, the position chosen, and its energy under the run's guiding
// function. Steps are recorded in commit order, so replaying them in
// sequence reconstructs the exact grid occupancy every decision was
// made against.
type TraceStep struct {
	Node dfg.NodeID
	Type string // FU type key: op symbol (MFS) or library unit name (MFSA)

	// PF, RF, FF, MF are the frames at commit time. MFSA folds its
	// forbidden frame into the window bounds and leaves these empty
	// (zero-value frames); the Candidates list then carries the audit
	// trail instead.
	PF, RF, FF, MF grid.Frame

	// CurrentJ and MaxJ are the running FU estimate current_j and the
	// bound max_j of the node's type when the decision was taken.
	CurrentJ, MaxJ int

	Pos    grid.Pos
	Energy float64

	// Candidates lists every alternative the scheduler evaluated,
	// including the chosen one (MFSA only; nil for MFS).
	Candidates []TraceCandidate

	// Grown lists the FU types whose running estimate current_j was
	// incremented while placing this node, in growth order (MFSA may
	// grow a cheaper unit than the one finally chosen, so the chosen
	// type and CurrentJ alone cannot reconstruct the growth). Replay
	// (mfs/mfsa ResumeCtx) applies these increments before re-committing
	// the recorded decision.
	Grown []string
}

// Trace is the recorded move trajectory of one scheduling run. The
// Liapunov audit (internal/lint) replays it: it rebuilds the placement
// grids step by step, re-derives each move frame independently, and
// flags any step that failed to decrease the Liapunov energy V(X) to
// the minimum free position — the monotone-descent property the
// paper's convergence argument rests on.
type Trace struct {
	// Fn is the static guiding function of the run, when one exists
	// (MFS). MFSA's dynamic composite function depends on datapath
	// state, so MFSA leaves Fn nil and records Candidates instead.
	Fn liapunov.Func

	Steps []TraceStep
}

// Equal reports whether two traces record the identical trajectory:
// same step sequence, and per step the same node, type, position,
// energy (exact float equality — the trajectories must be bit-identical,
// not merely close), frames, FU estimates, candidate sets and growth
// lists. It backs the engine invariance cross-checks (ordered walk
// on/off, occupancy index on/off): any divergence in what a scheduler
// saw or chose shows up here even when the final placements agree.
func (t *Trace) Equal(o *Trace) bool {
	if t == nil || o == nil {
		return t == o
	}
	if len(t.Steps) != len(o.Steps) {
		return false
	}
	for i := range t.Steps {
		if !t.Steps[i].Equal(&o.Steps[i]) {
			return false
		}
	}
	return true
}

// Equal reports whether two trace steps record the identical decision.
func (s *TraceStep) Equal(o *TraceStep) bool {
	if s.Node != o.Node || s.Type != o.Type ||
		s.Pos != o.Pos || s.Energy != o.Energy ||
		s.CurrentJ != o.CurrentJ || s.MaxJ != o.MaxJ {
		return false
	}
	if !s.PF.Equal(o.PF) || !s.RF.Equal(o.RF) || !s.FF.Equal(o.FF) || !s.MF.Equal(o.MF) {
		return false
	}
	if len(s.Candidates) != len(o.Candidates) || len(s.Grown) != len(o.Grown) {
		return false
	}
	for i, c := range s.Candidates {
		if c != o.Candidates[i] {
			return false
		}
	}
	for i, g := range s.Grown {
		if g != o.Grown[i] {
			return false
		}
	}
	return true
}

// StepFor returns the trace step that committed node id, if recorded.
func (t *Trace) StepFor(id dfg.NodeID) (*TraceStep, bool) {
	if t == nil {
		return nil, false
	}
	for i := range t.Steps {
		if t.Steps[i].Node == id {
			return &t.Steps[i], true
		}
	}
	return nil, false
}
