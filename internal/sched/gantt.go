package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders the schedule as an ASCII Gantt chart: one row per
// functional-unit instance, one column per control step, multicycle
// operations extending across their duration and exclusive co-residents
// stacked with '/'. Structural-pipelining overlaps show each operation
// at its start step.
func (s *Schedule) Gantt() string {
	type row struct {
		key   string
		cells []string
	}
	rowOf := make(map[string]*row)
	var keys []string
	for _, n := range s.Graph.Nodes() {
		p, ok := s.Placements[n.ID]
		if !ok {
			continue
		}
		key := fmt.Sprintf("%s#%d", p.Type, p.Index)
		r, ok := rowOf[key]
		if !ok {
			r = &row{key: key, cells: make([]string, s.CS+1)}
			rowOf[key] = r
			keys = append(keys, key)
		}
		cyc := n.Cycles
		if s.PipelinedTypes[p.Type] {
			cyc = 1
		}
		for i := 0; i < cyc && p.Step+i <= s.CS; i++ {
			label := n.Name
			if i > 0 {
				label = strings.Repeat(".", len(n.Name))
			}
			if r.cells[p.Step+i] != "" {
				label = r.cells[p.Step+i] + "/" + label
			}
			r.cells[p.Step+i] = label
		}
	}
	sort.Strings(keys)

	width := 6
	for _, key := range keys {
		for _, c := range rowOf[key].cells {
			if len(c) > width {
				width = len(c)
			}
		}
	}
	nameW := 8
	for _, key := range keys {
		if len(key) > nameW {
			nameW = len(key)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", nameW+2, "unit")
	for t := 1; t <= s.CS; t++ {
		fmt.Fprintf(&b, " %-*s", width, fmt.Sprintf("t%d", t))
	}
	b.WriteByte('\n')
	for _, key := range keys {
		fmt.Fprintf(&b, "%-*s", nameW+2, key)
		for t := 1; t <= s.CS; t++ {
			cell := rowOf[key].cells[t]
			if cell == "" {
				cell = "."
			}
			fmt.Fprintf(&b, " %-*s", width, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Utilization reports, per FU type, the fraction of instance-cycles the
// schedule keeps busy: total occupied cycles over instances × span,
// where span is the initiation interval for functionally pipelined
// schedules and CS otherwise. It quantifies the balance MFS optimizes
// for.
func (s *Schedule) Utilization() map[string]float64 {
	span := s.CS
	if s.Latency > 0 {
		span = s.Latency
	}
	busy := make(map[string]int)
	for _, n := range s.Graph.Nodes() {
		p, ok := s.Placements[n.ID]
		if !ok {
			continue
		}
		cyc := n.Cycles
		if s.PipelinedTypes[p.Type] {
			cyc = 1
		}
		busy[p.Type] += cyc
	}
	out := make(map[string]float64, len(busy))
	//hls:orderok each utilization entry is computed from typ's own counters and written keyed
	for typ, cycles := range busy {
		inst := s.InstancesPerType()[typ]
		if inst == 0 || span == 0 {
			continue
		}
		out[typ] = float64(cycles) / float64(inst*span)
	}
	return out
}
