package sched

import "repro/internal/dfg"

// UpdateFrames re-derives ASAP/ALAP frames after a local graph edit,
// recomputing only the cone of nodes the edit can actually affect
// instead of the two whole-graph passes of ComputeFrames. old holds the
// frames of the pre-edit schedule remapped onto g's node IDs (entries
// past len(old) — freshly added nodes — are treated as unknown); seeds
// are the IDs whose timing inputs changed: an added node, the producers
// feeding an added or removed consumer, a retimed node. Every such node
// MUST be seeded — the worklist only re-examines seeds and nodes a
// changed value propagates to.
//
// The update handles the classic integer formulation only. Chained
// frames (clockNs > 0) couple steps through continuous time, where a
// local edit can shift boundary roundings arbitrarily far downstream;
// rather than replicate that analysis, the function falls back to
// ComputeFrames, as it also does when the edit makes the constraint
// infeasible (so the caller always gets the exact InfeasibleError the
// full computation would produce).
//
// Correctness rests on node IDs being topologically ordered (a dfg
// invariant): the forward pass pops pending nodes in increasing ID
// order, so every predecessor's ASAP is final before a node recomputes
// its own, and each node is processed at most once; the backward pass
// mirrors this in decreasing order. Cost is O(|cone| log |cone| +
// edges(cone)).
func UpdateFrames(g *dfg.Graph, cs int, clockNs float64, old Frames, seeds []dfg.NodeID) (Frames, error) {
	if clockNs > 0 || cs < 1 || len(seeds) == 0 {
		return ComputeFrames(g, cs, clockNs)
	}
	frames := make(Frames, g.Len())
	copy(frames, old)
	known := len(old)
	if known > g.Len() {
		known = g.Len()
	}

	// isSeed marks nodes whose own bound must be recomputed even when
	// the recomputation yields the old value (their outgoing
	// contribution — ASAP + cycles — may still have changed, e.g. a
	// retime), and nodes with no trustworthy old frame (fresh IDs).
	isSeed := make(map[dfg.NodeID]bool, len(seeds))
	for _, id := range seeds {
		isSeed[id] = true
	}
	for id := known; id < g.Len(); id++ {
		if !isSeed[dfg.NodeID(id)] {
			return ComputeFrames(g, cs, clockNs) // unseeded fresh node: caller bug; recover exactly
		}
	}

	// Forward pass: min-heap on node ID over the dirty set.
	work := newIDHeap(false)
	inWork := make(map[dfg.NodeID]bool, len(seeds)*2)
	add := func(id dfg.NodeID) {
		if !inWork[id] {
			inWork[id] = true
			work.push(id)
		}
	}
	for _, id := range seeds {
		add(id)
	}
	for work.len() > 0 {
		id := work.pop()
		n := g.Node(id)
		start := 1
		for _, p := range n.Preds() {
			if s := frames[p].ASAP + g.Node(p).Cycles; s > start {
				start = s
			}
		}
		if start+n.Cycles-1 > cs {
			return ComputeFrames(g, cs, clockNs) // infeasible: produce the exact error
		}
		if start != frames[id].ASAP || isSeed[id] {
			frames[id] = Frame{ASAP: start, ALAP: frames[id].ALAP}
			for _, s := range n.Succs() {
				add(s)
			}
		}
	}

	// Backward pass: max-heap on node ID, same structure mirrored.
	work = newIDHeap(true)
	for id := range inWork {
		delete(inWork, id)
	}
	for _, id := range seeds {
		add(id)
	}
	for work.len() > 0 {
		id := work.pop()
		n := g.Node(id)
		start := cs - n.Cycles + 1
		for _, s := range n.Succs() {
			if v := frames[s].ALAP - n.Cycles; v < start {
				start = v
			}
		}
		if start < frames[id].ASAP {
			return ComputeFrames(g, cs, clockNs)
		}
		if start != frames[id].ALAP || isSeed[id] {
			frames[id] = Frame{ASAP: frames[id].ASAP, ALAP: start}
			for _, p := range n.Preds() {
				add(p)
			}
		}
	}
	return frames, nil
}

// NodesEquivalent reports whether two nodes (from different graphs) are
// interchangeable for every input a placement decision reads: identity,
// operation, duration, combinational delay, operand names, exclusion
// tags, and loop-ness. It underpins trace replay in mfs.ResumeCtx and
// mfsa.ResumeCtx: a trace step may be replayed onto a node only when the
// recorded node is equivalent to it.
func NodesEquivalent(a, b *dfg.Node) bool {
	if a.Name != b.Name || a.Op != b.Op || a.Cycles != b.Cycles ||
		a.DelayNs != b.DelayNs || a.IsLoop() != b.IsLoop() {
		return false
	}
	if len(a.Args) != len(b.Args) || len(a.Excl) != len(b.Excl) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	for i := range a.Excl {
		if a.Excl[i] != b.Excl[i] {
			return false
		}
	}
	return true
}

// idHeap is a binary heap of node IDs, min- or max-ordered.
type idHeap struct {
	ids []dfg.NodeID
	max bool
}

func newIDHeap(max bool) *idHeap { return &idHeap{max: max} }

func (h *idHeap) len() int { return len(h.ids) }

func (h *idHeap) before(a, b dfg.NodeID) bool {
	if h.max {
		return a > b
	}
	return a < b
}

func (h *idHeap) push(id dfg.NodeID) {
	h.ids = append(h.ids, id)
	for i := len(h.ids) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.before(h.ids[i], h.ids[p]) {
			break
		}
		h.ids[i], h.ids[p] = h.ids[p], h.ids[i]
		i = p
	}
}

func (h *idHeap) pop() dfg.NodeID {
	top := h.ids[0]
	last := len(h.ids) - 1
	h.ids[0] = h.ids[last]
	h.ids = h.ids[:last]
	for i := 0; ; {
		b, l, r := i, 2*i+1, 2*i+2
		if l < last && h.before(h.ids[l], h.ids[b]) {
			b = l
		}
		if r < last && h.before(h.ids[r], h.ids[b]) {
			b = r
		}
		if b == i {
			break
		}
		h.ids[i], h.ids[b] = h.ids[b], h.ids[i]
		i = b
	}
	return top
}
