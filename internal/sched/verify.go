package sched

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
)

// Verify checks a schedule's legality independently of the scheduler that
// produced it: completeness, bounds, data dependencies (with chaining
// delays when ClockNs > 0), functional-unit conflicts (honoring mutual
// exclusion, multicycle footprints, structural pipelining, and functional
// pipelining), and optional per-type instance limits. It returns the first
// violation found, or nil for a legal schedule.
func (s *Schedule) Verify(limits map[string]int) error {
	g := s.Graph
	if s.CS < 1 {
		return fmt.Errorf("verify %s: cs %d", g.Name, s.CS)
	}
	for _, n := range g.Nodes() {
		p, ok := s.Placements[n.ID]
		if !ok {
			return fmt.Errorf("verify %s: node %q unplaced", g.Name, n.Name)
		}
		if p.Step < 1 || p.Step+n.Cycles-1 > s.CS {
			return fmt.Errorf("verify %s: node %q at step %d (cycles %d) outside 1..%d",
				g.Name, n.Name, p.Step, n.Cycles, s.CS)
		}
		if p.Index < 1 {
			return fmt.Errorf("verify %s: node %q: FU index %d", g.Name, n.Name, p.Index)
		}
		if p.Type == "" {
			return fmt.Errorf("verify %s: node %q: empty FU type", g.Name, n.Name)
		}
		if s.Latency > 0 && n.Cycles > s.Latency && !s.PipelinedTypes[p.Type] {
			return fmt.Errorf("verify %s: node %q: %d cycles exceed pipeline latency %d",
				g.Name, n.Name, n.Cycles, s.Latency)
		}
	}
	if err := s.verifyDeps(); err != nil {
		return err
	}
	if err := s.verifyConflicts(); err != nil {
		return err
	}
	if limits != nil {
		for typ, used := range s.InstancesPerType() {
			if lim, ok := limits[typ]; ok && used > lim {
				return fmt.Errorf("verify %s: type %s uses %d instances, limit %d",
					g.Name, typ, used, lim)
			}
		}
	}
	return nil
}

func (s *Schedule) verifyDeps() error {
	g := s.Graph
	// acc[n] is the accumulated combinational delay at n's output within
	// its control step (chaining only).
	acc := make(map[dfg.NodeID]float64, g.Len())
	for _, id := range g.TopoOrder() {
		n := g.Node(id)
		pn := s.Placements[id]
		chain := 0.0
		for _, pid := range n.Preds() {
			pred := g.Node(pid)
			pp := s.Placements[pid]
			predEnd := pp.Step + pred.Cycles - 1
			switch {
			case pn.Step > predEnd:
				// Normal: strictly after the predecessor completes.
			case s.ClockNs > 0 && pn.Step == pp.Step && pred.Cycles == 1 && n.Cycles == 1:
				// Chained within one step; delay accounted below.
				if acc[pid] > chain {
					chain = acc[pid]
				}
			default:
				return fmt.Errorf("verify %s: %q (step %d) starts before %q completes (step %d)",
					g.Name, n.Name, pn.Step, pred.Name, predEnd)
			}
		}
		if s.ClockNs > 0 && n.Cycles == 1 {
			acc[id] = chain + n.DelayNs
			if acc[id] > s.ClockNs+1e-9 {
				return fmt.Errorf("verify %s: chain through %q needs %.1fns, clock is %.1fns",
					g.Name, n.Name, acc[id], s.ClockNs)
			}
		}
	}
	return nil
}

func (s *Schedule) verifyConflicts() error {
	g := s.Graph
	type cell struct {
		typ   string
		index int
	}
	byCell := make(map[cell][]dfg.NodeID)
	for id := range s.Placements {
		p := s.Placements[id]
		c := cell{p.Type, p.Index}
		byCell[c] = append(byCell[c], id)
	}
	// Deterministic error messages.
	cells := make([]cell, 0, len(byCell))
	for c := range byCell {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].typ != cells[j].typ {
			return cells[i].typ < cells[j].typ
		}
		return cells[i].index < cells[j].index
	})
	for _, c := range cells {
		ids := byCell[c]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if !stepsOverlap(s.StepsOf(a), s.StepsOf(b)) {
					continue
				}
				if g.MutuallyExclusive(a, b) {
					continue
				}
				return fmt.Errorf("verify %s: %q and %q collide on %s%d",
					g.Name, g.Node(a).Name, g.Node(b).Name, c.typ, c.index)
			}
		}
	}
	return nil
}

func stepsOverlap(a, b []int) bool {
	set := make(map[int]bool, len(a))
	for _, r := range a {
		set[r] = true
	}
	for _, r := range b {
		if set[r] {
			return true
		}
	}
	return false
}
