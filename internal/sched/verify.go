package sched

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/diag"
)

// The verifier is organized as independent passes — shape, data
// dependencies, functional-unit conflicts, instance limits — each
// reporting every violation it finds as a typed diag.Diagnostic with a
// stable code. Verify keeps the historical first-error contract on top
// of the passes (same strings, same order), so legacy callers are
// unaffected; VerifyAll exposes the full list and is what the lint
// framework (internal/lint) builds on.

// VerifyAll checks a schedule's legality independently of the scheduler
// that produced it and returns every violation found: completeness,
// bounds, data dependencies (with chaining delays when ClockNs > 0),
// functional-unit conflicts (honoring mutual exclusion, multicycle
// footprints, structural pipelining and functional pipelining), and
// optional per-type instance limits. An empty list means a legal
// schedule.
func (s *Schedule) VerifyAll(limits map[string]int) diag.List {
	var out diag.List
	report := func(d diag.Diagnostic) {
		d.Artifact = "schedule"
		d.Design = s.Graph.Name
		d.Severity = diag.Error
		out = append(out, d)
	}
	if s.CS < 1 {
		report(diag.Diagnostic{
			Code:    diag.CodeSchedStepRange,
			Message: fmt.Sprintf("verify %s: cs %d", s.Graph.Name, s.CS),
		})
		return out
	}
	s.verifyShape(report)
	s.verifyDeps(report)
	s.verifyConflicts(report)
	s.verifyLimits(limits, report)
	return out
}

// Verify is the first-error shim over VerifyAll: it returns the first
// violation found (in the same pass order, with the same message
// strings, as the historical single-error verifier), or nil for a
// legal schedule.
func (s *Schedule) Verify(limits map[string]int) error {
	if all := s.VerifyAll(limits); len(all) > 0 {
		return all[:1].ErrOrNil()
	}
	return nil
}

// verifyShape checks per-node completeness and bounds.
func (s *Schedule) verifyShape(report func(diag.Diagnostic)) {
	g := s.Graph
	for _, n := range g.Nodes() {
		p, ok := s.Placements[n.ID]
		if !ok {
			report(diag.Diagnostic{
				Code: diag.CodeSchedUnplaced, Loc: n.Name,
				Message: fmt.Sprintf("verify %s: node %q unplaced", g.Name, n.Name),
			})
			continue
		}
		if p.Step < 1 || p.Step+n.Cycles-1 > s.CS {
			report(diag.Diagnostic{
				Code: diag.CodeSchedStepRange, Loc: n.Name,
				Message: fmt.Sprintf("verify %s: node %q at step %d (cycles %d) outside 1..%d",
					g.Name, n.Name, p.Step, n.Cycles, s.CS),
			})
		}
		if p.Index < 1 {
			report(diag.Diagnostic{
				Code: diag.CodeSchedBadSlot, Loc: n.Name,
				Message: fmt.Sprintf("verify %s: node %q: FU index %d", g.Name, n.Name, p.Index),
			})
		}
		if p.Type == "" {
			report(diag.Diagnostic{
				Code: diag.CodeSchedBadSlot, Loc: n.Name,
				Message: fmt.Sprintf("verify %s: node %q: empty FU type", g.Name, n.Name),
			})
		}
		if s.Latency > 0 && n.Cycles > s.Latency && !s.PipelinedTypes[p.Type] {
			report(diag.Diagnostic{
				Code: diag.CodeSchedPipeline, Loc: n.Name,
				Message: fmt.Sprintf("verify %s: node %q: %d cycles exceed pipeline latency %d",
					g.Name, n.Name, n.Cycles, s.Latency),
			})
		}
	}
}

// verifyDeps checks data-dependency order and chaining delay budgets.
func (s *Schedule) verifyDeps(report func(diag.Diagnostic)) {
	g := s.Graph
	// acc[n] is the accumulated combinational delay at n's output within
	// its control step (chaining only).
	acc := make([]float64, g.Len())
	for _, id := range g.TopoOrder() {
		n := g.Node(id)
		pn, ok := s.Placements[id]
		if !ok {
			continue // reported by verifyShape
		}
		chain := 0.0
		for _, pid := range n.Preds() {
			pred := g.Node(pid)
			pp, pok := s.Placements[pid]
			if !pok {
				continue
			}
			predEnd := pp.Step + pred.Cycles - 1
			switch {
			case pn.Step > predEnd:
				// Normal: strictly after the predecessor completes.
			case s.ClockNs > 0 && pn.Step == pp.Step && pred.Cycles == 1 && n.Cycles == 1:
				// Chained within one step; delay accounted below.
				if acc[pid] > chain {
					chain = acc[pid]
				}
			default:
				report(diag.Diagnostic{
					Code: diag.CodeSchedDepOrder, Loc: n.Name,
					Message: fmt.Sprintf("verify %s: %q (step %d) starts before %q completes (step %d)",
						g.Name, n.Name, pn.Step, pred.Name, predEnd),
				})
			}
		}
		if s.ClockNs > 0 && n.Cycles == 1 {
			acc[id] = chain + n.DelayNs
			if acc[id] > s.ClockNs+1e-9 {
				report(diag.Diagnostic{
					Code: diag.CodeSchedChain, Loc: n.Name,
					Message: fmt.Sprintf("verify %s: chain through %q needs %.1fns, clock is %.1fns",
						g.Name, n.Name, acc[id], s.ClockNs),
				})
			}
		}
	}
}

// verifyConflicts checks functional-unit occupancy collisions.
func (s *Schedule) verifyConflicts(report func(diag.Diagnostic)) {
	g := s.Graph
	type cell struct {
		typ   string
		index int
	}
	byCell := make(map[cell][]dfg.NodeID)
	//hls:orderok occupant lists are sorted per cell before any pair is examined, so report order is map-order free
	for id := range s.Placements {
		p := s.Placements[id]
		c := cell{p.Type, p.Index}
		byCell[c] = append(byCell[c], id)
	}
	// Deterministic report order.
	cells := make([]cell, 0, len(byCell))
	for c := range byCell {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].typ != cells[j].typ {
			return cells[i].typ < cells[j].typ
		}
		return cells[i].index < cells[j].index
	})
	// Bucketing occupants by folded control-step row turns the historical
	// all-pairs scan (quadratic in a cell's population — ruinous when a
	// 100k-node schedule funnels thousands of ops through one instance)
	// into a per-row pass: only ops sharing a row can collide, and a
	// legal schedule has at most one non-exclusive op per row. The pair
	// set and its (a, b) sort reproduce the all-pairs report order and
	// messages exactly.
	type pair struct{ a, b dfg.NodeID }
	byRow := make(map[int][]dfg.NodeID)
	for _, c := range cells {
		ids := byCell[c]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for r := range byRow {
			delete(byRow, r)
		}
		for _, id := range ids {
			for _, r := range s.StepsOf(id) {
				byRow[r] = append(byRow[r], id)
			}
		}
		seen := make(map[pair]bool)
		var conflicts []pair
		for _, row := range byRow {
			for i := 0; i < len(row); i++ {
				for j := i + 1; j < len(row); j++ {
					a, b := row[i], row[j]
					if a > b {
						a, b = b, a
					}
					if a == b || seen[pair{a, b}] {
						continue
					}
					seen[pair{a, b}] = true
					if g.MutuallyExclusive(a, b) {
						continue
					}
					conflicts = append(conflicts, pair{a, b})
				}
			}
		}
		sort.Slice(conflicts, func(i, j int) bool {
			if conflicts[i].a != conflicts[j].a {
				return conflicts[i].a < conflicts[j].a
			}
			return conflicts[i].b < conflicts[j].b
		})
		for _, p := range conflicts {
			report(diag.Diagnostic{
				Code: diag.CodeSchedFUConflict,
				Loc:  fmt.Sprintf("%s%d", c.typ, c.index),
				Message: fmt.Sprintf("verify %s: %q and %q collide on %s%d",
					g.Name, g.Node(p.a).Name, g.Node(p.b).Name, c.typ, c.index),
			})
		}
	}
}

// verifyLimits checks per-type instance counts against user limits.
func (s *Schedule) verifyLimits(limits map[string]int, report func(diag.Diagnostic)) {
	if limits == nil {
		return
	}
	used := s.InstancesPerType()
	types := make([]string, 0, len(used))
	for typ := range used {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		if lim, ok := limits[typ]; ok && used[typ] > lim {
			report(diag.Diagnostic{
				Code: diag.CodeSchedLimit, Loc: typ,
				Message: fmt.Sprintf("verify %s: type %s uses %d instances, limit %d",
					s.Graph.Name, typ, used[typ], lim),
			})
		}
	}
}
