package sched

import "repro/internal/dfg"

// ChainFits reports whether tentatively starting node id at the given
// step keeps every intra-step combinational chain within clockNs, given
// the start steps of the already-placed operations. placed is indexed
// by dfg.NodeID; steps are 1-based, so 0 means "not placed yet" — the
// schedulers maintain this table incrementally as placements commit,
// so the candidate filter costs no per-call map build. Multicycle and
// loop operations are boundary-aligned and never participate in chains.
// Schedulers call this to filter move-frame candidates when chaining
// (§5.4) is enabled.
func ChainFits(g *dfg.Graph, clockNs float64, placed []int, id dfg.NodeID, step int) bool {
	n := g.Node(id)
	if n.Cycles > 1 || n.IsLoop() {
		return true
	}
	stepOf := func(x dfg.NodeID) int {
		if x == id {
			return step
		}
		return placed[x]
	}
	acc := make([]float64, g.Len())
	for _, vid := range g.TopoOrder() {
		v := g.Node(vid)
		vs := stepOf(vid)
		if vs == 0 || v.Cycles > 1 || v.IsLoop() {
			continue
		}
		chain := 0.0
		for _, pid := range v.Preds() {
			if stepOf(pid) != vs {
				continue
			}
			if a := acc[pid]; a > chain {
				chain = a
			}
		}
		acc[vid] = chain + v.DelayNs
		if acc[vid] > clockNs+1e-9 {
			return false
		}
	}
	return true
}

// ChainAccAt returns the accumulated combinational delay at id's output
// if it were to start at step, given the committed placements and the
// incrementally maintained per-node chain accumulator acc (acc[x] is
// the delay at x's output within its step, valid for every placed x).
// Multicycle and loop operations are boundary-aligned: their result is
// registered, so they contribute 0 and never extend a chain.
//
// This is the O(preds) incremental form of the ChainFits full-graph
// walk. It is exact under the invariant the priority-order schedulers
// guarantee: producers commit before consumers, so when id is being
// placed none of its successors is placed, the only chain the tentative
// placement can change is the one ending at id, and every already-placed
// chain was verified when its own tail committed. Callers test
// ChainAccAt(...) ≤ clockNs (+ the usual 1e-9 slack) to accept a
// position and store the returned value into acc[id] on commit.
func ChainAccAt(g *dfg.Graph, placed []int, acc []float64, id dfg.NodeID, step int) float64 {
	n := g.Node(id)
	if n.Cycles > 1 || n.IsLoop() {
		return 0
	}
	chain := 0.0
	for _, pid := range n.Preds() {
		if placed[pid] != step {
			continue
		}
		p := g.Node(pid)
		if p.Cycles > 1 || p.IsLoop() {
			continue
		}
		if a := acc[pid]; a > chain {
			chain = a
		}
	}
	return chain + n.DelayNs
}
