package sched

import "repro/internal/dfg"

// ChainFits reports whether tentatively starting node id at the given
// step keeps every intra-step combinational chain within clockNs, given
// the start steps of the already-placed operations. Multicycle and loop
// operations are boundary-aligned and never participate in chains.
// Schedulers call this to filter move-frame candidates when chaining
// (§5.4) is enabled.
func ChainFits(g *dfg.Graph, clockNs float64, placed map[dfg.NodeID]int, id dfg.NodeID, step int) bool {
	n := g.Node(id)
	if n.Cycles > 1 || n.IsLoop() {
		return true
	}
	stepOf := func(x dfg.NodeID) (int, bool) {
		if x == id {
			return step, true
		}
		s, ok := placed[x]
		return s, ok
	}
	acc := make(map[dfg.NodeID]float64)
	for _, vid := range g.TopoOrder() {
		v := g.Node(vid)
		vs, ok := stepOf(vid)
		if !ok || v.Cycles > 1 || v.IsLoop() {
			continue
		}
		chain := 0.0
		for _, pid := range v.Preds() {
			ps, ok := stepOf(pid)
			if !ok || ps != vs {
				continue
			}
			if a := acc[pid]; a > chain {
				chain = a
			}
		}
		acc[vid] = chain + v.DelayNs
		if acc[vid] > clockNs+1e-9 {
			return false
		}
	}
	return true
}
