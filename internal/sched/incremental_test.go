package sched_test

import (
	"fmt"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/gen"
	"repro/internal/mfs"
	"repro/internal/op"
	"repro/internal/sched"
)

func framesEqual(a, b sched.Frames) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestUpdateFramesRetime checks the dirty-cone update against the full
// recomputation after retiming single nodes of generated graphs.
func TestUpdateFramesRetime(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, err := gen.Generate(gen.Config{Nodes: 400, Seed: seed, MulCycles: 2})
		if err != nil {
			t.Fatal(err)
		}
		cs := g.CriticalPathCycles() + 6
		old, err := sched.ComputeFrames(g, cs, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Retime every 37th node in turn (fresh clone each time so edits
		// don't compound).
		for id := 0; id < g.Len(); id += 37 {
			c := g.Clone()
			nid := dfg.NodeID(id)
			newCycles := c.Node(nid).Cycles%3 + 1
			if err := c.SetCycles(nid, newCycles); err != nil {
				t.Fatal(err)
			}
			got, err := sched.UpdateFrames(c, cs, 0, old, []dfg.NodeID{nid})
			if err != nil {
				t.Fatalf("seed %d retime %d: %v", seed, id, err)
			}
			want, err := sched.ComputeFrames(c, cs, 0)
			if err != nil {
				t.Fatalf("seed %d retime %d full: %v", seed, id, err)
			}
			if !framesEqual(got, want) {
				t.Fatalf("seed %d retime node %d to %d cycles: incremental != full", seed, id, newCycles)
			}
		}
	}
}

// TestUpdateFramesAddNode checks the update after appending a sink node
// consuming two existing values — the incremental re-synthesis edit.
func TestUpdateFramesAddNode(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, err := gen.Generate(gen.Config{Nodes: 300, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cs := g.CriticalPathCycles() + 6
		old, err := sched.ComputeFrames(g, cs, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Len(); i += 29 {
			c := g.Clone()
			a := c.Node(dfg.NodeID(i)).Name
			b := c.Node(dfg.NodeID((i * 7) % c.Len())).Name
			var nid dfg.NodeID
			var err error
			if a == b {
				nid, err = c.AddOp("extra", op.Neg, a)
			} else {
				nid, err = c.AddOp("extra", op.Add, a, b)
			}
			if err != nil {
				t.Fatal(err)
			}
			got, err := sched.UpdateFrames(c, cs, 0, old, []dfg.NodeID{nid})
			if err != nil {
				t.Fatalf("seed %d add after %d: %v", seed, i, err)
			}
			want, err := sched.ComputeFrames(c, cs, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !framesEqual(got, want) {
				t.Fatalf("seed %d add consuming %q,%q: incremental != full", seed, a, b)
			}
		}
	}
}

// TestUpdateFramesInfeasible checks that an edit pushing the critical
// path past cs yields the same InfeasibleError as the full computation.
func TestUpdateFramesInfeasible(t *testing.T) {
	g, err := gen.Generate(gen.Config{Nodes: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cs := g.CriticalPathCycles() + 1
	old, err := sched.ComputeFrames(g, cs, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	// Stretch a node far past the slack.
	if err := c.SetCycles(0, cs); err != nil {
		t.Fatal(err)
	}
	_, err = sched.UpdateFrames(c, cs, 0, old, []dfg.NodeID{0})
	ie, ok := err.(*sched.InfeasibleError)
	if !ok {
		t.Fatalf("want InfeasibleError, got %v", err)
	}
	_, werr := sched.ComputeFrames(c, cs, 0)
	if werr == nil || ie.Error() != werr.Error() {
		t.Fatalf("incremental error %q != full error %q", err, werr)
	}
}

// TestUpdateFramesChainedFallsBack checks that chained mode delegates to
// the exact full computation.
func TestUpdateFramesChainedFallsBack(t *testing.T) {
	ex := benchmarks.Chained()
	g := ex.Graph
	cs := 4
	old, err := sched.ComputeFrames(g, cs, ex.ClockNs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sched.UpdateFrames(g, cs, ex.ClockNs, old, []dfg.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if !framesEqual(got, old) {
		t.Fatal("chained fallback differs from ComputeFrames")
	}
}

// priorityOrderScan is the historical linear-scan ready-list emission,
// kept as the oracle for the heap rewrite.
func priorityOrderScan(g *dfg.Graph, frames sched.Frames, higher func(a, b dfg.NodeID) bool) []dfg.NodeID {
	out := make([]dfg.NodeID, 0, g.Len())
	pending := make([]int, g.Len())
	var ready []dfg.NodeID
	for _, id := range g.TopoOrder() {
		pending[id] = len(g.Node(id).Preds())
		if pending[id] == 0 {
			ready = append(ready, id)
		}
	}
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			if higher(ready[i], ready[best]) {
				best = i
			}
		}
		id := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		out = append(out, id)
		for _, s := range g.Node(id).Succs() {
			pending[s]--
			if pending[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return out
}

// TestPriorityOrderMatchesScanOracle re-implements the comparator and the
// historical O(N·W) emission and checks the heap version agrees exactly
// wherever higher() is transitive: all six paper benchmarks (the golden
// compatibility surface) and single-cycle generated graphs. Multicycle
// mixes can enter the §5.3 inverted-rule region where the comparator is
// non-transitive and no comparison order is canonical; those are covered
// by TestPriorityOrderValid instead.
func TestPriorityOrderMatchesScanOracle(t *testing.T) {
	var graphs []*dfg.Graph
	for _, ex := range benchmarks.All() {
		graphs = append(graphs, ex.Graph)
	}
	for seed := int64(0); seed < 4; seed++ {
		g, err := gen.Generate(gen.Config{Nodes: 700, Seed: seed}) // single-cycle ops only
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	for _, g := range graphs {
		cs := g.CriticalPathCycles() + 3
		frames, err := sched.ComputeFrames(g, cs, 0)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		got := sched.PriorityOrder(g, frames)
		// The oracle needs the same comparator; rebuild it from the spec.
		earliest := make([]int, g.Len())
		for _, id := range g.TopoOrder() {
			e := 0
			for _, p := range g.Node(id).Preds() {
				if f := frames[p].ASAP + g.Node(p).Cycles - 1; f > e {
					e = f
				}
			}
			earliest[id] = e
		}
		higher := func(a, b dfg.NodeID) bool {
			fa, fb := frames[a], frames[b]
			if fa.ALAP != fb.ALAP {
				return fa.ALAP < fb.ALAP
			}
			na, nb := g.Node(a), g.Node(b)
			ma, mb := fa.Mobility(), fb.Mobility()
			if ma != mb {
				k := na.Cycles
				if nb.Cycles > k {
					k = nb.Cycles
				}
				d := ma - mb
				if d < 0 {
					d = -d
				}
				if k > 1 && d < k {
					return ma > mb
				}
				return ma < mb
			}
			if earliest[a] != earliest[b] {
				return earliest[a] < earliest[b]
			}
			return a < b
		}
		want := priorityOrderScan(g, frames, higher)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: heap order differs from scan oracle", g.Name)
		}
	}
}

// TestPriorityOrderValid checks the structural contract on multicycle
// graphs (where the scan oracle is not canonical): the order is a
// permutation of all nodes, topologically consistent, and deterministic.
func TestPriorityOrderValid(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g, err := gen.Generate(gen.Config{Nodes: 700, Seed: seed, MulCycles: 2})
		if err != nil {
			t.Fatal(err)
		}
		frames, err := sched.ComputeFrames(g, g.CriticalPathCycles()+3, 0)
		if err != nil {
			t.Fatal(err)
		}
		order := sched.PriorityOrder(g, frames)
		if len(order) != g.Len() {
			t.Fatalf("seed %d: %d nodes emitted, want %d", seed, len(order), g.Len())
		}
		pos := make([]int, g.Len())
		for i := range pos {
			pos[i] = -1
		}
		for i, id := range order {
			if pos[id] != -1 {
				t.Fatalf("seed %d: node %d emitted twice", seed, id)
			}
			pos[id] = i
		}
		for _, n := range g.Nodes() {
			for _, p := range n.Preds() {
				if pos[p] > pos[n.ID] {
					t.Fatalf("seed %d: %d before its predecessor %d", seed, n.ID, p)
				}
			}
		}
		again := sched.PriorityOrder(g, frames)
		if fmt.Sprint(order) != fmt.Sprint(again) {
			t.Fatalf("seed %d: order not deterministic", seed)
		}
	}
}

// TestChainAccAtMatchesChainFits replays a chained schedule in priority
// order and checks the incremental chain accumulator agrees with the
// full-graph ChainFits walk at every placement decision.
func TestChainAccAtMatchesChainFits(t *testing.T) {
	ex := benchmarks.Chained()
	g := ex.Graph
	s, err := mfs.Schedule(g, mfs.Options{CS: 4, ClockNs: ex.ClockNs})
	if err != nil {
		t.Fatal(err)
	}
	frames, err := sched.ComputeFrames(g, s.CS, ex.ClockNs)
	if err != nil {
		t.Fatal(err)
	}
	placed := make([]int, g.Len())
	acc := make([]float64, g.Len())
	for _, id := range sched.PriorityOrder(g, frames) {
		step := s.Placements[id].Step
		// Probe every step in the node's frame, not just the chosen one.
		for probe := frames[id].ASAP; probe <= frames[id].ALAP; probe++ {
			full := sched.ChainFits(g, ex.ClockNs, placed, id, probe)
			inc := sched.ChainAccAt(g, placed, acc, id, probe) <= ex.ClockNs+1e-9
			if full != inc {
				t.Fatalf("node %s at step %d: ChainFits=%v incremental=%v",
					g.Node(id).Name, probe, full, inc)
			}
		}
		acc[id] = sched.ChainAccAt(g, placed, acc, id, step)
		placed[id] = step
	}
}
