package sched

import (
	"errors"
	"testing"

	"repro/internal/dfg"
	"repro/internal/op"
)

// chain builds in1 -> n1 -> n2 -> ... -> nk (a pure dependency chain).
func chain(t *testing.T, k int) *dfg.Graph {
	t.Helper()
	g := dfg.New("chain")
	if err := g.AddInput("in"); err != nil {
		t.Fatal(err)
	}
	prev := "in"
	for i := 1; i <= k; i++ {
		name := "n" + string(rune('0'+i))
		if _, err := g.AddOp(name, op.Add, prev, prev); err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	return g
}

func TestFramesChain(t *testing.T) {
	g := chain(t, 3)
	fr, err := ComputeFrames(g, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantASAP := []int{1, 2, 3}
	wantALAP := []int{3, 4, 5}
	for i, n := range g.Nodes() {
		f := fr[n.ID]
		if f.ASAP != wantASAP[i] || f.ALAP != wantALAP[i] {
			t.Errorf("%s: frame = %+v, want {%d %d}", n.Name, f, wantASAP[i], wantALAP[i])
		}
		if f.Mobility() != 2 {
			t.Errorf("%s: mobility = %d, want 2", n.Name, f.Mobility())
		}
	}
}

func TestFramesTight(t *testing.T) {
	g := chain(t, 4)
	fr, err := ComputeFrames(g, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		if fr[n.ID].Mobility() != 0 {
			t.Errorf("%s: mobility = %d on a tight chain", n.Name, fr[n.ID].Mobility())
		}
	}
}

func TestFramesInfeasible(t *testing.T) {
	g := chain(t, 5)
	_, err := ComputeFrames(g, 4, 0)
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want InfeasibleError", err)
	}
	if ie.Need != 5 || ie.CS != 4 {
		t.Errorf("InfeasibleError = %+v", ie)
	}
	if _, err := ComputeFrames(g, 0, 0); err == nil {
		t.Error("cs=0 accepted")
	}
}

func TestFramesMulticycle(t *testing.T) {
	// in -> m(2 cycles) -> a ; cs = 4
	g := dfg.New("mc")
	g.AddInput("in")
	m, _ := g.AddOp("m", op.Mul, "in", "in")
	g.SetCycles(m, 2)
	a, _ := g.AddOp("a", op.Add, "m", "in")
	fr, err := ComputeFrames(g, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := fr[m]; f.ASAP != 1 || f.ALAP != 2 {
		t.Errorf("m frame = %+v, want {1 2}", f)
	}
	if f := fr[a]; f.ASAP != 3 || f.ALAP != 4 {
		t.Errorf("a frame = %+v, want {3 4}", f)
	}
}

func TestFramesIndependentOps(t *testing.T) {
	g := dfg.New("indep")
	g.AddInput("in")
	a, _ := g.AddOp("a", op.Add, "in", "in")
	b, _ := g.AddOp("b", op.Mul, "in", "in")
	fr, err := ComputeFrames(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []dfg.NodeID{a, b} {
		if f := fr[id]; f.ASAP != 1 || f.ALAP != 3 {
			t.Errorf("node %d frame = %+v, want {1 3}", id, f)
		}
	}
}

func TestFramesChaining(t *testing.T) {
	// Three dependent adds (40ns each) under a 100ns clock: two fit in one
	// step, the third spills to the next.
	g := chain(t, 3)
	fr, err := ComputeFrames(g, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	ids := g.Nodes()
	if f := fr[ids[0].ID]; f.ASAP != 1 {
		t.Errorf("n1 ASAP = %d, want 1", f.ASAP)
	}
	if f := fr[ids[1].ID]; f.ASAP != 1 {
		t.Errorf("n2 ASAP = %d, want 1 (chained)", f.ASAP)
	}
	if f := fr[ids[2].ID]; f.ASAP != 2 {
		t.Errorf("n3 ASAP = %d, want 2 (chain overflow)", f.ASAP)
	}
	// ALAP: n3 must end by step 2; n2 can chain with n3? No: n3 at step 2
	// leaves 60ns before it, so n2 fits at step 2 start; n1 then chains too?
	// n1+n2+n3 = 120ns > 100ns, so n1's latest is step 1... check monotone
	// legality instead of exact values:
	for i, n := range ids {
		f := fr[n.ID]
		if f.ALAP < f.ASAP {
			t.Errorf("%s: ALAP %d < ASAP %d", n.Name, f.ALAP, f.ASAP)
		}
		if i > 0 && fr[ids[i-1].ID].ASAP > f.ASAP {
			t.Errorf("ASAP not monotone along chain at %s", n.Name)
		}
	}
}

func TestFramesChainingInfeasibleWithoutIt(t *testing.T) {
	// The same 3-chain cannot meet cs=2 without chaining.
	g := chain(t, 3)
	if _, err := ComputeFrames(g, 2, 0); err == nil {
		t.Fatal("cs=2 without chaining should be infeasible")
	}
	if _, err := ComputeFrames(g, 2, 100); err != nil {
		t.Fatalf("cs=2 with chaining should be feasible: %v", err)
	}
}

func TestFramesChainingWholeChainInOneStep(t *testing.T) {
	// 2 adds (80ns) fit a 100ns clock in one step.
	g := chain(t, 2)
	fr, err := ComputeFrames(g, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes() {
		if f := fr[n.ID]; f.ASAP != 1 || f.ALAP != 1 {
			t.Errorf("%s frame = %+v, want {1 1}", n.Name, f)
		}
	}
}

func TestFramesChainingRejectsOversizedDelay(t *testing.T) {
	g := chain(t, 1)
	n := g.Nodes()[0]
	g.SetDelayNs(n.ID, 150)
	if _, err := ComputeFrames(g, 3, 100); err == nil {
		t.Error("single-cycle op slower than the clock accepted")
	}
	// Marking it multicycle fixes it.
	g.SetCycles(n.ID, 2)
	if _, err := ComputeFrames(g, 3, 100); err != nil {
		t.Errorf("multicycle fix rejected: %v", err)
	}
}

func TestFramesChainingMulticycleBoundaries(t *testing.T) {
	// add(40) -> mul(2 cycles) : mul must start at a step boundary, so its
	// ASAP start is step 2 even though the add ends mid-step 1.
	g := dfg.New("mixed")
	g.AddInput("in")
	g.AddOp("a", op.Add, "in", "in")
	m, _ := g.AddOp("m", op.Mul, "a", "a")
	g.SetCycles(m, 2)
	fr, err := ComputeFrames(g, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if f := fr[m]; f.ASAP != 2 || f.ALAP != 2 {
		t.Errorf("mul frame = %+v, want {2 2}", f)
	}
}

func TestPriorityOrderBasic(t *testing.T) {
	// Diamond: s and p feed d. Make p 2-cycle so it is the critical op.
	g := dfg.New("prio")
	g.AddInput("a")
	s, _ := g.AddOp("s", op.Add, "a", "a")
	p, _ := g.AddOp("p", op.Mul, "a", "a")
	g.SetCycles(p, 2)
	d, _ := g.AddOp("d", op.Sub, "s", "p")
	fr, err := ComputeFrames(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	order := PriorityOrder(g, fr)
	if len(order) != 3 {
		t.Fatalf("order len = %d", len(order))
	}
	// p: frame {1,1} mob 0; s: {1,2} mob 1; d: {3,3}.
	if order[0] != p || order[1] != s || order[2] != d {
		t.Errorf("order = %v, want [%d %d %d]", order, p, s, d)
	}
}

func TestPriorityMobilityRule(t *testing.T) {
	// Two independent single-cycle ops with equal ALAP: lower mobility first.
	g := dfg.New("mob")
	g.AddInput("a")
	x, _ := g.AddOp("x", op.Add, "a", "a") // frame {1,3}
	g.AddOp("y", op.Mul, "x", "x")         // forces x's ALAP earlier? no: use chain
	z, _ := g.AddOp("z", op.Sub, "a", "a") // frame {1,4}
	fr, err := ComputeFrames(g, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fr[x].ALAP >= fr[z].ALAP {
		t.Skip("frame shapes changed; test premise broken")
	}
	order := PriorityOrder(g, fr)
	posX, posZ := indexOf(order, x), indexOf(order, z)
	if posX > posZ {
		t.Errorf("x (earlier ALAP) should precede z: order %v", order)
	}
}

func TestPriorityMulticycleInversion(t *testing.T) {
	// Two 2-cycle ops with mobility difference 1 < k=2: rule inverts, the
	// more mobile op goes first.
	g := dfg.New("inv")
	g.AddInput("a")
	m1, _ := g.AddOp("m1", op.Mul, "a", "a")
	g.SetCycles(m1, 2)
	m2, _ := g.AddOp("m2", op.Mul, "a", "a")
	g.SetCycles(m2, 2)
	// Constrain m1 to finish one step earlier via a successor chain.
	a1, _ := g.AddOp("a1", op.Add, "m1", "a")
	g.AddOp("a2", op.Add, "a1", "a")
	fr, err := ComputeFrames(g, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// m1: {1,2} mob 1; m2: {1,4} mob 3. ALAP differs so primary rule
	// applies; craft equal ALAP instead:
	_ = a1
	fr[m2] = Frame{ASAP: 1, ALAP: 2} // mob 1 vs m1 mob... make m1 {1,2} mob 1, m2 {2,2} mob 0
	fr[m1] = Frame{ASAP: 1, ALAP: 2}
	fr[m2] = Frame{ASAP: 2, ALAP: 2}
	order := PriorityOrder(g, fr)
	// |mob diff| = 1 < 2 so the MORE mobile (m1, mob 1) goes first.
	if indexOf(order, m1) > indexOf(order, m2) {
		t.Errorf("multicycle inversion not applied: order %v", order)
	}
}

func indexOf(ids []dfg.NodeID, id dfg.NodeID) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	return -1
}
