package sched

import (
	"fmt"
	"math"

	"repro/internal/dfg"
)

// Frame is one operation's time frame: the earliest (ASAP) and latest
// (ALAP) start control steps within the time constraint. Mobility is their
// difference (MFS step 2).
type Frame struct {
	ASAP, ALAP int
}

// Mobility returns ALAP − ASAP.
func (f Frame) Mobility() int { return f.ALAP - f.ASAP }

// Frames holds the time frame of every node, indexed by dfg.NodeID
// (node IDs are dense, starting at 0, so a slice is the natural map).
type Frames []Frame

// Shifted returns a copy of f with every ALAP raised by k steps — the
// frames of the same graph under a time constraint k steps looser.
// Earliest starts do not depend on the constraint, and relaxing the
// deadline by k whole control steps moves every latest start by exactly
// k (with or without chaining: the chained deadline shifts by k·clockNs,
// which shifts every backward boundary computation by exactly k steps),
// so Shifted(k) equals ComputeFrames at cs+k without redoing the graph
// passes. The resource-constrained MFS search leans on this to probe
// many cs values from one frame computation — one flat copy per probe,
// no hashing; frames_prop_test.go checks the equivalence on every
// benchmark graph.
func (f Frames) Shifted(k int) Frames {
	out := make(Frames, len(f))
	for id, fr := range f {
		out[id] = Frame{ASAP: fr.ASAP, ALAP: fr.ALAP + k}
	}
	return out
}

// InfeasibleError reports a time constraint below the critical path.
type InfeasibleError struct {
	Graph string
	CS    int
	Need  int // critical path length in control steps
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("sched: %s: %d control steps infeasible, critical path needs %d",
		e.Graph, e.CS, e.Need)
}

// ComputeFrames derives ASAP/ALAP start steps for every node of g within
// cs control steps. clockNs > 0 enables the chaining extension (§5.4):
// data-dependent single-cycle operations share a step while their summed
// combinational delay fits in the clock period; multicycle operations
// always start and end on step boundaries. With clockNs == 0 every
// dependency costs a full step (the classic integer formulation).
func ComputeFrames(g *dfg.Graph, cs int, clockNs float64) (Frames, error) {
	if cs < 1 {
		return nil, fmt.Errorf("sched: %s: cs %d < 1", g.Name, cs)
	}
	if clockNs > 0 {
		if err := checkDelaysFit(g, clockNs); err != nil {
			return nil, err
		}
	}
	asap := asapFinish(g, clockNs)
	need := 0
	for i := range asap {
		if s := asap[i].step; s > need {
			need = s
		}
	}
	if need > cs {
		return nil, &InfeasibleError{Graph: g.Name, CS: cs, Need: need}
	}
	alap := alapStart(g, cs, clockNs)
	frames := make(Frames, g.Len())
	for _, n := range g.Nodes() {
		fr := Frame{ASAP: asap[n.ID].startStep, ALAP: alap[n.ID]}
		if fr.ALAP < fr.ASAP {
			// Cannot happen when cs >= need, but guard against model drift.
			return nil, &InfeasibleError{Graph: g.Name, CS: cs, Need: need}
		}
		frames[n.ID] = fr
	}
	return frames, nil
}

func checkDelaysFit(g *dfg.Graph, clockNs float64) error {
	for _, n := range g.Nodes() {
		if n.Cycles == 1 && !n.IsLoop() && n.DelayNs > clockNs {
			return fmt.Errorf("sched: %s: node %q delay %.1fns exceeds clock %.1fns; mark it multicycle",
				g.Name, n.Name, n.DelayNs, clockNs)
		}
	}
	return nil
}

type timing struct {
	startStep int     // control step where the op starts
	step      int     // control step where the op finishes
	finish    float64 // absolute finish time in ns (chaining only)
}

// asapFinish computes the earliest start/finish of every node. Under
// chaining, time is continuous with step boundaries at multiples of
// clockNs; otherwise each op's delay is treated as one full step.
func asapFinish(g *dfg.Graph, clockNs float64) []timing {
	out := make([]timing, g.Len())
	for _, id := range g.TopoOrder() {
		n := g.Node(id)
		if clockNs <= 0 {
			start := 1
			for _, p := range n.Preds() {
				if s := out[p].step + 1; s > start {
					start = s
				}
			}
			out[id] = timing{startStep: start, step: start + n.Cycles - 1}
			continue
		}
		// Chained: earliest absolute time all inputs are ready.
		ready := 0.0
		for _, p := range n.Preds() {
			if f := out[p].finish; f > ready {
				ready = f
			}
		}
		var start, finish float64
		if n.Cycles > 1 || n.IsLoop() {
			// Multicycle ops start on a step boundary.
			start = math.Ceil(ready/clockNs-1e-9) * clockNs
			finish = start + float64(n.Cycles)*clockNs
		} else {
			start = ready
			offset := start - math.Floor(start/clockNs+1e-9)*clockNs
			if offset+n.DelayNs > clockNs+1e-9 {
				start = math.Ceil(start/clockNs-1e-9) * clockNs // next boundary
			}
			finish = start + n.DelayNs
		}
		out[id] = timing{
			startStep: int(math.Floor(start/clockNs+1e-9)) + 1,
			step:      int(math.Ceil(finish/clockNs - 1e-9)),
			finish:    finish,
		}
	}
	return out
}

// alapStart computes the latest start step of every node given cs steps,
// mirroring asapFinish backwards.
func alapStart(g *dfg.Graph, cs int, clockNs float64) []int {
	order := g.TopoOrder()
	if clockNs <= 0 {
		late := make([]int, g.Len())
		for i := len(order) - 1; i >= 0; i-- {
			n := g.Node(order[i])
			start := cs - n.Cycles + 1
			for _, s := range n.Succs() {
				if v := late[s] - n.Cycles; v < start {
					start = v
				}
			}
			late[n.ID] = start
		}
		return late
	}
	// Chained: work in continuous time backwards from cs·clockNs.
	end := float64(cs) * clockNs
	lateStart := make([]float64, g.Len())
	out := make([]int, g.Len())
	for i := len(order) - 1; i >= 0; i-- {
		n := g.Node(order[i])
		due := end
		for _, s := range n.Succs() {
			if v := lateStart[s]; v < due {
				due = v
			}
		}
		var start float64
		if n.Cycles > 1 || n.IsLoop() {
			start = math.Floor(due/clockNs+1e-9)*clockNs - float64(n.Cycles)*clockNs
		} else {
			start = due - n.DelayNs
			offset := start - math.Floor(start/clockNs+1e-9)*clockNs
			if offset+n.DelayNs > clockNs+1e-9 {
				// Does not fit at the end of its step: pull back to finish
				// exactly at the last boundary before the deadline.
				start = math.Floor(due/clockNs+1e-9)*clockNs - n.DelayNs
			}
		}
		lateStart[n.ID] = start
		out[n.ID] = int(math.Floor(start/clockNs+1e-9)) + 1
	}
	return out
}
