package sched

import (
	"strings"
	"testing"

	"repro/internal/dfg"
	"repro/internal/op"
)

// twoAdds: in -> x, y independent adds feeding z = x*y.
func twoAdds(t *testing.T) (*dfg.Graph, dfg.NodeID, dfg.NodeID, dfg.NodeID) {
	t.Helper()
	g := dfg.New("v")
	if err := g.AddInput("in"); err != nil {
		t.Fatal(err)
	}
	x, _ := g.AddOp("x", op.Add, "in", "in")
	y, _ := g.AddOp("y", op.Add, "in", "in")
	z, _ := g.AddOp("z", op.Mul, "x", "y")
	return g, x, y, z
}

func TestVerifyLegal(t *testing.T) {
	g, x, y, z := twoAdds(t)
	s := NewSchedule(g, 2)
	s.Place(x, Placement{Step: 1, Type: "+", Index: 1})
	s.Place(y, Placement{Step: 1, Type: "+", Index: 2})
	s.Place(z, Placement{Step: 2, Type: "*", Index: 1})
	if err := s.Verify(nil); err != nil {
		t.Fatalf("legal schedule rejected: %v", err)
	}
	if got := s.InstancesPerType(); got["+"] != 2 || got["*"] != 1 {
		t.Errorf("InstancesPerType = %v", got)
	}
	if got := s.TypeNames(); len(got) != 2 || got[0] != "*" || got[1] != "+" {
		t.Errorf("TypeNames = %v", got)
	}
	if !strings.Contains(s.String(), "cs=2") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestVerifyUnplaced(t *testing.T) {
	g, x, y, _ := twoAdds(t)
	s := NewSchedule(g, 2)
	s.Place(x, Placement{Step: 1, Type: "+", Index: 1})
	s.Place(y, Placement{Step: 1, Type: "+", Index: 2})
	if err := s.Verify(nil); err == nil {
		t.Error("schedule with unplaced node accepted")
	}
}

func TestVerifyDependencyViolation(t *testing.T) {
	g, x, y, z := twoAdds(t)
	s := NewSchedule(g, 2)
	s.Place(x, Placement{Step: 2, Type: "+", Index: 1}) // finishes at 2
	s.Place(y, Placement{Step: 1, Type: "+", Index: 2})
	s.Place(z, Placement{Step: 2, Type: "*", Index: 1}) // needs x done
	if err := s.Verify(nil); err == nil {
		t.Error("dependency violation accepted")
	}
}

func TestVerifyResourceConflict(t *testing.T) {
	g, x, y, z := twoAdds(t)
	s := NewSchedule(g, 2)
	s.Place(x, Placement{Step: 1, Type: "+", Index: 1})
	s.Place(y, Placement{Step: 1, Type: "+", Index: 1}) // same cell, same step
	s.Place(z, Placement{Step: 2, Type: "*", Index: 1})
	if err := s.Verify(nil); err == nil {
		t.Error("FU conflict accepted")
	}
}

func TestVerifyExclusiveSharing(t *testing.T) {
	g, x, y, z := twoAdds(t)
	g.Tag(x, dfg.CondTag{Cond: 1, Branch: 0})
	g.Tag(y, dfg.CondTag{Cond: 1, Branch: 1})
	s := NewSchedule(g, 2)
	s.Place(x, Placement{Step: 1, Type: "+", Index: 1})
	s.Place(y, Placement{Step: 1, Type: "+", Index: 1}) // legal: exclusive
	s.Place(z, Placement{Step: 2, Type: "*", Index: 1})
	if err := s.Verify(nil); err != nil {
		t.Errorf("exclusive sharing rejected: %v", err)
	}
}

func TestVerifyLimits(t *testing.T) {
	g, x, y, z := twoAdds(t)
	s := NewSchedule(g, 2)
	s.Place(x, Placement{Step: 1, Type: "+", Index: 1})
	s.Place(y, Placement{Step: 1, Type: "+", Index: 2})
	s.Place(z, Placement{Step: 2, Type: "*", Index: 1})
	if err := s.Verify(map[string]int{"+": 2, "*": 1}); err != nil {
		t.Errorf("within limits rejected: %v", err)
	}
	if err := s.Verify(map[string]int{"+": 1}); err == nil {
		t.Error("limit violation accepted")
	}
}

func TestVerifyBounds(t *testing.T) {
	g, x, y, z := twoAdds(t)
	s := NewSchedule(g, 2)
	s.Place(x, Placement{Step: 0, Type: "+", Index: 1})
	s.Place(y, Placement{Step: 1, Type: "+", Index: 2})
	s.Place(z, Placement{Step: 2, Type: "*", Index: 1})
	if err := s.Verify(nil); err == nil {
		t.Error("step 0 accepted")
	}
	s.Place(x, Placement{Step: 1, Type: "+", Index: 0})
	if err := s.Verify(nil); err == nil {
		t.Error("index 0 accepted")
	}
	s.Place(x, Placement{Step: 1, Index: 1})
	if err := s.Verify(nil); err == nil {
		t.Error("empty type accepted")
	}
}

func TestVerifyMulticycleFootprint(t *testing.T) {
	g := dfg.New("mc")
	g.AddInput("in")
	m1, _ := g.AddOp("m1", op.Mul, "in", "in")
	g.SetCycles(m1, 2)
	m2, _ := g.AddOp("m2", op.Mul, "in", "in")
	s := NewSchedule(g, 3)
	s.Place(m1, Placement{Step: 1, Type: "*", Index: 1})
	s.Place(m2, Placement{Step: 2, Type: "*", Index: 1}) // overlaps m1's 2nd cycle
	if err := s.Verify(nil); err == nil {
		t.Error("multicycle overlap accepted")
	}
	s.Place(m2, Placement{Step: 3, Type: "*", Index: 1})
	if err := s.Verify(nil); err != nil {
		t.Errorf("back-to-back multicycle rejected: %v", err)
	}
	// Multicycle op must fit inside cs.
	s.Place(m1, Placement{Step: 3, Type: "*", Index: 2})
	if err := s.Verify(nil); err == nil {
		t.Error("multicycle op spilling past cs accepted")
	}
}

func TestVerifyStructuralPipelining(t *testing.T) {
	g := dfg.New("sp")
	g.AddInput("in")
	m1, _ := g.AddOp("m1", op.Mul, "in", "in")
	g.SetCycles(m1, 2)
	m2, _ := g.AddOp("m2", op.Mul, "in", "in")
	g.SetCycles(m2, 2)
	s := NewSchedule(g, 3)
	s.PipelinedTypes["*"] = true
	s.Place(m1, Placement{Step: 1, Type: "*", Index: 1})
	s.Place(m2, Placement{Step: 2, Type: "*", Index: 1}) // overlapped in the pipe
	if err := s.Verify(nil); err != nil {
		t.Errorf("pipelined overlap rejected: %v", err)
	}
	s.Place(m2, Placement{Step: 1, Type: "*", Index: 1}) // same start: conflict
	if err := s.Verify(nil); err == nil {
		t.Error("same-step pipelined conflict accepted")
	}
}

func TestVerifyFunctionalPipelining(t *testing.T) {
	// L=2: ops at steps 1 and 3 run concurrently across loop instances.
	g := dfg.New("fp")
	g.AddInput("in")
	a, _ := g.AddOp("a", op.Add, "in", "in")
	b, _ := g.AddOp("b", op.Add, "a", "a")
	c, _ := g.AddOp("c", op.Add, "b", "b")
	s := NewSchedule(g, 3)
	s.Latency = 2
	s.Place(a, Placement{Step: 1, Type: "+", Index: 1})
	s.Place(b, Placement{Step: 2, Type: "+", Index: 1})
	s.Place(c, Placement{Step: 3, Type: "+", Index: 1}) // folds onto step 1: conflict with a
	if err := s.Verify(nil); err == nil {
		t.Error("modular conflict accepted")
	}
	s.Place(c, Placement{Step: 3, Type: "+", Index: 2})
	if err := s.Verify(nil); err != nil {
		t.Errorf("resolved modular conflict rejected: %v", err)
	}
	// A multicycle op longer than L on a non-pipelined unit self-conflicts.
	g2 := dfg.New("fp2")
	g2.AddInput("in")
	m, _ := g2.AddOp("m", op.Mul, "in", "in")
	g2.SetCycles(m, 3)
	s2 := NewSchedule(g2, 4)
	s2.Latency = 2
	s2.Place(m, Placement{Step: 1, Type: "*", Index: 1})
	if err := s2.Verify(nil); err == nil {
		t.Error("op longer than latency accepted")
	}
}

func TestVerifyChaining(t *testing.T) {
	// x -> y chained in one step under a 100ns clock (40+40 <= 100).
	g := dfg.New("ch")
	g.AddInput("in")
	x, _ := g.AddOp("x", op.Add, "in", "in")
	y, _ := g.AddOp("y", op.Add, "x", "x")
	s := NewSchedule(g, 1)
	s.ClockNs = 100
	s.Place(x, Placement{Step: 1, Type: "+", Index: 1})
	s.Place(y, Placement{Step: 1, Type: "+", Index: 2})
	if err := s.Verify(nil); err != nil {
		t.Fatalf("legal chain rejected: %v", err)
	}
	// Without chaining the same schedule is illegal.
	s.ClockNs = 0
	if err := s.Verify(nil); err == nil {
		t.Error("same-step dependency without chaining accepted")
	}
	// Chain longer than the clock is illegal.
	s.ClockNs = 100
	g.SetDelayNs(x, 70)
	g.SetDelayNs(y, 70)
	if err := s.Verify(nil); err == nil {
		t.Error("overlong chain accepted")
	}
}

func TestVerifyChainThroughThreeOps(t *testing.T) {
	// Accumulation must follow the worst path, not per-edge checks:
	// a(40) -> b(40) -> c(30) = 110 > 100 even though each edge fits.
	g := dfg.New("ch3")
	g.AddInput("in")
	a, _ := g.AddOp("a", op.Add, "in", "in")
	b, _ := g.AddOp("b", op.Add, "a", "a")
	c, _ := g.AddOp("c", op.Lt, "b", "b")
	g.SetDelayNs(c, 30)
	s := NewSchedule(g, 1)
	s.ClockNs = 100
	s.Place(a, Placement{Step: 1, Type: "+", Index: 1})
	s.Place(b, Placement{Step: 1, Type: "+", Index: 2})
	s.Place(c, Placement{Step: 1, Type: "<", Index: 1})
	if err := s.Verify(nil); err == nil {
		t.Error("accumulated chain overflow accepted")
	}
}

func TestStepsOf(t *testing.T) {
	g := dfg.New("so")
	g.AddInput("in")
	m, _ := g.AddOp("m", op.Mul, "in", "in")
	g.SetCycles(m, 3)
	s := NewSchedule(g, 6)
	s.Place(m, Placement{Step: 2, Type: "*", Index: 1})
	if got := s.StepsOf(m); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("StepsOf = %v, want [2 3 4]", got)
	}
	s.Latency = 3
	if got := s.StepsOf(m); len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Errorf("folded StepsOf = %v, want [2 3 1]", got)
	}
	s.PipelinedTypes["*"] = true
	if got := s.StepsOf(m); len(got) != 1 || got[0] != 2 {
		t.Errorf("pipelined StepsOf = %v, want [2]", got)
	}
	if got := s.StepsOf(99); got != nil {
		t.Errorf("StepsOf(unplaced) = %v, want nil", got)
	}
}
