package behav

import (
	"fmt"
	"strings"

	"repro/internal/dfg"
	"repro/internal/op"
)

// Build lowers a parsed Design to a data-flow graph. Integer literals
// become constant input signals (named "lit_<value>"); the returned map
// gives their values so simulators can bind them. Signals assigned inside
// conditional branches carry the mutual-exclusion tags of §5.1; `loop`
// blocks become folded-loop nodes (§5.2) whose bodies are built
// recursively.
//
// Value merging across branches (phi nodes) is not part of the language:
// assigning the same name in both branches is an error — give the two
// branch values distinct names, exactly as the paper's DFG treatment of
// conditionals does.
func Build(d *Design) (*dfg.Graph, map[string]int64, error) {
	b := &builder{
		g:      dfg.New(d.Name),
		consts: make(map[string]int64),
	}
	for _, in := range d.Inputs {
		if err := b.g.AddInput(in); err != nil {
			return nil, nil, err
		}
	}
	if err := b.stmts(d.Body, nil); err != nil {
		return nil, nil, err
	}
	for _, out := range d.Outputs {
		if _, ok := b.g.Lookup(out); !ok {
			return nil, nil, fmt.Errorf("behav: declared output %q is never assigned", out)
		}
	}
	if err := b.g.Validate(); err != nil {
		return nil, nil, err
	}
	return b.g, b.consts, nil
}

// BuildSource parses and lowers in one step.
func BuildSource(src string) (*dfg.Graph, map[string]int64, error) {
	d, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return Build(d)
}

type builder struct {
	g      *dfg.Graph
	consts map[string]int64
	conds  int // conditional counter for exclusion tags
	temps  int
}

func (b *builder) stmts(ss []Stmt, tags []dfg.CondTag) error {
	for _, s := range ss {
		switch st := s.(type) {
		case Assign:
			if err := b.assign(st, tags); err != nil {
				return err
			}
		case If:
			if err := b.cond(st, tags); err != nil {
				return err
			}
		case Loop:
			if err := b.loop(st, tags); err != nil {
				return err
			}
		case ConstDecl:
			if b.isInput(st.Name) {
				return fmt.Errorf("behav: line %d: const %q collides with an existing signal", st.Line, st.Name)
			}
			if err := b.g.AddInput(st.Name); err != nil {
				return fmt.Errorf("behav: line %d: %w", st.Line, err)
			}
			b.consts[st.Name] = st.Value
		default:
			return fmt.Errorf("behav: unknown statement %T", s)
		}
	}
	return nil
}

func (b *builder) assign(a Assign, tags []dfg.CondTag) error {
	id, err := b.lowerNamed(a.Name, a.Expr, tags, a.Line)
	if err != nil {
		return err
	}
	if a.Cycles > 0 {
		if err := b.g.SetCycles(id, a.Cycles); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) cond(s If, tags []dfg.CondTag) error {
	// The condition itself executes unconditionally (under the enclosing
	// tags only).
	b.temps++
	condName := fmt.Sprintf("cond%d", b.conds+1)
	if _, err := b.lowerNamed(condName, s.Cond, tags, s.Line); err != nil {
		return err
	}
	b.conds++
	c := b.conds
	thenTags := append(append([]dfg.CondTag(nil), tags...), dfg.CondTag{Cond: c, Branch: 0})
	if err := b.stmts(s.Then, thenTags); err != nil {
		return err
	}
	if len(s.Else) > 0 {
		elseTags := append(append([]dfg.CondTag(nil), tags...), dfg.CondTag{Cond: c, Branch: 1})
		if err := b.stmts(s.Else, elseTags); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) loop(s Loop, tags []dfg.CondTag) error {
	subDesign := &Design{Name: s.Name + "_body", Body: s.Body}
	for _, bind := range s.Binds {
		subDesign.Inputs = append(subDesign.Inputs, bind.Inner)
	}
	sub, subConsts, err := Build(subDesign)
	if err != nil {
		return fmt.Errorf("behav: loop %q: %w", s.Name, err)
	}
	binds := make(map[string]string, len(s.Binds))
	for _, bind := range s.Binds {
		sig, err := b.lowerToSignal(bind.Outer, tags, s.Line)
		if err != nil {
			return err
		}
		binds[bind.Inner] = sig
	}
	// The body's literal constants surface as extra inner inputs; bind
	// them to same-named constant inputs of the enclosing graph.
	for _, in := range sub.Inputs() {
		if _, bound := binds[in]; bound {
			continue
		}
		v, isConst := subConsts[in]
		if !isConst {
			return fmt.Errorf("behav: loop %q: body input %q is not bound", s.Name, in)
		}
		name, err := b.literal(v)
		if err != nil {
			return err
		}
		binds[in] = name
	}
	id, err := b.g.AddLoop(s.Name, sub, s.Yields, binds)
	if err != nil {
		return fmt.Errorf("behav: loop %q: %w", s.Name, err)
	}
	if err := b.g.SetCycles(id, s.Cycles); err != nil {
		return err
	}
	return b.g.Tag(id, tags...)
}

// lowerNamed lowers an expression so its root node carries the given
// name. A bare reference or literal becomes a Mov node (a register
// transfer), so every assigned name is a real signal.
func (b *builder) lowerNamed(name string, e Expr, tags []dfg.CondTag, line int) (dfg.NodeID, error) {
	switch ex := e.(type) {
	case Ref:
		return b.addOp(name, op.Mov, tags, line, ex.Name)
	case Lit:
		lit, err := b.literal(ex.Value)
		if err != nil {
			return -1, err
		}
		return b.addOp(name, op.Mov, tags, line, lit)
	case Unary:
		x, err := b.lowerToSignal(ex.X, tags, line)
		if err != nil {
			return -1, err
		}
		return b.addOp(name, ex.Op, tags, line, x)
	case Binary:
		x, err := b.lowerToSignal(ex.X, tags, line)
		if err != nil {
			return -1, err
		}
		y, err := b.lowerToSignal(ex.Y, tags, line)
		if err != nil {
			return -1, err
		}
		return b.addOp(name, ex.Op, tags, line, x, y)
	}
	return -1, fmt.Errorf("behav: line %d: unknown expression %T", line, e)
}

// lowerToSignal lowers an expression to a signal name, creating temp
// nodes for interior operations.
func (b *builder) lowerToSignal(e Expr, tags []dfg.CondTag, line int) (string, error) {
	switch ex := e.(type) {
	case Ref:
		if _, ok := b.g.Lookup(ex.Name); !ok && !b.isInput(ex.Name) {
			return "", fmt.Errorf("behav: line %d: undefined signal %q", ex.Line, ex.Name)
		}
		return ex.Name, nil
	case Lit:
		return b.literal(ex.Value)
	default:
		b.temps++
		name := fmt.Sprintf("t%d", b.temps)
		if _, err := b.lowerNamed(name, e, tags, line); err != nil {
			return "", err
		}
		return name, nil
	}
}

func (b *builder) isInput(name string) bool {
	for _, in := range b.g.Inputs() {
		if in == name {
			return true
		}
	}
	return false
}

// literal interns an integer literal as a constant input signal.
func (b *builder) literal(v int64) (string, error) {
	name := "lit_" + strings.ReplaceAll(fmt.Sprint(v), "-", "m")
	if _, done := b.consts[name]; !done {
		if err := b.g.AddInput(name); err != nil {
			return "", err
		}
		b.consts[name] = v
	}
	return name, nil
}

func (b *builder) addOp(name string, k op.Kind, tags []dfg.CondTag, line int, args ...string) (dfg.NodeID, error) {
	for _, a := range args {
		if _, ok := b.g.Lookup(a); !ok && !b.isInput(a) {
			return -1, fmt.Errorf("behav: line %d: undefined signal %q", line, a)
		}
	}
	id, err := b.g.AddOp(name, k, args...)
	if err != nil {
		return -1, fmt.Errorf("behav: line %d: %w", line, err)
	}
	if err := b.g.Tag(id, tags...); err != nil {
		return -1, err
	}
	return id, nil
}

// Compile parses and lowers a source, additionally returning the
// design's declared outputs (empty when none were declared) for
// optimization and reporting passes.
func Compile(src string) (*dfg.Graph, map[string]int64, []string, error) {
	d, err := Parse(src)
	if err != nil {
		return nil, nil, nil, err
	}
	g, consts, err := Build(d)
	if err != nil {
		return nil, nil, nil, err
	}
	return g, consts, append([]string(nil), d.Outputs...), nil
}
