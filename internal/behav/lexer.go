// Package behav implements the small behavioral description language the
// synthesis tools accept, playing the role of the "initial behavior"
// input the paper's §6 describes for SYNTEST. A description is a list of
// signal assignments over expressions, with `if/else` blocks producing
// the mutually exclusive operations of §5.1, nested `loop` blocks
// producing the folded-loop super-operations of §5.2, and `@k` duration
// annotations producing the multicycle operations of §5.3.
//
// Example:
//
//	design diffeq
//	input x, y, u, dx, a
//	m1 = u * dx
//	m2 = 3 * x @2        # 2-cycle multiply
//	if xl < a {
//	    up = u - m1
//	} else {
//	    up = u + m1
//	}
//	loop acc cycles 2 binds s = x, d = dx yields nx {
//	    nx = s + d
//	}
//	out = acc * u
package behav

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNewline
	tokIdent
	tokNumber
	tokOp     // operator symbol, possibly multi-rune
	tokLBrace // {
	tokRBrace // }
	tokLParen // (
	tokRParen // )
	tokComma
	tokAssign // =
	tokAt     // @
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "newline"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits src into tokens. Comments run from '#' to end of line;
// newlines are significant (statement separators).
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	rs := []rune(src)
	emit := func(k tokenKind, s string) { toks = append(toks, token{k, s, line}) }
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '\n':
			emit(tokNewline, "\n")
			line++
			i++
		case r == ' ' || r == '\t' || r == '\r':
			i++
		case r == '#':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			emit(tokIdent, string(rs[i:j]))
			i = j
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			emit(tokNumber, string(rs[i:j]))
			i = j
		case r == '{':
			emit(tokLBrace, "{")
			i++
		case r == '}':
			emit(tokRBrace, "}")
			i++
		case r == '(':
			emit(tokLParen, "(")
			i++
		case r == ')':
			emit(tokRParen, ")")
			i++
		case r == ',':
			emit(tokComma, ",")
			i++
		case r == '@':
			emit(tokAt, "@")
			i++
		default:
			// Operators, longest match first. Matched against at most the
			// next two runes — never the whole remaining source — so lexing
			// stays linear in the input length.
			var opText string
			if i+1 < len(rs) {
				switch two := string(rs[i : i+2]); two {
				case "<<", ">>", "<=", ">=", "==", "!=":
					opText = two
				}
			}
			if opText == "" && strings.ContainsRune("+-*/&|^~<>=", r) {
				opText = string(r)
			}
			if opText == "" {
				return nil, fmt.Errorf("behav: line %d: unexpected character %q", line, r)
			}
			if opText == "=" {
				emit(tokAssign, "=")
			} else {
				emit(tokOp, opText)
			}
			i += len(opText)
		}
	}
	emit(tokEOF, "")
	return toks, nil
}
