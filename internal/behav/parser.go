package behav

import (
	"fmt"
	"strconv"

	"repro/internal/guard"
	"repro/internal/op"
)

// Parse turns a behavioral description into a Design AST.
func Parse(src string) (*Design, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseDesign()
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) skipNL() {
	for p.peek().kind == tokNewline {
		p.pos++
	}
}
func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("behav: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, p.errf(t, "expected %s, got %s", what, t)
	}
	return t, nil
}

func (p *parser) expectKeyword(word string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != word {
		return p.errf(t, "expected %q, got %s", word, t)
	}
	return nil
}

func (p *parser) parseDesign() (*Design, error) {
	p.skipNL()
	if err := p.expectKeyword("design"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "design name")
	if err != nil {
		return nil, err
	}
	d := &Design{Name: name.text}
	p.skipNL()
	for p.peek().kind == tokIdent && (p.peek().text == "input" || p.peek().text == "output") {
		kw := p.next().text
		for {
			id, err := p.expect(tokIdent, kw+" name")
			if err != nil {
				return nil, err
			}
			if kw == "input" {
				d.Inputs = append(d.Inputs, id.text)
			} else {
				d.Outputs = append(d.Outputs, id.text)
			}
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
		p.skipNL()
	}
	body, err := p.parseStmts(tokEOF)
	if err != nil {
		return nil, err
	}
	d.Body = body
	return d, nil
}

// parseStmts parses statements until the given closing token (EOF or }),
// which is consumed.
func (p *parser) parseStmts(closer tokenKind) ([]Stmt, error) {
	var out []Stmt
	for {
		p.skipNL()
		t := p.peek()
		if t.kind == closer {
			p.next()
			return out, nil
		}
		if t.kind == tokEOF {
			return nil, p.errf(t, "unexpected end of input")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf(t, "expected statement, got %s", t)
	}
	switch t.text {
	case "if":
		return p.parseIf()
	case "loop":
		return p.parseLoop()
	case "const":
		return p.parseConst()
	}
	name := p.next()
	if _, err := p.expect(tokAssign, "'='"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	a := Assign{Name: name.text, Expr: e, Line: name.line}
	if p.peek().kind == tokAt {
		p.next()
		num, err := p.expect(tokNumber, "cycle count after @")
		if err != nil {
			return nil, err
		}
		k, err := strconv.Atoi(num.text)
		if err != nil || k < 1 {
			return nil, p.errf(num, "bad cycle count %q", num.text)
		}
		// Reject degenerate counts at parse time: a cycle count beyond
		// the scheduler's control-step cap could never be scheduled and
		// would only inflate downstream frame/grid allocations.
		if k > guard.DefaultMaxCSteps {
			return nil, p.errf(num, "cycle count %d exceeds the limit of %d", k, guard.DefaultMaxCSteps)
		}
		a.Cycles = k
	}
	return a, p.endOfStmt()
}

func (p *parser) endOfStmt() error {
	t := p.peek()
	switch t.kind {
	case tokNewline, tokEOF, tokRBrace:
		return nil
	}
	return p.errf(t, "unexpected %s after statement", t)
}

func (p *parser) parseIf() (Stmt, error) {
	kw := p.next() // "if"
	cond, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	then, err := p.parseStmts(tokRBrace)
	if err != nil {
		return nil, err
	}
	s := If{Cond: cond, Then: then, Line: kw.line}
	p.skipNL()
	if p.peek().kind == tokIdent && p.peek().text == "else" {
		p.next()
		if _, err := p.expect(tokLBrace, "'{'"); err != nil {
			return nil, err
		}
		els, err := p.parseStmts(tokRBrace)
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *parser) parseLoop() (Stmt, error) {
	kw := p.next() // "loop"
	name, err := p.expect(tokIdent, "loop name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("cycles"); err != nil {
		return nil, err
	}
	num, err := p.expect(tokNumber, "loop time constraint")
	if err != nil {
		return nil, err
	}
	cyc, err := strconv.Atoi(num.text)
	if err != nil || cyc < 1 {
		return nil, p.errf(num, "bad loop cycle count %q", num.text)
	}
	if cyc > guard.DefaultMaxCSteps {
		return nil, p.errf(num, "loop cycle count %d exceeds the limit of %d", cyc, guard.DefaultMaxCSteps)
	}
	if err := p.expectKeyword("binds"); err != nil {
		return nil, err
	}
	var binds []Bind
	for {
		inner, err := p.expect(tokIdent, "bind name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign, "'='"); err != nil {
			return nil, err
		}
		outer, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		binds = append(binds, Bind{Inner: inner.text, Outer: outer})
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if err := p.expectKeyword("yields"); err != nil {
		return nil, err
	}
	yields, err := p.expect(tokIdent, "yielded signal")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	body, err := p.parseStmts(tokRBrace)
	if err != nil {
		return nil, err
	}
	return Loop{
		Name: name.text, Cycles: cyc, Binds: binds,
		Yields: yields.text, Body: body, Line: kw.line,
	}, nil
}

func (p *parser) parseConst() (Stmt, error) {
	kw := p.next() // "const"
	name, err := p.expect(tokIdent, "constant name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign, "'='"); err != nil {
		return nil, err
	}
	neg := false
	if t := p.peek(); t.kind == tokOp && t.text == "-" {
		p.next()
		neg = true
	}
	num, err := p.expect(tokNumber, "integer constant")
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseInt(num.text, 10, 64)
	if err != nil {
		return nil, p.errf(num, "bad constant %q", num.text)
	}
	if neg {
		v = -v
	}
	return ConstDecl{Name: name.text, Value: v, Line: kw.line}, p.endOfStmt()
}

// Binding powers for the Pratt expression parser, lowest first.
var binaryOps = map[string]struct {
	kind op.Kind
	prec int
}{
	"|":  {op.Or, 1},
	"^":  {op.Xor, 2},
	"&":  {op.And, 3},
	"==": {op.Eq, 4},
	"!=": {op.Ne, 4},
	"<":  {op.Lt, 5},
	">":  {op.Gt, 5},
	"<=": {op.Le, 5},
	">=": {op.Ge, 5},
	"<<": {op.Shl, 6},
	">>": {op.Shr, 6},
	"+":  {op.Add, 7},
	"-":  {op.Sub, 7},
	"*":  {op.Mul, 8},
	"/":  {op.Div, 8},
}

func (p *parser) parseExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp {
			return lhs, nil
		}
		info, ok := binaryOps[t.text]
		if !ok || info.prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseExpr(info.prec + 1) // left associative
		if err != nil {
			return nil, err
		}
		lhs = Binary{Op: info.kind, X: lhs, Y: rhs, Line: t.line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tokOp && (t.text == "-" || t.text == "~") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		k := op.Neg
		if t.text == "~" {
			k = op.Not
		}
		return Unary{Op: k, X: x, Line: t.line}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		return Ref{Name: t.text, Line: t.line}, nil
	case tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "bad literal %q", t.text)
		}
		return Lit{Value: v, Line: t.line}, nil
	case tokLParen:
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf(t, "expected expression, got %s", t)
}
