package behav

import "testing"

const benchSrc = `
design bench
input a, b, c, d
x1 = a + b * c
x2 = (a - d) * (b + c)
if x1 < x2 {
    lo = x1 + 1
} else {
    hi = x2 - 1
}
loop acc cycles 2 binds s = x1, t = x2 yields nx {
    nx = s + t
}
out = acc * 3
`

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildSource(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := BuildSource(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}
