package behav

import "repro/internal/op"

// Design is a parsed behavioral description.
type Design struct {
	Name    string
	Inputs  []string
	Outputs []string // declared outputs; empty = every sink node
	Body    []Stmt
}

// Stmt is one statement: an assignment, a conditional, or a loop.
type Stmt interface{ stmt() }

// Assign binds a signal name to an expression, optionally with a cycle
// count annotation (`@k`, the §5.3 multicycle marker, applied to the
// expression's root operation).
type Assign struct {
	Name   string
	Expr   Expr
	Cycles int // 0 = default
	Line   int
}

// If is a two-branch conditional; operations in the branches are mutually
// exclusive (§5.1). Cond is evaluated unconditionally.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// Loop is a folded loop (§5.2): a nested body with its own inputs (the
// bind keys), a local time constraint in control steps, and one yielded
// signal that becomes the loop's value in the enclosing scope.
type Loop struct {
	Name   string
	Cycles int
	Binds  []Bind // inner input name = outer expression signal
	Yields string // inner signal exposed as the loop's value
	Body   []Stmt
	Line   int
}

// Bind maps one loop-body input to an outer expression.
type Bind struct {
	Inner string
	Outer Expr
}

// ConstDecl binds a name to an integer constant; it lowers to a
// constant input signal (no operation), unlike a literal assignment
// which costs a Mov.
type ConstDecl struct {
	Name  string
	Value int64
	Line  int
}

func (Assign) stmt()    {}
func (If) stmt()        {}
func (Loop) stmt()      {}
func (ConstDecl) stmt() {}

// Expr is an expression tree node.
type Expr interface{ expr() }

// Ref names a signal (input or previously assigned).
type Ref struct {
	Name string
	Line int
}

// Lit is an integer literal; it lowers to a constant input signal.
type Lit struct {
	Value int64
	Line  int
}

// Unary applies a one-operand operation (~, unary -).
type Unary struct {
	Op   op.Kind
	X    Expr
	Line int
}

// Binary applies a two-operand operation.
type Binary struct {
	Op   op.Kind
	X, Y Expr
	Line int
}

func (Ref) expr()    {}
func (Lit) expr()    {}
func (Unary) expr()  {}
func (Binary) expr() {}
