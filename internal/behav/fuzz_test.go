package behav

import (
	"strings"
	"testing"
)

// FuzzBuildSource checks the frontend never panics and that anything it
// accepts is a valid, evaluable graph. `go test` runs the seed corpus;
// `go test -fuzz=FuzzBuildSource` explores further.
func FuzzBuildSource(f *testing.F) {
	seeds := []string{
		"design d\ninput a\nx = a + a\n",
		"design d\ninput a, b\nx = (a + b) * 3 @2\n",
		"design d\ninput a\nif a < 1 { x = a + 1 } else { y = a - 1 }\n",
		"design d\ninput a\nloop l cycles 2 binds v = a yields r { r = v + 1 }\n",
		"design d\ninput a\nx = -a\ny = ~x\nz = x << 2\n",
		"design\n",
		"design d\ninput a\nx = ",
		"design d\ninput a\nx = a $ a",
		"design d\n# comment only\n",
		strings.Repeat("design d\n", 3),
		"design d\ninput a\nx = a + a @999\n",
		"design d\ninput a\nif a { if a { if a { x = a } } }\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, consts, err := BuildSource(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\nsource:\n%s", err, src)
		}
		in := make(map[string]int64)
		for _, name := range g.Inputs() {
			in[name] = 1
		}
		for k, v := range consts {
			in[k] = v
		}
		if _, err := g.Eval(in); err != nil {
			t.Fatalf("accepted graph fails evaluation: %v\nsource:\n%s", err, src)
		}
	})
}
