package behav

import (
	"strings"
	"testing"

	"repro/internal/guard"
)

// FuzzBuildSource checks the frontend never panics, that anything it
// accepts is a valid, evaluable graph, and that the parser's numeric
// bounds hold: no accepted design carries a cycle count beyond the
// scheduler's control-step cap, so a degenerate `@ 1000000000` can
// never reach the engine. `go test` runs the seed corpus;
// `go test -fuzz=FuzzBuildSource` explores further (CI runs a short
// fuzz smoke of this target).
func FuzzBuildSource(f *testing.F) {
	seeds := []string{
		"design d\ninput a\nx = a + a\n",
		"design d\ninput a, b\nx = (a + b) * 3 @2\n",
		"design d\ninput a\nif a < 1 { x = a + 1 } else { y = a - 1 }\n",
		"design d\ninput a\nloop l cycles 2 binds v = a yields r { r = v + 1 }\n",
		"design d\ninput a\nx = -a\ny = ~x\nz = x << 2\n",
		"design\n",
		"design d\ninput a\nx = ",
		"design d\ninput a\nx = a $ a",
		"design d\n# comment only\n",
		strings.Repeat("design d\n", 3),
		"design d\ninput a\nx = a + a @999\n",
		"design d\ninput a\nif a { if a { if a { x = a } } }\n",
		// Numeric-bound probes: the parser must reject counts past the
		// control-step cap and anything that overflows int.
		"design d\ninput a\nx = a + a @1000000000\n",
		"design d\ninput a\nx = a + a @65536\n",
		"design d\ninput a\nloop l cycles 1000000000 binds v = a yields r { r = v + 1 }\n",
		"design d\ninput a\nx = a + a @99999999999999999999\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, consts, err := BuildSource(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\nsource:\n%s", err, src)
		}
		for _, n := range g.Nodes() {
			if n.Cycles > guard.DefaultMaxCSteps {
				t.Fatalf("accepted node %q with %d cycles, beyond the cap of %d\nsource:\n%s",
					n.Name, n.Cycles, guard.DefaultMaxCSteps, src)
			}
		}
		in := make(map[string]int64)
		for _, name := range g.Inputs() {
			in[name] = 1
		}
		for k, v := range consts {
			in[k] = v
		}
		if _, err := g.Eval(in); err != nil {
			t.Fatalf("accepted graph fails evaluation: %v\nsource:\n%s", err, src)
		}
	})
}
