package behav

import (
	"strings"
	"testing"

	"repro/internal/dfg"
	"repro/internal/op"
)

func mustBuild(t *testing.T, src string) (*dfg.Graph, map[string]int64) {
	t.Helper()
	g, consts, err := BuildSource(src)
	if err != nil {
		t.Fatalf("BuildSource: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g, consts
}

func evalWith(t *testing.T, g *dfg.Graph, consts map[string]int64, in map[string]int64) map[string]int64 {
	t.Helper()
	all := make(map[string]int64)
	for k, v := range consts {
		all[k] = v
	}
	for k, v := range in {
		all[k] = v
	}
	vals, err := g.Eval(all)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return vals
}

func TestSimpleDesign(t *testing.T) {
	g, consts := mustBuild(t, `
design quick
input a, b
s = a + b
p = s * 3
`)
	if g.Name != "quick" || g.Len() != 2 {
		t.Fatalf("graph = %s len %d", g.Name, g.Len())
	}
	vals := evalWith(t, g, consts, map[string]int64{"a": 2, "b": 5})
	if vals["s"] != 7 || vals["p"] != 21 {
		t.Errorf("vals = %v", vals)
	}
}

func TestPrecedenceAndParens(t *testing.T) {
	g, consts := mustBuild(t, `
design prec
input a, b, c
x = a + b * c
y = (a + b) * c
z = a < b + c
w = a & b | c
`)
	vals := evalWith(t, g, consts, map[string]int64{"a": 2, "b": 3, "c": 4})
	if vals["x"] != 14 {
		t.Errorf("x = %d, want 14 (mul binds tighter)", vals["x"])
	}
	if vals["y"] != 20 {
		t.Errorf("y = %d, want 20", vals["y"])
	}
	if vals["z"] != 1 {
		t.Errorf("z = %d, want 1 (2 < 7)", vals["z"])
	}
	if vals["w"] != (2&3 | 4) {
		t.Errorf("w = %d", vals["w"])
	}
}

func TestUnaryAndShifts(t *testing.T) {
	g, consts := mustBuild(t, `
design un
input a
n = -a
inv = ~a
sh = a << 2
shr = a >> 1
eq = a == 6
`)
	vals := evalWith(t, g, consts, map[string]int64{"a": 6})
	if vals["n"] != -6 || vals["inv"] != ^int64(6) || vals["sh"] != 24 || vals["shr"] != 3 || vals["eq"] != 1 {
		t.Errorf("vals = %v", vals)
	}
}

func TestLiteralsInterned(t *testing.T) {
	g, consts := mustBuild(t, `
design lits
input a
x = a + 3
y = a * 3
z = a - 7
`)
	if len(consts) != 2 {
		t.Errorf("consts = %v, want lit_3 and lit_7 interned once", consts)
	}
	if consts["lit_3"] != 3 || consts["lit_7"] != 7 {
		t.Errorf("consts = %v", consts)
	}
	_ = g
}

func TestMulticycleAnnotation(t *testing.T) {
	g, _ := mustBuild(t, `
design mc
input a, b
m = a * b @2
s = m + a
`)
	m, ok := g.Lookup("m")
	if !ok || m.Cycles != 2 {
		t.Fatalf("m cycles = %+v", m)
	}
	if g.CriticalPathCycles() != 3 {
		t.Errorf("critical path = %d, want 3", g.CriticalPathCycles())
	}
}

func TestConditionalTags(t *testing.T) {
	g, consts := mustBuild(t, `
design cond
input a, b
if a < b {
    small = a * 2
} else {
    big = b * 2
}
after = a + b
`)
	small, ok1 := g.Lookup("small")
	big, ok2 := g.Lookup("big")
	after, ok3 := g.Lookup("after")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing nodes")
	}
	if !g.MutuallyExclusive(small.ID, big.ID) {
		t.Error("branch ops not mutually exclusive")
	}
	if g.MutuallyExclusive(small.ID, after.ID) {
		t.Error("post-if op wrongly exclusive")
	}
	cond, ok := g.Lookup("cond1")
	if !ok {
		t.Fatal("condition node missing")
	}
	if cond.Op != op.Lt || len(cond.Excl) != 0 {
		t.Errorf("condition = %+v", cond)
	}
	vals := evalWith(t, g, consts, map[string]int64{"a": 1, "b": 5})
	if vals["small"] != 2 || vals["big"] != 10 {
		t.Errorf("vals = %v (dataflow computes both branches)", vals)
	}
}

func TestNestedConditionals(t *testing.T) {
	g, _ := mustBuild(t, `
design nest
input a, b
if a < b {
    if a < 2 {
        x1 = a + 1
    } else {
        x2 = a + 2
    }
} else {
    x3 = a + 3
}
`)
	x1, _ := g.Lookup("x1")
	x2, _ := g.Lookup("x2")
	x3, _ := g.Lookup("x3")
	if !g.MutuallyExclusive(x1.ID, x2.ID) {
		t.Error("inner branches not exclusive")
	}
	if !g.MutuallyExclusive(x1.ID, x3.ID) || !g.MutuallyExclusive(x2.ID, x3.ID) {
		t.Error("inner ops not exclusive with outer else")
	}
}

func TestSameNameInBothBranchesRejected(t *testing.T) {
	_, _, err := BuildSource(`
design phi
input a
if a < 2 {
    x = a + 1
} else {
    x = a + 2
}
`)
	if err == nil {
		t.Fatal("phi-style double assignment accepted")
	}
}

func TestLoopBlock(t *testing.T) {
	g, consts := mustBuild(t, `
design looped
input x, dx
loop acc cycles 2 binds s = x, d = dx yields nx {
    nx = s + d
}
out = acc * 2
`)
	acc, ok := g.Lookup("acc")
	if !ok || !acc.IsLoop() || acc.Cycles != 2 {
		t.Fatalf("loop node = %+v", acc)
	}
	vals := evalWith(t, g, consts, map[string]int64{"x": 10, "dx": 3})
	if vals["acc"] != 13 || vals["out"] != 26 {
		t.Errorf("vals = %v", vals)
	}
}

func TestLoopWithInnerLiteral(t *testing.T) {
	g, consts := mustBuild(t, `
design ll
input x
loop tripled cycles 1 binds v = x yields r {
    r = v * 3
}
`)
	vals := evalWith(t, g, consts, map[string]int64{"x": 7})
	if vals["tripled"] != 21 {
		t.Errorf("tripled = %d", vals["tripled"])
	}
	if _, ok := consts["lit_3"]; !ok {
		t.Errorf("inner literal not surfaced: %v", consts)
	}
}

func TestAliasBecomesMov(t *testing.T) {
	g, _ := mustBuild(t, `
design alias
input a
b = a
c = 5
`)
	bn, _ := g.Lookup("b")
	if bn.Op != op.Mov {
		t.Errorf("alias op = %v, want mov", bn.Op)
	}
	cn, _ := g.Lookup("c")
	if cn.Op != op.Mov {
		t.Errorf("literal assign op = %v, want mov", cn.Op)
	}
}

func TestComments(t *testing.T) {
	g, _ := mustBuild(t, `
# leading comment
design c   # trailing comment
input a
x = a + a  # another
`)
	if g.Len() != 1 {
		t.Errorf("len = %d", g.Len())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                    // no design
		"design",                              // missing name
		"design d\nx = ",                      // missing expr
		"design d\ninput a\nx a",              // missing =
		"design d\ninput a\nx = a +",          // dangling op
		"design d\ninput a\nx = (a",           // unclosed paren
		"design d\ninput a\nif a < 1 { x = a", // unclosed brace
		"design d\ninput a\nx = y + 1",        // undefined ref
		"design d\ninput a\nx = a @0",         // bad cycles
		"design d\ninput a\nloop l cycles 0 binds v = a yields r { r = v }",  // bad loop cycles
		"design d\ninput a\nloop l cycles 1 binds v = a yields zz { r = v }", // bad yield
		"design d\ninput a\nx = a\nx = a",                                    // duplicate signal
		"design d\ninput a\nx = a $ a",                                       // bad char
	}
	for i, src := range cases {
		if _, _, err := BuildSource(src); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}

func TestDiffeqSource(t *testing.T) {
	// The package-comment example, end to end.
	src := `
design diffeq
input x, y, u, dx, a
m1 = u * dx
m2 = 3 * x @2
xl = x + dx
if xl < a {
    up = u - m1
} else {
    un = u + m1
}
loop acc cycles 2 binds s = x, d = dx yields nx {
    nx = s + d
}
out = acc * u
`
	g, consts := mustBuild(t, src)
	if g.Len() < 8 {
		t.Errorf("len = %d", g.Len())
	}
	vals := evalWith(t, g, consts, map[string]int64{"x": 1, "y": 2, "u": 3, "dx": 4, "a": 9})
	if vals["out"] != (1+4)*3 {
		t.Errorf("out = %d", vals["out"])
	}
	if !strings.Contains(g.Name, "diffeq") {
		t.Errorf("name = %q", g.Name)
	}
}

func TestOutputDeclarations(t *testing.T) {
	g, _ := mustBuild(t, `
design outs
input a
output y
x = a + a
y = x * 2
`)
	if g.Len() != 2 {
		t.Errorf("len = %d", g.Len())
	}
	// An undeclared output is an error.
	if _, _, err := BuildSource(`
design bad
input a
output missing
x = a + a
`); err == nil {
		t.Error("undeclared output accepted")
	}
}

func TestConstDeclarations(t *testing.T) {
	g, consts := mustBuild(t, `
design withconst
input a
const gain = 12
const offset = -3
y = a * gain
z = y + offset
`)
	if consts["gain"] != 12 || consts["offset"] != -3 {
		t.Fatalf("consts = %v", consts)
	}
	// Constants are inputs, not Mov operations.
	if g.Len() != 2 {
		t.Errorf("len = %d, want 2 (y and z only)", g.Len())
	}
	vals := evalWith(t, g, consts, map[string]int64{"a": 5})
	if vals["z"] != 5*12-3 {
		t.Errorf("z = %d", vals["z"])
	}
	// Redeclaration collides.
	if _, _, err := BuildSource("design d\ninput a\nconst a = 1\n"); err == nil {
		t.Error("const colliding with input accepted")
	}
	if _, _, err := BuildSource("design d\nconst k = x\n"); err == nil {
		t.Error("non-integer const accepted")
	}
}
