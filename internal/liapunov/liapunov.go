// Package liapunov implements the energy functions that guide MFS and
// MFSA (§2.4, §3.1, §4.1). A Liapunov function assigns every grid
// position a scalar energy; the schedulers always move an operation to
// the empty move-frame position of least energy, so the system's total
// energy decreases monotonically toward the (dummy) equilibrium point at
// the origin — the convergence argument of Liapunov's stability theorem.
package liapunov

import (
	"fmt"

	"repro/internal/grid"
)

// Func evaluates the energy contribution of placing one operation at a
// grid position. Lower is better; the schedulers pick the minimum over
// the move frame.
type Func interface {
	// Value returns the energy of position p. It must be positive for all
	// on-grid positions (theorem property 1) and strictly increasing in
	// each coordinate so that moves toward the origin decrease it
	// (property 2); it is zero only at the off-grid equilibrium (0,0)
	// (property 3) and unbounded with ‖X‖ (property 4).
	Value(p grid.Pos) float64
	Name() string
}

// Ordered is an optional capability of a Func: a guiding function that
// can prove one of the two canonical grid scan orders visits positions
// in non-decreasing energy (with the (step, index) tie-break the
// schedulers use). When GridOrder reports ok for a concrete cs × max
// grid, the schedulers walk the move frame's bits in that order and
// commit the first legal position — no slice materialization, no sort —
// which is exactly the minimum the generic sorted path would pick.
// Implementations must be conservative: return ok only when the order
// is provably strict for every position on the given grid.
type Ordered interface {
	Func
	// GridOrder reports the scan order under which this function is
	// non-decreasing over a cs × max grid, and whether that claim holds
	// for these bounds.
	GridOrder(cs, max int) (grid.Order, bool)
}

// TimeConstrained is §3.1's scheduling function V = x + n·y, with
// n = max_j{max_j} strictly larger than any FU index. It makes every
// position in control step t cheaper than any position in step t+1, so
// no control step is wasted under a time constraint.
type TimeConstrained struct {
	// N must exceed the largest FU-instance index in use (the paper sets
	// it to the maximum of the per-type max_j bounds).
	N int
}

func (f TimeConstrained) Value(p grid.Pos) float64 {
	return float64(p.Index) + float64(f.N)*float64(p.Step)
}

func (f TimeConstrained) Name() string { return fmt.Sprintf("time-constrained(n=%d)", f.N) }

// GridOrder: with N > max, V = i + N·s is strictly increasing in
// row-major (step, then index) order — two positions in the same step
// differ by their index, and any step increase adds N, more than the
// largest possible index decrease. With N ≤ max the function is not
// even injective on the grid, so the capability is withdrawn.
func (f TimeConstrained) GridOrder(cs, max int) (grid.Order, bool) {
	return grid.RowMajor, f.N > max
}

// ResourceConstrained is §3.1's dual V = cs·x + y: a position in control
// step t+1 on an existing FU is cheaper than opening a new FU in step t,
// minimizing hardware under a resource constraint.
type ResourceConstrained struct {
	// CS must exceed the total number of control steps in use.
	CS int
}

func (f ResourceConstrained) Value(p grid.Pos) float64 {
	return float64(f.CS)*float64(p.Index) + float64(p.Step)
}

func (f ResourceConstrained) Name() string { return fmt.Sprintf("resource-constrained(cs=%d)", f.CS) }

// GridOrder: with CS > cs, V = CS·i + s is strictly increasing in
// column-major (index, then step) order, by the mirror of the
// TimeConstrained argument. Self-validating against the concrete grid
// so ablation configurations with an undersized CS fall back to the
// generic sorted path instead of silently misordering.
func (f ResourceConstrained) GridOrder(cs, max int) (grid.Order, bool) {
	return grid.ColMajor, f.CS > cs
}

// DominanceConstant returns §4.1's constant C for MFSA's composite
// function: C must exceed [f^ALU_max + f^MUX_max + f^REG_max] −
// [f^ALU_min + f^MUX_min + f^REG_min] (the minima are all zero), so the
// time term C·y dominates and control step t is still preferred over t+1
// whenever possible.
func DominanceConstant(maxALU, maxMux, maxReg float64) float64 {
	return maxALU + maxMux + maxReg + 1
}

// CheckProperties verifies the theorem's usable properties of f over the
// finite cs × max grid: strict positivity everywhere on the grid, zero at
// the equilibrium origin, and strict decrease when moving up or left
// (which implies trajectories toward the origin decrease monotonically).
// Schedulers' tests call it to certify a Func before trusting it.
func CheckProperties(f Func, cs, max int) error {
	if v := f.Value(grid.Pos{Step: 0, Index: 0}); v != 0 {
		return fmt.Errorf("liapunov %s: V(equilibrium) = %v, want 0", f.Name(), v)
	}
	for s := 1; s <= cs; s++ {
		for i := 1; i <= max; i++ {
			p := grid.Pos{Step: s, Index: i}
			v := f.Value(p)
			if v <= 0 {
				return fmt.Errorf("liapunov %s: V%v = %v, want > 0", f.Name(), p, v)
			}
			if s > 1 && f.Value(grid.Pos{Step: s - 1, Index: i}) >= v {
				return fmt.Errorf("liapunov %s: not decreasing upward at %v", f.Name(), p)
			}
			if i > 1 && f.Value(grid.Pos{Step: s, Index: i - 1}) >= v {
				return fmt.Errorf("liapunov %s: not decreasing leftward at %v", f.Name(), p)
			}
		}
	}
	return nil
}

// CheckTrajectory verifies property 2 along a concrete movement history:
// every move must strictly decrease the energy. The schedulers' movement
// mechanism (re-placements during local rescheduling) is validated with
// this in tests.
func CheckTrajectory(f Func, moves []grid.Pos) error {
	for i := 1; i < len(moves); i++ {
		a, b := f.Value(moves[i-1]), f.Value(moves[i])
		if b >= a {
			return fmt.Errorf("liapunov %s: move %d: V %v -> %v does not decrease",
				f.Name(), i, a, b)
		}
	}
	return nil
}
