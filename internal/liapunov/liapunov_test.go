package liapunov

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func TestTimeConstrainedOrdering(t *testing.T) {
	// The defining property of §3.1: the LAST FU of step t is cheaper than
	// the FIRST FU of step t+1.
	n := 7
	f := TimeConstrained{N: n}
	for step := 1; step < 10; step++ {
		last := f.Value(grid.Pos{Step: step, Index: n})
		first := f.Value(grid.Pos{Step: step + 1, Index: 1})
		if last >= first {
			t.Fatalf("step %d: V(last fu)=%v not < V(next step first fu)=%v", step, last, first)
		}
	}
}

func TestResourceConstrainedOrdering(t *testing.T) {
	// Dual property: the LAST step on FU i is cheaper than step 1 on FU i+1.
	cs := 9
	f := ResourceConstrained{CS: cs}
	for idx := 1; idx < 6; idx++ {
		last := f.Value(grid.Pos{Step: cs, Index: idx})
		next := f.Value(grid.Pos{Step: 1, Index: idx + 1})
		if last >= next {
			t.Fatalf("fu %d: V(last step)=%v not < V(new fu)=%v", idx, last, next)
		}
	}
}

func TestProperties(t *testing.T) {
	if err := CheckProperties(TimeConstrained{N: 5}, 12, 5); err != nil {
		t.Error(err)
	}
	if err := CheckProperties(ResourceConstrained{CS: 12}, 12, 5); err != nil {
		t.Error(err)
	}
}

// badFunc violates positivity at (1,1).
type badFunc struct{}

func (badFunc) Value(p grid.Pos) float64 { return float64(p.Step) - 1 }
func (badFunc) Name() string             { return "bad" }

// flatFunc is constant, violating strict decrease.
type flatFunc struct{}

func (flatFunc) Value(p grid.Pos) float64 {
	if p == (grid.Pos{}) {
		return 0
	}
	return 1
}
func (flatFunc) Name() string { return "flat" }

// offsetFunc violates V(equilibrium)=0.
type offsetFunc struct{}

func (offsetFunc) Value(p grid.Pos) float64 { return 1 + float64(p.Step+p.Index) }
func (offsetFunc) Name() string             { return "offset" }

func TestCheckPropertiesRejects(t *testing.T) {
	if err := CheckProperties(badFunc{}, 3, 3); err == nil {
		t.Error("non-positive function accepted")
	}
	if err := CheckProperties(flatFunc{}, 3, 3); err == nil {
		t.Error("flat function accepted")
	}
	if err := CheckProperties(offsetFunc{}, 3, 3); err == nil {
		t.Error("offset function accepted")
	}
}

func TestTrajectory(t *testing.T) {
	f := TimeConstrained{N: 4}
	good := []grid.Pos{
		{Step: 6, Index: 4}, {Step: 6, Index: 2}, {Step: 5, Index: 3}, {Step: 3, Index: 1},
	}
	if err := CheckTrajectory(f, good); err != nil {
		t.Errorf("monotone trajectory rejected: %v", err)
	}
	bad := []grid.Pos{{Step: 3, Index: 1}, {Step: 3, Index: 1}}
	if err := CheckTrajectory(f, bad); err == nil {
		t.Error("stationary move accepted")
	}
	up := []grid.Pos{{Step: 3, Index: 1}, {Step: 4, Index: 1}}
	if err := CheckTrajectory(f, up); err == nil {
		t.Error("energy-increasing move accepted")
	}
	if err := CheckTrajectory(f, nil); err != nil {
		t.Errorf("empty trajectory rejected: %v", err)
	}
}

func TestMovePropertyQuick(t *testing.T) {
	// Property (2) of the theorem: x' < x and y' < y implies V' < V, for
	// both static functions.
	fT := TimeConstrained{N: 10}
	fR := ResourceConstrained{CS: 20}
	prop := func(x, y, dx, dy uint8) bool {
		p := grid.Pos{Step: int(y%20) + 2, Index: int(x%10) + 2}
		q := grid.Pos{Step: p.Step - int(dy%uint8(p.Step-1)) - 1, Index: p.Index - int(dx%uint8(p.Index-1)) - 1}
		return fT.Value(q) < fT.Value(p) && fR.Value(q) < fR.Value(p)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestGridOrder certifies the Ordered capability: where GridOrder
// reports ok, the claimed scan order must visit every grid position in
// strictly increasing energy; where the parameter constraint fails, the
// capability must be withdrawn.
func TestGridOrder(t *testing.T) {
	scan := func(cs, max int, ord grid.Order) []grid.Pos {
		ps := make([]grid.Pos, 0, cs*max)
		if ord == grid.RowMajor {
			for s := 1; s <= cs; s++ {
				for i := 1; i <= max; i++ {
					ps = append(ps, grid.Pos{Step: s, Index: i})
				}
			}
		} else {
			for i := 1; i <= max; i++ {
				for s := 1; s <= cs; s++ {
					ps = append(ps, grid.Pos{Step: s, Index: i})
				}
			}
		}
		return ps
	}
	cases := []struct {
		f       Ordered
		cs, max int
		wantOrd grid.Order
		wantOK  bool
	}{
		{TimeConstrained{N: 6}, 10, 5, grid.RowMajor, true},
		{TimeConstrained{N: 5}, 10, 5, grid.RowMajor, false}, // N not > max
		{ResourceConstrained{CS: 11}, 10, 5, grid.ColMajor, true},
		{ResourceConstrained{CS: 10}, 10, 5, grid.ColMajor, false}, // CS not > cs
	}
	for _, c := range cases {
		ord, ok := c.f.GridOrder(c.cs, c.max)
		if ord != c.wantOrd || ok != c.wantOK {
			t.Errorf("%s.GridOrder(%d,%d) = (%v,%v), want (%v,%v)",
				c.f.Name(), c.cs, c.max, ord, ok, c.wantOrd, c.wantOK)
		}
		if !ok {
			continue
		}
		ps := scan(c.cs, c.max, ord)
		for i := 1; i < len(ps); i++ {
			if c.f.Value(ps[i-1]) >= c.f.Value(ps[i]) {
				t.Fatalf("%s: scan order not strictly increasing at %v -> %v",
					c.f.Name(), ps[i-1], ps[i])
			}
		}
	}
	// Static functions implement the capability.
	var _ Ordered = TimeConstrained{}
	var _ Ordered = ResourceConstrained{}
}

func TestDominanceConstant(t *testing.T) {
	c := DominanceConstant(16000, 300, 1400)
	// The §4.1 inequality: C·(y+1) + mins > C·y + maxes, i.e. C > sum of
	// maxima (minima are zero).
	if !(c > 16000+300+1400) {
		t.Errorf("C = %v too small", c)
	}
	// Time dominance in action: step t with all worst-case hardware beats
	// step t+1 with free hardware.
	y := 3.0
	worst := c*y + 16000 + 300 + 1400
	nextFree := c * (y + 1)
	if !(worst < nextFree) {
		t.Errorf("time dominance broken: %v >= %v", worst, nextFree)
	}
}
