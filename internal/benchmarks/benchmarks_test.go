package benchmarks

import (
	"testing"

	"repro/internal/op"
)

func TestAllValid(t *testing.T) {
	exs := All()
	if len(exs) != 6 {
		t.Fatalf("len(All()) = %d, want 6", len(exs))
	}
	for i, ex := range exs {
		if ex.Num != i+1 {
			t.Errorf("example %d has Num %d", i+1, ex.Num)
		}
		if err := ex.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", ex.Name, err)
		}
		if len(ex.TimeConstraints) == 0 {
			t.Errorf("%s: no time constraints", ex.Name)
		}
	}
}

func opCounts(ex *Example) map[op.Kind]int {
	c := make(map[op.Kind]int)
	for _, n := range ex.Graph.Nodes() {
		c[n.Op]++
	}
	return c
}

func TestFacetSignature(t *testing.T) {
	ex := Facet()
	c := opCounts(ex)
	want := map[op.Kind]int{op.Add: 2, op.Mul: 1, op.Div: 1, op.Sub: 1, op.And: 1, op.Or: 1}
	for k, n := range want {
		if c[k] != n {
			t.Errorf("facet %v count = %d, want %d", k, c[k], n)
		}
	}
	if got := ex.Graph.CriticalPathCycles(); got != 4 {
		t.Errorf("facet critical path = %d, want 4", got)
	}
}

func TestChainedSignature(t *testing.T) {
	ex := Chained()
	c := opCounts(ex)
	if c[op.Add] != 4 || c[op.Sub] != 4 {
		t.Errorf("chained counts = %v, want 4 adds and 4 subs", c)
	}
	// Without chaining the kernel needs 8 steps; T=4 relies on ClockNs.
	if got := ex.Graph.CriticalPathCycles(); got != 8 {
		t.Errorf("chained critical path = %d, want 8", got)
	}
	if ex.ClockNs <= 0 || ex.Feature != "C" {
		t.Errorf("chained example not configured for chaining: %+v", ex)
	}
}

func TestDiffeqSignature(t *testing.T) {
	ex := Diffeq()
	c := opCounts(ex)
	if c[op.Mul] != 6 || c[op.Sub] != 2 || c[op.Add] != 2 || c[op.Lt] != 1 {
		t.Errorf("diffeq counts = %v, want 6*/2-/2+/1<", c)
	}
	if got := ex.Graph.CriticalPathCycles(); got != 4 {
		t.Errorf("diffeq critical path = %d, want 4", got)
	}
	if ex.Latency == nil {
		t.Fatal("diffeq has no latency function")
	}
	for _, cs := range ex.TimeConstraints {
		if l := ex.Latency(cs); l < 1 || l > cs {
			t.Errorf("diffeq Latency(%d) = %d", cs, l)
		}
	}
}

func TestARLatticeSignature(t *testing.T) {
	ex := ARLattice()
	c := opCounts(ex)
	if c[op.Mul] != 16 || c[op.Add] != 12 {
		t.Errorf("ar-lattice counts = %v, want 16*/12+", c)
	}
	for _, n := range ex.Graph.Nodes() {
		if n.Op == op.Mul && n.Cycles != 2 {
			t.Errorf("ar-lattice mul %q cycles = %d, want 2", n.Name, n.Cycles)
		}
	}
	// Chain of 4 lattice stages: each stage is mul(2) + add(1) = 3 deep,
	// plus the 2-level output tree.
	if got := ex.Graph.CriticalPathCycles(); got > 8 {
		t.Errorf("ar-lattice critical path = %d, want <= 8 (first T)", got)
	}
}

func TestBandpassSignature(t *testing.T) {
	ex := Bandpass()
	c := opCounts(ex)
	if c[op.Mul] != 8 || c[op.Add] != 6 || c[op.Sub] != 2 {
		t.Errorf("bandpass counts = %v, want 8*/6+/2-", c)
	}
	if got := ex.Graph.CriticalPathCycles(); got > 9 {
		t.Errorf("bandpass critical path = %d, want <= 9 (first T)", got)
	}
	if len(ex.PipelinedOps) == 0 || ex.Feature != "S" {
		t.Error("bandpass not configured for structural pipelining")
	}
}

func TestEWFSignature(t *testing.T) {
	ex := EWF()
	c := opCounts(ex)
	if c[op.Add] != 26 || c[op.Mul] != 8 {
		t.Errorf("ewf counts = %v, want 26+/8*", c)
	}
	if got := ex.Graph.CriticalPathCycles(); got != 17 {
		t.Errorf("ewf critical path = %d, want 17", got)
	}
	for _, n := range ex.Graph.Nodes() {
		if n.Op == op.Mul && n.Cycles != 2 {
			t.Errorf("ewf mul %q cycles = %d, want 2", n.Name, n.Cycles)
		}
	}
}

func TestGraphsEvaluate(t *testing.T) {
	// Every benchmark graph must be executable by the reference evaluator
	// (this is what the datapath simulator cross-checks against).
	for _, ex := range All() {
		in := make(map[string]int64)
		for i, name := range ex.Graph.Inputs() {
			in[name] = int64(i + 1)
		}
		vals, err := ex.Graph.Eval(in)
		if err != nil {
			t.Errorf("%s: Eval: %v", ex.Name, err)
			continue
		}
		if len(vals) < ex.Graph.Len() {
			t.Errorf("%s: Eval returned %d values for %d nodes", ex.Name, len(vals), ex.Graph.Len())
		}
	}
}

func TestFreshConstruction(t *testing.T) {
	// Each call returns an independent graph.
	a, b := Facet(), Facet()
	if a.Graph == b.Graph {
		t.Error("Facet() returns a shared graph")
	}
	if err := a.Graph.AddInput("extra"); err != nil {
		t.Fatal(err)
	}
	if len(a.Graph.Inputs()) == len(b.Graph.Inputs()) {
		t.Error("mutating one instance affected the other")
	}
}
