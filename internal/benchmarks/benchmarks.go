// Package benchmarks provides the six literature design examples the
// paper evaluates MFS (Table 1) and MFSA (Table 2) on. The paper does not
// name its examples; the op mixes, time constraints and features of each
// table row identify them as the canonical early-1990s HLS benchmark set
// (see DESIGN.md §4):
//
//	#1  FACET example — single-cycle ops {* + - / & |}, T = 4, 5
//	#2  chained arithmetic kernel — chaining, T = 4
//	#3  HAL differential-equation solver — functional pipelining, T = 4, 6, 8
//	#4  AR lattice filter — 2-cycle multiply, T = 8, 9, 13
//	#5  band-pass filter section — structural pipelining, T = 9, 10, 13
//	#6  fifth-order elliptic wave filter — structural pipelining, T = 17, 19, 21
//
// Examples #1–#5 are reconstructed from their published descriptions.
// For #6 the exact 34-node netlist was not available offline, so EWF is a
// synthetic wave-filter DFG with the same signature (26 additions, 8
// two-cycle constant multiplications, critical path 17) engineered to
// reproduce the published resource trend (3/2/1 multipliers at T =
// 17/19/21, one fewer when multipliers are pipelined); the substitution
// is recorded in DESIGN.md §3.
package benchmarks

import (
	"fmt"

	"repro/internal/dfg"
	"repro/internal/op"
)

// Example bundles a benchmark graph with the evaluation parameters its
// Table 1 row uses.
type Example struct {
	Num   int
	Name  string
	Graph *dfg.Graph

	// Feature is the Table 1 "special feature" column: "" (plain), "C"
	// (chaining), "F" (functional pipelining), "S" (structural
	// pipelining).
	Feature string

	// CycleNote is Table 1's second column: "1" when every operation is
	// single-cycle, "2" when multiplication takes two cycles.
	CycleNote string

	// TimeConstraints are the T values of the example's Table 1 row.
	TimeConstraints []int

	// ClockNs is the control-step period for the chained example.
	ClockNs float64

	// Latency returns the functional-pipelining initiation interval for a
	// given time constraint (nil when Feature != "F").
	Latency func(cs int) int

	// PipelinedOps lists the op symbols realized by 2-stage pipelined
	// units in the example's structural-pipelining variant.
	PipelinedOps []string
}

// All returns the six examples, freshly constructed.
func All() []*Example {
	return []*Example{Facet(), Chained(), Diffeq(), ARLattice(), Bandpass(), EWF()}
}

// builder wraps a Graph so benchmark constructors read as netlists.
type builder struct{ g *dfg.Graph }

func newBuilder(name string) *builder { return &builder{g: dfg.New(name)} }

// must asserts one construction step of a built-in benchmark succeeded.
// The six graphs below are static literals — every input, operation name
// and argument is spelled out in this file and exercised by the package
// tests (and by virtually every other test in the repository) — so a
// failure is unreachable short of an inconsistent edit to those
// literals: a programming error that must fail loudly at construction
// rather than hand the 30+ calling packages an error for data baked into
// the binary.
func must(err error) {
	if err != nil {
		panic("benchmarks: invalid built-in graph: " + err.Error())
	}
}

func (b *builder) in(names ...string) {
	for _, n := range names {
		must(b.g.AddInput(n))
	}
}

func (b *builder) op(name string, k op.Kind, args ...string) dfg.NodeID {
	id, err := b.g.AddOp(name, k, args...)
	must(err)
	return id
}

func (b *builder) mul2(name, a, c string) dfg.NodeID {
	id := b.op(name, op.Mul, a, c)
	must(b.g.SetCycles(id, 2))
	return id
}

// Facet reconstructs example #1: a FACET-style kernel over the operator
// set {* + - / & |} whose minimum-FU profile is {1*,2+,1-,1/,1&,1|} at
// T=4 and one unit of each type at T=5 (the two additions serialize once
// a fifth step exists).
func Facet() *Example {
	b := newBuilder("facet")
	b.in("i1", "i2", "i3", "i4", "i5", "i6", "i7", "i8")
	b.op("add1", op.Add, "i1", "i2")
	b.op("add2", op.Add, "i3", "i4")
	b.op("mul", op.Mul, "add1", "add2")
	b.op("div", op.Div, "mul", "i5")
	b.op("sub", op.Sub, "mul", "i6")
	b.op("and", op.And, "div", "i7")
	b.op("or", op.Or, "sub", "i8")
	return &Example{
		Num: 1, Name: "facet", Graph: b.g,
		CycleNote:       "1",
		TimeConstraints: []int{4, 5},
	}
}

// Chained reconstructs example #2: a serially dependent add/sub chain
// that needs 8 steps without chaining but meets T=4 with two chained
// levels per 100 ns step (40 ns per ALU level), using one adder and one
// subtractor.
func Chained() *Example {
	b := newBuilder("chained")
	b.in("x", "k1", "k2", "k3", "k4", "k5", "k6", "k7")
	prev := "x"
	for i := 1; i <= 4; i++ {
		a := fmt.Sprintf("a%d", i)
		s := fmt.Sprintf("s%d", i)
		b.op(a, op.Add, prev, fmt.Sprintf("k%d", 2*i-1))
		if i < 4 {
			b.op(s, op.Sub, a, fmt.Sprintf("k%d", 2*i))
			prev = s
		} else {
			b.op(s, op.Sub, a, "k7")
		}
	}
	return &Example{
		Num: 2, Name: "chained", Graph: b.g,
		Feature:         "C",
		CycleNote:       "1",
		TimeConstraints: []int{4},
		ClockNs:         100,
	}
}

// Diffeq reconstructs example #3: the HAL second-order differential-
// equation solver (y” + 3xy' + 3y = 0) with 6 multiplications, 2
// subtractions, 2 additions and 1 comparison, evaluated under functional
// pipelining with initiation interval L = T/2.
func Diffeq() *Example {
	b := newBuilder("diffeq")
	b.in("x", "y", "u", "dx", "a", "three")
	b.op("m1", op.Mul, "u", "dx")      // u·dx
	b.op("m2", op.Mul, "three", "x")   // 3x
	b.op("m3", op.Mul, "three", "y")   // 3y
	b.op("m4", op.Mul, "m1", "m2")     // 3x·u·dx
	b.op("m5", op.Mul, "m3", "dx")     // 3y·dx
	b.op("m6", op.Mul, "u", "dx")      // u·dx for y-update (distinct unit op)
	b.op("sub1", op.Sub, "u", "m4")    // u − 3x·u·dx
	b.op("sub2", op.Sub, "sub1", "m5") // u' = u − 3x·u·dx − 3y·dx
	b.op("add1", op.Add, "x", "dx")    // x' = x + dx
	b.op("add2", op.Add, "y", "m6")    // y' = y + u·dx
	b.op("cmp", op.Lt, "add1", "a")    // x' < a
	return &Example{
		Num: 3, Name: "diffeq", Graph: b.g,
		Feature:         "F",
		CycleNote:       "1",
		TimeConstraints: []int{4, 6, 8},
		Latency:         func(cs int) int { return (cs + 1) / 2 },
	}
}

// ARLattice reconstructs example #4: the AR lattice filter, the
// canonical 28-operation benchmark of 16 multiplications and 12
// additions arranged in four lattice stages, with 2-cycle multipliers.
func ARLattice() *Example {
	b := newBuilder("ar-lattice")
	for i := 1; i <= 8; i++ {
		b.in(fmt.Sprintf("x%d", i), fmt.Sprintf("c%d", i), fmt.Sprintf("d%d", i))
	}
	// First multiply layer (8 lattice coefficient products) and its
	// butterfly additions.
	for i := 1; i <= 8; i++ {
		b.mul2(fmt.Sprintf("m%d", i), fmt.Sprintf("x%d", i), fmt.Sprintf("c%d", i))
	}
	for j := 1; j <= 4; j++ {
		b.op(fmt.Sprintf("a%d", j), op.Add,
			fmt.Sprintf("m%d", 2*j-1), fmt.Sprintf("m%d", 2*j))
	}
	// Second multiply layer: each butterfly sum drives two reflection
	// products, then the output adder tree with a feed-forward term.
	for j := 1; j <= 4; j++ {
		b.mul2(fmt.Sprintf("n%d", 2*j-1), fmt.Sprintf("a%d", j), fmt.Sprintf("d%d", 2*j-1))
		b.mul2(fmt.Sprintf("n%d", 2*j), fmt.Sprintf("a%d", j), fmt.Sprintf("d%d", 2*j))
	}
	for j := 1; j <= 4; j++ {
		b.op(fmt.Sprintf("b%d", j), op.Add,
			fmt.Sprintf("n%d", 2*j-1), fmt.Sprintf("n%d", 2*j))
	}
	b.op("e1", op.Add, "b1", "b2")
	b.op("e2", op.Add, "b3", "b4")
	b.op("f1", op.Add, "e1", "e2")
	b.op("g1", op.Add, "a1", "a2") // feed-forward output tap
	return &Example{
		Num: 4, Name: "ar-lattice", Graph: b.g,
		CycleNote:       "2",
		TimeConstraints: []int{8, 9, 13},
	}
}

// Bandpass reconstructs example #5: a band-pass filter section — an
// 8-tap FIR-style multiply/accumulate tree with two difference stages —
// with 2-cycle multipliers, evaluated plain and with 2-stage pipelined
// multipliers (structural pipelining).
func Bandpass() *Example {
	b := newBuilder("bandpass")
	for i := 1; i <= 8; i++ {
		b.in(fmt.Sprintf("x%d", i), fmt.Sprintf("h%d", i))
	}
	for i := 1; i <= 8; i++ {
		b.mul2(fmt.Sprintf("p%d", i), fmt.Sprintf("x%d", i), fmt.Sprintf("h%d", i))
	}
	// Adder tree.
	b.op("t1", op.Add, "p1", "p2")
	b.op("t2", op.Add, "p3", "p4")
	b.op("t3", op.Add, "p5", "p6")
	b.op("t4", op.Add, "p7", "p8")
	b.op("t5", op.Add, "t1", "t2")
	b.op("t6", op.Add, "t3", "t4")
	// Band-pass combination: low band minus high band, then DC removal.
	b.op("d1", op.Sub, "t5", "t6")
	b.op("d2", op.Sub, "d1", "t4")
	return &Example{
		Num: 5, Name: "bandpass", Graph: b.g,
		Feature:         "S",
		CycleNote:       "2",
		TimeConstraints: []int{9, 10, 13},
		PipelinedOps:    []string{"*"},
	}
}

// EWF is the synthetic fifth-order elliptic-wave-filter stand-in for
// example #6 (see the package comment and DESIGN.md §3): a 17-addition
// spine (the critical path) with 8 two-cycle constant multiplications
// tapping it, plus side adder chains, totaling 26 additions and 8
// multiplications. Three multiplications share the tight window right
// after the spine head, reproducing the published trend: 3 multipliers
// at T=17, 2 at T=19, 1 at T=21, and one fewer at T=17 when multipliers
// are 2-stage pipelined.
func EWF() *Example {
	b := newBuilder("ewf")
	b.in("c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8")
	b.in("in0", "in1", "in5", "in6", "in7", "in8", "in9", "in10", "in11")
	for i := 2; i <= 17; i++ {
		b.in(fmt.Sprintf("k%d", i)) // fresh spine operands
	}
	// Spine head.
	b.op("s1", op.Add, "in0", "in1")
	// Three multiplications tap s1 and merge through a balanced two-level
	// adder (y, yy at step 5; z at 6) that re-enters the spine at s7, so
	// each multiplication's start window at T=17 is exactly {2,3}: any
	// two of them overlap on a non-pipelined multiplier, forcing three
	// units, while distinct starts fit two pipelined units.
	b.mul2("m1", "s1", "c1")
	b.mul2("m2", "s1", "c2")
	b.mul2("m3", "s1", "c3")
	b.op("y", op.Add, "m1", "m2")
	b.op("yy", op.Add, "m3", "in5")
	b.op("z", op.Add, "y", "yy")
	// Side chains feeding later taps.
	b.op("w1", op.Add, "in5", "in6")
	b.op("w2", op.Add, "w1", "in7")
	b.op("w3", op.Add, "w2", "in8")
	b.op("w4", op.Add, "in9", "in10")
	b.mul2("m5", "w3", "c5")
	b.mul2("m7", "w4", "c7")
	// Spine s2..s17; taps re-enter at fixed points.
	feed := map[int]string{7: "z", 9: "m4", 11: "m5", 13: "v1", 15: "m7", 17: "v2"}
	for i := 2; i <= 17; i++ {
		prev := fmt.Sprintf("s%d", i-1)
		name := fmt.Sprintf("s%d", i)
		if i == 5 {
			b.mul2("m4", "s4", "c4") // tap s4 -> s9
		}
		if i == 10 {
			b.mul2("m6", "s9", "c6") // tap s9 -> v1 -> s13
			b.op("v1", op.Add, "m6", "k10")
		}
		if i == 14 {
			b.mul2("m8", "s13", "c8") // tap s13 -> v2 -> s17
			b.op("v2", op.Add, "m8", "k14")
		}
		arg := feed[i]
		if arg == "" {
			arg = fmt.Sprintf("k%d", i)
		}
		b.op(name, op.Add, prev, arg)
	}
	return &Example{
		Num: 6, Name: "ewf", Graph: b.g,
		Feature:         "S",
		CycleNote:       "2",
		TimeConstraints: []int{17, 19, 21},
		PipelinedOps:    []string{"*"},
	}
}
