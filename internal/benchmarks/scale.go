package benchmarks

import (
	"fmt"

	"repro/internal/dfg"
	"repro/internal/gen"
)

// ScaleExample is one rung of the scale ladder: a large generated graph
// with the synthesis parameters the scale benchmarks run it under. These
// are not paper benchmarks — they exercise the engine's asymptotics, not
// Table 1/2 numbers — so they live beside, not inside, All().
type ScaleExample struct {
	Name  string
	Graph func() *dfg.Graph // lazy: a 100k-node graph is built only when its rung runs
	Nodes int

	// Slack is added to the critical path to form the time constraint;
	// a little slack keeps the grids narrow while leaving the scheduler
	// real choices.
	Slack int
}

// Scale returns the ladder of generated graphs the scale benchmarks and
// the nightly CI job run, smallest first. Every rung is deterministic
// (fixed seed), so BENCH_scale.json numbers are comparable across runs.
func Scale() []*ScaleExample {
	mk := func(name string, nodes int, build func() (*dfg.Graph, error)) *ScaleExample {
		return &ScaleExample{
			Name:  name,
			Nodes: nodes,
			Slack: 4,
			Graph: func() *dfg.Graph {
				g, err := build()
				if err != nil {
					// Same contract as must(): the ladder is static data
					// covered by tests, so a failure is a programming error.
					panic(fmt.Sprintf("benchmarks: scale rung %s: %v", name, err))
				}
				return g
			},
		}
	}
	return []*ScaleExample{
		mk("rand1k", 1_000, func() (*dfg.Graph, error) {
			return gen.Generate(gen.Config{Nodes: 1_000, Seed: 1, MulCycles: 2})
		}),
		mk("fir2k", 2_047, func() (*dfg.Graph, error) {
			return gen.FIR(1024, 2)
		}),
		mk("rand5k", 5_000, func() (*dfg.Graph, error) {
			return gen.Generate(gen.Config{Nodes: 5_000, Seed: 2, MulCycles: 2})
		}),
		mk("matmul20", 15_600, func() (*dfg.Graph, error) {
			return gen.MatMul(20, 2)
		}),
		mk("rand10k", 10_000, func() (*dfg.Graph, error) {
			return gen.Generate(gen.Config{Nodes: 10_000, Seed: 3, MulCycles: 2})
		}),
		mk("rand50k", 50_000, func() (*dfg.Graph, error) {
			return gen.Generate(gen.Config{Nodes: 50_000, Seed: 4, MulCycles: 2})
		}),
		mk("rand100k", 100_000, func() (*dfg.Graph, error) {
			return gen.Generate(gen.Config{Nodes: 100_000, Seed: 5, MulCycles: 2})
		}),
	}
}
