package benchmarks

import (
	"testing"

	"repro/internal/op"
)

func TestExtendedValid(t *testing.T) {
	exs := Extended()
	if len(exs) != 3 {
		t.Fatalf("len = %d", len(exs))
	}
	for _, ex := range exs {
		if err := ex.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", ex.Name, err)
		}
		for _, n := range ex.Graph.Nodes() {
			if n.Op == op.Mul && n.Cycles != 2 {
				t.Errorf("%s: mul %q not 2-cycle", ex.Name, n.Name)
			}
		}
		cp := ex.Graph.CriticalPathCycles()
		if cp > ex.TimeConstraints[0] {
			t.Errorf("%s: critical path %d exceeds first T %d", ex.Name, cp, ex.TimeConstraints[0])
		}
	}
}

func TestFIR16Signature(t *testing.T) {
	ex := FIR16()
	c := map[op.Kind]int{}
	for _, n := range ex.Graph.Nodes() {
		c[n.Op]++
	}
	if c[op.Mul] != 16 || c[op.Add] != 15 {
		t.Errorf("fir16 counts = %v, want 16*/15+", c)
	}
	if got := ex.Graph.CriticalPathCycles(); got != 6 {
		t.Errorf("fir16 critical path = %d, want 6 (2-cycle mul + 4 add levels)", got)
	}
}

func TestIIRBiquadSemantics(t *testing.T) {
	ex := IIRBiquad()
	vals, err := ex.Graph.Eval(map[string]int64{
		"x": 2, "x1": 3, "x2": 4, "y1": 5, "y2": 6,
		"b0": 1, "b1": 2, "b2": 3, "a1": 4, "a2": 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2*1 + 3*2 + 4*3 - 5*4 - 6*5)
	if vals["y"] != want {
		t.Errorf("y = %d, want %d", vals["y"], want)
	}
}

func TestMatVec4Semantics(t *testing.T) {
	ex := MatVec4()
	in := map[string]int64{"v0": 1, "v1": 2, "v2": 3, "v3": 4}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			in[matName(i, j)] = int64(i*4 + j)
		}
	}
	vals, err := ex.Graph.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := int64(0)
		for j := 0; j < 4; j++ {
			want += in[matName(i, j)] * in[vecName(j)]
		}
		got := vals[rowName(i)]
		if got != want {
			t.Errorf("r%d = %d, want %d", i, got, want)
		}
	}
}

func matName(i, j int) string { return "m" + string(rune('0'+i)) + string(rune('0'+j)) }
func vecName(j int) string    { return "v" + string(rune('0'+j)) }
func rowName(i int) string    { return "r" + string(rune('0'+i)) }
