package benchmarks

import (
	"fmt"

	"repro/internal/op"
)

// Extended returns additional DSP kernels beyond the paper's six
// examples, used by the stress tests and available to library users:
// a 16-tap FIR filter, an IIR biquad section, and a 4×4 matrix-vector
// product. All use 2-cycle multipliers.
func Extended() []*Example {
	return []*Example{FIR16(), IIRBiquad(), MatVec4()}
}

// FIR16 is a 16-tap finite-impulse-response filter: 16 two-cycle
// coefficient multiplications feeding a binary adder tree (15 adds).
func FIR16() *Example {
	b := newBuilder("fir16")
	for i := 0; i < 16; i++ {
		b.in(fmt.Sprintf("x%d", i), fmt.Sprintf("h%d", i))
		b.mul2(fmt.Sprintf("p%d", i), fmt.Sprintf("x%d", i), fmt.Sprintf("h%d", i))
	}
	level := make([]string, 16)
	for i := range level {
		level[i] = fmt.Sprintf("p%d", i)
	}
	stage := 0
	for len(level) > 1 {
		var next []string
		for i := 0; i+1 < len(level); i += 2 {
			name := fmt.Sprintf("a%d_%d", stage, i/2)
			b.op(name, op.Add, level[i], level[i+1])
			next = append(next, name)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		stage++
	}
	return &Example{
		Num: 7, Name: "fir16", Graph: b.g,
		CycleNote:       "2",
		TimeConstraints: []int{6, 8, 12},
	}
}

// IIRBiquad is a direct-form-I biquad section:
// y = b0·x + b1·x1 + b2·x2 − a1·y1 − a2·y2.
func IIRBiquad() *Example {
	b := newBuilder("iir-biquad")
	b.in("x", "x1", "x2", "y1", "y2", "b0", "b1", "b2", "a1", "a2")
	b.mul2("m0", "x", "b0")
	b.mul2("m1", "x1", "b1")
	b.mul2("m2", "x2", "b2")
	b.mul2("m3", "y1", "a1")
	b.mul2("m4", "y2", "a2")
	b.op("s0", op.Add, "m0", "m1")
	b.op("s1", op.Add, "s0", "m2")
	b.op("s2", op.Sub, "s1", "m3")
	b.op("y", op.Sub, "s2", "m4")
	return &Example{
		Num: 8, Name: "iir-biquad", Graph: b.g,
		CycleNote:       "2",
		TimeConstraints: []int{6, 8, 12},
	}
}

// MatVec4 is a 4×4 matrix-vector product: 16 two-cycle multiplications
// and 12 additions in four independent dot-product rows.
func MatVec4() *Example {
	b := newBuilder("matvec4")
	for j := 0; j < 4; j++ {
		b.in(fmt.Sprintf("v%d", j))
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			b.in(fmt.Sprintf("m%d%d", i, j))
			b.mul2(fmt.Sprintf("p%d%d", i, j), fmt.Sprintf("m%d%d", i, j), fmt.Sprintf("v%d", j))
		}
		b.op(fmt.Sprintf("s%d0", i), op.Add, fmt.Sprintf("p%d0", i), fmt.Sprintf("p%d1", i))
		b.op(fmt.Sprintf("s%d1", i), op.Add, fmt.Sprintf("p%d2", i), fmt.Sprintf("p%d3", i))
		b.op(fmt.Sprintf("r%d", i), op.Add, fmt.Sprintf("s%d0", i), fmt.Sprintf("s%d1", i))
	}
	return &Example{
		Num: 9, Name: "matvec4", Graph: b.g,
		CycleNote:       "2",
		TimeConstraints: []int{4, 6, 10},
	}
}
