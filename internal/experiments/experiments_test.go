package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/benchmarks"
	"repro/internal/library"
)

func TestFuNotation(t *testing.T) {
	cases := []struct {
		in   map[string]int
		want string
	}{
		{map[string]int{"*": 2, "+": 3}, "**,+++"},
		{map[string]int{"+": 1}, "+"},
		{map[string]int{"<": 1, "*": 1, "&": 2}, "*,<,&&"},
		{map[string]int{}, ""},
		{map[string]int{"loop:x": 1, "+": 1}, "+,loop:x"},
	}
	for _, c := range cases {
		if got := fuNotation(c.in); got != c.want {
			t.Errorf("fuNotation(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTable1(t *testing.T) {
	tbl, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// 6 examples: #1 has 2 constraints, #2 has 1, #3-#6 have 3 each.
	if tbl.Len() != 2+1+3+3+3+3 {
		t.Errorf("rows = %d", tbl.Len())
	}
	out := tbl.String()
	// The EWF trend rows must show the published multiplier counts.
	if !strings.Contains(out, "***,") {
		t.Errorf("EWF T=17 row missing 3 multipliers:\n%s", out)
	}
	for _, want := range []string{"#1 facet", "#6 ewf", "T=21", "Feat"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	tbl, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 12 { // 6 examples x 2 styles
		t.Errorf("rows = %d, want 12", tbl.Len())
	}
	out := tbl.String()
	for _, want := range []string{"Cost", "REG", "MUXin", "#1 facet"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestStyleOverheadShape(t *testing.T) {
	tbl, err := StyleOverhead()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	// §6 shape: overheads are bounded; parse each percentage and check
	// the band (style 2 can occasionally tie but must not be wildly off).
	for _, line := range strings.Split(out, "\n") {
		idx := strings.LastIndex(line, "%")
		if idx < 0 || !strings.Contains(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		pct := strings.TrimSuffix(fields[len(fields)-1], "%")
		v, err := strconv.ParseFloat(strings.TrimPrefix(pct, "+"), 64)
		if err != nil {
			t.Fatalf("bad percentage in %q", line)
		}
		if v < -5 || v > 60 {
			t.Errorf("style overhead %v%% outside plausible band: %s", v, line)
		}
	}
}

func TestCompare(t *testing.T) {
	tbl, err := Compare()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() == 0 {
		t.Fatal("no comparison rows")
	}
	out := tbl.String()
	if !strings.Contains(out, "FDS") {
		t.Errorf("comparison table malformed:\n%s", out)
	}
}

func TestNaiveAllocate(t *testing.T) {
	ex := benchmarks.Diffeq()
	s, err := baseline.ForceDirected(ex.Graph, 4)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NaiveAllocate(s, library.NCRLike())
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.Validate(); err != nil {
		t.Fatal(err)
	}
	c := dp.Cost()
	if c.Total <= 0 || c.NumALUs < 5 {
		t.Errorf("naive cost = %+v", c)
	}
}

func TestRuntime(t *testing.T) {
	tbl, err := Runtime()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 6 {
		t.Errorf("rows = %d", tbl.Len())
	}
}

func TestFigures(t *testing.T) {
	f1 := Figure1()
	for _, want := range []string{"Oip", "Oin", "V = x + n·y"} {
		if !strings.Contains(f1, want) {
			t.Errorf("Figure 1 missing %q:\n%s", want, f1)
		}
	}
	f2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MF = PF", "legend", "r*"} {
		if !strings.Contains(f2, want) {
			t.Errorf("Figure 2 missing %q:\n%s", want, f2)
		}
	}
}

func TestAblations(t *testing.T) {
	if tbl, err := AblationLiapunov(); err != nil || tbl.Len() == 0 {
		t.Errorf("AblationLiapunov: %v", err)
	}
	if tbl, err := AblationWeights(); err != nil || tbl.Len() != 6 {
		t.Errorf("AblationWeights: %v", err)
	}
	tbl, err := AblationRedundantFrame()
	if err != nil || tbl.Len() == 0 {
		t.Fatalf("AblationRedundantFrame: %v", err)
	}
}

func TestPhases(t *testing.T) {
	tbl, err := Phases()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 5 {
		t.Errorf("rows = %d, want 5 (diffeq skipped: pipelined)", tbl.Len())
	}
	out := tbl.String()
	if !strings.Contains(out, "MFS→alloc") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestInterconnectTable(t *testing.T) {
	tbl, err := Interconnect()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 6 {
		t.Errorf("rows = %d, want 6", tbl.Len())
	}
}
