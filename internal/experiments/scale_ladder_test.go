//go:build scale

package experiments

import (
	"context"
	"testing"
)

// TestFullScaleLadder runs the entire ladder — 100k-node rung included —
// and is therefore gated behind `go test -tags scale`: it takes tens of
// seconds and allocates gigabytes, which has no place in the tier-1
// suite. The nightly CI scale job runs it alongside `hlsbench -scale
// -compare`.
func TestFullScaleLadder(t *testing.T) {
	b, err := MeasureScaleCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rungs) != 7 {
		t.Fatalf("rungs = %d, want the full 7-rung ladder", len(b.Rungs))
	}
	for _, r := range b.Rungs {
		t.Logf("%-10s %8d nodes  cs %4d  %10.1f ms  %8.0f ns/node  %8.1f MB alloc  %7.1f MB heap",
			r.Name, r.Nodes, r.CS, r.WallMs, r.NsPerNode, r.AllocMB, r.HeapPeakMB)
		if r.WallMs <= 0 || r.NsPerNode <= 0 {
			t.Errorf("%s: implausible timing %+v", r.Name, r)
		}
	}
	// The issue's acceptance bars: 10k nodes in single-digit seconds,
	// 100k completes at all. Generous multiples of the measured numbers
	// (~0.5 s and ~25 s locally) so only an asymptotic regression —
	// not machine noise — can trip them.
	for _, r := range b.Rungs {
		switch r.Name {
		case "rand10k":
			if r.WallMs > 10_000 {
				t.Errorf("rand10k took %.0f ms, want single-digit seconds", r.WallMs)
			}
		case "rand100k":
			if r.WallMs > 300_000 {
				t.Errorf("rand100k took %.0f ms", r.WallMs)
			}
		}
	}
	for _, p := range b.Incremental {
		t.Logf("%-10s %8d nodes  fresh %10.1f ms  incremental %8.1f ms  %5.1fx  identical=%v",
			p.Name, p.Nodes, p.FreshMs, p.IncrementalMs, p.Speedup, p.Identical)
		if !p.Identical {
			t.Errorf("%s: incremental result diverged from from-scratch", p.Name)
		}
	}
}
