package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMeasureServeSmallFleet runs the full harness with a small fleet —
// the identical code path hlsbench -serve takes, scaled so the test
// stays fast. The correctness verdicts (hit rate, byte identity,
// batching) must hold at any fleet size.
func TestMeasureServeSmallFleet(t *testing.T) {
	b, err := measureServe(context.Background(), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.SchemaVersion != 1 {
		t.Errorf("schema version %d, want 1", b.SchemaVersion)
	}
	if b.Clients != 8 || b.Requests != 16 {
		t.Errorf("fleet shape %d x %d, want 8 clients / 16 requests", b.Clients, b.Requests)
	}
	if b.Designs == 0 {
		t.Error("no designs warmed")
	}
	if b.HitRate != 1 {
		t.Errorf("hit rate %v, want 1.0 — replayed requests must all hit", b.HitRate)
	}
	if !b.ByteIdentical {
		t.Error("replayed responses not byte-identical to the warm bodies")
	}
	if b.SweepBatchedReqs == 0 || b.SweepBatches >= b.SweepBatchedReqs {
		t.Errorf("sweep burst: %d requests in %d batches, want coalescing", b.SweepBatchedReqs, b.SweepBatches)
	}
	if b.WarmMs <= 0 || b.ReplayMs <= 0 || b.P99Ms < b.P50Ms {
		t.Errorf("implausible timings: warm %v replay %v p50 %v p99 %v", b.WarmMs, b.ReplayMs, b.P50Ms, b.P99Ms)
	}
}

func TestMeasureServeCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := measureServe(ctx, 2, 1); err == nil {
		t.Error("cancelled measurement returned nil error")
	}
}

func TestLoadServeBaseline(t *testing.T) {
	dir := t.TempDir()

	if _, err := LoadServeBaseline(filepath.Join(dir, "missing.json")); err == nil ||
		!strings.Contains(err.Error(), "hlsbench -serve") {
		t.Errorf("missing file: err = %v, want regenerate hint", err)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema_version": 99}`), 0o644)
	if _, err := LoadServeBaseline(bad); err == nil ||
		!strings.Contains(err.Error(), "schema version 99") {
		t.Errorf("bad schema: err = %v, want version complaint", err)
	}

	good := filepath.Join(dir, "good.json")
	data, _ := json.Marshal(&ServeBaseline{SchemaVersion: 1, Clients: 3, HitRate: 1})
	os.WriteFile(good, data, 0o644)
	b, err := LoadServeBaseline(good)
	if err != nil {
		t.Fatal(err)
	}
	if b.Clients != 3 || b.HitRate != 1 {
		t.Errorf("round trip lost fields: %+v", b)
	}
}

func TestCompareServe(t *testing.T) {
	base := &ServeBaseline{
		WarmMs: 100, ReplayMs: 1000, P50Ms: 2, P99Ms: 10,
		HitRate: 1, ByteIdentical: true,
		SweepBatches: 3, SweepBatchedReqs: 16,
	}
	ok := &ServeBaseline{
		WarmMs: 150, ReplayMs: 2000, P50Ms: 4, P99Ms: 20,
		HitRate: 1, ByteIdentical: true,
		SweepBatches: 4, SweepBatchedReqs: 16,
	}
	if regs := CompareServe(base, ok, 3); len(regs) != 0 {
		t.Errorf("within-tolerance run flagged: %v", regs)
	}

	slow := &ServeBaseline{
		WarmMs: 100, ReplayMs: 5000, P50Ms: 2, P99Ms: 10,
		HitRate: 1, ByteIdentical: true,
		SweepBatches: 3, SweepBatchedReqs: 16,
	}
	regs := CompareServe(base, slow, 3)
	if len(regs) != 1 || regs[0].Name != "serve/replay" {
		t.Errorf("slow replay: regs = %v, want serve/replay alone", regs)
	}

	broken := &ServeBaseline{
		WarmMs: 100, ReplayMs: 1000, P50Ms: 2, P99Ms: 10,
		HitRate: 0.5, ByteIdentical: false,
		SweepBatches: 16, SweepBatchedReqs: 16,
	}
	regs = CompareServe(base, broken, 3)
	names := make(map[string]bool, len(regs))
	for _, r := range regs {
		names[r.Name] = true
		if r.String() == "" {
			t.Errorf("%s: empty String()", r.Name)
		}
	}
	for _, want := range []string{"serve/hit_rate", "serve/byte_identical", "serve/sweep_batching"} {
		if !names[want] {
			t.Errorf("broken run: missing regression %s (got %v)", want, regs)
		}
	}
}

func TestServeDeltas(t *testing.T) {
	base := &ServeBaseline{WarmMs: 10, ReplayMs: 100, P50Ms: 1, P99Ms: 5}
	fresh := &ServeBaseline{WarmMs: 20, ReplayMs: 150, P50Ms: 2, P99Ms: 10}
	ds := ServeDeltas(base, fresh)
	if len(ds) != 4 {
		t.Fatalf("%d deltas, want 4", len(ds))
	}
	if ds[0].Name != "serve/warm" || ds[0].OldMs != 10 || ds[0].NewMs != 20 {
		t.Errorf("warm delta = %+v", ds[0])
	}
	if ds[1].Factor() != 1.5 {
		t.Errorf("replay factor = %v, want 1.5", ds[1].Factor())
	}
}
