package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/dfgio"
	"repro/internal/serve"
)

// ServeBaseline is the machine-readable daemon snapshot `hlsbench
// -serve` writes to BENCH_serve.json: a replay load test against an
// in-process hlsd server. The workload warms every distinct request
// once (all cache misses), then replays the same requests from Clients
// concurrent clients — the steady state a synthesis service sees, where
// almost everything is a cache hit. The snapshot pins the hit-path
// latency percentiles, the hit rate, and the byte-identity guarantee
// (hit responses must be the exact bytes the miss produced), so a cache
// regression shows up in the baseline itself, like Identical does for
// the parallel sweep in BENCH_sweep.json.
type ServeBaseline struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`

	// Clients is the number of concurrent replay clients; Requests is
	// the total request count they issued; Designs is the number of
	// distinct cache entries the warm phase filled.
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	Designs  int `json:"designs"`

	// WarmMs is the sequential cold fill (every request a miss, real
	// synthesis); ReplayMs is the concurrent replay wall time.
	WarmMs   float64 `json:"warm_ms"`
	ReplayMs float64 `json:"replay_ms"`

	// P50Ms and P99Ms are client-observed replay latencies; ThroughputRPS
	// is replay requests per second across the whole fleet.
	P50Ms         float64 `json:"latency_p50_ms"`
	P99Ms         float64 `json:"latency_p99_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// HitRate is the fraction of replay requests answered from the
	// cache (X-Hlsd-Cache: hit). Every replay request repeats a warmed
	// one, so anything below 1.0 means the cache dropped entries it had
	// room for.
	HitRate float64 `json:"hit_rate"`

	// ByteIdentical records that every replayed response body matched
	// the warm-phase bytes for the same request — the guarantee that a
	// hit is served without re-synthesis and without drift.
	ByteIdentical bool `json:"byte_identical"`

	// SweepBatches and SweepBatchedReqs record the /sweep coalescing a
	// concurrent burst achieved: BatchedReqs requests were carried by
	// Batches SweepGraphsCtx fan-outs (fewer batches than requests =
	// coalescing worked).
	SweepBatches     uint64 `json:"sweep_batches"`
	SweepBatchedReqs uint64 `json:"sweep_batched_requests"`
}

// Replay fleet shape: serveClients concurrent clients each issuing
// serveRequestsPerClient requests round-robin over the warmed workload,
// and a serveSweepBurst-wide concurrent /sweep wave to exercise the
// batcher. The fleet is sized to stress admission and the cache hot
// path, not the synthesis engine — replay requests are hits.
const (
	serveClients           = 1000
	serveRequestsPerClient = 4
	serveSweepBurst        = 4 // concurrent duplicates per sweep graph
	serveSweepHi           = 8 // shared range hi; covers cp <= 8 graphs
)

// serveRequest is one replayable unit: a pre-marshalled request body
// and the endpoint it goes to.
type serveRequest struct {
	path string
	body []byte
}

// serveWorkload builds the distinct request set: every benchmark
// example synthesized at its critical path and at two relaxed
// schedules (cp, cp+1, cp+2 — always feasible, unlike the paper's T
// values, which can undershoot a graph's cycle-accurate critical
// path). Each (graph, cs) pair is one cache entry.
func serveWorkload() ([]serveRequest, error) {
	var reqs []serveRequest
	for _, ex := range benchmarks.All() {
		gj, err := dfgio.EncodeGraph(ex.Graph)
		if err != nil {
			return nil, err
		}
		cp := ex.Graph.CriticalPathCycles()
		for _, cs := range []int{cp, cp + 1, cp + 2} {
			body, err := json.Marshal(&serve.SynthesizeRequest{
				Graph:  gj,
				Config: serve.ConfigJSON{CS: cs},
			})
			if err != nil {
				return nil, err
			}
			reqs = append(reqs, serveRequest{path: "/synthesize", body: body})
		}
	}
	return reqs, nil
}

// serveSweepWave builds the concurrent /sweep burst: every example
// whose critical path fits the shared [1, serveSweepHi] range, each
// duplicated serveSweepBurst times so the batcher sees a real burst of
// coalescable work.
func serveSweepWave() ([]serveRequest, error) {
	var reqs []serveRequest
	for _, ex := range benchmarks.All() {
		if ex.Graph.CriticalPathCycles() > serveSweepHi {
			continue
		}
		gj, err := dfgio.EncodeGraph(ex.Graph)
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(&serve.SweepRequest{
			Graph: gj,
			CsLo:  1,
			CsHi:  serveSweepHi,
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < serveSweepBurst; i++ {
			reqs = append(reqs, serveRequest{path: "/sweep", body: body})
		}
	}
	return reqs, nil
}

// MeasureServe runs the replay load test against a fresh in-process
// daemon and returns the snapshot.
func MeasureServe() (*ServeBaseline, error) {
	return MeasureServeCtx(context.Background())
}

// MeasureServeCtx is MeasureServe with cancellation: every issued
// request carries ctx, so a cancelled measurement unwinds promptly.
func MeasureServeCtx(ctx context.Context) (*ServeBaseline, error) {
	return measureServe(ctx, serveClients, serveRequestsPerClient)
}

// measureServe is the harness body with the fleet shape as parameters,
// so tests can run a small fleet through the identical code path.
func measureServe(ctx context.Context, clients, perClient int) (*ServeBaseline, error) {
	srv := serve.New(serve.Options{
		CacheEntries: 4096,
		CacheBytes:   256 << 20,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One shared transport, enough idle connections that the fleet
	// reuses sockets instead of churning through ephemeral ports.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	defer client.CloseIdleConnections()

	work, err := serveWorkload()
	if err != nil {
		return nil, err
	}

	// Warm phase: every distinct request once, sequentially. All misses,
	// all real synthesis; the recorded bodies are the byte-identity
	// reference for the replay.
	warm := make([][]byte, len(work))
	warmStart := time.Now()
	for i, rq := range work {
		body, _, err := serveDo(ctx, client, ts.URL, rq)
		if err != nil {
			return nil, fmt.Errorf("warm %s #%d: %w", rq.path, i, err)
		}
		warm[i] = body
	}
	warmMs := float64(time.Since(warmStart)) / float64(time.Millisecond)

	// Sweep burst: concurrent coalescable /sweep requests, before the
	// replay so the burst is cold and actually batches.
	wave, err := serveSweepWave()
	if err != nil {
		return nil, err
	}
	if err := serveBurst(ctx, client, ts.URL, wave); err != nil {
		return nil, err
	}

	// Replay phase: the concurrent fleet, round-robin over the warmed
	// requests. Each client records its own latencies and verdicts;
	// merge afterwards.
	type clientResult struct {
		lat       []float64
		hits      int
		identical bool
		err       error
	}
	results := make([]clientResult, clients)
	var wg sync.WaitGroup
	replayStart := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := clientResult{identical: true}
			for r := 0; r < perClient; r++ {
				i := (c*perClient + r) % len(work)
				start := time.Now()
				body, hit, err := serveDo(ctx, client, ts.URL, work[i])
				if err != nil {
					res.err = err
					break
				}
				res.lat = append(res.lat, float64(time.Since(start))/float64(time.Millisecond))
				if hit {
					res.hits++
				}
				if !bytes.Equal(body, warm[i]) {
					res.identical = false
				}
			}
			results[c] = res
		}(c)
	}
	wg.Wait()
	replayMs := float64(time.Since(replayStart)) / float64(time.Millisecond)

	var lat []float64
	hits, identical := 0, true
	for _, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("replay: %w", res.err)
		}
		lat = append(lat, res.lat...)
		hits += res.hits
		identical = identical && res.identical
	}
	sort.Float64s(lat)

	m := srv.Metrics()
	total := clients * perClient
	b := &ServeBaseline{
		SchemaVersion: 1,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Clients:       clients,
		Requests:      total,
		Designs:       len(work),
		WarmMs:        warmMs,
		ReplayMs:      replayMs,
		HitRate:       float64(hits) / float64(total),
		ByteIdentical: identical,

		SweepBatches:     m.Batches,
		SweepBatchedReqs: m.BatchedReqs,
	}
	if len(lat) > 0 {
		b.P50Ms = lat[len(lat)/2]
		i99 := int(0.99 * float64(len(lat)))
		if i99 >= len(lat) {
			i99 = len(lat) - 1
		}
		b.P99Ms = lat[i99]
	}
	if replayMs > 0 {
		b.ThroughputRPS = float64(total) / (replayMs / 1000)
	}
	return b, nil
}

// serveDo issues one request and returns the response body and the
// cache verdict. Non-200 statuses are errors carrying the body text.
func serveDo(ctx context.Context, client *http.Client, base string, rq serveRequest) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+rq.path, bytes.NewReader(rq.body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("%s: status %d: %s", rq.path, resp.StatusCode, buf.String())
	}
	return buf.Bytes(), resp.Header.Get("X-Hlsd-Cache") == "hit", nil
}

// serveBurst fires every request concurrently and waits for all of
// them; first error wins.
func serveBurst(ctx context.Context, client *http.Client, base string, reqs []serveRequest) error {
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, rq := range reqs {
		wg.Add(1)
		go func(i int, rq serveRequest) {
			defer wg.Done()
			_, _, errs[i] = serveDo(ctx, client, base, rq)
		}(i, rq)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("sweep burst: %w", err)
		}
	}
	return nil
}

// LoadServeBaseline reads a committed BENCH_serve.json.
func LoadServeBaseline(path string) (*ServeBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("no serve baseline at %s: run `hlsbench -serve -out %s` to regenerate", path, path)
		}
		return nil, err
	}
	var b ServeBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if b.SchemaVersion != 1 {
		return nil, fmt.Errorf("%s: schema version %d, want 1; regenerate with `hlsbench -serve -out %s`",
			path, b.SchemaVersion, path)
	}
	return &b, nil
}

// ServeDeltas pairs up the comparable wall-time measurements of two
// serve baselines, in report order.
func ServeDeltas(baseline, fresh *ServeBaseline) []Delta {
	return []Delta{
		{Name: "serve/warm", OldMs: baseline.WarmMs, NewMs: fresh.WarmMs},
		{Name: "serve/replay", OldMs: baseline.ReplayMs, NewMs: fresh.ReplayMs},
		{Name: "serve/p50", OldMs: baseline.P50Ms, NewMs: fresh.P50Ms},
		{Name: "serve/p99", OldMs: baseline.P99Ms, NewMs: fresh.P99Ms},
	}
}

// CompareServe checks a fresh load-test run against the committed
// baseline: every wall time within tolerance, hit rate no worse than
// the baseline's, replayed responses byte-identical, and the sweep
// burst still coalescing (fewer batches than batched requests). The
// non-timing checks are exact — they are correctness guarantees the
// load test happens to witness, not measurements with noise.
func CompareServe(baseline, fresh *ServeBaseline, tolerance float64) []PerfRegression {
	var regs []PerfRegression
	for _, d := range ServeDeltas(baseline, fresh) {
		if d.OldMs <= 0 {
			continue
		}
		if limit := d.OldMs * tolerance; d.NewMs > limit {
			regs = append(regs, PerfRegression{Name: d.Name, OldMs: d.OldMs, NewMs: d.NewMs, LimitMs: limit})
		}
	}
	if fresh.HitRate < baseline.HitRate {
		regs = append(regs, PerfRegression{Name: "serve/hit_rate",
			OldMs: baseline.HitRate, NewMs: fresh.HitRate, LimitMs: baseline.HitRate})
	}
	if !fresh.ByteIdentical {
		regs = append(regs, PerfRegression{Name: "serve/byte_identical"})
	}
	if fresh.SweepBatchedReqs > 0 && fresh.SweepBatches >= fresh.SweepBatchedReqs {
		regs = append(regs, PerfRegression{Name: "serve/sweep_batching",
			OldMs: float64(baseline.SweepBatches), NewMs: float64(fresh.SweepBatches)})
	}
	return regs
}
