package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/report"
)

// PerfBaseline is the machine-readable performance snapshot `hlsbench
// -json` writes to BENCH_sweep.json: wall time per evaluation table plus
// the sequential-vs-parallel sweep comparison. Later changes regress
// against these numbers, so the schema is versioned and additions must
// keep existing fields.
type PerfBaseline struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`

	// NoIndex records whether the run disabled the grid occupancy index
	// (`hlsbench -noindex`), so an A/B snapshot can never be mistaken for
	// the indexed baseline it is compared against.
	NoIndex bool `json:"noindex,omitempty"`

	// Tables is the wall time of one regeneration of each evaluation
	// table, in hlsbench's print order.
	Tables []TableTiming `json:"tables"`

	// Sweep is the sequential-vs-parallel design-space sweep comparison
	// on the diffeq example over its full cs range.
	Sweep SweepTiming `json:"sweep"`
}

// TableTiming is one table's regeneration time.
type TableTiming struct {
	Name   string  `json:"name"`
	Rows   int     `json:"rows"`
	WallMs float64 `json:"wall_ms"`
}

// SweepTiming compares the sequential and parallel sweep paths on one
// graph and records the throughput the pool achieves.
type SweepTiming struct {
	Graph                string  `json:"graph"`
	CSLo                 int     `json:"cs_lo"`
	CSHi                 int     `json:"cs_hi"`
	Points               int     `json:"points"`
	SequentialMs         float64 `json:"sequential_ms"`
	ParallelMs           float64 `json:"parallel_ms"`
	Speedup              float64 `json:"speedup"`
	ParallelPointsPerSec float64 `json:"parallel_points_per_sec"`

	// Identical records that the parallel sweep returned byte-identical
	// points and Pareto marks — the determinism guarantee, asserted at
	// measurement time so a regression shows up in the baseline itself.
	Identical bool `json:"identical_results"`
}

// perfSweepRange returns the sweep the baseline measures: diffeq from
// its critical path to critical path + 12, matching BenchmarkSweep and
// BenchmarkParallelSweep in bench_test.go.
func perfSweepRange() (*benchmarks.Example, int, int) {
	ex := benchmarks.Diffeq()
	cp := ex.Graph.CriticalPathCycles()
	return ex, cp, cp + 12
}

// MeasurePerf times every evaluation table regeneration and the
// sequential and parallel sweep paths (best of three runs each, to
// shave scheduler noise — a single run of a millisecond-scale table is
// noise-dominated and would flake the CI comparison), and returns the
// snapshot.
func MeasurePerf() (*PerfBaseline, error) {
	return MeasurePerfCtx(context.Background())
}

// MeasurePerfCtx is MeasurePerf with cancellation, observed by every
// table regeneration and every timed sweep repetition.
func MeasurePerfCtx(ctx context.Context) (*PerfBaseline, error) {
	p := &PerfBaseline{
		SchemaVersion: 1,
		GoVersion:     runtime.Version(),
		NoIndex:       grid.DisableIndex,
	}
	tables := []struct {
		name string
		fn   func(context.Context) (*report.Table, error)
	}{
		{"table1", Table1Ctx},
		{"table2", Table2Ctx},
		{"compare", CompareCtx},
		{"phases", PhasesCtx},
		{"interconnect", InterconnectCtx},
		{"style", StyleOverheadCtx},
		{"runtime", RuntimeCtx},
		{"ablation-liapunov", AblationLiapunovCtx},
		{"ablation-weights", AblationWeightsCtx},
		{"ablation-rf", AblationRedundantFrameCtx},
	}
	for _, tb := range tables {
		rows, best := 0, 0.0
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			t, err := tb.fn(ctx)
			if err != nil {
				return nil, fmt.Errorf("experiments: perf baseline: %s: %w", tb.name, err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			if rep == 0 || ms < best {
				best = ms
			}
			rows = t.Len()
		}
		p.Tables = append(p.Tables, TableTiming{Name: tb.name, Rows: rows, WallMs: best})
	}

	ex, lo, hi := perfSweepRange()
	seqPoints, seqMs, err := timeSweep(ctx, ex, core.Config{Parallelism: 1}, lo, hi)
	if err != nil {
		return nil, err
	}
	parPoints, parMs, err := timeSweep(ctx, ex, core.Config{}, lo, hi)
	if err != nil {
		return nil, err
	}
	p.Sweep = SweepTiming{
		Graph:                ex.Graph.Name,
		CSLo:                 lo,
		CSHi:                 hi,
		Points:               len(parPoints),
		SequentialMs:         seqMs,
		ParallelMs:           parMs,
		Speedup:              seqMs / parMs,
		ParallelPointsPerSec: float64(len(parPoints)) / (parMs / 1000),
		Identical:            reflect.DeepEqual(seqPoints, parPoints),
	}
	// Recorded after the timed work, not at construction: the snapshot
	// must state the parallelism the measurements actually ran under,
	// even if something resized GOMAXPROCS mid-run.
	p.GOMAXPROCS = runtime.GOMAXPROCS(0)
	return p, nil
}

// LoadPerfBaseline reads a BENCH_sweep.json snapshot written by
// `hlsbench -json`. Every failure names the path and says how to
// produce a good snapshot — this error is most often seen in CI logs by
// someone who didn't write the file, so it must carry its own context.
func LoadPerfBaseline(path string) (*PerfBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("experiments: perf baseline %s does not exist; run `hlsbench -json -out %s` to regenerate it", path, path)
		}
		return nil, fmt.Errorf("experiments: perf baseline: %w", err)
	}
	var p PerfBaseline
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("experiments: perf baseline %s is not valid JSON (%v); run `hlsbench -json -out %s` to regenerate it", path, err, path)
	}
	if p.SchemaVersion != 1 {
		return nil, fmt.Errorf("experiments: perf baseline %s: unsupported schema_version %d (this build reads version 1); run `hlsbench -json -out %s` to regenerate it", path, p.SchemaVersion, path)
	}
	return &p, nil
}

// PerfRegression is one measurement that exceeded the comparison budget.
type PerfRegression struct {
	Name    string  // table name, or "sweep/sequential", "sweep/parallel"
	OldMs   float64 // committed baseline
	NewMs   float64 // fresh measurement
	LimitMs float64 // OldMs × tolerance
}

func (r PerfRegression) String() string {
	if r.Name == "sweep/identical_results" {
		return "sweep/identical_results: parallel sweep no longer matches the sequential results"
	}
	if r.Name == "vet/identical_results" {
		return "vet/identical_results: parallel hlsvet output no longer matches the sequential run byte-for-byte"
	}
	if strings.HasSuffix(r.Name, "/identical_results") {
		return r.Name + ": incremental re-synthesis no longer matches the from-scratch result"
	}
	switch r.Name {
	case "serve/hit_rate":
		return fmt.Sprintf("serve/hit_rate: %.4f, baseline %.4f — replayed requests are re-synthesizing instead of hitting the cache", r.NewMs, r.OldMs)
	case "serve/byte_identical":
		return "serve/byte_identical: a cache hit returned different bytes than the miss that filled it"
	case "serve/sweep_batching":
		return fmt.Sprintf("serve/sweep_batching: %.0f batches for the burst (baseline %.0f) — concurrent sweeps no longer coalesce", r.NewMs, r.OldMs)
	}
	return fmt.Sprintf("%s: %.2f ms, baseline %.2f ms (limit %.2f ms)", r.Name, r.NewMs, r.OldMs, r.LimitMs)
}

// ComparePerf checks a fresh measurement against a committed baseline:
// every wall time may be at most tolerance times its baseline value.
// The deliberately loose factor (CI uses 3) absorbs shared-runner noise
// while still catching order-of-magnitude regressions — an accidental
// O(n²), a lost cache, a sweep gone sequential. Speedups never fail the
// check. Tables present on only one side are ignored (the set evolves);
// a fresh sweep that lost result determinism is reported as a
// regression of its own.
func ComparePerf(baseline, fresh *PerfBaseline, tolerance float64) []PerfRegression {
	var regs []PerfRegression
	check := func(name string, oldMs, newMs float64) {
		if oldMs <= 0 {
			return
		}
		if limit := oldMs * tolerance; newMs > limit {
			regs = append(regs, PerfRegression{Name: name, OldMs: oldMs, NewMs: newMs, LimitMs: limit})
		}
	}
	oldTables := make(map[string]TableTiming, len(baseline.Tables))
	for _, t := range baseline.Tables {
		oldTables[t.Name] = t
	}
	for _, t := range fresh.Tables {
		if old, ok := oldTables[t.Name]; ok {
			check(t.Name, old.WallMs, t.WallMs)
		}
	}
	check("sweep/sequential", baseline.Sweep.SequentialMs, fresh.Sweep.SequentialMs)
	check("sweep/parallel", baseline.Sweep.ParallelMs, fresh.Sweep.ParallelMs)
	if baseline.Sweep.Identical && !fresh.Sweep.Identical {
		regs = append(regs, PerfRegression{Name: "sweep/identical_results"})
	}
	return regs
}

func timeSweep(ctx context.Context, ex *benchmarks.Example, cfg core.Config, lo, hi int) ([]core.SweepPoint, float64, error) {
	var points []core.SweepPoint
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		p, err := core.SweepCtx(ctx, ex.Graph, cfg, lo, hi)
		if err != nil {
			return nil, 0, fmt.Errorf("experiments: perf baseline sweep: %w", err)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if rep == 0 || ms < best {
			best = ms
		}
		points = p
	}
	return points, best, nil
}
