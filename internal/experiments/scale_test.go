package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// measureSmallScale runs the cheapest possible ladder (the 1k rung and
// the 1k incremental point) once per test binary; the full ladder lives
// behind the `scale` build tag.
func measureSmallScale(t *testing.T) *ScaleBaseline {
	t.Helper()
	b, err := MeasureScaleCtx(context.Background(), 1_000)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMeasureScaleSmallLadder(t *testing.T) {
	b := measureSmallScale(t)
	if b.SchemaVersion != 1 || b.MaxNodes != 1_000 {
		t.Fatalf("header = %+v", b)
	}
	if len(b.Rungs) != 1 || b.Rungs[0].Name != "rand1k" {
		t.Fatalf("rungs = %+v, want just rand1k under the 1k cap", b.Rungs)
	}
	r := b.Rungs[0]
	if r.Nodes != 1_000 || r.CS <= 0 || r.WallMs <= 0 || r.NsPerNode <= 0 || r.AllocMB <= 0 {
		t.Errorf("implausible rung: %+v", r)
	}
	if len(b.Incremental) != 1 {
		t.Fatalf("incremental = %+v, want just inc1k", b.Incremental)
	}
	p := b.Incremental[0]
	if p.Name != "inc1k" || p.FreshMs <= 0 || p.IncrementalMs <= 0 {
		t.Errorf("implausible incremental point: %+v", p)
	}
	if !p.Identical {
		t.Error("incremental result diverged from the from-scratch run")
	}
}

func TestMeasureScaleCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MeasureScaleCtx(ctx, 1_000); err == nil {
		t.Error("pre-cancelled context accepted")
	}
}

func TestScaleBaselineRoundTrip(t *testing.T) {
	b := measureSmallScale(t)
	path := filepath.Join(t.TempDir(), "BENCH_scale.json")
	data := mustMarshal(t, b)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScaleBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rungs) != len(b.Rungs) || got.Rungs[0] != b.Rungs[0] {
		t.Errorf("round trip lost rungs: %+v vs %+v", got.Rungs, b.Rungs)
	}
	if len(got.Incremental) != len(b.Incremental) || got.Incremental[0] != b.Incremental[0] {
		t.Errorf("round trip lost incremental points: %+v vs %+v", got.Incremental, b.Incremental)
	}
}

func TestCompareScale(t *testing.T) {
	base := &ScaleBaseline{
		Rungs: []ScalePoint{{Name: "rand1k", WallMs: 100}, {Name: "rand5k", WallMs: 500}},
		Incremental: []IncrementalPoint{
			{Name: "inc1k", FreshMs: 100, IncrementalMs: 10, Identical: true},
		},
	}
	// Identical snapshot: no regressions at any tolerance.
	if regs := CompareScale(base, base, 1); len(regs) != 0 {
		t.Errorf("self-compare regressed: %v", regs)
	}
	// One rung 4x slower fails tolerance 3, passes 5; missing rungs are
	// ignored (a capped ladder compares against the full one).
	fresh := &ScaleBaseline{
		Rungs: []ScalePoint{{Name: "rand1k", WallMs: 400}},
		Incremental: []IncrementalPoint{
			{Name: "inc1k", FreshMs: 100, IncrementalMs: 10, Identical: true},
		},
	}
	regs := CompareScale(base, fresh, 3)
	if len(regs) != 1 || regs[0].Name != "rung/rand1k" {
		t.Fatalf("regs = %v, want rung/rand1k only", regs)
	}
	if s := regs[0].String(); !strings.Contains(s, "rand1k") || !strings.Contains(s, "400") {
		t.Errorf("regression string %q", s)
	}
	if regs := CompareScale(base, fresh, 5); len(regs) != 0 {
		t.Errorf("tolerance 5 still regressed: %v", regs)
	}
	// Lost result identity is a regression regardless of timing.
	fresh.Rungs[0].WallMs = 100
	fresh.Incremental[0].Identical = false
	regs = CompareScale(base, fresh, 3)
	if len(regs) != 1 || regs[0].Name != "inc1k/identical_results" {
		t.Fatalf("regs = %v, want inc1k/identical_results", regs)
	}
	if s := regs[0].String(); !strings.Contains(s, "no longer matches") {
		t.Errorf("regression string %q", s)
	}
}

func TestScaleDeltas(t *testing.T) {
	base := &ScaleBaseline{
		Rungs:       []ScalePoint{{Name: "rand1k", WallMs: 100}},
		Incremental: []IncrementalPoint{{Name: "inc1k", FreshMs: 50, IncrementalMs: 5}},
	}
	fresh := &ScaleBaseline{
		Rungs:       []ScalePoint{{Name: "rand1k", WallMs: 150}, {Name: "rand5k", WallMs: 500}},
		Incremental: []IncrementalPoint{{Name: "inc1k", FreshMs: 60, IncrementalMs: 6}},
	}
	ds := ScaleDeltas(base, fresh)
	want := map[string][2]float64{
		"rung/rand1k":       {100, 150},
		"inc1k/fresh":       {50, 60},
		"inc1k/incremental": {5, 6},
	}
	if len(ds) != len(want) {
		t.Fatalf("deltas = %+v, want %d entries", ds, len(want))
	}
	for _, d := range ds {
		w, ok := want[d.Name]
		if !ok || d.OldMs != w[0] || d.NewMs != w[1] {
			t.Errorf("delta %+v, want %v", d, w)
		}
	}
	if f := (Delta{OldMs: 100, NewMs: 150}).Factor(); f != 1.5 {
		t.Errorf("factor = %v", f)
	}
	if f := (Delta{OldMs: 0, NewMs: 150}).Factor(); f != 0 {
		t.Errorf("zero-baseline factor = %v", f)
	}
}

// TestLoadBaselineDiagnostics pins the failure-mode contract for both
// loaders: every error names the offending path and tells the reader
// the exact command that regenerates a good snapshot.
func TestLoadBaselineDiagnostics(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	oldSchema := filepath.Join(dir, "old.json")
	if err := os.WriteFile(oldSchema, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "missing.json")

	cases := []struct {
		name string
		err  error
		want []string
	}{
		{"perf missing", loadPerfErr(missing), []string{missing, "does not exist", "hlsbench -json -out"}},
		{"perf malformed", loadPerfErr(bad), []string{bad, "not valid JSON", "hlsbench -json -out"}},
		{"perf schema", loadPerfErr(oldSchema), []string{oldSchema, "schema_version 99", "hlsbench -json -out"}},
		{"scale missing", loadScaleErr(missing), []string{missing, "does not exist", "hlsbench -scale -out"}},
		{"scale malformed", loadScaleErr(bad), []string{bad, "not valid JSON", "hlsbench -scale -out"}},
		{"scale schema", loadScaleErr(oldSchema), []string{oldSchema, "schema_version 99", "hlsbench -scale -out"}},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		for _, want := range c.want {
			if !strings.Contains(c.err.Error(), want) {
				t.Errorf("%s: error %q missing %q", c.name, c.err, want)
			}
		}
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func loadPerfErr(path string) error {
	_, err := LoadPerfBaseline(path)
	return err
}

func loadScaleErr(path string) error {
	_, err := LoadScaleBaseline(path)
	return err
}
