package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/report"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden experiment outputs")

// goldenCases are the deterministic experiment outputs pinned against
// regressions; `go test ./internal/experiments -update-golden` refreshes
// them after an intentional algorithm change.
func goldenCases(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{"figure1.golden": Figure1()}
	f2, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	out["figure2.golden"] = f2
	tables := map[string]func() (*report.Table, error){
		"table1.golden":       Table1,
		"table2.golden":       Table2,
		"compare.golden":      Compare,
		"phases.golden":       Phases,
		"style.golden":        StyleOverhead,
		"interconnect.golden": Interconnect,
	}
	for name, fn := range tables {
		tbl, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = tbl.String()
	}
	return out
}

func TestGoldenOutputs(t *testing.T) {
	for name, got := range goldenCases(t) {
		path := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-golden to create)", name, err)
		}
		if string(want) != got {
			t.Errorf("%s changed; rerun with -update-golden if intentional.\n--- got ---\n%s\n--- want ---\n%s",
				name, got, want)
		}
	}
}
