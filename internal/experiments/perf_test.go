package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

func baselineOf(tables map[string]float64, seq, par float64, identical bool) *PerfBaseline {
	p := &PerfBaseline{SchemaVersion: 1}
	for name, ms := range tables {
		p.Tables = append(p.Tables, TableTiming{Name: name, WallMs: ms})
	}
	p.Sweep = SweepTiming{SequentialMs: seq, ParallelMs: par, Identical: identical}
	return p
}

func TestComparePerf(t *testing.T) {
	base := baselineOf(map[string]float64{"table1": 10, "table2": 20}, 8, 4, true)

	if regs := ComparePerf(base, baselineOf(map[string]float64{"table1": 29, "table2": 59}, 23, 11, true), 3); len(regs) != 0 {
		t.Errorf("within 3x tolerance, got regressions: %v", regs)
	}

	regs := ComparePerf(base, baselineOf(map[string]float64{"table1": 31, "table2": 5}, 8, 4, true), 3)
	if len(regs) != 1 || regs[0].Name != "table1" {
		t.Fatalf("want one table1 regression, got %v", regs)
	}
	if regs[0].OldMs != 10 || regs[0].NewMs != 31 || regs[0].LimitMs != 30 {
		t.Errorf("regression numbers: %+v", regs[0])
	}

	regs = ComparePerf(base, baselineOf(map[string]float64{"table1": 10}, 8, 13, true), 3)
	if len(regs) != 1 || regs[0].Name != "sweep/parallel" {
		t.Errorf("want sweep/parallel regression, got %v", regs)
	}

	// Lost determinism is a regression even with perfect times.
	regs = ComparePerf(base, baselineOf(map[string]float64{"table1": 10, "table2": 20}, 8, 4, false), 3)
	if len(regs) != 1 || regs[0].Name != "sweep/identical_results" {
		t.Errorf("want identical_results regression, got %v", regs)
	}

	// Tables only one side knows are ignored.
	fresh := baselineOf(map[string]float64{"table1": 10, "brand-new": 9999}, 8, 4, true)
	if regs := ComparePerf(base, fresh, 3); len(regs) != 0 {
		t.Errorf("new table should not regress, got %v", regs)
	}
}

func TestLoadPerfBaseline(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"schema_version":1,"tables":[{"name":"table1","rows":3,"wall_ms":1.5}],"sweep":{"sequential_ms":2,"parallel_ms":1,"identical_results":true}}`), 0o644)
	p, err := LoadPerfBaseline(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tables) != 1 || p.Tables[0].WallMs != 1.5 || !p.Sweep.Identical {
		t.Errorf("loaded %+v", p)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema_version":99}`), 0o644)
	if _, err := LoadPerfBaseline(bad); err == nil {
		t.Error("want schema-version error")
	}
	if _, err := LoadPerfBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("want missing-file error")
	}

	// The committed baseline at the repository root must stay loadable.
	if _, err := LoadPerfBaseline("../../BENCH_sweep.json"); err != nil {
		t.Errorf("committed BENCH_sweep.json: %v", err)
	}
}
