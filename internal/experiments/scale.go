package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/library"
	"repro/internal/op"
)

// ScaleBaseline is the machine-readable scale snapshot `hlsbench -scale`
// writes to BENCH_scale.json: one fresh-synthesis measurement per ladder
// rung plus the incremental re-synthesis comparison. Like PerfBaseline
// it is a regression anchor — later changes compare against these
// numbers with CompareScale — so the schema is versioned and additions
// must keep existing fields.
type ScaleBaseline struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`

	// NoIndex records whether the run disabled the grid occupancy index
	// (`hlsbench -scale -noindex`), so the nightly A/B rung's snapshot
	// is self-describing.
	NoIndex bool `json:"noindex,omitempty"`

	// MaxNodes is the ladder cap the snapshot was measured under
	// (0 = full ladder). The committed baseline stops at 10k so
	// regenerating it stays fast; the nightly CI job runs everything.
	MaxNodes int `json:"max_nodes"`

	Rungs       []ScalePoint       `json:"rungs"`
	Incremental []IncrementalPoint `json:"incremental"`
}

// ScalePoint is one ladder rung: a fresh time-constrained synthesis of a
// large generated graph, with the per-node cost and allocation footprint
// that make asymptotic regressions visible (a healthy engine's ns/node
// grows slowly with N; an accidental O(n²) makes it grow linearly).
type ScalePoint struct {
	Name   string  `json:"name"`
	Nodes  int     `json:"nodes"`
	CS     int     `json:"cs"`
	WallMs float64 `json:"wall_ms"`

	// NsPerNode is WallMs normalized by graph size — the column to read
	// down the ladder when hunting superlinear growth.
	NsPerNode float64 `json:"ns_per_node"`

	// AllocMB is the total bytes allocated during the run (cumulative,
	// from MemStats.TotalAlloc); HeapPeakMB is the live-plus-uncollected
	// heap immediately after the run, an upper estimate of the peak
	// working set.
	AllocMB    float64 `json:"alloc_mb"`
	HeapPeakMB float64 `json:"heap_peak_mb"`
}

// IncrementalPoint compares a one-node edit's incremental re-synthesis
// (core.Resynthesize replaying the recorded trajectory) against the
// from-scratch run on the same edited graph, asserting at measurement
// time that the two produced identical results.
type IncrementalPoint struct {
	Name          string  `json:"name"`
	Nodes         int     `json:"nodes"`
	FreshMs       float64 `json:"fresh_ms"`
	IncrementalMs float64 `json:"incremental_ms"`
	Speedup       float64 `json:"speedup"`
	Identical     bool    `json:"identical_results"`
}

// MeasureScale measures the scale ladder up to maxNodes (0 = the full
// ladder, 100k included) and the incremental re-synthesis points.
func MeasureScale(maxNodes int) (*ScaleBaseline, error) {
	return MeasureScaleCtx(context.Background(), maxNodes)
}

// MeasureScaleCtx is MeasureScale with cancellation, observed between
// and inside every rung (the synthesis engines poll the context).
//
// Fresh rungs run with Config.NoTrace: a pure batch run has no replay
// trajectory to keep, and the trace would only add allocation noise to
// the footprint columns. The incremental points keep the trace on for
// their fresh run — that recorded trajectory is exactly what the
// resynthesis replays, so trace-on fresh time is the honest comparator.
func MeasureScaleCtx(ctx context.Context, maxNodes int) (*ScaleBaseline, error) {
	b := &ScaleBaseline{
		SchemaVersion: 1,
		GoVersion:     runtime.Version(),
		NoIndex:       grid.DisableIndex,
		MaxNodes:      maxNodes,
	}
	// The incremental points run first: the big ladder rungs leave a
	// multi-gigabyte heap behind, and the GC tax of scanning it would
	// inflate every timing taken afterwards.
	for _, nodes := range []int{1_000, 5_000, 10_000} {
		if maxNodes > 0 && nodes > maxNodes {
			continue
		}
		p, err := measureIncremental(ctx, nodes)
		if err != nil {
			return nil, err
		}
		b.Incremental = append(b.Incremental, p)
	}
	for _, rung := range benchmarks.Scale() {
		if maxNodes > 0 && rung.Nodes > maxNodes {
			continue
		}
		p, err := measureRung(ctx, rung)
		if err != nil {
			return nil, err
		}
		b.Rungs = append(b.Rungs, p)
	}
	// Recorded after the timed work, not at construction: the snapshot
	// must state the parallelism the measurements actually ran under,
	// even if something resized GOMAXPROCS mid-run.
	b.GOMAXPROCS = runtime.GOMAXPROCS(0)
	return b, nil
}

func measureRung(ctx context.Context, rung *benchmarks.ScaleExample) (ScalePoint, error) {
	g := rung.Graph()
	cs := g.CriticalPathCycles() + rung.Slack
	cfg := core.Config{CS: cs, NoTrace: true}
	// Best of two runs for the small rungs; the big ones are long enough
	// that scheduler noise is negligible and a repeat would dominate the
	// whole measurement.
	reps := 2
	if rung.Nodes > 20_000 {
		reps = 1
	}
	p := ScalePoint{Name: rung.Name, Nodes: rung.Nodes, CS: cs}
	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if _, err := core.SynthesizeCtx(ctx, g, cfg); err != nil {
			return p, fmt.Errorf("experiments: scale rung %s: %w", rung.Name, err)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		ms := float64(wall.Microseconds()) / 1000
		if rep == 0 || ms < p.WallMs {
			p.WallMs = ms
			p.NsPerNode = float64(wall.Nanoseconds()) / float64(rung.Nodes)
			p.AllocMB = float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20)
			p.HeapPeakMB = float64(m1.HeapAlloc) / (1 << 20)
		}
	}
	return p, nil
}

// measureIncremental times the interactive-loop shape the resynthesis
// fast path exists for: a fully scheduled design, a one-node edit fed
// from primary inputs, and a replayed re-synthesis. The setup pins
// per-unit instance limits learned from an unconstrained probe run and
// uses a single-cycle graph, the two conditions under which the replay
// carries end to end (see TestResynthesizeSpeedup10k for why).
func measureIncremental(ctx context.Context, nodes int) (IncrementalPoint, error) {
	p := IncrementalPoint{Name: fmt.Sprintf("inc%dk", nodes/1000), Nodes: nodes}
	fail := func(stage string, err error) (IncrementalPoint, error) {
		return p, fmt.Errorf("experiments: scale incremental %s: %s: %w", p.Name, stage, err)
	}
	g, err := gen.Generate(gen.Config{Nodes: nodes, Seed: 1})
	if err != nil {
		return fail("generate", err)
	}
	cs := g.CriticalPathCycles() + 16
	probe, err := core.SynthesizeCtx(ctx, g, core.Config{CS: cs})
	if err != nil {
		return fail("probe", err)
	}
	used := make(map[string]int)
	for _, a := range probe.Datapath.ALUs {
		used[a.Unit.Name]++
	}
	limits := make(map[string]int)
	for _, u := range library.NCRLike().Units() {
		limits[u.Name] = 0
		if n := used[u.Name]; n > 0 {
			limits[u.Name] = n + 2
		}
	}
	cfg := core.Config{CS: cs, Limits: limits}
	d, err := core.SynthesizeCtx(ctx, g, cfg)
	if err != nil {
		return fail("fresh", err)
	}
	kind, found := op.Add, false
	counts := make(map[op.Kind]int)
	for _, n := range g.Nodes() {
		counts[n.Op]++
	}
	for _, k := range []op.Kind{op.Add, op.Sub, op.And, op.Or, op.Xor} {
		if counts[k]%cs != 0 {
			kind, found = k, true
			break
		}
	}
	if !found {
		return fail("edit", fmt.Errorf("no op kind off the instance-floor boundary"))
	}
	ins := g.Inputs()
	e := core.Edit{AddOp: &core.AddOpEdit{Name: "probe", Op: kind, Args: []string{ins[0], ins[1]}}}
	runtime.GC()
	start := time.Now()
	inc, err := core.ResynthesizeCtx(ctx, d, e)
	if err != nil {
		return fail("resynthesize", err)
	}
	p.IncrementalMs = float64(time.Since(start).Microseconds()) / 1000

	runtime.GC()
	start = time.Now()
	fresh, err := core.SynthesizeCtx(ctx, inc.Graph, cfg)
	if err != nil {
		return fail("fresh edited", err)
	}
	p.FreshMs = float64(time.Since(start).Microseconds()) / 1000
	p.Speedup = p.FreshMs / p.IncrementalMs
	p.Identical = reflect.DeepEqual(inc.Schedule.Placements, fresh.Schedule.Placements) &&
		inc.Cost == fresh.Cost
	return p, nil
}

// LoadScaleBaseline reads a BENCH_scale.json snapshot written by
// `hlsbench -scale`.
func LoadScaleBaseline(path string) (*ScaleBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("experiments: scale baseline %s does not exist; run `hlsbench -scale -out %s` to regenerate it", path, path)
		}
		return nil, fmt.Errorf("experiments: scale baseline: %w", err)
	}
	var b ScaleBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("experiments: scale baseline %s is not valid JSON (%v); run `hlsbench -scale -out %s` to regenerate it", path, err, path)
	}
	if b.SchemaVersion != 1 {
		return nil, fmt.Errorf("experiments: scale baseline %s: unsupported schema_version %d (this build reads version 1); run `hlsbench -scale -out %s` to regenerate it", path, b.SchemaVersion, path)
	}
	return &b, nil
}

// Delta is one metric's baseline-vs-fresh pair, for the delta table
// `hlsbench -compare` prints before its pass/fail verdict.
type Delta struct {
	Name  string
	OldMs float64
	NewMs float64
}

// Factor returns the fresh/baseline slowdown (>1 = slower than the
// baseline), or 0 when the baseline measurement is missing or zero.
func (d Delta) Factor() float64 {
	if d.OldMs <= 0 {
		return 0
	}
	return d.NewMs / d.OldMs
}

// PerfDeltas pairs up every comparable measurement of two perf
// baselines, in the fresh snapshot's order. Metrics present on only one
// side are skipped, mirroring ComparePerf.
func PerfDeltas(baseline, fresh *PerfBaseline) []Delta {
	var ds []Delta
	oldTables := make(map[string]TableTiming, len(baseline.Tables))
	for _, t := range baseline.Tables {
		oldTables[t.Name] = t
	}
	for _, t := range fresh.Tables {
		if old, ok := oldTables[t.Name]; ok {
			ds = append(ds, Delta{Name: t.Name, OldMs: old.WallMs, NewMs: t.WallMs})
		}
	}
	ds = append(ds,
		Delta{Name: "sweep/sequential", OldMs: baseline.Sweep.SequentialMs, NewMs: fresh.Sweep.SequentialMs},
		Delta{Name: "sweep/parallel", OldMs: baseline.Sweep.ParallelMs, NewMs: fresh.Sweep.ParallelMs})
	return ds
}

// ScaleDeltas pairs up every comparable measurement of two scale
// baselines: each rung's wall time and each incremental point's fresh
// and incremental times.
func ScaleDeltas(baseline, fresh *ScaleBaseline) []Delta {
	var ds []Delta
	oldRungs := make(map[string]ScalePoint, len(baseline.Rungs))
	for _, r := range baseline.Rungs {
		oldRungs[r.Name] = r
	}
	for _, r := range fresh.Rungs {
		if old, ok := oldRungs[r.Name]; ok {
			ds = append(ds, Delta{Name: "rung/" + r.Name, OldMs: old.WallMs, NewMs: r.WallMs})
		}
	}
	oldInc := make(map[string]IncrementalPoint, len(baseline.Incremental))
	for _, p := range baseline.Incremental {
		oldInc[p.Name] = p
	}
	for _, p := range fresh.Incremental {
		old, ok := oldInc[p.Name]
		if !ok {
			continue
		}
		ds = append(ds,
			Delta{Name: p.Name + "/fresh", OldMs: old.FreshMs, NewMs: p.FreshMs},
			Delta{Name: p.Name + "/incremental", OldMs: old.IncrementalMs, NewMs: p.IncrementalMs})
	}
	return ds
}

// CompareScale checks a fresh scale measurement against a committed
// baseline with the same contract as ComparePerf: every wall time may be
// at most tolerance times its baseline value, rungs present on only one
// side are ignored (a capped ladder compares against the full one), and
// an incremental point that lost result identity is a regression of its
// own regardless of timing.
func CompareScale(baseline, fresh *ScaleBaseline, tolerance float64) []PerfRegression {
	var regs []PerfRegression
	for _, d := range ScaleDeltas(baseline, fresh) {
		if d.OldMs <= 0 {
			continue
		}
		if limit := d.OldMs * tolerance; d.NewMs > limit {
			regs = append(regs, PerfRegression{Name: d.Name, OldMs: d.OldMs, NewMs: d.NewMs, LimitMs: limit})
		}
	}
	oldInc := make(map[string]IncrementalPoint, len(baseline.Incremental))
	for _, p := range baseline.Incremental {
		oldInc[p.Name] = p
	}
	for _, p := range fresh.Incremental {
		if old, ok := oldInc[p.Name]; ok && old.Identical && !p.Identical {
			regs = append(regs, PerfRegression{Name: p.Name + "/identical_results"})
		}
	}
	return regs
}
