package experiments

import (
	"context"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/benchmarks"
	"repro/internal/liapunov"
	"repro/internal/library"
	"repro/internal/mfs"
	"repro/internal/mfsa"
	"repro/internal/op"
	"repro/internal/report"
)

// AblationLiapunov contrasts the two §3.1 guiding functions under the
// same fixed time constraint: the intended time-constrained V = x + n·y
// (fill a step before opening the next) against the resource-constrained
// V = cs·x + y (pack a unit's column first). Both produce legal
// schedules; the table shows how the choice shifts the FU mix, the
// design decision DESIGN.md §6 calls out.
func AblationLiapunov() (*report.Table, error) {
	return AblationLiapunovCtx(context.Background())
}

// AblationLiapunovCtx is AblationLiapunov with cancellation.
func AblationLiapunovCtx(ctx context.Context) (*report.Table, error) {
	t := report.New("Ablation — Liapunov function choice under a time constraint",
		"Ex", "T", "time-constrained V", "resource-constrained V")
	jobs := firstConstraintJobs(func(ex *benchmarks.Example) bool {
		return ex.ClockNs == 0 && ex.Latency == nil
	})
	err := parRows(ctx, t, len(jobs), func(i int) ([]interface{}, error) {
		ex, cs := jobs[i].ex, jobs[i].cs
		a, err := mfs.ScheduleCtx(ctx, ex.Graph, mfs.Options{CS: cs})
		if err != nil {
			return nil, err
		}
		b, err := mfs.ScheduleCtx(ctx, ex.Graph, mfs.Options{
			CS:       cs,
			Liapunov: liapunov.ResourceConstrained{CS: cs + 1},
		})
		if err != nil {
			return nil, err
		}
		return []interface{}{fmt.Sprintf("#%d %s", ex.Num, ex.Name), cs,
			fuNotation(a.InstancesPerType()), fuNotation(b.InstancesPerType())}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// AblationWeights measures what each hardware term of MFSA's dynamic
// Liapunov function buys: the balanced optimizer against runs with the
// multiplexer term disabled, the register term disabled, and the ALU
// term disabled (time always dominates). On the full library the
// structural mechanisms (primary-unit floors and the redundant frame)
// mask the terms, so the ablation runs on a restricted shared-ALU
// library — only a (+-*) multi-function ALU plus single-function cells
// for the remaining kinds — where operations crowd onto shared units and
// the incremental multiplexer and register terms actively steer binding,
// mirroring the restricted-library usage §6 describes.
func AblationWeights() (*report.Table, error) {
	return AblationWeightsCtx(context.Background())
}

// AblationWeightsCtx is AblationWeights with cancellation.
func AblationWeightsCtx(ctx context.Context) (*report.Table, error) {
	t := report.New("Ablation — MFSA Liapunov terms on a shared-ALU library (total cost, µm²)",
		"Ex", "T", "balanced", "no-MUX-term", "no-REG-term", "no-ALU-term")
	lib, err := sharedALULibrary()
	if err != nil {
		return nil, err
	}
	configs := []mfsa.Weights{
		{Time: 1, ALU: 1, Mux: 1, Reg: 1},
		{Time: 1, ALU: 1, Mux: 0, Reg: 1},
		{Time: 1, ALU: 1, Mux: 1, Reg: 0},
		{Time: 1, ALU: 0, Mux: 1, Reg: 1},
	}
	jobs := firstConstraintJobs(nil)
	err = parRows(ctx, t, len(jobs), func(i int) ([]interface{}, error) {
		ex, cs := jobs[i].ex, jobs[i].cs
		cells := []interface{}{fmt.Sprintf("#%d %s", ex.Num, ex.Name), cs}
		for _, w := range configs {
			res, err := mfsa.SynthesizeCtx(ctx, ex.Graph, mfsa.Options{
				CS: cs, ClockNs: ex.ClockNs, Lib: lib, Weights: w,
			})
			if err != nil {
				return nil, fmt.Errorf("%s weights %+v: %w", ex.Name, w, err)
			}
			cells = append(cells, fmt.Sprintf("%.0f", res.Cost.Total))
		}
		return cells, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// sharedALULibrary restricts the NCR-like library to one multi-function
// arithmetic ALU plus the single-function cells the benchmarks' other
// operations need.
func sharedALULibrary() (*library.Library, error) {
	full := library.NCRLike()
	return full.Restrict(
		library.ComposeName(op.Add, op.Sub, op.Mul),
		"fu_div", "fu_lt", "fu_and", "fu_or",
	)
}

// AblationRedundantFrame contrasts the ⌈N_j/cs⌉ starting estimate for
// current_j (the redundant frame, RF) against starting every type at its
// hard maximum (no RF exclusion): without RF the time-dominant function
// spreads operations over all columns and the FU mix degrades toward the
// ASAP profile.
func AblationRedundantFrame() (*report.Table, error) {
	return AblationRedundantFrameCtx(context.Background())
}

// AblationRedundantFrameCtx is AblationRedundantFrame with cancellation.
func AblationRedundantFrameCtx(ctx context.Context) (*report.Table, error) {
	t := report.New("Ablation — redundant frame (RF) starting estimate",
		"Ex", "T", "with RF", "without RF (current_j = max_j)")
	jobs := firstConstraintJobs(func(ex *benchmarks.Example) bool {
		return ex.ClockNs == 0 && ex.Latency == nil
	})
	err := parRows(ctx, t, len(jobs), func(i int) ([]interface{}, error) {
		ex, cs := jobs[i].ex, jobs[i].cs
		with, err := mfs.ScheduleCtx(ctx, ex.Graph, mfs.Options{CS: cs})
		if err != nil {
			return nil, err
		}
		// Disable RF by granting every type its observed upper bound as
		// the user limit AND as the starting estimate: the limit map
		// makes max_j explicit, and a second schedule with per-type
		// limits equal to the with-RF usage would be circular, so we
		// instead set limits to the ASAP peak (the no-balancing regime's
		// natural demand).
		asap, err := asapPeaks(ex)
		if err != nil {
			return nil, err
		}
		without, err := mfs.ScheduleCtx(ctx, ex.Graph, mfs.Options{CS: cs, NoRedundantFrame: true, Limits: asap})
		if err != nil {
			return nil, err
		}
		return []interface{}{fmt.Sprintf("#%d %s", ex.Num, ex.Name), cs,
			fuNotation(with.InstancesPerType()), fuNotation(without.InstancesPerType())}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// asapPeaks returns each type's peak concurrency in the ASAP schedule —
// the FU demand of an unbalanced scheduler, used as the hard max_j in
// the no-RF ablation.
func asapPeaks(ex *benchmarks.Example) (map[string]int, error) {
	s, err := baseline.ASAP(ex.Graph)
	if err != nil {
		return nil, err
	}
	return s.InstancesPerType(), nil
}
