package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/vet"
)

// VetBaseline is the machine-readable snapshot `hlsbench -vet` writes to
// BENCH_vet.json: the wall time of one full hlsvet suite run over the
// module, sequential versus parallel, plus the determinism verdict (the
// two runs must emit byte-identical JSON). hlsvet runs on internal/pool
// — the same worker substrate it vets — so this baseline is both a perf
// trajectory for the analyzers and a regression guard for that fan-out.
type VetBaseline struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`

	// Analyzers and Findings pin the measured workload: a baseline taken
	// with fewer analyzers or against a dirtier tree is not comparable.
	Analyzers int `json:"analyzers"`
	Findings  int `json:"findings"`

	SequentialMs float64 `json:"sequential_ms"`
	ParallelMs   float64 `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`

	// Identical records that the sequential and parallel runs emitted
	// byte-identical JSON — the analyzer-output determinism guarantee,
	// asserted at measurement time so a regression shows up in the
	// baseline itself.
	Identical bool `json:"identical_results"`
}

// MeasureVetCtx times the full hlsvet analyzer suite over every package
// of the module rooted at dir, once with one worker and once with
// GOMAXPROCS workers (best of two runs each — the dominant cost, the
// `go list -export` load, is warm after the first run), and compares
// the two JSON renderings byte-for-byte.
func MeasureVetCtx(ctx context.Context, dir string) (*VetBaseline, error) {
	analyzers := vet.Analyzers()
	b := &VetBaseline{
		SchemaVersion: 1,
		GoVersion:     runtime.Version(),
		Analyzers:     len(analyzers),
	}
	run := func(workers int) ([]byte, int, float64, error) {
		var rendered []byte
		n, best := 0, 0.0
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			ds, err := vet.CheckParallel(ctx, dir, []string{"./..."}, analyzers, workers)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("experiments: vet baseline (workers=%d): %w", workers, err)
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			if rep == 0 || ms < best {
				best = ms
			}
			var buf bytes.Buffer
			vet.PrintJSON(&buf, ds)
			rendered = buf.Bytes()
			n = len(ds)
		}
		return rendered, n, best, nil
	}
	seqJSON, _, seqMs, err := run(1)
	if err != nil {
		return nil, err
	}
	parJSON, n, parMs, err := run(0)
	if err != nil {
		return nil, err
	}
	b.Findings = n
	b.SequentialMs = seqMs
	b.ParallelMs = parMs
	b.Speedup = seqMs / parMs
	b.Identical = bytes.Equal(seqJSON, parJSON)
	// Recorded after the timed work, not at construction: the snapshot
	// must state the parallelism the measurements actually ran under,
	// even if something resized GOMAXPROCS mid-run.
	b.GOMAXPROCS = runtime.GOMAXPROCS(0)
	return b, nil
}

// LoadVetBaseline reads a BENCH_vet.json snapshot written by
// `hlsbench -vet`.
func LoadVetBaseline(path string) (*VetBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("experiments: vet baseline %s does not exist; run `hlsbench -vet -out %s` to regenerate it", path, path)
		}
		return nil, fmt.Errorf("experiments: vet baseline: %w", err)
	}
	var b VetBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("experiments: vet baseline %s is not valid JSON (%v); run `hlsbench -vet -out %s` to regenerate it", path, err, path)
	}
	if b.SchemaVersion != 1 {
		return nil, fmt.Errorf("experiments: vet baseline %s: unsupported schema_version %d (this build reads version 1); run `hlsbench -vet -out %s` to regenerate it", path, b.SchemaVersion, path)
	}
	return &b, nil
}

// VetDeltas pairs up the comparable measurements of two vet baselines.
func VetDeltas(baseline, fresh *VetBaseline) []Delta {
	return []Delta{
		{Name: "vet/sequential", OldMs: baseline.SequentialMs, NewMs: fresh.SequentialMs},
		{Name: "vet/parallel", OldMs: baseline.ParallelMs, NewMs: fresh.ParallelMs},
	}
}

// CompareVet checks a fresh vet measurement against a committed
// baseline under the shared tolerance rules (see ComparePerf): wall
// times may grow at most tolerance-fold, speedups never fail, and a run
// that lost output determinism is a regression of its own.
func CompareVet(baseline, fresh *VetBaseline, tolerance float64) []PerfRegression {
	var regs []PerfRegression
	check := func(name string, oldMs, newMs float64) {
		if oldMs <= 0 {
			return
		}
		if limit := oldMs * tolerance; newMs > limit {
			regs = append(regs, PerfRegression{Name: name, OldMs: oldMs, NewMs: newMs, LimitMs: limit})
		}
	}
	check("vet/sequential", baseline.SequentialMs, fresh.SequentialMs)
	check("vet/parallel", baseline.ParallelMs, fresh.ParallelMs)
	if baseline.Identical && !fresh.Identical {
		regs = append(regs, PerfRegression{Name: "vet/identical_results"})
	}
	return regs
}
