// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): Table 1 (MFS results for the six design examples),
// Table 2 (MFSA RTL results in both design styles), the textual Figures 1
// and 2 (placement table and move frames), the CPU-time measurements, the
// comparison against the force-directed baseline, and the ablations
// DESIGN.md calls out. cmd/hlsbench prints these tables; the repository
// root's bench_test.go wraps each in a testing.B benchmark.
//
// Every table cell is an independent synthesis run over a read-only
// graph, so the builders fan the examples × constraints grid out over
// the shared worker pool (internal/pool) and append rows in their
// deterministic order afterwards; only Runtime stays sequential, because
// it measures per-example wall time and concurrent runs would contend
// for cores and distort the numbers.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/grid"
	"repro/internal/liapunov"
	"repro/internal/library"
	"repro/internal/mfs"
	"repro/internal/mfsa"
	"repro/internal/op"
	"repro/internal/pool"
	"repro/internal/report"
	"repro/internal/rtl"
	"repro/internal/sched"
)

// exJob is one cell of an examples × constraints grid.
type exJob struct {
	ex *benchmarks.Example
	cs int
}

// firstConstraintJobs returns one job per example at its tightest time
// constraint, keeping only examples the filter admits (nil = all).
func firstConstraintJobs(filter func(*benchmarks.Example) bool) []exJob {
	var jobs []exJob
	for _, ex := range benchmarks.All() {
		if filter != nil && !filter(ex) {
			continue
		}
		jobs = append(jobs, exJob{ex, ex.TimeConstraints[0]})
	}
	return jobs
}

// parRows computes n table rows concurrently on the shared pool and
// appends them to t in index order, so a parallelized table is
// byte-identical to its sequential ancestor. A cancelled ctx aborts the
// fan-out and surfaces ctx.Err(); no partial table is appended.
func parRows(ctx context.Context, t *report.Table, n int, row func(i int) ([]interface{}, error)) error {
	rows, err := pool.MapCtx(ctx, pool.Size(0), n, row)
	if err != nil {
		return err
	}
	for _, r := range rows {
		t.Addf(r...)
	}
	return nil
}

// fuNotation renders instance counts in the paper's Table 1 notation:
// {"*":2, "+":3} -> "**,+++".
func fuNotation(inst map[string]int) string {
	order := []string{"*", "+", "-", "/", "<", ">", "&", "|"}
	seen := make(map[string]bool)
	var parts []string
	add := func(sym string) {
		n := inst[sym]
		if n <= 0 {
			return
		}
		parts = append(parts, strings.Repeat(sym, n))
		seen[sym] = true
	}
	for _, sym := range order {
		add(sym)
	}
	var rest []string
	for sym := range inst {
		if !seen[sym] {
			rest = append(rest, sym)
		}
	}
	sort.Strings(rest)
	for _, sym := range rest {
		add(sym)
	}
	return strings.Join(parts, ",")
}

func mfsOptions(ex *benchmarks.Example, cs int, pipelined bool) mfs.Options {
	opt := mfs.Options{CS: cs, ClockNs: ex.ClockNs}
	if ex.Latency != nil {
		opt.Latency = ex.Latency(cs)
	}
	if pipelined {
		opt.PipelinedTypes = make(map[string]bool)
		for _, sym := range ex.PipelinedOps {
			opt.PipelinedTypes[sym] = true
		}
	}
	return opt
}

// Table1 regenerates the MFS results table: for every example and every
// time constraint, the functional-unit mix MFS settles on; structurally
// pipelined examples get a second row using pipelined units.
func Table1() (*report.Table, error) {
	return Table1Ctx(context.Background())
}

// Table1Ctx is Table1 with cancellation.
func Table1Ctx(ctx context.Context) (*report.Table, error) {
	t := report.New("Table 1 — MFS results for the six design examples",
		"Ex", "Cyc", "Feat", "T", "FUs", "FUs (pipelined)")
	var jobs []exJob
	//hls:ctxok enumerates the six fixed benchmark examples; the synthesis work below it is cancelled through parRows
	for _, ex := range benchmarks.All() {
		for _, cs := range ex.TimeConstraints {
			jobs = append(jobs, exJob{ex, cs})
		}
	}
	err := parRows(ctx, t, len(jobs), func(i int) ([]interface{}, error) {
		ex, cs := jobs[i].ex, jobs[i].cs
		s, err := mfs.ScheduleCtx(ctx, ex.Graph, mfsOptions(ex, cs, false))
		if err != nil {
			return nil, fmt.Errorf("%s T=%d: %w", ex.Name, cs, err)
		}
		plain := fuNotation(s.InstancesPerType())
		piped := ""
		if len(ex.PipelinedOps) > 0 {
			sp, err := mfs.ScheduleCtx(ctx, ex.Graph, mfsOptions(ex, cs, true))
			if err != nil {
				return nil, fmt.Errorf("%s T=%d pipelined: %w", ex.Name, cs, err)
			}
			piped = fuNotation(sp.InstancesPerType())
		}
		return []interface{}{fmt.Sprintf("#%d %s", ex.Num, ex.Name), ex.CycleNote, ex.Feature,
			fmt.Sprintf("T=%d", cs), plain, piped}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table2 regenerates the MFSA results table: for every example at its
// tightest time constraint, both design styles' ALU set, total cost,
// and register/multiplexer statistics.
func Table2() (*report.Table, error) {
	return Table2Ctx(context.Background())
}

// Table2Ctx is Table2 with cancellation.
func Table2Ctx(ctx context.Context) (*report.Table, error) {
	t := report.New("Table 2 — MFSA RTL results (NCR-like library, µm²)",
		"Ex", "T", "Style", "ALUs", "Cost", "REG", "MUX", "MUXin")
	type styleJob struct {
		ex    *benchmarks.Example
		style mfsa.Style
	}
	var jobs []styleJob
	//hls:ctxok enumerates the six fixed benchmark examples; the synthesis work below it is cancelled through parRows
	for _, ex := range benchmarks.All() {
		for _, style := range []mfsa.Style{mfsa.Style1, mfsa.Style2} {
			jobs = append(jobs, styleJob{ex, style})
		}
	}
	err := parRows(ctx, t, len(jobs), func(i int) ([]interface{}, error) {
		ex, style := jobs[i].ex, jobs[i].style
		cs := ex.TimeConstraints[0]
		res, err := mfsa.SynthesizeCtx(ctx, ex.Graph, mfsa.Options{
			CS: cs, Style: style, ClockNs: ex.ClockNs,
		})
		if err != nil {
			return nil, fmt.Errorf("%s style %d: %w", ex.Name, style, err)
		}
		c := res.Cost
		return []interface{}{fmt.Sprintf("#%d %s", ex.Num, ex.Name), cs, int(style),
			res.Datapath.ALUSummary(), fmt.Sprintf("%.0f", c.Total),
			c.NumRegs, c.NumMux, c.NumMuxInputs}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// StyleOverhead reports style 2's total-cost overhead over style 1 per
// example — the §6 claim of a 2–11% premium for self-testable
// structures.
func StyleOverhead() (*report.Table, error) {
	return StyleOverheadCtx(context.Background())
}

// StyleOverheadCtx is StyleOverhead with cancellation.
func StyleOverheadCtx(ctx context.Context) (*report.Table, error) {
	t := report.New("Style 2 overhead vs style 1 (total cost)",
		"Ex", "T", "Style1", "Style2", "Overhead")
	jobs := firstConstraintJobs(nil)
	err := parRows(ctx, t, len(jobs), func(i int) ([]interface{}, error) {
		ex, cs := jobs[i].ex, jobs[i].cs
		c1, err := mfsa.SynthesizeCtx(ctx, ex.Graph, mfsa.Options{CS: cs, Style: mfsa.Style1, ClockNs: ex.ClockNs})
		if err != nil {
			return nil, err
		}
		c2, err := mfsa.SynthesizeCtx(ctx, ex.Graph, mfsa.Options{CS: cs, Style: mfsa.Style2, ClockNs: ex.ClockNs})
		if err != nil {
			return nil, err
		}
		over := (c2.Cost.Total/c1.Cost.Total - 1) * 100
		return []interface{}{fmt.Sprintf("#%d %s", ex.Num, ex.Name), cs,
			fmt.Sprintf("%.0f", c1.Cost.Total), fmt.Sprintf("%.0f", c2.Cost.Total),
			fmt.Sprintf("%+.1f%%", over)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Compare reproduces §6's comparison against the literature: MFS versus
// force-directed scheduling (the HAL baseline) on functional-unit
// counts, and MFSA versus FDS followed by a naive single-function
// allocation on total RTL cost, on the same library.
func Compare() (*report.Table, error) {
	return CompareCtx(context.Background())
}

// CompareCtx is Compare with cancellation.
func CompareCtx(ctx context.Context) (*report.Table, error) {
	t := report.New("Comparison — MFS/MFSA vs force-directed baseline",
		"Ex", "T", "MFS FUs", "FDS FUs", "MFSA cost", "FDS+naive cost", "Δcost")
	// FDS baseline has no chaining support.
	jobs := firstConstraintJobs(func(ex *benchmarks.Example) bool { return ex.ClockNs == 0 })
	err := parRows(ctx, t, len(jobs), func(i int) ([]interface{}, error) {
		ex, cs := jobs[i].ex, jobs[i].cs
		ms, err := mfs.ScheduleCtx(ctx, ex.Graph, mfs.Options{CS: cs})
		if err != nil {
			return nil, err
		}
		fs, err := baseline.ForceDirected(ex.Graph, cs)
		if err != nil {
			return nil, err
		}
		res, err := mfsa.SynthesizeCtx(ctx, ex.Graph, mfsa.Options{CS: cs})
		if err != nil {
			return nil, err
		}
		naive, err := NaiveAllocate(fs, library.NCRLike())
		if err != nil {
			return nil, err
		}
		nc := naive.Cost()
		delta := (res.Cost.Total/nc.Total - 1) * 100
		return []interface{}{fmt.Sprintf("#%d %s", ex.Num, ex.Name), cs,
			fuNotation(ms.InstancesPerType()), fuNotation(fs.InstancesPerType()),
			fmt.Sprintf("%.0f", res.Cost.Total), fmt.Sprintf("%.0f", nc.Total),
			fmt.Sprintf("%+.1f%%", delta)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// NaiveAllocate binds a finished schedule to single-function units
// exactly as placed (instance = schedule index), with straightforward
// multiplexer lists and left-edge registers — the datapath a scheduler
// without allocation awareness would get. It is the cost baseline MFSA
// is compared against.
func NaiveAllocate(s *sched.Schedule, lib *library.Library) (*rtl.Datapath, error) {
	g := s.Graph
	dp := rtl.NewDatapath(lib)
	alus := make(map[string]*rtl.ALU)
	ids := make([]dfg.NodeID, 0, g.Len())
	for _, n := range g.Nodes() {
		ids = append(ids, n.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := g.Node(id)
		p, ok := s.Placements[id]
		if !ok {
			return nil, fmt.Errorf("experiments: node %q unscheduled", n.Name)
		}
		key := fmt.Sprintf("%s#%d", p.Type, p.Index)
		a, ok := alus[key]
		if !ok {
			u := lib.Single(n.Op)
			if u == nil {
				return nil, fmt.Errorf("experiments: no unit for %v", n.Op)
			}
			a = dp.AddALU(u)
			alus[key] = a
		}
		a.Bind(n, n.Args, p.Step)
	}
	dp.AssignRegisters(lifetimes(s))
	if err := dp.Validate(); err != nil {
		return nil, err
	}
	return dp, nil
}

// lifetimes derives value lifetimes from a schedule (producer finish to
// last consumer; outputs held one boundary).
func lifetimes(s *sched.Schedule) []rtl.Interval {
	g := s.Graph
	var out []rtl.Interval
	for _, n := range g.Nodes() {
		p := s.Placements[n.ID]
		birth := p.Step + n.Cycles - 1
		death := birth + 1
		for _, sid := range n.Succs() {
			if sp, ok := s.Placements[sid]; ok && sp.Step > death {
				death = sp.Step
			}
		}
		out = append(out, rtl.Interval{Name: n.Name, Birth: birth, Death: death})
	}
	return out
}

// Runtime measures wall-clock synthesis time per example, mirroring §6's
// "< 0.2 s MFS, < 0.4 s MFSA per example on a SPARC SLC". Unlike the
// result tables it deliberately stays sequential: concurrent runs would
// contend for cores and inflate the per-example timings.
func Runtime() (*report.Table, error) {
	return RuntimeCtx(context.Background())
}

// RuntimeCtx is Runtime with cancellation, checked between examples and
// inside each timed run.
func RuntimeCtx(ctx context.Context) (*report.Table, error) {
	t := report.New("CPU time per example (this machine)",
		"Ex", "T", "MFS", "MFSA")
	for _, ex := range benchmarks.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cs := ex.TimeConstraints[0]
		start := time.Now()
		if _, err := mfs.ScheduleCtx(ctx, ex.Graph, mfsOptions(ex, cs, false)); err != nil {
			return nil, err
		}
		tMFS := time.Since(start)
		start = time.Now()
		if _, err := mfsa.SynthesizeCtx(ctx, ex.Graph, mfsa.Options{CS: cs, ClockNs: ex.ClockNs}); err != nil {
			return nil, err
		}
		tMFSA := time.Since(start)
		t.Addf(fmt.Sprintf("#%d %s", ex.Num, ex.Name), cs, tMFS, tMFSA)
	}
	return t, nil
}

// Figure1 renders the paper's Figure 1: an operation's present position
// O_p and its next position O_n on the placement grid, with the move
// decreasing the Liapunov energy.
func Figure1() string {
	g := dfg.New("figure1")
	g.AddInput("a")
	id, _ := g.AddOp("Oi", op.Mul, "a", "a")
	table := grid.NewTable("*", 7, 4)
	present := grid.Pos{Step: 6, Index: 4}
	next := grid.Pos{Step: 3, Index: 2}
	_ = table.Place(g, id, present, 1)
	f := liapunov.TimeConstrained{N: 5}
	render := grid.Render(table, nil, map[grid.Pos]string{present: "Oip", next: "Oin"})
	return fmt.Sprintf("Figure 1 — present (Oip) and next (Oin) position of an operation\n%s"+
		"move decreases V = x + n·y: V(Oip)=%.0f -> V(Oin)=%.0f\n",
		render, f.Value(present), f.Value(next))
}

// Figure2 renders the paper's Figure 2: the PF/RF/FF/MF frames an
// operation sees at placement time, reconstructed on the diffeq example.
func Figure2() (string, error) {
	ex := benchmarks.Diffeq()
	var target dfg.NodeID = -1
	for _, n := range ex.Graph.Nodes() {
		if n.Name == "m4" {
			target = n.ID
		}
	}
	in, err := mfs.FramesFor(ex.Graph, mfs.Options{CS: 4}, target)
	if err != nil {
		return "", err
	}
	return "Figure 2 — move-frame construction (MF = PF − (RF ∪ FF))\n" + in.Render(), nil
}

// Phases reproduces the paper's §1 motivation quantitatively: "decisions
// at higher levels (i.e. allocation) may dominate the results produced
// by an independent scheduling phase". It compares full MFSA
// (simultaneous scheduling and allocation) against the sequential flows
// MFS→Allocate and FDS→Allocate on the same library, where Allocate is
// MFSA's binder with the time dimension frozen.
func Phases() (*report.Table, error) {
	return PhasesCtx(context.Background())
}

// PhasesCtx is Phases with cancellation.
func PhasesCtx(ctx context.Context) (*report.Table, error) {
	t := report.New("Simultaneous vs sequential scheduling/allocation (total cost, µm²)",
		"Ex", "T", "MFSA (simultaneous)", "MFS→alloc", "FDS→alloc")
	// The FDS baseline is not pipelining-aware.
	jobs := firstConstraintJobs(func(ex *benchmarks.Example) bool { return ex.Latency == nil })
	err := parRows(ctx, t, len(jobs), func(i int) ([]interface{}, error) {
		ex, cs := jobs[i].ex, jobs[i].cs
		sim1, err := mfsa.SynthesizeCtx(ctx, ex.Graph, mfsa.Options{CS: cs, ClockNs: ex.ClockNs})
		if err != nil {
			return nil, err
		}
		ms, err := mfs.ScheduleCtx(ctx, ex.Graph, mfs.Options{CS: cs, ClockNs: ex.ClockNs})
		if err != nil {
			return nil, err
		}
		seq1, err := mfsa.AllocateCtx(ctx, ms, mfsa.Options{})
		if err != nil {
			return nil, err
		}
		fdsCell := "n/a"
		if ex.ClockNs == 0 {
			fs, err := baseline.ForceDirected(ex.Graph, cs)
			if err != nil {
				return nil, err
			}
			seq2, err := mfsa.AllocateCtx(ctx, fs, mfsa.Options{})
			if err != nil {
				return nil, err
			}
			fdsCell = fmt.Sprintf("%.0f", seq2.Cost.Total)
		}
		return []interface{}{fmt.Sprintf("#%d %s", ex.Num, ex.Name), cs,
			fmt.Sprintf("%.0f", sim1.Cost.Total),
			fmt.Sprintf("%.0f", seq1.Cost.Total),
			fdsCell}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Interconnect regenerates the §5.7 interconnect study: per example, the
// point-to-point link count, the per-signal vs. post-sharing effective
// multiplexer input counts, and the bus-based alternative's size.
func Interconnect() (*report.Table, error) {
	return InterconnectCtx(context.Background())
}

// InterconnectCtx is Interconnect with cancellation.
func InterconnectCtx(ctx context.Context) (*report.Table, error) {
	t := report.New("Interconnect — §5.7 line sharing and bus alternative",
		"Ex", "T", "links", "mux inputs (signal)", "mux inputs (shared)", "buses")
	jobs := firstConstraintJobs(nil)
	err := parRows(ctx, t, len(jobs), func(i int) ([]interface{}, error) {
		ex, cs := jobs[i].ex, jobs[i].cs
		res, err := mfsa.SynthesizeCtx(ctx, ex.Graph, mfsa.Options{CS: cs, ClockNs: ex.ClockNs})
		if err != nil {
			return nil, err
		}
		ic, err := rtl.AnalyzeInterconnect(ex.Graph, res.Schedule, res.Datapath)
		if err != nil {
			return nil, err
		}
		plan, err := rtl.PlanBuses(ex.Graph, res.Schedule, res.Datapath)
		if err != nil {
			return nil, err
		}
		return []interface{}{fmt.Sprintf("#%d %s", ex.Num, ex.Name), cs,
			ic.NumLinks, ic.SignalInputs, ic.EffectiveInputs, plan.Buses}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
