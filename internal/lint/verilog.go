package lint

import (
	"fmt"
	"strings"

	"repro/internal/diag"
	"repro/internal/op"
)

// verilog.go is a small parser for the structural-Verilog subset
// internal/emit produces: one module, scalar/vector port and net
// declarations, continuous assigns, and always-blocks whose bodies are
// nonblocking assignments (possibly behind if/else or case items). It
// reconstructs enough structure — declarations with widths, drivers,
// uses — for the netlist analyzer to re-check the emitted text without
// trusting the emitter.

type netDecl struct {
	name  string
	kind  string // "input", "output", "wire", "reg"
	width int
	line  int
}

type netAssign struct {
	lhs      string
	rhs      []string // identifiers read by the right-hand side
	rhsIdent string   // non-empty when the RHS is a single bare identifier
	raw      string   // right-hand-side text, trimmed, without the ";"
	caseItem int      // procs: the "N: begin" case item enclosing it; -1 outside any
	line     int
}

type netModule struct {
	name    string
	decls   map[string]*netDecl
	order   []string     // declaration order, for deterministic reports
	assigns []*netAssign // continuous (assign ... = ...)
	procs   []*netAssign // procedural (... <= ...)
}

// parseNetlist parses the emitted text, reporting HL0505 duplicate
// declarations and HL0508 unparseable constructs as it goes.
func parseNetlist(text string) (*netModule, diag.List) {
	m := &netModule{decls: make(map[string]*netDecl)}
	var out diag.List
	report := func(code string, sev diag.Severity, line int, msg string) {
		out = append(out, diag.Diagnostic{
			Code: code, Severity: sev, Artifact: "netlist",
			Loc: fmt.Sprintf("line %d", line), Message: msg,
		})
	}
	declare := func(d *netDecl) {
		if prev, dup := m.decls[d.name]; dup {
			report(diag.CodeNetDupDecl, diag.Error, d.line,
				fmt.Sprintf("identifier %q declared twice (lines %d and %d)", d.name, prev.line, d.line))
			return
		}
		m.decls[d.name] = d
		m.order = append(m.order, d.name)
	}

	inHeader := false
	caseItem := -1 // current "N: begin" item of the enclosing case, -1 outside
	for i, raw := range strings.Split(text, "\n") {
		ln := i + 1
		line := raw
		if k := strings.Index(line, "//"); k >= 0 {
			line = line[:k]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "module "):
			rest := strings.TrimPrefix(line, "module ")
			if k := strings.IndexAny(rest, " ("); k >= 0 {
				rest = rest[:k]
			}
			if m.name != "" {
				report(diag.CodeNetParse, diag.Warn, ln, "second module declaration; only the first is linted")
				continue
			}
			m.name = rest
			inHeader = true
		case inHeader && (strings.HasPrefix(line, "input") || strings.HasPrefix(line, "output")):
			kind := "input"
			if strings.HasPrefix(line, "output") {
				kind = "output"
			}
			name, width, ok := parsePortDecl(line)
			if !ok {
				report(diag.CodeNetParse, diag.Warn, ln, fmt.Sprintf("cannot parse port declaration %q", line))
				continue
			}
			declare(&netDecl{name: name, kind: kind, width: width, line: ln})
			if strings.Contains(line, ");") {
				inHeader = false
			}
		case inHeader && strings.HasPrefix(line, ");"):
			inHeader = false
		case strings.HasPrefix(line, "wire") || strings.HasPrefix(line, "reg"):
			kind := "wire"
			if strings.HasPrefix(line, "reg") {
				kind = "reg"
			}
			name, width, ok := parseNetDecl(line)
			if !ok {
				report(diag.CodeNetParse, diag.Warn, ln, fmt.Sprintf("cannot parse declaration %q", line))
				continue
			}
			declare(&netDecl{name: name, kind: kind, width: width, line: ln})
		case strings.HasPrefix(line, "assign "):
			body := strings.TrimSuffix(strings.TrimPrefix(line, "assign "), ";")
			lhs, rhs, ok := strings.Cut(body, "=")
			if !ok {
				report(diag.CodeNetParse, diag.Warn, ln, fmt.Sprintf("cannot parse assign %q", line))
				continue
			}
			m.assigns = append(m.assigns, newAssign(lhs, rhs, ln))
		case strings.Contains(line, "<="):
			k := strings.Index(line, "<=")
			lhsIDs := identsOf(line[:k])
			if len(lhsIDs) == 0 {
				report(diag.CodeNetParse, diag.Warn, ln, fmt.Sprintf("cannot find assignment target in %q", line))
				continue
			}
			rhs := line[k+2:]
			if s := strings.Index(rhs, ";"); s >= 0 {
				rhs = rhs[:s]
			}
			// The target is the identifier immediately before "<="; any
			// earlier identifiers belong to an if/else condition.
			p := newAssign(lhsIDs[len(lhsIDs)-1], rhs, ln)
			p.caseItem = caseItem
			m.procs = append(m.procs, p)
		case isStructuralLine(line):
			// Block structure the value checks don't need — always headers,
			// begin/end, endmodule — except that case scaffolding positions
			// the register writes: "N: begin" opens item N, endcase/default
			// closes it.
			switch {
			case strings.HasPrefix(line, "endcase"), strings.HasPrefix(line, "default"):
				caseItem = -1
			default:
				if k := strings.Index(line, ":"); k > 0 {
					if n, bad := atoiSafe(strings.TrimSpace(line[:k])); !bad {
						caseItem = n
					}
				}
			}
		default:
			report(diag.CodeNetParse, diag.Warn, ln, fmt.Sprintf("construct the netlist parser cannot understand: %q", line))
		}
	}
	if m.name == "" {
		report(diag.CodeNetParse, diag.Error, 1, "no module declaration found")
	}
	return m, out
}

func newAssign(lhs, rhs string, line int) *netAssign {
	// Anything after a stray ";" is not part of the expression; dropping
	// it here keeps renderNetlist∘parseNetlist idempotent.
	if s := strings.Index(rhs, ";"); s >= 0 {
		rhs = rhs[:s]
	}
	a := &netAssign{
		lhs: strings.TrimSpace(lhs), rhs: identsOf(rhs),
		raw: strings.TrimSpace(rhs), caseItem: -1, line: line,
	}
	if isIdent(a.raw) {
		a.rhsIdent = a.raw
	}
	return a
}

// parsePortDecl parses "input  wire [31:0] x," / "output wire y".
func parsePortDecl(line string) (name string, width int, ok bool) {
	line = strings.TrimRight(strings.TrimSpace(line), ",")
	line = strings.TrimSuffix(line, ");")
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", 0, false
	}
	width = 1
	name = fields[len(fields)-1]
	for _, f := range fields[1 : len(fields)-1] {
		if w, isRange := parseRange(f); isRange {
			width = w
		}
	}
	if !isIdent(name) {
		return "", 0, false
	}
	return name, width, true
}

// parseNetDecl parses "wire [31:0] w_x;" / "reg [2:0] state;".
func parseNetDecl(line string) (name string, width int, ok bool) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ";")
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", 0, false
	}
	width = 1
	name = fields[len(fields)-1]
	for _, f := range fields[1 : len(fields)-1] {
		if w, isRange := parseRange(f); isRange {
			width = w
		}
	}
	if !isIdent(name) {
		return "", 0, false
	}
	return name, width, true
}

// parseRange turns "[31:0]" into a width of 32.
func parseRange(s string) (int, bool) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, false
	}
	body := s[1 : len(s)-1]
	hi, lo, ok := strings.Cut(body, ":")
	if !ok {
		return 0, false
	}
	h, herr := atoiSafe(hi)
	l, lerr := atoiSafe(lo)
	if herr || lerr || h < l {
		return 0, false
	}
	return h - l + 1, true
}

func atoiSafe(s string) (int, bool) {
	n := 0
	if s == "" {
		return 0, true
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, true
		}
		n = n*10 + int(r-'0')
	}
	return n, false
}

func isStructuralLine(line string) bool {
	switch {
	case strings.HasPrefix(line, "always "),
		strings.HasPrefix(line, "case"),
		strings.HasPrefix(line, "endcase"),
		strings.HasPrefix(line, "default"),
		strings.HasPrefix(line, "begin"),
		line == "end",
		strings.HasPrefix(line, "end "),
		strings.HasPrefix(line, "endmodule"),
		strings.HasPrefix(line, "if "),
		strings.HasPrefix(line, "if("),
		strings.HasPrefix(line, "else"):
		return true
	}
	// Case items: "3: begin".
	if k := strings.Index(line, ":"); k > 0 {
		if _, bad := atoiSafe(strings.TrimSpace(line[:k])); !bad {
			return true
		}
	}
	return false
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isIdent(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

// identsOf extracts the identifiers an expression reads, skipping
// numeric and based literals like 7 and 32'd0.
func identsOf(expr string) []string {
	var out []string
	i := 0
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == '\'': // based literal: skip the base letter and the value
			i++
			if i < len(expr) {
				i++
			}
			for i < len(expr) && isIdentChar(expr[i]) {
				i++
			}
		case c >= '0' && c <= '9':
			for i < len(expr) && isIdentChar(expr[i]) {
				i++
			}
		case isIdentStart(c):
			j := i
			for j < len(expr) && isIdentChar(expr[j]) {
				j++
			}
			out = append(out, expr[i:j])
			i = j
		default:
			i++
		}
	}
	return out
}

// netExpr is the parsed form of one right-hand side in the emitted
// subset: a bare operand, a unary operator applied to an operand, or a
// binary operator between two operands. The translation-validation pass
// interprets these against symbolic operand values.
type netExpr struct {
	op    op.Kind // Invalid for leaves
	ident string  // leaf: identifier
	lit   int64   // leaf: literal value
	isLit bool
	args  []*netExpr
}

// parseNetExpr parses an assign's right-hand-side text. It accepts
// exactly the shapes internal/emit produces — IDENT, LITERAL, UNOP
// OPERAND, OPERAND BINOP OPERAND, with decimal or 'd-based literals —
// and reports anything else as an error for the caller to diagnose.
func parseNetExpr(raw string) (*netExpr, error) {
	toks, err := tokenizeNetExpr(raw)
	if err != nil {
		return nil, err
	}
	atom := func(t netToken) (*netExpr, bool) {
		switch t.kind {
		case tokIdent:
			return &netExpr{ident: t.text}, true
		case tokLit:
			return &netExpr{lit: t.val, isLit: true}, true
		}
		return nil, false
	}
	switch len(toks) {
	case 1:
		if e, ok := atom(toks[0]); ok {
			return e, nil
		}
	case 2:
		if toks[0].kind == tokOp {
			var k op.Kind
			switch toks[0].text {
			case "-":
				k = op.Neg
			case "~":
				k = op.Not
			}
			if a, ok := atom(toks[1]); k != op.Invalid && ok {
				return &netExpr{op: k, args: []*netExpr{a}}, nil
			}
		}
	case 3:
		a, okA := atom(toks[0])
		c, okC := atom(toks[2])
		if okA && okC && toks[1].kind == tokOp {
			k, err := op.Parse(toks[1].text)
			if err != nil {
				return nil, fmt.Errorf("unknown operator %q", toks[1].text)
			}
			return &netExpr{op: k, args: []*netExpr{a, c}}, nil
		}
	}
	return nil, fmt.Errorf("expression %q is outside the emitted subset", raw)
}

type netTokenKind int

const (
	tokIdent netTokenKind = iota
	tokLit
	tokOp
)

type netToken struct {
	kind netTokenKind
	text string
	val  int64
}

// netExprOps are the operator symbols the tokenizer accepts, longest
// first so "<=" wins over "<".
var netExprOps = []string{"<<", ">>", "<=", ">=", "==", "!=", "+", "-", "*", "/", "&", "|", "^", "~", "<", ">"}

func tokenizeNetExpr(raw string) ([]netToken, error) {
	var toks []netToken
	i := 0
	for i < len(raw) {
		c := raw[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case isIdentStart(c):
			j := i
			for j < len(raw) && isIdentChar(raw[j]) {
				j++
			}
			toks = append(toks, netToken{kind: tokIdent, text: raw[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(raw) && raw[j] >= '0' && raw[j] <= '9' {
				j++
			}
			if j < len(raw) && raw[j] == '\'' {
				// Based literal: WIDTH'dVALUE. Only the decimal base occurs
				// in the emitted subset.
				if j+1 >= len(raw) || raw[j+1] != 'd' {
					return nil, fmt.Errorf("unsupported literal base in %q", raw)
				}
				k := j + 2
				v := int64(0)
				digits := 0
				for k < len(raw) && raw[k] >= '0' && raw[k] <= '9' {
					v = v*10 + int64(raw[k]-'0')
					digits++
					k++
				}
				if digits == 0 {
					return nil, fmt.Errorf("malformed based literal in %q", raw)
				}
				toks = append(toks, netToken{kind: tokLit, val: v})
				i = k
				continue
			}
			v := int64(0)
			for _, d := range raw[i:j] {
				v = v*10 + int64(d-'0')
			}
			toks = append(toks, netToken{kind: tokLit, val: v})
			i = j
		default:
			matched := ""
			for _, sym := range netExprOps {
				if strings.HasPrefix(raw[i:], sym) {
					matched = sym
					break
				}
			}
			if matched == "" {
				return nil, fmt.Errorf("unexpected character %q in %q", string(c), raw)
			}
			toks = append(toks, netToken{kind: tokOp, text: matched})
			i += len(matched)
		}
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty expression")
	}
	return toks, nil
}

// netKeywords are the tokens that select a parser branch by line
// prefix. An assignment target with one of these names would render
// into a line the parser reads as something else entirely, so the
// normal form drops such assignments (they can only come from
// malformed input, never from the emitter).
var netKeywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"wire": true, "reg": true, "assign": true, "always": true,
	"case": true, "endcase": true, "default": true, "begin": true,
	"end": true, "if": true, "else": true,
}

// renderableLHS reports whether an assignment target survives the
// render → parse round trip as the same construct.
func renderableLHS(lhs string) bool {
	return isIdent(lhs) && !netKeywords[lhs]
}

// renderNetlist prints the parsed module back as source the parser
// accepts. It is the normal form behind the parser's round-trip
// property (FuzzParseNetlist): for any input, parse∘render is the
// identity on the rendered text — render(parse(render(parse(x)))) ==
// render(parse(x)).
func renderNetlist(m *netModule) string {
	var b strings.Builder
	var ports []*netDecl
	for _, n := range m.order {
		if d := m.decls[n]; d.kind == "input" || d.kind == "output" {
			ports = append(ports, d)
		}
	}
	name := m.name
	if name == "" && len(ports) > 0 {
		name = "m" // port decls need a header to parse; normalize one in
	}
	if name != "" {
		fmt.Fprintf(&b, "module %s (\n", name)
		for i, d := range ports {
			dir := "input "
			if d.kind == "output" {
				dir = "output"
			}
			comma := ","
			if i == len(ports)-1 {
				comma = ""
			}
			if d.width > 1 {
				fmt.Fprintf(&b, "    %s wire [%d:0] %s%s\n", dir, d.width-1, d.name, comma)
			} else {
				fmt.Fprintf(&b, "    %s wire %s%s\n", dir, d.name, comma)
			}
		}
		b.WriteString(");\n")
	}
	for _, n := range m.order {
		d := m.decls[n]
		if d.kind == "input" || d.kind == "output" {
			continue
		}
		if d.width > 1 {
			fmt.Fprintf(&b, "%s [%d:0] %s;\n", d.kind, d.width-1, d.name)
		} else {
			fmt.Fprintf(&b, "%s %s;\n", d.kind, d.name)
		}
	}
	for _, a := range m.assigns {
		if !renderableLHS(a.lhs) {
			continue
		}
		fmt.Fprintf(&b, "assign %s = %s;\n", a.lhs, a.raw)
	}
	var plain []*netAssign
	var items []int
	byItem := make(map[int][]*netAssign)
	for _, p := range m.procs {
		if !renderableLHS(p.lhs) {
			continue
		}
		if p.caseItem < 0 {
			plain = append(plain, p)
			continue
		}
		if _, ok := byItem[p.caseItem]; !ok {
			items = append(items, p.caseItem)
		}
		byItem[p.caseItem] = append(byItem[p.caseItem], p)
	}
	if len(plain) > 0 {
		b.WriteString("always @(posedge clk) begin\n")
		for _, p := range plain {
			fmt.Fprintf(&b, "    %s <= %s;\n", p.lhs, p.raw)
		}
		b.WriteString("end\n")
	}
	if len(items) > 0 {
		b.WriteString("always @(posedge clk) begin\n")
		b.WriteString("case (state)\n")
		for _, item := range items {
			fmt.Fprintf(&b, "%d: begin\n", item)
			for _, p := range byItem[item] {
				fmt.Fprintf(&b, "    %s <= %s;\n", p.lhs, p.raw)
			}
			b.WriteString("end\n")
		}
		b.WriteString("endcase\n")
		b.WriteString("end\n")
	}
	if name != "" {
		b.WriteString("endmodule\n")
	}
	return b.String()
}
