package lint

import (
	"fmt"
	"strings"

	"repro/internal/diag"
)

// verilog.go is a small parser for the structural-Verilog subset
// internal/emit produces: one module, scalar/vector port and net
// declarations, continuous assigns, and always-blocks whose bodies are
// nonblocking assignments (possibly behind if/else or case items). It
// reconstructs enough structure — declarations with widths, drivers,
// uses — for the netlist analyzer to re-check the emitted text without
// trusting the emitter.

type netDecl struct {
	name  string
	kind  string // "input", "output", "wire", "reg"
	width int
	line  int
}

type netAssign struct {
	lhs      string
	rhs      []string // identifiers read by the right-hand side
	rhsIdent string   // non-empty when the RHS is a single bare identifier
	line     int
}

type netModule struct {
	name    string
	decls   map[string]*netDecl
	order   []string     // declaration order, for deterministic reports
	assigns []*netAssign // continuous (assign ... = ...)
	procs   []*netAssign // procedural (... <= ...)
}

// parseNetlist parses the emitted text, reporting HL0505 duplicate
// declarations and HL0508 unparseable constructs as it goes.
func parseNetlist(text string) (*netModule, diag.List) {
	m := &netModule{decls: make(map[string]*netDecl)}
	var out diag.List
	report := func(code string, sev diag.Severity, line int, msg string) {
		out = append(out, diag.Diagnostic{
			Code: code, Severity: sev, Artifact: "netlist",
			Loc: fmt.Sprintf("line %d", line), Message: msg,
		})
	}
	declare := func(d *netDecl) {
		if prev, dup := m.decls[d.name]; dup {
			report(diag.CodeNetDupDecl, diag.Error, d.line,
				fmt.Sprintf("identifier %q declared twice (lines %d and %d)", d.name, prev.line, d.line))
			return
		}
		m.decls[d.name] = d
		m.order = append(m.order, d.name)
	}

	inHeader := false
	for i, raw := range strings.Split(text, "\n") {
		ln := i + 1
		line := raw
		if k := strings.Index(line, "//"); k >= 0 {
			line = line[:k]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "module "):
			rest := strings.TrimPrefix(line, "module ")
			if k := strings.IndexAny(rest, " ("); k >= 0 {
				rest = rest[:k]
			}
			if m.name != "" {
				report(diag.CodeNetParse, diag.Warn, ln, "second module declaration; only the first is linted")
				continue
			}
			m.name = rest
			inHeader = true
		case inHeader && (strings.HasPrefix(line, "input") || strings.HasPrefix(line, "output")):
			kind := "input"
			if strings.HasPrefix(line, "output") {
				kind = "output"
			}
			name, width, ok := parsePortDecl(line)
			if !ok {
				report(diag.CodeNetParse, diag.Warn, ln, fmt.Sprintf("cannot parse port declaration %q", line))
				continue
			}
			declare(&netDecl{name: name, kind: kind, width: width, line: ln})
			if strings.Contains(line, ");") {
				inHeader = false
			}
		case inHeader && strings.HasPrefix(line, ");"):
			inHeader = false
		case strings.HasPrefix(line, "wire") || strings.HasPrefix(line, "reg"):
			kind := "wire"
			if strings.HasPrefix(line, "reg") {
				kind = "reg"
			}
			name, width, ok := parseNetDecl(line)
			if !ok {
				report(diag.CodeNetParse, diag.Warn, ln, fmt.Sprintf("cannot parse declaration %q", line))
				continue
			}
			declare(&netDecl{name: name, kind: kind, width: width, line: ln})
		case strings.HasPrefix(line, "assign "):
			body := strings.TrimSuffix(strings.TrimPrefix(line, "assign "), ";")
			lhs, rhs, ok := strings.Cut(body, "=")
			if !ok {
				report(diag.CodeNetParse, diag.Warn, ln, fmt.Sprintf("cannot parse assign %q", line))
				continue
			}
			m.assigns = append(m.assigns, newAssign(lhs, rhs, ln))
		case strings.Contains(line, "<="):
			k := strings.Index(line, "<=")
			lhsIDs := identsOf(line[:k])
			if len(lhsIDs) == 0 {
				report(diag.CodeNetParse, diag.Warn, ln, fmt.Sprintf("cannot find assignment target in %q", line))
				continue
			}
			rhs := line[k+2:]
			if s := strings.Index(rhs, ";"); s >= 0 {
				rhs = rhs[:s]
			}
			// The target is the identifier immediately before "<="; any
			// earlier identifiers belong to an if/else condition.
			m.procs = append(m.procs, newAssign(lhsIDs[len(lhsIDs)-1], rhs, ln))
		case isStructuralLine(line):
			// Block structure the checks don't need: always headers, case
			// scaffolding, begin/end, endmodule.
		default:
			report(diag.CodeNetParse, diag.Warn, ln, fmt.Sprintf("construct the netlist parser cannot understand: %q", line))
		}
	}
	if m.name == "" {
		report(diag.CodeNetParse, diag.Error, 1, "no module declaration found")
	}
	return m, out
}

func newAssign(lhs, rhs string, line int) *netAssign {
	a := &netAssign{lhs: strings.TrimSpace(lhs), rhs: identsOf(rhs), line: line}
	if single := strings.TrimSpace(rhs); isIdent(single) {
		a.rhsIdent = single
	}
	return a
}

// parsePortDecl parses "input  wire [31:0] x," / "output wire y".
func parsePortDecl(line string) (name string, width int, ok bool) {
	line = strings.TrimRight(strings.TrimSpace(line), ",")
	line = strings.TrimSuffix(line, ");")
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", 0, false
	}
	width = 1
	name = fields[len(fields)-1]
	for _, f := range fields[1 : len(fields)-1] {
		if w, isRange := parseRange(f); isRange {
			width = w
		}
	}
	if !isIdent(name) {
		return "", 0, false
	}
	return name, width, true
}

// parseNetDecl parses "wire [31:0] w_x;" / "reg [2:0] state;".
func parseNetDecl(line string) (name string, width int, ok bool) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ";")
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", 0, false
	}
	width = 1
	name = fields[len(fields)-1]
	for _, f := range fields[1 : len(fields)-1] {
		if w, isRange := parseRange(f); isRange {
			width = w
		}
	}
	if !isIdent(name) {
		return "", 0, false
	}
	return name, width, true
}

// parseRange turns "[31:0]" into a width of 32.
func parseRange(s string) (int, bool) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, false
	}
	body := s[1 : len(s)-1]
	hi, lo, ok := strings.Cut(body, ":")
	if !ok {
		return 0, false
	}
	h, herr := atoiSafe(hi)
	l, lerr := atoiSafe(lo)
	if herr || lerr || h < l {
		return 0, false
	}
	return h - l + 1, true
}

func atoiSafe(s string) (int, bool) {
	n := 0
	if s == "" {
		return 0, true
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, true
		}
		n = n*10 + int(r-'0')
	}
	return n, false
}

func isStructuralLine(line string) bool {
	switch {
	case strings.HasPrefix(line, "always "),
		strings.HasPrefix(line, "case"),
		strings.HasPrefix(line, "endcase"),
		strings.HasPrefix(line, "default"),
		strings.HasPrefix(line, "begin"),
		line == "end",
		strings.HasPrefix(line, "end "),
		strings.HasPrefix(line, "endmodule"),
		strings.HasPrefix(line, "if "),
		strings.HasPrefix(line, "if("),
		strings.HasPrefix(line, "else"):
		return true
	}
	// Case items: "3: begin".
	if k := strings.Index(line, ":"); k > 0 {
		if _, bad := atoiSafe(strings.TrimSpace(line[:k])); !bad {
			return true
		}
	}
	return false
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isIdent(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

// identsOf extracts the identifiers an expression reads, skipping
// numeric and based literals like 7 and 32'd0.
func identsOf(expr string) []string {
	var out []string
	i := 0
	for i < len(expr) {
		c := expr[i]
		switch {
		case c == '\'': // based literal: skip the base letter and the value
			i++
			if i < len(expr) {
				i++
			}
			for i < len(expr) && isIdentChar(expr[i]) {
				i++
			}
		case c >= '0' && c <= '9':
			for i < len(expr) && isIdentChar(expr[i]) {
				i++
			}
		case isIdentStart(c):
			j := i
			for j < len(expr) && isIdentChar(expr[j]) {
				j++
			}
			out = append(out, expr[i:j])
			i = j
		default:
			i++
		}
	}
	return out
}
