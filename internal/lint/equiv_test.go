package lint_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/lint"
)

// synthUnit synthesizes one benchmark end to end at its tightest time
// constraint and wraps every artifact for certification.
func synthUnit(t *testing.T, ex *benchmarks.Example) *lint.Unit {
	t.Helper()
	cfg := core.Config{CS: ex.TimeConstraints[0], ClockNs: ex.ClockNs}
	d, err := core.Synthesize(ex.Graph, cfg)
	if err != nil {
		t.Fatalf("%s: %v", ex.Name, err)
	}
	return d.LintUnit()
}

func certify(t *testing.T, u *lint.Unit) *lint.Certificate {
	t.Helper()
	cert, err := lint.Certify(context.Background(), u)
	if err != nil {
		t.Fatalf("certify: %v", err)
	}
	return cert
}

// TestCertifyCleanBenchmarks is the positive half of the soundness
// argument: every paper benchmark, synthesized in both datapath styles,
// must come back certified on every layer, with the concrete N-seed
// cross-check backing the symbolic proof.
func TestCertifyCleanBenchmarks(t *testing.T) {
	for _, ex := range benchmarks.All() {
		for _, style := range []int{1, 2} {
			cfg := core.Config{CS: ex.TimeConstraints[0], ClockNs: ex.ClockNs, Style: style}
			d, err := core.Synthesize(ex.Graph, cfg)
			if err != nil {
				t.Fatalf("%s style %d: %v", ex.Name, style, err)
			}
			cert, err := d.Certify()
			if err != nil {
				t.Fatalf("%s style %d: %v", ex.Name, style, err)
			}
			if cert.Status != "certified" {
				t.Errorf("%s style %d: status %q, diagnostics:\n%s",
					ex.Name, style, cert.Status, format(cert.Diagnostics))
			}
			if !strings.HasPrefix(cert.CrossCheck, "pass") {
				t.Errorf("%s style %d: cross-check %q", ex.Name, style, cert.CrossCheck)
			}
			for _, p := range cert.Outputs {
				if p.Datapath != "equal" || (p.Netlist != "equal" && p.Netlist != "skipped") {
					t.Errorf("%s style %d: output %q proof = %+v", ex.Name, style, p.Output, p)
				}
			}
		}
	}
}

// TestCertifySkipsWithoutDatapath asserts an MFS-only unit is reported
// "skipped", not silently certified.
func TestCertifySkipsWithoutDatapath(t *testing.T) {
	cert := certify(t, mfsUnit(t))
	if cert.Status != "skipped" || len(cert.Diagnostics) != 0 {
		t.Fatalf("status %q with %d diagnostics, want clean skip", cert.Status, len(cert.Diagnostics))
	}
}

// mutationExpectations maps each registered corruption to the
// diagnostic codes that legitimately catch it. A mutation may surface
// as a root divergence or as the structural defect that blocks the walk
// before the divergence forms; both refute the certificate.
var mutationExpectations = map[string][]string{
	"commute-sub":   {diag.CodeEquivNetlist},
	"drop-register": {diag.CodeEquivRegister},
	"rebind-alu":    {diag.CodeEquivDatapath, diag.CodeEquivStructure, diag.CodeEquivRegister},
	"shift-action":  {diag.CodeEquivStructure, diag.CodeEquivDatapath, diag.CodeEquivRegister},
	"swap-mux":      {diag.CodeEquivDatapath, diag.CodeEquivStructure, diag.CodeEquivRegister},
}

// TestMutationHarness is the negative half of the soundness argument:
// seeded corruptions of real synthesis bugs — a swapped multiplexer
// input, an operation issued one step late, a deallocated register, an
// action bound to the wrong ALU, commuted subtraction operands in the
// netlist — must each be refused certification on every benchmark whose
// structure exposes the seam, with a typed diagnostic from the expected
// class and a concrete counterexample witness.
func TestMutationHarness(t *testing.T) {
	exs := benchmarks.All()
	if testing.Short() {
		exs = exs[:2]
	}
	for _, m := range lint.Mutations() {
		expect, ok := mutationExpectations[m.Name]
		if !ok {
			t.Fatalf("mutation %q has no expectation entry", m.Name)
		}
		applied := 0
		t.Run(m.Name, func(t *testing.T) {
			for _, ex := range exs {
				u := synthUnit(t, ex) // fresh unit: mutations corrupt in place
				if err := m.Apply(u); err != nil {
					t.Logf("%s: not applicable: %v", ex.Name, err)
					continue
				}
				applied++
				cert := certify(t, u)
				if cert.Status != "refuted" {
					t.Errorf("%s: %s not caught (status %q)", ex.Name, m.Name, cert.Status)
					continue
				}
				if !hasAnyCode(cert.Diagnostics, expect) {
					t.Errorf("%s: %s caught with unexpected codes:\n%s",
						ex.Name, m.Name, format(cert.Diagnostics))
				}
				if !hasCounterexample(cert.Diagnostics) {
					t.Errorf("%s: %s refuted without a concrete counterexample:\n%s",
						ex.Name, m.Name, format(cert.Diagnostics))
				}
				// The simulator executes schedule and datapath, so a
				// datapath-level corruption must also be confirmed
				// concretely, not just symbolically.
				if m.Name == "drop-register" && !hasSimConfirmed(cert.Diagnostics) {
					t.Errorf("%s: %s counterexample not simulator-confirmed:\n%s",
						ex.Name, m.Name, format(cert.Diagnostics))
				}
			}
			if min := 3; !testing.Short() && applied < min {
				t.Errorf("%s applied to only %d benchmarks, want >= %d", m.Name, applied, min)
			}
		})
	}
}

func hasAnyCode(ds diag.List, codes []string) bool {
	for _, c := range codes {
		if hasCode(ds, c) {
			return true
		}
	}
	return false
}

func hasCounterexample(ds diag.List) bool {
	for _, d := range ds {
		if d.Counterexample != nil {
			return true
		}
	}
	return false
}

func hasSimConfirmed(ds diag.List) bool {
	for _, d := range ds {
		if d.Counterexample != nil && d.Counterexample.SimConfirmed {
			return true
		}
	}
	return false
}

// TestSweepPointsCertify re-synthesizes every design point of a
// cost/time sweep and certifies each one: the whole trade-off curve a
// user would explore is translation-validated, not just the committed
// constraint.
func TestSweepPointsCertify(t *testing.T) {
	ex := benchmarks.Facet()
	points, err := core.Sweep(ex.Graph, core.Config{}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("empty sweep")
	}
	for _, p := range points {
		d, err := core.Synthesize(ex.Graph, core.Config{CS: p.CS})
		if err != nil {
			t.Fatalf("cs=%d: %v", p.CS, err)
		}
		cert, err := d.Certify()
		if err != nil {
			t.Fatalf("cs=%d: %v", p.CS, err)
		}
		if cert.Status != "certified" {
			t.Errorf("cs=%d: status %q:\n%s", p.CS, cert.Status, format(cert.Diagnostics))
		}
	}
}

// TestCertifyEWFBudget bounds the pass on the largest benchmark: the
// elliptic wave filter (34 operations, 17 control steps) must certify
// well inside the 2-second budget the ISSUE sets.
func TestCertifyEWFBudget(t *testing.T) {
	ex := benchmarks.EWF()
	u := synthUnit(t, ex)
	start := time.Now()
	cert := certify(t, u)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("EWF certification took %v, budget 2s", elapsed)
	}
	if cert.Status != "certified" {
		t.Errorf("EWF: status %q:\n%s", cert.Status, format(cert.Diagnostics))
	}
}

// TestCertifyCancellation asserts a cancelled certification returns
// promptly with the context's error instead of finishing the proof.
func TestCertifyCancellation(t *testing.T) {
	u := synthUnit(t, benchmarks.EWF())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := lint.Certify(ctx, u)
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("cancelled certify returned after %v, want < 100ms", elapsed)
	}
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestMutationRegistry pins the registry's shape: sorted, documented,
// and closed under ApplyMutation's name lookup.
func TestMutationRegistry(t *testing.T) {
	ms := lint.Mutations()
	if len(ms) < 5 {
		t.Fatalf("%d mutations registered, want >= 5", len(ms))
	}
	for i, m := range ms {
		if m.Doc == "" || m.Apply == nil {
			t.Errorf("mutation %q lacks doc or apply", m.Name)
		}
		if i > 0 && ms[i-1].Name >= m.Name {
			t.Errorf("registry not sorted: %q before %q", ms[i-1].Name, m.Name)
		}
	}
	if err := lint.ApplyMutation(&lint.Unit{}, "no-such-mutation"); err == nil {
		t.Error("unknown mutation name did not error")
	}
}
