package lint_test

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/diag"
	"repro/internal/grid"
	"repro/internal/lint"
	"repro/internal/sched"
)

// mfsUnit schedules the FACET example with MFS (trace recorded, no
// datapath) and wraps it for linting.
func mfsUnit(t *testing.T) *lint.Unit {
	t.Helper()
	ex := benchmarks.Facet()
	d, err := core.ScheduleOnly(ex.Graph, core.Config{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	return &lint.Unit{Graph: d.Graph, Schedule: d.Schedule}
}

// mfsaUnit synthesizes the FACET example end to end (schedule, datapath,
// controller, netlist) and wraps every artifact for linting.
func mfsaUnit(t *testing.T) *lint.Unit {
	t.Helper()
	ex := benchmarks.Facet()
	d, err := core.Synthesize(ex.Graph, core.Config{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	net, err := d.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	return &lint.Unit{
		Graph:      d.Graph,
		Schedule:   d.Schedule,
		Datapath:   d.Datapath,
		Controller: d.Controller,
		Netlist:    net,
	}
}

func runOne(t *testing.T, u *lint.Unit, analyzer string) diag.List {
	t.Helper()
	ds, err := lint.Run(u, lint.Options{Analyzers: []string{analyzer}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if _, ok := diag.Docs[d.Code]; !ok {
			t.Errorf("produced code %s is not in the diag.Docs registry", d.Code)
		}
	}
	return ds
}

func hasCode(ds diag.List, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

// traceStepFor finds the recorded trace step that committed the named
// node.
func traceStepFor(t *testing.T, u *lint.Unit, name string) *sched.TraceStep {
	t.Helper()
	n, ok := u.Graph.Lookup(name)
	if !ok {
		t.Fatalf("node %q not in graph", name)
	}
	st, ok := u.Schedule.Trace.StepFor(n.ID)
	if !ok {
		t.Fatalf("node %q has no trace step", name)
	}
	return st
}

func TestCleanDesignsHaveNoFindings(t *testing.T) {
	for name, u := range map[string]*lint.Unit{"mfs": mfsUnit(t), "mfsa": mfsaUnit(t)} {
		ds, err := lint.Run(u, lint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) != 0 {
			t.Errorf("%s: clean design produced %d diagnostics:\n%s", name, len(ds), format(ds))
		}
	}
}

// TestAnalyzersCatchCorruption injects one defect per diagnostic class
// into an otherwise-clean design and asserts the owning analyzer
// reports the expected code.
func TestAnalyzersCatchCorruption(t *testing.T) {
	tests := []struct {
		name     string
		analyzer string
		want     string
		unit     func(t *testing.T) *lint.Unit // defaults to mfsaUnit
		corrupt  func(t *testing.T, u *lint.Unit)
	}{
		{
			name: "dangling edge", analyzer: "dfg", want: diag.CodeDFGUndefined,
			corrupt: func(t *testing.T, u *lint.Unit) {
				mutateNode(t, u, "mul").Args[0] = "ghost"
			},
		},
		{
			name: "dataflow cycle", analyzer: "dfg", want: diag.CodeDFGCycle,
			corrupt: func(t *testing.T, u *lint.Unit) {
				// add1 feeds mul feeds div feeds and; pointing add1 at
				// "and" closes the loop.
				mutateNode(t, u, "add1").Args[0] = "and"
			},
		},
		{
			name: "bad cycle count", analyzer: "dfg", want: diag.CodeDFGBadCycles,
			corrupt: func(t *testing.T, u *lint.Unit) {
				mutateNode(t, u, "mul").Cycles = 0
			},
		},
		{
			name: "dead node", analyzer: "dfg", want: diag.CodeDFGDeadNode,
			corrupt: func(t *testing.T, u *lint.Unit) {
				// Declaring "and" the only output orphans the or-branch.
				u.Outputs = []string{"and"}
			},
		},
		{
			name: "placement outside window", analyzer: "frames", want: diag.CodeSchedWindow,
			unit: mfsUnit,
			corrupt: func(t *testing.T, u *lint.Unit) {
				n, _ := u.Graph.Lookup("add1")
				p := u.Schedule.Placements[n.ID]
				p.Step = 4 // add1's ALAP is 1: three ops chain after it
				u.Schedule.Placements[n.ID] = p
			},
		},
		{
			name: "move-frame identity broken", analyzer: "frames", want: diag.CodeFrameIdentity,
			unit: mfsUnit,
			corrupt: func(t *testing.T, u *lint.Unit) {
				traceStepFor(t, u, "mul").MF.Add(grid.Pos{Step: 99, Index: 99})
			},
		},
		{
			name: "commit outside move frame", analyzer: "frames", want: diag.CodeFrameMember,
			unit: mfsUnit,
			corrupt: func(t *testing.T, u *lint.Unit) {
				// Moving the committed position off the recorded move frame
				// (rather than deleting from it) breaks membership.
				st := traceStepFor(t, u, "mul")
				st.Pos = grid.Pos{Step: 98, Index: 98}
			},
		},
		{
			name: "recorded frames diverge from re-derivation", analyzer: "frames", want: diag.CodeFrameMismatch,
			unit: mfsUnit,
			corrupt: func(t *testing.T, u *lint.Unit) {
				traceStepFor(t, u, "mul").FF.Add(grid.Pos{Step: 1, Index: 99})
			},
		},
		{
			name: "recorded energy diverges", analyzer: "liapunov", want: diag.CodeLiapEnergy,
			unit: mfsUnit,
			corrupt: func(t *testing.T, u *lint.Unit) {
				traceStepFor(t, u, "mul").Energy += 5
			},
		},
		{
			name: "non-decreasing V(X) step", analyzer: "liapunov", want: diag.CodeLiapDescent,
			unit: mfsUnit,
			corrupt: func(t *testing.T, u *lint.Unit) {
				// "or" is the last op of a four-op chain, so it commits at
				// step 4; injecting a free step-1 position into its recorded
				// move frame fabricates a cheaper move the scheduler
				// "ignored".
				st := traceStepFor(t, u, "or")
				if st.Pos.Step < 2 {
					t.Fatalf("or committed at step %d; expected a late step", st.Pos.Step)
				}
				st.MF.Add(grid.Pos{Step: 1, Index: 1})
			},
		},
		{
			name: "committed worse than a candidate", analyzer: "liapunov", want: diag.CodeLiapCandidate,
			corrupt: func(t *testing.T, u *lint.Unit) {
				// MFSA traces carry the evaluated candidate set; raising the
				// recorded commit energy above the cheapest candidate breaks
				// minimality.
				steps := u.Schedule.Trace.Steps
				for i := range steps {
					if len(steps[i].Candidates) > 0 {
						steps[i].Energy += 1000
						return
					}
				}
				t.Fatal("no trace step with candidates")
			},
		},
		{
			name: "register lifetime overlap", analyzer: "alloc", want: diag.CodeRegOverlap,
			corrupt: func(t *testing.T, u *lint.Unit) {
				for i, reg := range u.Datapath.Registers {
					for _, iv := range reg {
						if iv.Stored() {
							u.Datapath.Registers[i] = append(u.Datapath.Registers[i], iv)
							return
						}
					}
				}
				t.Fatal("no stored interval to duplicate")
			},
		},
		{
			name: "binding step disagrees with schedule", analyzer: "alloc", want: diag.CodeAllocStep,
			corrupt: func(t *testing.T, u *lint.Unit) {
				u.Datapath.ALUs[0].Ops[0].Step++
			},
		},
		{
			name: "mux input names nothing", analyzer: "alloc", want: diag.CodeMuxUnknown,
			corrupt: func(t *testing.T, u *lint.Unit) {
				a := u.Datapath.ALUs[0]
				a.L1 = append(a.L1, "ghost")
			},
		},
		{
			name: "state numbering broken", analyzer: "ctrl", want: diag.CodeCtrlNumbering,
			corrupt: func(t *testing.T, u *lint.Unit) {
				u.Controller.States[0].Step = 99
			},
		},
		{
			name: "register write race", analyzer: "ctrl", want: diag.CodeCtrlWriteRace,
			corrupt: func(t *testing.T, u *lint.Unit) {
				for _, st := range u.Controller.States {
					if len(st.Writes) > 0 {
						st.Writes = append(st.Writes, st.Writes[0])
						u.Controller.States[st.Step-1].Writes = st.Writes
						return
					}
				}
				t.Fatal("no state with a register write")
			},
		},
		{
			name: "action in the wrong state", analyzer: "ctrl", want: diag.CodeCtrlActionStep,
			corrupt: func(t *testing.T, u *lint.Unit) {
				for si := range u.Controller.States {
					if len(u.Controller.States[si].Actions) > 0 {
						u.Controller.States[si].Actions[0].Node = 9999
						return
					}
				}
				t.Fatal("no state with an action")
			},
		},
		{
			name: "netlist duplicate declaration", analyzer: "netlist", want: diag.CodeNetDupDecl,
			corrupt: func(t *testing.T, u *lint.Unit) {
				u.Netlist += "\nwire [31:0] w_add1;\n"
			},
		},
		{
			name: "netlist undriven wire", analyzer: "netlist", want: diag.CodeNetUndriven,
			corrupt: func(t *testing.T, u *lint.Unit) {
				u.Netlist = dropLine(t, u.Netlist, "assign w_add1 ")
			},
		},
		{
			name: "netlist multiple drivers", analyzer: "netlist", want: diag.CodeNetMultiDriven,
			corrupt: func(t *testing.T, u *lint.Unit) {
				u.Netlist += "\nassign w_add1 = w_add2;\n"
			},
		},
		{
			name: "netlist undeclared identifier", analyzer: "netlist", want: diag.CodeNetUndeclared,
			corrupt: func(t *testing.T, u *lint.Unit) {
				u.Netlist += "\nassign w_add1 = phantom;\n"
			},
		},
		{
			name: "netlist width mismatch", analyzer: "netlist", want: diag.CodeNetWidth,
			corrupt: func(t *testing.T, u *lint.Unit) {
				u.Netlist += "\nwire [15:0] narrow;\nassign narrow = w_add1;\n"
			},
		},
		{
			name: "netlist combinational loop", analyzer: "netlist", want: diag.CodeNetCombLoop,
			corrupt: func(t *testing.T, u *lint.Unit) {
				u.Netlist += "\nwire [31:0] la;\nwire [31:0] lb;\nassign la = lb;\nassign lb = la;\n"
			},
		},
		{
			name: "netlist unparseable construct", analyzer: "netlist", want: diag.CodeNetParse,
			corrupt: func(t *testing.T, u *lint.Unit) {
				u.Netlist += "\ninitial $display(\"hi\");\n"
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			build := tc.unit
			if build == nil {
				build = mfsaUnit
			}
			u := build(t)
			tc.corrupt(t, u)
			ds := runOne(t, u, tc.analyzer)
			if !hasCode(ds, tc.want) {
				t.Errorf("corruption not caught: want %s (%s), got:\n%s",
					tc.want, diag.Docs[tc.want], format(ds))
			}
		})
	}
}

// mutateNode returns the named node for in-place corruption.
func mutateNode(t *testing.T, u *lint.Unit, name string) *dfg.Node {
	t.Helper()
	n, ok := u.Graph.Lookup(name)
	if !ok {
		t.Fatalf("node %q not in graph", name)
	}
	return n
}

// dropLine removes the first line containing the marker.
func dropLine(t *testing.T, text, marker string) string {
	t.Helper()
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		if strings.Contains(l, marker) {
			return strings.Join(append(lines[:i:i], lines[i+1:]...), "\n")
		}
	}
	t.Fatalf("marker %q not in netlist", marker)
	return ""
}

func format(ds diag.List) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

func TestUnknownAnalyzerFails(t *testing.T) {
	if _, err := lint.Run(mfsUnit(t), lint.Options{Analyzers: []string{"nope"}}); err == nil {
		t.Fatal("expected an error for an unknown analyzer")
	}
}

func TestRegistryIsSortedAndDocumented(t *testing.T) {
	as := lint.Analyzers()
	for i, a := range as {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		if i > 0 && as[i-1].Name >= a.Name {
			t.Errorf("registry not sorted: %s before %s", as[i-1].Name, a.Name)
		}
	}
	// HL = artifact lint (this package), HV = source invariants
	// (internal/vet); both live in the shared diag catalog.
	codeRe := regexp.MustCompile(`^H[LV]\d{4}$`)
	for code, doc := range diag.Docs {
		if !codeRe.MatchString(code) {
			t.Errorf("malformed code %q", code)
		}
		if doc == "" {
			t.Errorf("code %s has an empty doc", code)
		}
	}
}

// TestDeterministicAcrossParallelism asserts a lint run is identical at
// every worker count.
func TestDeterministicAcrossParallelism(t *testing.T) {
	u := mfsaUnit(t)
	u.Netlist += "\nassign w_add1 = phantom;\nwire [31:0] w_add1;\n"
	var base diag.List
	for _, par := range []int{1, 2, 0} {
		ds, err := lint.Run(u, lint.Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = ds
			if len(base) == 0 {
				t.Fatal("expected findings from the corrupted netlist")
			}
			continue
		}
		if len(ds) != len(base) {
			t.Fatalf("parallelism %d: %d findings, want %d", par, len(ds), len(base))
		}
		for i := range ds {
			if ds[i] != base[i] {
				t.Errorf("parallelism %d: finding %d differs: %v vs %v", par, i, ds[i], base[i])
			}
		}
	}
}

// TestBenchmarksAuditClean drives every paper benchmark the way the
// evaluation does — MFS at each Table 1 time constraint (plus the
// structurally pipelined variant) and MFSA in both styles at the
// tightest constraint — and asserts the full analyzer suite, including
// the Liapunov trajectory replay, finds nothing.
func TestBenchmarksAuditClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark audit")
	}
	audit := func(label string, d *core.Design, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		ds, err := d.Lint()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(ds) != 0 {
			t.Errorf("%s: %d findings on a clean design:\n%s", label, len(ds), format(ds))
		}
	}
	for _, ex := range benchmarks.All() {
		for _, cs := range ex.TimeConstraints {
			cfg := core.Config{CS: cs, ClockNs: ex.ClockNs}
			if ex.Latency != nil {
				cfg.Latency = ex.Latency(cs)
			}
			d, err := core.ScheduleOnly(ex.Graph, cfg)
			audit(ex.Name+"/mfs", d, err)
			if len(ex.PipelinedOps) > 0 {
				cfg.PipelinedOps = ex.PipelinedOps
				d, err := core.ScheduleOnly(ex.Graph, cfg)
				audit(ex.Name+"/mfs-pipelined", d, err)
			}
		}
		for _, style := range []int{1, 2} {
			cfg := core.Config{CS: ex.TimeConstraints[0], ClockNs: ex.ClockNs, Style: style, Lint: true}
			if _, err := core.Synthesize(ex.Graph, cfg); err != nil {
				t.Errorf("%s style %d with the lint gate on: %v", ex.Name, style, err)
			}
		}
	}
}
