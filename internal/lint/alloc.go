package lint

import (
	"context"
	"fmt"

	"repro/internal/diag"
	"repro/internal/mfsa"
)

// allocAnalyzer checks the RTL datapath: the structural invariants
// (rtl.ValidateAll — overlapping register lifetimes, duplicate
// bindings, duplicate multiplexer inputs), binding-vs-schedule
// consistency, multiplexer input resolution against the design's
// signals, unit capability coverage, and the style-2 restriction when
// the design claims it.
var allocAnalyzer = &Analyzer{
	Name: "alloc",
	Doc:  "datapath allocation: register overlaps, binding consistency, mux inputs, unit capability",
	Run:  runAlloc,
}

func runAlloc(ctx context.Context, u *Unit) diag.List {
	dp := u.Datapath
	if dp == nil || u.Graph == nil {
		return nil
	}
	g := u.Graph
	out := dp.ValidateAll()
	report := func(code, loc, msg string) {
		out = append(out, diag.Diagnostic{
			Code: code, Severity: diag.Error, Artifact: "datapath",
			Loc: loc, Message: msg,
		})
	}

	inputs := make(map[string]bool)
	for _, in := range g.Inputs() {
		inputs[in] = true
	}
	bound := make(map[int]bool) // node IDs with a binding
	for _, a := range dp.ALUs {
		for _, l := range [][]string{a.L1, a.L2} {
			for _, sig := range l {
				if inputs[sig] {
					continue
				}
				if _, ok := g.Lookup(sig); !ok {
					report(diag.CodeMuxUnknown, a.Name,
						fmt.Sprintf("ALU %s: multiplexer input %q names no primary input or node output", a.Name, sig))
				}
			}
		}
		for _, b := range a.Ops {
			if int(b.Node) < 0 || int(b.Node) >= g.Len() {
				report(diag.CodeALUUnplaced, a.Name,
					fmt.Sprintf("ALU %s binds node %d, which the graph does not have", a.Name, b.Node))
				continue
			}
			bound[int(b.Node)] = true
			n := g.Node(b.Node)
			if a.Unit != nil && !n.IsLoop() && !a.Unit.Can(n.Op) {
				report(diag.CodeALUOpMismatch, a.Name,
					fmt.Sprintf("ALU %s (%s) cannot execute %q's op %v", a.Name, a.Unit.Symbol(), n.Name, n.Op))
			}
			if s := u.Schedule; s != nil {
				p, placed := s.Placements[b.Node]
				if !placed {
					report(diag.CodeALUUnplaced, a.Name,
						fmt.Sprintf("ALU %s binds %q, which the schedule never placed", a.Name, n.Name))
				} else if p.Step != b.Step {
					report(diag.CodeAllocStep, a.Name,
						fmt.Sprintf("ALU %s binds %q at step %d, but the schedule places it at step %d",
							a.Name, n.Name, b.Step, p.Step))
				}
			}
		}
	}

	// A complete datapath must bind every scheduled (non-loop) node.
	if s := u.Schedule; s != nil {
		for _, n := range g.Nodes() {
			if n.IsLoop() {
				continue
			}
			if _, placed := s.Placements[n.ID]; !placed {
				continue
			}
			if !bound[int(n.ID)] {
				report(diag.CodeAllocUnbound, n.Name,
					fmt.Sprintf("scheduled node %q has no ALU binding", n.Name))
			}
		}
	}

	if u.Style2 {
		out = append(out, mfsa.VerifyStyle2All(g, dp)...)
	}
	return out
}
