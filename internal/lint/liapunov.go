package lint

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dfg"
	"repro/internal/diag"
	"repro/internal/grid"
	"repro/internal/liapunov"
	"repro/internal/sched"
)

// energyEps absorbs float formatting noise when comparing recorded
// energies against recomputed ones; the guiding functions are built
// from small integers, so any real divergence is far larger.
const energyEps = 1e-9

// liapunovAnalyzer audits the theorem behind the schedulers: it
// certifies the recorded guiding function's grid properties
// (liapunov.CheckProperties) and then replays the recorded trajectory
// on an empty grid, asserting at every step that the committed position
// was the minimum-energy free move-frame position — i.e. that V(X)
// actually decreased as fast as the move frame allowed. A step where a
// strictly cheaper legal position was available is the paper's
// "non-decreasing V(X)" violation.
var liapunovAnalyzer = &Analyzer{
	Name: "liapunov",
	Doc:  "Liapunov-invariant audit: guiding-function properties and greedy energy descent on replay",
	Run:  runLiapunov,
}

func runLiapunov(ctx context.Context, u *Unit) diag.List {
	s := u.Schedule
	if s == nil || u.Graph == nil || s.Trace == nil {
		return nil
	}
	g, t := u.Graph, s.Trace
	var out diag.List
	report := func(code string, sev diag.Severity, loc, msg string) {
		out = append(out, diag.Diagnostic{
			Code: code, Severity: sev, Artifact: "liapunov",
			Loc: loc, Message: msg,
		})
	}

	maxIdx := 1
	for _, st := range t.Steps {
		if st.MaxJ > maxIdx {
			maxIdx = st.MaxJ
		}
		if st.Pos.Index > maxIdx {
			maxIdx = st.Pos.Index
		}
	}
	if t.Fn != nil {
		if err := liapunov.CheckProperties(t.Fn, s.CS, maxIdx); err != nil {
			report(diag.CodeLiapProperties, diag.Error, t.Fn.Name(),
				fmt.Sprintf("guiding function fails the theorem's grid properties: %v", err))
		}
	}

	tables := make(map[string]*grid.Table)
	placedSteps := make([]int, g.Len()) // committed prefix by NodeID (0 = unplaced), for the chaining filter
	for i, st := range t.Steps {
		if int(st.Node) < 0 || int(st.Node) >= g.Len() {
			report(diag.CodeLiapReplay, diag.Error, fmt.Sprintf("trace step %d", i),
				fmt.Sprintf("trace step %d names node %d, which the graph does not have", i, st.Node))
			continue
		}
		n := g.Node(st.Node)
		table := tables[st.Type]
		if table == nil {
			max := st.MaxJ
			if st.Pos.Index > max {
				max = st.Pos.Index
			}
			table = grid.NewTable(st.Type, s.CS, max)
			table.Latency = s.Latency
			table.Pipelined = s.PipelinedTypes[st.Type]
			tables[st.Type] = table
		}

		if t.Fn != nil {
			if v := t.Fn.Value(st.Pos); math.Abs(v-st.Energy) > energyEps {
				report(diag.CodeLiapEnergy, diag.Error, n.Name,
					fmt.Sprintf("node %q at %v: recorded energy %g, V(position) = %g",
						n.Name, st.Pos, st.Energy, v))
			}
			if !st.MF.Empty() {
				auditDescent(g, s, t.Fn, table, placedSteps, n, st, report)
			}
		}
		if len(st.Candidates) > 0 {
			best := math.Inf(1)
			var bestPos grid.Pos
			for _, c := range st.Candidates {
				if c.Energy < best {
					best, bestPos = c.Energy, c.Pos
				}
			}
			if st.Energy > best+energyEps {
				report(diag.CodeLiapCandidate, diag.Error, n.Name,
					fmt.Sprintf("node %q committed at %v with V = %g, but evaluated candidate %v had V = %g",
						n.Name, st.Pos, st.Energy, bestPos, best))
			}
		}

		if !table.CanPlace(g, st.Node, st.Pos, n.Cycles) {
			report(diag.CodeLiapReplay, diag.Error, n.Name,
				fmt.Sprintf("node %q cannot be re-placed at %v: the recorded trajectory does not replay", n.Name, st.Pos))
			continue
		}
		if err := table.Place(g, st.Node, st.Pos, n.Cycles); err != nil {
			report(diag.CodeLiapReplay, diag.Error, n.Name,
				fmt.Sprintf("replaying node %q: %v", n.Name, err))
			continue
		}
		placedSteps[st.Node] = st.Pos.Step
	}
	return out
}

// auditDescent asserts the greedy-descent invariant for one recorded
// MFS placement: among the recorded move frame's free positions (grid
// occupancy and, under chaining, the delay budget both honored), none
// has strictly lower energy than the committed one.
func auditDescent(g *dfg.Graph, s *sched.Schedule, fn liapunov.Func, table *grid.Table,
	placedSteps []int, n *dfg.Node, st sched.TraceStep, report func(code string, sev diag.Severity, loc, msg string)) {
	free := 0
	best := math.Inf(1)
	var bestPos grid.Pos
	tiesAtBest := 0
	for _, p := range st.MF.Positions() {
		if !table.CanPlace(g, n.ID, p, n.Cycles) {
			continue
		}
		if s.ClockNs > 0 && !sched.ChainFits(g, s.ClockNs, placedSteps, n.ID, p.Step) {
			continue
		}
		free++
		v := fn.Value(p)
		switch {
		case v < best-energyEps:
			best, bestPos, tiesAtBest = v, p, 1
		case math.Abs(v-best) <= energyEps:
			tiesAtBest++
		}
	}
	if free == 0 {
		report(diag.CodeLiapReplay, diag.Error, n.Name,
			fmt.Sprintf("node %q: no free move-frame position on replay, yet the scheduler committed %v",
				n.Name, st.Pos))
		return
	}
	committed := fn.Value(st.Pos)
	if committed > best+energyEps {
		report(diag.CodeLiapDescent, diag.Error, n.Name,
			fmt.Sprintf("non-decreasing V(X) step: node %q committed at %v with V = %g while free move-frame position %v had V = %g",
				n.Name, st.Pos, committed, bestPos, best))
	}
	if tiesAtBest > 1 && math.Abs(committed-best) <= energyEps {
		report(diag.CodeLiapTie, diag.Info, n.Name,
			fmt.Sprintf("node %q: %d move-frame positions tie at minimum energy %g; the guiding function is degenerate here",
				n.Name, tiesAtBest, best))
	}
}
