package lint

import (
	"context"
	"fmt"

	"repro/internal/diag"
	"repro/internal/rtl"
)

// ctrlAnalyzer checks the FSM control path: state numbering, register
// write races within a state, unsatisfiable guard sets, multiplexer
// selects against the datapath's input lists, action placement against
// the schedule, and — because the emitted FSM restarts at the pipeline
// initiation interval — states the machine can never enter.
var ctrlAnalyzer = &Analyzer{
	Name: "ctrl",
	Doc:  "FSM controller: unreachable states, write races, guard satisfiability, mux selects",
	Run:  runCtrl,
}

func runCtrl(ctx context.Context, u *Unit) diag.List {
	c := u.Controller
	if c == nil {
		return nil
	}
	var out diag.List
	report := func(code string, sev diag.Severity, loc, msg string) {
		out = append(out, diag.Diagnostic{
			Code: code, Severity: sev, Artifact: "controller",
			Loc: loc, Message: msg,
		})
	}

	// The emitted FSM counts 0..restart-1 and wraps, so states at or
	// beyond the restart bound never execute.
	restart := len(c.States)
	if c.Latency > 0 && c.Latency < restart {
		restart = c.Latency
	}
	for i, st := range c.States {
		loc := fmt.Sprintf("S%d", i+1)
		if st.Step != i+1 {
			report(diag.CodeCtrlNumbering, diag.Error, loc,
				fmt.Sprintf("state %d is numbered step %d", i, st.Step))
		}
		if i >= restart && (len(st.Actions) > 0 || len(st.Writes) > 0) {
			report(diag.CodeCtrlUnreachable, diag.Warn, loc,
				fmt.Sprintf("state %d is unreachable: the FSM restarts after state %d", i, restart-1))
		}

		// Two unguarded writes to one register in one state race; the
		// register's final value would depend on emission order.
		unguarded := make(map[int]string)
		for _, w := range st.Writes {
			if prev, dup := unguarded[w.Reg]; dup {
				report(diag.CodeCtrlWriteRace, diag.Error, loc,
					fmt.Sprintf("state %d writes R%d twice (%q and %q)", i, w.Reg, prev, w.Signal))
				continue
			}
			unguarded[w.Reg] = w.Signal
		}

		for _, act := range st.Actions {
			for x := 0; x < len(act.Guards); x++ {
				for y := x + 1; y < len(act.Guards); y++ {
					a, b := act.Guards[x], act.Guards[y]
					if a.Cond == b.Cond && a.Branch != b.Branch {
						report(diag.CodeCtrlGuardUnsat, diag.Error, act.Name,
							fmt.Sprintf("action %q is guarded by branches %d and %d of conditional %d: it can never commit",
								act.Name, a.Branch, b.Branch, a.Cond))
					}
				}
			}
			if u.Datapath != nil {
				checkMuxSelects(u.Datapath, act.ALU, act.Name, act.Mux1Sel, act.Src1, act.Mux2Sel, act.Src2, report)
			}
			if s := u.Schedule; s != nil {
				if p, placed := s.Placements[act.Node]; !placed {
					report(diag.CodeCtrlActionStep, diag.Error, act.Name,
						fmt.Sprintf("action %q issued in state %d, but the schedule never placed its node", act.Name, i))
				} else if p.Step != st.Step {
					report(diag.CodeCtrlActionStep, diag.Error, act.Name,
						fmt.Sprintf("action %q issued in state step %d, but scheduled at step %d",
							act.Name, st.Step, p.Step))
				}
			}
		}
	}

	// Every scheduled node needs a controller action.
	if s := u.Schedule; s != nil && u.Graph != nil {
		acted := make(map[int]bool)
		for _, st := range c.States {
			for _, act := range st.Actions {
				acted[int(act.Node)] = true
			}
		}
		for _, n := range u.Graph.Nodes() {
			if _, placed := s.Placements[n.ID]; placed && !acted[int(n.ID)] {
				report(diag.CodeCtrlMissing, diag.Error, n.Name,
					fmt.Sprintf("scheduled node %q has no controller action", n.Name))
			}
		}
	}
	return out
}

// checkMuxSelects verifies an action's mux selects index the named
// ALU's input lists at the action's source signals.
func checkMuxSelects(dp *rtl.Datapath, aluName, actName string, sel1 int, src1 string, sel2 int, src2 string,
	report func(code string, sev diag.Severity, loc, msg string)) {
	var alu *rtl.ALU
	for _, a := range dp.ALUs {
		if a.Name == aluName {
			alu = a
			break
		}
	}
	if alu == nil {
		report(diag.CodeCtrlMuxSelect, diag.Error, actName,
			fmt.Sprintf("action %q references ALU %s, which the datapath does not have", actName, aluName))
		return
	}
	check := func(port int, sel int, src string, list []string) {
		if src == "" {
			return
		}
		if sel < 0 || sel >= len(list) || list[sel] != src {
			report(diag.CodeCtrlMuxSelect, diag.Error, actName,
				fmt.Sprintf("action %q: mux%d select %d does not pick source %q on %s", actName, port, sel, src, aluName))
		}
	}
	check(1, sel1, src1, alu.L1)
	check(2, sel2, src2, alu.L2)
}
