package lint

// equiv.go is the translation-validation pass: a symbolic proof that
// every artifact layer of a synthesized design computes the same
// function as the behavioral data-flow graph it was synthesized from.
//
// Three evaluators each reduce one artifact to a canonical symbolic
// expression per design output, all interned in one shared
// symb.Builder:
//
//   1. the DFG reference semantics (a topological walk of the graph),
//   2. the scheduled datapath (walking the FSM controller state by
//      state through the register transfers and multiplexer
//      selections of rtl.Datapath),
//   3. the emitted Verilog, re-parsed by this package's netlist parser
//      and interpreted as a clocked netlist (the combinational assign
//      network from the input ports to the output ports).
//
// Because the builder hash-conses, pointer equality of the root
// expressions IS the equivalence proof. A divergence becomes a typed
// diagnostic (HL0601/HL0602) carrying a structural diff and — whenever
// the divergence can be instantiated — a concrete counterexample input
// vector, confirmed against the cycle-accurate simulator. Structural
// defects that block symbolic execution (an operand no register holds
// across a step boundary, a latch of a not-yet-computed wire, an
// out-of-range mux select) are HL0603/HL0604.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/ctrl"
	"repro/internal/dfg"
	"repro/internal/diag"
	"repro/internal/op"
	"repro/internal/rtl"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/symb"
)

var equivAnalyzer = &Analyzer{
	Name: "equiv",
	Doc:  "translation validation: symbolic DFG/datapath/netlist equivalence proof",
	Run:  runEquiv,
}

func runEquiv(ctx context.Context, u *Unit) diag.List {
	cert, _ := Certify(ctx, u) // on cancellation the driver reports ctx.Err()
	return cert.Diagnostics
}

// counterexampleSeeds is how many reproducible random vectors the pass
// tries when instantiating a symbolic divergence.
const counterexampleSeeds = 64

// OutputProof records the per-layer verdict for one design output.
type OutputProof struct {
	// Output is the design output (graph sink) the proof is about.
	Output string `json:"output"`

	// Reference is the canonical reference expression, depth-capped.
	Reference string `json:"reference"`

	// Datapath is "equal" or "diverges": whether the controller-driven
	// datapath walk reduced to the same interned expression.
	Datapath string `json:"datapath"`

	// Netlist is "equal", "diverges", or "skipped" (no netlist in the
	// unit, or the design folds loop nodes the emitter only stubs).
	Netlist string `json:"netlist"`
}

// Certificate is the machine-readable result of one translation
// validation: the per-output proofs, the concrete cross-check verdict,
// and every diagnostic the pass raised.
type Certificate struct {
	Design string `json:"design"`

	// Status is "certified" (every layer of every output proved equal),
	// "refuted" (at least one diagnostic), or "skipped" (the unit lacks
	// a schedule or datapath to validate).
	Status string `json:"status"`

	// CS is the schedule's control-step count.
	CS int `json:"cs,omitempty"`

	Outputs []OutputProof `json:"outputs,omitempty"`

	// CrossCheck is the concrete confirmation verdict: "pass (N seeds)",
	// "fail: ...", or "skipped: symbolic refutation".
	CrossCheck string `json:"cross_check,omitempty"`

	Diagnostics diag.List `json:"diagnostics"`
}

// Certify runs the translation-validation pass over the unit and
// returns its certificate. The error is non-nil only when ctx is done,
// in which case the certificate holds the partial findings gathered so
// far. A unit without a schedule, datapath, or controller is "skipped":
// there is nothing to validate against the graph yet.
func Certify(ctx context.Context, u *Unit) (*Certificate, error) {
	cert := &Certificate{Design: u.designName(), Status: "skipped", Diagnostics: diag.List{}}
	if u.Graph == nil || u.Schedule == nil || u.Datapath == nil || u.Controller == nil {
		return cert, nil
	}
	cert.CS = u.Schedule.CS
	e := &prover{
		u: u, b: symb.NewBuilder(),
		g: u.Graph, s: u.Schedule, dp: u.Datapath, c: u.Controller,
	}
	// Reference first: its topological walk interns the leaves in graph
	// order, so operand sorting by intern id is stable across layers.
	ref := e.dfgExprs()
	if err := ctx.Err(); err != nil {
		return e.finish(cert), err
	}
	dpv := e.datapathExprs(ctx)
	if err := ctx.Err(); err != nil {
		return e.finish(cert), err
	}
	netv, netSkipped := e.netlistExprs(ctx)
	if err := ctx.Err(); err != nil {
		return e.finish(cert), err
	}

	outputs := u.Outputs
	if len(outputs) == 0 {
		outputs = e.g.Outputs()
	}
	for _, o := range outputs {
		if err := ctx.Err(); err != nil {
			return e.finish(cert), err
		}
		refE, ok := ref[o]
		if !ok {
			continue // output names no node: the dfg analyzer owns that report
		}
		proof := OutputProof{Output: o, Reference: refE.String(), Datapath: "equal", Netlist: "equal"}
		if netSkipped {
			proof.Netlist = "skipped"
		}
		if dpE := dpv[o]; dpE != refE {
			proof.Datapath = "diverges"
			e.reportDivergence(ctx, diag.CodeEquivDatapath, "datapath", o, refE, dpE)
		}
		if !netSkipped {
			if netE := netv[o]; netE != refE {
				proof.Netlist = "diverges"
				e.reportDivergence(ctx, diag.CodeEquivNetlist, "netlist", o, refE, netE)
			}
		}
		cert.Outputs = append(cert.Outputs, proof)
	}

	// Concrete confirmation hook: when the symbolic layers all agree,
	// the certificate is additionally backed by the N-seed simulator
	// cross-check; a symbolic refutation makes it redundant.
	switch {
	case len(e.diags) > 0:
		cert.CrossCheck = "skipped: symbolic refutation"
	default:
		err := sim.CrossCheckSeedsCtx(ctx, e.s, e.dp, 0, nil)
		switch {
		case err == nil:
			cert.CrossCheck = fmt.Sprintf("pass (%d seeds)", sim.DefaultCrossCheckSeeds)
		case ctx.Err() != nil:
			return e.finish(cert), ctx.Err()
		default:
			cert.CrossCheck = "fail: " + err.Error()
			e.report(diag.CodeEquivDatapath, "datapath", "",
				fmt.Sprintf("concrete cross-check refutes the symbolic certificate: %v", err),
				"the simulator and the symbolic walk disagree; one artifact changed under the pass")
		}
	}
	cert.Status = "certified" // finish downgrades to "refuted" on findings
	return e.finish(cert), nil
}

// prover carries the shared state of one Certify run.
type prover struct {
	u  *Unit
	b  *symb.Builder
	g  *dfg.Graph
	s  *sched.Schedule
	dp *rtl.Datapath
	c  *ctrl.Controller

	diags diag.List
}

// finish stamps, sorts, and attaches the accumulated diagnostics.
func (e *prover) finish(cert *Certificate) *Certificate {
	for i := range e.diags {
		if e.diags[i].Analyzer == "" {
			e.diags[i].Analyzer = "equiv"
		}
		if e.diags[i].Design == "" {
			e.diags[i].Design = cert.Design
		}
	}
	e.diags.Sort()
	cert.Diagnostics = e.diags
	if len(e.diags) > 0 {
		cert.Status = "refuted"
	}
	return cert
}

func (e *prover) report(code, artifact, loc, msg, fix string) *diag.Diagnostic {
	e.diags = append(e.diags, diag.Diagnostic{
		Code: code, Severity: diag.Error, Artifact: artifact,
		Loc: loc, Message: msg, Fix: fix,
	})
	return &e.diags[len(e.diags)-1]
}

// poisonVar is the leaf standing in for a value symbolic execution
// could not derive; the ":" keeps it disjoint from every behavioral
// signal name the emitter could produce.
func (e *prover) poisonVar(sig string, step int) *symb.Expr {
	return e.b.Var(fmt.Sprintf("undef:%s@S%d", sig, step))
}

// --- layer 1: the DFG reference semantics -------------------------------

// dfgExprs reduces every graph signal to its canonical expression over
// the primary inputs by a topological walk.
func (e *prover) dfgExprs() map[string]*symb.Expr {
	vals := make(map[string]*symb.Expr, e.g.Len())
	for _, in := range e.g.Inputs() {
		vals[in] = e.b.Var(in)
	}
	for _, id := range e.g.TopoOrder() {
		n := e.g.Node(id)
		args := make([]*symb.Expr, len(n.Args))
		for i, a := range n.Args {
			v, ok := vals[a]
			if !ok {
				v = e.b.Var("undef:" + a) // dangling edge: the dfg analyzer owns HL0101
			}
			args[i] = v
		}
		if n.IsLoop() {
			vals[n.Name] = e.loopExpr(n, args)
		} else {
			vals[n.Name] = e.b.Apply(n.Op, args...)
		}
	}
	return vals
}

// loopExpr symbolically evaluates a folded loop node's subgraph on the
// given (already symbolic) arguments, mirroring sim's concrete loop
// semantics: SubIns bind positionally to Args, SubOut is the result.
// Both the reference and the datapath layer funnel loops through here,
// so a loop body is proved once and compared by construction.
func (e *prover) loopExpr(n *dfg.Node, args []*symb.Expr) *symb.Expr {
	env := make(map[string]*symb.Expr, len(n.SubIns))
	for i, in := range n.SubIns {
		if i < len(args) {
			env[in] = args[i]
		}
	}
	for _, id := range n.Sub.TopoOrder() {
		sn := n.Sub.Node(id)
		sargs := make([]*symb.Expr, len(sn.Args))
		for i, a := range sn.Args {
			v, ok := env[a]
			if !ok {
				v = e.b.Var("undef:" + n.Name + "." + a)
			}
			sargs[i] = v
		}
		if sn.IsLoop() {
			env[sn.Name] = e.loopExpr(sn, sargs)
		} else {
			env[sn.Name] = e.b.Apply(sn.Op, sargs...)
		}
	}
	if v, ok := env[n.SubOut]; ok {
		return v
	}
	return e.b.Var("undef:" + n.Name + "." + n.SubOut)
}

// --- layer 2: the scheduled datapath ------------------------------------

// datapathExprs walks the FSM controller state by state, resolving
// every action's operands through its ALU's input multiplexers and
// latching register writes, and returns the symbolic value each signal
// wire carries when its action executes. The walk enforces the
// register-transfer availability rules the simulator enforces
// concretely: a value read across a step boundary must be held by an
// allocated register over the whole span (HL0603), a value read in its
// own step is legal only as single-cycle chaining under a clock budget,
// and a latch of a wire that is not ready is a structural defect
// (HL0604).
func (e *prover) datapathExprs(ctx context.Context) map[string]*symb.Expr {
	isInput := make(map[string]bool)
	for _, in := range e.g.Inputs() {
		isInput[in] = true
	}
	aluOf := make(map[string]*rtl.ALU, len(e.dp.ALUs))
	for _, a := range e.dp.ALUs {
		aluOf[a.Name] = a
	}
	topoIdx := make(map[dfg.NodeID]int, e.g.Len())
	for i, id := range e.g.TopoOrder() {
		topoIdx[id] = i
	}

	wireVal := make(map[string]*symb.Expr)  // signal -> value its ALU computes
	wireReady := make(map[string]int)       // signal -> finish step of its action
	latched := make(map[string]*symb.Expr)  // signal -> value its register holds

	// resolve yields the symbolic value the hardware delivers when an
	// operand signal is read during step t.
	resolve := func(sig string, t int, chainOK bool, who string) *symb.Expr {
		if isInput[sig] {
			return e.b.Var(sig) // primary inputs are stable ports
		}
		r, ok := wireReady[sig]
		switch {
		case !ok:
			e.report(diag.CodeEquivStructure, "datapath", who,
				fmt.Sprintf("operand %q read in S%d is never computed by an earlier state", sig, t),
				"schedule the producing operation before its consumer")
			return e.poisonVar(sig, t)
		case r < t:
			// Crossed a step boundary: only a covering register carries
			// the value here.
			if _, cov := e.dp.Covering(sig, r, t); !cov {
				d := e.report(diag.CodeEquivRegister, "datapath", sig,
					fmt.Sprintf("value %q born in S%d is read in S%d but no allocated register holds it over [%d,%d]", sig, r, t, r, t),
					"extend the value's storage interval or re-run register allocation")
				d.Counterexample = e.structuralCounterexample(ctx, sig)
			}
			if lv, ok := latched[sig]; ok {
				return lv
			}
			return wireVal[sig] // uncovered and unlatched: the HL0603 above already refutes
		case r == t:
			if chainOK {
				return wireVal[sig]
			}
			e.report(diag.CodeEquivStructure, "datapath", who,
				fmt.Sprintf("operand %q is read in S%d but only ready at the end of that step (chaining needs a clock budget and a single-cycle consumer)", sig, t),
				"place the consumer one step later or enable chaining")
			return e.poisonVar(sig, t)
		default: // r > t
			e.report(diag.CodeEquivStructure, "datapath", who,
				fmt.Sprintf("operand %q is read in S%d before its producer finishes in S%d", sig, t, r),
				"the schedule and controller disagree on the producer's step")
			return e.poisonVar(sig, t)
		}
	}

	muxPort := func(list []string, sel, port, t int, chainOK bool, act *ctrl.Action) *symb.Expr {
		switch {
		case sel < 0:
			e.report(diag.CodeEquivStructure, "datapath", act.Name,
				fmt.Sprintf("action %q leaves multiplexer port %d unselected in S%d", act.Name, port, t),
				"the controller did not derive a mux select for a needed operand")
			return e.poisonVar(fmt.Sprintf("%s.mux%d", act.ALU, port), t)
		case sel >= len(list):
			e.report(diag.CodeEquivStructure, "datapath", act.Name,
				fmt.Sprintf("action %q selects mux%d input %d of %s but the port has only %d inputs", act.Name, port, sel, act.ALU, len(list)),
				"the controller's select and the datapath's mux tables diverged")
			return e.poisonVar(fmt.Sprintf("%s.mux%d", act.ALU, port), t)
		}
		return resolve(list[sel], t, chainOK, act.Name)
	}

	for i := range e.c.States {
		if ctx.Err() != nil {
			return wireVal
		}
		st := &e.c.States[i]
		t := i + 1 // state i drives control step i+1

		// Controller actions are sorted by name; chaining makes values
		// flow between actions of one step, so process them in
		// dataflow (topological) order instead.
		acts := make([]*ctrl.Action, len(st.Actions))
		for j := range st.Actions {
			acts[j] = &st.Actions[j]
		}
		sort.SliceStable(acts, func(a, b int) bool {
			ia, oka := topoIdx[acts[a].Node]
			ib, okb := topoIdx[acts[b].Node]
			if oka != okb {
				return oka // unknown nodes last
			}
			return ia < ib
		})

		for _, act := range acts {
			n, ok := e.g.Lookup(act.Name)
			if !ok || n.ID != act.Node {
				e.report(diag.CodeEquivStructure, "controller", act.Name,
					fmt.Sprintf("S%d action names node %q (id %d) which the graph does not define", t, act.Name, act.Node),
					"controller and graph are out of sync")
				continue
			}
			chainOK := e.s.ClockNs > 0 && n.Cycles == 1
			var val *symb.Expr
			switch {
			case n.IsLoop():
				// Folded loops bypass the ALU/mux fabric; operands bind
				// by signal name as in the simulator.
				args := make([]*symb.Expr, len(n.Args))
				for ai, a := range n.Args {
					args[ai] = resolve(a, t, chainOK, act.Name)
				}
				val = e.loopExpr(n, args)
			case !act.Func.Valid():
				e.report(diag.CodeEquivStructure, "controller", act.Name,
					fmt.Sprintf("S%d action for %q carries no valid ALU function", t, act.Name),
					"the controller lost the operation's opcode")
				val = e.poisonVar(act.Name, t)
			default:
				alu := aluOf[act.ALU]
				if alu == nil {
					e.report(diag.CodeEquivStructure, "datapath", act.Name,
						fmt.Sprintf("S%d action for %q targets ALU %q which the datapath does not contain", t, act.Name, act.ALU),
						"binding names a functional unit that was never allocated")
					val = e.poisonVar(act.Name, t)
					break
				}
				// The hardware computes act.Func over whatever the mux
				// selects deliver — not what the graph says the node's
				// operands are. That gap is exactly what this layer
				// validates.
				args := []*symb.Expr{muxPort(alu.L1, act.Mux1Sel, 1, t, chainOK, act)}
				if act.Func.Arity() == 2 {
					args = append(args, muxPort(alu.L2, act.Mux2Sel, 2, t, chainOK, act))
				}
				val = e.b.Apply(act.Func, args...)
			}
			cyc := n.Cycles
			if cyc < 1 {
				cyc = 1
			}
			wireVal[n.Name] = val
			wireReady[n.Name] = t + cyc - 1
		}

		for _, w := range st.Writes {
			r, ok := wireReady[w.Signal]
			if !ok || r != t {
				was := "is never computed"
				if ok {
					was = fmt.Sprintf("is driven only during S%d", r)
				}
				d := e.report(diag.CodeEquivStructure, "datapath", w.Signal,
					fmt.Sprintf("S%d latches %q into R%d but the wire %s", t, w.Signal, w.Reg, was),
					"the register transfer fires in a state where its source wire is not valid")
				d.Counterexample = e.structuralCounterexample(ctx, w.Signal)
				latched[w.Signal] = e.poisonVar(w.Signal, t)
				continue
			}
			latched[w.Signal] = wireVal[w.Signal]
		}
	}
	return wireVal
}

// --- layer 3: the emitted netlist ---------------------------------------

// netlistExprs re-parses the emitted Verilog and interprets it as a
// clocked netlist: the combinational assign network is evaluated from
// the input ports to the output ports. The emitter renders every node
// as one continuous assign of its operand wires (the FSM sequences
// which value is live when; the datapath layer above proves that
// sequencing), so the comb network's function must equal the
// reference's. Designs with folded loop nodes are skipped without a
// finding: the emitter stubs their wires with a placeholder constant.
func (e *prover) netlistExprs(ctx context.Context) (map[string]*symb.Expr, bool) {
	if e.u.Netlist == "" {
		return nil, true
	}
	for _, n := range e.g.Nodes() {
		if n.IsLoop() {
			return nil, true
		}
	}
	m, _ := parseNetlist(e.u.Netlist) // parse findings belong to the netlist analyzer
	if m.name == "" {
		e.report(diag.CodeEquivStructure, "netlist", "module",
			"netlist cannot be interpreted for equivalence: no module declaration",
			"re-emit the design")
		return nil, true
	}

	// Port mapping is positional against the graph, mirroring the
	// emitter: clk and rst first, then one input port per graph input,
	// then one output port per graph output.
	var ins, outs []string
	for _, name := range m.order {
		switch m.decls[name].kind {
		case "input":
			ins = append(ins, name)
		case "output":
			outs = append(outs, name)
		}
	}
	if len(ins) >= 2 {
		ins = ins[2:] // clk, rst
	}
	gi, gos := e.g.Inputs(), e.g.Outputs()
	if len(ins) != len(gi) || len(outs) != len(gos) {
		e.report(diag.CodeEquivStructure, "netlist", "module "+m.name,
			fmt.Sprintf("port shape mismatch: netlist has %d data inputs and %d outputs, graph has %d and %d",
				len(ins), len(outs), len(gi), len(gos)),
			"the module interface no longer matches the design")
		return nil, true
	}
	inVar := make(map[string]*symb.Expr, len(ins))
	for i, p := range ins {
		inVar[p] = e.b.Var(gi[i])
	}

	// First driver wins, as in the analyzer's driver checks; duplicate
	// drivers are the netlist analyzer's HL0503.
	assignOf := make(map[string]*netAssign, len(m.assigns))
	for _, a := range m.assigns {
		if _, ok := assignOf[a.lhs]; !ok {
			assignOf[a.lhs] = a
		}
	}

	cache := make(map[string]*symb.Expr)
	onStack := make(map[string]bool)
	var evalIdent func(ident string) *symb.Expr
	var evalExpr func(x *netExpr, line int) *symb.Expr
	evalIdent = func(ident string) *symb.Expr {
		if v, ok := cache[ident]; ok {
			return v
		}
		if v, ok := inVar[ident]; ok {
			return v
		}
		if onStack[ident] {
			e.report(diag.CodeEquivStructure, "netlist", ident,
				fmt.Sprintf("combinational cycle through %q blocks symbolic evaluation", ident),
				"break the loop; see the netlist analyzer's cycle report")
			return e.poisonVar("net:"+ident, 0)
		}
		a := assignOf[ident]
		if a == nil {
			// Undriven or a register: registers are write-only in the
			// emitted subset, so a read here is a defect the divergence
			// at the root will carry upward.
			return e.b.Var("undef:net:" + ident)
		}
		onStack[ident] = true
		ast, err := parseNetExpr(a.raw)
		var v *symb.Expr
		if err != nil {
			e.report(diag.CodeEquivStructure, "netlist", fmt.Sprintf("line %d", a.line),
				fmt.Sprintf("assign to %q is outside the interpretable subset: %v", ident, err),
				"only the emitter's expression forms can be validated")
			v = e.poisonVar("net:"+ident, 0)
		} else {
			v = evalExpr(ast, a.line)
		}
		delete(onStack, ident)
		cache[ident] = v
		return v
	}
	evalExpr = func(x *netExpr, line int) *symb.Expr {
		switch {
		case x.isLit:
			return e.b.Const(x.lit)
		case x.ident != "":
			return evalIdent(x.ident)
		}
		args := make([]*symb.Expr, len(x.args))
		for i, a := range x.args {
			args[i] = evalExpr(a, line)
		}
		return e.b.Apply(x.op, args...)
	}

	res := make(map[string]*symb.Expr, len(outs))
	for i, p := range outs {
		if ctx.Err() != nil {
			return res, false
		}
		res[gos[i]] = evalIdent(p)
	}
	return res, false
}

// --- counterexamples ----------------------------------------------------

// reportDivergence files an HL0601/HL0602 with the structural diff and,
// when one of 64 reproducible vectors separates the two expressions, a
// concrete counterexample confirmed against the simulator.
func (e *prover) reportDivergence(ctx context.Context, code, artifact, output string, want, got *symb.Expr) {
	d := e.report(code, artifact, output,
		fmt.Sprintf("output %q: %s value diverges from the DFG reference: %s",
			output, artifact, symb.Diff(want, got)),
		"the artifact computes a different function than the behavior; follow the diff to the defective operand path")
	d.Counterexample = e.counterexample(ctx, output, want, got)
}

// counterexample searches reproducible random vectors for an input
// assignment separating want from got, then asks the simulator whether
// it reproduces the divergence concretely.
func (e *prover) counterexample(ctx context.Context, output string, want, got *symb.Expr) *diag.Counterexample {
	vars := make(map[string]bool)
	want.Vars(vars)
	got.Vars(vars)
	for _, in := range e.g.Inputs() {
		vars[in] = true
	}
	names := make([]string, 0, len(vars))
	for v := range vars {
		names = append(names, v)
	}
	sort.Strings(names)
	isInput := make(map[string]bool, len(e.g.Inputs()))
	for _, in := range e.g.Inputs() {
		isInput[in] = true
	}
	for seed := 1; seed <= counterexampleSeeds; seed++ {
		if ctx.Err() != nil {
			return nil
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		env := make(map[string]int64, len(names))
		for _, v := range names {
			env[v] = int64(rng.Intn(201) - 100) // the RandomInputs distribution
		}
		w, g := want.Eval(env), got.Eval(env)
		if w == g {
			continue
		}
		inputs := make(map[string]int64, len(e.g.Inputs()))
		for _, in := range e.g.Inputs() {
			inputs[in] = env[in]
		}
		cx := &diag.Counterexample{Inputs: inputs, Output: output, Want: w, Got: g}
		e.simConfirm(ctx, cx)
		return cx
	}
	// The divergence did not instantiate (poison leaves can cancel, or
	// the expressions agree on the sampled region); the symbolic diff
	// stands on its own.
	return nil
}

// simConfirm runs the cycle-accurate RTL simulator on the
// counterexample's inputs. The simulator confirms the vector when it
// either rejects the artifact outright or computes a value different
// from the reference. It cannot see multiplexer selections, so a
// select-level corruption the symbolic walk catches may stay
// unconfirmed (SimConfirmed=false) while still being real.
func (e *prover) simConfirm(ctx context.Context, cx *diag.Counterexample) {
	vals, err := sim.RunRTLCtx(ctx, e.s, e.dp, cx.Inputs)
	switch {
	case err != nil && ctx.Err() != nil:
		// cancelled: leave unconfirmed
	case err != nil:
		cx.SimError = err.Error()
		cx.SimConfirmed = true
	case vals[cx.Output] != cx.Want:
		cx.SimConfirmed = true
	}
}

// structuralCounterexample witnesses a structural defect (HL0603/0604):
// a fixed reproducible vector on which the simulator is expected to
// reject the artifact.
func (e *prover) structuralCounterexample(ctx context.Context, sig string) *diag.Counterexample {
	inputs := sim.RandomInputs(e.g, 1)
	cx := &diag.Counterexample{Inputs: inputs, Output: sig}
	if ref, err := e.g.Eval(inputs); err == nil {
		cx.Want = ref[sig]
	}
	vals, err := sim.RunRTLCtx(ctx, e.s, e.dp, inputs)
	switch {
	case err != nil && ctx.Err() != nil:
	case err != nil:
		cx.SimError = err.Error()
		cx.SimConfirmed = true
	default:
		cx.Got = vals[sig]
		cx.SimConfirmed = cx.Got != cx.Want
	}
	return cx
}

// --- mutation harness ---------------------------------------------------

// Mutation is one seeded artifact corruption the soundness harness (and
// cmd/hlslint's -mutate flag) can inject into a synthesized unit. Each
// mutation models a realistic synthesis bug; the translation-validation
// pass must refuse to certify any unit it applies to.
type Mutation struct {
	Name string
	Doc  string

	// Apply corrupts the unit in place. It returns an error when the
	// unit does not expose the structural seam this mutation needs (for
	// example, a design without a non-commutative netlist operation).
	Apply func(u *Unit) error
}

// mutations is the registry, ordered by name.
var mutations = []Mutation{
	{
		Name: "commute-sub",
		Doc:  "swap the operands of the first non-commutative binary assign in the netlist",
		Apply: func(u *Unit) error {
			if u.Netlist == "" {
				return fmt.Errorf("unit has no netlist")
			}
			net, ok := commuteFirstNonCommutative(u.Netlist)
			if !ok {
				return fmt.Errorf("netlist has no non-commutative binary assign")
			}
			u.Netlist = net
			return nil
		},
	},
	{
		Name: "drop-register",
		Doc:  "delete the first allocated storage interval of a computed value",
		Apply: func(u *Unit) error {
			if u.Datapath == nil {
				return fmt.Errorf("unit has no datapath")
			}
			for r, grp := range u.Datapath.Registers {
				for i, iv := range grp {
					if iv.Stored() && iv.Birth >= 1 {
						u.Datapath.Registers[r] = append(append([]rtl.Interval(nil), grp[:i]...), grp[i+1:]...)
						return nil
					}
				}
			}
			return fmt.Errorf("no stored non-input interval to drop")
		},
	},
	{
		Name: "rebind-alu",
		Doc:  "retarget an action to a different ALU whose mux tables deliver other operands",
		Apply: func(u *Unit) error {
			if u.Controller == nil || u.Datapath == nil {
				return fmt.Errorf("unit has no controller or datapath")
			}
			aluOf := make(map[string]*rtl.ALU)
			for _, a := range u.Datapath.ALUs {
				aluOf[a.Name] = a
			}
			for si := range u.Controller.States {
				for ai := range u.Controller.States[si].Actions {
					act := &u.Controller.States[si].Actions[ai]
					cur := aluOf[act.ALU]
					if cur == nil || act.Mux1Sel < 0 || act.Mux1Sel >= len(cur.L1) {
						continue
					}
					for _, b := range u.Datapath.ALUs {
						if b.Name == act.ALU {
							continue
						}
						if act.Mux1Sel >= len(b.L1) || b.L1[act.Mux1Sel] != cur.L1[act.Mux1Sel] {
							act.ALU = b.Name
							return nil
						}
					}
				}
			}
			return fmt.Errorf("no action can be rebound to a diverging ALU")
		},
	},
	{
		Name: "shift-action",
		Doc:  "issue an operation one control step later than its register write expects",
		Apply: func(u *Unit) error {
			if u.Controller == nil {
				return fmt.Errorf("unit has no controller")
			}
			sts := u.Controller.States
			written := make(map[string]bool)
			for _, st := range sts {
				for _, w := range st.Writes {
					written[w.Signal] = true
				}
			}
			for si := 0; si < len(sts)-1; si++ {
				for ai, act := range sts[si].Actions {
					if !written[act.Name] {
						continue // only a latched value is guaranteed to expose the shift
					}
					sts[si].Actions = append(append([]ctrl.Action(nil), sts[si].Actions[:ai]...), sts[si].Actions[ai+1:]...)
					sts[si+1].Actions = append(sts[si+1].Actions, act)
					return nil
				}
			}
			return fmt.Errorf("no latched action before the final state")
		},
	},
	{
		Name: "swap-mux",
		Doc:  "swap the first two port-1 multiplexer inputs of an ALU an action selects from",
		Apply: func(u *Unit) error {
			if u.Controller == nil || u.Datapath == nil {
				return fmt.Errorf("unit has no controller or datapath")
			}
			used := make(map[string]bool) // ALUs with an action selecting L1[0] or L1[1]
			for _, st := range u.Controller.States {
				for _, act := range st.Actions {
					if act.Mux1Sel == 0 || act.Mux1Sel == 1 {
						used[act.ALU] = true
					}
				}
			}
			for _, a := range u.Datapath.ALUs {
				if len(a.L1) >= 2 && used[a.Name] {
					a.L1[0], a.L1[1] = a.L1[1], a.L1[0]
					return nil
				}
			}
			return fmt.Errorf("no ALU with two port-1 inputs under selection")
		},
	},
}

// Mutations lists the registered artifact corruptions sorted by name.
func Mutations() []Mutation {
	out := append([]Mutation(nil), mutations...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ApplyMutation corrupts the unit in place with the named mutation.
func ApplyMutation(u *Unit, name string) error {
	for _, m := range mutations {
		if m.Name == name {
			return m.Apply(u)
		}
	}
	names := make([]string, len(mutations))
	for i, m := range mutations {
		names[i] = m.Name
	}
	sort.Strings(names)
	return fmt.Errorf("lint: unknown mutation %q (have %v)", name, names)
}

// commuteFirstNonCommutative rewrites the first "assign x = a OP b;"
// whose operator is binary and non-commutative into "assign x = b OP
// a;", preserving everything else byte for byte.
func commuteFirstNonCommutative(text string) (string, bool) {
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		if !strings.HasPrefix(strings.TrimLeft(line, " \t"), "assign ") {
			continue
		}
		eq := strings.IndexByte(line, '=')
		semi := strings.IndexByte(line, ';')
		if eq < 0 || semi < eq {
			continue
		}
		toks, err := tokenizeNetExpr(line[eq+1 : semi])
		if err != nil || len(toks) != 3 || toks[1].kind != tokOp {
			continue
		}
		k, err := op.Parse(toks[1].text)
		if err != nil || k.Commutative() || k.Arity() != 2 {
			continue
		}
		a, b := toks[0], toks[2]
		if a.kind != tokIdent || b.kind != tokIdent || a.text == b.text {
			continue
		}
		lines[i] = fmt.Sprintf("%s= %s %s %s%s", line[:eq], b.text, toks[1].text, a.text, line[semi:])
		return strings.Join(lines, "\n"), true
	}
	return text, false
}
