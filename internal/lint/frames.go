package lint

import (
	"context"
	"fmt"

	"repro/internal/dfg"
	"repro/internal/diag"
	"repro/internal/grid"
	"repro/internal/sched"
)

// framesAnalyzer checks the schedule two ways: it re-runs the full
// legality verifier (sched.VerifyAll — completeness, dependencies,
// conflicts, limits), and when the scheduler recorded its move-frame
// trajectory it replays every placement decision, independently
// re-deriving PF, RF and FF exactly as MFS step 4 does and asserting
// the paper's frame algebra MF = PF − (RF ∪ FF), move-frame membership
// of the committed position, and ASAP/ALAP containment.
var framesAnalyzer = &Analyzer{
	Name: "frames",
	Doc:  "schedule legality and move-frame audit: MF = PF − (RF ∪ FF), ASAP/ALAP containment",
	Run:  runFrames,
}

func runFrames(ctx context.Context, u *Unit) diag.List {
	s := u.Schedule
	if s == nil || u.Graph == nil {
		return nil
	}
	g := u.Graph
	var out diag.List
	out = append(out, s.VerifyAll(u.Limits)...)

	frames, err := sched.ComputeFrames(g, s.CS, s.ClockNs)
	if err != nil {
		out = append(out, diag.Diagnostic{
			Code: diag.CodeSchedWindow, Severity: diag.Error, Artifact: "frames",
			Message: fmt.Sprintf("cannot recompute time frames: %v", err),
		})
		return out
	}
	report := func(code, loc, msg string) {
		out = append(out, diag.Diagnostic{
			Code: code, Severity: diag.Error, Artifact: "frames",
			Loc: loc, Message: msg,
		})
	}

	// Every placement must sit inside the independently recomputed
	// ASAP/ALAP window.
	for _, n := range g.Nodes() {
		p, ok := s.Placements[n.ID]
		if !ok {
			continue // reported by VerifyAll
		}
		fr := frames[n.ID]
		if p.Step < fr.ASAP || p.Step > fr.ALAP {
			report(diag.CodeSchedWindow, n.Name,
				fmt.Sprintf("node %q placed at step %d outside its time frame [%d, %d]",
					n.Name, p.Step, fr.ASAP, fr.ALAP))
		}
	}

	if s.Trace != nil {
		auditTrace(g, s, frames, report)
	}
	return out
}

// auditTrace replays the recorded placement decisions in commit order,
// re-deriving each operation's frames against the already-committed
// prefix with the same rules the scheduler used (placed predecessors
// raise the earliest start, placed successors lower the latest start,
// chaining admits step sharing) and comparing them to what the
// scheduler recorded. Steps without recorded frames (MFSA traces record
// candidates instead) are skipped.
func auditTrace(g *dfg.Graph, s *sched.Schedule, frames sched.Frames, report func(code, loc, msg string)) {
	placed := make(map[dfg.NodeID]sched.Placement, len(s.Trace.Steps))
	for i, st := range s.Trace.Steps {
		if int(st.Node) < 0 || int(st.Node) >= g.Len() {
			report(diag.CodeFrameMismatch, fmt.Sprintf("trace step %d", i),
				fmt.Sprintf("trace step %d names node %d, which the graph does not have", i, st.Node))
			continue
		}
		n := g.Node(st.Node)
		if st.PF.Empty() {
			// Allocation-style trace: no frames to audit, but the
			// placement still joins the prefix for later steps.
			placed[st.Node] = sched.Placement{Step: st.Pos.Step, Type: st.Type, Index: st.Pos.Index}
			continue
		}

		// The recorded algebra must hold as recorded.
		if want := st.PF.Minus(st.RF.Union(st.FF)); !st.MF.Equal(want) {
			report(diag.CodeFrameIdentity, n.Name,
				fmt.Sprintf("node %q: recorded MF (%d positions) != PF − (RF ∪ FF) (%d positions)",
					n.Name, st.MF.Len(), want.Len()))
		}
		if !st.MF.Contains(st.Pos) {
			report(diag.CodeFrameMember, n.Name,
				fmt.Sprintf("node %q committed to %v outside its recorded move frame", n.Name, st.Pos))
		}
		base := frames[st.Node]
		for _, p := range st.PF.Positions() {
			if p.Step < base.ASAP || p.Step > base.ALAP {
				report(diag.CodeFrameBounds, n.Name,
					fmt.Sprintf("node %q: recorded PF position %v outside the ASAP/ALAP window [%d, %d]",
						n.Name, p, base.ASAP, base.ALAP))
				break
			}
		}

		// Independent re-derivation against the committed prefix.
		pf, rf, ff := deriveFrames(g, s, frames, placed, n, st.CurrentJ, st.MaxJ)
		if !st.PF.Equal(pf) || !st.RF.Equal(rf) || !st.FF.Equal(ff) {
			report(diag.CodeFrameMismatch, n.Name,
				fmt.Sprintf("node %q: recorded PF/RF/FF (%d/%d/%d positions) differ from the independent re-derivation (%d/%d/%d)",
					n.Name, st.PF.Len(), st.RF.Len(), st.FF.Len(), pf.Len(), rf.Len(), ff.Len()))
		}
		placed[st.Node] = sched.Placement{Step: st.Pos.Step, Type: st.Type, Index: st.Pos.Index}
	}
}

// deriveFrames recomputes PF, RF and FF for node n against the placed
// prefix, mirroring MFS step 4: the base ASAP/ALAP window tightened by
// committed predecessors and successors (chaining admits sharing a
// step), the redundant frame above current_j, and the forbidden frame
// below the latest completing predecessor.
func deriveFrames(g *dfg.Graph, s *sched.Schedule, frames sched.Frames,
	placed map[dfg.NodeID]sched.Placement, n *dfg.Node, currentJ, maxJ int) (pf, rf, ff grid.Frame) {
	base := frames[n.ID]
	lo, hi := base.ASAP, base.ALAP
	ffTop := 0
	for _, pid := range n.Preds() {
		pp, ok := placed[pid]
		if !ok {
			continue
		}
		pred := g.Node(pid)
		bound := pp.Step + pred.Cycles
		if chainableNodes(s.ClockNs, pred, n) {
			bound = pp.Step
		}
		if bound > lo {
			lo = bound
		}
		if end := pp.Step + pred.Cycles - 1; end > ffTop && bound > pp.Step {
			ffTop = end
		}
	}
	for _, sid := range n.Succs() {
		sp, ok := placed[sid]
		if !ok {
			continue
		}
		succ := g.Node(sid)
		bound := sp.Step - n.Cycles
		if chainableNodes(s.ClockNs, n, succ) {
			bound = sp.Step
		}
		if bound < hi {
			hi = bound
		}
	}
	pf = grid.Rect(lo, hi, 1, maxJ)
	rf = grid.Rect(lo, hi, currentJ+1, maxJ)
	ff = grid.Rect(1, ffTop, 1, maxJ)
	return pf, rf, ff
}

func chainableNodes(clockNs float64, pred, succ *dfg.Node) bool {
	return clockNs > 0 && pred.Cycles == 1 && succ.Cycles == 1 &&
		!pred.IsLoop() && !succ.IsLoop()
}
