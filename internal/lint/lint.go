// Package lint is the cross-layer static verification framework of the
// synthesis flow: a registry of analyzers in the style of go/analysis,
// each inspecting one artifact layer of a synthesized design — the
// data-flow graph, the schedule and its recorded move frames, the
// Liapunov trajectory, the RTL datapath, the FSM controller, and the
// emitted netlist text — and reporting typed diag.Diagnostic findings
// with stable codes (see internal/diag's registry).
//
// Analyzers are independent and run concurrently on the shared worker
// pool; aggregation is deterministic (input order, then diag.Sort), so
// a lint run is byte-identical at every parallelism setting. The
// cmd/hlslint CLI and core.Config.Lint both drive this package.
package lint

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ctrl"
	"repro/internal/dfg"
	"repro/internal/diag"
	"repro/internal/pool"
	"repro/internal/rtl"
	"repro/internal/sched"
)

// Unit bundles the artifacts of one synthesized design for a lint run.
// Only Graph is mandatory; analyzers whose artifact is absent report
// nothing, so a Unit holding just a graph and a schedule gets the DFG,
// frames and Liapunov passes and skips the rest.
type Unit struct {
	// Design is the design name used in diagnostics; empty defaults to
	// Graph.Name.
	Design string

	// Graph is the behavioral data-flow graph.
	Graph *dfg.Graph

	// Outputs lists the declared primary outputs. Empty means the graph's
	// sinks are the outputs (every node feeds an output transitively), in
	// which case the dead-node check is vacuous by construction.
	Outputs []string

	// Schedule is the MFS/MFSA result, with its recorded Trace when the
	// scheduler produced one.
	Schedule *sched.Schedule

	// Limits are the per-type FU instance limits the schedule was run
	// under, if any.
	Limits map[string]int

	// Datapath is the allocated RTL structure.
	Datapath *rtl.Datapath

	// Style2 asserts the datapath was built under the style-2 restriction
	// (no ALU executes two data-dependent operations).
	Style2 bool

	// Controller is the FSM control path.
	Controller *ctrl.Controller

	// Netlist is the emitted structural Verilog text.
	Netlist string
}

func (u *Unit) designName() string {
	if u.Design != "" {
		return u.Design
	}
	if u.Graph != nil {
		return u.Graph.Name
	}
	return ""
}

// Analyzer is one registered lint pass.
type Analyzer struct {
	// Name is the pass identifier, unique in the registry, used for
	// selection (-run) and stamped on every diagnostic the pass reports.
	Name string

	// Doc is a one-line description of what the pass checks.
	Doc string

	// Run inspects the unit and returns its findings. Run must be safe
	// for concurrent use with other analyzers over the same (read-only)
	// unit and must not mutate the unit's artifacts. A pass doing real
	// work polls ctx and returns early (with partial findings) once the
	// context is done; the driver then reports ctx.Err() instead of the
	// partial list.
	Run func(ctx context.Context, u *Unit) diag.List
}

// registry holds the built-in analyzers, ordered by name.
var registry = []*Analyzer{
	allocAnalyzer,
	ctrlAnalyzer,
	dfgAnalyzer,
	equivAnalyzer,
	framesAnalyzer,
	liapunovAnalyzer,
	netlistAnalyzer,
}

// Analyzers returns the registered passes sorted by name. The slice is
// fresh; the Analyzer values are shared.
func Analyzers() []*Analyzer {
	out := append([]*Analyzer(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Options configures a lint run.
type Options struct {
	// Analyzers selects passes by name; empty runs all of them.
	Analyzers []string

	// Parallelism bounds the worker pool: 0 = GOMAXPROCS, 1 =
	// sequential. Every setting produces identical output.
	Parallelism int
}

// Run executes the selected analyzers over the unit concurrently and
// returns the aggregated, deterministically sorted findings. A pass
// that panics is converted into an HL0001 error diagnostic rather than
// crashing the run. Run fails only on an unknown analyzer name.
func Run(u *Unit, opts Options) (diag.List, error) {
	return RunCtx(context.Background(), u, opts)
}

// RunCtx is Run with cancellation: no new analyzer starts once ctx is
// done, and the call returns ctx.Err() instead of partial findings.
func RunCtx(ctx context.Context, u *Unit, opts Options) (diag.List, error) {
	selected, err := selectAnalyzers(opts.Analyzers)
	if err != nil {
		return nil, err
	}
	design := u.designName()
	results, err := pool.MapCtx(ctx, pool.Size(opts.Parallelism), len(selected),
		func(i int) (diag.List, error) {
			return runOne(ctx, selected[i], u), nil
		})
	if err != nil {
		// Analyzers never return errors (panics become diagnostics), so
		// the only possible error here is the context's.
		return nil, err
	}
	var all diag.List
	//hls:ctxok stitches analyzer names onto findings the pooled analyzers already produced; nothing here blocks
	for i, ds := range results {
		for _, d := range ds {
			if d.Analyzer == "" {
				d.Analyzer = selected[i].Name
			}
			if d.Design == "" {
				d.Design = design
			}
			all = append(all, d)
		}
	}
	all.Sort()
	return all, nil
}

// runOne executes a single pass, converting panics into diagnostics so
// one broken analyzer cannot take down the whole run.
func runOne(ctx context.Context, a *Analyzer, u *Unit) (out diag.List) {
	defer func() {
		if r := recover(); r != nil {
			out = diag.List{{
				Code:     diag.CodeAnalyzerCrash,
				Severity: diag.Error,
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer %s panicked: %v", a.Name, r),
			}}
		}
	}()
	return a.Run(ctx, u)
}

func selectAnalyzers(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, a)
	}
	return out, nil
}
