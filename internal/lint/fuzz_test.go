package lint

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/ctrl"
	"repro/internal/emit"
	"repro/internal/mfsa"
)

// FuzzParseNetlist drives the Verilog-subset parser with arbitrary
// text and checks two properties:
//
//  1. the parser never panics, whatever the input (the netlist comes
//     from disk in cmd/hlslint and cannot be trusted), and neither
//     does the expression parser on any assign it extracted;
//  2. parsing is idempotent on re-emitted source: rendering the parsed
//     module and parsing the rendering again reaches a fixed point,
//     render(parse(render(parse(x)))) == render(parse(x)).
func FuzzParseNetlist(f *testing.F) {
	ex := benchmarks.Facet()
	res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: 4})
	if err != nil {
		f.Fatal(err)
	}
	c, err := ctrl.Build(ex.Graph, res.Schedule, res.Datapath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(emit.Verilog(ex.Graph, res.Schedule, res.Datapath, c))
	f.Add("")
	f.Add("module m (\n    input  wire clk\n);\nendmodule\n")
	f.Add("wire [31:0] w;\nassign w = a + b;\n")
	f.Add("always @(posedge clk) begin\ncase (state)\n3: begin\n    R0 <= w_x;\nend\nendcase\nend\n")
	f.Add("assign x = 32'd7;\nassign y = -x;;;\nassign z = x << 2;")
	f.Add("module q (\n    output wire [15:0] o\n);\nreg [2:0] state;\no <= state;\nendmodule")

	f.Fuzz(func(t *testing.T, src string) {
		m, _ := parseNetlist(src) // must not panic
		for _, a := range append(m.assigns, m.procs...) {
			parseNetExpr(a.raw) // must not panic either
		}
		norm := renderNetlist(m)
		m2, _ := parseNetlist(norm)
		if again := renderNetlist(m2); again != norm {
			t.Errorf("render∘parse not idempotent:\n--- first ---\n%s\n--- second ---\n%s", norm, again)
		}
	})
}
