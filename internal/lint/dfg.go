package lint

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfg"
	"repro/internal/diag"
)

// dfgAnalyzer re-derives the dataflow relation from each node's Args —
// deliberately ignoring the graph's cached pred/succ links — so it
// catches corruption the construction-time invariants can no longer
// see: dangling edges, cycles introduced by argument rewrites, dead
// nodes, arity drift against the op table, and stale cross-links.
var dfgAnalyzer = &Analyzer{
	Name: "dfg",
	Doc:  "dataflow-graph well-formedness: dangling edges, cycles, dead nodes, arity, cross-links",
	Run:  runDFG,
}

func runDFG(ctx context.Context, u *Unit) diag.List {
	g := u.Graph
	if g == nil {
		return nil
	}
	var out diag.List
	report := func(code string, sev diag.Severity, loc, msg, fix string) {
		out = append(out, diag.Diagnostic{
			Code: code, Severity: sev, Artifact: "dfg",
			Loc: loc, Message: msg, Fix: fix,
		})
	}

	inputs := make(map[string]bool)
	for _, in := range g.Inputs() {
		inputs[in] = true
	}
	// Independent name index: first producer wins, duplicates reported.
	producer := make(map[string]*dfg.Node, g.Len())
	for _, n := range g.Nodes() {
		if n.Name == "" {
			report(diag.CodeDFGEmptyName, diag.Error, fmt.Sprintf("node %d", n.ID),
				fmt.Sprintf("node %d has an empty output-signal name", n.ID),
				"every node must name the signal it produces")
			continue
		}
		if inputs[n.Name] {
			report(diag.CodeDFGDupName, diag.Error, n.Name,
				fmt.Sprintf("node %q shadows a primary input of the same name", n.Name),
				"rename the node or the input")
		}
		if prev, dup := producer[n.Name]; dup {
			report(diag.CodeDFGDupName, diag.Error, n.Name,
				fmt.Sprintf("nodes %d and %d both produce signal %q", prev.ID, n.ID, n.Name),
				"rename one of the nodes")
			continue
		}
		producer[n.Name] = n
	}

	for _, n := range g.Nodes() {
		if n.Cycles < 1 {
			report(diag.CodeDFGBadCycles, diag.Error, n.Name,
				fmt.Sprintf("node %q: cycle count %d, want >= 1", n.Name, n.Cycles),
				"multicycle operations need a positive duration")
		}
		switch {
		case n.IsLoop():
			if n.Op.Valid() {
				report(diag.CodeDFGBadLoop, diag.Error, n.Name,
					fmt.Sprintf("folded loop %q also carries op %v", n.Name, n.Op),
					"a loop node must have no operation kind")
			}
			if n.Sub != nil && n.SubOut != "" {
				if _, ok := n.Sub.Lookup(n.SubOut); !ok {
					report(diag.CodeDFGBadLoop, diag.Error, n.Name,
						fmt.Sprintf("folded loop %q: inner output %q not produced by the sub-graph", n.Name, n.SubOut),
						"SubOut must name a node of the loop body")
				}
			}
		case !n.Op.Valid():
			report(diag.CodeDFGArity, diag.Error, n.Name,
				fmt.Sprintf("node %q has an invalid operation kind", n.Name), "")
		case len(n.Args) != n.Op.Arity():
			report(diag.CodeDFGArity, diag.Error, n.Name,
				fmt.Sprintf("node %q: op %v takes %d operand(s), has %d",
					n.Name, n.Op, n.Op.Arity(), len(n.Args)),
				"match the operand list to the op table arity")
		}
		for _, a := range n.Args {
			if !inputs[a] {
				if _, ok := producer[a]; !ok {
					report(diag.CodeDFGUndefined, diag.Error, n.Name,
						fmt.Sprintf("node %q reads %q, which no input or node produces", n.Name, a),
						"declare the input or add the producing node")
				}
			}
		}
	}

	cycleIDs := dfgCycleNodes(g, producer)
	for _, id := range cycleIDs {
		n := g.Node(id)
		report(diag.CodeDFGCycle, diag.Error, n.Name,
			fmt.Sprintf("node %q lies on a dataflow cycle", n.Name),
			"break the cycle: a DFG must be acyclic")
	}

	// Cross-link audit: the cached pred set must equal the Args-derived
	// producer set. (Succs mirror preds; Validate checks the back-links.)
	for _, n := range g.Nodes() {
		derived := make(map[dfg.NodeID]bool)
		for _, a := range n.Args {
			if p, ok := producer[a]; ok {
				derived[p.ID] = true
			}
		}
		cached := make(map[dfg.NodeID]bool, len(n.Preds()))
		for _, p := range n.Preds() {
			cached[p] = true
		}
		if !sameIDSet(derived, cached) {
			report(diag.CodeDFGCrossLink, diag.Error, n.Name,
				fmt.Sprintf("node %q: cached predecessors %v disagree with Args-derived %v",
					n.Name, sortedIDs(cached), sortedIDs(derived)),
				"the Args relation and the pred/succ cache have diverged")
		}
	}

	// Dead-node sweep: backwards reachability from the declared outputs.
	outputs := u.Outputs
	if len(outputs) == 0 {
		outputs = g.Outputs()
	}
	if len(cycleIDs) == 0 { // reachability is only meaningful on a DAG
		live := make(map[dfg.NodeID]bool)
		var mark func(name string)
		mark = func(name string) {
			p, ok := producer[name]
			if !ok || live[p.ID] {
				return
			}
			live[p.ID] = true
			for _, a := range p.Args {
				mark(a)
			}
		}
		for _, o := range outputs {
			mark(o)
		}
		for _, n := range g.Nodes() {
			if !live[n.ID] {
				report(diag.CodeDFGDeadNode, diag.Warn, n.Name,
					fmt.Sprintf("node %q does not reach any output (%s)", n.Name,
						strings.Join(outputs, ", ")),
					"dead code: remove the node or declare its signal an output")
			}
		}
	}
	return out
}

// dfgCycleNodes detects cycles in the Args-derived relation (NOT the
// cached links) and returns the IDs of every node on a cycle, sorted.
func dfgCycleNodes(g *dfg.Graph, producer map[string]*dfg.Node) []dfg.NodeID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[dfg.NodeID]int, g.Len())
	onCycle := make(map[dfg.NodeID]bool)
	// Iterative DFS with a gray-path stack: when an edge reaches a gray
	// node, every node on the path since it is on a cycle.
	var path []dfg.NodeID
	var visit func(n *dfg.Node)
	visit = func(n *dfg.Node) {
		color[n.ID] = gray
		path = append(path, n.ID)
		for _, a := range n.Args {
			p, ok := producer[a]
			if !ok {
				continue
			}
			switch color[p.ID] {
			case white:
				visit(p)
			case gray:
				for i := len(path) - 1; i >= 0; i-- {
					onCycle[path[i]] = true
					if path[i] == p.ID {
						break
					}
				}
			}
		}
		path = path[:len(path)-1]
		color[n.ID] = black
	}
	for _, n := range g.Nodes() {
		if color[n.ID] == white {
			visit(n)
		}
	}
	ids := make([]dfg.NodeID, 0, len(onCycle))
	for id := range onCycle {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sameIDSet(a, b map[dfg.NodeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

func sortedIDs(set map[dfg.NodeID]bool) []dfg.NodeID {
	ids := make([]dfg.NodeID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
