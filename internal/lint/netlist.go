package lint

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/diag"
)

// netlistAnalyzer re-parses the emitted structural Verilog and checks
// it as a netlist, without trusting the emitter that produced it:
// undriven and multiply-driven nets, undeclared identifiers, duplicate
// declarations (sanitize collisions), width mismatches on direct
// connections, unassigned output ports, and combinational loops
// through the continuous-assign network.
var netlistAnalyzer = &Analyzer{
	Name: "netlist",
	Doc:  "netlist lint on the emitted Verilog: drivers, declarations, widths, combinational loops",
	Run:  runNetlist,
}

func runNetlist(ctx context.Context, u *Unit) diag.List {
	if u.Netlist == "" {
		return nil
	}
	m, out := parseNetlist(u.Netlist)
	report := func(code string, sev diag.Severity, line int, msg string) {
		out = append(out, diag.Diagnostic{
			Code: code, Severity: sev, Artifact: "netlist",
			Loc: fmt.Sprintf("line %d", line), Message: msg,
		})
	}

	// Driver census: continuous assigns and procedural writes per net.
	contDrivers := make(map[string][]*netAssign)
	procDrivers := make(map[string][]*netAssign)
	for _, a := range m.assigns {
		contDrivers[a.lhs] = append(contDrivers[a.lhs], a)
	}
	for _, a := range m.procs {
		procDrivers[a.lhs] = append(procDrivers[a.lhs], a)
	}

	// Undeclared identifiers, on either side of any assignment.
	checkDeclared := func(name string, line int, role string) {
		if _, ok := m.decls[name]; !ok {
			report(diag.CodeNetUndeclared, diag.Error, line,
				fmt.Sprintf("%s %q is never declared", role, name))
		}
	}
	for _, a := range m.assigns {
		checkDeclared(a.lhs, a.line, "assignment target")
		for _, r := range a.rhs {
			checkDeclared(r, a.line, "identifier")
		}
	}
	for _, a := range m.procs {
		checkDeclared(a.lhs, a.line, "assignment target")
		for _, r := range a.rhs {
			checkDeclared(r, a.line, "identifier")
		}
	}

	// Per-net driver rules, in declaration order for determinism.
	used := make(map[string]bool) // nets read by some RHS
	for _, a := range m.assigns {
		for _, r := range a.rhs {
			used[r] = true
		}
	}
	for _, a := range m.procs {
		for _, r := range a.rhs {
			used[r] = true
		}
	}
	for _, name := range m.order {
		d := m.decls[name]
		cont, proc := contDrivers[name], procDrivers[name]
		switch {
		case d.kind == "input":
			if len(cont) > 0 || len(proc) > 0 {
				line := d.line
				if len(cont) > 0 {
					line = cont[0].line
				} else {
					line = proc[0].line
				}
				report(diag.CodeNetMultiDriven, diag.Error, line,
					fmt.Sprintf("input port %q is driven inside the module", name))
			}
		case len(cont) > 1:
			report(diag.CodeNetMultiDriven, diag.Error, cont[1].line,
				fmt.Sprintf("net %q has %d continuous drivers (first at line %d)", name, len(cont), cont[0].line))
		case len(cont) > 0 && len(proc) > 0:
			report(diag.CodeNetMultiDriven, diag.Error, proc[0].line,
				fmt.Sprintf("net %q is driven both continuously (line %d) and procedurally (line %d)",
					name, cont[0].line, proc[0].line))
		case d.kind == "output" && len(cont) == 0 && len(proc) == 0:
			report(diag.CodeNetOutput, diag.Error, d.line,
				fmt.Sprintf("output port %q is never assigned", name))
		case d.kind == "wire" && used[name] && len(cont) == 0 && len(proc) == 0:
			report(diag.CodeNetUndriven, diag.Error, d.line,
				fmt.Sprintf("wire %q is read but never driven", name))
		}
	}

	// Width agreement on direct connections (assign a = b with both
	// sides declared). Expressions are skipped: the emitted subset only
	// ever combines same-width operands, and re-deriving expression
	// widths would duplicate the emitter's job rather than check it.
	checkWidth := func(a *netAssign) {
		if a.rhsIdent == "" {
			return
		}
		l, lok := m.decls[a.lhs]
		r, rok := m.decls[a.rhsIdent]
		if lok && rok && l.width != r.width {
			report(diag.CodeNetWidth, diag.Error, a.line,
				fmt.Sprintf("width mismatch: %q is %d bits, %q is %d bits", a.lhs, l.width, a.rhsIdent, r.width))
		}
	}
	for _, a := range m.assigns {
		checkWidth(a)
	}
	for _, a := range m.procs {
		checkWidth(a)
	}

	out = append(out, netCombLoops(m)...)
	return out
}

// netCombLoops finds cycles in the continuous-assign dependency graph.
// Procedural (clocked) assignments break combinational paths and are
// excluded; a cycle purely through assign statements is unsimulatable
// hardware.
func netCombLoops(m *netModule) diag.List {
	deps := make(map[string][]string) // lhs -> identifiers its assign reads
	line := make(map[string]int)
	for _, a := range m.assigns {
		deps[a.lhs] = append(deps[a.lhs], a.rhs...)
		if _, ok := line[a.lhs]; !ok {
			line[a.lhs] = a.line
		}
	}
	names := make([]string, 0, len(deps))
	for n := range deps {
		names = append(names, n)
	}
	sort.Strings(names)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	onLoop := make(map[string]bool)
	var stack []string
	var visit func(n string)
	visit = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		for _, d := range deps[n] {
			switch color[d] {
			case white:
				if _, driven := deps[d]; driven {
					visit(d)
				}
			case gray:
				for i := len(stack) - 1; i >= 0; i-- {
					onLoop[stack[i]] = true
					if stack[i] == d {
						break
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range names {
		if color[n] == white {
			visit(n)
		}
	}

	var out diag.List
	looped := make([]string, 0, len(onLoop))
	for n := range onLoop {
		looped = append(looped, n)
	}
	sort.Strings(looped)
	for _, n := range looped {
		out = append(out, diag.Diagnostic{
			Code: diag.CodeNetCombLoop, Severity: diag.Error, Artifact: "netlist",
			Loc:     fmt.Sprintf("line %d", line[n]),
			Message: fmt.Sprintf("net %q lies on a combinational loop through assign statements", n),
		})
	}
	return out
}
