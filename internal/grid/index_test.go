package grid

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dfg"
	"repro/internal/op"
)

// checkIndex asserts both occupancy bitsets exactly mirror the cell
// array: bit (step, index) set iff the cell holds at least one occupant.
func checkIndex(t *testing.T, tb *Table, when string) {
	t.Helper()
	if got, want := tb.rowWords, wordsPerRow(tb.Max); got != want {
		t.Fatalf("%s: rowWords = %d, want %d", when, got, want)
	}
	if got, want := len(tb.occRow), tb.CS*tb.rowWords; got != want {
		t.Fatalf("%s: len(occRow) = %d, want %d", when, got, want)
	}
	if got, want := len(tb.occCol), tb.Max*tb.colWords; got != want {
		t.Fatalf("%s: len(occCol) = %d, want %d", when, got, want)
	}
	for s := 1; s <= tb.CS; s++ {
		for i := 1; i <= tb.Max; i++ {
			occupied := len(tb.cells[(i-1)*tb.CS+(s-1)]) > 0
			rowBit := tb.occRow[(s-1)*tb.rowWords+(i-1)/64]&(uint64(1)<<uint((i-1)%64)) != 0
			colBit := tb.occCol[(i-1)*tb.colWords+(s-1)/64]&(uint64(1)<<uint((s-1)%64)) != 0
			if rowBit != occupied || colBit != occupied {
				t.Fatalf("%s: (t%d,fu%d): occupied=%v rowBit=%v colBit=%v",
					when, s, i, occupied, rowBit, colBit)
			}
		}
	}
	// No stray bits past Max within the last row word, or past CS within
	// the last column word — Grow's repack correctness depends on that.
	for s := 0; s < tb.CS; s++ {
		for w := 0; w < tb.rowWords; w++ {
			hi := tb.Max - 1 - w*64
			if hi > 63 {
				hi = 63
			}
			if hi < 0 {
				if tb.occRow[s*tb.rowWords+w] != 0 {
					t.Fatalf("%s: stray occRow bits in word past Max", when)
				}
				continue
			}
			if tb.occRow[s*tb.rowWords+w]&^maskRange(0, hi) != 0 {
				t.Fatalf("%s: stray occRow bits past Max in step %d", when, s+1)
			}
		}
	}
	for i := 0; i < tb.Max; i++ {
		for w := 0; w < tb.colWords; w++ {
			hi := tb.CS - 1 - w*64
			if hi > 63 {
				hi = 63
			}
			if tb.occCol[i*tb.colWords+w]&^maskRange(0, hi) != 0 {
				t.Fatalf("%s: stray occCol bits past CS in column %d", when, i+1)
			}
		}
	}
}

// exclGraph builds a graph of n Mul ops where every third op carries a
// mutual-exclusion tag, alternating branches — so some pairs share cells.
func exclGraph(t *testing.T, n int, tagged bool) (*dfg.Graph, []dfg.NodeID) {
	t.Helper()
	g := dfg.New("idx")
	if err := g.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	ids := make([]dfg.NodeID, n)
	for i := 0; i < n; i++ {
		id, err := g.AddOp(fmt.Sprintf("n%d", i), op.Mul, "a", "a")
		if err != nil {
			t.Fatal(err)
		}
		if tagged && i%3 != 0 {
			g.Tag(id, dfg.CondTag{Cond: 1, Branch: i % 2})
		}
		ids[i] = id
	}
	return g, ids
}

// TestOccupancyIndexProperty drives randomized Place/Remove/Grow
// sequences — across Latency folding, Pipelined footprints, multicycle
// durations, and mutual-exclusion sharing — and asserts after every
// mutation that the mirrored bitsets exactly track cell occupancy.
func TestOccupancyIndexProperty(t *testing.T) {
	configs := []struct {
		name      string
		cs        int
		latency   int
		pipelined bool
		tagged    bool
	}{
		{"plain", 9, 0, false, false},
		{"excl", 9, 0, false, true},
		{"latency", 12, 4, false, false},
		{"pipelined", 9, 0, true, false},
		{"wide", 200, 0, false, true}, // colWords > 1
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(17))
			for trial := 0; trial < 20; trial++ {
				g, ids := exclGraph(t, 40, cfg.tagged)
				cycles := make(map[dfg.NodeID]int, len(ids))
				for _, id := range ids {
					c := 1 + r.Intn(3)
					g.SetCycles(id, c)
					cycles[id] = c
				}
				tb := NewTable("*", cfg.cs, 0)
				tb.Latency = cfg.latency
				tb.Pipelined = cfg.pipelined
				type placed struct {
					id dfg.NodeID
					p  Pos
				}
				var live []placed
				for step := 0; step < 120; step++ {
					switch {
					case r.Intn(8) == 0:
						tb.Grow(tb.Max + 1 + r.Intn(70)) // crosses 64-column words
					case len(live) > 0 && r.Intn(3) == 0:
						k := r.Intn(len(live))
						pl := live[k]
						tb.Remove(pl.id, pl.p, cycles[pl.id])
						live = append(live[:k], live[k+1:]...)
					default:
						if tb.Max == 0 {
							tb.Grow(1 + r.Intn(5))
						}
						id := ids[r.Intn(len(ids))]
						used := false
						for _, pl := range live {
							if pl.id == id {
								used = true
								break
							}
						}
						if used {
							continue
						}
						p := Pos{Step: 1 + r.Intn(cfg.cs), Index: 1 + r.Intn(tb.Max)}
						if tb.CanPlace(g, id, p, cycles[id]) {
							if err := tb.Place(g, id, p, cycles[id]); err != nil {
								t.Fatalf("trial %d: CanPlace true but Place failed: %v", trial, err)
							}
							live = append(live, placed{id, p})
						}
					}
					checkIndex(t, tb, fmt.Sprintf("trial %d op %d", trial, step))
				}
				for _, pl := range live {
					tb.Remove(pl.id, pl.p, cycles[pl.id])
				}
				checkIndex(t, tb, fmt.Sprintf("trial %d after teardown", trial))
				for _, w := range tb.occRow {
					if w != 0 {
						t.Fatalf("trial %d: occRow not empty after removing everything", trial)
					}
				}
				for _, w := range tb.occCol {
					if w != 0 {
						t.Fatalf("trial %d: occCol not empty after removing everything", trial)
					}
				}
			}
		})
	}
}

// TestScanPlaceableMatchesNaive pins the tentpole's bit-identity claim at
// the grid layer: over randomized occupancy, every (order × exclusion ×
// duration × window) walk visits exactly the positions the per-cell
// CanPlace loop accepts, in exactly the same order.
func TestScanPlaceableMatchesNaive(t *testing.T) {
	for _, cfg := range []struct {
		name      string
		cs        int
		latency   int
		pipelined bool
		tagged    bool
	}{
		{"plain", 9, 0, false, false},
		{"excl", 9, 0, false, true},
		{"latency", 12, 4, false, true},
		{"pipelined", 9, 0, true, false},
		{"tall", 130, 0, false, false}, // multi-word columns
	} {
		t.Run(cfg.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(99))
			for trial := 0; trial < 25; trial++ {
				g, ids := exclGraph(t, 60, cfg.tagged)
				tb := NewTable("*", cfg.cs, 70+r.Intn(70))
				tb.Latency = cfg.latency
				tb.Pipelined = cfg.pipelined
				for _, id := range ids {
					c := 1 + r.Intn(3)
					g.SetCycles(id, c)
					p := Pos{Step: 1 + r.Intn(cfg.cs), Index: 1 + r.Intn(tb.Max)}
					if tb.CanPlace(g, id, p, c) {
						if err := tb.Place(g, id, p, c); err != nil {
							t.Fatal(err)
						}
					}
				}
				probe, err := g.AddOp("probe", op.Mul, "a", "a")
				if err != nil {
					t.Fatal(err)
				}
				cyc := 1 + r.Intn(3)
				g.SetCycles(probe, cyc)
				excl := g.HasExclusions()
				for _, ord := range []Order{RowMajor, ColMajor} {
					lo := 1 + r.Intn(cfg.cs)
					hi := lo + r.Intn(cfg.cs)
					idxHi := 1 + r.Intn(tb.Max+4)
					var fast, slow []Pos
					tb.ScanPlaceable(g, probe, excl, ord, lo, hi, idxHi, cyc, func(p Pos) bool {
						fast = append(fast, p)
						return true
					})
					sLo, sHi, sIdx := lo, hi, idxHi
					if top := tb.CS - cyc + 1; sHi > top {
						sHi = top
					}
					if sIdx > tb.Max {
						sIdx = tb.Max
					}
					tb.scanNaive(g, probe, ord, sLo, sHi, sIdx, cyc, func(p Pos) bool {
						slow = append(slow, p)
						return true
					})
					if len(fast) != len(slow) {
						t.Fatalf("trial %d ord %v: indexed walk found %d positions, naive %d",
							trial, ord, len(fast), len(slow))
					}
					for i := range fast {
						if fast[i] != slow[i] {
							t.Fatalf("trial %d ord %v: position %d: indexed %v, naive %v",
								trial, ord, i, fast[i], slow[i])
						}
					}
					// Early termination agrees too.
					if len(fast) > 1 {
						var first Pos
						got := 0
						tb.ScanPlaceable(g, probe, excl, ord, lo, hi, idxHi, cyc, func(p Pos) bool {
							first, got = p, got+1
							return false
						})
						if got != 1 || first != fast[0] {
							t.Fatalf("trial %d ord %v: early stop visited %d, first %v (want %v)",
								trial, ord, got, first, fast[0])
						}
					}
				}
			}
		})
	}
}

// TestIndexPathSelection pins which configurations run the word-scan
// fast path and which fall back to the naive CanPlace walk — the
// exclusion/latency fallback rules of DESIGN.md §15.
func TestIndexPathSelection(t *testing.T) {
	mk := func(cs, latency int, pipelined bool) *Table {
		tb := NewTable("*", cs, 4)
		tb.Latency = latency
		tb.Pipelined = pipelined
		return tb
	}
	cases := []struct {
		name   string
		tb     *Table
		ord    Order
		cycles int
		want   bool
	}{
		{"row-major plain", mk(8, 0, false), RowMajor, 1, true},
		{"col-major plain", mk(8, 0, false), ColMajor, 1, true},
		{"row-major multicycle", mk(8, 0, false), RowMajor, 3, true},
		{"row-major latency folds masks", mk(8, 4, false), RowMajor, 2, true},
		{"col-major latency falls back", mk(8, 4, false), ColMajor, 1, false},
		{"latency past CS falls back", mk(4, 6, false), RowMajor, 1, false},
		{"pipelined single-row footprint", mk(8, 0, true), RowMajor, 64, true},
		{"64-row footprint falls back", mk(200, 0, false), RowMajor, 64, false},
	}
	for _, c := range cases {
		if got := c.tb.walkIndexed(c.ord, c.cycles); got != c.want {
			t.Errorf("%s: walkIndexed = %v, want %v", c.name, got, c.want)
		}
	}
	defer func() { DisableIndex = false }()
	DisableIndex = true
	if mk(8, 0, false).walkIndexed(RowMajor, 1) {
		t.Error("DisableIndex set: walkIndexed should be false")
	}
}

// TestScanPlaceableAllocs pins the zero-allocation claim of the index
// walks, in the style of TestFrameAlgebraAllocs.
func TestScanPlaceableAllocs(t *testing.T) {
	g, ids := exclGraph(t, 30, false)
	tb := NewTable("*", 20, 130)
	r := rand.New(rand.NewSource(5))
	for _, id := range ids {
		p := Pos{Step: 1 + r.Intn(20), Index: 1 + r.Intn(130)}
		if tb.CanPlace(g, id, p, 1) {
			if err := tb.Place(g, id, p, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	probe := ids[0]
	tb.Remove(probe, Pos{}, 1) // no-op if unplaced; probe may be on the table
	n := 0
	for _, ord := range []Order{RowMajor, ColMajor} {
		if a := testing.AllocsPerRun(100, func() {
			n = 0
			tb.ScanPlaceable(g, probe, false, ord, 1, 20, 130, 1, func(Pos) bool {
				n++
				return true
			})
		}); a != 0 {
			t.Errorf("ScanPlaceable(%v) allocates %.0f, want 0", ord, a)
		}
		if n == 0 {
			t.Fatalf("ScanPlaceable(%v) found no positions on a sparse table", ord)
		}
	}
	if a := testing.AllocsPerRun(100, func() {
		p := Pos{Step: 3, Index: 7}
		if tb.CanPlace(g, probe, p, 1) {
			if err := tb.Place(g, probe, p, 1); err != nil {
				t.Fatal(err)
			}
			tb.Remove(probe, p, 1)
		}
	}); a != 0 {
		t.Errorf("Place+Remove with index maintenance allocates %.0f, want 0", a)
	}
}

// BenchmarkWindowWalk measures both scan orders over a half-occupied
// 64×256 window, indexed against the naive per-cell reference walk.
func BenchmarkWindowWalk(b *testing.B) {
	g := dfg.New("bench")
	if err := g.AddInput("a"); err != nil {
		b.Fatal(err)
	}
	const cs, max = 64, 256
	tb := NewTable("*", cs, max)
	r := rand.New(rand.NewSource(7))
	for i := 0; ; i++ {
		id, err := g.AddOp(fmt.Sprintf("n%d", i), op.Mul, "a", "a")
		if err != nil {
			b.Fatal(err)
		}
		placedAny := false
		for tries := 0; tries < 4; tries++ {
			p := Pos{Step: 1 + r.Intn(cs), Index: 1 + r.Intn(max)}
			if tb.CanPlace(g, id, p, 1) {
				if err := tb.Place(g, id, p, 1); err != nil {
					b.Fatal(err)
				}
				placedAny = true
				break
			}
		}
		if !placedAny || i >= cs*max/2 {
			break
		}
	}
	probe, err := g.AddOp("probe", op.Mul, "a", "a")
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name string
		ord  Order
	}{
		{"row-major", RowMajor},
		{"col-major", ColMajor},
	} {
		b.Run(bench.name+"/indexed", func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				tb.ScanPlaceable(g, probe, false, bench.ord, 1, cs, max, 1, func(Pos) bool {
					n++
					return true
				})
			}
		})
		b.Run(bench.name+"/naive", func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				tb.scanNaive(g, probe, bench.ord, 1, cs, max, 1, func(Pos) bool {
					n++
					return true
				})
			}
		})
	}
}
