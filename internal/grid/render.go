package grid

import (
	"fmt"
	"strings"
)

// Render draws the table as ASCII art in the style of the paper's
// Figures 1 and 2: columns are FU instances, rows are control steps
// (downward). Cell glyphs, in priority order:
//
//	label  caller-supplied marker (e.g. the chosen position "r*")
//	X      occupied by a placed operation
//	M      in the move frame (valid position)
//	F      in the forbidden frame
//	R      in the redundant frame
//	P      in the primary frame (but excluded from MF)
//	.      none of the above
//
// fs and labels may be nil.
func Render(t *Table, fs *FrameSet, labels map[Pos]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (rows: control steps 1..%d, cols: FU 1..%d)\n", t.Type, t.CS, t.Max)
	b.WriteString("      ")
	for i := 1; i <= t.Max; i++ {
		fmt.Fprintf(&b, "%4s", fmt.Sprintf("fu%d", i))
	}
	b.WriteByte('\n')
	for s := 1; s <= t.CS; s++ {
		fmt.Fprintf(&b, "  t%-3d", s)
		for i := 1; i <= t.Max; i++ {
			fmt.Fprintf(&b, "%4s", glyph(t, fs, labels, Pos{s, i}))
		}
		b.WriteByte('\n')
	}
	if fs != nil {
		fmt.Fprintf(&b, "  legend: P=primary R=redundant F=forbidden M=move X=occupied |PF|=%d |RF|=%d |FF|=%d |MF|=%d\n",
			fs.PF.Len(), fs.RF.Len(), fs.FF.Len(), fs.MF.Len())
	}
	return b.String()
}

func glyph(t *Table, fs *FrameSet, labels map[Pos]string, p Pos) string {
	if l, ok := labels[p]; ok {
		return l
	}
	if len(t.At(p)) > 0 {
		return "X"
	}
	if fs != nil {
		switch {
		case fs.MF.Contains(p):
			return "M"
		case fs.FF.Contains(p):
			return "F"
		case fs.RF.Contains(p):
			return "R"
		case fs.PF.Contains(p):
			return "P"
		}
	}
	return "."
}
