package grid

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/op"
)

func testGraph(t *testing.T) (*dfg.Graph, dfg.NodeID, dfg.NodeID, dfg.NodeID) {
	t.Helper()
	g := dfg.New("g")
	if err := g.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	x, _ := g.AddOp("x", op.Add, "a", "a")
	y, _ := g.AddOp("y", op.Sub, "a", "a")
	z, _ := g.AddOp("z", op.Mul, "a", "a")
	g.Tag(x, dfg.CondTag{Cond: 1, Branch: 0})
	g.Tag(y, dfg.CondTag{Cond: 1, Branch: 1})
	return g, x, y, z
}

func TestRect(t *testing.T) {
	f := Rect(2, 4, 1, 3)
	if len(f) != 9 {
		t.Errorf("|Rect(2,4,1,3)| = %d, want 9", len(f))
	}
	if !f.Contains(Pos{2, 1}) || !f.Contains(Pos{4, 3}) || f.Contains(Pos{1, 1}) {
		t.Error("Rect membership wrong")
	}
	if !Rect(3, 2, 1, 1).Empty() {
		t.Error("inverted Rect not empty")
	}
}

func TestFrameAlgebra(t *testing.T) {
	a := Rect(1, 2, 1, 2) // 4 cells
	b := Rect(2, 3, 1, 2) // 4 cells, 2 shared
	u := a.Union(b)
	if len(u) != 6 {
		t.Errorf("|a∪b| = %d, want 6", len(u))
	}
	m := a.Minus(b)
	if len(m) != 2 || !m.Contains(Pos{1, 1}) || !m.Contains(Pos{1, 2}) {
		t.Errorf("a−b = %v", m.Positions())
	}
	// MF = PF − (RF ∪ FF) as in the paper.
	mf := a.Minus(b.Union(Rect(1, 1, 1, 1)))
	if len(mf) != 1 || !mf.Contains(Pos{1, 2}) {
		t.Errorf("MF = %v", mf.Positions())
	}
}

func TestFrameAlgebraProperties(t *testing.T) {
	// Property: for random rectangles, |A−B| + |A∩B| == |A| where
	// A∩B = A − (A−B).
	f := func(a1, a2, b1, b2 uint8) bool {
		A := Rect(int(a1%5)+1, int(a1%5)+1+int(a2%4), 1, 3)
		B := Rect(int(b1%5)+1, int(b1%5)+1+int(b2%4), 2, 4)
		diff := A.Minus(B)
		inter := A.Minus(diff)
		return len(diff)+len(inter) == len(A)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPositionsSorted(t *testing.T) {
	f := Frame{{3, 1}: true, {1, 2}: true, {1, 1}: true, {2, 5}: true}
	ps := f.Positions()
	for i := 1; i < len(ps); i++ {
		a, b := ps[i-1], ps[i]
		if a.Step > b.Step || (a.Step == b.Step && a.Index >= b.Index) {
			t.Fatalf("Positions not sorted: %v", ps)
		}
	}
}

func TestPlaceAndConflict(t *testing.T) {
	g, x, y, z := testGraph(t)
	tb := NewTable("+", 4, 3)
	if err := tb.Place(g, x, Pos{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	// z (not exclusive with x) cannot share the cell.
	if tb.CanPlace(g, z, Pos{1, 1}, 1) {
		t.Error("non-exclusive sharing allowed")
	}
	// y (exclusive with x) can.
	if !tb.CanPlace(g, y, Pos{1, 1}, 1) {
		t.Error("exclusive sharing refused")
	}
	if err := tb.Place(g, y, Pos{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(tb.At(Pos{1, 1})); got != 2 {
		t.Errorf("occupants = %d, want 2", got)
	}
	// z can still go next to them.
	if err := tb.Place(g, z, Pos{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	if tb.UsedColumns() != 2 {
		t.Errorf("UsedColumns = %d, want 2", tb.UsedColumns())
	}
}

func TestPlaceBounds(t *testing.T) {
	g, x, _, _ := testGraph(t)
	tb := NewTable("+", 3, 2)
	for _, p := range []Pos{{0, 1}, {1, 0}, {4, 1}, {1, 3}} {
		if tb.CanPlace(g, x, p, 1) {
			t.Errorf("CanPlace(%v) out of bounds accepted", p)
		}
	}
	// Multicycle op spilling past CS.
	if tb.CanPlace(g, x, Pos{3, 1}, 2) {
		t.Error("multicycle spill accepted")
	}
	if !tb.CanPlace(g, x, Pos{2, 1}, 2) {
		t.Error("fitting multicycle refused")
	}
	if err := tb.Place(g, x, Pos{4, 1}, 1); err == nil {
		t.Error("Place out of bounds accepted")
	}
}

func TestMulticycleFootprint(t *testing.T) {
	g, x, _, z := testGraph(t)
	tb := NewTable("*", 4, 2)
	if err := tb.Place(g, z, Pos{1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if len(tb.At(Pos{1, 1})) != 1 || len(tb.At(Pos{2, 1})) != 1 {
		t.Error("2-cycle footprint not recorded on both rows")
	}
	if tb.CanPlace(g, x, Pos{2, 1}, 1) {
		t.Error("overlap with 2nd cycle accepted")
	}
	tb.Remove(z, Pos{1, 1}, 2)
	if len(tb.At(Pos{1, 1})) != 0 || len(tb.At(Pos{2, 1})) != 0 {
		t.Error("Remove left footprint behind")
	}
	if tb.UsedColumns() != 0 {
		t.Error("UsedColumns after Remove != 0")
	}
}

func TestPipelinedFootprint(t *testing.T) {
	g, x, _, z := testGraph(t)
	tb := NewTable("*", 4, 1)
	tb.Pipelined = true
	if err := tb.Place(g, z, Pos{1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	// Stage frees next cycle: x can start at step 2 on the same unit.
	if !tb.CanPlace(g, x, Pos{2, 1}, 2) {
		t.Error("pipelined overlap refused")
	}
	if tb.CanPlace(g, x, Pos{1, 1}, 2) {
		t.Error("same-start pipelined conflict accepted")
	}
	// Even on a pipelined unit the op must complete within the schedule.
	if tb.CanPlace(g, x, Pos{4, 1}, 2) {
		t.Error("pipelined op spilling past cs accepted")
	}
	if !tb.CanPlace(g, x, Pos{3, 1}, 2) {
		t.Error("pipelined op finishing at cs refused")
	}
}

func TestLatencyFolding(t *testing.T) {
	g, x, _, z := testGraph(t)
	tb := NewTable("+", 4, 1)
	tb.Latency = 2
	if err := tb.Place(g, z, Pos{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	// Step 3 folds onto step 1 (mod 2): conflict.
	if tb.CanPlace(g, x, Pos{3, 1}, 1) {
		t.Error("modular conflict accepted")
	}
	if !tb.CanPlace(g, x, Pos{2, 1}, 1) {
		t.Error("non-conflicting fold refused")
	}
}

func TestOccupiedFrame(t *testing.T) {
	g, x, y, z := testGraph(t)
	tb := NewTable("+", 3, 2)
	tb.Place(g, x, Pos{1, 1}, 1)
	tb.Place(g, z, Pos{2, 2}, 1)
	// For y: x's cell is shareable (exclusive), z's is not.
	f := tb.OccupiedFrame(g, y)
	if f.Contains(Pos{1, 1}) {
		t.Error("exclusive occupant blocked the cell")
	}
	if !f.Contains(Pos{2, 2}) {
		t.Error("non-exclusive occupant not blocking")
	}
}

func TestRender(t *testing.T) {
	g, x, _, z := testGraph(t)
	tb := NewTable("+", 3, 2)
	tb.Place(g, x, Pos{1, 1}, 1)
	fs := &FrameSet{
		PF: Rect(1, 3, 1, 2),
		RF: Rect(1, 3, 2, 2),
		FF: Rect(1, 1, 1, 2),
		MF: Rect(2, 3, 1, 1),
	}
	out := Render(tb, fs, map[Pos]string{{2, 1}: "r*"})
	for _, want := range []string{"fu1", "fu2", "t1", "t3", "X", "M", "r*", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	// Without frames or labels it still renders.
	plain := Render(tb, nil, nil)
	if !strings.Contains(plain, "X") || strings.Contains(plain, "legend") {
		t.Errorf("plain Render wrong:\n%s", plain)
	}
	_ = z
}

func TestPlaceRemoveInvariants(t *testing.T) {
	// Property: any sequence of successful placements followed by their
	// removals leaves the table empty; occupancy never exceeds one op
	// per cell among non-exclusive ops.
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		g := dfg.New("pr")
		g.AddInput("a")
		type placed struct {
			id     dfg.NodeID
			p      Pos
			cycles int
		}
		tb := NewTable("*", 6, 3)
		var live []placed
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("n%d", i)
			id, err := g.AddOp(name, op.Mul, "a", "a")
			if err != nil {
				t.Fatal(err)
			}
			cyc := 1 + r.Intn(2)
			g.SetCycles(id, cyc)
			p := Pos{Step: 1 + r.Intn(6), Index: 1 + r.Intn(3)}
			if tb.CanPlace(g, id, p, cyc) {
				if err := tb.Place(g, id, p, cyc); err != nil {
					t.Fatalf("trial %d: CanPlace true but Place failed: %v", trial, err)
				}
				live = append(live, placed{id, p, cyc})
			}
		}
		// No two live ops overlap (none are exclusive).
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.p.Index != b.p.Index {
					continue
				}
				for ra := 0; ra < a.cycles; ra++ {
					for rb := 0; rb < b.cycles; rb++ {
						if a.p.Step+ra == b.p.Step+rb {
							t.Fatalf("trial %d: overlap at %v", trial, a.p)
						}
					}
				}
			}
		}
		for _, pl := range live {
			tb.Remove(pl.id, pl.p, pl.cycles)
		}
		if tb.UsedColumns() != 0 {
			t.Fatalf("trial %d: table not empty after removals", trial)
		}
	}
}
