package grid

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/op"
)

func testGraph(t *testing.T) (*dfg.Graph, dfg.NodeID, dfg.NodeID, dfg.NodeID) {
	t.Helper()
	g := dfg.New("g")
	if err := g.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	x, _ := g.AddOp("x", op.Add, "a", "a")
	y, _ := g.AddOp("y", op.Sub, "a", "a")
	z, _ := g.AddOp("z", op.Mul, "a", "a")
	g.Tag(x, dfg.CondTag{Cond: 1, Branch: 0})
	g.Tag(y, dfg.CondTag{Cond: 1, Branch: 1})
	return g, x, y, z
}

func TestRect(t *testing.T) {
	f := Rect(2, 4, 1, 3)
	if f.Len() != 9 {
		t.Errorf("|Rect(2,4,1,3)| = %d, want 9", f.Len())
	}
	if !f.Contains(Pos{2, 1}) || !f.Contains(Pos{4, 3}) || f.Contains(Pos{1, 1}) {
		t.Error("Rect membership wrong")
	}
	if !Rect(3, 2, 1, 1).Empty() {
		t.Error("inverted Rect not empty")
	}
	// Rectangles spanning a word boundary fill every column.
	wide := Rect(1, 2, 60, 70)
	if wide.Len() != 22 || !wide.Contains(Pos{1, 64}) || !wide.Contains(Pos{2, 65}) {
		t.Errorf("|Rect(1,2,60,70)| = %d, want 22", wide.Len())
	}
}

func TestFrameAlgebra(t *testing.T) {
	a := Rect(1, 2, 1, 2) // 4 cells
	b := Rect(2, 3, 1, 2) // 4 cells, 2 shared
	u := a.Union(b)
	if u.Len() != 6 {
		t.Errorf("|a∪b| = %d, want 6", u.Len())
	}
	m := a.Minus(b)
	if m.Len() != 2 || !m.Contains(Pos{1, 1}) || !m.Contains(Pos{1, 2}) {
		t.Errorf("a−b = %v", m.Positions())
	}
	// MF = PF − (RF ∪ FF) as in the paper.
	mf := a.Minus(b.Union(Rect(1, 1, 1, 1)))
	if mf.Len() != 1 || !mf.Contains(Pos{1, 2}) {
		t.Errorf("MF = %v", mf.Positions())
	}
}

func TestFrameAlgebraProperties(t *testing.T) {
	// Property: for random rectangles, |A−B| + |A∩B| == |A| where
	// A∩B = A − (A−B).
	f := func(a1, a2, b1, b2 uint8) bool {
		A := Rect(int(a1%5)+1, int(a1%5)+1+int(a2%4), 1, 3)
		B := Rect(int(b1%5)+1, int(b1%5)+1+int(b2%4), 2, 4)
		diff := A.Minus(B)
		inter := A.Minus(diff)
		return diff.Len()+inter.Len() == A.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mapFrame is the historical map-of-positions frame representation; the
// property tests below assert the bitset algebra agrees with it exactly.
type mapFrame map[Pos]bool

func mapRect(stepLo, stepHi, idxLo, idxHi int) mapFrame {
	f := make(mapFrame)
	for s := stepLo; s <= stepHi; s++ {
		for i := idxLo; i <= idxHi; i++ {
			f[Pos{s, i}] = true
		}
	}
	return f
}

func (f mapFrame) union(o mapFrame) mapFrame {
	out := make(mapFrame, len(f)+len(o))
	for p := range f {
		out[p] = true
	}
	for p := range o {
		out[p] = true
	}
	return out
}

func (f mapFrame) minus(o mapFrame) mapFrame {
	out := make(mapFrame, len(f))
	for p := range f {
		if !o[p] {
			out[p] = true
		}
	}
	return out
}

func sameSet(t *testing.T, ctx string, got Frame, want mapFrame) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("%s: bitset has %d positions, map has %d", ctx, got.Len(), len(want))
	}
	for _, p := range got.Positions() {
		if !want[p] {
			t.Fatalf("%s: bitset contains %v, map does not", ctx, p)
		}
	}
}

// TestBitsetMatchesMapSemantics drives the bitset Union/Minus/Positions
// through random rectangles (including word-boundary widths) and checks
// every result against the map-of-positions reference semantics.
func TestBitsetMatchesMapSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	randRect := func() (Frame, mapFrame) {
		sLo, iLo := 1+r.Intn(8), 1+r.Intn(70)
		sHi, iHi := sLo+r.Intn(8)-2, iLo+r.Intn(70)-2 // sometimes inverted → empty
		return Rect(sLo, sHi, iLo, iHi), mapRect(sLo, sHi, iLo, iHi)
	}
	for trial := 0; trial < 200; trial++ {
		a, ma := randRect()
		b, mb := randRect()
		c, mc := randRect()
		sameSet(t, "rect", a, ma)
		sameSet(t, "union", a.Union(b), ma.union(mb))
		sameSet(t, "minus", a.Minus(b), ma.minus(mb))
		sameSet(t, "mf", a.Minus(b.Union(c)), ma.minus(mb.union(mc)))
		// Positions must come out sorted by (step, index), and the two
		// scan orders must visit the same set.
		ps := a.Minus(b).Positions()
		for i := 1; i < len(ps); i++ {
			x, y := ps[i-1], ps[i]
			if x.Step > y.Step || (x.Step == y.Step && x.Index >= y.Index) {
				t.Fatalf("Positions not sorted: %v", ps)
			}
		}
		cols := 0
		a.ScanColumns(func(p Pos) bool {
			if !ma[p] {
				t.Fatalf("ScanColumns yielded %v outside the set", p)
			}
			cols++
			return true
		})
		if cols != len(ma) {
			t.Fatalf("ScanColumns visited %d positions, want %d", cols, len(ma))
		}
	}
}

// TestFrameAlgebraAllocs pins the zero-allocation property of the bitset
// algebra: each operation allocates O(1) — a single backing array for
// the result — regardless of the frame's area, and iteration allocates
// nothing at all.
func TestFrameAlgebraAllocs(t *testing.T) {
	for _, dim := range []struct{ cs, max int }{{4, 3}, {32, 16}, {128, 130}} {
		cs, max := dim.cs, dim.max
		var pf, rf, ff, mf Frame
		if a := testing.AllocsPerRun(100, func() {
			pf = Rect(1, cs, 1, max)
			rf = Rect(1, cs, max/2+1, max)
			ff = Rect(1, cs/2, 1, max)
		}); a > 3 {
			t.Errorf("%dx%d: Rect×3 allocates %.0f, want <= 3", cs, max, a)
		}
		if a := testing.AllocsPerRun(100, func() {
			mf = pf.Minus(rf.Union(ff))
		}); a > 2 {
			t.Errorf("%dx%d: Union+Minus allocates %.0f, want <= 2", cs, max, a)
		}
		n := 0
		if a := testing.AllocsPerRun(100, func() {
			n = 0
			mf.Scan(func(Pos) bool { n++; return true })
			mf.ScanColumns(func(Pos) bool { return true })
		}); a != 0 {
			t.Errorf("%dx%d: Scan allocates %.0f, want 0", cs, max, a)
		}
		if want := cs*max - cs*(max-max/2) - (cs/2)*(max/2); n != want {
			t.Errorf("%dx%d: |MF| = %d, want %d", cs, max, n, want)
		}
	}
}

func TestFrameAddAndEqual(t *testing.T) {
	var f Frame
	f.Add(Pos{2, 3})
	f.Add(Pos{2, 3}) // idempotent
	f.Add(Pos{5, 70})
	f.Add(Pos{0, 1}) // below the grid: ignored
	if f.Len() != 2 || !f.Contains(Pos{2, 3}) || !f.Contains(Pos{5, 70}) {
		t.Fatalf("Add produced %v", f.Positions())
	}
	g := Rect(2, 2, 3, 3)
	g.Add(Pos{5, 70})
	if !f.Equal(g) || !g.Equal(f) {
		t.Error("Equal false for equal sets with different boxes")
	}
	g.Add(Pos{1, 1})
	if f.Equal(g) {
		t.Error("Equal true for different sets")
	}
	if !Rect(1, 0, 1, 1).Equal(Frame{}) {
		t.Error("empty frames not equal")
	}
}

func TestPositionsSorted(t *testing.T) {
	var f Frame
	for _, p := range []Pos{{3, 1}, {1, 2}, {1, 1}, {2, 5}} {
		f.Add(p)
	}
	ps := f.Positions()
	for i := 1; i < len(ps); i++ {
		a, b := ps[i-1], ps[i]
		if a.Step > b.Step || (a.Step == b.Step && a.Index >= b.Index) {
			t.Fatalf("Positions not sorted: %v", ps)
		}
	}
}

func TestScanOrders(t *testing.T) {
	f := Rect(1, 2, 1, 2)
	var row, col []Pos
	f.Scan(func(p Pos) bool { row = append(row, p); return true })
	f.ScanColumns(func(p Pos) bool { col = append(col, p); return true })
	wantRow := []Pos{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	wantCol := []Pos{{1, 1}, {2, 1}, {1, 2}, {2, 2}}
	for i := range wantRow {
		if row[i] != wantRow[i] {
			t.Fatalf("Scan order = %v, want %v", row, wantRow)
		}
		if col[i] != wantCol[i] {
			t.Fatalf("ScanColumns order = %v, want %v", col, wantCol)
		}
	}
	// Early stop.
	seen := 0
	if f.Scan(func(Pos) bool { seen++; return false }) {
		t.Error("Scan did not report the early stop")
	}
	if seen != 1 {
		t.Errorf("Scan visited %d after stop, want 1", seen)
	}
}

func TestPlaceAndConflict(t *testing.T) {
	g, x, y, z := testGraph(t)
	tb := NewTable("+", 4, 3)
	if err := tb.Place(g, x, Pos{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	// z (not exclusive with x) cannot share the cell.
	if tb.CanPlace(g, z, Pos{1, 1}, 1) {
		t.Error("non-exclusive sharing allowed")
	}
	// y (exclusive with x) can.
	if !tb.CanPlace(g, y, Pos{1, 1}, 1) {
		t.Error("exclusive sharing refused")
	}
	if err := tb.Place(g, y, Pos{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(tb.At(Pos{1, 1})); got != 2 {
		t.Errorf("occupants = %d, want 2", got)
	}
	// z can still go next to them.
	if err := tb.Place(g, z, Pos{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	if tb.UsedColumns() != 2 {
		t.Errorf("UsedColumns = %d, want 2", tb.UsedColumns())
	}
}

func TestPlaceBounds(t *testing.T) {
	g, x, _, _ := testGraph(t)
	tb := NewTable("+", 3, 2)
	for _, p := range []Pos{{0, 1}, {1, 0}, {4, 1}, {1, 3}} {
		if tb.CanPlace(g, x, p, 1) {
			t.Errorf("CanPlace(%v) out of bounds accepted", p)
		}
	}
	// Multicycle op spilling past CS.
	if tb.CanPlace(g, x, Pos{3, 1}, 2) {
		t.Error("multicycle spill accepted")
	}
	if !tb.CanPlace(g, x, Pos{2, 1}, 2) {
		t.Error("fitting multicycle refused")
	}
	if err := tb.Place(g, x, Pos{4, 1}, 1); err == nil {
		t.Error("Place out of bounds accepted")
	}
}

func TestMulticycleFootprint(t *testing.T) {
	g, x, _, z := testGraph(t)
	tb := NewTable("*", 4, 2)
	if err := tb.Place(g, z, Pos{1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if len(tb.At(Pos{1, 1})) != 1 || len(tb.At(Pos{2, 1})) != 1 {
		t.Error("2-cycle footprint not recorded on both rows")
	}
	if tb.CanPlace(g, x, Pos{2, 1}, 1) {
		t.Error("overlap with 2nd cycle accepted")
	}
	tb.Remove(z, Pos{1, 1}, 2)
	if len(tb.At(Pos{1, 1})) != 0 || len(tb.At(Pos{2, 1})) != 0 {
		t.Error("Remove left footprint behind")
	}
	if tb.UsedColumns() != 0 {
		t.Error("UsedColumns after Remove != 0")
	}
}

func TestPipelinedFootprint(t *testing.T) {
	g, x, _, z := testGraph(t)
	tb := NewTable("*", 4, 1)
	tb.Pipelined = true
	if err := tb.Place(g, z, Pos{1, 1}, 2); err != nil {
		t.Fatal(err)
	}
	// Stage frees next cycle: x can start at step 2 on the same unit.
	if !tb.CanPlace(g, x, Pos{2, 1}, 2) {
		t.Error("pipelined overlap refused")
	}
	if tb.CanPlace(g, x, Pos{1, 1}, 2) {
		t.Error("same-start pipelined conflict accepted")
	}
	// Even on a pipelined unit the op must complete within the schedule.
	if tb.CanPlace(g, x, Pos{4, 1}, 2) {
		t.Error("pipelined op spilling past cs accepted")
	}
	if !tb.CanPlace(g, x, Pos{3, 1}, 2) {
		t.Error("pipelined op finishing at cs refused")
	}
}

func TestLatencyFolding(t *testing.T) {
	g, x, _, z := testGraph(t)
	tb := NewTable("+", 4, 1)
	tb.Latency = 2
	if err := tb.Place(g, z, Pos{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	// Step 3 folds onto step 1 (mod 2): conflict.
	if tb.CanPlace(g, x, Pos{3, 1}, 1) {
		t.Error("modular conflict accepted")
	}
	if !tb.CanPlace(g, x, Pos{2, 1}, 1) {
		t.Error("non-conflicting fold refused")
	}
}

func TestOccupiedFrame(t *testing.T) {
	g, x, y, z := testGraph(t)
	tb := NewTable("+", 3, 2)
	tb.Place(g, x, Pos{1, 1}, 1)
	tb.Place(g, z, Pos{2, 2}, 1)
	// For y: x's cell is shareable (exclusive), z's is not.
	f := tb.OccupiedFrame(g, y)
	if f.Contains(Pos{1, 1}) {
		t.Error("exclusive occupant blocked the cell")
	}
	if !f.Contains(Pos{2, 2}) {
		t.Error("non-exclusive occupant not blocking")
	}
}

func TestRender(t *testing.T) {
	g, x, _, z := testGraph(t)
	tb := NewTable("+", 3, 2)
	tb.Place(g, x, Pos{1, 1}, 1)
	fs := &FrameSet{
		PF: Rect(1, 3, 1, 2),
		RF: Rect(1, 3, 2, 2),
		FF: Rect(1, 1, 1, 2),
		MF: Rect(2, 3, 1, 1),
	}
	out := Render(tb, fs, map[Pos]string{{2, 1}: "r*"})
	for _, want := range []string{"fu1", "fu2", "t1", "t3", "X", "M", "r*", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	// Without frames or labels it still renders.
	plain := Render(tb, nil, nil)
	if !strings.Contains(plain, "X") || strings.Contains(plain, "legend") {
		t.Errorf("plain Render wrong:\n%s", plain)
	}
	_ = z
}

func TestPlaceRemoveInvariants(t *testing.T) {
	// Property: any sequence of successful placements followed by their
	// removals leaves the table empty; occupancy never exceeds one op
	// per cell among non-exclusive ops.
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		g := dfg.New("pr")
		g.AddInput("a")
		type placed struct {
			id     dfg.NodeID
			p      Pos
			cycles int
		}
		tb := NewTable("*", 6, 3)
		var live []placed
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("n%d", i)
			id, err := g.AddOp(name, op.Mul, "a", "a")
			if err != nil {
				t.Fatal(err)
			}
			cyc := 1 + r.Intn(2)
			g.SetCycles(id, cyc)
			p := Pos{Step: 1 + r.Intn(6), Index: 1 + r.Intn(3)}
			if tb.CanPlace(g, id, p, cyc) {
				if err := tb.Place(g, id, p, cyc); err != nil {
					t.Fatalf("trial %d: CanPlace true but Place failed: %v", trial, err)
				}
				live = append(live, placed{id, p, cyc})
			}
		}
		// No two live ops overlap (none are exclusive).
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.p.Index != b.p.Index {
					continue
				}
				for ra := 0; ra < a.cycles; ra++ {
					for rb := 0; rb < b.cycles; rb++ {
						if a.p.Step+ra == b.p.Step+rb {
							t.Fatalf("trial %d: overlap at %v", trial, a.p)
						}
					}
				}
			}
		}
		for _, pl := range live {
			tb.Remove(pl.id, pl.p, pl.cycles)
		}
		if tb.UsedColumns() != 0 {
			t.Fatalf("trial %d: table not empty after removals", trial)
		}
	}
}
