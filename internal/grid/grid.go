// Package grid implements the paper's 2-dimensional placement tables
// (Figure 1) and the frame algebra of MFS step 4: positions, rectangular
// frames, the set relation MF = PF − (RF ∪ FF), occupancy with
// mutual-exclusion sharing, and ASCII rendering used to reproduce the
// paper's Figures 1 and 2.
//
// One Table exists per functional-unit type: rows are control steps
// (1..CS, growing downward as in the paper's figures) and columns are FU
// instances of that type (1..Max). The full search space is the union of
// the per-type tables — the paper's third dimension.
package grid

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
)

// Pos is one grid position: control step (row) and FU instance (column),
// both 1-based.
type Pos struct {
	Step  int // y in the paper: control step
	Index int // x in the paper: FU instance within the type
}

func (p Pos) String() string { return fmt.Sprintf("(t%d,fu%d)", p.Step, p.Index) }

// Frame is a set of grid positions. The paper's PF, RF, FF and MF are all
// Frames; MF = PF − (RF ∪ FF) is set subtraction.
type Frame map[Pos]bool

// Rect returns the rectangular frame [stepLo..stepHi] × [idxLo..idxHi].
// Empty or inverted ranges yield an empty frame.
func Rect(stepLo, stepHi, idxLo, idxHi int) Frame {
	f := make(Frame)
	for s := stepLo; s <= stepHi; s++ {
		for i := idxLo; i <= idxHi; i++ {
			f[Pos{s, i}] = true
		}
	}
	return f
}

// Union returns f ∪ o.
func (f Frame) Union(o Frame) Frame {
	out := make(Frame, len(f)+len(o))
	for p := range f {
		out[p] = true
	}
	for p := range o {
		out[p] = true
	}
	return out
}

// Minus returns f − o.
func (f Frame) Minus(o Frame) Frame {
	out := make(Frame, len(f))
	for p := range f {
		if !o[p] {
			out[p] = true
		}
	}
	return out
}

// Contains reports membership.
func (f Frame) Contains(p Pos) bool { return f[p] }

// Empty reports whether the frame has no positions.
func (f Frame) Empty() bool { return len(f) == 0 }

// Positions returns the frame's positions sorted by (step, index) so
// iteration is deterministic.
func (f Frame) Positions() []Pos {
	ps := make([]Pos, 0, len(f))
	for p := range f {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Step != ps[j].Step {
			return ps[i].Step < ps[j].Step
		}
		return ps[i].Index < ps[j].Index
	})
	return ps
}

// FrameSet bundles the four frames of one placement decision, for
// inspection and for rendering Figure 2.
type FrameSet struct {
	PF, RF, FF, MF Frame
}

// Table is the placement grid of one FU type.
type Table struct {
	Type string // FU type key (op symbol in MFS, unit name in MFSA)
	CS   int    // rows: control steps
	Max  int    // columns: maximum FU instances (max_j)

	// Latency > 0 folds occupancy modulo the functional-pipelining
	// initiation interval (§5.5.2); Pipelined marks the type's units as
	// structurally pipelined (§5.5.1), so an op's conflict footprint is
	// its start row only.
	Latency   int
	Pipelined bool

	cells map[Pos][]dfg.NodeID
}

// NewTable returns an empty cs × max table for the given FU type.
func NewTable(typ string, cs, max int) *Table {
	return &Table{Type: typ, CS: cs, Max: max, cells: make(map[Pos][]dfg.NodeID)}
}

// InBounds reports whether p lies on the table.
func (t *Table) InBounds(p Pos) bool {
	return p.Step >= 1 && p.Step <= t.CS && p.Index >= 1 && p.Index <= t.Max
}

// At returns the operations occupying p (more than one only for mutually
// exclusive operations). The slice must not be modified.
func (t *Table) At(p Pos) []dfg.NodeID { return t.cells[p] }

// footprint returns the rows an operation of the given duration occupies
// when started at step, honoring structural pipelining and latency
// folding. Rows beyond CS are returned as-is so callers can reject them.
func (t *Table) footprint(step, cycles int) []int {
	if t.Pipelined {
		cycles = 1
	}
	rows := make([]int, 0, cycles)
	for i := 0; i < cycles; i++ {
		r := step + i
		if t.Latency > 0 {
			r = ((r - 1) % t.Latency) + 1
		}
		rows = append(rows, r)
	}
	return rows
}

// CanPlace reports whether operation id (of the given duration, from
// graph g) can start at position p: the whole footprint stays on the
// table and every already-occupied footprint cell holds only operations
// mutually exclusive with id.
func (t *Table) CanPlace(g *dfg.Graph, id dfg.NodeID, p Pos, cycles int) bool {
	// The completion bound always uses the full duration: even on a
	// pipelined unit the operation must finish within the schedule.
	if p.Index < 1 || p.Index > t.Max || p.Step < 1 || p.Step+cycles-1 > t.CS {
		return false
	}
	for _, row := range t.footprint(p.Step, cycles) {
		for _, occ := range t.cells[Pos{row, p.Index}] {
			if !g.MutuallyExclusive(id, occ) {
				return false
			}
		}
	}
	return true
}

// Place records operation id starting at p for the given duration. It
// fails if CanPlace would.
func (t *Table) Place(g *dfg.Graph, id dfg.NodeID, p Pos, cycles int) error {
	if !t.CanPlace(g, id, p, cycles) {
		return fmt.Errorf("grid %s: cannot place node %d at %v", t.Type, id, p)
	}
	for _, row := range t.footprint(p.Step, cycles) {
		c := Pos{row, p.Index}
		t.cells[c] = append(t.cells[c], id)
	}
	return nil
}

// Remove erases operation id's footprint starting at p.
func (t *Table) Remove(id dfg.NodeID, p Pos, cycles int) {
	for _, row := range t.footprint(p.Step, cycles) {
		c := Pos{row, p.Index}
		occ := t.cells[c]
		for i, x := range occ {
			if x == id {
				t.cells[c] = append(occ[:i], occ[i+1:]...)
				break
			}
		}
		if len(t.cells[c]) == 0 {
			delete(t.cells, c)
		}
	}
}

// UsedColumns returns the highest occupied column index, i.e. how many FU
// instances of this type the current placement uses.
func (t *Table) UsedColumns() int {
	max := 0
	for p := range t.cells {
		if p.Index > max {
			max = p.Index
		}
	}
	return max
}

// OccupiedFrame returns every cell holding at least one operation that is
// NOT mutually exclusive with id — the positions id cannot take for
// occupancy reasons.
func (t *Table) OccupiedFrame(g *dfg.Graph, id dfg.NodeID) Frame {
	f := make(Frame)
	for p, occ := range t.cells {
		for _, o := range occ {
			if !g.MutuallyExclusive(id, o) {
				f[p] = true
				break
			}
		}
	}
	return f
}
