// Package grid implements the paper's 2-dimensional placement tables
// (Figure 1) and the frame algebra of MFS step 4: positions, rectangular
// frames, the set relation MF = PF − (RF ∪ FF), occupancy with
// mutual-exclusion sharing, and ASCII rendering used to reproduce the
// paper's Figures 1 and 2.
//
// One Table exists per functional-unit type: rows are control steps
// (1..CS, growing downward as in the paper's figures) and columns are FU
// instances of that type (1..Max). The full search space is the union of
// the per-type tables — the paper's third dimension.
//
// Frames are dense bitsets, not hash sets: a Frame is a row-major
// []uint64 over its bounding box, one word group per control step, so
// Rect is a mask fill, Union and Minus are per-word | and &^, and
// membership is a shift-and-test. Scan and ScanColumns walk the set bits
// in (step, index) or (index, step) order without materializing a slice;
// for the paper's linear Liapunov functions those orders are exactly
// non-decreasing energy (see liapunov.Ordered), which is what turns the
// schedulers' min-energy search into "first legal bit wins".
package grid

import (
	"fmt"
	"math/bits"

	"repro/internal/dfg"
)

// Pos is one grid position: control step (row) and FU instance (column),
// both 1-based.
type Pos struct {
	Step  int // y in the paper: control step
	Index int // x in the paper: FU instance within the type
}

func (p Pos) String() string { return fmt.Sprintf("(t%d,fu%d)", p.Step, p.Index) }

// Order identifies a deterministic traversal order over a frame's
// positions.
type Order int

const (
	// RowMajor visits positions by ascending (step, index) — fill a
	// control step before opening the next.
	RowMajor Order = iota
	// ColMajor visits positions by ascending (index, step) — fill an FU
	// column before opening the next.
	ColMajor
)

// Frame is a set of grid positions. The paper's PF, RF, FF and MF are all
// Frames; MF = PF − (RF ∪ FF) is set subtraction.
//
// The representation is a dense row-major bitset over the frame's
// bounding box [1..steps] × [1..max]: wordsPerRow = ⌈max/64⌉ words per
// control step, and position (s, i) is bit (i-1) mod 64 of word
// (s-1)·wordsPerRow + (i-1)/64. The zero value is the empty frame.
// Algebra results are always freshly allocated (one backing array per
// result), so frames behave as values; only Add mutates in place.
type Frame struct {
	steps, max int // bounding box; both 0 for the zero value
	words      []uint64
}

//hls:noalloc
func wordsPerRow(max int) int { return (max + 63) / 64 }

// maskRange returns a word with bits lo..hi (0-based, inclusive,
// 0 <= lo <= hi <= 63) set.
//
//hls:noalloc
func maskRange(lo, hi int) uint64 {
	m := ^uint64(0) << uint(lo)
	if hi < 63 {
		m &= (uint64(1) << uint(hi+1)) - 1
	}
	return m
}

// Rect returns the rectangular frame [stepLo..stepHi] × [idxLo..idxHi].
// Bounds below 1 are clamped (positions are 1-based); empty or inverted
// ranges yield an empty frame. The fill is one masked word row copied to
// every step — a single allocation regardless of area.
//
//hls:noalloc
func Rect(stepLo, stepHi, idxLo, idxHi int) Frame {
	if stepLo < 1 {
		stepLo = 1
	}
	if idxLo < 1 {
		idxLo = 1
	}
	if stepHi < stepLo || idxHi < idxLo {
		return Frame{}
	}
	wpr := wordsPerRow(idxHi)
	//hls:allocok the result's single backing array, O(1) per call (pinned by TestFrameAlgebraAllocs)
	f := Frame{steps: stepHi, max: idxHi, words: make([]uint64, stepHi*wpr)}
	first := (stepLo - 1) * wpr
	for w := 0; w < wpr; w++ {
		lo, hi := idxLo-1, idxHi-1 // 0-based bit indices over the row
		if lo < w*64 {
			lo = w * 64
		}
		if hi > w*64+63 {
			hi = w*64 + 63
		}
		if lo > hi {
			continue
		}
		f.words[first+w] = maskRange(lo-w*64, hi-w*64)
	}
	row := f.words[first : first+wpr]
	for s := stepLo; s < stepHi; s++ {
		copy(f.words[s*wpr:(s+1)*wpr], row)
	}
	return f
}

// accumulate ORs (clear=false) or ANDNOT-clears (clear=true) src's bits
// into f. For OR, f's bounding box must contain src's. Word layouts align
// across different widths because a position's bit offset within its row
// depends only on its index, never on the frame's max.
//
//hls:noalloc
func (f *Frame) accumulate(src Frame, clear bool) {
	wpr, swpr := wordsPerRow(f.max), wordsPerRow(src.max)
	steps, w := src.steps, swpr
	if clear {
		if f.steps < steps {
			steps = f.steps
		}
		if wpr < w {
			w = wpr
		}
	}
	if wpr == swpr {
		n := steps * wpr
		if clear {
			for i := 0; i < n; i++ {
				f.words[i] &^= src.words[i]
			}
		} else {
			for i := 0; i < n; i++ {
				f.words[i] |= src.words[i]
			}
		}
		return
	}
	for s := 0; s < steps; s++ {
		fo, so := s*wpr, s*swpr
		if clear {
			for k := 0; k < w; k++ {
				f.words[fo+k] &^= src.words[so+k]
			}
		} else {
			for k := 0; k < w; k++ {
				f.words[fo+k] |= src.words[so+k]
			}
		}
	}
}

// Union returns f ∪ o.
//
//hls:noalloc
func (f Frame) Union(o Frame) Frame {
	steps, max := f.steps, f.max
	if o.steps > steps {
		steps = o.steps
	}
	if o.max > max {
		max = o.max
	}
	if steps == 0 || max == 0 {
		return Frame{}
	}
	//hls:allocok the result's single backing array, O(1) per call (pinned by TestFrameAlgebraAllocs)
	out := Frame{steps: steps, max: max, words: make([]uint64, steps*wordsPerRow(max))}
	out.accumulate(f, false)
	out.accumulate(o, false)
	return out
}

// Minus returns f − o.
//
//hls:noalloc
func (f Frame) Minus(o Frame) Frame {
	if f.steps == 0 {
		return Frame{}
	}
	//hls:allocok the result's single backing array, O(1) per call (pinned by TestFrameAlgebraAllocs)
	out := Frame{steps: f.steps, max: f.max, words: append([]uint64(nil), f.words...)}
	out.accumulate(o, true)
	return out
}

// Contains reports membership.
//
//hls:noalloc
func (f Frame) Contains(p Pos) bool {
	if p.Step < 1 || p.Step > f.steps || p.Index < 1 || p.Index > f.max {
		return false
	}
	i := p.Index - 1
	return f.words[(p.Step-1)*wordsPerRow(f.max)+i/64]&(uint64(1)<<uint(i%64)) != 0
}

// Add inserts p, growing the bounding box if needed. Positions below
// (1,1) are rejected. Add mutates the frame in place (the only Frame
// operation that does), re-packing the words when the box grows.
//
//hls:noalloc
func (f *Frame) Add(p Pos) {
	if p.Step < 1 || p.Index < 1 {
		return
	}
	if p.Step > f.steps || p.Index > f.max {
		steps, max := f.steps, f.max
		if p.Step > steps {
			steps = p.Step
		}
		if p.Index > max {
			max = p.Index
		}
		//hls:allocok the grow path re-packs into a wider box; in-bounds Adds never reach it
		grown := Frame{steps: steps, max: max, words: make([]uint64, steps*wordsPerRow(max))}
		grown.accumulate(*f, false)
		*f = grown
	}
	i := p.Index - 1
	f.words[(p.Step-1)*wordsPerRow(f.max)+i/64] |= uint64(1) << uint(i%64)
}

// Empty reports whether the frame has no positions.
//
//hls:noalloc
func (f Frame) Empty() bool {
	for _, w := range f.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of positions in the frame.
//
//hls:noalloc
func (f Frame) Len() int {
	n := 0
	for _, w := range f.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports set equality, independent of the bounding boxes.
func (f Frame) Equal(o Frame) bool {
	if f.steps == o.steps && f.max == o.max {
		for i, w := range f.words {
			if w != o.words[i] {
				return false
			}
		}
		return true
	}
	if f.Len() != o.Len() {
		return false
	}
	return f.Scan(func(p Pos) bool { return o.Contains(p) })
}

// Scan visits every position in row-major (step, index) order — the
// paper's "fill a step before opening the next". It stops early when
// yield returns false, and reports whether the walk ran to completion.
// For a time-constrained Liapunov function V = x + n·y with n greater
// than every index, this order is strictly increasing energy.
//
//hls:noalloc
func (f Frame) Scan(yield func(Pos) bool) bool {
	wpr := wordsPerRow(f.max)
	for s := 0; s < f.steps; s++ {
		base := s * wpr
		for w := 0; w < wpr; w++ {
			word := f.words[base+w]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				if !yield(Pos{Step: s + 1, Index: w*64 + b + 1}) {
					return false
				}
				word &= word - 1
			}
		}
	}
	return true
}

// ScanColumns visits every position in column-major (index, step) order —
// "use another step before adding hardware". It stops early when yield
// returns false, and reports whether the walk ran to completion. For a
// resource-constrained Liapunov function V = cs·x + y with cs greater
// than every step, this order is strictly increasing energy.
//
//hls:noalloc
func (f Frame) ScanColumns(yield func(Pos) bool) bool {
	wpr := wordsPerRow(f.max)
	for i := 0; i < f.max; i++ {
		w, mask := i/64, uint64(1)<<uint(i%64)
		for s := 0; s < f.steps; s++ {
			if f.words[s*wpr+w]&mask != 0 {
				if !yield(Pos{Step: s + 1, Index: i + 1}) {
					return false
				}
			}
		}
	}
	return true
}

// Positions returns the frame's positions sorted by (step, index) so
// iteration is deterministic. The bitset stores them in exactly that
// order, so this is a single pre-sized scan, no sort.
func (f Frame) Positions() []Pos {
	ps := make([]Pos, 0, f.Len())
	f.Scan(func(p Pos) bool {
		ps = append(ps, p)
		return true
	})
	return ps
}

// FrameSet bundles the four frames of one placement decision, for
// inspection and for rendering Figure 2.
type FrameSet struct {
	PF, RF, FF, MF Frame
}

// Table is the placement grid of one FU type.
type Table struct {
	Type string // FU type key (op symbol in MFS, unit name in MFSA)
	CS   int    // rows: control steps
	Max  int    // columns: maximum FU instances (max_j)

	// Latency > 0 folds occupancy modulo the functional-pipelining
	// initiation interval (§5.5.2); Pipelined marks the type's units as
	// structurally pipelined (§5.5.1), so an op's conflict footprint is
	// its start row only.
	Latency   int
	Pipelined bool

	// cells is dense column-major: one contiguous CS-cell run per
	// instance column, so Grow opens new columns by appending without
	// relaying existing occupancy. A nil/empty slice is a free cell.
	// More than one occupant only for mutually exclusive operations.
	cells [][]dfg.NodeID

	// The occupancy index: two mirrored word-level bitsets with bit
	// (step, index) set iff cells[(index-1)·CS+(step-1)] is non-empty,
	// maintained by Place/Remove/Grow. occRow is row-major (one
	// rowWords-word group per control step, bit (i-1)%64 of word
	// (s-1)·rowWords+(i-1)/64), matching the RowMajor walk order; occCol
	// is column-major (one colWords-word group per instance column, bit
	// (s-1)%64 of word (i-1)·colWords+(s-1)/64), matching ColMajor.
	// ScanPlaceable masks a move window into these words and finds free
	// footprints with bits.TrailingZeros64 instead of probing cells one
	// by one — O(window/64) instead of O(window) for the common case of
	// a graph without mutual-exclusion tags.
	occRow   []uint64
	occCol   []uint64
	rowWords int // ⌈Max/64⌉
	colWords int // ⌈CS/64⌉
}

// DisableIndex, when set before any tables are used, makes ScanPlaceable
// take its naive per-cell CanPlace path instead of the word-scan fast
// path. The placements are identical either way — the knob exists for
// the A/B measurement (`hlsbench -noindex`) and for the bit-identity
// cross-check tests, in the mold of mfs's disableOrderedWalk. It is not
// safe to flip concurrently with running schedulers.
var DisableIndex = false

// NewTable returns an empty cs × max table for the given FU type.
// Callers that discover their instance count as they go (MFSA's local
// rescheduling) should start small — even at zero — and Grow: the
// allocation is proportional to the columns actually opened, which on
// large graphs is orders of magnitude below the worst-case bound.
func NewTable(typ string, cs, max int) *Table {
	return &Table{
		Type: typ, CS: cs, Max: max,
		cells:    make([][]dfg.NodeID, cs*max),
		rowWords: wordsPerRow(max),
		colWords: wordsPerRow(cs),
		occRow:   make([]uint64, cs*wordsPerRow(max)),
		occCol:   make([]uint64, max*wordsPerRow(cs)),
	}
}

// Grow widens the table to max instance columns, keeping existing
// occupancy. It is a no-op when the table is already that wide.
func (t *Table) Grow(max int) {
	if max <= t.Max {
		return
	}
	t.cells = append(t.cells, make([][]dfg.NodeID, (max-t.Max)*t.CS)...)
	// occCol gains one zeroed colWords-word group per new column. occRow
	// only re-packs when the new width crosses a 64-column word boundary;
	// bits past Max inside the last word are never set, so within a word
	// width the existing rows are already correct.
	t.occCol = append(t.occCol, make([]uint64, (max-t.Max)*t.colWords)...)
	if wpr := wordsPerRow(max); wpr != t.rowWords {
		grown := make([]uint64, t.CS*wpr)
		for s := 0; s < t.CS; s++ {
			copy(grown[s*wpr:], t.occRow[s*t.rowWords:(s+1)*t.rowWords])
		}
		t.occRow, t.rowWords = grown, wpr
	}
	t.Max = max
}

// setOcc marks the cell at (folded) row step, column index occupied in
// both index bitsets. The caller has already bounds-checked.
//
//hls:noalloc
func (t *Table) setOcc(step, index int) {
	t.occRow[(step-1)*t.rowWords+(index-1)/64] |= uint64(1) << uint((index-1)%64)
	t.occCol[(index-1)*t.colWords+(step-1)/64] |= uint64(1) << uint((step-1)%64)
}

// clearOcc marks the cell at (folded) row step, column index free in
// both index bitsets. The caller has already bounds-checked.
//
//hls:noalloc
func (t *Table) clearOcc(step, index int) {
	t.occRow[(step-1)*t.rowWords+(index-1)/64] &^= uint64(1) << uint((index-1)%64)
	t.occCol[(index-1)*t.colWords+(step-1)/64] &^= uint64(1) << uint((step-1)%64)
}

// cell returns the dense index of p, which must be in bounds.
//
//hls:noalloc
func (t *Table) cell(p Pos) int { return (p.Index-1)*t.CS + (p.Step - 1) }

// InBounds reports whether p lies on the table.
//
//hls:noalloc
func (t *Table) InBounds(p Pos) bool {
	return p.Step >= 1 && p.Step <= t.CS && p.Index >= 1 && p.Index <= t.Max
}

// At returns the operations occupying p (more than one only for mutually
// exclusive operations). The slice must not be modified.
func (t *Table) At(p Pos) []dfg.NodeID {
	if !t.InBounds(p) {
		return nil
	}
	return t.cells[t.cell(p)]
}

// row returns the folded occupancy row for cycle i of an operation
// starting at step, honoring structural pipelining and latency folding.
// Rows beyond CS are returned as-is so callers can reject them.
//
//hls:noalloc
func (t *Table) row(step, i int) int {
	r := step + i
	if t.Latency > 0 {
		r = ((r - 1) % t.Latency) + 1
	}
	return r
}

// footRows returns how many rows an operation of the given duration
// occupies (its conflict footprint).
//
//hls:noalloc
func (t *Table) footRows(cycles int) int {
	if t.Pipelined {
		return 1
	}
	return cycles
}

// CanPlace reports whether operation id (of the given duration, from
// graph g) can start at position p: the whole footprint stays on the
// table and every already-occupied footprint cell holds only operations
// mutually exclusive with id.
//
//hls:noalloc
func (t *Table) CanPlace(g *dfg.Graph, id dfg.NodeID, p Pos, cycles int) bool {
	// The completion bound always uses the full duration: even on a
	// pipelined unit the operation must finish within the schedule.
	if p.Index < 1 || p.Index > t.Max || p.Step < 1 || p.Step+cycles-1 > t.CS {
		return false
	}
	for i := 0; i < t.footRows(cycles); i++ {
		row := t.row(p.Step, i)
		for _, occ := range t.cells[(p.Index-1)*t.CS+(row-1)] {
			//hls:allocok dfg.MutuallyExclusive is two loops over the (tiny) Excl tag slices; it allocates nothing
			if !g.MutuallyExclusive(id, occ) {
				return false
			}
		}
	}
	return true
}

// Place records operation id starting at p for the given duration. It
// fails if CanPlace would.
func (t *Table) Place(g *dfg.Graph, id dfg.NodeID, p Pos, cycles int) error {
	if !t.CanPlace(g, id, p, cycles) {
		return fmt.Errorf("grid %s: cannot place node %d at %v", t.Type, id, p)
	}
	for i := 0; i < t.footRows(cycles); i++ {
		row := t.row(p.Step, i)
		c := (p.Index-1)*t.CS + (row - 1)
		t.cells[c] = append(t.cells[c], id)
		if len(t.cells[c]) == 1 {
			t.setOcc(row, p.Index)
		}
	}
	return nil
}

// Remove erases operation id's footprint starting at p.
func (t *Table) Remove(id dfg.NodeID, p Pos, cycles int) {
	for i := 0; i < t.footRows(cycles); i++ {
		row := t.row(p.Step, i)
		if row < 1 || row > t.CS || p.Index < 1 || p.Index > t.Max {
			continue
		}
		c := (p.Index-1)*t.CS + (row - 1)
		occ := t.cells[c]
		for j, x := range occ {
			if x == id {
				t.cells[c] = append(occ[:j], occ[j+1:]...)
				if len(t.cells[c]) == 0 {
					t.clearOcc(row, p.Index)
				}
				break
			}
		}
	}
}

// UsedColumns returns the highest occupied column index, i.e. how many FU
// instances of this type the current placement uses.
func (t *Table) UsedColumns() int {
	max := 0
	for c, occ := range t.cells {
		if len(occ) == 0 {
			continue
		}
		if idx := c/t.CS + 1; idx > max {
			max = idx
		}
	}
	return max
}

// walkIndexed reports whether ScanPlaceable may use the word-scan index
// for the given order and duration, or must take the naive per-cell
// path. The decision is a pure function of table shape so tests can pin
// which path a configuration runs (TestIndexPathSelection):
//
//   - DisableIndex forces the naive path (the -noindex A/B knob);
//   - ColMajor with Latency folding is unindexed — folding wraps an
//     op's footprint across row words, which breaks the shifted-mask
//     busy-start trick (and never occurs via the paper's standard
//     Liapunov functions: MFS functional pipelining implies the
//     time-constrained, row-major walk);
//   - Latency > CS would fold footprint rows past the table edge, a
//     corner CanPlace resolves by its raw cell arithmetic, so the index
//     defers to it;
//   - footprints of 64+ rows exceed the shifted-mask width.
//
//hls:noalloc
func (t *Table) walkIndexed(ord Order, cycles int) bool {
	if DisableIndex {
		return false
	}
	if t.Latency > 0 && (ord == ColMajor || t.Latency > t.CS) {
		return false
	}
	return t.footRows(cycles) < 64
}

// ScanPlaceable visits, in the given walk order, exactly the positions p
// in the window [stepLo..stepHi] × [1..idxHi] where CanPlace(g, id, p,
// cycles) holds, stopping early when yield returns false (and reporting
// whether the walk ran to completion). It is semantically a window loop
// over CanPlace — the schedulers' move-frame walk — but when the index
// is usable it masks the window into the occupancy words and jumps
// between free footprints with bits.TrailingZeros64: on a graph with no
// mutual-exclusion tags (excl=false) an occupied bit is provably illegal
// and is skipped without touching cells; with exclusion tags (excl=true)
// free bits still fast-accept, and only occupied bits fall back to the
// per-occupant CanPlace walk. Multicycle footprints AND the shifted
// occupancy of footRows consecutive rows into one mask (one row for
// Pipelined types); Latency folding ORs the folded rows' words.
//
//hls:noalloc
func (t *Table) ScanPlaceable(g *dfg.Graph, id dfg.NodeID, excl bool, ord Order, stepLo, stepHi, idxHi, cycles int, yield func(Pos) bool) bool {
	if stepLo < 1 {
		stepLo = 1
	}
	if hi := t.CS - cycles + 1; stepHi > hi {
		stepHi = hi // CanPlace's completion bound: the op must finish by CS
	}
	if idxHi > t.Max {
		idxHi = t.Max
	}
	if stepLo > stepHi || idxHi < 1 {
		return true
	}
	if !t.walkIndexed(ord, cycles) {
		return t.scanNaive(g, id, ord, stepLo, stepHi, idxHi, cycles, yield)
	}
	if ord == RowMajor {
		return t.scanRowMajor(g, id, excl, stepLo, stepHi, idxHi, cycles, yield)
	}
	return t.scanColMajor(g, id, excl, stepLo, stepHi, idxHi, cycles, yield)
}

// scanNaive is ScanPlaceable's reference path: the pre-index window walk,
// one CanPlace per cell.
//
//hls:noalloc
func (t *Table) scanNaive(g *dfg.Graph, id dfg.NodeID, ord Order, stepLo, stepHi, idxHi, cycles int, yield func(Pos) bool) bool {
	if ord == RowMajor {
		for s := stepLo; s <= stepHi; s++ {
			for i := 1; i <= idxHi; i++ {
				p := Pos{Step: s, Index: i}
				if t.CanPlace(g, id, p, cycles) && !yield(p) {
					return false
				}
			}
		}
		return true
	}
	for i := 1; i <= idxHi; i++ {
		for s := stepLo; s <= stepHi; s++ {
			p := Pos{Step: s, Index: i}
			if t.CanPlace(g, id, p, cycles) && !yield(p) {
				return false
			}
		}
	}
	return true
}

// scanRowMajor walks the window by ascending (step, index). For each
// step it ORs the footprint rows' occupancy words (folded modulo Latency
// by t.row, exactly as CanPlace folds them) into one busy mask per
// 64-column word and iterates the free bits.
//
//hls:noalloc
func (t *Table) scanRowMajor(g *dfg.Graph, id dfg.NodeID, excl bool, stepLo, stepHi, idxHi, cycles int, yield func(Pos) bool) bool {
	f := t.footRows(cycles)
	words := wordsPerRow(idxHi)
	for s := stepLo; s <= stepHi; s++ {
		for w := 0; w < words; w++ {
			var busy uint64
			for i := 0; i < f; i++ {
				busy |= t.occRow[(t.row(s, i)-1)*t.rowWords+w]
			}
			hi := idxHi - 1 - w*64
			if hi > 63 {
				hi = 63
			}
			win := maskRange(0, hi)
			if excl {
				for m := win; m != 0; m &= m - 1 {
					b := bits.TrailingZeros64(m)
					p := Pos{Step: s, Index: w*64 + b + 1}
					if busy&(uint64(1)<<uint(b)) != 0 && !t.CanPlace(g, id, p, cycles) {
						continue
					}
					if !yield(p) {
						return false
					}
				}
				continue
			}
			for free := ^busy & win; free != 0; free &= free - 1 {
				b := bits.TrailingZeros64(free)
				if !yield(Pos{Step: s, Index: w*64 + b + 1}) {
					return false
				}
			}
		}
	}
	return true
}

// scanColMajor walks the window by ascending (index, step). For each
// column it builds a busy-start mask — bit s set iff any of the
// footprint rows s..s+f-1 is occupied — by ORing the column words
// shifted down by each footprint offset (the bitboard AND-of-shifted-
// masks trick, complemented), then iterates the free start bits. Only
// reached with Latency == 0 (walkIndexed), so footprint rows are the
// raw consecutive rows.
//
//hls:noalloc
func (t *Table) scanColMajor(g *dfg.Graph, id dfg.NodeID, excl bool, stepLo, stepHi, idxHi, cycles int, yield func(Pos) bool) bool {
	f := t.footRows(cycles)
	words := wordsPerRow(stepHi)
	for i := 1; i <= idxHi; i++ {
		base := (i - 1) * t.colWords
		for w := 0; w < words; w++ {
			busy := t.occCol[base+w]
			for j := 1; j < f; j++ {
				busy |= t.occCol[base+w] >> uint(j)
				if w+1 < t.colWords {
					busy |= t.occCol[base+w+1] << uint(64-j)
				}
			}
			lo, hi := stepLo-1-w*64, stepHi-1-w*64
			if lo < 0 {
				lo = 0
			}
			if hi > 63 {
				hi = 63
			}
			if lo > hi {
				continue
			}
			win := maskRange(lo, hi)
			if excl {
				for m := win; m != 0; m &= m - 1 {
					b := bits.TrailingZeros64(m)
					p := Pos{Step: w*64 + b + 1, Index: i}
					if busy&(uint64(1)<<uint(b)) != 0 && !t.CanPlace(g, id, p, cycles) {
						continue
					}
					if !yield(p) {
						return false
					}
				}
				continue
			}
			for free := ^busy & win; free != 0; free &= free - 1 {
				b := bits.TrailingZeros64(free)
				if !yield(Pos{Step: w*64 + b + 1, Index: i}) {
					return false
				}
			}
		}
	}
	return true
}

// OccupiedFrame returns every cell holding at least one operation that is
// NOT mutually exclusive with id — the positions id cannot take for
// occupancy reasons.
func (t *Table) OccupiedFrame(g *dfg.Graph, id dfg.NodeID) Frame {
	f := Frame{steps: t.CS, max: t.Max, words: make([]uint64, t.CS*wordsPerRow(t.Max))}
	wpr := wordsPerRow(t.Max)
	for c, occ := range t.cells {
		for _, o := range occ {
			if !g.MutuallyExclusive(id, o) {
				s, i := c%t.CS, c/t.CS
				f.words[s*wpr+i/64] |= uint64(1) << uint(i%64)
				break
			}
		}
	}
	return f
}
