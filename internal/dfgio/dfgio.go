// Package dfgio serializes data-flow graphs and schedules so designs can
// be saved, exchanged and diffed: a JSON encoding for graphs (including
// the multicycle, delay, mutual-exclusion and folded-loop annotations)
// and for schedules. Round-tripping is exact; the decoder revalidates
// everything, so a hand-edited file cannot smuggle in an inconsistent
// design.
package dfgio

import (
	"encoding/json"
	"fmt"

	"repro/internal/dfg"
	"repro/internal/op"
	"repro/internal/sched"
)

// graphJSON is the on-disk form of a Graph.
type graphJSON struct {
	Name   string     `json:"name"`
	Inputs []string   `json:"inputs"`
	Nodes  []nodeJSON `json:"nodes"`
}

type nodeJSON struct {
	Name    string        `json:"name"`
	Op      string        `json:"op,omitempty"`
	Args    []string      `json:"args"`
	Cycles  int           `json:"cycles,omitempty"`
	DelayNs float64       `json:"delay_ns,omitempty"`
	Excl    []dfg.CondTag `json:"excl,omitempty"`

	// Folded-loop fields.
	Sub    *graphJSON `json:"sub,omitempty"`
	SubOut string     `json:"sub_out,omitempty"`
	SubIns []string   `json:"sub_ins,omitempty"`
}

// EncodeGraph renders g as indented JSON.
func EncodeGraph(g *dfg.Graph) ([]byte, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dfgio: %w", err)
	}
	return json.MarshalIndent(toJSON(g), "", "  ")
}

func toJSON(g *dfg.Graph) *graphJSON {
	out := &graphJSON{Name: g.Name, Inputs: g.Inputs()}
	for _, n := range g.Nodes() {
		nj := nodeJSON{
			Name:   n.Name,
			Args:   append([]string(nil), n.Args...),
			Cycles: n.Cycles,
			Excl:   append([]dfg.CondTag(nil), n.Excl...),
		}
		if n.IsLoop() {
			nj.Sub = toJSON(n.Sub)
			nj.SubOut = n.SubOut
			nj.SubIns = append([]string(nil), n.SubIns...)
		} else {
			nj.Op = n.Op.String()
			nj.DelayNs = n.DelayNs
		}
		out.Nodes = append(out.Nodes, nj)
	}
	return out
}

// DecodeGraph parses and validates a graph encoding.
func DecodeGraph(data []byte) (*dfg.Graph, error) {
	var gj graphJSON
	if err := json.Unmarshal(data, &gj); err != nil {
		return nil, fmt.Errorf("dfgio: %w", err)
	}
	g, err := fromJSON(&gj)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dfgio: %w", err)
	}
	return g, nil
}

func fromJSON(gj *graphJSON) (*dfg.Graph, error) {
	g := dfg.New(gj.Name)
	for _, in := range gj.Inputs {
		if err := g.AddInput(in); err != nil {
			return nil, fmt.Errorf("dfgio: %w", err)
		}
	}
	for _, nj := range gj.Nodes {
		var id dfg.NodeID
		var err error
		if nj.Sub != nil {
			sub, serr := fromJSON(nj.Sub)
			if serr != nil {
				return nil, serr
			}
			if len(nj.SubIns) != len(nj.Args) {
				return nil, fmt.Errorf("dfgio: loop %q: %d sub_ins for %d args", nj.Name, len(nj.SubIns), len(nj.Args))
			}
			binds := make(map[string]string, len(nj.SubIns))
			for i, in := range nj.SubIns {
				binds[in] = nj.Args[i]
			}
			id, err = g.AddLoop(nj.Name, sub, nj.SubOut, binds)
		} else {
			k, kerr := op.Parse(nj.Op)
			if kerr != nil {
				return nil, fmt.Errorf("dfgio: node %q: %w", nj.Name, kerr)
			}
			id, err = g.AddOp(nj.Name, k, nj.Args...)
		}
		if err != nil {
			return nil, fmt.Errorf("dfgio: %w", err)
		}
		if nj.Cycles < 0 || nj.DelayNs < 0 {
			return nil, fmt.Errorf("dfgio: node %q: negative cycles or delay", nj.Name)
		}
		if nj.Cycles > 0 {
			if err := g.SetCycles(id, nj.Cycles); err != nil {
				return nil, fmt.Errorf("dfgio: %w", err)
			}
		}
		if nj.DelayNs > 0 && nj.Sub == nil {
			if err := g.SetDelayNs(id, nj.DelayNs); err != nil {
				return nil, fmt.Errorf("dfgio: %w", err)
			}
		}
		if len(nj.Excl) > 0 {
			if err := g.Tag(id, nj.Excl...); err != nil {
				return nil, fmt.Errorf("dfgio: %w", err)
			}
		}
	}
	return g, nil
}

// scheduleJSON is the on-disk form of a Schedule; the graph travels with
// it so a schedule file is self-contained.
type scheduleJSON struct {
	Graph      *graphJSON      `json:"graph"`
	CS         int             `json:"cs"`
	ClockNs    float64         `json:"clock_ns,omitempty"`
	Latency    int             `json:"latency,omitempty"`
	Pipelined  []string        `json:"pipelined_types,omitempty"`
	Placements []placementJSON `json:"placements"`
}

type placementJSON struct {
	Node  string `json:"node"`
	Step  int    `json:"step"`
	Type  string `json:"type"`
	Index int    `json:"index"`
}

// EncodeSchedule renders a schedule (with its graph) as indented JSON.
func EncodeSchedule(s *sched.Schedule) ([]byte, error) {
	if err := s.Verify(nil); err != nil {
		return nil, fmt.Errorf("dfgio: refusing to encode an illegal schedule: %w", err)
	}
	sj := scheduleJSON{
		Graph:   toJSON(s.Graph),
		CS:      s.CS,
		ClockNs: s.ClockNs,
		Latency: s.Latency,
	}
	for typ, on := range s.PipelinedTypes {
		if on {
			sj.Pipelined = append(sj.Pipelined, typ)
		}
	}
	for _, n := range s.Graph.Nodes() {
		p := s.Placements[n.ID]
		sj.Placements = append(sj.Placements, placementJSON{
			Node: n.Name, Step: p.Step, Type: p.Type, Index: p.Index,
		})
	}
	return json.MarshalIndent(sj, "", "  ")
}

// DecodeSchedule parses a schedule file, rebuilds the graph, and
// verifies the schedule's legality before returning it.
func DecodeSchedule(data []byte) (*sched.Schedule, error) {
	var sj scheduleJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return nil, fmt.Errorf("dfgio: %w", err)
	}
	if sj.Graph == nil {
		return nil, fmt.Errorf("dfgio: schedule file has no graph")
	}
	g, err := fromJSON(sj.Graph)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dfgio: %w", err)
	}
	s := sched.NewSchedule(g, sj.CS)
	s.ClockNs = sj.ClockNs
	s.Latency = sj.Latency
	for _, typ := range sj.Pipelined {
		s.PipelinedTypes[typ] = true
	}
	for _, pj := range sj.Placements {
		n, ok := g.Lookup(pj.Node)
		if !ok {
			return nil, fmt.Errorf("dfgio: placement for unknown node %q", pj.Node)
		}
		s.Place(n.ID, sched.Placement{Step: pj.Step, Type: pj.Type, Index: pj.Index})
	}
	if err := s.Verify(nil); err != nil {
		return nil, fmt.Errorf("dfgio: decoded schedule is illegal: %w", err)
	}
	return s, nil
}
