package dfgio

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/mfs"
	"repro/internal/op"
)

func TestDOTStructure(t *testing.T) {
	ex := benchmarks.Facet()
	dot := DOT(ex.Graph)
	if !strings.HasPrefix(dot, "digraph") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("malformed dot:\n%s", dot)
	}
	// Every node declared and every edge present.
	for _, n := range ex.Graph.Nodes() {
		if !strings.Contains(dot, `"`+n.Name+`" [shape=`) {
			t.Errorf("node %q not declared", n.Name)
		}
		for _, a := range n.Args {
			if !strings.Contains(dot, `"`+a+`" -> "`+n.Name+`"`) {
				t.Errorf("edge %s -> %s missing", a, n.Name)
			}
		}
	}
}

func TestDOTAnnotations(t *testing.T) {
	g := dfg.New("annot")
	g.AddInput("a")
	m, _ := g.AddOp("m", op.Mul, "a", "a")
	g.SetCycles(m, 2)
	g.Tag(m, dfg.CondTag{Cond: 3, Branch: 1})
	body := dfg.New("body")
	body.AddInput("p")
	body.AddOp("q", op.Add, "p", "p")
	g.AddLoop("l", body, "q", map[string]string{"p": "a"})
	dot := DOT(g)
	for _, want := range []string{"[2 cyc]", "{c3.b1}", "doubleoctagon", "loop(body)"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
}

func TestScheduleDOT(t *testing.T) {
	ex := benchmarks.Diffeq()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	dot := ScheduleDOT(s)
	for step := 1; step <= 4; step++ {
		if !strings.Contains(dot, "cluster_t"+string(rune('0'+step))) {
			t.Errorf("cluster for step %d missing", step)
		}
	}
	if !strings.Contains(dot, "@ *") {
		t.Error("FU annotations missing")
	}
}
