package dfgio

import (
	"testing"

	"repro/internal/benchmarks"
)

// FuzzLoad checks the file-format decoders against arbitrary input: a
// corrupt or adversarial graph/schedule file must be rejected with an
// error, never a panic, and anything DecodeGraph accepts must be a
// valid graph that round-trips exactly through EncodeGraph. `go test`
// runs the seed corpus; `go test -fuzz=FuzzLoad ./internal/dfgio`
// explores further (CI runs a short fuzz smoke of this target).
func FuzzLoad(f *testing.F) {
	// Real encodings of the paper benchmarks seed the interesting part
	// of the input space; the literals cover the decoder's error arms.
	for _, ex := range benchmarks.All() {
		data, err := EncodeGraph(ex.Graph)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seeds := []string{
		``,
		`{}`,
		`{"name":"d","inputs":["a"],"nodes":[{"name":"x","op":"+","args":["a","a"]}]}`,
		`{"name":"d","inputs":["a"],"nodes":[{"name":"x","op":"?","args":["a"]}]}`,
		`{"name":"d","inputs":["a"],"nodes":[{"name":"x","op":"+","args":["a","nope"]}]}`,
		`{"name":"d","inputs":["a"],"nodes":[{"name":"x","op":"+","args":["a","a"],"cycles":-1}]}`,
		`{"name":"d","inputs":["a"],"nodes":[{"name":"l","args":["a"],"sub":{"name":"s"},"sub_ins":[]}]}`,
		`{"graph":null,"cs":4,"placements":[]}`,
		`{"graph":{"name":"d","inputs":["a"],"nodes":[]},"cs":0,"placements":[{"node":"ghost","step":1}]}`,
		`[1,2,3]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Neither decoder may panic, whatever the bytes.
		if s, err := DecodeSchedule(data); err == nil {
			if err := s.Verify(nil); err != nil {
				t.Fatalf("accepted schedule fails verification: %v\ninput: %s", err, data)
			}
		}
		g, err := DecodeGraph(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v\ninput: %s", err, data)
		}
		enc, err := EncodeGraph(g)
		if err != nil {
			t.Fatalf("accepted graph fails re-encoding: %v\ninput: %s", err, data)
		}
		g2, err := DecodeGraph(enc)
		if err != nil {
			t.Fatalf("re-encoded graph fails decoding: %v\nencoding: %s", err, enc)
		}
		enc2, err := EncodeGraph(g2)
		if err != nil {
			t.Fatalf("round-tripped graph fails re-encoding: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("round-trip is not a fixed point:\nfirst:  %s\nsecond: %s", enc, enc2)
		}
	})
}
