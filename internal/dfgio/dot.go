package dfgio

import (
	"fmt"
	"strings"

	"repro/internal/dfg"
	"repro/internal/sched"
)

// DOT renders a graph in Graphviz dot syntax: inputs as plain ovals,
// operations as boxes labeled "name = op" (multicycle durations and
// mutual-exclusion tags annotated), folded loops as double octagons.
func DOT(g *dfg.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for _, in := range g.Inputs() {
		fmt.Fprintf(&b, "  %q [shape=ellipse, style=dashed];\n", in)
	}
	for _, n := range g.Nodes() {
		label := fmt.Sprintf("%s = %s", n.Name, n.Op)
		shape := "box"
		if n.IsLoop() {
			label = fmt.Sprintf("%s = loop(%s)", n.Name, n.Sub.Name)
			shape = "doubleoctagon"
		}
		if n.Cycles > 1 {
			label += fmt.Sprintf(" [%d cyc]", n.Cycles)
		}
		for _, tag := range n.Excl {
			label += fmt.Sprintf(" {c%d.b%d}", tag.Cond, tag.Branch)
		}
		fmt.Fprintf(&b, "  %q [shape=%s, label=%q];\n", n.Name, shape, label)
	}
	for _, n := range g.Nodes() {
		for _, a := range n.Args {
			fmt.Fprintf(&b, "  %q -> %q;\n", a, n.Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ScheduleDOT renders a scheduled graph with operations clustered by
// control step, so the dot layout reads as a schedule.
func ScheduleDOT(s *sched.Schedule) string {
	g := s.Graph
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name+"_sched")
	for _, in := range g.Inputs() {
		fmt.Fprintf(&b, "  %q [shape=ellipse, style=dashed];\n", in)
	}
	byStep := make(map[int][]*dfg.Node)
	for _, n := range g.Nodes() {
		step := s.Placements[n.ID].Step
		byStep[step] = append(byStep[step], n)
	}
	for step := 1; step <= s.CS; step++ {
		nodes := byStep[step]
		if len(nodes) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  subgraph cluster_t%d {\n    label=\"step %d\";\n", step, step)
		for _, n := range nodes {
			p := s.Placements[n.ID]
			fmt.Fprintf(&b, "    %q [shape=box, label=%q];\n",
				n.Name, fmt.Sprintf("%s @ %s%d", n.Name, p.Type, p.Index))
		}
		fmt.Fprintf(&b, "  }\n")
	}
	for _, n := range g.Nodes() {
		for _, a := range n.Args {
			fmt.Fprintf(&b, "  %q -> %q;\n", a, n.Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
