package dfgio

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/mfs"
	"repro/internal/op"
	"repro/internal/sim"
)

func TestGraphRoundTripAllBenchmarks(t *testing.T) {
	for _, ex := range benchmarks.All() {
		data, err := EncodeGraph(ex.Graph)
		if err != nil {
			t.Fatalf("%s: encode: %v", ex.Name, err)
		}
		g2, err := DecodeGraph(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", ex.Name, err)
		}
		if g2.Len() != ex.Graph.Len() || g2.Name != ex.Graph.Name {
			t.Fatalf("%s: shape changed: %d vs %d nodes", ex.Name, g2.Len(), ex.Graph.Len())
		}
		// Semantics preserved: identical evaluation.
		in := sim.RandomInputs(ex.Graph, 3)
		want, err := ex.Graph.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g2.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range ex.Graph.Nodes() {
			if got[n.Name] != want[n.Name] {
				t.Fatalf("%s: %q = %d, want %d", ex.Name, n.Name, got[n.Name], want[n.Name])
			}
		}
		// Annotations preserved.
		for _, n := range ex.Graph.Nodes() {
			n2, ok := g2.Lookup(n.Name)
			if !ok {
				t.Fatalf("%s: node %q lost", ex.Name, n.Name)
			}
			if n2.Cycles != n.Cycles || n2.Op != n.Op {
				t.Errorf("%s: node %q annotations changed", ex.Name, n.Name)
			}
		}
	}
}

func TestGraphRoundTripAnnotations(t *testing.T) {
	g := dfg.New("annot")
	g.AddInput("a")
	x, _ := g.AddOp("x", op.Mul, "a", "a")
	g.SetCycles(x, 2)
	g.SetDelayNs(x, 77)
	g.Tag(x, dfg.CondTag{Cond: 2, Branch: 1})
	y, _ := g.AddOp("y", op.Add, "a", "a")
	g.Tag(y, dfg.CondTag{Cond: 2, Branch: 0})

	data, err := EncodeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := DecodeGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	x2, _ := g2.Lookup("x")
	if x2.Cycles != 2 || x2.DelayNs != 77 || len(x2.Excl) != 1 || x2.Excl[0] != (dfg.CondTag{Cond: 2, Branch: 1}) {
		t.Errorf("annotations lost: %+v", x2)
	}
	y2, _ := g2.Lookup("y")
	if !g2.MutuallyExclusive(x2.ID, y2.ID) {
		t.Error("exclusivity lost")
	}
}

func TestLoopRoundTrip(t *testing.T) {
	body := dfg.New("body")
	body.AddInput("p")
	body.AddOp("q", op.Add, "p", "p")

	g := dfg.New("outer")
	g.AddInput("x")
	id, err := g.AddLoop("l", body, "q", map[string]string{"p": "x"})
	if err != nil {
		t.Fatal(err)
	}
	g.SetCycles(id, 3)
	g.AddOp("out", op.Mul, "l", "x")

	data, err := EncodeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := DecodeGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	l2, ok := g2.Lookup("l")
	if !ok || !l2.IsLoop() || l2.Cycles != 3 || l2.SubOut != "q" {
		t.Fatalf("loop lost: %+v", l2)
	}
	vals, err := g2.Eval(map[string]int64{"x": 5})
	if err != nil {
		t.Fatal(err)
	}
	if vals["out"] != 50 {
		t.Errorf("out = %d", vals["out"])
	}
}

func TestDecodeRejectsBadData(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"g","inputs":["a"],"nodes":[{"name":"x","op":"??","args":["a","a"]}]}`,
		`{"name":"g","inputs":["a"],"nodes":[{"name":"x","op":"+","args":["a"]}]}`,
		`{"name":"g","inputs":["a"],"nodes":[{"name":"x","op":"+","args":["a","zz"]}]}`,
		`{"name":"g","inputs":["a"],"nodes":[{"name":"x","op":"+","args":["a","a"],"cycles":-1}]}`,
	}
	for i, c := range cases {
		if _, err := DecodeGraph([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEncodeRejectsInvalidGraph(t *testing.T) {
	g := dfg.New("bad")
	g.AddInput("a")
	id, _ := g.AddOp("x", op.Add, "a", "a")
	g.Node(id).Cycles = 0 // corrupt
	if _, err := EncodeGraph(g); err == nil {
		t.Error("invalid graph encoded")
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	ex := benchmarks.Bandpass()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{
		CS:             9,
		PipelinedTypes: map[string]bool{"*": true},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"pipelined_types"`) {
		t.Error("pipelined types not encoded")
	}
	s2, err := DecodeSchedule(data)
	if err != nil {
		t.Fatal(err)
	}
	if s2.CS != s.CS || s2.Latency != s.Latency || !s2.PipelinedTypes["*"] {
		t.Errorf("schedule metadata lost: %+v", s2)
	}
	// Same placements by node name.
	for _, n := range s.Graph.Nodes() {
		n2, _ := s2.Graph.Lookup(n.Name)
		if s2.Placements[n2.ID] != s.Placements[n.ID] {
			t.Errorf("placement of %q changed", n.Name)
		}
	}
	// The decoded schedule still simulates correctly.
	if err := sim.CrossCheck(s2, nil, sim.RandomInputs(s2.Graph, 9)); err != nil {
		t.Error(err)
	}
}

func TestDecodeScheduleRejectsIllegal(t *testing.T) {
	ex := benchmarks.Facet()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: move every op to step 1 (dependency violations).
	tampered := strings.ReplaceAll(string(data), `"step": 2`, `"step": 1`)
	if tampered == string(data) {
		t.Skip("no step-2 placements to tamper with")
	}
	if _, err := DecodeSchedule([]byte(tampered)); err == nil {
		t.Error("tampered schedule accepted")
	}
	if _, err := DecodeSchedule([]byte(`{"cs":3}`)); err == nil {
		t.Error("schedule without graph accepted")
	}
}

func TestEncodeScheduleRejectsIllegal(t *testing.T) {
	ex := benchmarks.Facet()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	for id := range s.Placements {
		p := s.Placements[id]
		p.Step = 99
		s.Placements[id] = p
		break
	}
	if _, err := EncodeSchedule(s); err == nil {
		t.Error("illegal schedule encoded")
	}
}
