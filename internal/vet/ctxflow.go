package vet

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/diag"
)

// ctxflow protects the cancellation guarantees of the context plumbing:
// every entry point answers a cancelled context within one placement's
// worth of work, which holds only if (a) the context actually flows to
// the work and (b) the work's loops poll it.
//
// Rule 1 (HV0021): inside any function that receives a context.Context,
// passing context.Background() or context.TODO() to a callee severs the
// caller's cancellation (and deadline) from the work it requested. The
// live context — or a child derived from it — must flow instead.
//
// Rule 2 (HV0022): in an exported function whose name ends in "Ctx"
// (the library's naming contract for cancellable entry points), every
// loop that does real work — calls a function or contains a nested
// loop — must be able to observe cancellation: some expression of type
// context.Context must appear inside the loop, either polled directly
// (ctx.Err(), ctx.Done()) or passed to the callee doing the work.
// Loops inside function literals are exempt: closures typically run on
// the worker pool, whose dispatcher owns the polling.
//
// Escape hatch: //hls:ctxok <why>.
var ctxflowAnalyzer = &Analyzer{
	Name:  "ctxflow",
	Doc:   "contexts must flow: no Background/TODO where a live ctx exists, no unpolled working loops in *Ctx entry points",
	Codes: []string{diag.CodeVetCtxDropped, diag.CodeVetCtxNoPoll, diag.CodeVetHatchReason},
	Run:   runCtxflow,
}

func runCtxflow(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasContextParam(p.Info, fd.Type) {
				checkDroppedCtx(p, fd.Body)
				if fd.Name.IsExported() && strings.HasSuffix(fd.Name.Name, "Ctx") {
					checkLoopPolls(p, fd)
				}
			}
		}
	}
}

func hasContextParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
			// A parameter declared as _ cannot flow anywhere; the
			// function opted out of cancellation explicitly.
			for _, name := range field.Names {
				if name.Name != "_" {
					return true
				}
			}
			if len(field.Names) == 0 {
				return false
			}
		}
	}
	return false
}

// checkDroppedCtx flags context.Background()/TODO() calls in a body
// that already holds a live context. Nested function literals with
// their own context parameter are skipped — they are their own scope.
func checkDroppedCtx(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && hasContextParam(p.Info, fl.Type) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(p.Info, call)
		name := ""
		switch {
		case isPkgFunc(obj, "context", "Background"):
			name = "Background"
		case isPkgFunc(obj, "context", "TODO"):
			name = "TODO"
		default:
			return true
		}
		if p.Hatched(call, "ctxok") {
			return true
		}
		p.Reportf(call.Pos(), diag.CodeVetCtxDropped,
			"context.%s() inside a function that already holds a context: the caller's cancellation no longer reaches this work; thread the live ctx (or a child of it), or annotate //hls:ctxok <why>",
			name)
		return true
	})
}

// checkLoopPolls flags working loops in an exported *Ctx entry point
// that contain no context-typed expression at all.
func checkLoopPolls(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if !loopDoesWork(p.Info, body) || loopSeesContext(p.Info, body) {
			return true
		}
		if p.Hatched(n, "ctxok") {
			return true
		}
		p.Reportf(n.Pos(), diag.CodeVetCtxNoPoll,
			"loop in exported entry point %s does work but never observes its context: poll ctx.Err() (or pass ctx to the callee) so cancellation stays under the latency bar, or annotate //hls:ctxok <why>",
			fd.Name.Name)
		return true
	})
}

// loopDoesWork reports whether the loop body calls a non-builtin
// function or contains a nested loop — the shapes whose per-iteration
// cost is unbounded from the loop's own text.
func loopDoesWork(info *types.Info, body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			work = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					return true
				}
			}
			if _, isConv := info.Types[n.Fun]; isConv && info.Types[n.Fun].IsType() {
				return true
			}
			work = true
		}
		return true
	})
	return work
}

// loopSeesContext reports whether any expression of type
// context.Context appears in the body — a direct poll, a derived
// sub-context, or a ctx argument to the worker callee all count.
func loopSeesContext(info *types.Info, body *ast.BlockStmt) bool {
	seen := false
	ast.Inspect(body, func(n ast.Node) bool {
		if seen {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := info.TypeOf(e); t != nil && isContextType(t) {
			seen = true
		}
		return true
	})
	return seen
}
