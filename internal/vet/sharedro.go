package vet

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/diag"
)

// sharedro statically proves the read-only sharing contract the
// parallel engine stands on: sweeps, speculative search, and the hlsd
// cache hand one *dfg.Graph and one *library.Library to many
// goroutines at once, so scheduling must never write to them. The
// -race stress test samples executions; this analyzer decides the
// property for all of them, using the interprocedural mutation
// summaries from summary.go/summarize.go.
//
// Two contracts are enforced:
//
//   - HV0051 — shared-input mutation on a parallel path. An exported
//     entry point of the scheduling/serving surface (repro, core, mfs,
//     mfsa, serve — plus serve's handle* methods) whose summary mutates
//     protected storage reached from a parameter or receiver, or a
//     pool job closure (an argument to pool.Map/MapCtx/SearchMin*)
//     that mutates captured graph/library storage.
//   - HV0052 — foreign mutation. Any module package other than
//     internal/dfg and internal/library mutating graph/library storage
//     reached from a parameter, receiver, or capture. The owning
//     packages keep their constructors and builders; everyone else
//     copies (dfg.Clone, fresh slices) before writing.
//
// The escape hatch is //hls:sharedok <why> on the mutation site, the
// line above it, or the declaration's doc comment; an empty
// justification reports HV0001. Test files are exempt: tests may build
// and perturb graphs freely, the contract protects production sharing.
var sharedroAnalyzer = &Analyzer{
	Name:  "sharedro",
	Doc:   "interprocedural proof that scheduling shares graphs and libraries read-only",
	Codes: []string{diag.CodeVetSharedMut, diag.CodeVetForeignMut, diag.CodeVetHatchReason},
	Run:   runSharedro,
}

// sharedEntryPkgs are the packages whose exported functions sit on a
// parallel path: every sweep worker, speculative probe, and daemon
// handler funnels through them with a shared graph/library in hand.
var sharedEntryPkgs = map[string]bool{
	"repro":                true,
	"repro/internal/core":  true,
	"repro/internal/mfs":   true,
	"repro/internal/mfsa":  true,
	"repro/internal/serve": true,
}

// mutatorPkgs own the protected types and may mutate them.
var mutatorPkgs = map[string]bool{
	dfgPath: true,
	libPath: true,
}

func runSharedro(p *Pass) {
	if p.Summaries == nil {
		// No store means no dependency summaries: the driver did not set
		// the analysis up (RunUnit called directly); stay silent rather
		// than flood with conservative assumptions.
		return
	}
	pkgPath := normPkgPath(p.PkgPath)
	_, s := computeLocalSummaries(p.Files, p.Info, p.Summaries)
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSharedroFunc(p, s, fd, pkgPath)
		}
	}
}

func checkSharedroFunc(p *Pass, s *summarizer, fd *ast.FuncDecl, pkgPath string) {
	fn, _ := p.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	// Re-walk against the converged tables with site collection on. The
	// summary copy keeps the collection pass from perturbing the table.
	base := s.local[fn]
	cp := *base
	cp.ParamMut = append([]uint8(nil), base.ParamMut...)
	fr, _ := s.converge(fd, &cp, true)

	declHatched := false
	checkDeclHatch := func() bool {
		if !declHatched {
			declHatched = p.HatchedDecl(fd, "sharedok")
		}
		return declHatched
	}

	// HV0052: a *direct* mutation of protected storage reached from a
	// root, outside the owning packages — a primitive write (field,
	// element, map entry, append/copy into spare capacity) or an opaque
	// external callee (sort.Slice), either of which bypasses the owning
	// package's API and its invariants. Mutations inherited through
	// summarized module callees are not re-reported here: the callee's
	// own package answers for its primitive writes, and entry points of
	// the sharing surface answer for the whole chain under HV0051. One
	// report per root — the first site names the write, the hatch goes
	// on the site or the declaration.
	if !mutatorPkgs[pkgPath] {
		total := map[int]int{}
		for _, site := range fr.sites {
			if site.direct {
				total[site.root]++
			}
		}
		seen := map[int]bool{}
		for _, site := range fr.sites {
			if !site.direct || seen[site.root] {
				continue
			}
			seen[site.root] = true
			if p.Hatched(site.node, "sharedok") || checkDeclHatch() {
				continue
			}
			more := ""
			if n := total[site.root] - 1; n > 0 {
				more = " (and " + strconv.Itoa(n) + " more site(s) in this function)"
			}
			p.Reportf(site.node.Pos(), diag.CodeVetForeignMut,
				"%s mutates shared graph/library storage reached from %s (write to %s)%s: only internal/dfg and internal/library may mutate these types; copy before writing (dfg Clone, fresh slices) or annotate //hls:sharedok <why>",
				fd.Name.Name, fr.roots[site.root].name, site.what, more)
		}
	}

	// HV0051 (entry contract): an exported scheduling/serving entry
	// point whose summary mutates a parameter's or receiver's protected
	// storage. Reported at the declaration — the contract is about the
	// signature's promise, not one site.
	if sharedEntryPkgs[pkgPath] && isSharedEntry(pkgPath, fd.Name.Name) {
		for _, rv := range fr.roots {
			var mask uint8
			if rv.param == -1 {
				mask = cp.RecvMut
			} else if rv.param < len(cp.ParamMut) {
				mask = cp.ParamMut[rv.param]
			}
			if mask == 0 {
				continue
			}
			if checkDeclHatch() {
				break
			}
			p.Reportf(fd.Name.Pos(), diag.CodeVetSharedMut,
				"entry point %s may mutate shared graph/library storage through %s: parallel sweeps and the hlsd cache hand one graph/library to many goroutines — schedule against a copy or annotate //hls:sharedok <why>",
				fd.Name.Name, rv.name)
		}
	}

	// HV0051 (pool contract): a job closure handed to the worker pool
	// mutates captured graph/library storage — the pool runs it
	// concurrently, so even a function-local graph becomes shared state.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolFanout(p.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			lit := resolveFuncLit(p.Info, fr, arg)
			if lit == nil {
				continue
			}
			for _, cs := range fr.litMuts[lit] {
				if p.Hatched(cs.node, "sharedok") {
					continue
				}
				p.Reportf(cs.node.Pos(), diag.CodeVetSharedMut,
					"parallel job closure mutates captured graph/library storage (%s): pool workers run this concurrently; move the mutation outside the job or annotate //hls:sharedok <why>",
					cs.what)
			}
		}
		return true
	})
}

// isSharedEntry reports whether the function name is on the enforced
// entry surface: exported, or serve's unexported handle* methods (they
// are http.HandlerFunc targets — every request is a goroutine).
func isSharedEntry(pkgPath, name string) bool {
	if ast.IsExported(name) {
		return true
	}
	return pkgPath == "repro/internal/serve" && strings.HasPrefix(name, "handle")
}

// isPoolFanout matches the worker-pool fan-out entry points.
func isPoolFanout(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	for _, name := range [...]string{"Map", "MapCtx", "SearchMin", "SearchMinCtx"} {
		if isPkgFunc(obj, "repro/internal/pool", name) {
			return true
		}
	}
	return false
}

// resolveFuncLit resolves an argument to the closure literal it
// denotes: the literal itself, or an identifier bound to one.
func resolveFuncLit(info *types.Info, fr *frame, arg ast.Expr) *ast.FuncLit {
	switch a := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		return a
	case *ast.Ident:
		if obj := info.Uses[a]; obj != nil {
			if b := fr.bind[obj]; b != nil {
				return b.lit
			}
		}
	}
	return nil
}
