package vet

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/diag"
)

// Escape hatches. Every analyzer has exactly one annotation key that
// silences it at one site:
//
//	//hls:orderok <why>   — maporder
//	//hls:clockok <why>   — noclock
//	//hls:ctxok   <why>   — ctxflow
//	//hls:guardok <why>   — guardboundary
//	//hls:allocok <why>   — noalloc
//
// The annotation attaches to the line it shares with the flagged
// construct, to the line immediately above it, or (for function-level
// findings) to any line of the declaration's doc comment. The
// justification string is mandatory: a bare annotation suppresses the
// original finding but reports HV0001 instead, so silencing a check
// always costs one written sentence of explanation.
//
// //hls:noalloc is not a hatch but a marker: it opts a function into the
// noalloc analyzer (see noalloc.go). It takes no justification.

// buildHatches indexes every //hls: comment by file and line.
func buildHatches(fset *token.FileSet, files []*ast.File) map[*token.File]map[int]string {
	out := make(map[*token.File]map[int]string)
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil {
			continue
		}
		lines := make(map[int]string)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "hls:") {
					continue
				}
				lines[fset.Position(c.Pos()).Line] = strings.TrimPrefix(text, "hls:")
			}
		}
		if len(lines) > 0 {
			out[tf] = lines
		}
	}
	return out
}

// hatchAt returns the //hls:<key> annotation text on the given line of
// pos's file, with found=false when none is present.
func (p *Pass) hatchAt(pos token.Pos, line int, key string) (reason string, found bool) {
	tf := p.Fset.File(pos)
	if tf == nil {
		return "", false
	}
	text, ok := p.hatches[tf][line]
	if !ok {
		return "", false
	}
	rest, ok := strings.CutPrefix(text, key)
	if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// Hatched reports whether node n is silenced by a //hls:<key>
// annotation on its line or the line above. An annotation with no
// justification still silences the finding but reports HV0001, so every
// hatch in the tree carries its reason.
func (p *Pass) Hatched(n ast.Node, key string) bool {
	line := p.Fset.Position(n.Pos()).Line
	for _, l := range [2]int{line, line - 1} {
		if reason, ok := p.hatchAt(n.Pos(), l, key); ok {
			if reason == "" {
				p.Reportf(n.Pos(), diag.CodeVetHatchReason,
					"//hls:%s needs a justification: say why the %s invariant does not apply here", key, p.Analyzer.Name)
			}
			return true
		}
	}
	return false
}

// HatchedDecl is Hatched extended to a declaration's doc comment, for
// function-granularity findings.
func (p *Pass) HatchedDecl(d *ast.FuncDecl, key string) bool {
	if p.Hatched(d, key) {
		return true
	}
	if d.Doc == nil {
		return false
	}
	for _, c := range d.Doc.List {
		line := p.Fset.Position(c.Pos()).Line
		if reason, ok := p.hatchAt(c.Pos(), line, key); ok {
			if reason == "" {
				p.Reportf(c.Pos(), diag.CodeVetHatchReason,
					"//hls:%s needs a justification: say why the %s invariant does not apply here", key, p.Analyzer.Name)
			}
			return true
		}
	}
	return false
}

// funcMarked reports whether the declaration carries the //hls:<key>
// marker (same placement rules as a hatch, no justification needed).
func (p *Pass) funcMarked(d *ast.FuncDecl, key string) bool {
	line := p.Fset.Position(d.Pos()).Line
	for _, l := range [2]int{line, line - 1} {
		if _, ok := p.hatchAt(d.Pos(), l, key); ok {
			return true
		}
	}
	if d.Doc != nil {
		for _, c := range d.Doc.List {
			if _, ok := p.hatchAt(c.Pos(), p.Fset.Position(c.Pos()).Line, key); ok {
				return true
			}
		}
	}
	return false
}
