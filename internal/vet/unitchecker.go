package vet

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"

	"repro/internal/diag"
)

// The `go vet -vettool` driver protocol, reimplemented on the standard
// library (golang.org/x/tools is deliberately not a dependency).
//
// cmd/go speaks to a vet tool in two ways:
//
//   - `tool -V=full` must print "<progname> version devel ...
//     buildID=<hex>" so the build cache can key on the tool's content
//     (see cmd/go/internal/work.(*Builder).toolID).
//   - `tool [flags] <objdir>/vet.cfg` runs one package unit: the cfg
//     JSON carries the unit's files, its import map, and gc export-data
//     paths for every dependency — everything needed to type-check the
//     unit without loading anything else. The tool writes VetxOutput
//     (our analyzers export no facts, so an empty file), prints
//     findings to stderr, and exits 2 when it found any.
//
// Dependency units arrive with VetxOnly=true — cmd/go only wants facts.
// We have none, so those invocations write the output file and exit
// immediately, which keeps `go vet -vettool=hlsvet ./...` fast even
// though cmd/go walks the full dependency graph.

// vetConfig mirrors cmd/go/internal/work.vetConfig.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// PrintFlags implements the -flags probe: cmd/go asks the tool which
// flags it accepts (as JSON on stdout) so `go vet -vettool=... -json
// -maporder ./...` can route them through.
func PrintFlags(w io.Writer) {
	type flagDesc struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	descs := []flagDesc{{Name: "json", Bool: true, Usage: "emit findings as JSON on stdout"}}
	for _, a := range Analyzers() {
		descs = append(descs, flagDesc{Name: a.Name, Bool: true, Usage: "run only the " + a.Name + " analyzer"})
	}
	json.NewEncoder(w).Encode(descs)
}

// PrintVersion implements -V=full.
func PrintVersion(w io.Writer) {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil))
}

// UnitcheckerMain runs the vettool protocol over args (flags plus the
// trailing vet.cfg path) and exits; it never returns.
func UnitcheckerMain(args []string) {
	fs := flag.NewFlagSet("hlsvet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	enabled := map[string]*bool{}
	for _, a := range Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, false, "run only the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "hlsvet (vettool mode): expected exactly one vet.cfg argument")
		os.Exit(1)
	}
	var selected []string
	for name, on := range enabled {
		if *on {
			selected = append(selected, name)
		}
	}
	os.Exit(runUnitchecker(fs.Arg(0), selected, *jsonOut, os.Stdout, os.Stderr))
}

func runUnitchecker(cfgPath string, selected []string, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "hlsvet:", err)
		return 1
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(stderr, "hlsvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go caches and chains vet runs through this file; our analyzers
	// produce no facts, so the unit's output is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "hlsvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	ds, err := checkVetUnit(cfg, selected)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "hlsvet:", err)
		return 1
	}
	if len(ds) == 0 {
		return 0
	}
	if jsonOut {
		PrintJSON(stdout, ds)
	} else {
		for _, d := range ds {
			fmt.Fprintln(stderr, d)
		}
	}
	return 2
}

func checkVetUnit(cfg *vetConfig, selected []string) ([]Diagnostic, error) {
	analyzers, err := Select(selected)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	files, err := ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if f, ok := cfg.PackageFile[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", path)
	}
	pkg, info, err := CheckFiles(fset, cfg.ImportPath, files, lookup)
	if err != nil {
		return nil, err
	}
	u := &Unit{
		PkgPath:   cfg.ImportPath,
		Files:     files,
		Pkg:       pkg,
		Info:      info,
		ReportAll: true,
	}
	return RunUnit(fset, u, analyzers), nil
}

// PrintJSON renders findings in the shared typed-diagnostic schema, the
// same shape hlslint emits.
func PrintJSON(w io.Writer, ds []Diagnostic) {
	list := make(diag.List, 0, len(ds))
	for _, d := range ds {
		list = append(list, d.AsDiag())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(list)
}
