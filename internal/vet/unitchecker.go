package vet

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"

	"repro/internal/diag"
)

// The `go vet -vettool` driver protocol, reimplemented on the standard
// library (golang.org/x/tools is deliberately not a dependency).
//
// cmd/go speaks to a vet tool in two ways:
//
//   - `tool -V=full` must print "<progname> version devel ...
//     buildID=<hex>" so the build cache can key on the tool's content
//     (see cmd/go/internal/work.(*Builder).toolID).
//   - `tool [flags] <objdir>/vet.cfg` runs one package unit: the cfg
//     JSON carries the unit's files, its import map, and gc export-data
//     paths for every dependency — everything needed to type-check the
//     unit without loading anything else. The tool writes VetxOutput,
//     prints findings to stderr, and exits 2 when it found any.
//
// Dependency units arrive with VetxOnly=true — cmd/go only wants facts.
// sharedro's facts are the mutation summaries: for module packages the
// unit is type-checked, its summaries are computed, merged with every
// entry read from PackageVetx (each vetx re-exports its dependencies,
// so one level of reads closes over the import graph), and the union is
// written to VetxOutput as JSON. Non-module units write an empty file
// and return immediately, which keeps `go vet -vettool=hlsvet ./...`
// fast even though cmd/go walks the full dependency graph.

// vetConfig mirrors cmd/go/internal/work.vetConfig.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// PrintFlags implements the -flags probe: cmd/go asks the tool which
// flags it accepts (as JSON on stdout) so `go vet -vettool=... -json
// -maporder ./...` can route them through.
func PrintFlags(w io.Writer) {
	type flagDesc struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	descs := []flagDesc{{Name: "json", Bool: true, Usage: "emit findings as JSON on stdout"}}
	for _, a := range Analyzers() {
		descs = append(descs, flagDesc{Name: a.Name, Bool: true, Usage: "run only the " + a.Name + " analyzer"})
	}
	json.NewEncoder(w).Encode(descs)
}

// PrintVersion implements -V=full.
func PrintVersion(w io.Writer) {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil))
}

// UnitcheckerMain runs the vettool protocol over args (flags plus the
// trailing vet.cfg path) and exits; it never returns.
func UnitcheckerMain(args []string) {
	fs := flag.NewFlagSet("hlsvet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	enabled := map[string]*bool{}
	for _, a := range Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, false, "run only the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(1)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "hlsvet (vettool mode): expected exactly one vet.cfg argument")
		os.Exit(1)
	}
	var selected []string
	for name, on := range enabled {
		if *on {
			selected = append(selected, name)
		}
	}
	os.Exit(runUnitchecker(fs.Arg(0), selected, *jsonOut, os.Stdout, os.Stderr))
}

func runUnitchecker(cfgPath string, selected []string, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "hlsvet:", err)
		return 1
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(stderr, "hlsvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	analyzers, err := Select(selected)
	if err != nil {
		fmt.Fprintln(stderr, "hlsvet:", err)
		return 1
	}

	// Facts. Only module units carry sharedro summaries; everything else
	// chains an empty file through cmd/go's cache. Summary computation
	// needs the unit type-checked, so for module VetxOnly units the
	// type-check happens here too.
	vetx := []byte(nil)
	var store *Summaries
	moduleUnit := isModulePath(normPkgPath(cfg.ImportPath))
	if moduleUnit && analyzersNeedSummaries(analyzers) {
		store = NewSummaries()
		keys := make([]string, 0, len(cfg.PackageVetx))
		for path := range cfg.PackageVetx {
			keys = append(keys, path)
		}
		sort.Strings(keys)
		for _, path := range keys {
			if !isModulePath(normPkgPath(path)) {
				continue
			}
			data, err := os.ReadFile(cfg.PackageVetx[path])
			if err != nil {
				fmt.Fprintln(stderr, "hlsvet:", err)
				return 1
			}
			if err := MergeSummaries(store, data); err != nil {
				fmt.Fprintf(stderr, "hlsvet: facts for %s: %v\n", path, err)
				return 1
			}
		}
	}

	run := func() ([]Diagnostic, error) {
		fset := token.NewFileSet()
		files, err := ParseFiles(fset, cfg.GoFiles)
		if err != nil {
			return nil, err
		}
		lookup := func(path string) (io.ReadCloser, error) {
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			if f, ok := cfg.PackageFile[path]; ok {
				return os.Open(f)
			}
			return nil, fmt.Errorf("no export data for %q", path)
		}
		pkg, info, err := CheckFiles(fset, cfg.ImportPath, files, lookup)
		if err != nil {
			return nil, err
		}
		if store != nil {
			ComputePackageSummaries(files, info, store)
			if vetx, err = EncodeSummaries(store); err != nil {
				return nil, err
			}
		}
		if cfg.VetxOnly {
			return nil, nil
		}
		u := &Unit{
			PkgPath:   cfg.ImportPath,
			Files:     files,
			Pkg:       pkg,
			Info:      info,
			ReportAll: true,
		}
		return RunUnit(fset, u, analyzers, store), nil
	}

	var ds []Diagnostic
	if !cfg.VetxOnly || store != nil {
		ds, err = run()
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, "hlsvet:", err)
			return 1
		}
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, vetx, 0o666); err != nil {
			fmt.Fprintln(stderr, "hlsvet:", err)
			return 1
		}
	}
	if len(ds) == 0 {
		return 0
	}
	if jsonOut {
		PrintJSON(stdout, ds)
	} else {
		for _, d := range ds {
			fmt.Fprintln(stderr, d)
		}
	}
	return 2
}

// PrintJSON renders findings in the shared typed-diagnostic schema, the
// same shape hlslint emits.
func PrintJSON(w io.Writer, ds []Diagnostic) {
	list := make(diag.List, 0, len(ds))
	for _, d := range ds {
		list = append(list, d.AsDiag())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(list)
}
