package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/diag"
)

// errflow guards error discipline in the determinism-critical packages
// (maporder.criticalPkgs): a silently dropped or shadowed error there
// does not crash — it lets a half-built schedule or a stale table flow
// into results that are hashed, cached, and compared bit-for-bit.
//
//   - HV0061: a discarded error — `_ = f()` where the value is
//     error-typed, or a bare expression-statement call whose results
//     include an error. Writers that are documented to never fail
//     (strings.Builder, bytes.Buffer, hash.Hash and the crypto digests,
//     and fmt.Fprint* into those sinks) are allowed.
//   - HV0062: `:=` re-declaring err in an inner scope while an
//     error-typed err is already in scope — the classic shadow that
//     makes a later `if err != nil` check the wrong variable. The
//     scoped forms `if err := f(); ...` / `for err := ...;` are the
//     canonical idiom and exempt.
//
// The escape hatch is //hls:errok <why>; test files are exempt.
var errflowAnalyzer = &Analyzer{
	Name:  "errflow",
	Doc:   "no discarded or shadowed errors in determinism-critical packages",
	Codes: []string{diag.CodeVetErrDropped, diag.CodeVetErrShadow, diag.CodeVetHatchReason},
	Run:   runErrflow,
}

func runErrflow(p *Pass) {
	if !criticalPkgs[normPkgPath(p.PkgPath)] {
		return
	}
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkErrflowFunc(p, fd)
		}
	}
}

// errFuncCtx is the per-function context the shadow rule consults: where
// closures are, where `err` objects are read, and where naked returns
// (which read every named result) sit.
type errFuncCtx struct {
	lits         []*ast.FuncLit
	uses         map[types.Object][]token.Pos
	nakedReturns []token.Pos
	namedErr     types.Object // result parameter named err, if any
}

// enclosingLit returns the innermost FuncLit containing pos.
func (c *errFuncCtx) enclosingLit(pos token.Pos) *ast.FuncLit {
	var best *ast.FuncLit
	for _, lit := range c.lits {
		if pos < lit.Pos() || pos > lit.End() {
			continue
		}
		if best == nil || (lit.Pos() > best.Pos() && lit.End() < best.End()) {
			best = lit
		}
	}
	return best
}

// readAfter reports whether obj is read at any position after end — by
// an explicit mention, or by a naked return when obj is the function's
// named error result.
func (c *errFuncCtx) readAfter(obj types.Object, end token.Pos) bool {
	for _, pos := range c.uses[obj] {
		if pos > end {
			return true
		}
	}
	if obj == c.namedErr && c.namedErr != nil {
		for _, pos := range c.nakedReturns {
			if pos > end {
				return true
			}
		}
	}
	return false
}

func checkErrflowFunc(p *Pass, fd *ast.FuncDecl) {
	body := fd.Body
	// The init clause of if/for/switch scopes its err to the statement —
	// the idiomatic non-shadow.
	scoped := map[ast.Stmt]bool{}
	fctx := &errFuncCtx{uses: map[types.Object][]token.Pos{}}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if name.Name == "err" {
					fctx.namedErr = p.Info.Defs[name]
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			scoped[n.Init] = true
		case *ast.ForStmt:
			scoped[n.Init] = true
		case *ast.SwitchStmt:
			scoped[n.Init] = true
		case *ast.TypeSwitchStmt:
			scoped[n.Init] = true
		case *ast.FuncLit:
			fctx.lits = append(fctx.lits, n)
		case *ast.ReturnStmt:
			if n.Results == nil {
				fctx.nakedReturns = append(fctx.nakedReturns, n.Pos())
			}
		case *ast.Ident:
			if n.Name == "err" {
				if obj := p.Info.Uses[n]; obj != nil {
					fctx.uses[obj] = append(fctx.uses[obj], n.Pos())
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok || !callReturnsError(p.Info, call) || neverFails(p.Info, call) {
				return true
			}
			if p.Hatched(n, "errok") {
				return true
			}
			p.Reportf(n.Pos(), diag.CodeVetErrDropped,
				"result of %s includes an error that is silently dropped: a swallowed failure here corrupts deterministic synthesis results; handle it or annotate //hls:errok <why>",
				exprString(call))
		case *ast.AssignStmt:
			checkErrAssign(p, n, scoped[n], fctx)
		}
		return true
	})
}

func checkErrAssign(p *Pass, as *ast.AssignStmt, scopedInit bool, fctx *errFuncCtx) {
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		// `_ = expr` discarding an error value.
		if id.Name == "_" && as.Tok != token.DEFINE {
			if t := assignedType(p.Info, as, i); t != nil && isErrorType(t) {
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else {
					rhs = as.Rhs[0]
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && neverFails(p.Info, call) {
					continue
				}
				if !p.Hatched(as, "errok") {
					p.Reportf(as.Pos(), diag.CodeVetErrDropped,
						"error assigned to _: a swallowed failure here corrupts deterministic synthesis results; handle it or annotate //hls:errok <why>")
				}
			}
			continue
		}
		// `err := ...` shadowing an outer error-typed err.
		if id.Name != "err" || as.Tok != token.DEFINE || scopedInit {
			continue
		}
		obj := p.Info.Defs[id]
		if obj == nil || obj.Parent() == nil || obj.Parent().Parent() == nil {
			continue // reused, not redeclared (or no enclosing scope)
		}
		if t := obj.Type(); t == nil || !isErrorType(t) {
			continue
		}
		_, outer := obj.Parent().Parent().LookupParent("err", obj.Pos())
		if v, ok := outer.(*types.Var); ok && isErrorType(v.Type()) {
			// A shadow inside a closure the outer err lives outside of is
			// the pool-job idiom (`d, err := work(i)` in the worker): the
			// closure cannot naked-return the outer err, so the classic
			// wrong-variable check cannot happen across the boundary.
			if lit := fctx.enclosingLit(obj.Pos()); lit != nil &&
				(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
				continue
			}
			// Harmless shadow: the outer err is never read again after
			// the inner scope closes, so no later check can pick the
			// wrong variable. Naked returns count as reads of a named
			// err result.
			if obj.Parent() != nil && !fctx.readAfter(v, obj.Parent().End()) {
				continue
			}
			if !p.Hatched(as, "errok") {
				p.Reportf(id.Pos(), diag.CodeVetErrShadow,
					"err := shadows the err declared at %s: a later `if err != nil` checks the wrong variable; reuse `err =` or rename, or annotate //hls:errok <why>",
					p.Fset.Position(v.Pos()))
			}
		}
	}
}

// assignedType resolves the type flowing into position i of the
// assignment: the matching rhs, or the i-th result of a multi-value
// call/receive/assertion.
func assignedType(info *types.Info, as *ast.AssignStmt, i int) types.Type {
	if len(as.Rhs) == len(as.Lhs) {
		return info.TypeOf(as.Rhs[i])
	}
	if len(as.Rhs) != 1 {
		return nil
	}
	t := info.TypeOf(as.Rhs[0])
	if tup, ok := t.(*types.Tuple); ok && i < tup.Len() {
		return tup.At(i).Type()
	}
	if i == 1 {
		// v, ok := m[k] / x.(T) / <-ch: position 1 is the untyped bool.
		return types.Typ[types.Bool]
	}
	return t
}

// callReturnsError reports whether any result of the call is
// error-typed.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// neverFails recognizes the error-returning callees whose contract says
// the error is always nil: the in-memory writers and digests, and
// fmt.Fprint* into them.
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if neverFailsWriter(sig.Recv().Type()) {
			return true
		}
		// An embedded-interface method resolves to its declaring
		// interface (hash.Hash's Write is (io.Writer).Write), so also
		// judge the receiver expression's static type.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return neverFailsWriter(info.TypeOf(sel.X))
		}
		return false
	}
	if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		return neverFailsWriter(info.TypeOf(call.Args[0]))
	}
	return false
}

func neverFailsWriter(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	switch {
	case path == "strings" && name == "Builder":
		return true
	case path == "bytes" && name == "Buffer":
		return true
	case path == "hash" || strings.HasPrefix(path, "hash/") || strings.HasPrefix(path, "crypto/"):
		// hash.Hash's Write contract: never returns an error.
		return true
	}
	return false
}
