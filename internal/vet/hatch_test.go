package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// The hatch scanner's placement and justification rules, exercised at
// the edges: annotations on the wrong line, several annotations
// sharing a line, justifications that themselves contain `//`, and the
// layering between the scanner (which indexes every file) and the
// analyzers (which exempt test files).

// hatchHarness parses src, indexes its hatches, and returns a Pass
// whose reports accumulate into the returned slice.
func hatchHarness(t *testing.T, src string) (*Pass, *ast.File, *[]Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "hatch_fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing hatch fixture: %v", err)
	}
	var got []Diagnostic
	p := &Pass{
		Analyzer: maporderAnalyzer,
		Fset:     fset,
		Files:    []*ast.File{f},
		hatches:  buildHatches(fset, []*ast.File{f}),
	}
	p.report = func(d Diagnostic) { got = append(got, d) }
	return p, f, &got
}

// stmtOnLine returns the first statement of the sole function body that
// starts on the given line.
func stmtOnLine(t *testing.T, p *Pass, f *ast.File, line int) ast.Stmt {
	t.Helper()
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		for _, st := range fd.Body.List {
			if p.Fset.Position(st.Pos()).Line == line {
				return st
			}
		}
	}
	t.Fatalf("no statement on line %d", line)
	return nil
}

func TestHatchPlacement(t *testing.T) {
	src := `package x

func f() {
	//hls:orderok same-line-above applies

	a()
	//hls:orderok wrong line: two above the site

	b()
	c() //hls:orderok on the line itself
	d()
}

func a() {}
func b() {}
func c() {}
func d() {}
`
	p, f, got := hatchHarness(t, src)
	cases := []struct {
		line    int
		hatched bool
		why     string
	}{
		{6, false, "annotation two lines above must not silence (blank line between)"},
		{9, false, "annotation two lines above must not silence"},
		{10, true, "annotation on the site's own line silences"},
		// The line-above rule is purely positional: a trailing same-line
		// annotation also covers the next line. Pinned here so a change
		// to that (documented) behavior is a conscious one.
		{11, true, "an annotation on the previous line covers this line, even written after code"},
	}
	for _, c := range cases {
		st := stmtOnLine(t, p, f, c.line)
		if h := p.Hatched(st, "orderok"); h != c.hatched {
			t.Errorf("line %d: Hatched=%v, want %v — %s", c.line, h, c.hatched, c.why)
		}
	}
	if len(*got) != 0 {
		t.Errorf("justified hatches must not report, got %v", *got)
	}
}

func TestHatchKeyMatching(t *testing.T) {
	src := `package x

func f() {
	//hls:clockok a different analyzer's key
	a()
	//hls:orderokextra key must match on a word boundary
	b()
	//hls:orderok justification containing // a comment marker and a URL https://example.com/why
	c()
}

func a() {}
func b() {}
func c() {}
`
	p, f, got := hatchHarness(t, src)
	if p.Hatched(stmtOnLine(t, p, f, 5), "orderok") {
		t.Error("a clockok annotation must not satisfy an orderok lookup")
	}
	if !p.Hatched(stmtOnLine(t, p, f, 5), "clockok") {
		t.Error("the clockok annotation itself must be found")
	}
	if p.Hatched(stmtOnLine(t, p, f, 7), "orderok") {
		t.Error("hls:orderokextra must not match key orderok (word boundary)")
	}
	if !p.Hatched(stmtOnLine(t, p, f, 9), "orderok") {
		t.Error("a justification containing // must still count as a justified hatch")
	}
	if len(*got) != 0 {
		t.Errorf("all hatches above carry justifications, yet HV0001 was reported: %v", *got)
	}
}

func TestHatchEmptyJustification(t *testing.T) {
	src := `package x

func f() {
	//hls:orderok
	a()
}

//hls:orderok
func g() {
	a()
}

func a() {}
`
	p, f, got := hatchHarness(t, src)
	if !p.Hatched(stmtOnLine(t, p, f, 5), "orderok") {
		t.Fatal("a bare annotation must still silence the original finding")
	}
	var gDecl *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "g" {
			gDecl = fd
		}
	}
	if !p.HatchedDecl(gDecl, "orderok") {
		t.Fatal("a bare doc-comment annotation must still silence the finding")
	}
	if len(*got) != 2 {
		t.Fatalf("want two HV0001 reports (site + decl), got %d: %v", len(*got), *got)
	}
	for _, d := range *got {
		if d.Code != "HV0001" || !strings.Contains(d.Message, "justification") {
			t.Errorf("bare hatch must report HV0001 asking for a justification, got %v", d)
		}
	}
}

func TestHatchMultiplePerLine(t *testing.T) {
	// A line comment runs to end of line, so two annotations written on
	// one line are a single comment: the first key wins, the rest is
	// justification text. The scanner must not invent a second hatch.
	src := `package x

func f() {
	a() //hls:orderok first key wins //hls:clockok swallowed into the justification
}

func a() {}
`
	p, f, got := hatchHarness(t, src)
	st := stmtOnLine(t, p, f, 4)
	if !p.Hatched(st, "orderok") {
		t.Error("the leading annotation must hatch its key")
	}
	if p.Hatched(st, "clockok") {
		t.Error("an annotation inside another annotation's justification must not hatch")
	}
	if len(*got) != 0 {
		t.Errorf("unexpected reports: %v", *got)
	}
}

// TestHatchInTestFile pins the layering: the scanner indexes hatches in
// every file — the test-file exemption lives in the analyzers (which
// skip _test.go entirely), not in the hatch lookup. A hatch written in
// a test file therefore still resolves, it is just never needed.
func TestHatchInTestFile(t *testing.T) {
	src := `package x

func f() {
	//hls:orderok hatches resolve in test files too
	a()
}

func a() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	var got []Diagnostic
	p := &Pass{Analyzer: maporderAnalyzer, Fset: fset, Files: []*ast.File{f},
		hatches: buildHatches(fset, []*ast.File{f})}
	p.report = func(d Diagnostic) { got = append(got, d) }
	if !p.InTestFile(f.Pos()) {
		t.Fatal("fixture_test.go must be recognized as a test file")
	}
	if !p.Hatched(stmtOnLine(t, p, f, 5), "orderok") {
		t.Error("hatch lookup must work in test files; the exemption is the analyzer's")
	}
	if len(got) != 0 {
		t.Errorf("unexpected reports: %v", got)
	}
}
