package vet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The standalone loader: `hlsvet ./...` without a go vet driver. It
// shells out to `go list -deps -test -export -json`, which compiles
// export data for every dependency through the build cache (no network,
// no golang.org/x/tools), then type-checks each module package from
// source against that export data.
//
// Each package yields up to three units, mirroring how cmd/go compiles
// it: the plain package, the package including its in-package _test.go
// files (reported only for test-file positions, so the overlap never
// double-reports), and the external _test package.

// Check loads patterns in dir and runs the analyzers over every unit,
// returning the aggregated, deterministically sorted findings. The
// context is polled between units so a cancelled run stops promptly.
func Check(ctx context.Context, dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	units, err := LoadPackages(dir, patterns)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, lu := range units {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		all = append(all, RunUnit(lu.Fset, lu.Unit, analyzers)...)
	}
	SortDiagnostics(all)
	return all, nil
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Standard     bool
	Export       string
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path string }
	Error        *struct{ Err string }
	DepOnly      bool
	Incomplete   bool
	TestImports  []string
	XTestImports []string
}

// LoadedUnit pairs a unit with the file set it was parsed into.
type LoadedUnit struct {
	Fset *token.FileSet
	Unit *Unit
}

// LoadPackages lists patterns in dir, type-checks every module package
// (plus its test compilations), and returns the units in deterministic
// order. Hard type-check or list failures abort the load: the invariant
// suite must never silently skip code it cannot see.
func LoadPackages(dir string, patterns []string) ([]LoadedUnit, error) {
	pkgs, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Module packages matching the patterns, plain compilations only:
	// DepOnly packages are dependencies the caller did not ask about
	// (and whose test-only imports carry no export data here), and
	// variants like "p [q.test]" and the synthesized ".test" mains are
	// skipped — their sources are covered by the units built below.
	var roots []*listedPackage
	for _, lp := range pkgs {
		if lp.DepOnly || lp.Standard || lp.Module == nil || lp.Module.Path != "repro" {
			continue
		}
		if strings.Contains(lp.ImportPath, " [") || strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by hlsvet", lp.ImportPath)
		}
		roots = append(roots, lp)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	var units []LoadedUnit
	for _, lp := range roots {
		plain, err := checkUnit(fset, exports, lp.ImportPath, lp.ImportPath,
			absFiles(lp.Dir, lp.GoFiles), true)
		if err != nil {
			return nil, err
		}
		units = append(units, LoadedUnit{fset, plain})
		if len(lp.TestGoFiles) > 0 {
			t, err := checkUnit(fset, exports, lp.ImportPath, lp.ImportPath,
				absFiles(lp.Dir, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)), false)
			if err != nil {
				return nil, err
			}
			units = append(units, LoadedUnit{fset, t})
		}
		if len(lp.XTestGoFiles) > 0 {
			x, err := checkUnit(fset, exports, lp.ImportPath+"_test", lp.ImportPath,
				absFiles(lp.Dir, lp.XTestGoFiles), true)
			if err != nil {
				return nil, err
			}
			units = append(units, LoadedUnit{fset, x})
		}
	}
	return units, nil
}

// goList runs `go list -e -deps -test -export -json` over patterns in
// dir and returns the parsed packages plus the gc export-data index
// keyed by ImportPath — including the "p [q.test]" test variants, which
// is what lets test-only dependency shapes type-check. The -export flag
// compiles every dependency through the build cache, so this works
// fully offline.
func goList(dir string, patterns []string) ([]*listedPackage, map[string]string, error) {
	args := append([]string{"list", "-e", "-deps", "-test", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, exports, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// checkUnit parses and type-checks one compilation unit. forTest names
// the package whose test variant this is; its "[p.test]" export
// variants take priority so test-only dependency shapes resolve.
func checkUnit(fset *token.FileSet, exports map[string]string, pkgPath, forTest string, files []string, reportAll bool) (*Unit, error) {
	parsed, err := ParseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if f, ok := exports[path+" ["+forTest+".test]"]; ok {
			return os.Open(f)
		}
		if f, ok := exports[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", path)
	}
	pkg, info, err := CheckFiles(fset, pkgPath, parsed, lookup)
	if err != nil {
		return nil, err
	}
	return &Unit{
		PkgPath:   pkgPath,
		Files:     parsed,
		Pkg:       pkg,
		Info:      info,
		ReportAll: reportAll,
	}, nil
}

// ParseFiles parses sources with comments (the escape hatches live
// there).
func ParseFiles(fset *token.FileSet, files []string) ([]*ast.File, error) {
	parsed := make([]*ast.File, 0, len(files))
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return parsed, nil
}

// CheckFiles type-checks one unit against gc export data supplied by
// lookup. Type errors are hard failures: an invariant suite that runs
// over code it could not fully resolve proves nothing.
func CheckFiles(fset *token.FileSet, pkgPath string, files []*ast.File, lookup func(string) (io.ReadCloser, error)) (*types.Package, *types.Info, error) {
	info := NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, nil, fmt.Errorf("type-checking %s:\n  %s", pkgPath, strings.Join(msgs, "\n  "))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return pkg, info, nil
}
