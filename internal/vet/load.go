package vet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/pool"
)

// The standalone loader: `hlsvet ./...` without a go vet driver. It
// shells out to `go list -deps -test -export -json`, which compiles
// export data for every dependency through the build cache (no network,
// no golang.org/x/tools), then type-checks each module package from
// source against that export data.
//
// Each package yields up to three units, mirroring how cmd/go compiles
// it: the plain package, the package including its in-package _test.go
// files (reported only for test-file positions, so the overlap never
// double-reports), and the external _test package.
//
// The pipeline runs on internal/pool — the same worker substrate it
// vets: parse/type-check fans out per unit (token.FileSet and the gc
// importer are safe for concurrent use), the sharedro summary fixpoint
// runs sequentially in bottom-up import order, analysis fans out per
// unit again, and aggregation is by fixed unit index followed by a
// total-order sort, so the output is byte-identical run-to-run.

// Check loads patterns in dir and runs the analyzers over every unit,
// returning the aggregated, deterministically sorted findings. The
// context is threaded through the pool so a cancelled run stops
// promptly.
func Check(ctx context.Context, dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return CheckParallel(ctx, dir, patterns, analyzers, 0)
}

// CheckParallel is Check with an explicit worker count for the
// parse/type-check and analysis fan-outs (<=0 means GOMAXPROCS). The
// findings are identical for every worker count — hlsbench's vet
// baseline measures both ends and asserts exactly that.
func CheckParallel(ctx context.Context, dir string, patterns []string, analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	pkgs, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	roots, err := rootPackages(pkgs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	workers = pool.Size(workers)

	// sharedro needs mutation summaries for the whole module slice under
	// the requested packages: type-check every module dependency and run
	// the summary fixpoint bottom-up over the import graph.
	var store *Summaries
	preChecked := map[string]*Unit{}
	if analyzersNeedSummaries(analyzers) {
		mods := modulePackages(pkgs)
		order, err := topoOrder(mods)
		if err != nil {
			return nil, err
		}
		units, err := pool.MapCtx(ctx, workers, len(order), func(i int) (*Unit, error) {
			lp := order[i]
			return checkUnit(fset, exports, lp.ImportPath, lp.ImportPath,
				absFiles(lp.Dir, lp.GoFiles), true)
		})
		if err != nil {
			return nil, err
		}
		store = NewSummaries()
		for i, u := range units {
			ComputePackageSummaries(u.Files, u.Info, store)
			preChecked[order[i].ImportPath] = u
		}
	}

	// Build the unit jobs in deterministic order; plain units already
	// type-checked by the summary phase are reused as-is.
	type unitJob struct {
		pkgPath, forTest string
		files            []string
		reportAll        bool
		pre              *Unit
	}
	var jobs []unitJob
	for _, lp := range roots {
		jobs = append(jobs, unitJob{lp.ImportPath, lp.ImportPath,
			absFiles(lp.Dir, lp.GoFiles), true, preChecked[lp.ImportPath]})
		if len(lp.TestGoFiles) > 0 {
			jobs = append(jobs, unitJob{lp.ImportPath, lp.ImportPath,
				absFiles(lp.Dir, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)), false, nil})
		}
		if len(lp.XTestGoFiles) > 0 {
			jobs = append(jobs, unitJob{lp.ImportPath + "_test", lp.ImportPath,
				absFiles(lp.Dir, lp.XTestGoFiles), true, nil})
		}
	}
	units, err := pool.MapCtx(ctx, workers, len(jobs), func(i int) (*Unit, error) {
		j := jobs[i]
		if j.pre != nil {
			return j.pre, nil
		}
		return checkUnit(fset, exports, j.pkgPath, j.forTest, j.files, j.reportAll)
	})
	if err != nil {
		return nil, err
	}
	results, err := pool.MapCtx(ctx, workers, len(units), func(i int) ([]Diagnostic, error) {
		return RunUnit(fset, units[i], analyzers, store), nil
	})
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, ds := range results {
		all = append(all, ds...)
	}
	SortDiagnostics(all)
	return all, nil
}

// analyzersNeedSummaries reports whether the selection includes an
// analyzer consuming the cross-package mutation-summary store.
func analyzersNeedSummaries(analyzers []*Analyzer) bool {
	for _, a := range analyzers {
		if a.Name == sharedroAnalyzer.Name {
			return true
		}
	}
	return false
}

// rootPackages filters the listing to the requested module packages
// (plain compilations), sorted by import path.
func rootPackages(pkgs []*listedPackage) ([]*listedPackage, error) {
	var roots []*listedPackage
	for _, lp := range pkgs {
		if lp.DepOnly || lp.Standard || lp.Module == nil || lp.Module.Path != "repro" {
			continue
		}
		if strings.Contains(lp.ImportPath, " [") || strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by hlsvet", lp.ImportPath)
		}
		roots = append(roots, lp)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	return roots, nil
}

// modulePackages returns every module package in the listing — roots
// and dependencies alike, plain compilations only — sorted by path.
// `go list -deps` supplies Dir and GoFiles for DepOnly packages, so
// narrow patterns like ./internal/mfs still see the sources of dfg.
func modulePackages(pkgs []*listedPackage) []*listedPackage {
	var mods []*listedPackage
	seen := map[string]bool{}
	for _, lp := range pkgs {
		if lp.Standard || lp.Module == nil || lp.Module.Path != "repro" {
			continue
		}
		if strings.Contains(lp.ImportPath, " [") || strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		if seen[lp.ImportPath] {
			continue
		}
		seen[lp.ImportPath] = true
		mods = append(mods, lp)
	}
	sort.Slice(mods, func(i, j int) bool { return mods[i].ImportPath < mods[j].ImportPath })
	return mods
}

// topoOrder sorts module packages bottom-up by imports (callees before
// callers) with lexicographic tie-breaking, so the summary fixpoint
// always sees its dependencies' results. Go forbids import cycles, so
// a leftover package is a listing inconsistency, not an SCC.
func topoOrder(mods []*listedPackage) ([]*listedPackage, error) {
	member := map[string]*listedPackage{}
	for _, lp := range mods {
		member[lp.ImportPath] = lp
	}
	indeg := map[string]int{}
	rdeps := map[string][]string{}
	for _, lp := range mods {
		for _, imp := range lp.Imports {
			if member[imp] == nil {
				continue
			}
			indeg[lp.ImportPath]++
			rdeps[imp] = append(rdeps[imp], lp.ImportPath)
		}
	}
	ready := make([]string, 0, len(mods))
	for _, lp := range mods {
		if indeg[lp.ImportPath] == 0 {
			ready = append(ready, lp.ImportPath)
		}
	}
	sort.Strings(ready)
	var order []*listedPackage
	for len(ready) > 0 {
		p := ready[0]
		ready = ready[1:]
		order = append(order, member[p])
		changed := false
		for _, r := range rdeps[p] {
			indeg[r]--
			if indeg[r] == 0 {
				ready = append(ready, r)
				changed = true
			}
		}
		if changed {
			sort.Strings(ready)
		}
	}
	if len(order) != len(mods) {
		return nil, fmt.Errorf("vet: import graph did not topo-sort (%d of %d packages)", len(order), len(mods))
	}
	return order, nil
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Standard     bool
	Export       string
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path string }
	Error        *struct{ Err string }
	DepOnly      bool
	Incomplete   bool
	Imports      []string
	TestImports  []string
	XTestImports []string
}

// LoadedUnit pairs a unit with the file set it was parsed into.
type LoadedUnit struct {
	Fset *token.FileSet
	Unit *Unit
}

// LoadPackages lists patterns in dir, type-checks every module package
// (plus its test compilations), and returns the units in deterministic
// order. Hard type-check or list failures abort the load: the invariant
// suite must never silently skip code it cannot see.
func LoadPackages(dir string, patterns []string) ([]LoadedUnit, error) {
	pkgs, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	// Module packages matching the patterns, plain compilations only:
	// DepOnly packages are dependencies the caller did not ask about,
	// and variants like "p [q.test]" and the synthesized ".test" mains
	// are skipped — their sources are covered by the units built below.
	roots, err := rootPackages(pkgs)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	var units []LoadedUnit
	for _, lp := range roots {
		plain, err := checkUnit(fset, exports, lp.ImportPath, lp.ImportPath,
			absFiles(lp.Dir, lp.GoFiles), true)
		if err != nil {
			return nil, err
		}
		units = append(units, LoadedUnit{fset, plain})
		if len(lp.TestGoFiles) > 0 {
			t, err := checkUnit(fset, exports, lp.ImportPath, lp.ImportPath,
				absFiles(lp.Dir, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)), false)
			if err != nil {
				return nil, err
			}
			units = append(units, LoadedUnit{fset, t})
		}
		if len(lp.XTestGoFiles) > 0 {
			x, err := checkUnit(fset, exports, lp.ImportPath+"_test", lp.ImportPath,
				absFiles(lp.Dir, lp.XTestGoFiles), true)
			if err != nil {
				return nil, err
			}
			units = append(units, LoadedUnit{fset, x})
		}
	}
	return units, nil
}

// goList runs `go list -e -deps -test -export -json` over patterns in
// dir and returns the parsed packages plus the gc export-data index
// keyed by ImportPath — including the "p [q.test]" test variants, which
// is what lets test-only dependency shapes type-check. The -export flag
// compiles every dependency through the build cache, so this works
// fully offline.
func goList(dir string, patterns []string) ([]*listedPackage, map[string]string, error) {
	args := append([]string{"list", "-e", "-deps", "-test", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, exports, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// checkUnit parses and type-checks one compilation unit. forTest names
// the package whose test variant this is; its "[p.test]" export
// variants take priority so test-only dependency shapes resolve.
func checkUnit(fset *token.FileSet, exports map[string]string, pkgPath, forTest string, files []string, reportAll bool) (*Unit, error) {
	parsed, err := ParseFiles(fset, files)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if f, ok := exports[path+" ["+forTest+".test]"]; ok {
			return os.Open(f)
		}
		if f, ok := exports[path]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", path)
	}
	pkg, info, err := CheckFiles(fset, pkgPath, parsed, lookup)
	if err != nil {
		return nil, err
	}
	return &Unit{
		PkgPath:   pkgPath,
		Files:     parsed,
		Pkg:       pkg,
		Info:      info,
		ReportAll: reportAll,
	}, nil
}

// ParseFiles parses sources with comments (the escape hatches live
// there).
func ParseFiles(fset *token.FileSet, files []string) ([]*ast.File, error) {
	parsed := make([]*ast.File, 0, len(files))
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return parsed, nil
}

// CheckFiles type-checks one unit against gc export data supplied by
// lookup. Type errors are hard failures: an invariant suite that runs
// over code it could not fully resolve proves nothing.
func CheckFiles(fset *token.FileSet, pkgPath string, files []*ast.File, lookup func(string) (io.ReadCloser, error)) (*types.Package, *types.Info, error) {
	info := NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, nil, fmt.Errorf("type-checking %s:\n  %s", pkgPath, strings.Join(msgs, "\n  "))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return pkg, info, nil
}
