package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/diag"
)

// maporder enforces the determinism invariant behind bit-identical
// sweeps and replayable traces: in the packages whose computation
// reaches synthesis results, map iteration order must never influence
// an observable outcome. Go randomizes that order per process, so a
// `for range` over a map in scheduler code is a latent nondeterminism
// bug unless the loop provably cannot observe the order.
//
// A range-over-map in a critical package is accepted when:
//
//   - the loop body is order-insensitive: every statement is a
//     commutative accumulation (+=, -=, *=, |=, &=, ^=, ++, --), a
//     keyed write (m[k] = v), a delete, or an if/continue composed of
//     the same — the fold's result is independent of visit order; or
//   - a variable the loop writes is sorted later in the same function
//     (sort.* / slices.Sort*), restoring a canonical order; or
//   - the site carries //hls:orderok with a justification.
//
// Test files are exempt: the invariant protects synthesis results, not
// assertion order.
var maporderAnalyzer = &Analyzer{
	Name:  "maporder",
	Doc:   "range over a map in a determinism-critical package without sort or order-insensitive fold",
	Codes: []string{diag.CodeVetMapOrder, diag.CodeVetHatchReason},
	Run:   runMaporder,
}

// criticalPkgs are the packages whose computation reaches synthesis
// results. Everything under them is replayed by traces, hashed into
// sweep baselines, or compared bit-for-bit across parallelism settings.
var criticalPkgs = map[string]bool{
	"repro/internal/sched":    true,
	"repro/internal/mfs":      true,
	"repro/internal/mfsa":     true,
	"repro/internal/grid":     true,
	"repro/internal/rtl":      true,
	"repro/internal/liapunov": true,
	"repro/internal/symb":     true,
	"repro/internal/core":     true,
	// canon's hashes are cache keys shared across processes: any
	// order-dependence would split identical requests across buckets.
	"repro/internal/canon": true,
}

func runMaporder(p *Pass) {
	if !criticalPkgs[strings.TrimSuffix(p.PkgPath, "_test")] {
		return
	}
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMaporderFunc(p, fd.Body)
		}
	}
}

func checkMaporderFunc(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if p.Hatched(rs, "orderok") {
			return true
		}
		if orderInsensitiveBody(p, rs.Body.List) {
			return true
		}
		if sortedAfter(p, body, rs) {
			return true
		}
		p.Reportf(rs.Pos(), diag.CodeVetMapOrder,
			"range over map %s: iteration order is randomized per process; sort the keys, make the fold order-insensitive, or annotate //hls:orderok <why>",
			exprString(rs.X))
		return true
	})
}

// orderInsensitiveBody reports whether every statement is a commutative
// fold step, so the loop's effect is independent of visitation order.
func orderInsensitiveBody(p *Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.IncDecStmt:
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
				token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
				// Commutative, associative accumulation.
			case token.ASSIGN:
				// Keyed writes only: each iteration touches its own slot.
				for _, lhs := range s.Lhs {
					if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); !ok {
						return false
					}
				}
			default:
				return false
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltinCall(p.Info, call, "delete") {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || !orderInsensitiveBody(p, s.Body.List) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !orderInsensitiveBody(p, e.List) {
					return false
				}
			default:
				return false
			}
		default:
			return false
		}
	}
	return true
}

// sortedAfter reports whether a variable the loop writes is passed to a
// sorting call after the loop in the enclosing function body —
// collect-then-sort, the canonical deterministic idiom.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) bool {
	written := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if obj := rootObj(p.Info, lhs); obj != nil {
				written[obj] = true
			}
		}
		return true
	})
	if len(written) == 0 {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rs.End() {
			return true
		}
		obj := calleeObj(p.Info, call)
		if !isSortFunc(obj) {
			return true
		}
		for _, arg := range call.Args {
			if o := rootObj(p.Info, arg); o != nil && written[o] {
				found = true
			}
		}
		return true
	})
	return found
}

// isSortFunc recognizes the standard sorting entry points.
func isSortFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return strings.HasPrefix(fn.Name(), "Sort") || fn.Name() == "Slice" ||
			fn.Name() == "SliceStable" || fn.Name() == "Strings" ||
			fn.Name() == "Ints" || fn.Name() == "Float64s" || fn.Name() == "Stable"
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// rootObj resolves an expression to the object of its root identifier:
// `x`, `x.f`, `x[i]`, `*x`, `x[i:j]` all root at x.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a short source-ish form of e for messages.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expression"
}
