// Fixture presented to the maporder analyzer under the import path
// repro/internal/sched — a determinism-critical package.
package sched

import "sort"

// Keys collects map keys with no sort: the slice order varies per
// process, so this must be flagged.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "HV0002.*range over map m"
		out = append(out, k)
	}
	return out
}

// SortedKeys is the canonical collect-then-sort idiom: clean.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum is a commutative fold: clean.
func Sum(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// Double writes each iteration to its own key: clean.
func Double(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = 2 * v
	}
	return out
}

// Hatched is silenced by a justified escape hatch: clean.
func Hatched(m map[string]int) []string {
	var out []string
	//hls:orderok fixture: the order feeds a set union, never a sequence
	for k := range m {
		out = append(out, k)
	}
	return out
}

// BareHatch is silenced, but the empty justification costs HV0001.
func BareHatch(m map[string]int) []string {
	var out []string
	//hls:orderok
	for k := range m { // want "HV0001.*needs a justification"
		out = append(out, k)
	}
	return out
}
