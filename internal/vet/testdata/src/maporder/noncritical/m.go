// Fixture presented under repro/internal/report — NOT a
// determinism-critical package, so the same unsorted loop is clean.
package report

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
