// Fixture for noalloc: //hls:noalloc-marked functions must contain no
// heap-allocating construct and call only vetted callees.
package hot

import "math/bits"

// BadMake allocates: flagged.
//
//hls:noalloc
func BadMake(n int) []int {
	return make([]int, n) // want "HV0041.*make"
}

// BadConcat concatenates non-constant strings: flagged.
//
//hls:noalloc
func BadConcat(a, b string) string {
	return a + b // want "HV0041.*string concatenation"
}

// BadClosure builds a function literal: flagged.
//
//hls:noalloc
func BadClosure() func() int {
	return func() int { return 1 } // want "HV0041.*function literal"
}

// BadBox converts a concrete value to an interface: flagged.
//
//hls:noalloc
func BadBox(v int) any {
	return any(v) // want "HV0041.*boxing"
}

func helper(x int) int { return x * 2 }

// BadCall calls an unvetted same-package function: flagged.
//
//hls:noalloc
func BadCall(x int) int {
	return helper(x) // want "HV0042.*helper"
}

// leaf is vetted, so calls to it from marked functions are clean.
//
//hls:noalloc
func leaf(x uint64) int { return int(x & 1) }

// Good stays on vetted callees, intrinsics, and arithmetic: clean.
//
//hls:noalloc
func Good(x uint64) int {
	return bits.OnesCount64(x) + leaf(x)
}

// GoodYield invokes a caller-supplied function value: the callee's cost
// is the caller's contract, so this is clean.
//
//hls:noalloc
func GoodYield(n int, yield func(int) bool) bool {
	for i := 0; i < n; i++ {
		if !yield(i) {
			return false
		}
	}
	return true
}

// Hatched carries a justified allocok on its one allocation: clean.
//
//hls:noalloc
func Hatched(n int) []int {
	//hls:allocok fixture: the result's single backing array
	return make([]int, n)
}

// unmarked functions are outside the contract entirely.
func unmarked(n int) []int {
	return make([]int, n)
}
