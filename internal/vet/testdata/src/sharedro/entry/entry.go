// Fixture: presented as repro/internal/mfs — an entry package of the
// parallel sharing surface. Exported functions whose summaries mutate a
// parameter's protected storage violate the entry contract (HV0051);
// primitive writes additionally violate the foreign-write rule
// (HV0052), which reports at the site of the write.
package mfs

import (
	"sort"

	"repro/internal/dfg"
	"repro/internal/library"
)

// Perturb writes a node field of its input graph directly.
func Perturb(g *dfg.Graph) { // want "HV0051: entry point Perturb may mutate shared graph/library storage through g"
	g.Nodes()[0].Cycles++ // want "HV0052: Perturb mutates shared graph/library storage reached from g"
}

// SortsInPlace reorders the graph's own node slice through an opaque
// stdlib callee: the backing array is graph storage.
func SortsInPlace(g *dfg.Graph) { // want "HV0051: entry point SortsInPlace may mutate shared graph/library storage through g"
	sort.Slice(g.Nodes(), func(i, j int) bool { // want "HV0052: SortsInPlace mutates shared graph/library storage reached from g"
		return g.Nodes()[i].Name < g.Nodes()[j].Name
	})
}

// bump is unexported: no entry contract, but the primitive write is
// still a foreign mutation.
func bump(n *dfg.Node) {
	n.Cycles = 3 // want "HV0052: bump mutates shared graph/library storage reached from n"
}

// Chain inherits bump's mutation interprocedurally: the entry contract
// fires at the declaration, while the foreign-write report stays with
// bump's primitive write — the call itself is not re-reported.
func Chain(g *dfg.Graph) { // want "HV0051: entry point Chain may mutate shared graph/library storage through g"
	bump(g.Nodes()[0])
}

// ReadOnly sorts a fresh copy of the library's unit list: the backing
// array is this function's own, only the pointees are shared.
func ReadOnly(lib *library.Library) []*library.Unit {
	us := append([]*library.Unit(nil), lib.Units()...)
	sort.Slice(us, func(i, j int) bool { return us[i].Name < us[j].Name })
	return us
}

// Fresh builds and mutates its own graph: nothing shared is touched.
func Fresh() *dfg.Graph {
	g := dfg.New("fresh")
	if err := g.AddInput("a"); err != nil {
		return nil
	}
	return g
}

// Annotated is allowed by a justified hatch on the declaration.
//
//hls:sharedok fixture: documented in-place builder, callers own the graph
func Annotated(g *dfg.Graph) {
	g.Nodes()[0].Cycles = 2
}
