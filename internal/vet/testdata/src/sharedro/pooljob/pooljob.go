// Fixture: presented as repro/internal/core — the pool-closure rule.
// A job closure handed to the worker pool runs on many goroutines at
// once, so mutating captured graph/library storage inside one is a data
// race even when the graph is function-local.
package core

import (
	"context"

	"repro/internal/dfg"
	"repro/internal/pool"
)

// sweep mutates the shared input graph inside a pool job: the closure
// rule and the foreign-write rule both fire at the write.
func sweep(ctx context.Context, g *dfg.Graph) error {
	_, err := pool.MapCtx(ctx, 4, 8, func(i int) (int, error) {
		g.Nodes()[i].Cycles = i // want "HV0051: parallel job closure mutates captured graph/library storage" // want "HV0052: sweep mutates shared graph/library storage reached from g"
		return i, nil
	})
	return err
}

// speculative mutates a fresh local graph inside a pool job: no root is
// reached (no HV0052), but the closure still races against itself.
func speculative(ctx context.Context) error {
	g := dfg.New("scratch")
	_, err := pool.MapCtx(ctx, 4, 8, func(i int) (int, error) {
		err := g.AddInput("x") // want "HV0051: parallel job closure mutates captured graph/library storage"
		return i, err
	})
	return err
}

// bound resolves a job bound to a local variable before the fan-out.
func bound(ctx context.Context) error {
	g := dfg.New("scratch")
	job := func(i int) (int, error) {
		err := g.AddInput("y") // want "HV0051: parallel job closure mutates captured graph/library storage"
		return i, err
	}
	_, err := pool.MapCtx(ctx, 4, 8, job)
	return err
}

// private is clean: the graph is created inside the job, so each worker
// owns its own.
func private(ctx context.Context) error {
	_, err := pool.MapCtx(ctx, 4, 8, func(i int) (int, error) {
		g := dfg.New("worker")
		return len(g.Nodes()), g.AddInput("x")
	})
	return err
}

// annotated is allowed by a justified hatch on the mutation site.
func annotated(ctx context.Context, g *dfg.Graph) error {
	_, err := pool.MapCtx(ctx, 4, 8, func(i int) (int, error) {
		//hls:sharedok fixture: workers touch disjoint nodes by index
		g.Nodes()[i].Cycles = i
		return i, nil
	})
	return err
}
