// Fixture: presented as repro/internal/dfg — an owning package. The
// protected types are defined locally under the owner's import path, so
// isProtectedNamed treats them as the real thing; the owner may mutate
// them freely and nothing fires.
package dfg

type Graph struct {
	Name  string
	nodes []*Node
}

type Node struct {
	Name   string
	Cycles int
}

// bump mutates a node in place: owners may.
func (g *Graph) bump() {
	g.nodes[0].Cycles++
}

// Rename writes through a parameter: still the owner's privilege.
func Rename(n *Node, name string) {
	n.Name = name
}
