// Fixture: presented as repro/internal/canon — a module package that is
// neither an owner of the protected types nor on the parallel entry
// surface. Primitive writes to graph/library storage fire HV0052; the
// entry contract (HV0051) never does.
package canon

import "repro/internal/dfg"

// scrub writes a node field directly.
func scrub(n *dfg.Node) {
	n.Name = "x" // want "HV0052: scrub mutates shared graph/library storage reached from n"
}

// Rewrite writes an element of a node's interior container: the Args
// backing array is the node's own storage.
func Rewrite(g *dfg.Graph) {
	g.Nodes()[0].Args[0] = "y" // want "HV0052: Rewrite mutates shared graph/library storage reached from g"
}

// grow appends into the graph's own node slice: spare capacity of the
// shared backing array may be written.
func grow(g *dfg.Graph) {
	ns := g.Nodes()
	_ = append(ns, nil) // want "HV0052: grow mutates shared graph/library storage reached from g"
}

// copies is clean: a fresh backing array is this function's own even
// though the pointees are still the graph's nodes.
func copies(g *dfg.Graph) []*dfg.Node {
	ns := append([]*dfg.Node(nil), g.Nodes()...)
	ns[0] = nil
	return ns
}
