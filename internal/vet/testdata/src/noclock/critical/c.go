// Fixture presented under repro/internal/sched: wall-clock reads and
// global math/rand state are both forbidden here.
package sched

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock in deterministic code: flagged.
func Stamp() time.Time {
	return time.Now() // want "HV0011.*time.Now"
}

// Elapsed reads the wall clock through time.Since: flagged.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "HV0011.*time.Since"
}

// GlobalRand draws from the process-wide generator: flagged.
func GlobalRand() int {
	return rand.Intn(8) // want "HV0012.*process-global"
}

// SeededRand owns its generator, so results depend only on the seed:
// clean. rand.New and rand.NewSource are the sanctioned constructors.
func SeededRand() int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(8)
}

// Hatched is silenced by a justified escape hatch: clean.
func Hatched() time.Time {
	//hls:clockok fixture: the timestamp decorates a log line, never a result
	return time.Now()
}
