// Fixture presented under repro/internal/experiments — an allowlisted
// package (wall time is an experiment's measurement), so time.Now is
// clean here. Global math/rand state stays forbidden everywhere.
package experiments

import "time"

func Measure() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
