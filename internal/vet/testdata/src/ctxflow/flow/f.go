// Fixture for ctxflow: dropped contexts and unpolled working loops in
// exported *Ctx entry points.
package flow

import "context"

func work(i int) int { return i }

func other(ctx context.Context) error { return ctx.Err() }

// Drop severs the caller's cancellation by minting a fresh root context
// while already holding a live one: flagged.
func Drop(ctx context.Context) error {
	return other(context.Background()) // want "HV0021.*context.Background"
}

// DropTODO does the same through context.TODO: flagged.
func DropTODO(ctx context.Context) error {
	return other(context.TODO()) // want "HV0021.*context.TODO"
}

// RunCtx is an exported cancellable entry point whose working loop never
// observes the context: flagged.
func RunCtx(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want "HV0022.*never observes its context"
		total += work(i)
	}
	return total
}

// PollCtx polls ctx.Err() each iteration: clean.
func PollCtx(ctx context.Context, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += work(i)
	}
	return total, nil
}

// ThreadCtx passes the context to the worker instead of polling: clean.
func ThreadCtx(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := other(ctx); err != nil {
			return err
		}
	}
	return nil
}

// helperCtx is unexported, so the loop-poll contract does not apply.
func helperCtx(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += work(i)
	}
	return total
}

// HatchCtx is silenced by a justified escape hatch: clean.
func HatchCtx(ctx context.Context, n int) int {
	total := 0
	//hls:ctxok fixture: bounded bookkeeping after the cancellable phase
	for i := 0; i < n; i++ {
		total += work(i)
	}
	return total
}
