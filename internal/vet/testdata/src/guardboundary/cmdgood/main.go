// Fixture presented under repro/cmd/fixgood: main routes through
// cli.Main, the sanctioned boundary helper — clean.
package main

import (
	"context"
	"io"

	"repro/internal/cli"
)

func run(ctx context.Context, args []string, out io.Writer) error {
	return nil
}

func main() {
	cli.Main("fixgood", run)
}
