// Fixture presented under repro/internal/cli: Main is the boundary
// helper every cmd trusts, so a Main without its own deferred recovery
// is flagged.
package cli

func Main(tool string, run func() error) { // want "HV0031.*establishes no `defer guard.Recover` itself"
	_ = run()
}
