// Fixture presented under repro/cmd/fixbad: main bypasses cli.Main and
// calls internal code with no recovery boundary.
package main

import (
	"context"

	"repro/internal/cli"
)

func main() { // want "HV0031.*outside the cli.Main boundary"
	_, cancel := cli.WithTimeout(context.Background(), 0)
	cancel()
}
