// Fixture presented under the import path "repro" — the hls facade.
// Exported error-returning functions that call into repro/internal must
// establish the guard.Recover boundary themselves.
package hls

import (
	"context"

	"repro/internal/cli"
	"repro/internal/guard"
)

// Unguarded reaches into internal code with no recovery boundary:
// flagged.
func Unguarded() error { // want "HV0031.*without `defer guard.Recover`"
	_, cancel := cli.WithTimeout(context.Background(), 0)
	cancel()
	return nil
}

// Guarded establishes the boundary first: clean.
func Guarded() (err error) {
	defer guard.Recover("hls.Guarded", &err)
	_, cancel := cli.WithTimeout(context.Background(), 0)
	cancel()
	return nil
}

// NoError returns no error, so it cannot convert a panic and is exempt.
func NoError() int {
	return 1
}

// unexported functions are not part of the public surface.
func unexported() error {
	_, cancel := cli.WithTimeout(context.Background(), 0)
	cancel()
	return nil
}

// Hatched is silenced by a justified escape hatch: clean.
//
//hls:guardok fixture: the helper cannot panic; it only builds a context
func Hatched() error {
	_, cancel := cli.WithTimeout(context.Background(), 0)
	cancel()
	return nil
}
