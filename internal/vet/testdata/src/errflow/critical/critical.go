// Fixture: presented as repro/internal/sched — a determinism-critical
// package where dropped and shadowed errors are findings.
package sched

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

func work() error { return errors.New("x") }

func tweak() error { return nil }

// drop discards errors both ways.
func drop() {
	work()     // want "HV0061: result of work"
	_ = work() // want "HV0061: error assigned to _"
	err := work()
	_ = err // want "HV0061: error assigned to _"
}

// allowed uses the writers whose contract says the error is always nil.
func allowed() string {
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 1)
	h := sha256.New()
	h.Write([]byte("x")) // hash.Hash's Write never fails (resolves to io.Writer's method)
	return b.String()
}

// hatched is allowed by annotation.
func hatched() {
	//hls:errok fixture: best-effort cleanup, failure is not a result
	work()
}

// shadowBad re-declares err in an inner scope and then reads the outer
// one: the classic wrong-variable check.
func shadowBad(r io.Reader) error {
	buf := make([]byte, 4)
	_, err := r.Read(buf)
	if err == nil {
		err := tweak() // want "HV0062: err := shadows the err declared at"
		if err != nil {
			return err
		}
	}
	return err
}

// shadowNaked shadows a named err result with a naked return after the
// inner scope: the naked return reads the outer (still nil) err.
func shadowNaked(cond bool) (err error) {
	if cond {
		err := work() // want "HV0062: err := shadows the err declared at"
		if err != nil {
			return err
		}
	}
	return
}

// shadowScoped uses the statement-scoped idiom: exempt.
func shadowScoped() error {
	_, err := strconv.Atoi("4")
	if err != nil {
		return err
	}
	if err := work(); err != nil {
		return err
	}
	return err
}

// shadowClosure shadows inside a closure: a different execution
// context, the outer err cannot be misread across the boundary.
func shadowClosure() error {
	_, err := strconv.Atoi("4")
	f := func() int {
		v, err := strconv.Atoi("5")
		if err != nil {
			return 0
		}
		return v
	}
	_ = f()
	return err
}

// shadowHarmless shadows, but the outer err is never read after the
// inner scope closes: no later check can pick the wrong variable.
func shadowHarmless(xs []string) int {
	_, err := strconv.Atoi("4")
	if err != nil {
		return 0
	}
	if len(xs) > 0 {
		n, err := strconv.Atoi(xs[0])
		if err != nil {
			return 0
		}
		return n
	}
	return 1
}
