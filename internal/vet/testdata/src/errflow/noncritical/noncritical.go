// Fixture: presented as repro/internal/report — outside the
// determinism-critical set, errflow stays silent.
package report

import "errors"

func work() error { return errors.New("x") }

func drop() error {
	work()
	_ = work()
	_, err := partial()
	if err == nil {
		err := work()
		_ = err
	}
	return err
}

func partial() (int, error) { return 0, nil }
