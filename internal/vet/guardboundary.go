package vet

import (
	"go/ast"
	"strings"

	"repro/internal/diag"
)

// guardboundary closes the "new endpoint forgets panic recovery" hole:
// once the engine runs as a long-lived service, a panic that crosses the
// public surface kills the host process. The invariant is that every
// road from outside into internal/ passes a guard.Recover boundary.
//
// Three surfaces are checked:
//
//   - the hls facade (the module root package): every exported,
//     error-returning function that calls into a repro/internal package
//     must itself establish `defer guard.Recover(...)`. Delegating to a
//     sibling facade function is fine — the sibling is checked too.
//     Exported functions without an error result (constructors,
//     accessors) cannot convert a panic and are exempt; they do no
//     synthesis work.
//   - cmd/* main functions: main must route through cli.Main (the
//     sanctioned boundary helper) before touching any other internal
//     package, or establish its own guard.Recover.
//   - internal/cli.Main itself must establish the recovery it promises,
//     so the helper the rule trusts is verified, not assumed.
//
// Escape hatch: //hls:guardok <why> on the function declaration.
var guardboundaryAnalyzer = &Analyzer{
	Name:  "guardboundary",
	Doc:   "facade and cmd entry points establish guard.Recover before calling into internal packages",
	Codes: []string{diag.CodeVetNoBoundary, diag.CodeVetHatchReason},
	Run:   runGuardboundary,
}

func runGuardboundary(p *Pass) {
	base := strings.TrimSuffix(p.PkgPath, "_test")
	switch {
	case base == "repro":
		checkFacade(p)
	case strings.HasPrefix(base, "repro/cmd/"):
		checkCmdMain(p)
	case base == "repro/internal/cli":
		checkBoundaryHelper(p)
	}
}

func checkFacade(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			if !returnsError(p, fd) {
				continue
			}
			if internalCall := firstInternalCall(p, fd.Body, nil); internalCall != "" &&
				!hasDeferredRecover(p, fd.Body) && !p.HatchedDecl(fd, "guardok") {
				p.Reportf(fd.Name.Pos(), diag.CodeVetNoBoundary,
					"exported facade function %s calls %s without `defer guard.Recover`: a panic below it would crash the host process; add the boundary or annotate //hls:guardok <why>",
					fd.Name.Name, internalCall)
			}
		}
	}
}

func checkCmdMain(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil || fd.Name.Name != "main" {
				continue
			}
			// cli.Main is the sanctioned boundary; any other internal
			// call from main needs its own recovery.
			allowed := func(path, name string) bool {
				return path == "repro/internal/cli" && name == "Main"
			}
			if internalCall := firstInternalCall(p, fd.Body, allowed); internalCall != "" &&
				!hasDeferredRecover(p, fd.Body) && !p.HatchedDecl(fd, "guardok") {
				p.Reportf(fd.Name.Pos(), diag.CodeVetNoBoundary,
					"func main calls %s outside the cli.Main boundary: route the tool through cli.Main or `defer guard.Recover`, or annotate //hls:guardok <why>",
					internalCall)
			}
		}
	}
}

func checkBoundaryHelper(p *Pass) {
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil || fd.Name.Name != "Main" {
				continue
			}
			if !hasDeferredRecover(p, fd.Body) && !p.HatchedDecl(fd, "guardok") {
				p.Reportf(fd.Name.Pos(), diag.CodeVetNoBoundary,
					"cli.Main is the boundary helper every cmd trusts but establishes no `defer guard.Recover` itself")
			}
		}
	}
}

func returnsError(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		if t := p.Info.TypeOf(field.Type); t != nil && isErrorType(t) {
			return true
		}
	}
	return false
}

// hasDeferredRecover reports whether the body (at any depth, including
// inside function literals — cli.Main wraps its run callback in one)
// defers a call to guard.Recover.
func hasDeferredRecover(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isPkgFunc(calleeObj(p.Info, ds.Call), "repro/internal/guard", "Recover") {
			found = true
		}
		return true
	})
	return found
}

// firstInternalCall returns a printable name of the first call into a
// repro/internal package in the body ("" if none), skipping callees the
// allowed filter accepts.
func firstInternalCall(p *Pass, body *ast.BlockStmt, allowed func(path, name string) bool) string {
	name := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(p.Info, call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		path := obj.Pkg().Path()
		if !strings.HasPrefix(path, "repro/internal/") {
			return true
		}
		if allowed != nil && allowed(path, obj.Name()) {
			return true
		}
		name = path[strings.LastIndex(path, "/")+1:] + "." + obj.Name()
		return true
	})
	return name
}
