package vet

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/diag"
)

// noclock keeps synthesis a pure function of (graph, library, config):
// a cache keyed on those three is unsound the moment a result can
// depend on the wall clock or on unseeded randomness.
//
// Two rules:
//
//   - time.Now / time.Since / time.Until are confined to the
//     measurement allowlist — experiments, gen, sim, cli, the cmd/
//     tools and test files. Engine packages never read the clock.
//   - the global math/rand state (rand.Intn, rand.Float64, rand.Seed,
//     rand.Shuffle, ...) is banned everywhere, tests included: global
//     draws depend on process-wide sequencing, so a failure seen under
//     -count=2 or -race does not reproduce from a logged seed. Use
//     rand.New(rand.NewSource(seed)) and draw from that.
//
// Escape hatch: //hls:clockok <why>.
var noclockAnalyzer = &Analyzer{
	Name:  "noclock",
	Doc:   "wall-clock reads outside the measurement allowlist; global math/rand state anywhere",
	Codes: []string{diag.CodeVetWallClock, diag.CodeVetGlobalRand, diag.CodeVetHatchReason},
	Run:   runNoclock,
}

// clockAllowed lists the packages whose job is measurement or seeded
// generation: wall-clock reads there are the point, not a leak.
var clockAllowed = map[string]bool{
	"repro/internal/experiments": true,
	"repro/internal/gen":         true,
	"repro/internal/sim":         true,
	"repro/internal/cli":         true,
	// serve measures request latency and drives batch windows; neither
	// reaches a synthesis result.
	"repro/internal/serve": true,
}

func clockAllowedPkg(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	return clockAllowed[path] || strings.HasPrefix(path, "repro/cmd/")
}

// deterministicRandConstructors are the math/rand entry points that
// take or build an explicit source, keeping draws reproducible.
var deterministicRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runNoclock(p *Pass) {
	timeOK := clockAllowedPkg(p.PkgPath)
	for _, f := range p.Files {
		inTest := p.InTestFile(f.Pos())
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					if timeOK || inTest || p.Hatched(sel, "clockok") {
						return true
					}
					p.Reportf(sel.Pos(), diag.CodeVetWallClock,
						"time.%s in %s: synthesis must be a pure function of its inputs; measure in experiments/cli or annotate //hls:clockok <why>",
						fn.Name(), p.PkgPath)
				}
			case "math/rand", "math/rand/v2":
				if deterministicRandConstructors[fn.Name()] {
					return true
				}
				if p.Hatched(sel, "clockok") {
					return true
				}
				p.Reportf(sel.Pos(), diag.CodeVetGlobalRand,
					"rand.%s draws from the process-global generator; use rand.New(rand.NewSource(seed)) so runs reproduce from the logged seed",
					fn.Name())
			}
			return true
		})
	}
}
