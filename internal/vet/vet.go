// Package vet is the engine's source-level invariant suite: a
// go/analysis-style analyzer registry that statically enforces the
// disciplines the synthesis engine's headline guarantees depend on —
// bit-identical parallel sweeps, replayable traces, <100ms cancellation
// and the zero-allocation frame algebra — instead of hoping a runtime
// test happens to hit the violating path.
//
// Seven analyzers are registered:
//
//   - maporder: no `for range` over a map in a determinism-critical
//     package unless the loop is provably order-insensitive, its output
//     is sorted afterwards, or the site carries //hls:orderok.
//   - noclock: no wall-clock reads outside the measurement allowlist and
//     no global math/rand state anywhere — randomness must flow through
//     rand.New(rand.NewSource(seed)) so every run reproduces.
//   - ctxflow: a function holding a context never discards it for
//     context.Background/TODO, and every working loop in an exported
//     *Ctx entry point polls cancellation.
//   - guardboundary: every error-returning exported function of the hls
//     facade and every cmd main establishes a guard.Recover boundary
//     before calling into internal packages.
//   - noalloc: functions marked //hls:noalloc contain no heap-allocating
//     constructs and call only vetted callees.
//   - sharedro: interprocedural mutation summaries prove the parallel
//     engine's read-only sharing contract — no scheduling/serving path
//     mutates a shared *dfg.Graph or *library.Library (HV0051), and
//     only internal/dfg and internal/library mutate those types at all
//     (HV0052). See summary.go for the analysis.
//   - errflow: no silently dropped or shadowed errors inside the
//     determinism-critical packages.
//
// The suite is built on the standard library alone (go/ast, go/types,
// export data via `go list -export`), mirrors golang.org/x/tools
// go/analysis closely enough that analyzers are single-package units —
// except sharedro, which consumes cross-package mutation summaries
// carried by the load pipeline (standalone: bottom-up over the module
// graph; vettool: vetx facts files) — and is driven two ways by
// cmd/hlsvet: standalone over `./...`, or as a `go vet -vettool` (see
// unitchecker.go for the cmd/go protocol).
//
// Diagnostics carry stable HV codes from the internal/diag registry;
// every escape hatch (//hls:orderok, //hls:clockok, //hls:ctxok,
// //hls:guardok, //hls:allocok, //hls:sharedok, //hls:errok) requires a
// justification string, and an empty one is itself a diagnostic
// (HV0001).
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/diag"
)

// Analyzer is one registered invariant check. Analyzers are
// single-package units: Run sees one type-checked package at a time and
// never needs cross-package facts, which is what lets the same code run
// standalone and under the `go vet -vettool` protocol.
type Analyzer struct {
	// Name is the pass identifier, unique in the registry, used for
	// selection (-run, per-analyzer vet flags) and stamped on every
	// diagnostic the pass reports.
	Name string

	// Doc is a one-line description of the invariant the pass enforces.
	Doc string

	// Codes lists every diag HV code the pass can report. The registry
	// test asserts each has a Docs contract.
	Codes []string

	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// registry holds the built-in analyzers.
var registry = []*Analyzer{
	ctxflowAnalyzer,
	errflowAnalyzer,
	guardboundaryAnalyzer,
	maporderAnalyzer,
	noallocAnalyzer,
	noclockAnalyzer,
	sharedroAnalyzer,
}

// Analyzers returns the registered passes sorted by name. The slice is
// fresh; the Analyzer values are shared.
func Analyzers() []*Analyzer {
	out := append([]*Analyzer(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Select resolves analyzer names to registry entries; empty selects all.
func Select(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("vet: unknown analyzer %q", n)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, a)
		}
	}
	return out, nil
}

// Diagnostic is one source-level finding, position-resolved.
type Diagnostic struct {
	Posn     token.Position `json:"posn"`
	Code     string         `json:"code"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", d.Posn, d.Code, d.Message, d.Analyzer)
}

// AsDiag converts the finding into the shared typed-diagnostic model so
// hlsvet's -json output speaks the same schema as hlslint's.
func (d Diagnostic) AsDiag() diag.Diagnostic {
	return diag.Diagnostic{
		Code:     d.Code,
		Severity: diag.Error,
		Analyzer: d.Analyzer,
		Artifact: "source",
		Loc:      d.Posn.String(),
		Message:  d.Message,
	}
}

// Sort orders diagnostics by (file, byte offset, code, analyzer,
// message), a total order over everything the structs carry, so
// aggregated output is byte-identical run-to-run regardless of analyzer
// or unit scheduling.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Offset != b.Posn.Offset {
			return a.Posn.Offset < b.Posn.Offset
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// PkgPath is the package's plain import path ("repro/internal/sched");
	// for external test packages it carries the "_test" suffix.
	PkgPath string

	// Summaries is the cross-package mutation-summary store consumed by
	// sharedro; nil when the driver did not load dependency summaries.
	Summaries *Summaries

	// report receives every finding; the driver owns filtering (test-unit
	// deduplication) and aggregation.
	report func(Diagnostic)

	hatches map[*token.File]map[int]string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, code, format string, args ...any) {
	p.report(Diagnostic{
		Posn:     p.Fset.Position(pos),
		Code:     code,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Unit is one analysis unit: a type-checked package plus the reporting
// filter that keeps overlapping units (a package and its in-package
// test compilation) from double-reporting.
type Unit struct {
	PkgPath string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info

	// ReportAll reports findings in every file; when false only findings
	// positioned in _test.go files are kept (the unit re-type-checks the
	// non-test files purely for type information).
	ReportAll bool
}

// RunUnit executes the analyzers over one unit and returns the sorted
// findings. summaries may be nil; analyzers that need cross-package
// facts (sharedro) stay silent without them.
func RunUnit(fset *token.FileSet, u *Unit, analyzers []*Analyzer, summaries *Summaries) []Diagnostic {
	var out []Diagnostic
	hatches := buildHatches(fset, u.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			Info:      u.Info,
			PkgPath:   u.PkgPath,
			Summaries: summaries,
			hatches:   hatches,
		}
		pass.report = func(d Diagnostic) {
			if !u.ReportAll && !strings.HasSuffix(d.Posn.Filename, "_test.go") {
				return
			}
			out = append(out, d)
		}
		a.Run(pass)
	}
	SortDiagnostics(out)
	return out
}

// NewInfo returns a types.Info populated with every map the analyzers
// consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// calleeObj resolves the object a call expression's function denotes:
// a package-level function, a method, or nil for func-typed values,
// builtins handled elsewhere, and type conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			return sel.Obj()
		}
		return info.Uses[f.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function
// pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isBuiltinCall reports whether the call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// contextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// errorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}
