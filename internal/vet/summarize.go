package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Per-function abstract interpretation for the mutation-summary engine
// (see summary.go for the abstraction). One frame analyzes one
// top-level FuncDecl, including every FuncLit nested in it: closures
// share the frame's variable table, so a mutation of a captured
// parameter inside a closure is attributed to the enclosing function
// unconditionally — the closure may run.

// rootSet maps root index → level bits describing at which level the
// root regards some storage.
type rootSet map[int]uint8

func (s rootSet) clone() rootSet {
	if len(s) == 0 {
		return nil
	}
	out := make(rootSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s *rootSet) merge(o rootSet) bool {
	changed := false
	for k, v := range o {
		if *s == nil {
			*s = rootSet{}
		}
		if (*s)[k]|v != (*s)[k] {
			(*s)[k] |= v
			changed = true
		}
	}
	return changed
}

// aval is one abstract value: the roots whose protected storage it
// directly references (stor) or can reach (reach).
type aval struct {
	stor  rootSet
	reach rootSet
}

func (v aval) empty() bool { return len(v.stor) == 0 && len(v.reach) == 0 }

func (v *aval) merge(o aval) bool {
	c1 := v.stor.merge(o.stor)
	c2 := v.reach.merge(o.reach)
	return c1 || c2
}

// rootVar is one tracked root of a frame: the receiver (param == -1) or
// a declared parameter.
type rootVar struct {
	obj   types.Object
	param int
	name  string
}

// mutSite is one recorded mutation of root-reachable storage, kept only
// on the final (collecting) pass for the analyzer to report. direct
// distinguishes a primitive write in this very function (field/element
// store, append/copy, an opaque external callee like sort.Slice) from a
// mutation inherited through a summarized module callee — the latter is
// reported inside the callee, where the primitive write lives.
type mutSite struct {
	node   ast.Node
	root   int
	bits   uint8
	direct bool
	what   string // short description of the mutated expression
}

// capMutSite is a mutation of protected storage through a variable
// captured from outside a FuncLit — the raw material of the HV0051
// parallel-job rule. Unlike mutSite it does not require the storage to
// be root-reachable: a closure mutating a fresh local graph is still a
// data race once pool workers run it concurrently.
type capMutSite struct {
	node ast.Node
	what string
}

// summarizer carries the package-level analysis state shared by all
// frames of one package.
type summarizer struct {
	info  *types.Info
	tc    *typeClasses
	store *Summaries
	// local maps this package's function objects to their summaries
	// being built; consulted before the store so in-package recursion
	// reaches the current fixpoint iterate.
	local map[*types.Func]*FuncSummary
}

// frame is the per-FuncDecl walker state.
type frame struct {
	s      *summarizer
	sum    *FuncSummary
	roots  []rootVar
	rootOf map[types.Object]int
	vars   map[types.Object]aval
	// bind tracks func-typed locals whose callee is statically known: a
	// FuncLit, or a method value with its receiver's abstract value.
	bind map[types.Object]*funcBinding

	collect bool
	sites   []mutSite
	// litStack / litMuts record, per FuncLit, mutations of captured
	// protected storage (for the pool-closure rule).
	litStack []*ast.FuncLit
	litMuts  map[*ast.FuncLit][]capMutSite

	// varsChanged tracks growth of the frame's local value table (drives
	// the per-function inner fixpoint); sumChanged tracks growth of the
	// persistent summary (drives the package-level outer fixpoint).
	varsChanged bool
	sumChanged  bool
}

type funcBinding struct {
	lit      *ast.FuncLit // a locally-defined closure, or
	sum      *FuncSummary // a bound method summary...
	recvAV   aval         // ...with this receiver value
	variadic bool
}

// newFrame builds the root table for fd.
func (s *summarizer) newFrame(fd *ast.FuncDecl, sum *FuncSummary) *frame {
	f := &frame{
		s:      s,
		sum:    sum,
		rootOf: map[types.Object]int{},
		vars:   map[types.Object]aval{},
		bind:   map[types.Object]*funcBinding{},
	}
	addRoot := func(field *ast.Field, param int) {
		for _, name := range field.Names {
			obj := s.info.Defs[name]
			if obj == nil {
				continue
			}
			f.rootOf[obj] = len(f.roots)
			f.roots = append(f.roots, rootVar{obj: obj, param: param, name: name.Name})
			if param >= 0 {
				param++
			}
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		addRoot(fd.Recv.List[0], -1)
	}
	if fd.Type.Params != nil {
		n := 0
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				n++ // unnamed parameter still occupies a position
				continue
			}
			for _, name := range field.Names {
				obj := s.info.Defs[name]
				if obj != nil {
					f.rootOf[obj] = len(f.roots)
					f.roots = append(f.roots, rootVar{obj: obj, param: n, name: name.Name})
				}
				n++
			}
		}
		sum.NP = n
	}
	return f
}

// rootAV is the fixed abstract value of root r, derived from its type.
func (f *frame) rootAV(r int) aval {
	t := f.roots[r].obj.Type()
	var v aval
	if f.s.tc.immediateProtected(t) {
		v.stor = rootSet{r: levelStor}
	}
	if f.s.tc.canReachProtected(t) {
		v.reach = rootSet{r: levelReach}
	}
	return v
}

// mark records a mutation of the storage described by set.
func (f *frame) mark(n ast.Node, set rootSet, what string, direct bool) {
	for r, bits := range set {
		if f.sum.mark(f.roots[r].param, bits) {
			f.sumChanged = true
		}
		if f.collect {
			f.sites = append(f.sites, mutSite{node: n, root: r, bits: bits, direct: direct, what: what})
		}
	}
}

// markCapture records a closure-side mutation of captured protected
// storage when the walker is inside a FuncLit and the mutated
// expression roots at a variable declared outside it.
func (f *frame) markCapture(n ast.Node, base ast.Expr, what string) {
	if !f.collect || len(f.litStack) == 0 {
		return
	}
	obj := rootObj(f.s.info, base)
	if obj == nil {
		return
	}
	lit := f.litStack[len(f.litStack)-1]
	if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
		return // declared inside the closure: private storage
	}
	if f.litMuts == nil {
		f.litMuts = map[*ast.FuncLit][]capMutSite{}
	}
	f.litMuts[lit] = append(f.litMuts[lit], capMutSite{node: n, what: what})
}

// joinVar merges v into the abstract value of obj.
func (f *frame) joinVar(obj types.Object, v aval) {
	if obj == nil || v.empty() {
		return
	}
	cur := f.vars[obj]
	if cur.merge(v) {
		f.vars[obj] = cur
		f.varsChanged = true
	}
}

// ---- expression evaluation ----------------------------------------------

// eval computes the abstract value of e, applying call effects along
// the way. Every expression in a statement is evaluated exactly once
// per walk pass.
func (f *frame) eval(e ast.Expr) aval {
	switch e := e.(type) {
	case nil:
		return aval{}
	case *ast.ParenExpr:
		return f.eval(e.X)
	case *ast.Ident:
		obj := f.s.info.Uses[e]
		if obj == nil {
			obj = f.s.info.Defs[e]
		}
		if obj == nil {
			return aval{}
		}
		if r, ok := f.rootOf[obj]; ok {
			// A root's fixed view, plus anything reassigned into it.
			v := f.rootAV(r)
			v.merge(f.vars[obj])
			return v
		}
		return f.vars[obj]
	case *ast.SelectorExpr:
		// Qualified identifier (pkg.Name)?
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := f.s.info.Uses[id].(*types.PkgName); isPkg {
				return aval{} // package-level var/func: untracked
			}
		}
		if sel, ok := f.s.info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			return aval{} // bare method value; bindings handled at assignment
		}
		return f.load(f.eval(e.X), f.s.info.TypeOf(e.X), f.s.info.TypeOf(e))
	case *ast.IndexExpr:
		// Generic instantiation (f[int]) shows up as IndexExpr too.
		if _, isSig := f.s.info.TypeOf(e).(*types.Signature); isSig {
			f.eval(e.X)
			return aval{}
		}
		f.eval(e.Index)
		return f.load(f.eval(e.X), f.s.info.TypeOf(e.X), f.s.info.TypeOf(e))
	case *ast.IndexListExpr:
		return aval{}
	case *ast.SliceExpr:
		f.eval(e.Low)
		f.eval(e.High)
		f.eval(e.Max)
		// Slicing aliases the same backing storage: same stor and reach.
		return f.eval(e.X)
	case *ast.StarExpr:
		return f.load(f.eval(e.X), f.s.info.TypeOf(e.X), f.s.info.TypeOf(e))
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// &x: the result's referent IS x's storage.
			inner := f.eval(e.X)
			owner := f.storageOwner(e.X)
			var v aval
			v.stor = owner.clone()
			v.reach = owner.clone()
			v.reach.merge(inner.stor)
			v.reach.merge(inner.reach)
			return v
		}
		if e.Op == token.ARROW { // <-ch
			return f.load(f.eval(e.X), f.s.info.TypeOf(e.X), f.s.info.TypeOf(e))
		}
		f.eval(e.X)
		return aval{}
	case *ast.BinaryExpr:
		f.eval(e.X)
		f.eval(e.Y)
		return aval{}
	case *ast.CallExpr:
		return f.evalCall(e)
	case *ast.CompositeLit:
		var v aval
		for _, el := range e.Elts {
			ev := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				f.eval(kv.Key)
				ev = kv.Value
			}
			av := f.eval(ev)
			v.reach.merge(av.stor)
			v.reach.merge(av.reach)
		}
		return v // fresh storage: stor = ∅
	case *ast.FuncLit:
		f.walkLit(e)
		return aval{}
	case *ast.TypeAssertExpr:
		f.eval(e.X)
		return aval{} // interfaces: documented cut
	case *ast.KeyValueExpr:
		f.eval(e.Key)
		return f.eval(e.Value)
	case *ast.Ellipsis, *ast.BasicLit, *ast.ArrayType, *ast.MapType,
		*ast.StructType, *ast.InterfaceType, *ast.ChanType, *ast.FuncType:
		return aval{}
	}
	return aval{}
}

// load applies the field/element/deref load rule. The result's referent
// may BE protected storage of base's roots in exactly two shapes:
//
//   - the loaded value refers directly to a protected object (*dfg.Node
//     out of any container, however deep — base.reach carries roots
//     through non-protected intermediaries), or
//   - the load reads a field/element OF a protected object (baseType is
//     Graph/Node/Library/Unit or a pointer to one): interior containers
//     like Node.Args share the node's storage even though []string is
//     not a protected type.
//
// A container that merely points INTO protected storage (a scheduler's
// own map[Op][]*Unit) yields reach, not stor: writing the container is
// the holder's business; writing through its elements is not. The cost
// is a documented cut — if a package stores a graph-owned slice in its
// own struct and later writes elements through that field, the backing
// write is missed (pointer-chain mutations are still caught, because
// the final deref re-enters the first shape via reach).
func (f *frame) load(base aval, baseType, t types.Type) aval {
	if t == nil || base.empty() {
		return aval{}
	}
	var v aval
	if protectedReferent(t) {
		v.stor.merge(base.reach)
		v.stor.merge(base.stor)
	} else if isRefType(t) && baseType != nil && protectedReferent(baseType) {
		// The slot lives in the base object's own storage; base.reach
		// describes deeper objects that cannot be this object's slots
		// (anything reached *through* a chain re-enters via the first
		// branch, whose stor already absorbed reach at the final deref).
		v.stor.merge(base.stor)
	}
	if f.s.tc.canReachProtected(t) || isRefType(t) {
		v.reach.merge(base.stor)
		v.reach.merge(base.reach)
	}
	return v
}

// storageOwner resolves an lvalue (or addressed expression) to the
// roots owning the storage a write to it would touch. Plain locals own
// their own storage (∅).
func (f *frame) storageOwner(e ast.Expr) rootSet {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return f.storageOwner(e.X)
	case *ast.Ident:
		return nil
	case *ast.StarExpr:
		return f.eval(e.X).stor
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := f.s.info.Uses[id].(*types.PkgName); isPkg {
				return nil // package-level variable: untracked
			}
		}
		if t := f.s.info.TypeOf(e.X); t != nil {
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				return f.eval(e.X).stor
			}
		}
		// Value base: the field slot lives in the base's own storage —
		// a local struct copy's field write is local even when the
		// copy's interior references point into protected storage.
		return f.storageOwner(e.X)
	case *ast.IndexExpr:
		if t := f.s.info.TypeOf(e.X); t != nil {
			if _, isArr := t.Underlying().(*types.Array); isArr {
				return f.storageOwner(e.X)
			}
		}
		return f.eval(e.X).stor
	case *ast.SliceExpr:
		return f.eval(e.X).stor
	}
	return f.eval(e).stor
}

// capturedProtectedWrite reports whether the written lvalue touches
// protected storage *by type*: some base along the selector/index chain
// is (or directly references) a protected named type. This is the
// type-level test behind the pool-closure rule, independent of
// root-reachability.
func (f *frame) capturedProtectedWrite(e ast.Expr) (ast.Expr, bool) {
	base := e
	prot := false
	for {
		switch x := ast.Unparen(base).(type) {
		case *ast.SelectorExpr:
			if t := f.s.info.TypeOf(x.X); t != nil && f.s.tc.immediateProtected(t) {
				prot = true
			}
			base = x.X
		case *ast.IndexExpr:
			if t := f.s.info.TypeOf(x.X); t != nil && f.s.tc.immediateProtected(t) {
				prot = true
			}
			base = x.X
		case *ast.StarExpr:
			if t := f.s.info.TypeOf(x.X); t != nil && f.s.tc.immediateProtected(t) {
				prot = true
			}
			base = x.X
		case *ast.SliceExpr:
			base = x.X
		case *ast.CallExpr:
			// A method call's result may expose its receiver's own
			// storage (g.Nodes() returns the graph's node slice), so keep
			// walking toward the receiver: the captured variable the
			// pool-closure rule needs to resolve sits behind the call.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && f.s.info.Selections[sel] != nil {
				base = sel.X
				continue
			}
			return base, prot
		default:
			return base, prot
		}
	}
}

// assignTo handles a write to lvalue lhs of value rv.
func (f *frame) assignTo(n ast.Node, lhs ast.Expr, rv aval) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := f.s.info.Defs[id]
		if obj == nil {
			obj = f.s.info.Uses[id]
		}
		// Reassigned roots keep their fixed view (eval merges vars on
		// top), so mutations through the new value still reach the root:
		// a conservative but sound treatment of `g = other`.
		f.joinVar(obj, rv)
		return
	}
	owner := f.storageOwner(lhs)
	if len(owner) > 0 {
		f.mark(n, owner, exprString(lhs), true)
	}
	if base, prot := f.capturedProtectedWrite(lhs); prot {
		f.markCapture(n, base, exprString(lhs))
	}
	// Escape-to-local: storing a tracked value into a local structure
	// (`b.g = g`) makes the structure reach the value's storage, so a
	// later load through it re-discovers the aliasing.
	if !rv.empty() {
		if obj := rootObj(f.s.info, lhs); obj != nil {
			var taint aval
			taint.reach.merge(rv.stor)
			taint.reach.merge(rv.reach)
			f.joinVar(obj, taint)
		}
	}
}

// ---- calls ---------------------------------------------------------------

// evalCall resolves the callee, applies its mutation summary to the
// arguments, and returns the result's abstract value.
func (f *frame) evalCall(call *ast.CallExpr) aval {
	// Builtins and conversions first.
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := f.s.info.Uses[id].(*types.Builtin); ok {
			return f.evalBuiltin(call, b.Name())
		}
	}
	if tv, ok := f.s.info.Types[fun]; ok && tv.IsType() {
		// Conversion: pass the operand's value through.
		if len(call.Args) == 1 {
			return f.eval(call.Args[0])
		}
		return aval{}
	}

	// Receiver value for method calls.
	var recvAV aval
	var recvExpr ast.Expr
	callee := calleeObj(f.s.info, call)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := f.s.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recvExpr = sel.X
			recvAV = f.eval(sel.X)
		} else {
			f.eval(sel.X)
		}
	}

	argAVs := make([]aval, len(call.Args))
	for i, a := range call.Args {
		argAVs[i] = f.eval(a)
	}

	var sum *FuncSummary
	variadic := false
	switch fn := callee.(type) {
	case *types.Func:
		if sig, ok := fn.Type().(*types.Signature); ok {
			variadic = sig.Variadic()
			if sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				if fn.Pkg() == nil || !isModulePath(fn.Pkg().Path()) {
					// A method of an interface declared outside the module
					// (error.Error, fmt.Stringer.String, sort.Interface...).
					// Model it like every other external call: the store's
					// implementer set varies with which packages happen to be
					// loaded (a vettool unit sees only its dependencies), so
					// joining it here would make summaries depend on the
					// driver. A module method reached through such an
					// interface still has its primitive writes checked in
					// its own package.
					sum = externalSummary(fn, sig)
				} else {
					// Module interface call: join all concrete implementers
					// known to the store; none known → conservative.
					sum = f.s.store.implementers(fn.Name(), sig.Params().Len())
					if sum == nil {
						sum = conservativeSummary(sig.Params().Len(), true)
					}
				}
			} else {
				sum = f.lookupFunc(fn)
			}
		}
	default:
		// Func-typed value: a bound closure/method value if we know one;
		// otherwise a parameter or unknown value, whose effects were
		// attributed at its definition site (see package comment). Its
		// result may still alias the arguments.
		if id, ok := fun.(*ast.Ident); ok {
			if obj := f.s.info.Uses[id]; obj != nil {
				if b := f.bind[obj]; b != nil {
					if b.lit != nil {
						// Closure effects already attributed at walkLit.
						return f.resultOfUnknown(argAVs)
					}
					if b.sum != nil {
						return f.apply(call, b.sum, b.recvAV, nil, argAVs, b.variadic)
					}
				}
			}
		}
		return f.resultOfUnknown(argAVs)
	}
	if sum == nil {
		return f.resultOfUnknown(argAVs)
	}
	return f.apply(call, sum, recvAV, recvExpr, argAVs, variadic)
}

// resultOfUnknown: an unknown func value may return any of its
// arguments (identity-style callbacks), so the result conservatively
// aliases them all; it mutates nothing (effects are attributed at
// definition sites).
func (f *frame) resultOfUnknown(argAVs []aval) aval {
	var v aval
	for _, a := range argAVs {
		v.stor.merge(a.stor)
		v.reach.merge(a.stor)
		v.reach.merge(a.reach)
	}
	return v
}

// apply marks the arguments per the callee summary and computes the
// result value from the summary's aliasing records.
func (f *frame) apply(call *ast.CallExpr, sum *FuncSummary, recvAV aval, recvExpr ast.Expr, argAVs []aval, variadic bool) aval {
	what := exprString(call.Fun) + "(...)"
	markLevels := func(av aval, mask uint8, arg ast.Expr) {
		if mask&levelStor != 0 && len(av.stor) > 0 {
			f.mark(call, av.stor, what, sum.Opaque)
		}
		if mask&levelReach != 0 && len(av.reach) > 0 {
			f.mark(call, av.reach, what, sum.Opaque)
		}
		if mask != 0 && arg != nil {
			if t := f.s.info.TypeOf(arg); t != nil && f.s.tc.immediateProtected(t) {
				f.markCapture(call, arg, what)
			}
		}
	}
	if sum.RecvMut != 0 {
		markLevels(recvAV, sum.RecvMut, recvExpr)
	}
	for i, av := range argAVs {
		markLevels(av, sum.paramMask(i, variadic), call.Args[i])
	}
	avOf := func(p int) aval {
		if p == -1 {
			return recvAV
		}
		if p >= 0 && p < len(argAVs) {
			return argAVs[p]
		}
		return aval{}
	}
	var out aval
	for _, ref := range sum.ResStor {
		src := avOf(ref.Param)
		if ref.Bits&levelStor != 0 {
			out.stor.merge(src.stor)
		}
		if ref.Bits&levelReach != 0 {
			out.stor.merge(src.reach)
		}
	}
	for _, ref := range sum.ResReach {
		src := avOf(ref.Param)
		if ref.Bits&levelStor != 0 {
			out.reach.merge(src.stor)
		}
		if ref.Bits&levelReach != 0 {
			out.reach.merge(src.reach)
		}
	}
	out.reach.merge(out.stor)
	return out
}

// lookupFunc resolves a static callee to its summary: this package's
// in-progress table, the cross-package store, a known-stdlib model, or
// the conservative worst case for unknown module code.
func (f *frame) lookupFunc(fn *types.Func) *FuncSummary {
	fn = fn.Origin()
	if s, ok := f.s.local[fn]; ok {
		return s
	}
	sig, _ := fn.Type().(*types.Signature)
	np := 0
	hasRecv := false
	if sig != nil {
		np = sig.Params().Len()
		hasRecv = sig.Recv() != nil
	}
	if fn.Pkg() == nil {
		return &FuncSummary{NP: np} // error.Error etc.
	}
	path := fn.Pkg().Path()
	if isModulePath(path) {
		if s, ok := f.s.store.funcs[funcKey(fn)]; ok {
			return s
		}
		// Module function without a summary: facts are missing (partial
		// vettool run) — assume the worst, never silently the best.
		return conservativeSummary(np, hasRecv)
	}
	return externalSummary(fn, sig)
}

// evalBuiltin models the storage effects of the mutating builtins.
func (f *frame) evalBuiltin(call *ast.CallExpr, name string) aval {
	argAVs := make([]aval, len(call.Args))
	for i, a := range call.Args {
		argAVs[i] = f.eval(a)
	}
	capture := func(i int) {
		if i < len(call.Args) {
			if base, prot := f.capturedProtectedWrite(call.Args[i]); prot {
				f.markCapture(call, base, name+"("+exprString(call.Args[i])+")")
			} else if t := f.s.info.TypeOf(call.Args[i]); t != nil && f.s.tc.immediateProtected(t) {
				f.markCapture(call, call.Args[i], name+"("+exprString(call.Args[i])+")")
			}
		}
	}
	switch name {
	case "append":
		if len(argAVs) == 0 {
			return aval{}
		}
		// Appending may write into the first argument's spare capacity.
		if len(argAVs[0].stor) > 0 {
			f.mark(call, argAVs[0].stor, "append("+exprString(call.Args[0])+", ...)", true)
		}
		capture(0)
		var v aval
		v.stor.merge(argAVs[0].stor) // result may share arg0's backing
		for _, a := range argAVs {
			v.reach.merge(a.stor)
			v.reach.merge(a.reach)
		}
		return v
	case "copy":
		if len(argAVs) > 0 && len(argAVs[0].stor) > 0 {
			f.mark(call, argAVs[0].stor, "copy("+exprString(call.Args[0])+", ...)", true)
		}
		capture(0)
	case "delete", "clear":
		if len(argAVs) > 0 && len(argAVs[0].stor) > 0 {
			f.mark(call, argAVs[0].stor, name+"("+exprString(call.Args[0])+")", true)
		}
		capture(0)
	}
	return aval{}
}

// externalSummary models non-module callees: read-only by default with
// results reaching the arguments, plus a denylist of standard-library
// mutators. Sound for the engine's actual import surface; reflect is
// treated as mutate-everything.
func externalSummary(fn *types.Func, sig *types.Signature) *FuncSummary {
	np := 0
	if sig != nil {
		np = sig.Params().Len()
	}
	s := &FuncSummary{NP: np, Opaque: true}
	mutArg := func(i int, bits uint8) {
		for len(s.ParamMut) <= i {
			s.ParamMut = append(s.ParamMut, 0)
		}
		s.ParamMut[i] |= bits
	}
	name := fn.Name()
	pkgPath := ""
	if fn.Pkg() != nil { // nil for universe methods (error.Error)
		pkgPath = fn.Pkg().Path()
	}
	switch pkgPath {
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			mutArg(0, levelStor)
		case "Sort", "Stable", "Reverse":
			mutArg(0, levelStor|levelReach)
		}
	case "slices":
		if strings.HasPrefix(name, "Sort") || name == "Reverse" ||
			strings.HasPrefix(name, "Compact") || strings.HasPrefix(name, "Delete") ||
			strings.HasPrefix(name, "Insert") || name == "Replace" {
			mutArg(0, levelStor)
		}
	case "encoding/json":
		if name == "Unmarshal" {
			mutArg(1, levelStor|levelReach)
		}
		if name == "Decode" { // (*Decoder).Decode
			mutArg(0, levelStor|levelReach)
		}
	case "encoding/gob", "encoding/xml":
		if name == "Decode" || name == "DecodeValue" || name == "Unmarshal" {
			mutArg(np-1, levelStor|levelReach)
		}
	case "math/rand", "math/rand/v2":
		if name == "Shuffle" {
			// The swap callback mutates; its effects are attributed at
			// its definition, but the slice it closes over is typically
			// the argument of a surrounding call — keep the model empty.
			_ = name
		}
	case "reflect":
		return conservativeSummary(np, sig != nil && sig.Recv() != nil)
	}
	// Results of external calls may expose the arguments (bytes.Split
	// etc.); record reach-level aliasing for every reference parameter.
	for i := 0; i < np; i++ {
		s.ResReach, _ = addRef(s.ResReach, i, levelStor|levelReach)
	}
	if sig != nil && sig.Recv() != nil {
		s.ResReach, _ = addRef(s.ResReach, -1, levelStor|levelReach)
	}
	return s
}

// ---- statements ----------------------------------------------------------

func (f *frame) walkBody(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	for _, st := range body.List {
		f.walkStmt(st)
	}
}

func (f *frame) walkStmt(st ast.Stmt) {
	switch st := st.(type) {
	case nil:
	case *ast.BlockStmt:
		f.walkBody(st)
	case *ast.ExprStmt:
		f.eval(st.X)
	case *ast.AssignStmt:
		f.walkAssign(st)
	case *ast.IncDecStmt:
		owner := f.storageOwner(st.X)
		if len(owner) > 0 {
			f.mark(st, owner, exprString(st.X), true)
		}
		if base, prot := f.capturedProtectedWrite(st.X); prot {
			f.markCapture(st, base, exprString(st.X))
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			f.recordResult(f.eval(r))
		}
	case *ast.IfStmt:
		f.walkStmt(st.Init)
		f.eval(st.Cond)
		f.walkBody(st.Body)
		f.walkStmt(st.Else)
	case *ast.ForStmt:
		f.walkStmt(st.Init)
		f.eval(st.Cond)
		f.walkStmt(st.Post)
		f.walkBody(st.Body)
	case *ast.RangeStmt:
		xv := f.eval(st.X)
		if st.Key != nil {
			if t := f.s.info.TypeOf(st.Key); t != nil {
				f.assignRangeVar(st.Key, f.load(xv, f.s.info.TypeOf(st.X), t))
			}
		}
		if st.Value != nil {
			if t := f.s.info.TypeOf(st.Value); t != nil {
				f.assignRangeVar(st.Value, f.load(xv, f.s.info.TypeOf(st.X), t))
			}
		}
		f.walkBody(st.Body)
	case *ast.SwitchStmt:
		f.walkStmt(st.Init)
		f.eval(st.Tag)
		f.walkBody(st.Body)
	case *ast.TypeSwitchStmt:
		f.walkStmt(st.Init)
		f.walkStmt(st.Assign)
		f.walkBody(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			f.eval(e)
		}
		for _, s := range st.Body {
			f.walkStmt(s)
		}
	case *ast.SelectStmt:
		f.walkBody(st.Body)
	case *ast.CommClause:
		f.walkStmt(st.Comm)
		for _, s := range st.Body {
			f.walkStmt(s)
		}
	case *ast.SendStmt:
		f.eval(st.Chan)
		f.eval(st.Value) // escape into channels: documented cut
	case *ast.DeferStmt:
		f.eval(st.Call) // deferred effects still happen
	case *ast.GoStmt:
		f.eval(st.Call)
	case *ast.LabeledStmt:
		f.walkStmt(st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rv aval
					if i < len(vs.Values) {
						rv = f.eval(vs.Values[i])
						f.bindFunc(name, vs.Values[i])
					} else if len(vs.Values) == 1 && i > 0 {
						rv = f.eval(vs.Values[0])
					}
					if obj := f.s.info.Defs[name]; obj != nil {
						f.joinVar(obj, rv)
					}
				}
			}
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (f *frame) assignRangeVar(lhs ast.Expr, v aval) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		obj := f.s.info.Defs[id]
		if obj == nil {
			obj = f.s.info.Uses[id]
		}
		f.joinVar(obj, v)
		return
	}
	f.assignTo(lhs, lhs, v)
}

// bindFunc records a statically-known callee for a func-typed variable:
// a FuncLit or a method value.
func (f *frame) bindFunc(lhs *ast.Ident, rhs ast.Expr) {
	obj := f.s.info.Defs[lhs]
	if obj == nil {
		obj = f.s.info.Uses[lhs]
	}
	if obj == nil {
		return
	}
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.FuncLit:
		f.bind[obj] = &funcBinding{lit: rhs}
	case *ast.SelectorExpr:
		if sel, ok := f.s.info.Selections[rhs]; ok && sel.Kind() == types.MethodVal {
			if m, ok := sel.Obj().(*types.Func); ok {
				sig, _ := m.Type().(*types.Signature)
				f.bind[obj] = &funcBinding{
					sum:      f.lookupFunc(m),
					recvAV:   f.eval(rhs.X),
					variadic: sig != nil && sig.Variadic(),
				}
			}
		}
	}
}

func (f *frame) walkAssign(st *ast.AssignStmt) {
	// Evaluate RHS first.
	switch {
	case len(st.Rhs) == len(st.Lhs):
		for i := range st.Lhs {
			rv := f.eval(st.Rhs[i])
			if st.Tok == token.DEFINE || st.Tok == token.ASSIGN {
				f.assignTo(st, st.Lhs[i], rv)
				if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok {
					f.bindFunc(id, st.Rhs[i])
				}
			} else {
				// Compound assignment (+= etc.): a write to the lvalue.
				f.assignTo(st, st.Lhs[i], rv)
			}
		}
	case len(st.Rhs) == 1:
		rv := f.eval(st.Rhs[0])
		for _, lhs := range st.Lhs {
			// Multi-value: each lhs may receive a tracked component.
			f.assignTo(st, lhs, rv)
		}
	}
}

// recordResult folds a returned value into the summary's aliasing
// records. Only receiver/parameter roots are expressible.
func (f *frame) recordResult(v aval) {
	for r, bits := range v.stor {
		var ch bool
		f.sum.ResStor, ch = addRef(f.sum.ResStor, f.roots[r].param, bits)
		f.sumChanged = f.sumChanged || ch
	}
	for r, bits := range v.reach {
		var ch bool
		f.sum.ResReach, ch = addRef(f.sum.ResReach, f.roots[r].param, bits)
		f.sumChanged = f.sumChanged || ch
	}
}

// walkLit analyzes a closure body inside the enclosing frame: captured
// variables resolve through the shared tables, so mutations of captured
// roots land in the enclosing summary; mutations of captured protected
// locals are recorded per-lit for the pool-closure rule.
func (f *frame) walkLit(lit *ast.FuncLit) {
	f.litStack = append(f.litStack, lit)
	f.walkBody(lit.Body)
	f.litStack = f.litStack[:len(f.litStack)-1]
}

// ---- package driver ------------------------------------------------------

// converge walks the declaration until the frame's local value table
// stops growing, then (optionally) runs one final collecting walk
// against the converged values. Returns whether the summary grew.
func (s *summarizer) converge(fd *ast.FuncDecl, sum *FuncSummary, collect bool) (*frame, bool) {
	fr := s.newFrame(fd, sum)
	grew := false
	for i := 0; ; i++ {
		fr.varsChanged = false
		fr.walkBody(fd.Body)
		grew = grew || fr.sumChanged
		fr.sumChanged = false
		if !fr.varsChanged || i > 64 {
			break
		}
	}
	if collect {
		fr.collect = true
		fr.walkBody(fd.Body)
	}
	return fr, grew
}

// packageDecls pairs every analyzable FuncDecl with its object, in
// declaration order (deterministic: files arrive sorted by path).
type declEntry struct {
	fd *ast.FuncDecl
	fn *types.Func
}

func packageDecls(files []*ast.File, info *types.Info) []declEntry {
	var decls []declEntry
	for _, file := range files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, declEntry{fd, fn})
		}
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].fd.Pos() < decls[j].fd.Pos() })
	return decls
}

// computeLocalSummaries runs the in-package fixpoint for mutual
// recursion: every function is re-walked until no summary grows. The
// result is deterministic — declaration order, monotone joins over a
// finite lattice.
func computeLocalSummaries(files []*ast.File, info *types.Info, store *Summaries) (map[*types.Func]*FuncSummary, *summarizer) {
	s := &summarizer{
		info:  info,
		tc:    newTypeClasses(),
		store: store,
		local: map[*types.Func]*FuncSummary{},
	}
	decls := packageDecls(files, info)
	for _, d := range decls {
		s.local[d.fn] = &FuncSummary{}
	}
	for pass := 0; ; pass++ {
		changed := false
		for _, d := range decls {
			_, grew := s.converge(d.fd, s.local[d.fn], false)
			changed = changed || grew
		}
		if !changed || pass > 64 {
			break
		}
	}
	return s.local, s
}

// ComputePackageSummaries runs the in-package fixpoint and registers
// the converged summaries in the store. Must be called in bottom-up
// import order so callee packages are already present.
func ComputePackageSummaries(files []*ast.File, info *types.Info, store *Summaries) {
	local, _ := computeLocalSummaries(files, info, store)
	fns := make([]*types.Func, 0, len(local))
	for fn := range local {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return funcKey(fns[i]) < funcKey(fns[j]) })
	for _, fn := range fns {
		store.add(funcKey(fn), local[fn])
	}
}
