package vet

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// The interprocedural mutation-summary engine behind the sharedro
// analyzer. For every function in the module it computes which of the
// function's roots — receiver and parameters — can have *protected
// storage* reached from them mutated when the function runs. Protected
// storage is anything owned by the shared synthesis inputs: dfg.Graph,
// dfg.Node, library.Library, library.Unit. The parallel engine
// (pool-backed sweeps, the hlsd cache) hands one graph and one library
// to many goroutines at once, so "scheduling never writes to them" is
// the invariant every other concurrency guarantee stands on.
//
// The abstraction is deliberately two-level. An abstract value carries
// two root sets:
//
//   - stor: roots whose protected storage the value's *own referent*
//     may be. Writing through the value (field store, element store,
//     map write, append into spare capacity) mutates that storage.
//   - reach: roots whose protected storage is reachable from the value
//     through further pointers. stor ⊆ reach.
//
// The split is what keeps the canonical read-only idioms clean without
// weakening soundness: `units := append([]*library.Unit(nil),
// lib.Units()...); sort.Slice(units, ...)` sorts a fresh backing array
// (stor = ∅) even though the *Unit pointees are still the library's
// (reach ≠ ∅), while `sort.Slice(g.Nodes(), ...)` reorders the graph's
// own slice (stor = {g}) and is flagged. Likewise `c := g.Clone()` is
// clean because Clone's summary records that its result aliases nothing
// of the receiver — the deep copy is built from a fresh dfg.New.
//
// Summaries are computed per package in bottom-up dependency order
// (imports first — Go forbids import cycles, so the package graph's
// SCCs are single packages), with an in-package fixpoint for mutual
// recursion: every function body is re-walked until no summary grows.
// The walk is flow-insensitive — one monotone set of abstract values
// per variable — which is sound for a mutation analysis and converges
// because the lattice is finite (roots × two levels).
//
// Known, documented over- and under-approximations:
//
//   - Interface method calls join the summaries of every concrete
//     method in the store with the same name and arity; if none is
//     known the callee is assumed to mutate everything it can reach.
//   - Calling a func-typed parameter is a no-op for summaries: every
//     FuncLit's effects are attributed to its *defining* function
//     unconditionally (the closure may run), so the effects of any
//     module-defined callback are already accounted for at its
//     definition site regardless of who invokes it.
//   - Values escaping into channels or package-level variables are not
//     tracked; noclock/guard discipline keeps shared mutable globals
//     out of the engine, and the hot paths use pool, not raw channels.
//   - Interfaces are treated as unable to *reach* protected storage
//     (boxing a *Graph in an any and mutating through a type assertion
//     is invisible); the engine's data flow never does this.

// Protected type universe: the shared synthesis inputs.
const (
	dfgPath = "repro/internal/dfg"
	libPath = "repro/internal/library"
)

// level bits for root-set entries and mutation masks.
const (
	levelStor  uint8 = 1 << iota // the root's directly-referenced storage
	levelReach                   // storage reachable through deeper pointers
)

// SumRef records that a function result may alias (or reach) the
// storage referenced by one of its roots. Param -1 is the receiver.
type SumRef struct {
	Param int   `json:"p"`
	Bits  uint8 `json:"b"`
}

// FuncSummary is the per-function mutation summary, serialized into
// vetx facts files under the `go vet -vettool` protocol.
type FuncSummary struct {
	// NP is the declared parameter count (for interface-call matching).
	NP int `json:"n"`
	// RecvMut / ParamMut are levelStor|levelReach masks: which storage
	// referenced from the receiver / each parameter the function may
	// mutate, directly or through callees.
	RecvMut  uint8   `json:"r,omitempty"`
	ParamMut []uint8 `json:"p,omitempty"`
	// ResStor / ResReach describe what the function's results alias:
	// the storage directly referenced by a result (ResStor) or merely
	// reachable from it (ResReach), expressed as root references.
	ResStor  []SumRef `json:"rs,omitempty"`
	ResReach []SumRef `json:"rr,omitempty"`
	// CapMut is set when the function is a method whose receiver or a
	// closure context mutates protected storage reachable from roots.
	// (Reserved: closures never enter the store.)
	CapMut bool `json:"c,omitempty"`

	// Opaque marks summaries the analyzer cannot descend into — stdlib
	// models (sort.Slice) and conservative stand-ins for missing module
	// facts. A mutation applied through an opaque callee is reported at
	// the call site (the deepest visible frame); one applied through a
	// summarized module callee is reported inside the callee instead,
	// where the primitive write actually is. Never serialized: a summary
	// read back from a vetx file is by definition not opaque.
	Opaque bool `json:"-"`
}

func (s *FuncSummary) paramMask(i int, variadic bool) uint8 {
	if i < len(s.ParamMut) {
		return s.ParamMut[i]
	}
	if variadic && len(s.ParamMut) > 0 && i >= s.NP-1 {
		return s.ParamMut[len(s.ParamMut)-1]
	}
	return 0
}

// mark merges bits into the mask for root index r (with the frame's
// root table mapping r to recv/param position). Returns true on growth.
func (s *FuncSummary) mark(param int, bits uint8) bool {
	if param == -1 {
		if s.RecvMut|bits != s.RecvMut {
			s.RecvMut |= bits
			return true
		}
		return false
	}
	for len(s.ParamMut) <= param {
		s.ParamMut = append(s.ParamMut, 0)
	}
	if s.ParamMut[param]|bits != s.ParamMut[param] {
		s.ParamMut[param] |= bits
		return true
	}
	return false
}

func addRef(refs []SumRef, param int, bits uint8) ([]SumRef, bool) {
	for i := range refs {
		if refs[i].Param == param {
			if refs[i].Bits|bits != refs[i].Bits {
				refs[i].Bits |= bits
				return refs, true
			}
			return refs, false
		}
	}
	return append(refs, SumRef{param, bits}), true
}

// mutatesAnything reports whether the summary records any mutation of
// root-reachable protected storage.
func (s *FuncSummary) mutatesAnything() bool {
	if s.RecvMut != 0 {
		return true
	}
	for _, m := range s.ParamMut {
		if m != 0 {
			return true
		}
	}
	return false
}

// conservativeSummary assumes the worst about an unknown callee: every
// root is mutated at both levels and results alias everything.
func conservativeSummary(np int, hasRecv bool) *FuncSummary {
	s := &FuncSummary{NP: np, ParamMut: make([]uint8, np), Opaque: true}
	all := levelStor | levelReach
	for i := range s.ParamMut {
		s.ParamMut[i] = all
		s.ResStor, _ = addRef(s.ResStor, i, all)
		s.ResReach, _ = addRef(s.ResReach, i, all)
	}
	if hasRecv {
		s.RecvMut = all
		s.ResStor, _ = addRef(s.ResStor, -1, all)
		s.ResReach, _ = addRef(s.ResReach, -1, all)
	}
	return s
}

// Summaries is the cross-package summary store. It is built once per
// run — bottom-up over the module's package graph in the standalone
// driver, or merged from dependency vetx facts in vettool mode — and
// then read concurrently by the analysis passes.
type Summaries struct {
	funcs map[string]*FuncSummary
	// methods indexes method summaries by "name/arity" for the sound
	// interface-call join over all concrete implementers in the store.
	methods map[string][]*FuncSummary
}

// NewSummaries returns an empty store.
func NewSummaries() *Summaries {
	return &Summaries{
		funcs:   map[string]*FuncSummary{},
		methods: map[string][]*FuncSummary{},
	}
}

// funcKey names a function uniquely across the module:
// "path.Name" for package functions, "path.(T).Name" for methods.
func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	sig, _ := fn.Type().(*types.Signature)
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	if sig != nil && sig.Recv() != nil {
		if rn := namedOf(sig.Recv().Type()); rn != nil {
			return path + ".(" + rn.Obj().Name() + ")." + fn.Name()
		}
	}
	return path + "." + fn.Name()
}

func (st *Summaries) add(key string, s *FuncSummary) {
	st.funcs[key] = s
	if i := strings.Index(key, ".("); i >= 0 {
		if j := strings.LastIndex(key, "."); j > i {
			st.methods[fmt.Sprintf("%s/%d", key[j+1:], s.NP)] = append(st.methods[fmt.Sprintf("%s/%d", key[j+1:], s.NP)], s)
		}
	}
}

// implementers returns the joined summary of every stored method with
// the given name and arity, or nil when none is known.
func (st *Summaries) implementers(name string, np int) *FuncSummary {
	impls := st.methods[fmt.Sprintf("%s/%d", name, np)]
	if len(impls) == 0 {
		return nil
	}
	join := &FuncSummary{NP: np, ParamMut: make([]uint8, np)}
	for _, s := range impls {
		join.RecvMut |= s.RecvMut
		for i, m := range s.ParamMut {
			if i < np {
				join.ParamMut[i] |= m
			}
		}
		for _, r := range s.ResStor {
			join.ResStor, _ = addRef(join.ResStor, r.Param, r.Bits)
		}
		for _, r := range s.ResReach {
			join.ResReach, _ = addRef(join.ResReach, r.Param, r.Bits)
		}
	}
	return join
}

// summaryFile is the vetx facts payload: the full transitive store for
// a module package (each unit re-exports its dependencies' entries, so
// a single PackageVetx read closes over the import graph).
type summaryFile struct {
	Funcs map[string]*FuncSummary `json:"funcs"`
}

// EncodeSummaries serializes the store with a deterministic key order.
func EncodeSummaries(st *Summaries) ([]byte, error) {
	return json.Marshal(summaryFile{Funcs: st.funcs})
}

// MergeSummaries decodes data (a summaryFile) into the store.
func MergeSummaries(st *Summaries, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var f summaryFile
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	keys := make([]string, 0, len(f.Funcs))
	for k := range f.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, ok := st.funcs[k]; !ok {
			st.add(k, f.Funcs[k])
		}
	}
	return nil
}

// isModulePath reports whether path belongs to this module.
func isModulePath(path string) bool {
	return path == "repro" || strings.HasPrefix(path, "repro/")
}

// normPkgPath strips vettool test-variant decorations:
// "p [q.test]" → "p", "p_test" → "p".
func normPkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

// ---- type classification -------------------------------------------------

func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Named:
			return x
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Pointer:
			t = x.Elem()
		default:
			return nil
		}
	}
}

// isProtectedNamed reports whether t (not dereferenced) is one of the
// shared synthesis-input types.
func isProtectedNamed(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case dfgPath:
		return obj.Name() == "Graph" || obj.Name() == "Node"
	case libPath:
		return obj.Name() == "Library" || obj.Name() == "Unit"
	}
	return false
}

// protectedReferent reports whether a value of type t refers *directly*
// to a protected object: the named types themselves and pointers to
// them. Unlike immediateProtected this excludes containers — a
// map[Op][]*library.Unit built by a scheduler points INTO library
// storage but is not itself library storage, so writing the map is the
// scheduler's own business while writing through a *Unit is not.
func protectedReferent(t types.Type) bool {
	if isProtectedNamed(t) {
		return true
	}
	if p, ok := types.Unalias(t).Underlying().(*types.Pointer); ok {
		return isProtectedNamed(p.Elem())
	}
	return false
}

// typeClasses memoizes immediateProtected / canReachProtected per type.
type typeClasses struct {
	imm   map[types.Type]bool
	reach map[types.Type]int8 // 0 unknown/in-progress, 1 yes, -1 no
}

func newTypeClasses() *typeClasses {
	return &typeClasses{imm: map[types.Type]bool{}, reach: map[types.Type]int8{}}
}

// immediateProtected reports whether a value of type t *directly
// references* protected storage: the protected named types themselves,
// pointers to them, and containers whose elements do (a []*dfg.Node
// shares the graph's node storage; a []string does not — unless it was
// loaded out of protected storage, which the load rule handles).
func (tc *typeClasses) immediateProtected(t types.Type) bool {
	if v, ok := tc.imm[t]; ok {
		return v
	}
	tc.imm[t] = false // cycle guard
	v := tc.immProt(t)
	tc.imm[t] = v
	return v
}

func (tc *typeClasses) immProt(t types.Type) bool {
	if isProtectedNamed(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return tc.immediateProtected(u.Elem())
	case *types.Slice:
		return tc.immediateProtected(u.Elem())
	case *types.Array:
		return tc.immediateProtected(u.Elem())
	case *types.Map:
		return tc.immediateProtected(u.Elem()) || tc.immediateProtected(u.Key())
	}
	return false
}

// canReachProtected reports whether protected storage is reachable from
// a value of type t through any chain of pointers, containers, and
// struct fields. Type parameters are conservatively reachable;
// interfaces are not (documented unsoundness above).
func (tc *typeClasses) canReachProtected(t types.Type) bool {
	switch tc.reach[t] {
	case 1:
		return true
	case -1:
		return false
	}
	tc.reach[t] = -1 // provisional, for recursive types
	v := tc.canReach(t)
	if v {
		tc.reach[t] = 1
	}
	return v
}

func (tc *typeClasses) canReach(t types.Type) bool {
	if isProtectedNamed(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return tc.canReachProtected(u.Elem())
	case *types.Slice:
		return tc.canReachProtected(u.Elem())
	case *types.Array:
		return tc.canReachProtected(u.Elem())
	case *types.Map:
		return tc.canReachProtected(u.Key()) || tc.canReachProtected(u.Elem())
	case *types.Chan:
		return tc.canReachProtected(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if tc.canReachProtected(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.TypeParam, *types.Interface:
		_, isTP := u.(*types.TypeParam)
		return isTP // type params: conservative; interfaces: documented cut
	}
	return false
}

// isRefType reports whether writes through a value of type t land in
// storage the value references (pointer, slice, map) rather than in the
// variable itself.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}
