package vet

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/diag"
)

// noalloc turns the PR-5 allocation pins (TestFrameAlgebraAllocs,
// TestEWFScheduleAllocs) from runtime measurements into source-level
// proof obligations: a function marked //hls:noalloc must contain no
// heap-allocating construct, and may only call callees that are
// themselves vetted.
//
// Flagged constructs (HV0041): make, new, append, function literals
// (closure capture), `go` statements, map/slice composite literals,
// &-taken composite literals, non-constant string concatenation,
// string<->[]byte/[]rune conversions, and interface boxing at call
// sites (a concrete value passed to an interface parameter).
//
// Flagged calls (HV0042): any callee that is not a builtin, not a
// func-typed value (the caller supplied it — its cost is the caller's
// contract, as with Frame.Scan's yield), not math/bits (compiler
// intrinsics), and not a same-package function itself marked
// //hls:noalloc. Cross-package callees cannot be verified from a
// single-package unit, so they must be annotated //hls:allocok with the
// reason they are trusted.
//
// panic(...) subtrees are exempt: the panic path is cold by definition
// and already the worst case.
//
// Escape hatch: //hls:allocok <why> on the offending line (an
// intentional single allocation, a grow path, a cold fallback).
var noallocAnalyzer = &Analyzer{
	Name:  "noalloc",
	Doc:   "//hls:noalloc functions contain no heap-allocating constructs and call only vetted callees",
	Codes: []string{diag.CodeVetAllocOp, diag.CodeVetAllocCall, diag.CodeVetHatchReason},
	Run:   runNoalloc,
}

// noallocCallAllowlist names packages whose calls compile to intrinsics
// or guaranteed-stack code.
var noallocCallAllowlist = map[string]bool{
	"math/bits": true,
}

func runNoalloc(p *Pass) {
	// Pass 1: collect the marked functions, so same-package calls
	// between vetted hot-path functions are allowed.
	marked := map[types.Object]bool{}
	var decls []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !p.funcMarked(fd, "noalloc") {
				continue
			}
			decls = append(decls, fd)
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				marked[obj] = true
			}
		}
	}
	for _, fd := range decls {
		checkNoalloc(p, fd, marked)
	}
}

func checkNoalloc(p *Pass, fd *ast.FuncDecl, marked map[types.Object]bool) {
	flag := func(n ast.Node, what string) {
		if !p.Hatched(n, "allocok") {
			p.Reportf(n.Pos(), diag.CodeVetAllocOp,
				"%s in //hls:noalloc function %s: this allocates; restructure onto scratch space or annotate //hls:allocok <why>",
				what, fd.Name.Name)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			flag(n, "go statement")
			return false
		case *ast.FuncLit:
			flag(n, "function literal")
			return false
		case *ast.CompositeLit:
			switch p.Info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				flag(n, "map literal")
			case *types.Slice:
				flag(n, "slice literal")
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, lit := ast.Unparen(n.X).(*ast.CompositeLit); lit {
					flag(n, "address of composite literal")
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := p.Info.Types[n]; ok && tv.Value == nil && isStringType(tv.Type) {
					flag(n, "string concatenation")
				}
			}
			return true
		case *ast.CallExpr:
			return checkNoallocCall(p, fd, n, marked, flag)
		}
		return true
	})
}

// checkNoallocCall vets one call expression; its return value tells the
// walk whether to descend into the call's children.
func checkNoallocCall(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, marked map[types.Object]bool, flag func(ast.Node, string)) bool {
	// Conversions.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := p.Info.TypeOf(call.Args[0])
			switch {
			case isStringType(to) && isByteOrRuneSlice(from),
				isByteOrRuneSlice(to) && isStringType(from):
				flag(call, "string/slice conversion")
			case types.IsInterface(to.Underlying()) && from != nil && !types.IsInterface(from.Underlying()):
				flag(call, "conversion to interface (boxing)")
			}
		}
		return true
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call, "make")
			case "new":
				flag(call, "new")
			case "append":
				flag(call, "append")
			case "panic":
				// The panic path is cold; do not descend into its
				// argument (typically a fmt.Sprintf).
				return false
			}
			return true
		}
	}
	// Interface boxing at argument positions.
	if sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature); ok && !call.Ellipsis.IsValid() {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			}
			at := p.Info.TypeOf(arg)
			if pt == nil || at == nil || !types.IsInterface(pt.Underlying()) || types.IsInterface(at.Underlying()) {
				continue
			}
			if tv, ok := p.Info.Types[arg]; ok && tv.IsNil() {
				continue
			}
			flag(arg, "interface boxing of argument")
		}
	}
	// The callee itself.
	obj := calleeObj(p.Info, call)
	switch obj := obj.(type) {
	case nil:
		// A func-typed value (yield callbacks, stored closures): invoking
		// it does not allocate; its body is the supplier's contract.
		return true
	case *types.Var:
		return true
	case *types.Func:
		if marked[obj] {
			return true
		}
		if pkg := obj.Pkg(); pkg != nil && noallocCallAllowlist[pkg.Path()] {
			return true
		}
		if !p.Hatched(call, "allocok") {
			p.Reportf(call.Pos(), diag.CodeVetAllocCall,
				"//hls:noalloc function %s calls %s, which is not vetted: mark the callee //hls:noalloc (same package) or annotate the call //hls:allocok <why>",
				fd.Name.Name, obj.Name())
		}
	}
	return true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
