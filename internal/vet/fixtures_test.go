package vet

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"testing"
)

// The fixture harness: an analysistest in miniature. Each unit under
// testdata/src/<analyzer>/<case>/ is parsed and type-checked against
// the real module's export data, presented under a chosen import path
// (so package-sensitive analyzers see the path they key on), and run
// through exactly one analyzer. Expectations live in the fixtures as
// `// want "regex"` comments; the harness demands an exact per-line
// match in both directions — every want satisfied, every diagnostic
// wanted.

// fixtureUnit maps one fixture directory to the analyzer it exercises
// and the import path it impersonates. needsStore marks analyzers that
// consume the cross-package mutation-summary store (sharedro): the
// harness builds the real module's store once and shares it.
type fixtureUnit struct {
	analyzer   string // registry name
	dir        string // under testdata/src
	pkgPath    string // presented import path
	needsStore bool
}

var fixtureUnits = []fixtureUnit{
	{"maporder", "maporder/critical", "repro/internal/sched", false},
	{"maporder", "maporder/noncritical", "repro/internal/report", false},
	{"noclock", "noclock/critical", "repro/internal/sched", false},
	{"noclock", "noclock/allowed", "repro/internal/experiments", false},
	{"ctxflow", "ctxflow/flow", "repro/internal/sched", false},
	{"guardboundary", "guardboundary/facade", "repro", false},
	{"guardboundary", "guardboundary/cmdbad", "repro/cmd/fixbad", false},
	{"guardboundary", "guardboundary/cmdgood", "repro/cmd/fixgood", false},
	{"guardboundary", "guardboundary/climain", "repro/internal/cli", false},
	{"noalloc", "noalloc/hot", "repro/internal/grid", false},
	{"sharedro", "sharedro/entry", "repro/internal/mfs", true},
	{"sharedro", "sharedro/foreign", "repro/internal/canon", true},
	{"sharedro", "sharedro/pooljob", "repro/internal/core", true},
	{"sharedro", "sharedro/owner", "repro/internal/dfg", true},
	{"errflow", "errflow/critical", "repro/internal/sched", false},
	{"errflow", "errflow/noncritical", "repro/internal/report", false},
}

// wantRe extracts the quoted pattern from a `// want "..."` comment.
// The quoted part is a Go string literal, so fixtures can escape
// backquotes and quotes the usual way.
var wantRe = regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)

// loadModuleExports runs the go list export step once for the whole
// test binary; every fixture unit type-checks against the same index.
func loadModuleExports(t *testing.T) map[string]string {
	t.Helper()
	_, exports, err := goList("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module export data: %v", err)
	}
	return exports
}

// moduleStore builds the real module's mutation-summary store once per
// test binary: every module package type-checked from source and run
// through the summary fixpoint in bottom-up import order, exactly the
// standalone driver's summary phase.
var moduleStoreCache struct {
	once  sync.Once
	store *Summaries
	err   error
}

func moduleStore(t *testing.T) *Summaries {
	t.Helper()
	c := &moduleStoreCache
	c.once.Do(func() {
		c.store, c.err = buildModuleStore()
	})
	if c.err != nil {
		t.Fatalf("building module summary store: %v", c.err)
	}
	return c.store
}

// buildModuleStore runs the standalone driver's summary phase from
// scratch: every module package type-checked from source, summaries
// computed bottom-up over the import graph.
func buildModuleStore() (*Summaries, error) {
	pkgs, exports, err := goList("../..", []string{"./..."})
	if err != nil {
		return nil, err
	}
	order, err := topoOrder(modulePackages(pkgs))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	store := NewSummaries()
	for _, lp := range order {
		u, err := checkUnit(fset, exports, lp.ImportPath, lp.ImportPath,
			absFiles(lp.Dir, lp.GoFiles), true)
		if err != nil {
			return nil, err
		}
		ComputePackageSummaries(u.Files, u.Info, store)
	}
	return store, nil
}

func TestFixtures(t *testing.T) {
	exports := loadModuleExports(t)
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}

	for _, fu := range fixtureUnits {
		fu := fu
		t.Run(fu.dir, func(t *testing.T) {
			a, ok := byName[fu.analyzer]
			if !ok {
				t.Fatalf("no analyzer named %q in the registry", fu.analyzer)
			}
			dir := filepath.Join("testdata", "src", filepath.FromSlash(fu.dir))
			files, err := filepath.Glob(filepath.Join(dir, "*.go"))
			if err != nil || len(files) == 0 {
				t.Fatalf("no fixture files in %s: %v", dir, err)
			}
			sort.Strings(files)

			fset := token.NewFileSet()
			unit, err := checkUnit(fset, exports, fu.pkgPath, fu.pkgPath, files, true)
			if err != nil {
				t.Fatalf("type-checking fixture %s as %s: %v", fu.dir, fu.pkgPath, err)
			}
			var store *Summaries
			if fu.needsStore {
				store = moduleStore(t)
			}
			got := RunUnit(fset, unit, []*Analyzer{a}, store)

			wants := collectWants(t, files)
			checkExpectations(t, wants, got)
		})
	}
}

// TestJSONByteStable runs the entire fixture corpus through the suite
// twice — independent parses, type-checks, and summary stores — and
// demands the two JSON renderings be byte-identical. This pins the
// (file, offset, code, analyzer, message) total order end to end: any
// map-iteration or scheduling nondeterminism sneaking into an analyzer,
// the summary fixpoint, or the aggregation shows up here as a diff.
func TestJSONByteStable(t *testing.T) {
	exports := loadModuleExports(t)
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	round := func() []byte {
		store, err := buildModuleStore()
		if err != nil {
			t.Fatalf("building module summary store: %v", err)
		}
		var all []Diagnostic
		for _, fu := range fixtureUnits {
			dir := filepath.Join("testdata", "src", filepath.FromSlash(fu.dir))
			files, err := filepath.Glob(filepath.Join(dir, "*.go"))
			if err != nil || len(files) == 0 {
				t.Fatalf("no fixture files in %s: %v", dir, err)
			}
			sort.Strings(files)
			fset := token.NewFileSet()
			unit, err := checkUnit(fset, exports, fu.pkgPath, fu.pkgPath, files, true)
			if err != nil {
				t.Fatalf("type-checking fixture %s as %s: %v", fu.dir, fu.pkgPath, err)
			}
			var s *Summaries
			if fu.needsStore {
				s = store
			}
			all = append(all, RunUnit(fset, unit, []*Analyzer{byName[fu.analyzer]}, s)...)
		}
		SortDiagnostics(all)
		var buf bytes.Buffer
		PrintJSON(&buf, all)
		return buf.Bytes()
	}
	first, second := round(), round()
	if !bytes.Equal(first, second) {
		t.Fatalf("two identical runs rendered different JSON:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	// Guard against vacuous success: the corpus must actually produce
	// findings, including the store-backed sharedro ones.
	if !bytes.Contains(first, []byte("HV0051")) || !bytes.Contains(first, []byte("HV0061")) {
		t.Fatalf("fixture corpus lost its sharedro/errflow findings; the stability check is vacuous:\n%s", first)
	}
}

// wantKey addresses one fixture line.
type wantKey struct {
	file string // base name
	line int
}

// collectWants scans fixture sources line by line for want comments.
func collectWants(t *testing.T, files []string) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("reading fixture %s: %v", name, err)
		}
		base := filepath.Base(name)
		line := 1
		start := 0
		for i := 0; i <= len(data); i++ {
			if i == len(data) || data[i] == '\n' {
				text := string(data[start:i])
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					pat, err := strconv.Unquote(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", base, line, m[1], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", base, line, pat, err)
					}
					k := wantKey{base, line}
					wants[k] = append(wants[k], re)
				}
				line++
				start = i + 1
			}
		}
	}
	return wants
}

// checkExpectations demands a bijection between wants and diagnostics:
// each diagnostic must satisfy (and consume) a want on its exact line,
// and every want must be consumed.
func checkExpectations(t *testing.T, wants map[wantKey][]*regexp.Regexp, got []Diagnostic) {
	t.Helper()
	for _, d := range got {
		k := wantKey{filepath.Base(d.Posn.Filename), d.Posn.Line}
		rendered := fmt.Sprintf("%s: %s", d.Code, d.Message)
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(rendered) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				if len(wants[k]) == 0 {
					delete(wants, k)
				}
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", k.file, k.line, rendered)
		}
	}
	var leftover []string
	for k, res := range wants {
		for _, re := range res {
			leftover = append(leftover, fmt.Sprintf("%s:%d: want %q", k.file, k.line, re.String()))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Errorf("expectation not satisfied: %s", l)
	}
}
