package vet

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"
)

// The fixture harness: an analysistest in miniature. Each unit under
// testdata/src/<analyzer>/<case>/ is parsed and type-checked against
// the real module's export data, presented under a chosen import path
// (so package-sensitive analyzers see the path they key on), and run
// through exactly one analyzer. Expectations live in the fixtures as
// `// want "regex"` comments; the harness demands an exact per-line
// match in both directions — every want satisfied, every diagnostic
// wanted.

// fixtureUnit maps one fixture directory to the analyzer it exercises
// and the import path it impersonates.
type fixtureUnit struct {
	analyzer string // registry name
	dir      string // under testdata/src
	pkgPath  string // presented import path
}

var fixtureUnits = []fixtureUnit{
	{"maporder", "maporder/critical", "repro/internal/sched"},
	{"maporder", "maporder/noncritical", "repro/internal/report"},
	{"noclock", "noclock/critical", "repro/internal/sched"},
	{"noclock", "noclock/allowed", "repro/internal/experiments"},
	{"ctxflow", "ctxflow/flow", "repro/internal/sched"},
	{"guardboundary", "guardboundary/facade", "repro"},
	{"guardboundary", "guardboundary/cmdbad", "repro/cmd/fixbad"},
	{"guardboundary", "guardboundary/cmdgood", "repro/cmd/fixgood"},
	{"guardboundary", "guardboundary/climain", "repro/internal/cli"},
	{"noalloc", "noalloc/hot", "repro/internal/grid"},
}

// wantRe extracts the quoted pattern from a `// want "..."` comment.
// The quoted part is a Go string literal, so fixtures can escape
// backquotes and quotes the usual way.
var wantRe = regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)

// loadModuleExports runs the go list export step once for the whole
// test binary; every fixture unit type-checks against the same index.
func loadModuleExports(t *testing.T) map[string]string {
	t.Helper()
	_, exports, err := goList("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module export data: %v", err)
	}
	return exports
}

func TestFixtures(t *testing.T) {
	exports := loadModuleExports(t)
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}

	for _, fu := range fixtureUnits {
		fu := fu
		t.Run(fu.dir, func(t *testing.T) {
			a, ok := byName[fu.analyzer]
			if !ok {
				t.Fatalf("no analyzer named %q in the registry", fu.analyzer)
			}
			dir := filepath.Join("testdata", "src", filepath.FromSlash(fu.dir))
			files, err := filepath.Glob(filepath.Join(dir, "*.go"))
			if err != nil || len(files) == 0 {
				t.Fatalf("no fixture files in %s: %v", dir, err)
			}
			sort.Strings(files)

			fset := token.NewFileSet()
			unit, err := checkUnit(fset, exports, fu.pkgPath, fu.pkgPath, files, true)
			if err != nil {
				t.Fatalf("type-checking fixture %s as %s: %v", fu.dir, fu.pkgPath, err)
			}
			got := RunUnit(fset, unit, []*Analyzer{a})

			wants := collectWants(t, files)
			checkExpectations(t, wants, got)
		})
	}
}

// wantKey addresses one fixture line.
type wantKey struct {
	file string // base name
	line int
}

// collectWants scans fixture sources line by line for want comments.
func collectWants(t *testing.T, files []string) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("reading fixture %s: %v", name, err)
		}
		base := filepath.Base(name)
		line := 1
		start := 0
		for i := 0; i <= len(data); i++ {
			if i == len(data) || data[i] == '\n' {
				text := string(data[start:i])
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					pat, err := strconv.Unquote(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", base, line, m[1], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", base, line, pat, err)
					}
					k := wantKey{base, line}
					wants[k] = append(wants[k], re)
				}
				line++
				start = i + 1
			}
		}
	}
	return wants
}

// checkExpectations demands a bijection between wants and diagnostics:
// each diagnostic must satisfy (and consume) a want on its exact line,
// and every want must be consumed.
func checkExpectations(t *testing.T, wants map[wantKey][]*regexp.Regexp, got []Diagnostic) {
	t.Helper()
	for _, d := range got {
		k := wantKey{filepath.Base(d.Posn.Filename), d.Posn.Line}
		rendered := fmt.Sprintf("%s: %s", d.Code, d.Message)
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(rendered) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				if len(wants[k]) == 0 {
					delete(wants, k)
				}
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", k.file, k.line, rendered)
		}
	}
	var leftover []string
	for k, res := range wants {
		for _, re := range res {
			leftover = append(leftover, fmt.Sprintf("%s:%d: want %q", k.file, k.line, re.String()))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Errorf("expectation not satisfied: %s", l)
	}
}
