package vet

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/diag"
)

// TestRepoClean is the suite's own gate: the repository at head must
// carry zero hlsvet diagnostics. Every invariant the analyzers enforce
// is therefore not aspiration but current fact — a regression shows up
// as a failing tier-1 test, not just a CI vet stage.
func TestRepoClean(t *testing.T) {
	ds, err := Check(context.Background(), "../..", []string{"./..."}, Analyzers())
	if err != nil {
		t.Fatalf("running hlsvet over the module: %v", err)
	}
	for _, d := range ds {
		t.Errorf("repo not clean: %s", d)
	}
}

// TestCodeRegistry pins the two-way contract between the analyzer
// registry and the shared diag code catalog: every code an analyzer
// claims is documented, and every HV code in the catalog is claimed by
// exactly one analyzer (HV0001 is shared infrastructure — the hatch
// scanner reports it on behalf of whichever analyzer the hatch
// silences).
func TestCodeRegistry(t *testing.T) {
	claimed := map[string]string{}
	for _, a := range Analyzers() {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		for _, code := range a.Codes {
			if _, ok := diag.Docs[code]; !ok {
				t.Errorf("analyzer %s claims code %s with no diag.Docs entry", a.Name, code)
			}
			if code == diag.CodeVetHatchReason {
				continue // shared by every analyzer's hatch scanner
			}
			if prev, dup := claimed[code]; dup {
				t.Errorf("code %s claimed by both %s and %s", code, prev, a.Name)
			}
			claimed[code] = a.Name
		}
	}
	hv := regexp.MustCompile(`^HV\d{4}$`)
	for code := range diag.Docs {
		if !hv.MatchString(code) || code == diag.CodeVetHatchReason {
			continue
		}
		if _, ok := claimed[code]; !ok {
			t.Errorf("diag code %s is in the catalog but no analyzer can report it", code)
		}
	}
}

// TestUnitcheckerProtocol drives runUnitchecker exactly as cmd/go
// would: a vet.cfg JSON naming one unit's files, import map, and
// export map. It pins the three exit codes the driver relies on —
// 0 for facts-only, 0 for clean, 2 for findings — plus the VetxOutput
// side effect.
func TestUnitcheckerProtocol(t *testing.T) {
	pkgs, exports, err := goList("../..", []string{"./internal/sched"})
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	var sched *listedPackage
	for _, lp := range pkgs {
		if lp.ImportPath == "repro/internal/sched" && !strings.Contains(lp.ImportPath, " [") {
			sched = lp
			break
		}
	}
	if sched == nil {
		t.Fatal("go list did not return repro/internal/sched")
	}

	tmp := t.TempDir()
	// The unit to check: a fixture file with one injected violation,
	// presented as repro/internal/sched so maporder fires.
	src := filepath.Join(tmp, "bad.go")
	code := "package sched\n\nfunc keys(m map[string]int) []string {\n\tvar out []string\n\tfor k := range m {\n\t\tout = append(out, k)\n\t}\n\treturn out\n}\n"
	if err := os.WriteFile(src, []byte(code), 0o666); err != nil {
		t.Fatal(err)
	}

	importMap := map[string]string{}
	packageFile := map[string]string{}
	for path, exp := range exports {
		importMap[path] = path
		packageFile[path] = exp
	}
	writeCfg := func(t *testing.T, cfg map[string]any) string {
		t.Helper()
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "vet.cfg")
		if err := os.WriteFile(p, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("facts-only", func(t *testing.T) {
		vetx := filepath.Join(t.TempDir(), "unit.vetx")
		cfg := writeCfg(t, map[string]any{
			"ImportPath":  "repro/internal/sched",
			"GoFiles":     []string{src},
			"ImportMap":   importMap,
			"PackageFile": packageFile,
			"VetxOnly":    true,
			"VetxOutput":  vetx,
		})
		var out, errw strings.Builder
		if rc := runUnitchecker(cfg, nil, false, &out, &errw); rc != 0 {
			t.Fatalf("VetxOnly unit: exit %d, stderr:\n%s", rc, errw.String())
		}
		if _, err := os.Stat(vetx); err != nil {
			t.Fatalf("VetxOutput not written: %v", err)
		}
	})

	t.Run("findings-exit-2", func(t *testing.T) {
		cfg := writeCfg(t, map[string]any{
			"ImportPath":  "repro/internal/sched",
			"GoFiles":     []string{src},
			"ImportMap":   importMap,
			"PackageFile": packageFile,
			"VetxOutput":  filepath.Join(t.TempDir(), "unit.vetx"),
		})
		var out, errw strings.Builder
		rc := runUnitchecker(cfg, nil, false, &out, &errw)
		if rc != 2 {
			t.Fatalf("unit with a violation: exit %d (want 2), stderr:\n%s", rc, errw.String())
		}
		if !strings.Contains(errw.String(), "HV0002") {
			t.Fatalf("stderr does not carry the HV0002 finding:\n%s", errw.String())
		}
	})

	t.Run("clean-exit-0", func(t *testing.T) {
		// sharedro judges sched's calls into dfg by their summaries, so
		// the unit needs its dependency facts: chain VetxOnly units over
		// sched's module dependencies bottom-up — exactly the PackageVetx
		// relay cmd/go performs — before checking sched itself. Without
		// the chain every dfg callee gets a conservative opaque summary
		// and read-only accessors look like mutations.
		mods, err := topoOrder(modulePackages(pkgs))
		if err != nil {
			t.Fatal(err)
		}
		vetxDir := t.TempDir()
		packageVetx := map[string]string{}
		for _, lp := range mods {
			if lp.ImportPath == "repro/internal/sched" {
				continue
			}
			depFiles := make([]string, 0, len(lp.GoFiles))
			for _, f := range lp.GoFiles {
				depFiles = append(depFiles, filepath.Join(lp.Dir, f))
			}
			vetx := filepath.Join(vetxDir, strings.ReplaceAll(lp.ImportPath, "/", "_")+".vetx")
			cfg := writeCfg(t, map[string]any{
				"ImportPath":  lp.ImportPath,
				"GoFiles":     depFiles,
				"ImportMap":   importMap,
				"PackageFile": packageFile,
				"PackageVetx": packageVetx,
				"VetxOnly":    true,
				"VetxOutput":  vetx,
			})
			var out, errw strings.Builder
			if rc := runUnitchecker(cfg, nil, false, &out, &errw); rc != 0 {
				t.Fatalf("VetxOnly %s: exit %d, stderr:\n%s", lp.ImportPath, rc, errw.String())
			}
			packageVetx[lp.ImportPath] = vetx
		}
		files := make([]string, 0, len(sched.GoFiles))
		for _, f := range sched.GoFiles {
			files = append(files, filepath.Join(sched.Dir, f))
		}
		cfg := writeCfg(t, map[string]any{
			"ImportPath":  "repro/internal/sched",
			"GoFiles":     files,
			"ImportMap":   importMap,
			"PackageFile": packageFile,
			"PackageVetx": packageVetx,
			"VetxOutput":  filepath.Join(t.TempDir(), "unit.vetx"),
		})
		var out, errw strings.Builder
		if rc := runUnitchecker(cfg, nil, false, &out, &errw); rc != 0 {
			t.Fatalf("clean unit: exit %d, stderr:\n%s", rc, errw.String())
		}
	})

	t.Run("json-output", func(t *testing.T) {
		cfg := writeCfg(t, map[string]any{
			"ImportPath":  "repro/internal/sched",
			"GoFiles":     []string{src},
			"ImportMap":   importMap,
			"PackageFile": packageFile,
			"VetxOutput":  filepath.Join(t.TempDir(), "unit.vetx"),
		})
		var out, errw strings.Builder
		if rc := runUnitchecker(cfg, nil, true, &out, &errw); rc != 2 {
			t.Fatalf("json unit: exit %d, stderr:\n%s", rc, errw.String())
		}
		var ds []struct {
			Code     string `json:"code"`
			Analyzer string `json:"analyzer"`
		}
		if err := json.Unmarshal([]byte(out.String()), &ds); err != nil {
			t.Fatalf("stdout is not a diag list: %v\n%s", err, out.String())
		}
		if len(ds) != 1 || ds[0].Code != diag.CodeVetMapOrder || ds[0].Analyzer != "maporder" {
			t.Fatalf("want one HV0002 maporder diagnostic, got %+v", ds)
		}
	})
}

// TestVersionAndFlagProbes pins the two stdout probes cmd/go sends a
// vettool before trusting it with units.
func TestVersionAndFlagProbes(t *testing.T) {
	var v strings.Builder
	PrintVersion(&v)
	if !regexp.MustCompile(` version devel .*buildID=[0-9a-f]+\n$`).MatchString(v.String()) {
		t.Errorf("-V=full output malformed: %q", v.String())
	}
	var f strings.Builder
	PrintFlags(&f)
	var descs []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal([]byte(f.String()), &descs); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, f.String())
	}
	names := map[string]bool{}
	for _, d := range descs {
		if !d.Bool {
			t.Errorf("flag %s is not boolean; cmd/go only forwards -flag=value", d.Name)
		}
		names[d.Name] = true
	}
	for _, a := range Analyzers() {
		if !names[a.Name] {
			t.Errorf("-flags output misses the %s selector", a.Name)
		}
	}
	if !names["json"] {
		t.Error("-flags output misses -json")
	}
}

// TestSelect pins analyzer-name resolution, including the failure mode.
func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("Select(nil) = %d analyzers, err %v", len(all), err)
	}
	one, err := Select([]string{"maporder"})
	if err != nil || len(one) != 1 || one[0].Name != "maporder" {
		t.Fatalf("Select(maporder) = %v, err %v", one, err)
	}
	if _, err := Select([]string{"nope"}); err == nil {
		t.Fatal("Select(nope) did not fail")
	}
	if fmt.Sprint(err) == "" {
		t.Fatal("unreachable")
	}
}
