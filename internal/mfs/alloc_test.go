package mfs

import (
	"testing"

	"repro/internal/benchmarks"
)

// TestEWFScheduleAllocs pins the allocation budget of a full MFS run on
// the largest benchmark (EWF, 34 operations, cs = 17). Before the bitset
// frame engine and the dense per-node state this run cost 1517
// allocations (hash-map frames rebuilt per placement, per-candidate
// sorting, map-keyed placement state); with them it costs 863. The bound
// leaves headroom for incidental churn but fails long before anything
// map-shaped creeps back into the placement loop.
func TestEWFScheduleAllocs(t *testing.T) {
	ex := benchmarks.EWF()
	cs := ex.TimeConstraints[0]
	if cs != 17 {
		t.Fatalf("EWF's first time constraint moved: got %d, the budget below was measured at 17", cs)
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := Schedule(ex.Graph, Options{CS: cs}); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 1100 // measured 863; seed (map-based engine) was 1517
	if got > budget {
		t.Errorf("EWF cs=%d schedule: %.0f allocs/run, budget %d (seed was 1517)", cs, got, budget)
	}
}
