// Package mfs implements Move Frame Scheduling (§3), the paper's
// time- or resource-constrained scheduling algorithm, together with the
// §5 extensions: mutually exclusive operations, loop folding, multicycle
// operations, chaining, and structural and functional pipelining.
//
// MFS places one operation at a time into per-type placement grids
// (control step × FU instance). For each operation it computes the move
// frame MF = PF − (RF ∪ FF) and commits the operation to the empty MF
// position with the least Liapunov energy: V = x + n·y under a time
// constraint (fill a step before opening the next) or V = cs·x + y under
// a resource constraint (use another step before adding hardware). When
// an operation's move frame is exhausted, the running FU estimate
// current_j grows by one and the operation is re-framed — the paper's
// "local rescheduling".
package mfs

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/grid"
	"repro/internal/liapunov"
	"repro/internal/pool"
	"repro/internal/sched"
)

// Options configures a scheduling run.
type Options struct {
	// CS is the time constraint in control steps. CS > 0 selects
	// time-constrained scheduling; CS == 0 selects resource-constrained
	// scheduling, which finds the smallest feasible number of steps under
	// Limits.
	CS int

	// Limits caps FU instances per type key (operation symbol). Under a
	// time constraint absent entries default to the upper bound observed
	// in the ASAP/ALAP schedules (MFS step 2); under a resource
	// constraint Limits is required.
	Limits map[string]int

	// ClockNs enables the chaining extension (§5.4): data-dependent
	// single-cycle operations share a control step while their summed
	// combinational delay fits this clock period. 0 disables chaining.
	ClockNs float64

	// Latency enables functional pipelining (§5.5.2) with initiation
	// interval L: operations in steps t and t+k·L execute concurrently,
	// so their grid occupancy folds modulo L. 0 disables it.
	Latency int

	// PipelinedTypes marks FU types realized by structurally pipelined
	// units (§5.5.1): an instance accepts a new operation every step.
	PipelinedTypes map[string]bool

	// Liapunov overrides the guiding function; nil selects the §3.1
	// function matching the constraint mode. Used by ablation benchmarks.
	Liapunov liapunov.Func

	// NoRedundantFrame disables the RF balancing mechanism: current_j
	// starts at max_j instead of ⌈N_j/steps⌉, so every column is
	// available immediately. Ablation use only.
	NoRedundantFrame bool

	// MaxCS bounds the resource-constrained search for the smallest
	// schedule; 0 defaults to 4·critical-path + 8 steps.
	MaxCS int

	// Parallelism bounds the worker pool of the resource-constrained
	// search, which probes a window of candidate cs values speculatively
	// and commits the smallest feasible one: 0 = GOMAXPROCS, 1 =
	// sequential, n > 1 = at most n concurrent probes. Every setting
	// returns the identical schedule (see pool.SearchMin).
	Parallelism int

	// NoTrace skips recording the move trajectory (Schedule.Trace). The
	// placements are unaffected; only the audit metadata is dropped. The
	// per-step frame bitsets dominate memory on very large graphs
	// (O(N·cs·max_j) bits across a run), so the scale ladder sets this —
	// at the cost of the lint trace audits becoming no-ops and the
	// schedule not being resumable (ResumeCtx falls back to a full run).
	NoTrace bool
}

// TypeKey returns the FU-type grid an operation competes in. In pure
// scheduling every operation type has its own single-function unit, so
// the key is the operation symbol; folded loops are singleton types.
func TypeKey(n *dfg.Node) string {
	if n.IsLoop() {
		return "loop:" + n.Name
	}
	return n.Op.String()
}

// Schedule runs MFS on g and returns a verified schedule.
func Schedule(g *dfg.Graph, opt Options) (*sched.Schedule, error) {
	return ScheduleCtx(context.Background(), g, opt)
}

// ScheduleCtx is Schedule with cancellation: the run observes ctx
// between operation placements and between candidate probes of the
// resource-constrained search, returning ctx.Err() — never a partial
// schedule — once ctx is done.
func ScheduleCtx(ctx context.Context, g *dfg.Graph, opt Options) (*sched.Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("mfs: %w", err)
	}
	if opt.Latency > 0 && opt.CS == 0 {
		return nil, fmt.Errorf("mfs: functional pipelining needs a time constraint")
	}
	if opt.CS > 0 {
		return scheduleTimeConstrained(ctx, g, opt)
	}
	return scheduleResourceConstrained(ctx, g, opt)
}

func scheduleTimeConstrained(ctx context.Context, g *dfg.Graph, opt Options) (*sched.Schedule, error) {
	// Frames depend only on (graph, cs, clock), so the widening retries
	// below share one computation.
	frames, err := sched.ComputeFrames(g, opt.CS, opt.ClockNs)
	if err != nil {
		return nil, fmt.Errorf("mfs: %w", err)
	}
	s, err := runOnce(ctx, g, opt.CS, opt, false, frames)
	if err == nil {
		return s, nil
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, ctxErr
	}
	// The ASAP/ALAP bound on max_j is usually sufficient but not a
	// guarantee; for types the user left unbounded, widen and retry a few
	// times before giving up (time-constrained runs must keep cs fixed).
	for extra := 1; extra <= 3; extra++ {
		s, retryErr := runOnce(ctx, g, opt.CS, opt, false, frames, extra)
		if retryErr == nil {
			return s, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
	}
	return nil, err
}

// scheduleResourceConstrained finds the smallest feasible cs under the
// resource limits. Candidate cs values are independent fixed-cs runs, so
// a window of them is probed speculatively in parallel and the smallest
// feasible one commits — pool.SearchMin guarantees the result is exactly
// the sequential loop's. Frames are computed once at the critical path
// and shifted per candidate instead of recomputed (Frames.Shifted).
func scheduleResourceConstrained(ctx context.Context, g *dfg.Graph, opt Options) (*sched.Schedule, error) {
	if len(opt.Limits) == 0 {
		return nil, fmt.Errorf("mfs: resource-constrained scheduling needs Limits")
	}
	lo := g.CriticalPathCycles()
	if lo < 1 {
		lo = 1 // empty graph: one empty step is a legal schedule
	}
	hi := opt.MaxCS
	if hi == 0 {
		hi = 4*lo + 8
	}
	frames, err := sched.ComputeFrames(g, lo, opt.ClockNs)
	if err != nil {
		return nil, fmt.Errorf("mfs: %w", err)
	}
	_, s, err := pool.SearchMinCtx(ctx, pool.Size(opt.Parallelism), hi-lo+1,
		func(i int) (*sched.Schedule, error) {
			return runOnce(ctx, g, lo+i, opt, true, frames.Shifted(i))
		})
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("mfs: no schedule within %d steps: %w", hi, err)
	}
	return s, nil
}

// scheduler carries the state of one fixed-cs run.
type scheduler struct {
	g        *dfg.Graph
	cs       int
	opt      Options
	resource bool

	frames  sched.Frames
	lf      liapunov.Func
	tables  map[string]*grid.Table
	maxj    map[string]int
	current map[string]int
	// excl caches g.HasExclusions() for the run: when false, the window
	// walk can treat every occupied index bit as illegal without
	// consulting the occupant lists (grid.Table.ScanPlaceable).
	excl bool
	// sortScratch reuses the generic sorted path's position and value
	// buffers across placements — custom Liapunov ablations take that
	// path for every operation, and a fresh slice plus sort.SliceStable
	// per placement dominated the ablation-weights table time.
	sortScratch posSorter
	// placed and steps are indexed by dfg.NodeID (dense from 0);
	// Step == 0 / steps[id] == 0 means unplaced (steps are 1-based).
	// steps duplicates placed[id].Step so the chain filter gets its
	// table without a per-candidate rebuild — it is maintained on commit.
	placed []sched.Placement
	steps  []int
	// chainAcc[id] is the accumulated combinational delay at id's output
	// within its step (chaining only; see sched.ChainAccAt). Maintained
	// on commit, it turns the per-candidate chain check from a full
	// graph walk into an O(preds) lookup.
	chainAcc []float64
	trace    []sched.TraceStep
}

// newScheduler builds the state of one fixed-cs run. It reads g and
// frames but mutates neither, so concurrent runs over the same graph
// are safe — the speculative search depends on that.
func newScheduler(g *dfg.Graph, cs int, opt Options, resource bool, frames sched.Frames, extraMax ...int) *scheduler {
	s := &scheduler{
		g: g, cs: cs, opt: opt, resource: resource,
		frames:  frames,
		tables:  make(map[string]*grid.Table),
		maxj:    make(map[string]int),
		current: make(map[string]int),
		placed:  make([]sched.Placement, g.Len()),
		steps:   make([]int, g.Len()),
		excl:    g.HasExclusions(),
	}
	if !opt.NoTrace {
		// One step per node; sized up front so the per-commit append
		// never reallocates the whole trajectory on large graphs.
		s.trace = make([]sched.TraceStep, 0, g.Len())
	}
	if opt.ClockNs > 0 {
		s.chainAcc = make([]float64, g.Len())
	}
	s.initBounds(extraMax...)
	s.initLiapunov()
	s.initTables()
	return s
}

// runOnce performs one fixed-cs scheduling run against precomputed
// frames (which must match cs; see ComputeFrames and Frames.Shifted).
func runOnce(ctx context.Context, g *dfg.Graph, cs int, opt Options, resource bool, frames sched.Frames, extraMax ...int) (*sched.Schedule, error) {
	s := newScheduler(g, cs, opt, resource, frames, extraMax...)

	// MFS step 4: schedule every operation in priority order. Because an
	// operation's ALAP is always strictly earlier than its successors',
	// the priority order is topological: predecessors are committed
	// before their consumers, so frames only ever tighten from above.
	// The per-operation ctx check is what makes a cancelled run return
	// within one placement's worth of work rather than one schedule's.
	for _, id := range sched.PriorityOrder(g, frames) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.placeOne(id); err != nil {
			return nil, err
		}
	}
	return s.finish()
}

// initBounds sets max_j per type: the user limit if given, otherwise the
// maximum concurrency observed in the ASAP and ALAP schedules (MFS
// step 2), never below the ⌈N_j/steps⌉ floor. extraMax widens unbounded
// types on retry.
func (s *scheduler) initBounds(extraMax ...int) {
	widen := 0
	if len(extraMax) > 0 {
		widen = extraMax[0]
	}
	counts := make(map[string]int)
	asapConc := s.concurrency(func(f sched.Frame) int { return f.ASAP })
	alapConc := s.concurrency(func(f sched.Frame) int { return f.ALAP })
	for _, n := range s.g.Nodes() {
		counts[TypeKey(n)]++
	}
	//hls:orderok every write is keyed by typ and reads only typ's own entries; iterations are independent
	for typ, nj := range counts {
		if lim, ok := s.opt.Limits[typ]; ok {
			s.maxj[typ] = lim
		} else {
			m := asapConc[typ]
			if alapConc[typ] > m {
				m = alapConc[typ]
			}
			if m < 1 {
				m = 1
			}
			s.maxj[typ] = m + widen
		}
		if s.opt.NoRedundantFrame {
			s.current[typ] = s.maxj[typ]
			continue
		}
		span := s.cs
		if s.opt.Latency > 0 && s.opt.Latency < span {
			span = s.opt.Latency
		}
		floor := (nj + span - 1) / span
		if floor < 1 {
			floor = 1
		}
		s.current[typ] = floor
		if s.current[typ] > s.maxj[typ] {
			s.current[typ] = s.maxj[typ]
		}
	}
}

// concurrency counts, per type, the peak number of operations whose
// footprint covers a step when every operation starts at the given frame
// bound (ASAP or ALAP) — the paper's upper-bound estimate for max_j.
func (s *scheduler) concurrency(start func(sched.Frame) int) map[string]int {
	perStep := make(map[string]map[int]int)
	for _, n := range s.g.Nodes() {
		typ := TypeKey(n)
		if perStep[typ] == nil {
			perStep[typ] = make(map[int]int)
		}
		cyc := n.Cycles
		if s.opt.PipelinedTypes[typ] {
			cyc = 1
		}
		for i := 0; i < cyc; i++ {
			step := start(s.frames[n.ID]) + i
			if s.opt.Latency > 0 {
				step = ((step - 1) % s.opt.Latency) + 1
			}
			perStep[typ][step]++
		}
	}
	out := make(map[string]int, len(perStep))
	//hls:orderok per-typ max fold; max is commutative and each key is independent
	for typ, steps := range perStep {
		for _, c := range steps {
			if c > out[typ] {
				out[typ] = c
			}
		}
	}
	return out
}

func (s *scheduler) initLiapunov() {
	if s.opt.Liapunov != nil {
		s.lf = s.opt.Liapunov
		return
	}
	if s.resource {
		s.lf = liapunov.ResourceConstrained{CS: s.cs + 1}
		return
	}
	n := 1
	//hls:orderok max fold over the bound values; commutative
	for _, m := range s.maxj {
		if m > n {
			n = m
		}
	}
	s.lf = liapunov.TimeConstrained{N: n + 1}
}

func (s *scheduler) initTables() {
	//hls:orderok builds one independent table per typ, written keyed; no cross-key state
	for typ, m := range s.maxj {
		t := grid.NewTable(typ, s.cs, m)
		t.Latency = s.opt.Latency
		t.Pipelined = s.opt.PipelinedTypes[typ]
		s.tables[typ] = t
	}
}

// placeOne schedules one operation: frame it, walk its move frame in
// Liapunov order, commit the first legal position, growing current_j and
// re-framing when the frame is exhausted (local rescheduling).
//
// The move frame is handled analytically: MF = PF − (RF ∪ FF) of a
// frameSet is always exactly the rectangle [lo..hi] × [1..current_j] —
// PF − RF is that rectangle by construction, and FF cannot intersect it
// because every predecessor contributing a forbidden row also raises lo
// past it (windowOf keeps lo ≥ ffTop+1). So the search needs only the
// three window bounds, never a bitset; the bitsets are materialized
// solely for the trace record, via the same Rect/Minus/Union calls
// frameSet has always used, so recorded traces stay byte-identical.
// equiv_test.go pins both the schedule and the recorded frames against
// the historical map-based reference scheduler.
func (s *scheduler) placeOne(id dfg.NodeID) error {
	n := s.g.Node(id)
	typ := TypeKey(n)
	table := s.tables[typ]
	lo, hi, ffTop := s.windowOf(id)
	for {
		if p, ok := s.bestPosition(table, id, n.Cycles, lo, hi, s.current[typ]); ok {
			if err := table.Place(s.g, id, p, n.Cycles); err != nil {
				return fmt.Errorf("mfs: %w", err)
			}
			s.commit(id, typ, p)
			if !s.opt.NoTrace {
				// Record the decision for the Liapunov audit: the frames
				// the operation saw, the scheduler's FU estimate, and the
				// energy of the committed position.
				fs := s.buildFrameSet(typ, lo, hi, ffTop)
				s.trace = append(s.trace, sched.TraceStep{
					Node: id, Type: typ,
					PF: fs.PF, RF: fs.RF, FF: fs.FF, MF: fs.MF,
					CurrentJ: s.current[typ], MaxJ: s.maxj[typ],
					Pos: p, Energy: s.lf.Value(p),
				})
			}
			return nil
		}
		if s.current[typ] < s.maxj[typ] {
			s.current[typ]++ // local rescheduling: allow one more FU
			continue
		}
		return fmt.Errorf("mfs: %s: no position for %q within %d %s units and %d steps",
			s.g.Name, n.Name, s.maxj[typ], typ, s.cs)
	}
}

// commit records a successful placement in the scheduler's incremental
// state: the placement tables and, under chaining, the chain
// accumulator (valid because priority order commits producers first, so
// no successor of id is placed yet).
func (s *scheduler) commit(id dfg.NodeID, typ string, p grid.Pos) {
	s.placed[id] = sched.Placement{Step: p.Step, Type: typ, Index: p.Index}
	s.steps[id] = p.Step
	if s.opt.ClockNs > 0 {
		s.chainAcc[id] = sched.ChainAccAt(s.g, s.steps, s.chainAcc, id, p.Step)
	}
}

// disableOrderedWalk forces bestPosition onto the generic sorted path.
// Tests flip it to cross-check that the ordered bit walk and the sorted
// enumeration pick identical positions.
var disableOrderedWalk = false

// bestPosition returns the cheapest legal position within the move
// window [lo..hi] × [1..cur], filtering occupied cells, footprint
// conflicts, and chaining overflows.
//
// Fast path: when the guiding function certifies (liapunov.Ordered) that
// one of the grid scan orders visits positions in strictly increasing
// energy over this table, the window is walked in that order via the
// table's occupancy index (grid.Table.ScanPlaceable) and the first legal
// position wins. Otherwise the generic path enumerates the window's
// positions and sorts by (energy, step, index), the historical
// semantics; the two paths agree exactly wherever the capability holds,
// because a strict scan order with the (step, index) tie-break is
// precisely the sorted order.
func (s *scheduler) bestPosition(table *grid.Table, id dfg.NodeID, cycles, lo, hi, cur int) (grid.Pos, bool) {
	if lo < 1 {
		lo = 1 // Rect clamped identically; ASAP ≥ 1 makes this a no-op
	}
	if of, ok := s.lf.(liapunov.Ordered); ok && !disableOrderedWalk {
		if ord, ok := of.GridOrder(s.cs, table.Max); ok {
			var best grid.Pos
			found := false
			table.ScanPlaceable(s.g, id, s.excl, ord, lo, hi, cur, cycles, func(p grid.Pos) bool {
				if s.opt.ClockNs > 0 && !s.chainOK(id, p.Step) {
					return true // placeable but the chain overflows; keep walking
				}
				best, found = p, true
				return false
			})
			return best, found
		}
	}
	sc := &s.sortScratch
	sc.pos, sc.val = sc.pos[:0], sc.val[:0]
	for step := lo; step <= hi; step++ { // row-major, as Frame.Positions emitted
		for idx := 1; idx <= cur; idx++ {
			p := grid.Pos{Step: step, Index: idx}
			sc.pos = append(sc.pos, p)
			sc.val = append(sc.val, s.lf.Value(p))
		}
	}
	sort.Stable(sc)
	for _, p := range sc.pos {
		if table.CanPlace(s.g, id, p, cycles) && (s.opt.ClockNs <= 0 || s.chainOK(id, p.Step)) {
			return p, true
		}
	}
	return grid.Pos{}, false
}

// posSorter sorts the generic path's candidate positions by (energy,
// step, index) — the historical sort.SliceStable semantics — over
// buffers that persist on the scheduler, with energies computed once per
// position instead of once per comparison. A concrete sort.Interface on
// a pointer the scheduler already holds keeps the sort allocation-free
// (sort.SliceStable builds a reflect-based swapper per call).
type posSorter struct {
	pos []grid.Pos
	val []float64
}

func (ps *posSorter) Len() int { return len(ps.pos) }

func (ps *posSorter) Less(i, j int) bool {
	if ps.val[i] != ps.val[j] {
		return ps.val[i] < ps.val[j]
	}
	if ps.pos[i].Step != ps.pos[j].Step {
		return ps.pos[i].Step < ps.pos[j].Step
	}
	return ps.pos[i].Index < ps.pos[j].Index
}

func (ps *posSorter) Swap(i, j int) {
	ps.pos[i], ps.pos[j] = ps.pos[j], ps.pos[i]
	ps.val[i], ps.val[j] = ps.val[j], ps.val[i]
}

// windowOf computes an operation's move window against the current
// placement state: the start-step range [lo..hi] and the last
// predecessor-forbidden row ffTop (the paper's FF extent). Placed
// predecessors raise the earliest start; placed successors lower the
// latest start (never in priority order, kept for the inspection entry
// point); chaining admits sharing a step, with the chainOK filter
// verifying the delay budget. lo ≥ ffTop+1 always holds: each
// predecessor contributing end = step+cycles−1 to ffTop also pushes
// lo to end+1.
func (s *scheduler) windowOf(id dfg.NodeID) (lo, hi, ffTop int) {
	n := s.g.Node(id)
	base := s.frames[id]
	lo, hi = base.ASAP, base.ALAP
	ffTop = 0 // last step forbidden by predecessors
	for _, pid := range n.Preds() {
		pp := s.placed[pid]
		if pp.Step == 0 {
			continue
		}
		pred := s.g.Node(pid)
		bound := pp.Step + pred.Cycles
		if s.chainable(pred, n) {
			bound = pp.Step
		}
		if bound > lo {
			lo = bound
		}
		if end := pp.Step + pred.Cycles - 1; end > ffTop && bound > pp.Step {
			ffTop = end
		}
	}
	for _, sid := range n.Succs() {
		sp := s.placed[sid]
		if sp.Step == 0 {
			continue
		}
		succ := s.g.Node(sid)
		bound := sp.Step - n.Cycles
		if s.chainable(n, succ) {
			bound = sp.Step
		}
		if bound < hi {
			hi = bound
		}
	}
	return lo, hi, ffTop
}

// buildFrameSet materializes the PF/RF/FF/MF bitsets of a window — the
// representation recorded in traces and shown by the inspection API.
// The algebra is the historical frameSet construction verbatim, so
// recorded frames are byte-identical to the pre-analytic scheduler's.
func (s *scheduler) buildFrameSet(typ string, lo, hi, ffTop int) *grid.FrameSet {
	maxj := s.maxj[typ]
	cur := s.current[typ]
	pf := grid.Rect(lo, hi, 1, maxj)
	rf := grid.Rect(lo, hi, cur+1, maxj)
	ff := grid.Rect(1, ffTop, 1, maxj)
	mf := pf.Minus(rf.Union(ff))
	return &grid.FrameSet{PF: pf, RF: rf, FF: ff, MF: mf}
}

// frameSet computes the PF/RF/FF/MF of an operation against the current
// placement state (see FramesFor for the exported inspection entry
// point used to reproduce Figure 2).
func (s *scheduler) frameSet(id dfg.NodeID) (*grid.FrameSet, error) {
	n := s.g.Node(id)
	lo, hi, ffTop := s.windowOf(id)
	return s.buildFrameSet(TypeKey(n), lo, hi, ffTop), nil
}

func (s *scheduler) chainable(pred, succ *dfg.Node) bool {
	return s.opt.ClockNs > 0 && pred.Cycles == 1 && succ.Cycles == 1 &&
		!pred.IsLoop() && !succ.IsLoop()
}

// chainOK tentatively assigns id to step and checks the combinational
// chain ending at id still fits the clock period. The incremental
// accumulator (sched.ChainAccAt) is exact here because priority order
// places producers before consumers: the tentative placement can only
// extend chains ending at id, and every other chain was checked when
// its own tail committed — the verdict matches the historical
// full-graph ChainFits walk (pinned by the sched package's
// TestChainAccAtMatchesChainFits).
func (s *scheduler) chainOK(id dfg.NodeID, step int) bool {
	return sched.ChainAccAt(s.g, s.steps, s.chainAcc, id, step) <= s.opt.ClockNs+1e-9
}

func (s *scheduler) finish() (*sched.Schedule, error) {
	out := sched.NewSchedule(s.g, s.cs)
	out.ClockNs = s.opt.ClockNs
	out.Latency = s.opt.Latency
	for typ, p := range s.opt.PipelinedTypes {
		out.PipelinedTypes[typ] = p
	}
	for id, p := range s.placed {
		if p.Step == 0 {
			continue // unplaced (empty graph or internal error; Verify reports it)
		}
		out.Place(dfg.NodeID(id), p)
	}
	if !s.opt.NoTrace {
		out.Trace = &sched.Trace{Fn: s.lf, Steps: s.trace}
	}
	out.Frames = s.frames
	if err := out.Verify(s.opt.Limits); err != nil {
		return nil, fmt.Errorf("mfs: internal: produced illegal schedule: %w", err)
	}
	return out, nil
}
