package mfs

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/op"
)

func TestExpandPipelinedDiffeq(t *testing.T) {
	ex := benchmarks.Diffeq()
	for _, cs := range ex.TimeConstraints {
		lat := ex.Latency(cs)
		s, err := Schedule(ex.Graph, Options{CS: cs, Latency: lat})
		if err != nil {
			t.Fatalf("cs=%d: %v", cs, err)
		}
		x, err := ExpandPipelined(s)
		if err != nil {
			t.Fatalf("cs=%d: %v", cs, err)
		}
		if x.CS != cs+lat {
			t.Errorf("expanded CS = %d, want %d", x.CS, cs+lat)
		}
		if x.Graph.Len() != 2*ex.Graph.Len() {
			t.Errorf("expanded graph has %d nodes, want %d", x.Graph.Len(), 2*ex.Graph.Len())
		}
		// The expansion uses exactly the same FU instances as the folded
		// schedule: overlap adds no hardware.
		folded := s.InstancesPerType()
		expanded := x.InstancesPerType()
		for typ, n := range expanded {
			if n != folded[typ] {
				t.Errorf("cs=%d: expansion changed %s instances: %d vs %d", cs, typ, n, folded[typ])
			}
		}
	}
}

func TestExpandPipelinedRandom(t *testing.T) {
	// Property: every folded schedule expands to a legal two-instance
	// overlap — the §5.5.2 equivalence.
	r := rand.New(rand.NewSource(31))
	kinds := []op.Kind{op.Add, op.Sub, op.Mul, op.And}
	for trial := 0; trial < 15; trial++ {
		g := dfg.New(fmt.Sprintf("fp%d", trial))
		g.AddInput("i0")
		names := []string{"i0"}
		for i := 0; i < 6+r.Intn(10); i++ {
			name := fmt.Sprintf("n%d", i)
			g.AddOp(name, kinds[r.Intn(len(kinds))],
				names[r.Intn(len(names))], names[r.Intn(len(names))])
			names = append(names, name)
		}
		cs := g.CriticalPathCycles() + 2
		lat := cs/2 + 1
		s, err := Schedule(g, Options{CS: cs, Latency: lat})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := ExpandPipelined(s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestExpandPipelinedRejectsUnpipelined(t *testing.T) {
	ex := benchmarks.Facet()
	s, err := Schedule(ex.Graph, Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpandPipelined(s); err == nil {
		t.Error("unpipelined schedule expanded")
	}
}

func TestGanttRendering(t *testing.T) {
	ex := benchmarks.Facet()
	s, err := Schedule(ex.Graph, Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	gantt := s.Gantt()
	for _, want := range []string{"unit", "t1", "t4", "add1", "mul", "+#1"} {
		if !strings.Contains(gantt, want) {
			t.Errorf("Gantt missing %q:\n%s", want, gantt)
		}
	}
	// Multicycle ops extend with dots.
	ar := benchmarks.ARLattice()
	s2, err := Schedule(ar.Graph, Options{CS: 8})
	if err != nil {
		t.Fatal(err)
	}
	if g2 := s2.Gantt(); !strings.Contains(g2, "..") {
		t.Errorf("multicycle continuation missing:\n%s", g2)
	}
}

func TestGanttExclusiveStacking(t *testing.T) {
	g := dfg.New("mx")
	g.AddInput("a")
	x, _ := g.AddOp("x", op.Mul, "a", "a")
	y, _ := g.AddOp("y", op.Mul, "a", "a")
	g.AddOp("ux", op.Add, "x", "a")
	g.AddOp("uy", op.Sub, "y", "a")
	g.Tag(x, dfg.CondTag{Cond: 1, Branch: 0})
	g.Tag(y, dfg.CondTag{Cond: 1, Branch: 1})
	s, err := Schedule(g, Options{CS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if gantt := s.Gantt(); !strings.Contains(gantt, "/") {
		t.Errorf("exclusive co-residents not stacked:\n%s", gantt)
	}
}
