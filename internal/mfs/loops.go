package mfs

import (
	"context"
	"fmt"

	"repro/internal/dfg"
	"repro/internal/op"
	"repro/internal/sched"
)

// LoopDesign is the result of scheduling a hierarchical design with
// folded loops (§5.2): the outer schedule plus one nested LoopDesign per
// loop node, keyed by the loop node's ID in the enclosing graph.
type LoopDesign struct {
	Schedule *sched.Schedule
	Inner    map[dfg.NodeID]*LoopDesign
}

// ScheduleLoops implements the paper's nested-loop procedure: the
// innermost loop bodies are scheduled first, each under its own local
// time constraint (the loop node's Cycles, set by the user per §5.2);
// the enclosing graph then treats each loop as a single multicycle
// operation with that execution time. The same Options apply at every
// level except the time constraint, which is per-loop, and pipelining
// options, which apply only to the outermost level.
func ScheduleLoops(g *dfg.Graph, opt Options) (*LoopDesign, error) {
	return ScheduleLoopsCtx(context.Background(), g, opt)
}

// ScheduleLoopsCtx is ScheduleLoops with cancellation: ctx is observed
// by every nested body schedule and by the outer schedule, so a
// cancelled hierarchical run returns ctx.Err() promptly at any depth.
func ScheduleLoopsCtx(ctx context.Context, g *dfg.Graph, opt Options) (*LoopDesign, error) {
	design := &LoopDesign{Inner: make(map[dfg.NodeID]*LoopDesign)}
	for _, n := range g.Nodes() {
		if !n.IsLoop() {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bodyOpt := opt
		bodyOpt.CS = n.Cycles
		bodyOpt.Latency = 0
		bodyOpt.PipelinedTypes = nil
		inner, err := ScheduleLoopsCtx(ctx, n.Sub, bodyOpt)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("mfs: loop %q: %w", n.Name, err)
		}
		design.Inner[n.ID] = inner
	}
	outer, err := ScheduleCtx(ctx, g, opt)
	if err != nil {
		return nil, err
	}
	design.Schedule = outer
	return design, nil
}

// AddLoopControl appends the paper's loop-control operations to a loop
// body (§5.2: "adding two more operations (increment and comparison)
// into the DFG corresponding to the body of the loop"): given the name
// of the iteration counter input and of the bound input, it adds
// counter+1 and a counter+1 < bound comparison, returning the names of
// the two new signals. Both inputs must already exist in the body.
//
//hls:sharedok construction-phase API: body is the caller's under-construction loop graph, documented to be extended in place, never a scheduled shared input
func AddLoopControl(body *dfg.Graph, counter, bound string) (next, cont string, err error) {
	next = counter + "_next"
	cont = counter + "_cont"
	if err := body.AddInput("one"); err != nil {
		return "", "", err
	}
	if _, err := body.AddOp(next, op.Add, counter, "one"); err != nil {
		return "", "", err
	}
	if _, err := body.AddOp(cont, op.Lt, next, bound); err != nil {
		return "", "", err
	}
	return next, cont, nil
}
