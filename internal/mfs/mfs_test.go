package mfs

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/liapunov"
	"repro/internal/op"
)

func mustSchedule(t *testing.T, g *dfg.Graph, opt Options) map[string]int {
	t.Helper()
	s, err := Schedule(g, opt)
	if err != nil {
		t.Fatalf("Schedule(%s): %v", g.Name, err)
	}
	if err := s.Verify(opt.Limits); err != nil {
		t.Fatalf("Verify(%s): %v", g.Name, err)
	}
	return s.InstancesPerType()
}

func TestFacetTimeConstrained(t *testing.T) {
	// Table 1 row 1: T=4 needs {1*,2+,1-,1/,1&,1|}; T=5 one of each.
	ex := benchmarks.Facet()
	got4 := mustSchedule(t, ex.Graph, Options{CS: 4})
	want4 := map[string]int{"*": 1, "+": 2, "-": 1, "/": 1, "&": 1, "|": 1}
	for typ, n := range want4 {
		if got4[typ] != n {
			t.Errorf("T=4: %s = %d, want %d (full: %v)", typ, got4[typ], n, got4)
		}
	}
	got5 := mustSchedule(t, ex.Graph, Options{CS: 5})
	for typ := range want4 {
		if got5[typ] != 1 {
			t.Errorf("T=5: %s = %d, want 1 (full: %v)", typ, got5[typ], got5)
		}
	}
}

func TestChainedExample(t *testing.T) {
	// Table 1 row 2: with two chained ALU levels per 100ns step the 8-op
	// chain meets T=4 on one adder and one subtractor.
	ex := benchmarks.Chained()
	got := mustSchedule(t, ex.Graph, Options{CS: 4, ClockNs: ex.ClockNs})
	if got["+"] != 1 || got["-"] != 1 {
		t.Errorf("chained T=4: %v, want 1 adder and 1 subtractor", got)
	}
	// Without chaining T=4 is infeasible.
	if _, err := Schedule(ex.Graph, Options{CS: 4}); err == nil {
		t.Error("chained kernel scheduled in 4 steps without chaining")
	}
	// And it works at T=8 without chaining.
	got8 := mustSchedule(t, ex.Graph, Options{CS: 8})
	if got8["+"] != 1 || got8["-"] != 1 {
		t.Errorf("chained T=8 plain: %v", got8)
	}
}

func TestDiffeqBalanced(t *testing.T) {
	// The classic HAL result: 6 multiplications fit T=4 on 2 multipliers.
	ex := benchmarks.Diffeq()
	got := mustSchedule(t, ex.Graph, Options{CS: 4})
	if got["*"] != 2 {
		t.Errorf("diffeq T=4 multipliers = %d, want 2 (full: %v)", got["*"], got)
	}
	if got["-"] != 1 || got["+"] != 1 || got["<"] != 1 {
		t.Errorf("diffeq T=4 ALUs = %v, want 1 each of -,+,<", got)
	}
}

func TestDiffeqResourceConstrained(t *testing.T) {
	ex := benchmarks.Diffeq()
	limits := map[string]int{"*": 1, "+": 1, "-": 1, "<": 1}
	s, err := Schedule(ex.Graph, Options{Limits: limits})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(limits); err != nil {
		t.Fatal(err)
	}
	// 6 serialized multiplications plus the dependent subtract chain: the
	// minimum is 7 steps; a correct resource-constrained MFS finds <= 8.
	if s.CS < 7 || s.CS > 8 {
		t.Errorf("resource-constrained CS = %d, want 7 or 8", s.CS)
	}
	// With 2 multipliers it should approach the time-constrained optimum.
	s2, err := Schedule(ex.Graph, Options{Limits: map[string]int{"*": 2, "+": 1, "-": 1, "<": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s2.CS > 5 {
		t.Errorf("CS with 2 multipliers = %d, want <= 5", s2.CS)
	}
}

func TestResourceConstrainedNeedsLimits(t *testing.T) {
	ex := benchmarks.Facet()
	if _, err := Schedule(ex.Graph, Options{}); err == nil {
		t.Error("CS=0 without limits accepted")
	}
}

func TestInfeasibleCS(t *testing.T) {
	ex := benchmarks.Facet()
	if _, err := Schedule(ex.Graph, Options{CS: 3}); err == nil {
		t.Error("CS below critical path accepted")
	}
}

func TestLatencyRequiresCS(t *testing.T) {
	ex := benchmarks.Diffeq()
	if _, err := Schedule(ex.Graph, Options{Latency: 2}); err == nil {
		t.Error("functional pipelining without time constraint accepted")
	}
}

func TestMutualExclusionSharing(t *testing.T) {
	// Two exclusive multiplications pinned to the same step must share
	// one multiplier.
	g := dfg.New("mx")
	g.AddInput("a")
	x, _ := g.AddOp("x", op.Mul, "a", "a")
	y, _ := g.AddOp("y", op.Mul, "a", "a")
	g.AddOp("ux", op.Add, "x", "a")
	g.AddOp("uy", op.Sub, "y", "a")
	g.Tag(x, dfg.CondTag{Cond: 1, Branch: 0})
	g.Tag(y, dfg.CondTag{Cond: 1, Branch: 1})
	got := mustSchedule(t, g, Options{CS: 2})
	if got["*"] != 1 {
		t.Errorf("exclusive mults use %d multipliers, want 1", got["*"])
	}
	// Without the tags, two are needed.
	g2 := dfg.New("mx2")
	g2.AddInput("a")
	g2.AddOp("x", op.Mul, "a", "a")
	g2.AddOp("y", op.Mul, "a", "a")
	g2.AddOp("ux", op.Add, "x", "a")
	g2.AddOp("uy", op.Sub, "y", "a")
	got2 := mustSchedule(t, g2, Options{CS: 2})
	if got2["*"] != 2 {
		t.Errorf("non-exclusive mults use %d multipliers, want 2", got2["*"])
	}
}

func TestStructuralPipeliningReducesMultipliers(t *testing.T) {
	ex := benchmarks.Bandpass()
	cs := 9
	plain := mustSchedule(t, ex.Graph, Options{CS: cs})
	piped := mustSchedule(t, benchmarks.Bandpass().Graph, Options{
		CS:             cs,
		PipelinedTypes: map[string]bool{"*": true},
	})
	if piped["*"] >= plain["*"] {
		t.Errorf("pipelined multipliers = %d, plain = %d; pipelining should reduce",
			piped["*"], plain["*"])
	}
}

func TestFunctionalPipelining(t *testing.T) {
	ex := benchmarks.Diffeq()
	cs := 8
	lat := ex.Latency(cs) // 4
	s, err := Schedule(ex.Graph, Options{CS: cs, Latency: lat})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(nil); err != nil {
		t.Fatal(err)
	}
	if s.Latency != lat {
		t.Errorf("schedule Latency = %d, want %d", s.Latency, lat)
	}
	// With folding, FU demand cannot be below the folded utilization bound.
	inst := s.InstancesPerType()
	if inst["*"] < (6+lat-1)/lat {
		t.Errorf("multipliers = %d below folded bound", inst["*"])
	}
	// Partition view: every op is in exactly one partition.
	p1, p2 := FunctionalPartition(s)
	if len(p1)+len(p2) != ex.Graph.Len() {
		t.Errorf("partition sizes %d+%d != %d", len(p1), len(p2), ex.Graph.Len())
	}
	if len(p1) == 0 {
		t.Error("empty first partition")
	}
	// Without latency, FunctionalPartition puts everything in p1.
	s0, err := Schedule(ex.Graph, Options{CS: cs})
	if err != nil {
		t.Fatal(err)
	}
	q1, q2 := FunctionalPartition(s0)
	if len(q1) != ex.Graph.Len() || q2 != nil {
		t.Errorf("unpipelined partition = %d/%d", len(q1), len(q2))
	}
}

func TestEWFTrend(t *testing.T) {
	// Table 1 row 6 trend: multipliers shrink 3 -> 2 -> 1 over T=17,19,21
	// and adders stay near 3 -> 2 -> 2.
	ex := benchmarks.EWF()
	var mults, adds []int
	for _, cs := range ex.TimeConstraints {
		got := mustSchedule(t, benchmarks.EWF().Graph, Options{CS: cs})
		mults = append(mults, got["*"])
		adds = append(adds, got["+"])
	}
	for i := 1; i < len(mults); i++ {
		if mults[i] > mults[i-1] {
			t.Errorf("multipliers increased with looser T: %v", mults)
		}
		if adds[i] > adds[i-1] {
			t.Errorf("adders increased with looser T: %v", adds)
		}
	}
	if mults[0] != 3 {
		t.Errorf("T=17 multipliers = %d, want 3 (measured trend %v)", mults[0], mults)
	}
	if mults[len(mults)-1] != 1 {
		t.Errorf("T=21 multipliers = %d, want 1 (trend %v)", mults[len(mults)-1], mults)
	}
	// Structural pipelining at T=17 drops one multiplier.
	piped := mustSchedule(t, benchmarks.EWF().Graph, Options{
		CS:             17,
		PipelinedTypes: map[string]bool{"*": true},
	})
	if piped["*"] >= mults[0] {
		t.Errorf("pipelined T=17 multipliers = %d, want < %d", piped["*"], mults[0])
	}
}

func TestLoopsNested(t *testing.T) {
	// inner loop body: acc' = acc + step
	inner := dfg.New("inner")
	inner.AddInput("acc")
	inner.AddInput("step")
	inner.AddOp("next", op.Add, "acc", "step")

	// middle body: runs the inner loop then scales.
	middle := dfg.New("middle")
	middle.AddInput("a0")
	middle.AddInput("d")
	lid, err := middle.AddLoop("isum", inner, "next", map[string]string{"acc": "a0", "step": "d"})
	if err != nil {
		t.Fatal(err)
	}
	middle.SetCycles(lid, 2) // inner local time constraint
	middle.AddOp("scaled", op.Mul, "isum", "d")

	outer := dfg.New("outer")
	outer.AddInput("x")
	outer.AddInput("y")
	oid, err := outer.AddLoop("msum", middle, "scaled", map[string]string{"a0": "x", "d": "y"})
	if err != nil {
		t.Fatal(err)
	}
	outer.SetCycles(oid, 4) // middle local time constraint
	outer.AddOp("out", op.Add, "msum", "y")

	design, err := ScheduleLoops(outer, Options{CS: 5})
	if err != nil {
		t.Fatal(err)
	}
	if design.Schedule == nil || design.Schedule.CS != 5 {
		t.Fatal("outer schedule missing")
	}
	mid, ok := design.Inner[oid]
	if !ok || mid.Schedule.CS != 4 {
		t.Fatalf("middle schedule missing or wrong cs: %+v", mid)
	}
	innerDesign, ok := mid.Inner[lid]
	if !ok || innerDesign.Schedule.CS != 2 {
		t.Fatalf("inner schedule missing or wrong cs")
	}
	if err := design.Schedule.Verify(nil); err != nil {
		t.Error(err)
	}
	if err := mid.Schedule.Verify(nil); err != nil {
		t.Error(err)
	}
}

func TestAddLoopControl(t *testing.T) {
	body := dfg.New("body")
	body.AddInput("i")
	body.AddInput("n")
	body.AddOp("work", op.Add, "i", "i")
	next, cont, err := AddLoopControl(body, "i", "n")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := body.Lookup(next); !ok {
		t.Errorf("increment %q missing", next)
	}
	if _, ok := body.Lookup(cont); !ok {
		t.Errorf("comparison %q missing", cont)
	}
	vals, err := body.Eval(map[string]int64{"i": 3, "n": 10, "one": 1})
	if err != nil {
		t.Fatal(err)
	}
	if vals[next] != 4 || vals[cont] != 1 {
		t.Errorf("loop control evaluated to %v", vals)
	}
	if _, _, err := AddLoopControl(body, "i", "n"); err == nil {
		t.Error("second AddLoopControl accepted (duplicate names)")
	}
}

func TestFramesForInspection(t *testing.T) {
	ex := benchmarks.Diffeq()
	// Inspect a mid-priority multiplication.
	var target dfg.NodeID = -1
	for _, n := range ex.Graph.Nodes() {
		if n.Name == "m4" {
			target = n.ID
		}
	}
	if target < 0 {
		t.Fatal("no m4 node")
	}
	in, err := FramesFor(ex.Graph, Options{CS: 4}, target)
	if err != nil {
		t.Fatal(err)
	}
	if in.Frames.MF.Empty() {
		t.Error("move frame empty at placement time")
	}
	if !in.Frames.MF.Contains(in.Chosen) {
		t.Errorf("chosen %v not in MF", in.Chosen)
	}
	// MF = PF − (RF ∪ FF) must hold exactly.
	recomputed := in.Frames.PF.Minus(in.Frames.RF.Union(in.Frames.FF))
	if !recomputed.Equal(in.Frames.MF) {
		t.Errorf("|MF| = %d, recomputed %d", in.Frames.MF.Len(), recomputed.Len())
	}
	out := in.Render()
	for _, want := range []string{"m4", "r*", "legend"} {
		if !contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if _, err := FramesFor(ex.Graph, Options{}, target); err == nil {
		t.Error("FramesFor without CS accepted")
	}
	if _, err := FramesFor(ex.Graph, Options{CS: 4}, 9999); err == nil {
		t.Error("FramesFor with bogus target accepted")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		})())
}

// randomDAG builds a reproducible random DAG with l nodes over the kinds
// given; ~20% of multiplications are 2-cycle.
func randomDAG(r *rand.Rand, name string, l int) *dfg.Graph {
	g := dfg.New(name)
	g.AddInput("i0")
	g.AddInput("i1")
	kinds := []op.Kind{op.Add, op.Sub, op.Mul, op.Lt, op.And}
	names := []string{"i0", "i1"}
	for i := 0; i < l; i++ {
		k := kinds[r.Intn(len(kinds))]
		a := names[r.Intn(len(names))]
		b := names[r.Intn(len(names))]
		name := fmt.Sprintf("n%d", i)
		id, err := g.AddOp(name, k, a, b)
		if err != nil {
			panic(err)
		}
		if k == op.Mul && r.Intn(5) == 0 {
			g.SetCycles(id, 2)
		}
		names = append(names, name)
	}
	return g
}

func TestRandomDAGsScheduleAndVerify(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		g := randomDAG(r, fmt.Sprintf("rand%d", trial), 10+r.Intn(25))
		cp := g.CriticalPathCycles()
		cs := cp + r.Intn(4)
		s, err := Schedule(g, Options{CS: cs})
		if err != nil {
			t.Fatalf("trial %d (cs=%d, cp=%d): %v", trial, cs, cp, err)
		}
		if err := s.Verify(nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRandomDAGsResourceConstrained(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(r, fmt.Sprintf("rc%d", trial), 8+r.Intn(15))
		limits := map[string]int{"+": 1, "-": 1, "*": 1, "<": 1, "&": 1}
		s, err := Schedule(g, Options{Limits: limits})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Verify(limits); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Sanity: a single-unit schedule can never beat the serialization
		// bound for its busiest type.
		byType := make(map[string]int)
		for _, n := range g.Nodes() {
			byType[TypeKey(n)] += n.Cycles
		}
		for _, load := range byType {
			if s.CS < load {
				t.Fatalf("trial %d: CS %d below serialization bound %d", trial, s.CS, load)
			}
		}
	}
}

func TestRandomChaining(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(r, fmt.Sprintf("ch%d", trial), 12)
		// MFS is greedy without backtracking, so a pathologically tight
		// chained deadline can dead-end; a real user loosens cs one step
		// at a time. Every trial must succeed within small slack, and
		// every success must verify.
		cp := g.CriticalPathCycles()
		var lastErr error
		ok := false
		for cs := cp; cs <= cp+6 && !ok; cs++ {
			s, err := Schedule(g, Options{CS: cs, ClockNs: 100})
			if err != nil {
				lastErr = err
				continue
			}
			if err := s.Verify(nil); err != nil {
				t.Fatalf("trial %d cs=%d: %v", trial, cs, err)
			}
			ok = true
		}
		if !ok {
			t.Fatalf("trial %d: no chained schedule up to cp+6: %v", trial, lastErr)
		}
	}
}

func TestLiapunovOverride(t *testing.T) {
	// Ablation hook: forcing the resource-constrained function under a
	// time constraint still yields a legal schedule (it just packs
	// columns first).
	ex := benchmarks.Facet()
	s, err := Schedule(ex.Graph, Options{CS: 5, Liapunov: liapunov.ResourceConstrained{CS: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(nil); err != nil {
		t.Fatal(err)
	}
}

func TestUserLimitsRespected(t *testing.T) {
	ex := benchmarks.Diffeq()
	limits := map[string]int{"*": 3}
	s, err := Schedule(ex.Graph, Options{CS: 4, Limits: limits})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.InstancesPerType()["*"]; got > 3 {
		t.Errorf("multipliers = %d exceeds user limit", got)
	}
	// An impossible limit fails cleanly.
	if _, err := Schedule(ex.Graph, Options{CS: 4, Limits: map[string]int{"*": 1}}); err == nil {
		t.Error("impossible limit accepted")
	}
}
