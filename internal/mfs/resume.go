package mfs

import (
	"context"
	"fmt"

	"repro/internal/dfg"
	"repro/internal/sched"
)

// ResumeCtx re-schedules g after a local edit by replaying the recorded
// trajectory of a previous run instead of re-deriving every decision.
// prev is the schedule of the pre-edit graph (its Graph, Frames and
// Trace fields must be the ones the scheduler produced); oldFrames is
// prev.Frames remapped onto g's node IDs (entries for freshly added
// nodes absent or past the end); seeds are the node IDs whose timing
// inputs the edit changed, as for sched.UpdateFrames.
//
// The result is always bit-identical to ScheduleCtx(g, opt) — replay is
// an optimization, never a semantic shortcut. It rests on an induction:
// if the fresh run's initial bounds (max_j/current_j) match the old
// run's, then as long as each trace step's node matches the new priority
// order's node (structural equivalence), its frames match, and its
// max_j still holds, the scheduler state after the prefix is identical
// to the old run's — so the recorded decision IS what placeOne would
// derive, and it is committed directly: no window walk, no energy
// comparison. The first divergence switches permanently to placeOne,
// which from the common state continues exactly as a fresh run would.
// Whenever a precondition fails (no trace — e.g. the previous run had
// NoTrace set —, a widened previous run, resource-constrained mode, or
// changed initial bounds), the function falls back to the full
// ScheduleCtx, so callers can treat it as a drop-in Schedule. An edit
// that makes the constraint infeasible returns the same InfeasibleError
// a fresh run would.
func ResumeCtx(ctx context.Context, g *dfg.Graph, opt Options, prev *sched.Schedule, oldFrames sched.Frames, seeds []dfg.NodeID) (*sched.Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("mfs: %w", err)
	}
	if opt.CS == 0 || prev == nil || prev.Trace == nil || prev.Frames == nil || prev.Graph == nil {
		return ScheduleCtx(ctx, g, opt)
	}
	frames, err := sched.UpdateFrames(g, opt.CS, opt.ClockNs, oldFrames, seeds)
	if err != nil {
		return nil, fmt.Errorf("mfs: %w", err)
	}
	s := newScheduler(g, opt.CS, opt, false, frames)
	oldMaxj, oldCur := boundsFor(prev.Graph, opt.CS, opt, prev.Frames)
	if !intMapsEqual(s.maxj, oldMaxj) || !intMapsEqual(s.current, oldCur) {
		return scheduleTimeConstrained(ctx, g, opt)
	}
	// A widened previous run (scheduleTimeConstrained's retry loop)
	// started from larger bounds than the fresh recomputation above, so
	// its decisions — for every type, not only the widened ones — were
	// taken under a different Liapunov normalization. Such traces are
	// detectable exactly: every step of an unbounded type records the
	// widened max_j.
	for i := range prev.Trace.Steps {
		if st := &prev.Trace.Steps[i]; st.MaxJ != oldMaxj[st.Type] {
			return scheduleTimeConstrained(ctx, g, opt)
		}
	}
	steps := prev.Trace.Steps
	replaying := true
	for i, id := range sched.PriorityOrder(g, frames) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if replaying {
			if i < len(steps) && s.replayStep(id, &steps[i], prev) {
				continue
			}
			replaying = false
		}
		if err := s.placeOne(id); err != nil {
			// A fresh run that fails mid-placement retries with widened
			// bounds; reproduce that exactly rather than erroring.
			return scheduleTimeConstrained(ctx, g, opt)
		}
	}
	return s.finish()
}

// replayStep commits the recorded decision st for new-graph node id if
// every equivalence precondition holds; it returns false (leaving the
// scheduler untouched) on any mismatch. The trace step it appends is
// lightweight — no frame bitsets — which the lint auditors treat as an
// allocation-style step (nothing to audit, placement still joins the
// replay prefix) and which remains sufficient for a future resume.
func (s *scheduler) replayStep(id dfg.NodeID, st *sched.TraceStep, prev *sched.Schedule) bool {
	n := s.g.Node(id)
	if int(st.Node) >= prev.Graph.Len() {
		return false
	}
	if !sched.NodesEquivalent(prev.Graph.Node(st.Node), n) {
		return false
	}
	typ := TypeKey(n)
	if st.Type != typ || st.MaxJ != s.maxj[typ] {
		return false
	}
	if s.frames[id] != prev.Frames[st.Node] {
		return false
	}
	if st.CurrentJ < s.current[typ] || st.CurrentJ > s.maxj[typ] {
		return false
	}
	table := s.tables[typ]
	if err := table.Place(s.g, id, st.Pos, n.Cycles); err != nil {
		return false // Place is atomic on failure, state is unchanged
	}
	s.current[typ] = st.CurrentJ
	s.commit(id, typ, st.Pos)
	if !s.opt.NoTrace {
		s.trace = append(s.trace, sched.TraceStep{
			Node: id, Type: typ,
			CurrentJ: st.CurrentJ, MaxJ: st.MaxJ,
			Pos: st.Pos, Energy: st.Energy,
		})
	}
	return true
}

// boundsFor computes the initial max_j/current_j maps a fresh
// time-constrained run over (g, cs, frames) would start from, without
// building the placement tables.
func boundsFor(g *dfg.Graph, cs int, opt Options, frames sched.Frames) (maxj, current map[string]int) {
	s := &scheduler{
		g: g, cs: cs, opt: opt,
		frames:  frames,
		maxj:    make(map[string]int),
		current: make(map[string]int),
	}
	s.initBounds()
	return s.maxj, s.current
}

func intMapsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	//hls:orderok set-equality test; the verdict is the same whatever order the keys arrive in
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// Resume is ResumeCtx without cancellation.
func Resume(g *dfg.Graph, opt Options, prev *sched.Schedule, oldFrames sched.Frames, seeds []dfg.NodeID) (*sched.Schedule, error) {
	return ResumeCtx(context.Background(), g, opt, prev, oldFrames, seeds)
}
