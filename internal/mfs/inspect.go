package mfs

import (
	"fmt"

	"repro/internal/dfg"
	"repro/internal/grid"
	"repro/internal/sched"
)

// Inspection is a snapshot of the scheduler state at the moment one
// operation is about to be placed: the frames it sees and its type's
// placement table with every earlier operation already committed. It is
// what the paper's Figure 2 draws.
type Inspection struct {
	Node   *dfg.Node
	Frames *grid.FrameSet
	Table  *grid.Table
	Chosen grid.Pos // the position MFS then selects
}

// FramesFor runs MFS until operation target is about to be placed and
// returns the frame snapshot, then lets the run complete so the chosen
// position is also reported. It fails if the run fails before reaching
// the target.
func FramesFor(g *dfg.Graph, opt Options, target dfg.NodeID) (*Inspection, error) {
	if opt.CS == 0 {
		return nil, fmt.Errorf("mfs: FramesFor needs a time constraint")
	}
	frames, err := sched.ComputeFrames(g, opt.CS, opt.ClockNs)
	if err != nil {
		return nil, fmt.Errorf("mfs: %w", err)
	}
	s := newScheduler(g, opt.CS, opt, false, frames)

	for _, id := range sched.PriorityOrder(g, frames) {
		var snap *Inspection
		if id == target {
			fs, err := s.frameSet(id)
			if err != nil {
				return nil, err
			}
			snap = &Inspection{Node: g.Node(id), Frames: fs, Table: s.tables[TypeKey(g.Node(id))]}
		}
		if err := s.placeOne(id); err != nil {
			return nil, err
		}
		if id == target {
			// Stop here so the snapshot shows exactly the state the
			// target was placed against.
			p := s.placed[id]
			snap.Chosen = grid.Pos{Step: p.Step, Index: p.Index}
			return snap, nil
		}
	}
	return nil, fmt.Errorf("mfs: target node %d not found", target)
}

// Render draws the inspection as ASCII art in the style of Figure 2: the
// placed operations as X, the frames as P/R/F/M glyphs, and the chosen
// position highlighted.
func (in *Inspection) Render() string {
	labels := map[grid.Pos]string{in.Chosen: "r*"}
	return fmt.Sprintf("operation %q (frames at its placement)\n%s",
		in.Node.Name, grid.Render(in.Table, in.Frames, labels))
}
