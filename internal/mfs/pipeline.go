package mfs

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/sched"
)

// FunctionalPartition reports the two-partition view of a functionally
// pipelined schedule from §5.5.2: with cs control steps and latency L the
// paper splits the doubled DFG at step ⌈(cs+L)/2⌉ — DFGp1 holds the
// operations scheduled at or before the split, DFGp2 the rest. The folded
// schedule produced with Options.Latency already satisfies the modular
// resource constraints the two-instance construction enforces; this
// function exposes the partition for reporting and tests.
func FunctionalPartition(s *sched.Schedule) (p1, p2 []dfg.NodeID) {
	if s.Latency <= 0 {
		for _, n := range s.Graph.Nodes() {
			p1 = append(p1, n.ID)
		}
		return p1, nil
	}
	split := (s.CS + s.Latency + 1) / 2
	for _, n := range s.Graph.Nodes() {
		if s.Placements[n.ID].Step <= split {
			p1 = append(p1, n.ID)
		} else {
			p2 = append(p2, n.ID)
		}
	}
	sort.Slice(p1, func(i, j int) bool { return p1[i] < p1[j] })
	sort.Slice(p2, func(i, j int) bool { return p2[i] < p2[j] })
	return p1, p2
}

// ExpandPipelined materializes one period of a functionally pipelined
// schedule as the paper's two-instance construction (§5.5.2 step 1): the
// DFG is doubled, the second instance starts L steps after the first,
// and both run on the same functional units over cs+L control steps.
// The expansion carries no Latency annotation, so the ordinary verifier
// checks it with plain (non-modular) resource rules — demonstrating that
// the folded schedule's modulo-L conflict constraints are exactly the
// overlap constraints of two consecutive loop initiations.
func ExpandPipelined(s *sched.Schedule) (*sched.Schedule, error) {
	if s.Latency <= 0 {
		return nil, fmt.Errorf("mfs: ExpandPipelined needs a functionally pipelined schedule")
	}
	g := s.Graph
	double := dfg.New(g.Name + "_x2")
	for _, in := range g.Inputs() {
		if err := double.AddInput(in); err != nil {
			return nil, err
		}
		if err := double.AddInput(in + "#2"); err != nil {
			return nil, err
		}
	}
	// Instance 1 keeps the original signal names; instance 2's signals
	// and inputs carry the "#2" suffix.
	if err := addInstanceWithSuffix(g, double, ""); err != nil {
		return nil, err
	}
	if err := addInstanceWithSuffix(g, double, "#2"); err != nil {
		return nil, err
	}

	out := sched.NewSchedule(double, s.CS+s.Latency)
	out.ClockNs = s.ClockNs
	for typ, on := range s.PipelinedTypes {
		out.PipelinedTypes[typ] = on
	}
	for _, n := range g.Nodes() {
		p, ok := s.Placements[n.ID]
		if !ok {
			return nil, fmt.Errorf("mfs: node %q unscheduled", n.Name)
		}
		n1, _ := double.Lookup(n.Name)
		n2, _ := double.Lookup(n.Name + "#2")
		out.Place(n1.ID, p)
		out.Place(n2.ID, sched.Placement{Step: p.Step + s.Latency, Type: p.Type, Index: p.Index})
	}
	if err := out.Verify(nil); err != nil {
		return nil, fmt.Errorf("mfs: pipelined expansion is illegal: %w", err)
	}
	return out, nil
}

// addInstanceWithSuffix copies g's operations into double with every
// signal name suffixed; inputs are assumed to exist already under the
// suffixed names (the empty suffix reuses the shared input names).
func addInstanceWithSuffix(g *dfg.Graph, double *dfg.Graph, suffix string) error {
	inputs := make(map[string]bool)
	for _, in := range g.Inputs() {
		inputs[in] = true
	}
	for _, n := range g.Nodes() {
		if n.IsLoop() {
			return fmt.Errorf("mfs: ExpandPipelined does not support nested loop nodes")
		}
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			if inputs[a] {
				if suffix == "" {
					args[i] = a
				} else {
					args[i] = a + suffix
				}
			} else {
				args[i] = a + suffix
			}
		}
		id, err := double.AddOp(n.Name+suffix, n.Op, args...)
		if err != nil {
			return err
		}
		if err := double.SetCycles(id, n.Cycles); err != nil {
			return err
		}
		if err := double.SetDelayNs(id, n.DelayNs); err != nil {
			return err
		}
		if len(n.Excl) > 0 {
			if err := double.Tag(id, n.Excl...); err != nil {
				return err
			}
		}
	}
	return nil
}
