package mfs

import (
	"testing"

	"repro/internal/dfg"
	"repro/internal/grid"
	"repro/internal/op"
	"repro/internal/sched"
)

// TestIndexedWalkMatchesDisabledIndex is the tentpole's cross-check at
// the MFS layer, in the mold of TestOrderedWalkMatchesSortedFallback:
// disabling the occupancy index (grid.DisableIndex) must reproduce the
// indexed engine's schedule AND its recorded trace bit for bit on every
// benchmark × constraint × chaining/pipelining variant, plus the
// exclusion-sharing graph that exercises the CanPlace fallback.
func TestIndexedWalkMatchesDisabledIndex(t *testing.T) {
	type caseT struct {
		name string
		g    *dfg.Graph
		opt  Options
	}
	var cases []caseT
	for _, tc := range equivCases(t) {
		cases = append(cases, caseT{name: tc.name, g: tc.ex.Graph, opt: tc.opt})
	}
	mg := dfg.New("mx-idx")
	if err := mg.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	x, _ := mg.AddOp("x", op.Mul, "a", "a")
	y, _ := mg.AddOp("y", op.Mul, "a", "a")
	mg.AddOp("ux", op.Add, "x", "a")
	mg.AddOp("uy", op.Sub, "y", "a")
	mg.Tag(x, dfg.CondTag{Cond: 1, Branch: 0})
	mg.Tag(y, dfg.CondTag{Cond: 1, Branch: 1})
	cases = append(cases, caseT{name: "mx/T=2/exclusion", g: mg, opt: Options{CS: 2}})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := Schedule(tc.g, tc.opt)
			if err != nil {
				t.Fatalf("indexed: %v", err)
			}
			grid.DisableIndex = true
			defer func() { grid.DisableIndex = false }()
			slow, err := Schedule(tc.g, tc.opt)
			grid.DisableIndex = false
			if err != nil {
				t.Fatalf("index disabled: %v", err)
			}
			comparePlacements(t, tc.name, fast, slow)
			compareTraces(t, tc.name, fast.Trace, slow.Trace)
		})
	}
}

func compareTraces(t *testing.T, name string, a, b *sched.Trace) {
	t.Helper()
	if a.Equal(b) {
		return
	}
	if a == nil || b == nil || len(a.Steps) != len(b.Steps) {
		t.Fatalf("%s: traces differ in length", name)
	}
	for i := range a.Steps {
		if !a.Steps[i].Equal(&b.Steps[i]) {
			t.Fatalf("%s: trace step %d diverges: (%d %s %v %g) vs (%d %s %v %g)",
				name, i,
				a.Steps[i].Node, a.Steps[i].Type, a.Steps[i].Pos, a.Steps[i].Energy,
				b.Steps[i].Node, b.Steps[i].Type, b.Steps[i].Pos, b.Steps[i].Energy)
		}
	}
	t.Fatalf("%s: traces differ", name)
}
