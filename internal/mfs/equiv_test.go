package mfs

// Bit-for-bit equivalence of the bitset frame engine against the
// historical map-based semantics. The reference scheduler below
// reimplements the pre-bitset placement inner loop exactly as it was:
// frames as map[grid.Pos]bool with Rect/Union/Minus as map operations,
// and position selection as "materialize the move frame's positions,
// stable-sort by (energy, step, index), take the first legal one". The
// test replays it on every benchmark, under both §3.1 guiding functions
// and with chaining on and off, and asserts the production engine
// produced the identical Schedule (every node's step, type and index)
// and the identical Trace (commit order, chosen positions, energies,
// and recorded frame contents).

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/grid"
	"repro/internal/sched"
)

// posSet is the historical frame representation.
type posSet map[grid.Pos]bool

func refRect(stepLo, stepHi, idxLo, idxHi int) posSet {
	f := make(posSet)
	for s := stepLo; s <= stepHi; s++ {
		for i := idxLo; i <= idxHi; i++ {
			f[grid.Pos{Step: s, Index: i}] = true
		}
	}
	return f
}

func refUnion(a, b posSet) posSet {
	out := make(posSet, len(a)+len(b))
	for p := range a {
		out[p] = true
	}
	for p := range b {
		out[p] = true
	}
	return out
}

func refMinus(a, b posSet) posSet {
	out := make(posSet, len(a))
	for p := range a {
		if !b[p] {
			out[p] = true
		}
	}
	return out
}

// refCommit is one reference placement decision, for trace comparison.
type refCommit struct {
	node   dfg.NodeID
	typ    string
	pos    grid.Pos
	energy float64
	mf     posSet
}

// refRunOnce is the historical fixed-cs run. It borrows the production
// initialization (bounds, guiding function, tables — none of which
// changed representation) and then schedules with the old map algebra
// and the old sorted selection.
func refRunOnce(g *dfg.Graph, cs int, opt Options, resource bool, frames sched.Frames, extraMax ...int) (*sched.Schedule, []refCommit, error) {
	s := newScheduler(g, cs, opt, resource, frames, extraMax...)
	placed := make(map[dfg.NodeID]sched.Placement, g.Len())
	steps := make([]int, g.Len())
	var commits []refCommit
	for _, id := range sched.PriorityOrder(g, frames) {
		n := g.Node(id)
		typ := TypeKey(n)
		table := s.tables[typ]
		for {
			// Old frameSet, with map rectangles.
			base := frames[id]
			lo, hi := base.ASAP, base.ALAP
			ffTop := 0
			for _, pid := range n.Preds() {
				pp, ok := placed[pid]
				if !ok {
					continue
				}
				pred := g.Node(pid)
				bound := pp.Step + pred.Cycles
				if s.chainable(pred, n) {
					bound = pp.Step
				}
				if bound > lo {
					lo = bound
				}
				if end := pp.Step + pred.Cycles - 1; end > ffTop && bound > pp.Step {
					ffTop = end
				}
			}
			for _, sid := range n.Succs() {
				sp, ok := placed[sid]
				if !ok {
					continue
				}
				succ := g.Node(sid)
				bound := sp.Step - n.Cycles
				if s.chainable(n, succ) {
					bound = sp.Step
				}
				if bound < hi {
					hi = bound
				}
			}
			maxj, cur := s.maxj[typ], s.current[typ]
			pf := refRect(lo, hi, 1, maxj)
			rf := refRect(lo, hi, cur+1, maxj)
			ff := refRect(1, ffTop, 1, maxj)
			mf := refMinus(pf, refUnion(rf, ff))

			// Old bestPosition: positions sorted by (step, index) first
			// (the map grid's Positions() contract), then stable-sorted
			// by energy — i.e. a full (energy, step, index) order.
			positions := make([]grid.Pos, 0, len(mf))
			for p := range mf {
				positions = append(positions, p)
			}
			sort.Slice(positions, func(i, j int) bool {
				vi, vj := s.lf.Value(positions[i]), s.lf.Value(positions[j])
				if vi != vj {
					return vi < vj
				}
				if positions[i].Step != positions[j].Step {
					return positions[i].Step < positions[j].Step
				}
				return positions[i].Index < positions[j].Index
			})
			committed := false
			for _, p := range positions {
				if !table.CanPlace(g, id, p, n.Cycles) {
					continue
				}
				if opt.ClockNs > 0 && !sched.ChainFits(g, opt.ClockNs, steps, id, p.Step) {
					continue
				}
				if err := table.Place(g, id, p, n.Cycles); err != nil {
					return nil, nil, err
				}
				placed[id] = sched.Placement{Step: p.Step, Type: typ, Index: p.Index}
				steps[id] = p.Step
				commits = append(commits, refCommit{
					node: id, typ: typ, pos: p, energy: s.lf.Value(p), mf: mf,
				})
				committed = true
				break
			}
			if committed {
				break
			}
			if s.current[typ] < s.maxj[typ] {
				s.current[typ]++
				continue
			}
			return nil, nil, fmt.Errorf("ref: no position for %q", n.Name)
		}
	}
	out := sched.NewSchedule(g, cs)
	out.ClockNs = opt.ClockNs
	out.Latency = opt.Latency
	for typ, p := range opt.PipelinedTypes {
		out.PipelinedTypes[typ] = p
	}
	for id, p := range placed {
		out.Place(id, p)
	}
	return out, commits, nil
}

// refSchedule mirrors ScheduleCtx's search structure over refRunOnce:
// fixed-cs with widening retries under a time constraint, sequential
// smallest-feasible-cs search under a resource constraint.
func refSchedule(g *dfg.Graph, opt Options) (*sched.Schedule, []refCommit, error) {
	if opt.CS > 0 {
		frames, err := sched.ComputeFrames(g, opt.CS, opt.ClockNs)
		if err != nil {
			return nil, nil, err
		}
		s, c, err := refRunOnce(g, opt.CS, opt, false, frames)
		if err == nil {
			return s, c, nil
		}
		for extra := 1; extra <= 3; extra++ {
			s, c, retryErr := refRunOnce(g, opt.CS, opt, false, frames, extra)
			if retryErr == nil {
				return s, c, nil
			}
		}
		return nil, nil, err
	}
	lo := g.CriticalPathCycles()
	if lo < 1 {
		lo = 1
	}
	hi := opt.MaxCS
	if hi == 0 {
		hi = 4*lo + 8
	}
	frames, err := sched.ComputeFrames(g, lo, opt.ClockNs)
	if err != nil {
		return nil, nil, err
	}
	for cs := lo; cs <= hi; cs++ {
		s, c, err := refRunOnce(g, cs, opt, true, frames.Shifted(cs-lo))
		if err == nil {
			return s, c, nil
		}
	}
	return nil, nil, fmt.Errorf("ref: no schedule within %d steps", hi)
}

// equivCase is one (benchmark, options) configuration under test.
type equivCase struct {
	name string
	ex   *benchmarks.Example
	opt  Options
}

func equivCases(t *testing.T) []equivCase {
	t.Helper()
	var cases []equivCase
	for _, ex := range benchmarks.All() {
		piped := make(map[string]bool)
		for _, sym := range ex.PipelinedOps {
			piped[sym] = true
		}
		for _, cs := range ex.TimeConstraints {
			opt := Options{CS: cs, ClockNs: ex.ClockNs}
			if ex.Latency != nil {
				opt.Latency = ex.Latency(cs)
			}
			cases = append(cases, equivCase{
				name: fmt.Sprintf("%s/T=%d/time", ex.Name, cs), ex: ex, opt: opt,
			})
			// Chaining toggled: off for the chained example, on (with a
			// permissive clock; the benchmark graphs leave DelayNs at
			// zero) for the others — both paths must still agree.
			alt := opt
			if ex.ClockNs > 0 {
				// Chaining off needs one step per dependency level again.
				alt.ClockNs = 0
				if cp := ex.Graph.CriticalPathCycles(); cp > alt.CS {
					alt.CS = cp
				}
			} else {
				alt.ClockNs = 100
			}
			cases = append(cases, equivCase{
				name: fmt.Sprintf("%s/T=%d/time/chain-toggled", ex.Name, cs), ex: ex, opt: alt,
			})
			if len(ex.PipelinedOps) > 0 {
				sp := opt
				sp.PipelinedTypes = piped
				cases = append(cases, equivCase{
					name: fmt.Sprintf("%s/T=%d/time/pipelined", ex.Name, cs), ex: ex, opt: sp,
				})
			}
		}
		// Resource-constrained (the dual guiding function): limits taken
		// from the tightest time-constrained run's FU usage.
		tc := Options{CS: ex.TimeConstraints[0], ClockNs: ex.ClockNs}
		if ex.Latency != nil {
			tc.Latency = ex.Latency(tc.CS)
		}
		s, err := Schedule(ex.Graph, tc)
		if err != nil {
			t.Fatalf("%s: seed run: %v", ex.Name, err)
		}
		for _, clock := range []float64{0, 100} {
			cases = append(cases, equivCase{
				name: fmt.Sprintf("%s/resource/clock=%g", ex.Name, clock),
				ex:   ex,
				opt:  Options{Limits: s.InstancesPerType(), ClockNs: clock, Parallelism: 1},
			})
		}
	}
	return cases
}

func comparePlacements(t *testing.T, name string, got, want *sched.Schedule) {
	t.Helper()
	if got.CS != want.CS {
		t.Errorf("%s: cs %d, reference %d", name, got.CS, want.CS)
	}
	for _, n := range got.Graph.Nodes() {
		gp, wp := got.Placements[n.ID], want.Placements[n.ID]
		if gp != wp {
			t.Errorf("%s: node %q placed %+v, reference %+v", name, n.Name, gp, wp)
		}
	}
}

// TestBitsetEngineMatchesMapReference is the golden equivalence test of
// the representation change: on every benchmark, under both guiding
// functions, chaining on and off, the engine's schedule and trace must
// match the map-semantics reference bit for bit.
func TestBitsetEngineMatchesMapReference(t *testing.T) {
	for _, tc := range equivCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Schedule(tc.ex.Graph, tc.opt)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			want, commits, err := refSchedule(tc.ex.Graph, tc.opt)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			comparePlacements(t, tc.name, got, want)

			// Trace equivalence: same commit order, same positions and
			// energies, same recorded move-frame contents.
			steps := got.Trace.Steps
			if len(steps) != len(commits) {
				t.Fatalf("trace has %d steps, reference %d", len(steps), len(commits))
			}
			for i, c := range commits {
				st := steps[i]
				if st.Node != c.node || st.Type != c.typ || st.Pos != c.pos || st.Energy != c.energy {
					t.Fatalf("trace step %d: (%d %s %v %g), reference (%d %s %v %g)",
						i, st.Node, st.Type, st.Pos, st.Energy, c.node, c.typ, c.pos, c.energy)
				}
				if st.MF.Len() != len(c.mf) {
					t.Fatalf("trace step %d: |MF| = %d, reference %d", i, st.MF.Len(), len(c.mf))
				}
				for _, p := range st.MF.Positions() {
					if !c.mf[p] {
						t.Fatalf("trace step %d: MF contains %v, reference does not", i, p)
					}
				}
			}
		})
	}
}

// TestOrderedWalkMatchesSortedFallback cross-checks bestPosition's two
// paths: forcing the generic sorted enumeration must reproduce the
// ordered bit walk's schedule exactly on every configuration.
func TestOrderedWalkMatchesSortedFallback(t *testing.T) {
	for _, tc := range equivCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := Schedule(tc.ex.Graph, tc.opt)
			if err != nil {
				t.Fatalf("ordered walk: %v", err)
			}
			disableOrderedWalk = true
			defer func() { disableOrderedWalk = false }()
			slow, err := Schedule(tc.ex.Graph, tc.opt)
			if err != nil {
				t.Fatalf("sorted fallback: %v", err)
			}
			comparePlacements(t, tc.name, fast, slow)
		})
	}
}
