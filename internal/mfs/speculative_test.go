package mfs

import (
	"fmt"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/op"
)

// symbolLimits builds a resource-limit map covering every op symbol in
// the example's graph.
func symbolLimits(ex *benchmarks.Example, n int) map[string]int {
	limits := make(map[string]int)
	for _, node := range ex.Graph.Nodes() {
		limits[TypeKey(node)] = n
	}
	return limits
}

// TestSpeculativeSearchMatchesSequential is the determinism guard for
// the parallel resource-constrained mode: on every benchmark graph and
// several limit tightnesses, the speculative windowed search must return
// the same schedule — same cs and same placement of every operation —
// as the sequential cs loop.
func TestSpeculativeSearchMatchesSequential(t *testing.T) {
	for _, ex := range benchmarks.All() {
		for _, n := range []int{1, 2} {
			opt := Options{Limits: symbolLimits(ex, n), ClockNs: ex.ClockNs}

			seqOpt := opt
			seqOpt.Parallelism = 1
			want, err := Schedule(ex.Graph, seqOpt)
			if err != nil {
				t.Fatalf("%s limits=%d sequential: %v", ex.Name, n, err)
			}

			for _, workers := range []int{2, 4, 16} {
				parOpt := opt
				parOpt.Parallelism = workers
				got, err := Schedule(ex.Graph, parOpt)
				if err != nil {
					t.Fatalf("%s limits=%d workers=%d: %v", ex.Name, n, workers, err)
				}
				if got.CS != want.CS {
					t.Errorf("%s limits=%d workers=%d: cs = %d, want %d",
						ex.Name, n, workers, got.CS, want.CS)
				}
				if len(got.Placements) != len(want.Placements) {
					t.Fatalf("%s limits=%d workers=%d: %d placements, want %d",
						ex.Name, n, workers, len(got.Placements), len(want.Placements))
				}
				for id, wp := range want.Placements {
					if gp := got.Placements[id]; gp != wp {
						t.Errorf("%s limits=%d workers=%d: node %d placed %+v, want %+v",
							ex.Name, n, workers, id, gp, wp)
					}
				}
			}
		}
	}
}

// TestSpeculativeSearchInfeasible checks the failure path matches too:
// when no cs within MaxCS is feasible, every parallelism setting reports
// the sequential loop's final error.
func TestSpeculativeSearchInfeasible(t *testing.T) {
	// Eight independent additions on one adder need eight steps; capping
	// the search at four makes every probed cs fail.
	g := dfg.New("infeasible")
	g.AddInput("a")
	g.AddInput("b")
	for i := 0; i < 8; i++ {
		if _, err := g.AddOp(fmt.Sprintf("s%d", i), op.Add, "a", "b"); err != nil {
			t.Fatal(err)
		}
	}
	opt := Options{Limits: map[string]int{"+": 1}, MaxCS: 4}
	opt.Parallelism = 1
	_, seqErr := Schedule(g, opt)
	if seqErr == nil {
		t.Fatal("sequential run unexpectedly feasible")
	}
	opt.Parallelism = 8
	_, parErr := Schedule(g, opt)
	if parErr == nil {
		t.Fatal("parallel run unexpectedly feasible")
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error mismatch:\nsequential: %v\nparallel:   %v", seqErr, parErr)
	}
}
