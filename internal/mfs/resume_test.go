package mfs

import (
	"fmt"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/gen"
	"repro/internal/op"
	"repro/internal/sched"
)

// samePlacements asserts two schedules place every node identically.
func samePlacements(t *testing.T, label string, got, want *sched.Schedule) {
	t.Helper()
	if got.CS != want.CS {
		t.Fatalf("%s: cs %d != %d", label, got.CS, want.CS)
	}
	if len(got.Placements) != len(want.Placements) {
		t.Fatalf("%s: %d placements != %d", label, len(got.Placements), len(want.Placements))
	}
	for id, wp := range want.Placements {
		if gp := got.Placements[id]; gp != wp {
			t.Fatalf("%s: node %d placed %+v, fresh run places %+v", label, id, gp, wp)
		}
	}
}

// resumeGraphs returns the graphs the resume equivalence suite edits.
func resumeGraphs(t *testing.T) []*dfg.Graph {
	t.Helper()
	var out []*dfg.Graph
	for _, ex := range benchmarks.All() {
		out = append(out, ex.Graph)
	}
	for seed := int64(0); seed < 3; seed++ {
		g, err := gen.Generate(gen.Config{Nodes: 250, Seed: seed, MulCycles: 2})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, g)
	}
	return out
}

// TestResumeAddSinkMatchesFresh appends a sink op to each graph and
// checks ResumeCtx over the old trajectory equals a from-scratch run
// bit for bit.
func TestResumeAddSinkMatchesFresh(t *testing.T) {
	for _, g := range resumeGraphs(t) {
		opt := Options{CS: g.CriticalPathCycles() + 3}
		prev, err := Schedule(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		outs := g.Outputs()
		for k := 0; k+1 < len(outs) && k < 4; k++ {
			c := g.Clone()
			a, b := outs[k], outs[k+1]
			nid, err := c.AddOp(fmt.Sprintf("resume_sink%d", k), op.Add, a, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Resume(c, opt, prev, prev.Frames, []dfg.NodeID{nid})
			if err != nil {
				t.Fatalf("%s: resume: %v", g.Name, err)
			}
			want, err := Schedule(c, opt)
			if err != nil {
				t.Fatalf("%s: fresh: %v", g.Name, err)
			}
			samePlacements(t, fmt.Sprintf("%s+sink%d", g.Name, k), got, want)
			if got.Trace == nil || got.Frames == nil {
				t.Fatalf("%s: resumed schedule lost its metadata", g.Name)
			}
		}
	}
}

// TestResumeRetimeMatchesFresh retimes single nodes and checks resume
// equals from-scratch.
func TestResumeRetimeMatchesFresh(t *testing.T) {
	for _, g := range resumeGraphs(t) {
		opt := Options{CS: g.CriticalPathCycles() + 4}
		prev, err := Schedule(g, opt)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for id := 0; id < g.Len(); id += 1 + g.Len()/5 {
			if g.Node(dfg.NodeID(id)).IsLoop() {
				continue
			}
			c := g.Clone()
			nid := dfg.NodeID(id)
			if err := c.SetCycles(nid, c.Node(nid).Cycles%2+1); err != nil {
				t.Fatal(err)
			}
			got, err := Resume(c, opt, prev, prev.Frames, []dfg.NodeID{nid})
			if err != nil {
				t.Fatalf("%s retime %d: resume: %v", g.Name, id, err)
			}
			want, err := Schedule(c, opt)
			if err != nil {
				t.Fatalf("%s retime %d: fresh: %v", g.Name, id, err)
			}
			samePlacements(t, fmt.Sprintf("%s~retime%d", g.Name, id), got, want)
		}
	}
}

// TestResumeChainedMatchesFresh exercises replay under chaining, where
// the chain accumulator must survive the replayed prefix.
func TestResumeChainedMatchesFresh(t *testing.T) {
	ex := benchmarks.Chained()
	g := ex.Graph
	opt := Options{CS: 4, ClockNs: ex.ClockNs}
	prev, err := Schedule(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	outs := g.Outputs()
	c := g.Clone()
	nid, err := c.AddOp("chain_sink", op.Add, outs[0], outs[len(outs)-1])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetDelayNs(nid, 10); err != nil {
		t.Fatal(err)
	}
	got, err := Resume(c, opt, prev, prev.Frames, []dfg.NodeID{nid})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Schedule(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	samePlacements(t, "chained+sink", got, want)
}

// TestResumeFallbacks checks the degenerate entries still return the
// correct (fresh-run-identical) schedule: a NoTrace previous run, and a
// trace-free schedule literal.
func TestResumeFallbacks(t *testing.T) {
	g, err := gen.Generate(gen.Config{Nodes: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{CS: g.CriticalPathCycles() + 3}
	prevNoTrace, err := Schedule(g, Options{CS: opt.CS, NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if prevNoTrace.Trace != nil {
		t.Fatal("NoTrace run recorded a trace")
	}
	c := g.Clone()
	nid, err := c.AddOp("extra", op.Neg, g.Outputs()[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := Resume(c, opt, prevNoTrace, prevNoTrace.Frames, []dfg.NodeID{nid})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Schedule(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	samePlacements(t, "noTrace-fallback", got, want)

	if _, err := Resume(c, opt, nil, nil, []dfg.NodeID{nid}); err != nil {
		t.Fatalf("nil prev: %v", err)
	}
}

// TestResumeResumedTrace checks a resumed schedule's lightweight trace
// is itself a valid resume source.
func TestResumeResumedTrace(t *testing.T) {
	g, err := gen.Generate(gen.Config{Nodes: 200, Seed: 5, MulCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{CS: g.CriticalPathCycles() + 3}
	prev, err := Schedule(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	outs := g.Outputs()
	c1 := g.Clone()
	n1, err := c1.AddOp("extra1", op.Add, outs[0], outs[1])
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Resume(c1, opt, prev, prev.Frames, []dfg.NodeID{n1})
	if err != nil {
		t.Fatal(err)
	}
	c2 := c1.Clone()
	n2, err := c2.AddOp("extra2", op.Sub, "extra1", outs[2])
	if err != nil {
		t.Fatal(err)
	}
	got, err := Resume(c2, opt, mid, mid.Frames, []dfg.NodeID{n2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Schedule(c2, opt)
	if err != nil {
		t.Fatal(err)
	}
	samePlacements(t, "second-resume", got, want)
}
