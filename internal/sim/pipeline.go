package sim

import (
	"context"
	"fmt"

	"repro/internal/sched"
)

// PipelineRun is the result of simulating a functionally pipelined
// schedule over several loop initiations.
type PipelineRun struct {
	// Iterations holds each initiation's full signal valuation.
	Iterations []map[string]int64

	// TotalSteps is the makespan: with initiation interval L and k
	// iterations of a cs-step body, (k−1)·L + cs.
	TotalSteps int

	// Throughput is the steady-state initiation interval (the schedule's
	// Latency).
	Throughput int
}

// RunPipelined simulates k consecutive initiations of a functionally
// pipelined schedule (§5.5.2), one input vector per initiation. Each
// initiation executes the full body; the folded schedule guarantees the
// overlapped initiations never contend for a functional unit, which the
// expansion check in internal/mfs proves structurally — here the value
// semantics of every iteration are verified against the behavioral
// reference, and the pipelined makespan is reported.
func RunPipelined(s *sched.Schedule, inputs []map[string]int64) (*PipelineRun, error) {
	return RunPipelinedCtx(context.Background(), s, inputs)
}

// RunPipelinedCtx is RunPipelined with cancellation: ctx is observed by
// every iteration's simulation.
func RunPipelinedCtx(ctx context.Context, s *sched.Schedule, inputs []map[string]int64) (*PipelineRun, error) {
	if s.Latency <= 0 {
		return nil, fmt.Errorf("sim: RunPipelined needs a functionally pipelined schedule")
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("sim: no iterations")
	}
	run := &PipelineRun{
		Throughput: s.Latency,
		TotalSteps: (len(inputs)-1)*s.Latency + s.CS,
	}
	for k, in := range inputs {
		vals, err := RunCtx(ctx, s, in)
		if err != nil {
			return nil, fmt.Errorf("sim: iteration %d: %w", k, err)
		}
		want, err := s.Graph.Eval(in)
		if err != nil {
			return nil, fmt.Errorf("sim: iteration %d reference: %w", k, err)
		}
		//hls:ctxok O(nodes) value comparison; the enclosing iteration loop is cancelled through RunCtx
		for _, n := range s.Graph.Nodes() {
			if vals[n.Name] != want[n.Name] {
				return nil, fmt.Errorf("sim: iteration %d: %q = %d, reference %d",
					k, n.Name, vals[n.Name], want[n.Name])
			}
		}
		run.Iterations = append(run.Iterations, vals)
	}
	return run, nil
}
