package sim

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/mfs"
)

func TestTraceVCDStructure(t *testing.T) {
	ex := benchmarks.Facet()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	in := RandomInputs(ex.Graph, 1)
	if err := TraceVCD(s, in, &b); err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	for _, want := range []string{
		"$timescale", "$scope module facet", "$enddefinitions", "#0", "#4",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// Every signal declared exactly once.
	for _, n := range ex.Graph.Nodes() {
		if strings.Count(dump, " "+n.Name+" $end") != 1 {
			t.Errorf("signal %q not declared exactly once", n.Name)
		}
	}
}

func TestTraceVCDValuesMatchSimulation(t *testing.T) {
	ex := benchmarks.Diffeq()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := RandomInputs(ex.Graph, 2)
	want, err := Run(s, in)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := TraceVCD(s, in, &b); err != nil {
		t.Fatal(err)
	}
	got := parseVCD(t, b.String())
	for _, n := range ex.Graph.Nodes() {
		if got[n.Name] != uint64(want[n.Name]) {
			t.Errorf("%q = %d in VCD, simulation says %d", n.Name, got[n.Name], want[n.Name])
		}
	}
}

// parseVCD extracts the final binary value of every named signal.
func parseVCD(t *testing.T, dump string) map[string]uint64 {
	t.Helper()
	idName := make(map[string]string)
	final := make(map[string]uint64)
	for _, line := range strings.Split(dump, "\n") {
		fields := strings.Fields(line)
		switch {
		case len(fields) >= 5 && fields[0] == "$var":
			idName[fields[3]] = fields[4]
		case len(fields) == 2 && strings.HasPrefix(fields[0], "b"):
			v, err := strconv.ParseUint(fields[0][1:], 2, 64)
			if err != nil {
				t.Fatalf("bad VCD value %q", line)
			}
			name, ok := idName[fields[1]]
			if !ok {
				t.Fatalf("undeclared VCD id %q", fields[1])
			}
			final[name] = v
		}
	}
	return final
}

func TestTraceVCDOrderingByFinishStep(t *testing.T) {
	// 2-cycle ops appear at their finish step, not their start step.
	ex := benchmarks.ARLattice()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 8})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := TraceVCD(s, RandomInputs(ex.Graph, 3), &b); err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	// m1 starts at step 1 but finishes at 2: its change must come after
	// the "#2" marker, never in the "#1" block.
	i1 := strings.Index(dump, "#1\n")
	i2 := strings.Index(dump, "#2\n")
	if i1 < 0 || i2 < 0 {
		t.Skip("no step markers")
	}
	block1 := dump[i1:i2]
	m1, _ := ex.Graph.Lookup("m1")
	_ = m1
	// Identify m1's id from the declarations.
	id := ""
	for _, line := range strings.Split(dump, "\n") {
		f := strings.Fields(line)
		if len(f) >= 5 && f[0] == "$var" && f[4] == "m1" {
			id = f[3]
		}
	}
	if id == "" {
		t.Fatal("m1 not declared")
	}
	if strings.Contains(block1, " "+id+"\n") {
		t.Error("2-cycle m1 changed during step 1")
	}
}

func TestVCDIDUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestTraceVCDPropagatesSimErrors(t *testing.T) {
	ex := benchmarks.Facet()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := TraceVCD(s, map[string]int64{}, &b); err == nil {
		t.Error("missing inputs accepted")
	}
}
