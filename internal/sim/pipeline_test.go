package sim

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/mfs"
)

func TestRunPipelinedDiffeq(t *testing.T) {
	ex := benchmarks.Diffeq()
	cs := 8
	lat := ex.Latency(cs)
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: cs, Latency: lat})
	if err != nil {
		t.Fatal(err)
	}
	var inputs []map[string]int64
	for k := int64(0); k < 4; k++ {
		inputs = append(inputs, RandomInputs(ex.Graph, k))
	}
	run, err := RunPipelined(s, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Iterations) != 4 {
		t.Fatalf("iterations = %d", len(run.Iterations))
	}
	if run.Throughput != lat {
		t.Errorf("throughput = %d, want %d", run.Throughput, lat)
	}
	wantSteps := 3*lat + cs
	if run.TotalSteps != wantSteps {
		t.Errorf("TotalSteps = %d, want %d", run.TotalSteps, wantSteps)
	}
	// Pipelining must beat sequential execution on makespan.
	if seq := 4 * cs; run.TotalSteps >= seq {
		t.Errorf("pipelined makespan %d not better than sequential %d", run.TotalSteps, seq)
	}
	// Each iteration's values are that iteration's, not a neighbor's.
	for k, vals := range run.Iterations {
		want, err := ex.Graph.Eval(inputs[k])
		if err != nil {
			t.Fatal(err)
		}
		if vals["sub2"] != want["sub2"] {
			t.Errorf("iteration %d: sub2 = %d, want %d", k, vals["sub2"], want["sub2"])
		}
	}
}

func TestRunPipelinedErrors(t *testing.T) {
	ex := benchmarks.Facet()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPipelined(s, []map[string]int64{RandomInputs(ex.Graph, 1)}); err == nil {
		t.Error("unpipelined schedule accepted")
	}
	dq := benchmarks.Diffeq()
	sp, err := mfs.Schedule(dq.Graph, mfs.Options{CS: 8, Latency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPipelined(sp, nil); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := RunPipelined(sp, []map[string]int64{{}}); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestUtilization(t *testing.T) {
	ex := benchmarks.Diffeq()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	u := s.Utilization()
	// 6 multiplications on 2 multipliers over 4 steps = 75%.
	if got := u["*"]; got < 0.74 || got > 0.76 {
		t.Errorf("multiplier utilization = %v, want 0.75", got)
	}
	for typ, v := range u {
		if v <= 0 || v > 1.0+1e-9 {
			t.Errorf("%s utilization = %v out of range", typ, v)
		}
	}
	// Functional pipelining raises utilization (span shrinks to L).
	sp, err := mfs.Schedule(benchmarks.Diffeq().Graph, mfs.Options{CS: 8, Latency: 4})
	if err != nil {
		t.Fatal(err)
	}
	up := sp.Utilization()
	s8, err := mfs.Schedule(benchmarks.Diffeq().Graph, mfs.Options{CS: 8})
	if err != nil {
		t.Fatal(err)
	}
	u8 := s8.Utilization()
	// Pipelining shrinks the reuse span to L, so utilization cannot drop
	// even though throughput doubles (instances scale with demand).
	if up["*"] < u8["*"]-1e-9 {
		t.Errorf("pipelined utilization %v below unpipelined %v", up["*"], u8["*"])
	}
}
