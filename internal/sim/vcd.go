package sim

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sched"
)

// TraceVCD simulates a schedule and writes a Value Change Dump (IEEE
// 1364 §18) of every signal to w: inputs are driven at time 0 and each
// node's value appears at the end of its finish step (one timescale unit
// per control step). The dump can be inspected with any waveform viewer;
// tests parse it back to cross-check the simulation.
func TraceVCD(s *sched.Schedule, inputs map[string]int64, w io.Writer) error {
	vals, err := Run(s, inputs)
	if err != nil {
		return err
	}
	g := s.Graph

	// Stable signal order: inputs then nodes.
	var names []string
	names = append(names, g.Inputs()...)
	for _, n := range g.Nodes() {
		names = append(names, n.Name)
	}
	ids := make(map[string]string, len(names))
	for i, name := range names {
		ids[name] = vcdID(i)
	}

	fmt.Fprintf(w, "$timescale 1ns $end\n")
	fmt.Fprintf(w, "$scope module %s $end\n", g.Name)
	for _, name := range names {
		fmt.Fprintf(w, "$var wire 64 %s %s $end\n", ids[name], name)
	}
	fmt.Fprintf(w, "$upscope $end\n$enddefinitions $end\n")

	// Time 0: inputs.
	fmt.Fprintf(w, "#0\n")
	for _, in := range g.Inputs() {
		emitChange(w, ids[in], vals[in])
	}
	// One tick per control step: nodes finishing in that step.
	byStep := make(map[int][]string)
	for _, n := range g.Nodes() {
		p := s.Placements[n.ID]
		finish := p.Step + n.Cycles - 1
		byStep[finish] = append(byStep[finish], n.Name)
	}
	for step := 1; step <= s.CS; step++ {
		sigs := byStep[step]
		if len(sigs) == 0 {
			continue
		}
		sort.Strings(sigs)
		fmt.Fprintf(w, "#%d\n", step)
		for _, sig := range sigs {
			emitChange(w, ids[sig], vals[sig])
		}
	}
	return nil
}

func emitChange(w io.Writer, id string, v int64) {
	fmt.Fprintf(w, "b%b %s\n", uint64(v), id)
}

// vcdID maps an index to a compact printable identifier (! through ~).
func vcdID(i int) string {
	const lo, hi = 33, 126
	n := hi - lo + 1
	out := ""
	for {
		out += string(rune(lo + i%n))
		i /= n
		if i == 0 {
			return out
		}
		i--
	}
}
