package sim

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/mfs"
)

func BenchmarkRunEWF(b *testing.B) {
	ex := benchmarks.EWF()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 17})
	if err != nil {
		b.Fatal(err)
	}
	in := RandomInputs(ex.Graph, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s, in); err != nil {
			b.Fatal(err)
		}
	}
}
