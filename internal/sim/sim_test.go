package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/dfg"
	"repro/internal/mfs"
	"repro/internal/mfsa"
	"repro/internal/op"
	"repro/internal/rtl"
	"repro/internal/sched"
)

func TestRunAgainstReferenceAllBenchmarks(t *testing.T) {
	for _, ex := range benchmarks.All() {
		cs := ex.TimeConstraints[0]
		s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: cs, ClockNs: ex.ClockNs})
		if err != nil {
			t.Fatalf("%s: %v", ex.Name, err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			if err := CrossCheck(s, nil, RandomInputs(ex.Graph, seed)); err != nil {
				t.Errorf("%s seed %d: %v", ex.Name, seed, err)
			}
		}
	}
}

func TestRunRTLAllBenchmarks(t *testing.T) {
	for _, ex := range benchmarks.All() {
		cs := ex.TimeConstraints[len(ex.TimeConstraints)-1]
		res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: cs, ClockNs: ex.ClockNs})
		if err != nil {
			t.Fatalf("%s: %v", ex.Name, err)
		}
		if err := CrossCheck(res.Schedule, res.Datapath, RandomInputs(ex.Graph, 7)); err != nil {
			t.Errorf("%s: %v", ex.Name, err)
		}
	}
}

func TestMissingInput(t *testing.T) {
	ex := benchmarks.Facet()
	s, err := mfs.Schedule(ex.Graph, mfs.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, map[string]int64{"i1": 1}); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestDetectsDependencyViolation(t *testing.T) {
	// Hand-build an illegal schedule: consumer before producer finishes.
	g := dfg.New("bad")
	g.AddInput("a")
	x, _ := g.AddOp("x", op.Add, "a", "a")
	y, _ := g.AddOp("y", op.Mul, "x", "a")
	s := sched.NewSchedule(g, 2)
	s.Place(x, sched.Placement{Step: 2, Type: "+", Index: 1})
	s.Place(y, sched.Placement{Step: 1, Type: "*", Index: 1})
	if _, err := Run(s, map[string]int64{"a": 3}); err == nil {
		t.Error("use-before-ready accepted")
	}
	// Same-step without chaining is also illegal.
	s.Place(x, sched.Placement{Step: 1, Type: "+", Index: 1})
	if _, err := Run(s, map[string]int64{"a": 3}); err == nil {
		t.Error("same-step read without chaining accepted")
	}
	// With chaining enabled it is legal.
	s.ClockNs = 100
	if _, err := Run(s, map[string]int64{"a": 3}); err != nil {
		t.Errorf("chained read rejected: %v", err)
	}
}

func TestDetectsMissingRegister(t *testing.T) {
	g := dfg.New("reg")
	g.AddInput("a")
	x, _ := g.AddOp("x", op.Add, "a", "a")
	y, _ := g.AddOp("y", op.Mul, "x", "a")
	s := sched.NewSchedule(g, 3)
	s.Place(x, sched.Placement{Step: 1, Type: "u", Index: 1})
	s.Place(y, sched.Placement{Step: 3, Type: "v", Index: 1})
	// RunRTL's register check only reads dp.Registers; no library needed.
	dp := rtl.NewDatapath(nil)
	// No registers assigned: the read of x at step 3 must fail.
	if _, err := RunRTL(s, dp, map[string]int64{"a": 2}); err == nil {
		t.Error("unregistered cross-step value accepted")
	}
	// Register covering only part of the lifetime still fails.
	dp.Registers = [][]rtl.Interval{{{Name: "x", Birth: 1, Death: 2}}}
	if _, err := RunRTL(s, dp, map[string]int64{"a": 2}); err == nil {
		t.Error("partially covered lifetime accepted")
	}
	// Full coverage passes.
	dp.Registers = [][]rtl.Interval{{{Name: "x", Birth: 1, Death: 3}}}
	if _, err := RunRTL(s, dp, map[string]int64{"a": 2}); err != nil {
		t.Errorf("covered lifetime rejected: %v", err)
	}
}

func TestRunLoops(t *testing.T) {
	body := dfg.New("body")
	body.AddInput("p")
	body.AddInput("q")
	body.AddOp("r", op.Mul, "p", "q")

	g := dfg.New("outer")
	g.AddInput("x")
	g.AddInput("y")
	lid, err := g.AddLoop("l", body, "r", map[string]string{"p": "x", "q": "y"})
	if err != nil {
		t.Fatal(err)
	}
	g.SetCycles(lid, 3)
	g.AddOp("out", op.Add, "l", "x")
	s, err := mfs.Schedule(g, mfs.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := Run(s, map[string]int64{"x": 4, "y": 5})
	if err != nil {
		t.Fatal(err)
	}
	if vals["l"] != 20 || vals["out"] != 24 {
		t.Errorf("vals = %v", vals)
	}
}

func TestRandomSchedulesCrossCheck(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	kinds := []op.Kind{op.Add, op.Sub, op.Mul, op.And, op.Lt}
	for trial := 0; trial < 20; trial++ {
		g := dfg.New(fmt.Sprintf("sc%d", trial))
		g.AddInput("i0")
		g.AddInput("i1")
		names := []string{"i0", "i1"}
		for i := 0; i < 8+r.Intn(16); i++ {
			name := fmt.Sprintf("n%d", i)
			g.AddOp(name, kinds[r.Intn(len(kinds))],
				names[r.Intn(len(names))], names[r.Intn(len(names))])
			names = append(names, name)
		}
		s, err := mfs.Schedule(g, mfs.Options{CS: g.CriticalPathCycles() + 1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CrossCheck(s, nil, RandomInputs(g, int64(trial))); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := mfsa.Synthesize(g, mfsa.Options{CS: s.CS})
		if err != nil {
			t.Fatalf("trial %d mfsa: %v", trial, err)
		}
		if err := CrossCheck(res.Schedule, res.Datapath, RandomInputs(g, int64(trial)+100)); err != nil {
			t.Fatalf("trial %d mfsa: %v", trial, err)
		}
	}
}

func TestRandomInputsDeterministic(t *testing.T) {
	g := benchmarks.Facet().Graph
	a := RandomInputs(g, 42)
	b := RandomInputs(g, 42)
	if len(a) != len(g.Inputs()) {
		t.Fatalf("inputs = %d", len(a))
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("RandomInputs not deterministic")
		}
	}
	c := RandomInputs(g, 43)
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical inputs")
	}
}
