// Package sim executes synthesized designs cycle by cycle and
// cross-checks them against the data-flow graph's reference evaluation.
// It is the repository's end-to-end verification substrate: Run drives a
// schedule (checking that every operand is ready when read — multicycle
// completion times and chaining included), RunRTL additionally walks the
// bound datapath (checking that every cross-step operand is actually held
// in an allocated register for the whole time it is needed), and
// CrossCheck compares the results with dfg.Graph.Eval on the same inputs.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dfg"
	"repro/internal/guard"
	"repro/internal/rtl"
	"repro/internal/sched"
)

// Run simulates a schedule: control steps advance from 1 to CS, every
// operation starting in a step reads its operands and produces its value
// at the end of its finish step. It returns every signal's value.
func Run(s *sched.Schedule, inputs map[string]int64) (map[string]int64, error) {
	return run(context.Background(), s, nil, inputs)
}

// RunCtx is Run with cancellation: ctx is checked before every operation,
// so a cancelled simulation returns ctx.Err() within one operation's
// worth of work.
func RunCtx(ctx context.Context, s *sched.Schedule, inputs map[string]int64) (map[string]int64, error) {
	return run(ctx, s, nil, inputs)
}

// RunRTL simulates a schedule against its bound datapath, additionally
// verifying register coverage: any operand read after its producing step
// must sit in an allocated register whose lifetime covers the read.
func RunRTL(s *sched.Schedule, dp *rtl.Datapath, inputs map[string]int64) (map[string]int64, error) {
	if dp == nil {
		return nil, fmt.Errorf("sim: nil datapath")
	}
	return run(context.Background(), s, dp, inputs)
}

// RunRTLCtx is RunRTL with cancellation.
func RunRTLCtx(ctx context.Context, s *sched.Schedule, dp *rtl.Datapath, inputs map[string]int64) (map[string]int64, error) {
	if dp == nil {
		return nil, fmt.Errorf("sim: nil datapath")
	}
	return run(ctx, s, dp, inputs)
}

func run(ctx context.Context, s *sched.Schedule, dp *rtl.Datapath, inputs map[string]int64) (map[string]int64, error) {
	g := s.Graph
	// Step budget: a degenerate schedule (say an operation declared to
	// take a billion cycles) must fail fast with a typed error, not hang
	// the simulator. The budget counts node-cycles, so it scales with
	// design size but rejects absurd single operations.
	budget := 0
	for _, n := range g.Nodes() {
		c := n.Cycles
		if c < 1 {
			c = 1
		}
		if budget += c; budget > guard.DefaultSimBudget {
			return nil, fmt.Errorf("sim: %w",
				&guard.LimitError{What: "simulation node-cycles", Got: budget, Max: guard.DefaultSimBudget})
		}
	}
	vals := make(map[string]int64, g.Len()+len(inputs))
	for _, in := range g.Inputs() {
		v, ok := inputs[in]
		if !ok {
			return nil, fmt.Errorf("sim: missing input %q", in)
		}
		vals[in] = v
	}
	readyAt := make(map[string]int) // signal -> finish step of producer
	isInput := make(map[string]bool)
	for _, in := range g.Inputs() {
		readyAt[in] = 0
		isInput[in] = true
	}
	finish := func(n *dfg.Node) int {
		return s.Placements[n.ID].Step + n.Cycles - 1
	}

	// Issue order: by start step, then topologically within a step (for
	// chained operations), then by ID.
	order := append([]dfg.NodeID(nil), g.TopoOrder()...)
	sort.SliceStable(order, func(i, j int) bool {
		si := s.Placements[order[i]].Step
		sj := s.Placements[order[j]].Step
		return si < sj
	})

	for _, id := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := g.Node(id)
		p, ok := s.Placements[id]
		if !ok {
			return nil, fmt.Errorf("sim: node %q unscheduled", n.Name)
		}
		for _, a := range n.Args {
			r, ok := readyAt[a]
			if !ok {
				return nil, fmt.Errorf("sim: node %q reads %q which never becomes ready", n.Name, a)
			}
			switch {
			case r < p.Step:
				// Ready before the step: the value crossed a boundary;
				// with a datapath, node-produced values must be
				// registered for the whole span (primary inputs are
				// stable ports unless the design registered them too).
				if dp != nil && !isInput[a] {
					if _, ok := dp.Covering(a, r, p.Step); !ok {
						return nil, fmt.Errorf("sim: node %q reads %q at step %d but no register holds it over [%d,%d]",
							n.Name, a, p.Step, r, p.Step)
					}
				}
			case r == p.Step && s.ClockNs > 0 && n.Cycles == 1:
				// Chained within the step; combinational, no register.
			default:
				return nil, fmt.Errorf("sim: node %q at step %d reads %q which is ready only at step %d",
					n.Name, p.Step, a, r)
			}
		}
		var out int64
		if n.IsLoop() {
			sub := make(map[string]int64, len(n.SubIns))
			for i, in := range n.SubIns {
				sub[in] = vals[n.Args[i]]
			}
			inner, err := n.Sub.Eval(sub)
			if err != nil {
				return nil, fmt.Errorf("sim: loop %q: %w", n.Name, err)
			}
			out = inner[n.SubOut]
		} else {
			var x, y int64
			x = vals[n.Args[0]]
			if len(n.Args) > 1 {
				y = vals[n.Args[1]]
			}
			out = n.Op.Eval(x, y)
		}
		vals[n.Name] = out
		readyAt[n.Name] = finish(n)
	}
	return vals, nil
}

// CrossCheck simulates the schedule (and datapath, if non-nil) on one
// input vector and compares every node's value against the reference
// evaluator. It returns the first mismatch. It is the historical
// one-vector signature; CrossCheckSeedsCtx drives it over N
// reproducible vectors.
func CrossCheck(s *sched.Schedule, dp *rtl.Datapath, inputs map[string]int64) error {
	return CrossCheckCtx(context.Background(), s, dp, inputs)
}

// CrossCheckCtx is CrossCheck with cancellation.
func CrossCheckCtx(ctx context.Context, s *sched.Schedule, dp *rtl.Datapath, inputs map[string]int64) error {
	want, err := s.Graph.Eval(inputs)
	if err != nil {
		return fmt.Errorf("sim: reference: %w", err)
	}
	var got map[string]int64
	if dp != nil {
		got, err = RunRTLCtx(ctx, s, dp, inputs)
	} else {
		got, err = RunCtx(ctx, s, inputs)
	}
	if err != nil {
		return err
	}
	//hls:ctxok O(nodes) value comparison after the cancellable simulation already returned
	for _, n := range s.Graph.Nodes() {
		if got[n.Name] != want[n.Name] {
			return fmt.Errorf("sim: %q = %d, reference says %d", n.Name, got[n.Name], want[n.Name])
		}
	}
	return nil
}

// DefaultCrossCheckSeeds is how many reproducible random vectors
// CrossCheckSeedsCtx drives when the caller passes n <= 0.
const DefaultCrossCheckSeeds = 8

// CrossCheckSeedsCtx cross-checks the schedule (and datapath, if
// non-nil) on n reproducible random input vectors (seeds 1..n; n <= 0
// selects DefaultCrossCheckSeeds). overrides, when non-nil, pins
// selected inputs to fixed values on every vector — the core layer uses
// it to hold literal constants at their declared values. The error
// names the failing seed so a report reproduces with RandomInputs.
func CrossCheckSeedsCtx(ctx context.Context, s *sched.Schedule, dp *rtl.Datapath, n int, overrides map[string]int64) error {
	if n <= 0 {
		n = DefaultCrossCheckSeeds
	}
	for seed := 1; seed <= n; seed++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		in := RandomInputs(s.Graph, int64(seed))
		for k, v := range overrides {
			in[k] = v
		}
		if err := CrossCheckCtx(ctx, s, dp, in); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
	}
	return nil
}

// RandomInputs generates reproducible input values for a graph.
func RandomInputs(g *dfg.Graph, seed int64) map[string]int64 {
	r := rand.New(rand.NewSource(seed))
	in := make(map[string]int64)
	for _, name := range g.Inputs() {
		in[name] = int64(r.Intn(201) - 100)
	}
	return in
}
