package rtl_test

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/mfsa"
	"repro/internal/rtl"
)

func TestTestabilityStyles(t *testing.T) {
	// Style 1 on the EWF (a long add chain bound to few adders) has ALU
	// self-loops; style 2 must not.
	ex := benchmarks.EWF()
	s1, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: 17, Style: mfsa.Style1})
	if err != nil {
		t.Fatal(err)
	}
	t1 := rtl.AnalyzeTestability(ex.Graph, s1.Datapath)
	if t1.Testable {
		t.Error("style 1 EWF unexpectedly has no self-loops (adder chain should share)")
	}
	if len(t1.SelfLoopALUs) == 0 {
		t.Error("no self-loop ALUs listed")
	}
	if !strings.Contains(t1.String(), "not self-testable") {
		t.Errorf("String = %q", t1.String())
	}

	s2, err := mfsa.Synthesize(benchmarks.EWF().Graph, mfsa.Options{CS: 17, Style: mfsa.Style2})
	if err != nil {
		t.Fatal(err)
	}
	t2 := rtl.AnalyzeTestability(benchmarks.EWF().Graph, s2.Datapath)
	if !t2.Testable {
		t.Errorf("style 2 has self-loops: %s", t2.String())
	}
	if !strings.Contains(t2.String(), "testable") {
		t.Errorf("String = %q", t2.String())
	}
}

func TestFeedbackPairs(t *testing.T) {
	// Style 2 separates dependent ops across ALUs, which can create
	// feedback pairs (r feeds s and s feeds r). Just check the metric is
	// computed without error and non-negative on a few designs.
	for _, mk := range []func() *benchmarks.Example{benchmarks.Diffeq, benchmarks.ARLattice} {
		ex := mk()
		res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: ex.TimeConstraints[len(ex.TimeConstraints)-1], Style: mfsa.Style2})
		if err != nil {
			t.Fatal(err)
		}
		ta := rtl.AnalyzeTestability(ex.Graph, res.Datapath)
		if ta.FeedbackPairs < 0 {
			t.Errorf("%s: negative feedback pairs", ex.Name)
		}
		if !ta.Testable {
			t.Errorf("%s: style 2 not testable: %s", ex.Name, ta)
		}
	}
}
