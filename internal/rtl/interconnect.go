package rtl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfg"
	"repro/internal/sched"
)

// Interconnect is the §5.7 physical-connection analysis of a bound
// design. The mux input lists L1/L2 are per-signal; physically a
// multiplexer input is a wire from a source terminal — a register
// output, a primary-input port, or another ALU's output (for chained
// reads) — and several signals that share a register arrive over the
// same wire. Line sharing therefore reduces the effective multiplexer
// input count below the signal count, the "secondary effect on
// Cost(MUX)" the paper describes.
type Interconnect struct {
	// Sources lists, per ALU name, the distinct source terminals feeding
	// each of its two ports. Terminal syntax: "reg:<k>", "in:<name>",
	// "alu:<name>" (chained), sorted.
	Sources map[string][2][]string

	// NumLinks is the total number of distinct point-to-point links
	// (terminal → ALU port) in the design.
	NumLinks int

	// SignalInputs and EffectiveInputs compare the per-signal mux input
	// count with the post-sharing terminal count.
	SignalInputs    int
	EffectiveInputs int
}

// AnalyzeInterconnect maps every operand read in the design to its
// physical source terminal and aggregates the per-port terminal sets.
// It needs the schedule to distinguish chained reads (direct ALU-to-ALU
// lines) from registered reads, and the datapath's register packing to
// name the register terminals.
func AnalyzeInterconnect(g *dfg.Graph, s *sched.Schedule, dp *Datapath) (*Interconnect, error) {
	regOf := make(map[string]int) // signal -> register index
	for r, grp := range dp.Registers {
		for _, iv := range grp {
			regOf[iv.Name] = r
		}
	}
	isInput := make(map[string]bool)
	for _, in := range g.Inputs() {
		isInput[in] = true
	}
	aluOf := make(map[dfg.NodeID]*ALU)
	for _, a := range dp.ALUs {
		for _, b := range a.Ops {
			aluOf[b.Node] = a
		}
	}

	out := &Interconnect{Sources: make(map[string][2][]string)}
	perPort := make(map[string][2]map[string]bool)
	for _, a := range dp.ALUs {
		perPort[a.Name] = [2]map[string]bool{make(map[string]bool), make(map[string]bool)}
		out.SignalInputs += muxable(len(a.L1)) + muxable(len(a.L2))
	}

	for _, n := range g.Nodes() {
		a, ok := aluOf[n.ID]
		if !ok {
			return nil, fmt.Errorf("rtl: node %q unbound", n.Name)
		}
		p, ok := s.Placements[n.ID]
		if !ok {
			return nil, fmt.Errorf("rtl: node %q unscheduled", n.Name)
		}
		var bind *Binding
		for i := range a.Ops {
			if a.Ops[i].Node == n.ID {
				bind = &a.Ops[i]
			}
		}
		ports := operandPorts(n, bind)
		for port, sig := range ports {
			if sig == "" {
				continue
			}
			term, err := terminal(g, s, dp, regOf, isInput, aluOf, sig, p.Step)
			if err != nil {
				return nil, err
			}
			perPort[a.Name][port][term] = true
		}
	}

	//hls:orderok writes are keyed by ALU name, source lists are sorted before use, and the counters are commutative += folds
	for name, ports := range perPort {
		var srcs [2][]string
		for i := 0; i < 2; i++ {
			for t := range ports[i] {
				srcs[i] = append(srcs[i], t)
			}
			sort.Strings(srcs[i])
			out.NumLinks += len(srcs[i])
			out.EffectiveInputs += muxable(len(srcs[i]))
		}
		out.Sources[name] = srcs
	}
	return out, nil
}

func muxable(n int) int {
	if n >= 2 {
		return n
	}
	return 0
}

// operandPorts returns the signal on port 0 (MUX1) and port 1 (MUX2),
// honoring the commutative swap.
func operandPorts(n *dfg.Node, bind *Binding) [2]string {
	var ports [2]string
	switch {
	case len(n.Args) == 1:
		ports[0] = n.Args[0]
	case bind != nil && bind.Swapped:
		ports[0], ports[1] = n.Args[1], n.Args[0]
	default:
		ports[0], ports[1] = n.Args[0], n.Args[1]
	}
	return ports
}

// terminal resolves a signal read at readStep to its physical source.
func terminal(g *dfg.Graph, s *sched.Schedule, dp *Datapath,
	regOf map[string]int, isInput map[string]bool, aluOf map[dfg.NodeID]*ALU,
	sig string, readStep int) (string, error) {
	if isInput[sig] {
		if r, ok := regOf[sig]; ok {
			return fmt.Sprintf("reg:%d", r), nil
		}
		return "in:" + sig, nil
	}
	prod, ok := g.Lookup(sig)
	if !ok {
		return "", fmt.Errorf("rtl: unknown signal %q", sig)
	}
	pp := s.Placements[prod.ID]
	finish := pp.Step + prod.Cycles - 1
	if finish == readStep {
		// Chained: a direct combinational line from the producing ALU.
		if a, ok := aluOf[prod.ID]; ok {
			return "alu:" + a.Name, nil
		}
		return "", fmt.Errorf("rtl: chained producer %q unbound", sig)
	}
	r, ok := regOf[sig]
	if !ok {
		return "", fmt.Errorf("rtl: signal %q read at step %d but not registered", sig, readStep)
	}
	return fmt.Sprintf("reg:%d", r), nil
}

// EffectiveMuxArea recomputes the design's multiplexer area from the
// interconnect analysis: each port's area is priced by its distinct
// terminal count instead of its signal count, quantifying the §5.7
// sharing gain.
func (d *Datapath) EffectiveMuxArea(ic *Interconnect) float64 {
	area := 0.0
	for _, srcs := range ic.Sources {
		area += d.Lib.MuxArea(len(srcs[0])) + d.Lib.MuxArea(len(srcs[1]))
	}
	return area
}

// BusPlan is the paper's alternative interconnect style ("multiplexers
// (or buses)", §4.1): instead of per-port multiplexers, shared buses
// carry one transfer each per control step.
type BusPlan struct {
	// Buses is the minimum number of buses: the peak number of
	// simultaneous distinct transfers (source terminal → port) in any
	// control step.
	Buses int

	// TransfersPerStep records the distinct transfer count per step.
	TransfersPerStep []int
}

// PlanBuses sizes a bus-based interconnect for the design: in each
// control step, every operand read is one transfer, with reads of the
// same terminal in the same step sharing a bus grant per destination.
func PlanBuses(g *dfg.Graph, s *sched.Schedule, dp *Datapath) (*BusPlan, error) {
	regOf := make(map[string]int)
	for r, grp := range dp.Registers {
		for _, iv := range grp {
			regOf[iv.Name] = r
		}
	}
	isInput := make(map[string]bool)
	for _, in := range g.Inputs() {
		isInput[in] = true
	}
	aluOf := make(map[dfg.NodeID]*ALU)
	for _, a := range dp.ALUs {
		for _, b := range a.Ops {
			aluOf[b.Node] = a
		}
	}
	perStep := make([]map[string]bool, s.CS+1)
	for i := range perStep {
		perStep[i] = make(map[string]bool)
	}
	for _, n := range g.Nodes() {
		p := s.Placements[n.ID]
		a := aluOf[n.ID]
		var bind *Binding
		if a != nil {
			for i := range a.Ops {
				if a.Ops[i].Node == n.ID {
					bind = &a.Ops[i]
				}
			}
		}
		for port, sig := range operandPorts(n, bind) {
			if sig == "" {
				continue
			}
			term, err := terminal(g, s, dp, regOf, isInput, aluOf, sig, p.Step)
			if err != nil {
				return nil, err
			}
			if strings.HasPrefix(term, "alu:") {
				continue // chained lines bypass the buses
			}
			dest := "?"
			if a != nil {
				dest = a.Name
			}
			perStep[p.Step][fmt.Sprintf("%s->%s.%d", term, dest, port)] = true
		}
	}
	plan := &BusPlan{TransfersPerStep: make([]int, s.CS+1)}
	for step := 1; step <= s.CS; step++ {
		plan.TransfersPerStep[step] = len(perStep[step])
		if plan.TransfersPerStep[step] > plan.Buses {
			plan.Buses = plan.TransfersPerStep[step]
		}
	}
	return plan, nil
}
