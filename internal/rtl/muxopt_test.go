package rtl

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestOptimizeMuxListsBasic(t *testing.T) {
	// Two commutative ops with mirrored operands: the optimizer must use
	// the swap so both lists stay singletons.
	ops := []MuxOp{
		{A: "a", B: "b", Commutative: true},
		{A: "b", B: "a", Commutative: true},
	}
	l1, l2, swapped := OptimizeMuxLists(ops)
	if len(l1)+len(l2) != 2 {
		t.Fatalf("|L1|+|L2| = %d, want 2 (L1=%v L2=%v)", len(l1)+len(l2), l1, l2)
	}
	if swapped[0] == swapped[1] {
		t.Error("exactly one of the two ops should be swapped")
	}
}

func TestOptimizeMuxListsNonCommutativeFixed(t *testing.T) {
	ops := []MuxOp{
		{A: "a", B: "b", Commutative: false},
		{A: "b", B: "a", Commutative: false},
	}
	l1, l2, swapped := OptimizeMuxLists(ops)
	if len(l1) != 2 || len(l2) != 2 {
		t.Errorf("non-commutative lists = %v / %v", l1, l2)
	}
	if swapped[0] || swapped[1] {
		t.Error("non-commutative op reported swapped")
	}
}

func TestOptimizeMuxListsUnary(t *testing.T) {
	ops := []MuxOp{{A: "a"}, {A: "a"}, {A: "b"}}
	l1, l2, _ := OptimizeMuxLists(ops)
	if len(l1) != 2 || len(l2) != 0 {
		t.Errorf("unary lists = %v / %v", l1, l2)
	}
}

func TestOptimizeBeatsGreedyOrderTrap(t *testing.T) {
	// A case where greedy-in-order is suboptimal: the first op has no
	// preference (fresh lists), but its orientation decides whether the
	// later ops can share. ops: (x,y) then (y,z) then (y,w): orienting
	// op0 as (y on L1) lets ops 1,2 put y on L1 too.
	ops := []MuxOp{
		{A: "x", B: "y", Commutative: true},
		{A: "y", B: "z", Commutative: true},
		{A: "y", B: "w", Commutative: true},
	}
	l1, l2, _ := OptimizeMuxLists(ops)
	// Optimal: L1 = {y}? no — op0 needs x somewhere: best is
	// L1={y,x?}... enumerate: orientations giving y always on one side:
	// op0 (y|x), op1 (y|z), op2 (y|w): L1={y}, L2={x,z,w}: total 4.
	if got := len(l1) + len(l2); got != 4 {
		t.Errorf("|L1|+|L2| = %d (L1=%v L2=%v), want 4", got, l1, l2)
	}
}

func TestOptimizeExactMatchesBruteForce(t *testing.T) {
	// Property: for small random instances the optimizer matches an
	// independent brute-force minimum.
	r := rand.New(rand.NewSource(77))
	sigs := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(6)
		ops := make([]MuxOp, n)
		for i := range ops {
			ops[i] = MuxOp{
				A:           sigs[r.Intn(len(sigs))],
				B:           sigs[r.Intn(len(sigs))],
				Commutative: r.Intn(2) == 0,
			}
		}
		l1, l2, _ := OptimizeMuxLists(ops)
		got := len(l1) + len(l2)
		want := bruteForceMin(ops)
		if got != want {
			t.Fatalf("trial %d: optimizer %d, brute force %d (ops %+v)", trial, got, want, ops)
		}
	}
}

func bruteForceMin(ops []MuxOp) int {
	var flex []int
	for i, op := range ops {
		if op.Commutative && op.B != "" {
			flex = append(flex, i)
		}
	}
	best := 1 << 30
	for mask := 0; mask < 1<<len(flex); mask++ {
		s1, s2 := map[string]bool{}, map[string]bool{}
		swap := make(map[int]bool)
		for idx, i := range flex {
			swap[i] = mask&(1<<idx) != 0
		}
		for i, op := range ops {
			a, b := op.A, op.B
			if swap[i] {
				a, b = b, a
			}
			s1[a] = true
			if b != "" {
				s2[b] = true
			}
		}
		if size := len(s1) + len(s2); size < best {
			best = size
		}
	}
	return best
}

func TestOptimizeLargeFallsBackToGreedy(t *testing.T) {
	// More commutative ops than the exact limit: the greedy+improve path
	// must still produce consistent lists covering every operand.
	r := rand.New(rand.NewSource(3))
	sigs := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	ops := make([]MuxOp, exactSearchLimit+8)
	for i := range ops {
		ops[i] = MuxOp{A: sigs[r.Intn(len(sigs))], B: sigs[r.Intn(len(sigs))], Commutative: true}
	}
	l1, l2, swapped := OptimizeMuxLists(ops)
	in := func(l []string, s string) bool {
		for _, x := range l {
			if x == s {
				return true
			}
		}
		return false
	}
	for i, op := range ops {
		a, b := op.A, op.B
		if swapped[i] {
			a, b = b, a
		}
		if !in(l1, a) || !in(l2, b) {
			t.Fatalf("op %d operands not covered by lists", i)
		}
	}
}

func TestReoptimizeMuxesNeverRegresses(t *testing.T) {
	// Covered end-to-end in the mfsa tests; here check the empty case.
	dp := NewDatapath(nil)
	if dp.ReoptimizeMuxes(nil) != 0 {
		t.Error("empty datapath reported savings")
	}
}

// improveOnceScan is the historical quadratic sweep — two full set
// rebuilds per candidate flip — kept as the oracle the incremental
// refcount sweep must match flip for flip.
func improveOnceScan(ops []MuxOp, flex []int, swapped []bool) {
	for changed := true; changed; {
		changed = false
		for _, i := range flex {
			cur := rebuildSize(ops, flex, swapped)
			swapped[i] = !swapped[i]
			if rebuildSize(ops, flex, swapped) < cur {
				changed = true
			} else {
				swapped[i] = !swapped[i]
			}
		}
	}
}

// TestImproveOnceMatchesScanOracle drives random orientation problems —
// above the exact-search limit, with shared signals, unary and
// non-commutative ops mixed in — through the incremental sweep and the
// historical scan and requires identical final orientations.
func TestImproveOnceMatchesScanOracle(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := exactSearchLimit + 1 + rng.Intn(60)
		sigs := 2 + rng.Intn(12)
		sig := func() string { return fmt.Sprintf("s%d", rng.Intn(sigs)) }
		ops := make([]MuxOp, n)
		var flex []int
		for i := range ops {
			switch rng.Intn(4) {
			case 0:
				ops[i] = MuxOp{A: sig()}
			case 1:
				ops[i] = MuxOp{A: sig(), B: sig()}
			default:
				ops[i] = MuxOp{A: sig(), B: sig(), Commutative: true}
				flex = append(flex, i)
			}
		}
		start := make([]bool, n)
		for _, i := range flex {
			start[i] = rng.Intn(2) == 0
		}
		want := append([]bool(nil), start...)
		improveOnceScan(ops, flex, want)
		got := append([]bool(nil), start...)
		s1, s2 := map[string]bool{}, map[string]bool{}
		improveOnce(ops, flex, s1, s2, got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: orientation %d = %v, oracle %v", seed, i, got[i], want[i])
			}
		}
		if len(s1)+len(s2) != rebuildSize(ops, flex, want) {
			t.Fatalf("seed %d: rebuilt size %d, oracle %d", seed, len(s1)+len(s2), rebuildSize(ops, flex, want))
		}
	}
}
