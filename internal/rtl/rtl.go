// Package rtl models the register-transfer-level datapath MFSA constructs:
// ALU instances drawn from a cell library, the two multiplexers feeding
// each ALU (with the §5.6 input-list optimization), registers allocated by
// the §5.8 activity-selection (left-edge) packer, and the cost breakdown
// reported in the paper's Table 2 (total area, register, multiplexer and
// multiplexer-input counts).
package rtl

import (
	"fmt"
	"sort"

	"repro/internal/dfg"
	"repro/internal/diag"
	"repro/internal/library"
)

// Binding records one operation's assignment to an ALU instance.
type Binding struct {
	Node dfg.NodeID
	Step int // start control step

	// Swapped is true when a commutative operation feeds its first
	// operand to MUX2 and its second to MUX1 (the §5.6 optimization).
	Swapped bool
}

// ALU is one functional-unit instance with its two input multiplexers.
type ALU struct {
	Name string
	Unit *library.Unit
	Ops  []Binding

	// L1 and L2 are the signal lists feeding the ALU's first and second
	// input port, deduplicated — each distinct signal is one multiplexer
	// input (§5.7: shared lines between the same source and ALU cost one
	// input).
	L1, L2 []string

	// l1set/l2set memoize L1/L2 membership so the growth probes the
	// schedulers issue per candidate are O(1) instead of a list scan.
	// They are rebuilt whenever their size drifts from the list's (which
	// catches every append) and explicitly dropped by in-package code
	// that replaces the lists wholesale (ReoptimizeMuxes).
	l1set, l2set map[string]struct{}
}

// InL1 reports whether signal s already feeds the ALU's first input port.
func (a *ALU) InL1(s string) bool {
	if a.l1set == nil || len(a.l1set) != len(a.L1) {
		a.l1set = buildSet(a.L1)
	}
	_, ok := a.l1set[s]
	return ok
}

// InL2 reports whether signal s already feeds the ALU's second input port.
func (a *ALU) InL2(s string) bool {
	if a.l2set == nil || len(a.l2set) != len(a.L2) {
		a.l2set = buildSet(a.L2)
	}
	_, ok := a.l2set[s]
	return ok
}

func buildSet(l []string) map[string]struct{} {
	m := make(map[string]struct{}, len(l))
	for _, s := range l {
		m[s] = struct{}{}
	}
	return m
}

// invalidateMuxSets drops the membership memos after a wholesale
// replacement of L1/L2 (a same-length replacement would otherwise evade
// the size-drift check).
func (a *ALU) invalidateMuxSets() {
	a.l1set, a.l2set = nil, nil
}

// addL1/addL2 append s to the port list if absent, keeping the memo in
// step, and report how many new entries were created (0 or 1).
func (a *ALU) addL1(s string) int {
	if s == "" || a.InL1(s) {
		return 0
	}
	a.L1 = append(a.L1, s)
	a.l1set[s] = struct{}{}
	return 1
}

func (a *ALU) addL2(s string) int {
	if s == "" || a.InL2(s) {
		return 0
	}
	a.L2 = append(a.L2, s)
	a.l2set[s] = struct{}{}
	return 1
}

// growthOf counts the new entries adding s to a port would create.
func growthOf(present bool, s string) int {
	if s == "" || present {
		return 0
	}
	return 1
}

// MuxGrowth returns how many new multiplexer inputs binding node n to the
// ALU would create, choosing the cheaper operand orientation for
// commutative operations. args are the node's input signal names (one or
// two). It does not modify the ALU.
func (a *ALU) MuxGrowth(n *dfg.Node, args []string) (growth int, swapped bool) {
	if len(args) == 1 {
		return growthOf(a.InL1(args[0]), args[0]), false
	}
	direct := growthOf(a.InL1(args[0]), args[0]) + growthOf(a.InL2(args[1]), args[1])
	if !n.Op.Commutative() {
		return direct, false
	}
	crossed := growthOf(a.InL1(args[1]), args[1]) + growthOf(a.InL2(args[0]), args[0])
	if crossed < direct {
		return crossed, true
	}
	return direct, false
}

// Bind commits node n (with input signals args) to the ALU at the given
// step, using the orientation MuxGrowth would pick.
func (a *ALU) Bind(n *dfg.Node, args []string, step int) {
	_, swapped := a.MuxGrowth(n, args)
	b := Binding{Node: n.ID, Step: step, Swapped: swapped}
	switch {
	case len(args) == 1:
		a.addL1(args[0])
	case swapped:
		a.addL1(args[1])
		a.addL2(args[0])
	default:
		a.addL1(args[0])
		a.addL2(args[1])
	}
	a.Ops = append(a.Ops, b)
}

// BindingFor returns the binding of node id on this ALU, if present.
// The pointer aliases the ALU's Ops slice.
func (a *ALU) BindingFor(id dfg.NodeID) (*Binding, bool) {
	for i := range a.Ops {
		if a.Ops[i].Node == id {
			return &a.Ops[i], true
		}
	}
	return nil, false
}

// HasNode reports whether node id is bound to this ALU.
func (a *ALU) HasNode(id dfg.NodeID) bool {
	_, ok := a.BindingFor(id)
	return ok
}

// Interval is one value's storage lifetime in control steps: the value is
// born at the end of step Birth (its producer's finish step; 0 for a
// design input captured before step 1) and last read during step Death.
// It needs register storage iff Death > Birth — i.e. it crosses at least
// one step boundary.
type Interval struct {
	Name  string
	Birth int
	Death int
}

// Stored reports whether the value outlives its producing step.
func (iv Interval) Stored() bool { return iv.Death > iv.Birth }

// overlaps reports whether two stored intervals [Birth, Death) conflict.
func (iv Interval) overlaps(o Interval) bool {
	return iv.Birth < o.Death && o.Birth < iv.Death
}

// PackRegisters assigns the stored intervals to a minimal set of
// registers with the left-edge algorithm ([19], which §5.8's activity
// selection extends): intervals are sorted by birth (then death, then
// name) and each goes to the first register whose occupants it does not
// overlap. Left-edge first-fit is optimal for interval lifetimes — the
// register count equals the maximum number of simultaneously live values.
// The result is deterministic; unstored intervals are dropped.
//
// Because intervals arrive in birth order, a register's occupants are
// non-overlapping and birth-sorted, so a new interval conflicts with a
// register iff its birth precedes the register's last occupant's death.
// First-fit therefore reduces to "leftmost register whose last death is
// ≤ the new birth", answered in O(log R) by a segment tree over the
// per-register last-death values (an empty register scores 0, so the
// historical append-a-new-register fallback is the leftmost untouched
// leaf). The packing — grouping AND order — is byte-identical to the
// historical all-pairs scan, which the golden netlists depend on.
func PackRegisters(ivals []Interval) [][]Interval {
	live := make([]Interval, 0, len(ivals))
	for _, iv := range ivals {
		if iv.Stored() {
			live = append(live, iv)
		}
	}
	sort.Slice(live, func(i, j int) bool {
		a, b := live[i], live[j]
		if a.Birth != b.Birth {
			return a.Birth < b.Birth
		}
		if a.Death != b.Death {
			return a.Death < b.Death
		}
		return a.Name < b.Name
	})
	var regs [][]Interval
	if len(live) == 0 {
		return regs
	}
	size := 1
	for size < len(live) {
		size <<= 1
	}
	// min[size+r] is register r's last death (0 = empty); internal nodes
	// hold subtree minima. At most len(live) registers are ever needed.
	min := make([]int, 2*size)
	for _, iv := range live {
		i := 1
		for i < size {
			if min[2*i] <= iv.Birth {
				i = 2 * i
			} else {
				i = 2*i + 1
			}
		}
		r := i - size
		if r == len(regs) {
			regs = append(regs, nil)
		}
		regs[r] = append(regs[r], iv)
		min[i] = iv.Death
		for i >>= 1; i >= 1; i >>= 1 {
			m := min[2*i]
			if min[2*i+1] < m {
				m = min[2*i+1]
			}
			min[i] = m
		}
	}
	return regs
}

// Datapath is the RTL structure under construction or completed.
type Datapath struct {
	Lib  *library.Library
	ALUs []*ALU

	// Registers is the left-edge packing of the design's value lifetimes,
	// set by AssignRegisters.
	Registers [][]Interval
}

// NewDatapath returns an empty datapath over the given library.
func NewDatapath(lib *library.Library) *Datapath {
	return &Datapath{Lib: lib}
}

// AddALU instantiates a new ALU of the given unit and returns it.
func (d *Datapath) AddALU(u *library.Unit) *ALU {
	a := &ALU{Name: fmt.Sprintf("%s#%d", u.Name, len(d.ALUs)+1), Unit: u}
	d.ALUs = append(d.ALUs, a)
	return a
}

// AssignRegisters runs the register allocator over the design's value
// lifetimes and stores the packing.
func (d *Datapath) AssignRegisters(ivals []Interval) {
	d.Registers = PackRegisters(ivals)
}

// Covering returns the index of a register whose packing holds sig over
// the whole span (birth, readStep] — an interval named sig born no
// later than birth and dying no earlier than readStep — or ok=false
// when no register covers the read. Both the RTL simulator and the
// translation-validation pass use this to decide whether a cross-step
// operand actually survives in storage.
func (d *Datapath) Covering(sig string, birth, readStep int) (int, bool) {
	for r, grp := range d.Registers {
		for _, iv := range grp {
			if iv.Name == sig && iv.Birth <= birth && iv.Death >= readStep {
				return r, true
			}
		}
	}
	return -1, false
}

// FindBinding returns the ALU executing node id, if bound.
func (d *Datapath) FindBinding(id dfg.NodeID) (*ALU, bool) {
	for _, a := range d.ALUs {
		if a.HasNode(id) {
			return a, true
		}
	}
	return nil, false
}

// Cost is the Table 2 result row for one design.
type Cost struct {
	ALUArea float64
	MuxArea float64
	RegArea float64
	Total   float64

	NumALUs      int
	NumRegs      int
	NumMux       int // multiplexers with at least 2 inputs
	NumMuxInputs int // total inputs across those multiplexers
}

// MuxCost returns the area of the ALU's two input multiplexers.
func (d *Datapath) muxAreaOf(a *ALU) float64 {
	return d.Lib.MuxArea(len(a.L1)) + d.Lib.MuxArea(len(a.L2))
}

// Cost computes the datapath's cost breakdown against its library.
func (d *Datapath) Cost() Cost {
	var c Cost
	for _, a := range d.ALUs {
		c.ALUArea += a.Unit.Area
		c.MuxArea += d.muxAreaOf(a)
		for _, l := range [][]string{a.L1, a.L2} {
			if len(l) >= 2 {
				c.NumMux++
				c.NumMuxInputs += len(l)
			}
		}
	}
	c.NumALUs = len(d.ALUs)
	c.NumRegs = len(d.Registers)
	c.RegArea = float64(c.NumRegs) * d.Lib.RegArea
	c.Total = c.ALUArea + c.MuxArea + c.RegArea
	return c
}

// ALUSummary renders the allocation in the paper's Table 2 notation,
// e.g. "2(+-); (*)": counts of identical capability sets.
func (d *Datapath) ALUSummary() string {
	counts := make(map[string]int)
	for _, a := range d.ALUs {
		counts[a.Unit.Symbol()]++
	}
	syms := make([]string, 0, len(counts))
	for s := range counts {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	out := ""
	for i, s := range syms {
		if i > 0 {
			out += "; "
		}
		if counts[s] > 1 {
			out += fmt.Sprintf("%d%s", counts[s], s)
		} else {
			out += s
		}
	}
	return out
}

// ValidateAll checks structural sanity — every binding's step positive,
// no node bound twice, mux lists deduplicated, registers non-overlapping
// — and returns every violation found as a typed diagnostic. Validate is
// the historical first-error shim on top.
func (d *Datapath) ValidateAll() diag.List {
	var out diag.List
	report := func(code, loc, msg string) {
		out = append(out, diag.Diagnostic{
			Code: code, Severity: diag.Error,
			Artifact: "datapath", Loc: loc, Message: msg,
		})
	}
	seen := make(map[dfg.NodeID]string)
	for _, a := range d.ALUs {
		if a.Unit == nil {
			report(diag.CodeALUNoUnit, a.Name,
				fmt.Sprintf("rtl: ALU %s has no unit", a.Name))
		}
		for _, b := range a.Ops {
			if b.Step < 1 {
				report(diag.CodeALUBadStep, a.Name,
					fmt.Sprintf("rtl: ALU %s: node %d at step %d", a.Name, b.Node, b.Step))
			}
			if prev, dup := seen[b.Node]; dup {
				report(diag.CodeALUDupBind, a.Name,
					fmt.Sprintf("rtl: node %d bound to both %s and %s", b.Node, prev, a.Name))
				continue
			}
			seen[b.Node] = a.Name
		}
		for _, l := range [][]string{a.L1, a.L2} {
			names := make(map[string]bool)
			for _, s := range l {
				if names[s] {
					report(diag.CodeMuxDupInput, a.Name,
						fmt.Sprintf("rtl: ALU %s: duplicate mux input %q", a.Name, s))
					continue
				}
				names[s] = true
			}
		}
	}
	for r, grp := range d.Registers {
		for i := 0; i < len(grp); i++ {
			for j := i + 1; j < len(grp); j++ {
				if grp[i].overlaps(grp[j]) {
					report(diag.CodeRegOverlap, fmt.Sprintf("R%d", r),
						fmt.Sprintf("rtl: register %d: %q overlaps %q", r, grp[i].Name, grp[j].Name))
				}
			}
		}
	}
	return out
}

// Validate returns the first violation ValidateAll finds (with the same
// message string as the historical single-error validator), or nil.
func (d *Datapath) Validate() error {
	if all := d.ValidateAll(); len(all) > 0 {
		return all[:1].ErrOrNil()
	}
	return nil
}
