package rtl

import (
	"sort"

	"repro/internal/dfg"
)

// MuxOp is one operation's operand pair as seen by an ALU's input ports.
type MuxOp struct {
	A, B        string // operand signals (B == "" for unary)
	Commutative bool
}

// OptimizeMuxLists implements §5.6's constructive algorithm: given the
// full set of operations assigned to one ALU, build the two input lists
// L1 and L2 with |L1| + |L2| minimal. Non-commutative operations fix
// their operands to their ports; each commutative operation may be
// swapped. For up to exactSearchLimit commutative operations the
// orientation space is searched exhaustively (branch and bound on the
// running list sizes); beyond that a greedy pass with one improvement
// sweep is used. The returned swapped slice parallels ops and reports
// each operation's chosen orientation.
func OptimizeMuxLists(ops []MuxOp) (l1, l2 []string, swapped []bool) {
	swapped = make([]bool, len(ops))
	set1, set2 := map[string]bool{}, map[string]bool{}
	var flex []int
	for i, op := range ops {
		switch {
		case op.B == "":
			set1[op.A] = true
		case !op.Commutative:
			set1[op.A] = true
			set2[op.B] = true
		default:
			flex = append(flex, i)
		}
	}
	if len(flex) <= exactSearchLimit {
		best := 1 << 30
		bestMask := 0
		search(ops, flex, 0, 0, cloneSet(set1), cloneSet(set2), &best, &bestMask)
		applyMask(ops, flex, bestMask, set1, set2, swapped)
	} else {
		greedyOrient(ops, flex, set1, set2, swapped)
		improveOnce(ops, flex, set1, set2, swapped)
	}
	return sortedKeys(set1), sortedKeys(set2), swapped
}

const exactSearchLimit = 16

// search explores orientation assignments for flex[idx:], pruning when
// the running size already meets the best found.
func search(ops []MuxOp, flex []int, idx, mask int, s1, s2 map[string]bool, best *int, bestMask *int) {
	if size := len(s1) + len(s2); size >= *best {
		return // cannot improve: sizes only grow
	}
	if idx == len(flex) {
		*best = len(s1) + len(s2)
		*bestMask = mask
		return
	}
	op := ops[flex[idx]]
	// Try the orientation that adds fewer new signals first.
	direct := addCount(s1, op.A) + addCount(s2, op.B)
	crossed := addCount(s1, op.B) + addCount(s2, op.A)
	order := []bool{false, true}
	if crossed < direct {
		order = []bool{true, false}
	}
	for _, swap := range order {
		a, b := op.A, op.B
		if swap {
			a, b = b, a
		}
		added1 := !s1[a]
		added2 := !s2[b]
		s1[a], s2[b] = true, true
		m := mask
		if swap {
			m |= 1 << idx
		}
		search(ops, flex, idx+1, m, s1, s2, best, bestMask)
		if added1 {
			delete(s1, a)
		}
		if added2 {
			delete(s2, b)
		}
	}
}

func applyMask(ops []MuxOp, flex []int, mask int, s1, s2 map[string]bool, swapped []bool) {
	for idx, i := range flex {
		swap := mask&(1<<idx) != 0
		swapped[i] = swap
		a, b := ops[i].A, ops[i].B
		if swap {
			a, b = b, a
		}
		s1[a] = true
		s2[b] = true
	}
}

func greedyOrient(ops []MuxOp, flex []int, s1, s2 map[string]bool, swapped []bool) {
	for _, i := range flex {
		op := ops[i]
		direct := addCount(s1, op.A) + addCount(s2, op.B)
		crossed := addCount(s1, op.B) + addCount(s2, op.A)
		swap := crossed < direct
		swapped[i] = swap
		a, b := op.A, op.B
		if swap {
			a, b = b, a
		}
		s1[a] = true
		s2[b] = true
	}
}

// improveOnce flips any single orientation whose flip shrinks |L1|+|L2|,
// repeating until a full sweep makes no progress. Each flip moves at most
// two signals per port, so the sweep keeps per-port signal refcounts and
// scores a candidate flip by its O(1) count deltas instead of re-deriving
// both sets from scratch (historically O(ops) per probe, quadratic per
// sweep — the dominant synthesis cost on 10k+-node designs). The accept
// test (strict size decrease) and sweep order are unchanged, so the
// chosen orientations — and therefore the emitted lists — are identical.
func improveOnce(ops []MuxOp, flex []int, s1, s2 map[string]bool, swapped []bool) {
	c1, c2 := map[string]int{}, map[string]int{}
	for i, op := range ops {
		switch {
		case op.B == "":
			c1[op.A]++
		case !op.Commutative:
			c1[op.A]++
			c2[op.B]++
		default:
			a, b := op.A, op.B
			if swapped[i] {
				a, b = b, a
			}
			c1[a]++
			c2[b]++
		}
	}
	// move adjusts one port's refcount and returns the distinct-signal
	// size change (-1, 0, or +1).
	move := func(c map[string]int, sig string, d int) int {
		c[sig] += d
		if d > 0 && c[sig] == 1 {
			return 1
		}
		if d < 0 && c[sig] == 0 {
			return -1
		}
		return 0
	}
	for changed := true; changed; {
		changed = false
		for _, i := range flex {
			a, b := ops[i].A, ops[i].B
			if swapped[i] {
				a, b = b, a
			}
			// Currently a feeds port 1 and b feeds port 2; probe b/a.
			delta := move(c1, a, -1) + move(c1, b, +1) +
				move(c2, b, -1) + move(c2, a, +1)
			if delta < 0 {
				swapped[i] = !swapped[i]
				changed = true
			} else {
				move(c1, b, -1)
				move(c1, a, +1)
				move(c2, a, -1)
				move(c2, b, +1)
			}
		}
	}
	// Rebuild the final sets.
	for k := range s1 {
		delete(s1, k)
	}
	for k := range s2 {
		delete(s2, k)
	}
	for i, op := range ops {
		switch {
		case op.B == "":
			s1[op.A] = true
		case !op.Commutative:
			s1[op.A] = true
			s2[op.B] = true
		default:
			a, b := op.A, op.B
			if swapped[i] {
				a, b = b, a
			}
			s1[a] = true
			s2[b] = true
		}
	}
}

func rebuildSize(ops []MuxOp, flex []int, swapped []bool) int {
	s1, s2 := map[string]bool{}, map[string]bool{}
	for i, op := range ops {
		switch {
		case op.B == "":
			s1[op.A] = true
		case !op.Commutative:
			s1[op.A] = true
			s2[op.B] = true
		default:
			a, b := op.A, op.B
			if swapped[i] {
				a, b = b, a
			}
			s1[a] = true
			s2[b] = true
		}
	}
	return len(s1) + len(s2)
}

func addCount(s map[string]bool, sig string) int {
	if sig == "" || s[sig] {
		return 0
	}
	return 1
}

func cloneSet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func sortedKeys(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ReoptimizeMuxes runs the §5.6 constructive algorithm over every ALU of
// a finished datapath, replacing the incrementally built L1/L2 lists and
// orientations with the jointly optimized ones. It returns how many mux
// inputs were eliminated. The graph supplies each bound node's operands
// and commutativity.
func (d *Datapath) ReoptimizeMuxes(g *dfg.Graph) int {
	saved := 0
	for _, a := range d.ALUs {
		ops := make([]MuxOp, len(a.Ops))
		for i, b := range a.Ops {
			n := g.Node(b.Node)
			op := MuxOp{A: n.Args[0], Commutative: n.Op.Commutative()}
			if len(n.Args) > 1 {
				op.B = n.Args[1]
			}
			ops[i] = op
		}
		before := len(a.L1) + len(a.L2)
		l1, l2, swapped := OptimizeMuxLists(ops)
		after := len(l1) + len(l2)
		if after > before {
			continue // never regress (cannot happen, but stay safe)
		}
		a.L1, a.L2 = l1, l2
		a.invalidateMuxSets() // wholesale replacement; sizes may not drift
		for i := range a.Ops {
			a.Ops[i].Swapped = swapped[i]
		}
		saved += before - after
	}
	return saved
}
