package rtl

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dfg"
	"repro/internal/library"
	"repro/internal/op"
)

func addNode(t *testing.T, g *dfg.Graph, name string, k op.Kind, args ...string) *dfg.Node {
	t.Helper()
	id, err := g.AddOp(name, k, args...)
	if err != nil {
		t.Fatal(err)
	}
	return g.Node(id)
}

func testGraph(t *testing.T) *dfg.Graph {
	t.Helper()
	g := dfg.New("rtl")
	for _, in := range []string{"a", "b", "c", "d"} {
		if err := g.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestMuxGrowthCommutativeSharing(t *testing.T) {
	g := testGraph(t)
	n1 := addNode(t, g, "n1", op.Add, "a", "b")
	n2 := addNode(t, g, "n2", op.Add, "b", "a") // swapped duplicate inputs
	lib := library.NCRLike()
	alu := NewDatapath(lib).AddALU(lib.Single(op.Add))
	alu.Bind(n1, n1.Args, 1)
	if len(alu.L1) != 1 || len(alu.L2) != 1 {
		t.Fatalf("after first bind: L1=%v L2=%v", alu.L1, alu.L2)
	}
	// n2 reversed: the commutative swap makes its inputs free.
	growth, swapped := alu.MuxGrowth(n2, n2.Args)
	if growth != 0 || !swapped {
		t.Errorf("MuxGrowth = %d swapped=%v, want 0,true", growth, swapped)
	}
	alu.Bind(n2, n2.Args, 2)
	if len(alu.L1) != 1 || len(alu.L2) != 1 {
		t.Errorf("swap not exploited: L1=%v L2=%v", alu.L1, alu.L2)
	}
	if !alu.Ops[1].Swapped {
		t.Error("binding not recorded as swapped")
	}
}

func TestMuxGrowthNonCommutative(t *testing.T) {
	g := testGraph(t)
	n1 := addNode(t, g, "n1", op.Sub, "a", "b")
	n2 := addNode(t, g, "n2", op.Sub, "b", "a")
	lib := library.NCRLike()
	alu := NewDatapath(lib).AddALU(lib.Single(op.Sub))
	alu.Bind(n1, n1.Args, 1)
	growth, swapped := alu.MuxGrowth(n2, n2.Args)
	if swapped {
		t.Error("non-commutative op swapped")
	}
	if growth != 2 {
		t.Errorf("growth = %d, want 2 (b and a are new on the opposite ports)", growth)
	}
}

func TestMuxGrowthUnary(t *testing.T) {
	g := testGraph(t)
	n1 := addNode(t, g, "n1", op.Not, "a")
	n2 := addNode(t, g, "n2", op.Not, "a")
	lib := library.NCRLike()
	alu := NewDatapath(lib).AddALU(lib.Single(op.Not))
	alu.Bind(n1, n1.Args, 1)
	if growth, _ := alu.MuxGrowth(n2, n2.Args); growth != 0 {
		t.Errorf("unary shared-input growth = %d, want 0", growth)
	}
}

func TestMuxGrowthDoesNotMutate(t *testing.T) {
	g := testGraph(t)
	n1 := addNode(t, g, "n1", op.Add, "a", "b")
	lib := library.NCRLike()
	alu := NewDatapath(lib).AddALU(lib.Single(op.Add))
	alu.MuxGrowth(n1, n1.Args)
	if len(alu.L1) != 0 || len(alu.L2) != 0 {
		t.Error("MuxGrowth mutated the ALU")
	}
}

func TestPackRegistersBasic(t *testing.T) {
	// Three values: two disjoint lifetimes share a register, one overlaps.
	regs := PackRegisters([]Interval{
		{Name: "v1", Birth: 1, Death: 3},
		{Name: "v2", Birth: 3, Death: 5},
		{Name: "v3", Birth: 2, Death: 4},
	})
	if len(regs) != 2 {
		t.Fatalf("registers = %d, want 2", len(regs))
	}
}

func TestPackRegistersDropsUnstored(t *testing.T) {
	regs := PackRegisters([]Interval{
		{Name: "chained", Birth: 2, Death: 2}, // consumed within its step
		{Name: "v", Birth: 1, Death: 2},
	})
	if len(regs) != 1 || len(regs[0]) != 1 || regs[0][0].Name != "v" {
		t.Fatalf("packing = %v", regs)
	}
}

func TestPackRegistersDeterministic(t *testing.T) {
	ivals := []Interval{
		{Name: "b", Birth: 1, Death: 4},
		{Name: "a", Birth: 1, Death: 4},
		{Name: "c", Birth: 4, Death: 6},
	}
	r1 := PackRegisters(ivals)
	// Reversed input order must give the same packing.
	rev := []Interval{ivals[2], ivals[1], ivals[0]}
	r2 := PackRegisters(rev)
	if len(r1) != len(r2) {
		t.Fatalf("non-deterministic register count: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if len(r1[i]) != len(r2[i]) {
			t.Fatalf("register %d differs", i)
		}
		for j := range r1[i] {
			if r1[i][j].Name != r2[i][j].Name {
				t.Fatalf("register %d slot %d: %q vs %q", i, j, r1[i][j].Name, r2[i][j].Name)
			}
		}
	}
}

func TestPackRegistersProperties(t *testing.T) {
	// Property: packing is legal (no overlap within a register) and no
	// worse than the trivial one-register-per-value packing; count is
	// also at least the max number of simultaneously live values (the
	// left-edge optimum for interval graphs).
	f := func(raw []struct{ B, L uint8 }) bool {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		ivals := make([]Interval, 0, len(raw))
		for i, r := range raw {
			b := int(r.B % 12)
			ivals = append(ivals, Interval{
				Name:  string(rune('a' + i%26)),
				Birth: b,
				Death: b + 1 + int(r.L%5),
			})
		}
		regs := PackRegisters(ivals)
		for _, grp := range regs {
			for i := 0; i < len(grp); i++ {
				for j := i + 1; j < len(grp); j++ {
					if grp[i].overlaps(grp[j]) {
						return false
					}
				}
			}
		}
		// Optimality for interval packing: #regs == max overlap depth.
		depth := 0
		for tm := 0; tm < 20; tm++ {
			d := 0
			for _, iv := range ivals {
				if iv.Birth <= tm && tm < iv.Death {
					d++
				}
			}
			if d > depth {
				depth = d
			}
		}
		return len(regs) == depth
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDatapathCost(t *testing.T) {
	g := testGraph(t)
	n1 := addNode(t, g, "n1", op.Add, "a", "b")
	n2 := addNode(t, g, "n2", op.Add, "c", "d")
	lib := library.NCRLike()
	dp := NewDatapath(lib)
	alu := dp.AddALU(lib.Single(op.Add))
	alu.Bind(n1, n1.Args, 1)
	alu.Bind(n2, n2.Args, 2)
	dp.AssignRegisters([]Interval{
		{Name: "n1", Birth: 1, Death: 3},
		{Name: "n2", Birth: 2, Death: 3},
	})
	if err := dp.Validate(); err != nil {
		t.Fatal(err)
	}
	c := dp.Cost()
	if c.NumALUs != 1 || c.NumRegs != 2 {
		t.Errorf("cost = %+v", c)
	}
	if c.NumMux != 2 || c.NumMuxInputs != 4 {
		t.Errorf("mux stats = %d/%d, want 2 muxes with 4 inputs", c.NumMux, c.NumMuxInputs)
	}
	wantTotal := lib.Single(op.Add).Area + 2*lib.MuxArea(2) + 2*lib.RegArea
	if c.Total != wantTotal {
		t.Errorf("Total = %v, want %v", c.Total, wantTotal)
	}
}

func TestSingleSourcePortIsFree(t *testing.T) {
	g := testGraph(t)
	n1 := addNode(t, g, "n1", op.Add, "a", "b")
	lib := library.NCRLike()
	dp := NewDatapath(lib)
	alu := dp.AddALU(lib.Single(op.Add))
	alu.Bind(n1, n1.Args, 1)
	c := dp.Cost()
	// One signal per port: no multiplexers at all.
	if c.NumMux != 0 || c.MuxArea != 0 {
		t.Errorf("single-source ports should be free: %+v", c)
	}
}

func TestALUSummary(t *testing.T) {
	lib := library.NCRLike()
	dp := NewDatapath(lib)
	addsub, _ := lib.Lookup(library.ComposeName(op.Add, op.Sub))
	dp.AddALU(addsub)
	dp.AddALU(addsub)
	dp.AddALU(lib.Single(op.Mul))
	got := dp.ALUSummary()
	if got != "(*); 2(+-)" {
		t.Errorf("ALUSummary = %q", got)
	}
}

func TestFindBinding(t *testing.T) {
	g := testGraph(t)
	n1 := addNode(t, g, "n1", op.Add, "a", "b")
	lib := library.NCRLike()
	dp := NewDatapath(lib)
	alu := dp.AddALU(lib.Single(op.Add))
	alu.Bind(n1, n1.Args, 1)
	got, ok := dp.FindBinding(n1.ID)
	if !ok || got != alu {
		t.Error("FindBinding failed")
	}
	if _, ok := dp.FindBinding(99); ok {
		t.Error("FindBinding(99) succeeded")
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	g := testGraph(t)
	n1 := addNode(t, g, "n1", op.Add, "a", "b")
	lib := library.NCRLike()
	dp := NewDatapath(lib)
	a1 := dp.AddALU(lib.Single(op.Add))
	a2 := dp.AddALU(lib.Single(op.Add))
	a1.Bind(n1, n1.Args, 1)
	a2.Bind(n1, n1.Args, 2)
	if err := dp.Validate(); err == nil {
		t.Error("double binding accepted")
	}

	dp2 := NewDatapath(lib)
	a := dp2.AddALU(lib.Single(op.Add))
	a.L1 = []string{"x", "x"}
	if err := dp2.Validate(); err == nil {
		t.Error("duplicate mux input accepted")
	}

	dp3 := NewDatapath(lib)
	dp3.Registers = [][]Interval{{
		{Name: "p", Birth: 1, Death: 4},
		{Name: "q", Birth: 2, Death: 3},
	}}
	dp3.ALUs = nil
	if err := dp3.Validate(); err == nil {
		t.Error("overlapping register occupants accepted")
	}
}

func TestIntervalSemantics(t *testing.T) {
	a := Interval{Name: "a", Birth: 1, Death: 3}
	b := Interval{Name: "b", Birth: 3, Death: 5}
	if a.overlaps(b) || b.overlaps(a) {
		t.Error("touching intervals should not overlap (write at end of step 3, read gone)")
	}
	c := Interval{Name: "c", Birth: 2, Death: 4}
	if !a.overlaps(c) {
		t.Error("overlapping intervals not detected")
	}
	if (Interval{Birth: 2, Death: 2}).Stored() {
		t.Error("same-step value flagged as stored")
	}
	sort.Strings(nil) // keep sort imported for the determinism test
}
