package rtl_test

// Interconnect tests live in an external test package because they need
// mfsa-synthesized designs, and mfsa imports rtl.

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/mfsa"
	"repro/internal/rtl"
)

func synthFor(t *testing.T, mk func() *benchmarks.Example, cs int) (*benchmarks.Example, *mfsa.Result) {
	t.Helper()
	ex := mk()
	res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: cs, ClockNs: ex.ClockNs})
	if err != nil {
		t.Fatal(err)
	}
	return ex, res
}

func TestAnalyzeInterconnect(t *testing.T) {
	ex, res := synthFor(t, benchmarks.Diffeq, 6)
	ic, err := rtl.AnalyzeInterconnect(ex.Graph, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	if ic.NumLinks <= 0 {
		t.Fatal("no links found")
	}
	// Sharing can only reduce (or keep) the mux input count.
	if ic.EffectiveInputs > ic.SignalInputs {
		t.Errorf("effective inputs %d > signal inputs %d", ic.EffectiveInputs, ic.SignalInputs)
	}
	// Every ALU appears in the source map.
	for _, a := range res.Datapath.ALUs {
		if _, ok := ic.Sources[a.Name]; !ok {
			t.Errorf("ALU %s missing from interconnect", a.Name)
		}
	}
	// Terminal syntax.
	for _, srcs := range ic.Sources {
		for _, port := range srcs {
			for _, term := range port {
				if !strings.HasPrefix(term, "reg:") && !strings.HasPrefix(term, "in:") && !strings.HasPrefix(term, "alu:") {
					t.Errorf("bad terminal %q", term)
				}
			}
		}
	}
	// Effective mux area can only be <= the per-signal mux area.
	eff := res.Datapath.EffectiveMuxArea(ic)
	if eff > res.Cost.MuxArea+1e-9 {
		t.Errorf("effective mux area %v > nominal %v", eff, res.Cost.MuxArea)
	}
}

func TestInterconnectRegisterSharing(t *testing.T) {
	// On a register-rich design, at least one port should read two
	// different signals from the same register (line sharing) at some
	// benchmark/time-constraint combination. We scan the examples for a
	// witness to prove the effect is real, not just theoretical.
	witness := false
	for _, mk := range []func() *benchmarks.Example{benchmarks.Diffeq, benchmarks.ARLattice, benchmarks.EWF} {
		ex := mk()
		res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: ex.TimeConstraints[len(ex.TimeConstraints)-1]})
		if err != nil {
			t.Fatal(err)
		}
		ic, err := rtl.AnalyzeInterconnect(ex.Graph, res.Schedule, res.Datapath)
		if err != nil {
			t.Fatal(err)
		}
		if ic.EffectiveInputs < ic.SignalInputs {
			witness = true
		}
	}
	if !witness {
		t.Error("no design exhibited register line sharing")
	}
}

func TestChainedTerminalIsDirectLine(t *testing.T) {
	ex, res := synthFor(t, benchmarks.Chained, 4)
	ic, err := rtl.AnalyzeInterconnect(ex.Graph, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, srcs := range ic.Sources {
		for _, port := range srcs {
			for _, term := range port {
				if strings.HasPrefix(term, "alu:") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("chained design has no direct ALU-to-ALU line")
	}
}

func TestPlanBuses(t *testing.T) {
	ex, res := synthFor(t, benchmarks.Facet, 4)
	plan, err := rtl.PlanBuses(ex.Graph, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Buses < 1 {
		t.Fatalf("buses = %d", plan.Buses)
	}
	// The bus count is the max of the per-step transfer counts.
	max := 0
	for _, n := range plan.TransfersPerStep {
		if n > max {
			max = n
		}
	}
	if plan.Buses != max {
		t.Errorf("Buses = %d, max per-step = %d", plan.Buses, max)
	}
	// A design with two parallel adds in step 1 needs at least 2 buses
	// (4 operand transfers from input ports).
	if plan.Buses < 2 {
		t.Errorf("facet bus plan suspiciously small: %+v", plan)
	}
}

func TestBusPlanChainedBypass(t *testing.T) {
	// In the chained example, intra-step reads ride direct lines, so the
	// bus demand must not count them.
	ex, res := synthFor(t, benchmarks.Chained, 4)
	plan, err := rtl.PlanBuses(ex.Graph, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	// Each step issues one add + one chained sub: the sub's chained input
	// bypasses the bus; remaining transfers per step are bounded by 4.
	for step, n := range plan.TransfersPerStep {
		if n > 4 {
			t.Errorf("step %d: %d bus transfers, want <= 4", step, n)
		}
	}
}
