package rtl

import (
	"fmt"
	"math/rand"
	"testing"
)

// packScan is the historical all-pairs first-fit, kept as the oracle the
// segment-tree rewrite must match byte for byte (grouping AND order).
func packScan(ivals []Interval) [][]Interval {
	live := make([]Interval, 0, len(ivals))
	for _, iv := range ivals {
		if iv.Stored() {
			live = append(live, iv)
		}
	}
	// Same sort as PackRegisters.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0; j-- {
			a, b := live[j-1], live[j]
			if a.Birth < b.Birth || (a.Birth == b.Birth && (a.Death < b.Death ||
				(a.Death == b.Death && a.Name <= b.Name))) {
				break
			}
			live[j-1], live[j] = live[j], live[j-1]
		}
	}
	var regs [][]Interval
next:
	for _, iv := range live {
		for r := range regs {
			conflict := false
			for _, o := range regs[r] {
				if iv.overlaps(o) {
					conflict = true
					break
				}
			}
			if !conflict {
				regs[r] = append(regs[r], iv)
				continue next
			}
		}
		regs = append(regs, []Interval{iv})
	}
	return regs
}

// TestPackRegistersMatchesScanOracle drives random lifetime sets through
// the O(N log R) packer and the historical scan and requires identical
// output, including degenerate (unstored) and duplicate intervals.
func TestPackRegistersMatchesScanOracle(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(120)
		ivals := make([]Interval, n)
		for i := range ivals {
			b := rng.Intn(30)
			ivals[i] = Interval{
				Name:  fmt.Sprintf("v%d", i%(n/2+1)), // occasional duplicate names
				Birth: b,
				Death: b + rng.Intn(8), // sometimes unstored (Death == Birth)
			}
		}
		got := PackRegisters(ivals)
		want := packScan(ivals)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: packing differs\n got: %v\nwant: %v", seed, got, want)
		}
	}
}

// TestPackRegistersEmpty pins the nil-for-empty contract.
func TestPackRegistersEmpty(t *testing.T) {
	if got := PackRegisters(nil); got != nil {
		t.Fatalf("PackRegisters(nil) = %v, want nil", got)
	}
	if got := PackRegisters([]Interval{{Name: "x", Birth: 2, Death: 2}}); got != nil {
		t.Fatalf("all-unstored input packed to %v, want nil", got)
	}
}
