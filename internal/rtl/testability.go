package rtl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfg"
)

// Testability summarizes the structural self-test properties the paper's
// style 2 targets ([18][20]): an ALU with a self-loop — it executes two
// data-dependent operations, so its output feeds (a register feeding)
// its own input — cannot be tested by the simple built-in self-test
// schemes SYNTEST generates, because its response compaction and pattern
// generation would share the unit under test.
type Testability struct {
	// SelfLoopALUs lists ALUs executing two operations connected by a
	// data edge (style 2 forbids these).
	SelfLoopALUs []string

	// FeedbackPairs counts ordered ALU pairs (r, s) where some operation
	// on r feeds an operation on s AND some operation on s feeds one on
	// r — the 2-cycles of the ALU connectivity graph, the next-larger
	// structures a test scheme must break.
	FeedbackPairs int

	// Testable reports the style-2 property: no self-loops.
	Testable bool
}

// AnalyzeTestability inspects a bound datapath's ALU connectivity.
func AnalyzeTestability(g *dfg.Graph, dp *Datapath) *Testability {
	aluOf := make(map[dfg.NodeID]string)
	for _, a := range dp.ALUs {
		for _, b := range a.Ops {
			aluOf[b.Node] = a.Name
		}
	}
	selfLoops := make(map[string]bool)
	edges := make(map[[2]string]bool) // producer ALU -> consumer ALU
	for _, n := range g.Nodes() {
		dst, ok := aluOf[n.ID]
		if !ok {
			continue
		}
		for _, pid := range n.Preds() {
			src, ok := aluOf[pid]
			if !ok {
				continue
			}
			if src == dst {
				selfLoops[dst] = true
				continue
			}
			edges[[2]string{src, dst}] = true
		}
	}
	out := &Testability{}
	for name := range selfLoops {
		out.SelfLoopALUs = append(out.SelfLoopALUs, name)
	}
	sort.Strings(out.SelfLoopALUs)
	for e := range edges {
		if edges[[2]string{e[1], e[0]}] && e[0] < e[1] {
			out.FeedbackPairs++
		}
	}
	out.Testable = len(out.SelfLoopALUs) == 0
	return out
}

// String renders a one-line summary.
func (t *Testability) String() string {
	if t.Testable {
		return fmt.Sprintf("testable (no ALU self-loops; %d feedback pairs)", t.FeedbackPairs)
	}
	return fmt.Sprintf("not self-testable: self-loops on %s (%d feedback pairs)",
		strings.Join(t.SelfLoopALUs, ", "), t.FeedbackPairs)
}
