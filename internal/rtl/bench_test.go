package rtl

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkPackRegisters(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ivals := make([]Interval, 64)
	for i := range ivals {
		birth := r.Intn(20)
		ivals[i] = Interval{Name: fmt.Sprintf("v%d", i), Birth: birth, Death: birth + 1 + r.Intn(6)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PackRegisters(ivals)
	}
}

func BenchmarkOptimizeMuxListsExact(b *testing.B) {
	sigs := []string{"a", "b", "c", "d", "e"}
	r := rand.New(rand.NewSource(2))
	ops := make([]MuxOp, 12)
	for i := range ops {
		ops[i] = MuxOp{A: sigs[r.Intn(5)], B: sigs[r.Intn(5)], Commutative: true}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OptimizeMuxLists(ops)
	}
}
