package dfg

import (
	"testing"

	"repro/internal/op"
)

// buildCondDup builds a conditional where both branches compute a+b.
//
//	if c: x = a+b; r0 = x*a   else: y = b+a; r1 = y*b
func buildCondDup(t *testing.T) *Graph {
	t.Helper()
	g := New("conddup")
	for _, in := range []string{"a", "b"} {
		if err := g.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	x, _ := g.AddOp("x", op.Add, "a", "b")
	r0, _ := g.AddOp("r0", op.Mul, "x", "a")
	y, _ := g.AddOp("y", op.Add, "b", "a") // commutative duplicate of x
	r1, _ := g.AddOp("r1", op.Mul, "y", "b")
	g.Tag(x, CondTag{1, 0})
	g.Tag(r0, CondTag{1, 0})
	g.Tag(y, CondTag{1, 1})
	g.Tag(r1, CondTag{1, 1})
	return g
}

func TestMergeExclusiveDuplicates(t *testing.T) {
	g := buildCondDup(t)
	m, removed, err := g.MergeExclusiveDuplicates()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged graph invalid: %v", err)
	}
	if m.Len() != g.Len()-1 {
		t.Errorf("merged Len = %d, want %d", m.Len(), g.Len()-1)
	}
	if _, ok := m.Lookup("y"); ok {
		t.Error("duplicate y survived")
	}
	r1, ok := m.Lookup("r1")
	if !ok {
		t.Fatal("r1 lost")
	}
	if r1.Args[0] != "x" {
		t.Errorf("r1 args = %v, want rewired to x", r1.Args)
	}
	// Survivor became common to both branches: exclusion tags reduced to
	// the shared set (none here).
	x, _ := m.Lookup("x")
	if len(x.Excl) != 0 {
		t.Errorf("survivor tags = %v, want none", x.Excl)
	}
	// The consumers remain exclusive with each other.
	r0, _ := m.Lookup("r0")
	if !m.MutuallyExclusive(r0.ID, r1.ID) {
		t.Error("r0,r1 lost exclusivity")
	}
}

func TestMergePreservesSemantics(t *testing.T) {
	g := buildCondDup(t)
	m, _, err := g.MergeExclusiveDuplicates()
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]int64{"a": 7, "b": 9}
	want, err := g.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, sig := range []string{"r0", "r1"} {
		if got[sig] != want[sig] {
			t.Errorf("%s = %d, want %d", sig, got[sig], want[sig])
		}
	}
}

func TestMergeNoDuplicates(t *testing.T) {
	g := New("plain")
	g.AddInput("a")
	x, _ := g.AddOp("x", op.Add, "a", "a")
	y, _ := g.AddOp("y", op.Sub, "a", "a")
	g.Tag(x, CondTag{1, 0})
	g.Tag(y, CondTag{1, 1})
	m, removed, err := g.MergeExclusiveDuplicates()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 || m.Len() != 2 {
		t.Errorf("removed=%d len=%d, want 0 and 2", removed, m.Len())
	}
}

func TestMergeIgnoresNonExclusiveDuplicates(t *testing.T) {
	// Identical unconditional computations are common subexpressions, not
	// branch duplicates; §5.1's rule applies only across exclusive branches.
	g := New("cse")
	g.AddInput("a")
	g.AddOp("x", op.Add, "a", "a")
	g.AddOp("y", op.Add, "a", "a")
	_, removed, err := g.MergeExclusiveDuplicates()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Errorf("removed = %d, want 0 (nodes not exclusive)", removed)
	}
}

func TestMergeRespectsCycles(t *testing.T) {
	g := New("cyc")
	g.AddInput("a")
	x, _ := g.AddOp("x", op.Mul, "a", "a")
	y, _ := g.AddOp("y", op.Mul, "a", "a")
	g.Tag(x, CondTag{1, 0})
	g.Tag(y, CondTag{1, 1})
	g.SetCycles(y, 2) // different implementation duration: do not merge
	_, removed, err := g.MergeExclusiveDuplicates()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Errorf("removed = %d, want 0 (cycle counts differ)", removed)
	}
}

func TestMergeChains(t *testing.T) {
	// Three branches of one case all compute a+b; each branch's consumer
	// multiplies it by a branch-distinct input, so only the adds merge.
	g := New("chain3")
	g.AddInput("a")
	g.AddInput("b")
	var consumers []NodeID
	for br := 0; br < 3; br++ {
		g.AddInput(sig("c", br))
		add, _ := g.AddOp(sig("s", br), op.Add, "a", "b")
		use, _ := g.AddOp(sig("u", br), op.Mul, sig("s", br), sig("c", br))
		g.Tag(add, CondTag{1, br})
		g.Tag(use, CondTag{1, br})
		consumers = append(consumers, use)
	}
	m, removed, err := g.MergeExclusiveDuplicates()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for br := range consumers {
		u, ok := m.Lookup(sig("u", br))
		if !ok {
			t.Fatalf("consumer %d lost", br)
		}
		if u.Args[0] != "s0" {
			t.Errorf("consumer %d reads %q, want s0", br, u.Args[0])
		}
	}
}

func TestMergeCascades(t *testing.T) {
	// When branch-local consumers of merged duplicates become identical
	// themselves, the merge cascades: the whole duplicated chain collapses.
	g := New("cascade")
	g.AddInput("a")
	g.AddInput("b")
	for br := 0; br < 3; br++ {
		add, _ := g.AddOp(sig("s", br), op.Add, "a", "b")
		use, _ := g.AddOp(sig("u", br), op.Mul, sig("s", br), "a")
		g.Tag(add, CondTag{1, br})
		g.Tag(use, CondTag{1, br})
	}
	m, removed, err := g.MergeExclusiveDuplicates()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 {
		t.Fatalf("removed = %d, want 4", removed)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2 (one add, one mul)", m.Len())
	}
}

func sig(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}
