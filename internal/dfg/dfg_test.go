package dfg

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/op"
)

// buildDiamond constructs:  a,b inputs; s=a+b; p=a*b; d=s-p
func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	for _, in := range []string{"a", "b"} {
		if err := g.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddOp("s", op.Add, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddOp("p", op.Mul, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddOp("d", op.Sub, "s", "p"); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildAndValidate(t *testing.T) {
	g := buildDiamond(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d, want 3", g.Len())
	}
	if got := g.Inputs(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Inputs = %v", got)
	}
	if got := g.Outputs(); len(got) != 1 || got[0] != "d" {
		t.Errorf("Outputs = %v", got)
	}
}

func TestConnectivity(t *testing.T) {
	g := buildDiamond(t)
	d, ok := g.Lookup("d")
	if !ok {
		t.Fatal("Lookup(d) failed")
	}
	if len(d.Preds()) != 2 {
		t.Fatalf("d.Preds = %v, want 2 preds", d.Preds())
	}
	s, _ := g.Lookup("s")
	if len(s.Succs()) != 1 || s.Succs()[0] != d.ID {
		t.Errorf("s.Succs = %v, want [%d]", s.Succs(), d.ID)
	}
	if len(s.Preds()) != 0 {
		t.Errorf("s.Preds = %v, want none (inputs are not nodes)", s.Preds())
	}
}

func TestDuplicatePredCollapses(t *testing.T) {
	g := New("dup")
	if err := g.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddOp("x", op.Add, "a", "a"); err != nil {
		t.Fatal(err)
	}
	id, err := g.AddOp("y", op.Mul, "x", "x") // same producer twice
	if err != nil {
		t.Fatal(err)
	}
	if n := g.Node(id); len(n.Preds()) != 1 {
		t.Errorf("y.Preds = %v, want a single collapsed edge", n.Preds())
	}
}

func TestErrors(t *testing.T) {
	g := New("err")
	if err := g.AddInput(""); err == nil {
		t.Error("empty input accepted")
	}
	if err := g.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddOp("x", op.Add, "a", "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddInput("x"); err == nil {
		t.Error("input colliding with node accepted")
	}
	if _, err := g.AddOp("x", op.Add, "a", "a"); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := g.AddOp("a", op.Add, "a", "a"); err == nil {
		t.Error("node colliding with input accepted")
	}
	if _, err := g.AddOp("y", op.Add, "a", "missing"); err == nil {
		t.Error("undefined arg accepted")
	}
	if _, err := g.AddOp("y", op.Add, "a"); err == nil {
		t.Error("bad arity accepted")
	}
	if _, err := g.AddOp("y", op.Kind(999), "a", "a"); err == nil {
		t.Error("invalid op accepted")
	}
	if _, err := g.AddOp("", op.Add, "a", "a"); err == nil {
		t.Error("empty name accepted")
	}
	if err := g.SetCycles(0, 0); err == nil {
		t.Error("SetCycles(0) accepted")
	}
	if err := g.SetCycles(99, 2); err == nil {
		t.Error("SetCycles on missing node accepted")
	}
	if err := g.SetDelayNs(0, -1); err == nil {
		t.Error("negative delay accepted")
	}
	if err := g.Tag(99, CondTag{1, 1}); err == nil {
		t.Error("Tag on missing node accepted")
	}
}

func TestFreeze(t *testing.T) {
	g := buildDiamond(t)
	g.Freeze()
	if err := g.AddInput("z"); err == nil {
		t.Error("AddInput on frozen graph accepted")
	}
	if _, err := g.AddOp("z", op.Add, "a", "b"); err == nil {
		t.Error("AddOp on frozen graph accepted")
	}
	c := g.Clone()
	if _, err := c.AddOp("z", op.Add, "a", "b"); err != nil {
		t.Errorf("clone should be unfrozen: %v", err)
	}
}

func TestNodePanicsOnBadID(t *testing.T) {
	g := buildDiamond(t)
	defer func() {
		if recover() == nil {
			t.Error("Node(99) did not panic")
		}
	}()
	g.Node(99)
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	g := buildDiamond(t)
	pos := make(map[NodeID]int)
	for i, id := range g.TopoOrder() {
		pos[id] = i
	}
	for _, n := range g.Nodes() {
		for _, p := range n.Preds() {
			if pos[p] >= pos[n.ID] {
				t.Errorf("node %q before its predecessor %d", n.Name, p)
			}
		}
	}
}

func TestCriticalPath(t *testing.T) {
	g := buildDiamond(t)
	if got := g.CriticalPathCycles(); got != 2 {
		t.Errorf("CriticalPathCycles = %d, want 2", got)
	}
	p, _ := g.Lookup("p")
	if err := g.SetCycles(p.ID, 2); err != nil {
		t.Fatal(err)
	}
	if got := g.CriticalPathCycles(); got != 3 {
		t.Errorf("CriticalPathCycles with 2-cycle mul = %d, want 3", got)
	}
}

func TestMutualExclusion(t *testing.T) {
	g := New("mx")
	if err := g.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	x, _ := g.AddOp("x", op.Add, "a", "a")
	y, _ := g.AddOp("y", op.Sub, "a", "a")
	z, _ := g.AddOp("z", op.Mul, "a", "a")
	if err := g.Tag(x, CondTag{Cond: 1, Branch: 0}); err != nil {
		t.Fatal(err)
	}
	if err := g.Tag(y, CondTag{Cond: 1, Branch: 1}); err != nil {
		t.Fatal(err)
	}
	if !g.MutuallyExclusive(x, y) || !g.MutuallyExclusive(y, x) {
		t.Error("x,y should be mutually exclusive")
	}
	if g.MutuallyExclusive(x, z) {
		t.Error("x,z should not be mutually exclusive (z unconditional)")
	}
	if g.MutuallyExclusive(x, x) {
		t.Error("a node is never exclusive with itself")
	}
	// Same branch: not exclusive.
	w, _ := g.AddOp("w", op.Div, "a", "a")
	if err := g.Tag(w, CondTag{Cond: 1, Branch: 0}); err != nil {
		t.Fatal(err)
	}
	if g.MutuallyExclusive(x, w) {
		t.Error("same-branch nodes should not be exclusive")
	}
}

func TestNestedExclusion(t *testing.T) {
	// Nested if: outer cond 1, inner cond 2 inside branch 0 of cond 1.
	g := New("nested")
	if err := g.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	inner0, _ := g.AddOp("i0", op.Add, "a", "a")
	inner1, _ := g.AddOp("i1", op.Sub, "a", "a")
	other, _ := g.AddOp("o", op.Mul, "a", "a")
	g.Tag(inner0, CondTag{1, 0}, CondTag{2, 0})
	g.Tag(inner1, CondTag{1, 0}, CondTag{2, 1})
	g.Tag(other, CondTag{1, 1})
	if !g.MutuallyExclusive(inner0, inner1) {
		t.Error("inner branches exclusive")
	}
	if !g.MutuallyExclusive(inner0, other) || !g.MutuallyExclusive(inner1, other) {
		t.Error("inner ops exclusive with the other outer branch")
	}
}

func TestEval(t *testing.T) {
	g := buildDiamond(t)
	vals, err := g.Eval(map[string]int64{"a": 5, "b": 3})
	if err != nil {
		t.Fatal(err)
	}
	if vals["s"] != 8 || vals["p"] != 15 || vals["d"] != -7 {
		t.Errorf("Eval = %v", vals)
	}
	if _, err := g.Eval(map[string]int64{"a": 5}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestLoopNode(t *testing.T) {
	body := New("body")
	if err := body.AddInput("acc"); err != nil {
		t.Fatal(err)
	}
	if err := body.AddInput("step"); err != nil {
		t.Fatal(err)
	}
	if _, err := body.AddOp("next", op.Add, "acc", "step"); err != nil {
		t.Fatal(err)
	}

	g := New("outer")
	g.AddInput("x")
	g.AddInput("y")
	id, err := g.AddLoop("loop", body, "next", map[string]string{"acc": "x", "step": "y"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetCycles(id, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddOp("out", op.Mul, "loop", "y"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	n := g.Node(id)
	if !n.IsLoop() || n.Cycles != 3 {
		t.Errorf("loop node misconfigured: %+v", n)
	}
	vals, err := g.Eval(map[string]int64{"x": 10, "y": 4})
	if err != nil {
		t.Fatal(err)
	}
	if vals["loop"] != 14 || vals["out"] != 56 {
		t.Errorf("loop Eval = %v", vals)
	}
	if got := g.CriticalPathCycles(); got != 4 {
		t.Errorf("critical path with 3-cycle loop = %d, want 4", got)
	}
}

func TestLoopErrors(t *testing.T) {
	body := New("body")
	body.AddInput("p")
	body.AddOp("q", op.Add, "p", "p")

	g := New("outer")
	g.AddInput("x")
	if _, err := g.AddLoop("l", nil, "q", nil); err == nil {
		t.Error("nil body accepted")
	}
	if _, err := g.AddLoop("l", body, "nosuch", map[string]string{"p": "x"}); err == nil {
		t.Error("bad SubOut accepted")
	}
	if _, err := g.AddLoop("l", body, "q", map[string]string{}); err == nil {
		t.Error("missing binds accepted")
	}
	if _, err := g.AddLoop("l", body, "q", map[string]string{"wrong": "x"}); err == nil {
		t.Error("wrong bind key accepted")
	}
	if _, err := g.AddLoop("l", body, "q", map[string]string{"p": "x"}); err != nil {
		t.Errorf("valid loop rejected: %v", err)
	}
}

func TestClone(t *testing.T) {
	g := buildDiamond(t)
	s, _ := g.Lookup("s")
	g.Tag(s.ID, CondTag{1, 0})
	c := g.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// Mutating the clone must not affect the original.
	cs, _ := c.Lookup("s")
	cs.Excl[0].Branch = 9
	if g.Node(s.ID).Excl[0].Branch != 0 {
		t.Error("clone shares Excl storage with original")
	}
	if _, err := c.AddOp("extra", op.Add, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if g.Len() == c.Len() {
		t.Error("clone shares node storage with original")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := buildDiamond(t)
	g.Node(0).Cycles = 0
	if err := g.Validate(); err == nil {
		t.Error("Validate missed zero cycles")
	}
	g = buildDiamond(t)
	g.Node(2).preds[0] = 2 // self/forward pred
	if err := g.Validate(); err == nil {
		t.Error("Validate missed forward pred")
	}
	g = buildDiamond(t)
	g.Node(0).succs = append(g.Node(0).succs, 1) // bogus back-link
	if err := g.Validate(); err == nil {
		t.Error("Validate missed broken succ link")
	}
}

func TestQuickGraphInvariants(t *testing.T) {
	// Property (testing/quick): for graphs generated from arbitrary byte
	// strings, validation always passes, the topological order respects
	// every edge, clones evaluate identically to their originals, and the
	// critical path never exceeds the node-cycle sum.
	f := func(ops []byte, cycles []byte) bool {
		g := New("q")
		g.AddInput("i")
		names := []string{"i"}
		kinds := []op.Kind{op.Add, op.Sub, op.Mul, op.And, op.Lt}
		for i, b := range ops {
			if i >= 24 {
				break
			}
			name := fmt.Sprintf("n%d", i)
			a1 := names[int(b)%len(names)]
			a2 := names[int(b>>4)%len(names)]
			id, err := g.AddOp(name, kinds[int(b)%len(kinds)], a1, a2)
			if err != nil {
				return false
			}
			if i < len(cycles) {
				if err := g.SetCycles(id, 1+int(cycles[i])%3); err != nil {
					return false
				}
			}
			names = append(names, name)
		}
		if err := g.Validate(); err != nil {
			return false
		}
		pos := make(map[NodeID]int)
		for i, id := range g.TopoOrder() {
			pos[id] = i
		}
		total := 0
		for _, n := range g.Nodes() {
			total += n.Cycles
			for _, p := range n.Preds() {
				if pos[p] >= pos[n.ID] {
					return false
				}
			}
		}
		if g.Len() > 0 && (g.CriticalPathCycles() < 1 || g.CriticalPathCycles() > total) {
			return false
		}
		in := map[string]int64{"i": 7}
		want, err := g.Eval(in)
		if err != nil {
			return false
		}
		got, err := g.Clone().Eval(in)
		if err != nil {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
