package dfg

import "fmt"

// MergeExclusiveDuplicates implements the conditional-statement
// optimization of §5.1: operations that appear in more than one branch of
// the same conditional with identical inputs are redundant — only one copy
// is kept, since mutually exclusive branches can always share the unit.
//
// Two nodes are merged when they are mutually exclusive, have the same
// operation kind and cycle count, and read the same argument lists
// (order-insensitively for commutative operations). The survivor (the
// lower-ID node) takes over the duplicate's consumers, and its exclusion
// tags are reduced to the tags the two copies share, so the merged
// operation is treated as common to both branches.
//
// The method returns a new graph (the receiver is left untouched) together
// with the number of operations removed. A rebuild failure — possible
// only if the receiver itself was malformed — is returned as an error
// instead of panicking.
func (g *Graph) MergeExclusiveDuplicates() (*Graph, int, error) {
	replace := make(map[string]string) // dropped signal -> surviving signal
	drop := make(map[NodeID]bool)
	keepTags := make(map[NodeID][]CondTag)

	nodes := g.Nodes()
	for i := 0; i < len(nodes); i++ {
		if drop[nodes[i].ID] {
			continue
		}
		for j := i + 1; j < len(nodes); j++ {
			a, b := nodes[i], nodes[j]
			if drop[b.ID] || !g.MutuallyExclusive(a.ID, b.ID) {
				continue
			}
			if !sameComputation(a, b, replace) {
				continue
			}
			drop[b.ID] = true
			replace[b.Name] = resolved(a.Name, replace)
			keepTags[a.ID] = commonTags(a.Excl, b.Excl)
		}
	}
	if len(drop) == 0 {
		return g.Clone(), 0, nil
	}

	out := New(g.Name)
	for _, in := range g.Inputs() {
		if err := out.AddInput(in); err != nil {
			return nil, 0, fmt.Errorf("dfg: merge rebuild of %s: %w", g.Name, err)
		}
	}
	for _, n := range nodes {
		if drop[n.ID] {
			continue
		}
		args := make([]string, len(n.Args))
		for k, a := range n.Args {
			args[k] = resolved(a, replace)
		}
		var id NodeID
		var err error
		if n.IsLoop() {
			binds := make(map[string]string, len(n.SubIns))
			for k, in := range n.SubIns {
				binds[in] = args[k]
			}
			id, err = out.AddLoop(n.Name, n.Sub, n.SubOut, binds)
		} else {
			id, err = out.AddOp(n.Name, n.Op, args...)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("dfg: merge rebuild of %s: node %q: %w", g.Name, n.Name, err)
		}
		nn := out.Node(id)
		nn.Cycles = n.Cycles
		nn.DelayNs = n.DelayNs
		if tags, ok := keepTags[n.ID]; ok {
			nn.Excl = append([]CondTag(nil), tags...)
		} else {
			nn.Excl = append([]CondTag(nil), n.Excl...)
		}
	}
	return out, len(drop), nil
}

// sameComputation reports whether a and b compute the same value: same op,
// same cycle count, and argument lists equal after resolving prior merges,
// allowing a swap for commutative ops. Loop nodes never merge.
func sameComputation(a, b *Node, replace map[string]string) bool {
	if a.IsLoop() || b.IsLoop() {
		return false
	}
	if a.Op != b.Op || a.Cycles != b.Cycles || len(a.Args) != len(b.Args) {
		return false
	}
	ra := make([]string, len(a.Args))
	rb := make([]string, len(b.Args))
	for i := range a.Args {
		ra[i] = resolved(a.Args[i], replace)
		rb[i] = resolved(b.Args[i], replace)
	}
	if equalStrings(ra, rb) {
		return true
	}
	if a.Op.Commutative() && len(ra) == 2 && ra[0] == rb[1] && ra[1] == rb[0] {
		return true
	}
	return false
}

func resolved(name string, replace map[string]string) string {
	for {
		r, ok := replace[name]
		if !ok {
			return name
		}
		name = r
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func commonTags(a, b []CondTag) []CondTag {
	var out []CondTag
	for _, ta := range a {
		for _, tb := range b {
			if ta == tb {
				out = append(out, ta)
			}
		}
	}
	return out
}
