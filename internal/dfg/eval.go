package dfg

import "fmt"

// Eval computes every node's output value from concrete primary-input
// values, returning a map from signal name to value. It is the reference
// against which internal/sim cross-checks synthesized datapaths.
//
// Conditional branches are all evaluated (data-flow semantics): a
// mutually-exclusive pair simply produces two values, of which a real
// controller would commit one. Folded loops evaluate their body once per
// the loop-folding model (§5.2), with inner inputs bound from outer
// signals.
func (g *Graph) Eval(inputs map[string]int64) (map[string]int64, error) {
	vals := make(map[string]int64, len(g.nodes)+len(g.inputs))
	for in := range g.inputs {
		v, ok := inputs[in]
		if !ok {
			return nil, fmt.Errorf("dfg %s: Eval: missing input %q", g.Name, in)
		}
		vals[in] = v
	}
	for _, id := range g.TopoOrder() {
		n := g.nodes[id]
		if n.IsLoop() {
			sub := make(map[string]int64, len(n.SubIns))
			for i, in := range n.SubIns {
				sub[in] = vals[n.Args[i]]
			}
			inner, err := n.Sub.Eval(sub)
			if err != nil {
				return nil, fmt.Errorf("dfg %s: loop %q: %w", g.Name, n.Name, err)
			}
			vals[n.Name] = inner[n.SubOut]
			continue
		}
		var a, b int64
		a = vals[n.Args[0]]
		if len(n.Args) > 1 {
			b = vals[n.Args[1]]
		}
		vals[n.Name] = n.Op.Eval(a, b)
	}
	return vals, nil
}
