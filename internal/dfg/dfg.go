// Package dfg implements the data-flow-graph behavioral representation
// consumed by the MFS and MFSA algorithms. A Graph is a DAG of operations
// over named signals: every node produces exactly one output signal (its
// Name) and reads its Args, which are either primary inputs or the outputs
// of other nodes. Nodes carry the annotations the paper's extensions need:
// per-node cycle counts (multicycle operations, §5.3), combinational delays
// (chaining, §5.4), mutual-exclusion tags (conditionals, §5.1), and nested
// sub-graphs (loop folding, §5.2).
package dfg

import (
	"fmt"
	"sort"

	"repro/internal/op"
)

// NodeID identifies a node within one Graph. IDs are dense, starting at 0,
// in insertion order.
type NodeID int

// CondTag marks membership in one branch of one conditional construct.
// Two operations are mutually exclusive when they carry tags with the same
// Cond but different Branch — they sit on opposite sides of an if/else or in
// different arms of a case, so they can never execute in the same run and
// may share a functional unit in the same control step (§5.1).
type CondTag struct {
	Cond   int // conditional construct identifier
	Branch int // branch within the construct
}

// Node is one operation in the graph.
type Node struct {
	ID   NodeID
	Op   op.Kind  // operation kind; Invalid iff Sub != nil
	Name string   // output signal name, unique within the graph
	Args []string // input signal names, in operand order

	// Cycles is the number of consecutive control steps the operation
	// occupies (k-cycle operations, §5.3). Always >= 1.
	Cycles int

	// DelayNs is the combinational propagation delay used by the chaining
	// extension (§5.4) to pack data-dependent operations into one control
	// step of a given clock period.
	DelayNs float64

	// Excl lists the conditional branches this operation belongs to
	// (innermost last). Empty for unconditional operations.
	Excl []CondTag

	// Sub, when non-nil, makes this node a folded loop: a nested graph
	// scheduled under its own local time constraint and treated here as a
	// single multi-cycle operation (§5.2). SubOut names the inner node whose
	// value this node produces; SubIns maps Args positionally onto the inner
	// graph's primary inputs.
	Sub    *Graph
	SubOut string
	SubIns []string

	preds []NodeID
	succs []NodeID
}

// IsLoop reports whether the node is a folded-loop super-operation.
func (n *Node) IsLoop() bool { return n.Sub != nil }

// Preds returns the IDs of nodes whose outputs this node consumes.
// The returned slice must not be modified.
func (n *Node) Preds() []NodeID { return n.preds }

// Succs returns the IDs of nodes consuming this node's output.
// The returned slice must not be modified.
func (n *Node) Succs() []NodeID { return n.succs }

// Graph is a data-flow graph under construction or in use. The zero value
// is not ready; use New.
type Graph struct {
	Name string

	nodes  []*Node
	byName map[string]NodeID
	inputs map[string]bool
	frozen bool
}

// New returns an empty graph with the given diagnostic name.
func New(name string) *Graph {
	return &Graph{
		Name:   name,
		byName: make(map[string]NodeID),
		inputs: make(map[string]bool),
	}
}

// AddInput declares a primary input signal. Declaring the same input twice
// is harmless; reusing the name of an existing node is an error.
func (g *Graph) AddInput(name string) error {
	if g.frozen {
		return fmt.Errorf("dfg %s: graph is frozen", g.Name)
	}
	if name == "" {
		return fmt.Errorf("dfg %s: empty input name", g.Name)
	}
	if _, ok := g.byName[name]; ok {
		return fmt.Errorf("dfg %s: input %q collides with node output", g.Name, name)
	}
	g.inputs[name] = true
	return nil
}

// AddOp appends an operation node producing signal name from args and
// returns its ID. Args must already exist as primary inputs or node outputs
// (the graph is built in topological order by construction).
func (g *Graph) AddOp(name string, k op.Kind, args ...string) (NodeID, error) {
	if err := g.checkNew(name); err != nil {
		return -1, err
	}
	if !k.Valid() {
		return -1, fmt.Errorf("dfg %s: node %q: invalid op", g.Name, name)
	}
	if len(args) != k.Arity() {
		return -1, fmt.Errorf("dfg %s: node %q: op %v wants %d args, got %d",
			g.Name, name, k, k.Arity(), len(args))
	}
	n := &Node{
		ID:      NodeID(len(g.nodes)),
		Op:      k,
		Name:    name,
		Args:    append([]string(nil), args...),
		Cycles:  k.DefaultCycles(),
		DelayNs: k.DefaultDelayNs(),
	}
	if err := g.link(n); err != nil {
		return -1, err
	}
	return n.ID, nil
}

// AddLoop appends a folded-loop super-operation (§5.2). sub is the loop
// body (already built, typically already scheduled so its Cycles/local time
// constraint is known), subOut names the inner node whose value the loop
// exposes, and binds maps each of sub's primary inputs to an outer signal.
// The node's Cycles defaults to 1 until SetCycles records the loop's local
// time constraint.
func (g *Graph) AddLoop(name string, sub *Graph, subOut string, binds map[string]string) (NodeID, error) {
	if err := g.checkNew(name); err != nil {
		return -1, err
	}
	if sub == nil {
		return -1, fmt.Errorf("dfg %s: loop %q: nil body", g.Name, name)
	}
	if _, ok := sub.byName[subOut]; !ok {
		return -1, fmt.Errorf("dfg %s: loop %q: body has no node %q", g.Name, name, subOut)
	}
	ins := sub.Inputs()
	if len(binds) != len(ins) {
		return -1, fmt.Errorf("dfg %s: loop %q: body has %d inputs, %d bound",
			g.Name, name, len(ins), len(binds))
	}
	args := make([]string, 0, len(ins))
	subIns := make([]string, 0, len(ins))
	for _, in := range ins {
		outer, ok := binds[in]
		if !ok {
			return -1, fmt.Errorf("dfg %s: loop %q: body input %q not bound", g.Name, name, in)
		}
		args = append(args, outer)
		subIns = append(subIns, in)
	}
	n := &Node{
		ID:     NodeID(len(g.nodes)),
		Op:     op.Invalid,
		Name:   name,
		Args:   args,
		Cycles: 1,
		Sub:    sub,
		SubOut: subOut,
		SubIns: subIns,
	}
	if err := g.link(n); err != nil {
		return -1, err
	}
	return n.ID, nil
}

func (g *Graph) checkNew(name string) error {
	if g.frozen {
		return fmt.Errorf("dfg %s: graph is frozen", g.Name)
	}
	if name == "" {
		return fmt.Errorf("dfg %s: empty node name", g.Name)
	}
	if _, ok := g.byName[name]; ok {
		return fmt.Errorf("dfg %s: duplicate node %q", g.Name, name)
	}
	if g.inputs[name] {
		return fmt.Errorf("dfg %s: node %q collides with primary input", g.Name, name)
	}
	return nil
}

func (g *Graph) link(n *Node) error {
	seen := make(map[NodeID]bool)
	for _, a := range n.Args {
		if pid, ok := g.byName[a]; ok {
			if !seen[pid] {
				seen[pid] = true
				n.preds = append(n.preds, pid)
				g.nodes[pid].succs = append(g.nodes[pid].succs, n.ID)
			}
			continue
		}
		if !g.inputs[a] {
			return fmt.Errorf("dfg %s: node %q: undefined signal %q", g.Name, n.Name, a)
		}
	}
	g.nodes = append(g.nodes, n)
	g.byName[n.Name] = n.ID
	return nil
}

// SetCycles overrides the number of control steps node id occupies
// (k >= 1). Used to model 2-cycle multipliers and folded-loop durations.
func (g *Graph) SetCycles(id NodeID, k int) error {
	if k < 1 {
		return fmt.Errorf("dfg %s: SetCycles(%d): cycles %d < 1", g.Name, id, k)
	}
	n, err := g.node(id)
	if err != nil {
		return err
	}
	n.Cycles = k
	return nil
}

// SetDelayNs overrides the combinational delay of node id (chaining, §5.4).
func (g *Graph) SetDelayNs(id NodeID, ns float64) error {
	if ns <= 0 {
		return fmt.Errorf("dfg %s: SetDelayNs(%d): delay %v <= 0", g.Name, id, ns)
	}
	n, err := g.node(id)
	if err != nil {
		return err
	}
	n.DelayNs = ns
	return nil
}

// Tag appends conditional-branch membership to node id (§5.1).
func (g *Graph) Tag(id NodeID, tags ...CondTag) error {
	n, err := g.node(id)
	if err != nil {
		return err
	}
	n.Excl = append(n.Excl, tags...)
	return nil
}

func (g *Graph) node(id NodeID) (*Node, error) {
	if id < 0 || int(id) >= len(g.nodes) {
		return nil, fmt.Errorf("dfg %s: no node %d", g.Name, id)
	}
	return g.nodes[id], nil
}

// Node returns the node with the given ID; it panics on a bad ID, which
// always indicates a programming error: IDs are minted only by this
// graph's Add* methods, so a lookup can fail only when a caller crosses
// IDs between graphs or fabricates one — unreachable through correct use
// of the API, and not a condition an error return could make the buggy
// caller handle sensibly.
func (g *Graph) Node(id NodeID) *Node {
	n, err := g.node(id)
	if err != nil {
		panic("dfg: " + err.Error())
	}
	return n
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Lookup returns the node producing the named signal, if any.
func (g *Graph) Lookup(name string) (*Node, bool) {
	id, ok := g.byName[name]
	if !ok {
		return nil, false
	}
	return g.nodes[id], true
}

// Inputs returns the primary input names in sorted order.
func (g *Graph) Inputs() []string {
	ins := make([]string, 0, len(g.inputs))
	for in := range g.inputs {
		ins = append(ins, in)
	}
	sort.Strings(ins)
	return ins
}

// Outputs returns the names of nodes with no successors (the design's
// primary outputs), sorted.
func (g *Graph) Outputs() []string {
	var outs []string
	for _, n := range g.nodes {
		if len(n.succs) == 0 {
			outs = append(outs, n.Name)
		}
	}
	sort.Strings(outs)
	return outs
}

// Nodes returns all nodes in ID order. The slice must not be modified.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Freeze marks the graph immutable: further AddInput/AddOp/AddLoop
// calls fail. Callers can freeze a graph once a schedule has been
// computed from it so the structure cannot drift under the schedule.
func (g *Graph) Freeze() { g.frozen = true }

// MutuallyExclusive reports whether nodes a and b can never execute in the
// same run: they carry tags for the same conditional but different branches.
func (g *Graph) MutuallyExclusive(a, b NodeID) bool {
	na, nb := g.Node(a), g.Node(b)
	for _, ta := range na.Excl {
		for _, tb := range nb.Excl {
			if ta.Cond == tb.Cond && ta.Branch != tb.Branch {
				return true
			}
		}
	}
	return false
}

// HasExclusions reports whether any node carries a mutual-exclusion tag
// — i.e. whether MutuallyExclusive can ever return true on this graph.
// When it cannot, an occupied grid cell is provably illegal for every
// operation, which lets the schedulers' window walks skip occupied cells
// straight from grid.Table's occupancy index without consulting the
// occupant lists. The scan is O(nodes); callers that probe it per
// placement should cache the answer for the duration of one run (tags
// are set at graph-construction time, before scheduling starts).
func (g *Graph) HasExclusions() bool {
	for _, n := range g.nodes {
		if len(n.Excl) > 0 {
			return true
		}
	}
	return false
}

// TopoOrder returns node IDs in a deterministic topological order
// (dependencies first; ties broken by ID). Graphs are acyclic by
// construction, so this always succeeds.
func (g *Graph) TopoOrder() []NodeID {
	order := make([]NodeID, len(g.nodes))
	for i := range order {
		order[i] = NodeID(i) // insertion order is already topological
	}
	return order
}

// CriticalPathCycles returns the length, in control steps, of the longest
// dependency chain — the minimum feasible time constraint (without
// chaining).
func (g *Graph) CriticalPathCycles() int {
	finish := make([]int, len(g.nodes))
	longest := 0
	for _, id := range g.TopoOrder() {
		n := g.nodes[id]
		start := 0
		for _, p := range n.preds {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[id] = start + n.Cycles
		if finish[id] > longest {
			longest = finish[id]
		}
	}
	return longest
}

// Validate checks structural invariants: unique non-empty names, defined
// arguments, positive cycle counts, consistent pred/succ cross-links, and
// well-formed loop nodes. It returns the first violation found.
func (g *Graph) Validate() error {
	for _, n := range g.nodes {
		if n.Name == "" {
			return fmt.Errorf("dfg %s: node %d: empty name", g.Name, n.ID)
		}
		if got, ok := g.byName[n.Name]; !ok || got != n.ID {
			return fmt.Errorf("dfg %s: node %q: name index broken", g.Name, n.Name)
		}
		if n.Cycles < 1 {
			return fmt.Errorf("dfg %s: node %q: cycles %d", g.Name, n.Name, n.Cycles)
		}
		if n.IsLoop() {
			if n.Op.Valid() {
				return fmt.Errorf("dfg %s: loop %q has op %v", g.Name, n.Name, n.Op)
			}
			if err := n.Sub.Validate(); err != nil {
				return fmt.Errorf("dfg %s: loop %q: %w", g.Name, n.Name, err)
			}
		} else {
			if !n.Op.Valid() {
				return fmt.Errorf("dfg %s: node %q: invalid op", g.Name, n.Name)
			}
			if len(n.Args) != n.Op.Arity() {
				return fmt.Errorf("dfg %s: node %q: arity mismatch", g.Name, n.Name)
			}
		}
		for _, a := range n.Args {
			if _, ok := g.byName[a]; !ok && !g.inputs[a] {
				return fmt.Errorf("dfg %s: node %q: undefined arg %q", g.Name, n.Name, a)
			}
		}
		for _, p := range n.preds {
			if p >= n.ID {
				return fmt.Errorf("dfg %s: node %q: forward pred %d", g.Name, n.Name, p)
			}
			if !containsID(g.nodes[p].succs, n.ID) {
				return fmt.Errorf("dfg %s: node %q: pred %d missing back-link", g.Name, n.Name, p)
			}
		}
		for _, s := range n.succs {
			if !containsID(g.nodes[s].preds, n.ID) {
				return fmt.Errorf("dfg %s: node %q: succ %d missing back-link", g.Name, n.Name, s)
			}
		}
	}
	return nil
}

func containsID(ids []NodeID, id NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the graph (loop bodies are shared, since
// they are scheduled independently and treated as read-only here). The
// clone is unfrozen.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for in := range g.inputs {
		c.inputs[in] = true
	}
	c.nodes = make([]*Node, len(g.nodes))
	for i, n := range g.nodes {
		cn := *n
		cn.Args = append([]string(nil), n.Args...)
		cn.Excl = append([]CondTag(nil), n.Excl...)
		cn.SubIns = append([]string(nil), n.SubIns...)
		cn.preds = append([]NodeID(nil), n.preds...)
		cn.succs = append([]NodeID(nil), n.succs...)
		c.nodes[i] = &cn
		c.byName[cn.Name] = cn.ID
	}
	return c
}
