package cli

import (
	"context"
	"flag"
	"io"
	"testing"
	"time"
)

func TestTimeoutFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	d := Timeout(fs)
	if err := fs.Parse([]string{"-timeout", "250ms"}); err != nil {
		t.Fatal(err)
	}
	if *d != 250*time.Millisecond {
		t.Fatalf("parsed timeout = %v, want 250ms", *d)
	}
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	if *Timeout(fs2) != 0 {
		t.Fatal("default timeout should be 0 (no limit)")
	}
}

func TestWithTimeoutUnlimited(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), 0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero timeout must not set a deadline")
	}
	if ctx.Err() != nil {
		t.Fatalf("fresh context already failed: %v", ctx.Err())
	}
	cancel()
	if ctx.Err() != context.Canceled {
		t.Fatalf("after cancel: %v, want context.Canceled", ctx.Err())
	}
}

func TestWithTimeoutDeadline(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("positive timeout must set a deadline")
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired")
	}
	if ctx.Err() != context.DeadlineExceeded {
		t.Fatalf("got %v, want context.DeadlineExceeded", ctx.Err())
	}
}
