// Package cli holds the entry-point plumbing every cmd/ tool shares: a
// main wrapper that installs signal-driven cancellation and the uniform
// "<tool>: error" exit path, plus the -timeout flag each tool registers.
//
// Keeping this in one place guarantees the tools behave identically
// under ^C — the context is cancelled, the synthesis engine unwinds
// cooperatively (pool workers stop dispatching, partially written
// output is abandoned), and the process exits through the same error
// path it uses for any other failure.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/guard"
)

// Main is the body of every tool's func main: it builds a context that
// is cancelled on SIGINT or SIGTERM, invokes run with os.Args and
// os.Stdout, and on error prints "<tool>: <err>" to stderr and exits 1.
// A cancelled run therefore reports context.Canceled rather than dying
// mid-write.
//
// Main is also the panic-recovery boundary every cmd/ tool relies on
// (hlsvet's guardboundary analyzer verifies this): a panic anywhere
// below run is converted into a *guard.InternalError and reported
// through the ordinary error exit path instead of killing the process
// with a bare stack trace.
func Main(tool string, run func(ctx context.Context, args []string, out io.Writer) error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := func() (err error) {
		defer guard.Recover(tool, &err)
		return run(ctx, os.Args[1:], os.Stdout)
	}()
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, tool+":", err)
		os.Exit(1)
	}
}

// Timeout registers the shared -timeout flag on a tool's FlagSet. The
// zero default means "no limit"; any positive duration bounds the whole
// run via WithTimeout.
func Timeout(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0, "give up after this duration, e.g. 30s (0 = no limit)")
}

// WithTimeout bounds ctx by d when d > 0; with d <= 0 it returns a
// plain cancellable child. The returned cancel function must be called
// on every path (defer it right after the call).
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// Profiler drives the shared -cpuprofile/-memprofile flags: pprof output
// for any tool run, so a slow or allocation-heavy invocation can be
// inspected with `go tool pprof` without writing a benchmark first.
type Profiler struct {
	cpu, mem string
	cpuFile  *os.File
}

// Profile registers the shared profiling flags on a tool's FlagSet.
func Profile(fs *flag.FlagSet) *Profiler {
	p := &Profiler{}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given and returns a
// stop function to defer: it finishes the CPU profile and writes the
// -memprofile heap snapshot. Profile-teardown problems are reported to
// stderr rather than returned — by then the tool's real work already
// succeeded, and a lost profile should not change its exit status.
func (p *Profiler) Start() (stop func(), err error) {
	if p.cpu != "" {
		f, err := os.Create(p.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	return p.stop, nil
}

func (p *Profiler) stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
		}
		p.cpuFile = nil
	}
	if p.mem == "" {
		return
	}
	f, err := os.Create(p.mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		return
	}
	runtime.GC() // settle the heap so the snapshot shows live objects
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
	}
}
