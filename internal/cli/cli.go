// Package cli holds the entry-point plumbing every cmd/ tool shares: a
// main wrapper that installs signal-driven cancellation and the uniform
// "<tool>: error" exit path, plus the -timeout flag each tool registers.
//
// Keeping this in one place guarantees the tools behave identically
// under ^C — the context is cancelled, the synthesis engine unwinds
// cooperatively (pool workers stop dispatching, partially written
// output is abandoned), and the process exits through the same error
// path it uses for any other failure.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Main is the body of every tool's func main: it builds a context that
// is cancelled on SIGINT or SIGTERM, invokes run with os.Args and
// os.Stdout, and on error prints "<tool>: <err>" to stderr and exits 1.
// A cancelled run therefore reports context.Canceled rather than dying
// mid-write.
func Main(tool string, run func(ctx context.Context, args []string, out io.Writer) error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, tool+":", err)
		os.Exit(1)
	}
}

// Timeout registers the shared -timeout flag on a tool's FlagSet. The
// zero default means "no limit"; any positive duration bounds the whole
// run via WithTimeout.
func Timeout(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0, "give up after this duration, e.g. 30s (0 = no limit)")
}

// WithTimeout bounds ctx by d when d > 0; with d <= 0 it returns a
// plain cancellable child. The returned cancel function must be called
// on every path (defer it right after the call).
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}
