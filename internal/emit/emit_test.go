package emit

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/ctrl"
	"repro/internal/mfsa"
)

func TestVerilogStructure(t *testing.T) {
	ex := benchmarks.Facet()
	res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: 5})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ctrl.Build(ex.Graph, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	v := Verilog(ex.Graph, res.Schedule, res.Datapath, c)
	wants := []string{
		"module facet",
		"endmodule",
		"input  wire        clk",
		"input  wire [31:0] i1",
		"output wire [31:0] out_",
		"reg [31:0] R0",
		"always @(posedge clk)",
		"case (state)",
		"assign w_add1 = w_i1 + w_i2",
	}
	for _, w := range wants {
		if !strings.Contains(v, w) {
			t.Errorf("netlist missing %q", w)
		}
	}
	// Every node has a wire declaration and an assignment.
	for _, n := range ex.Graph.Nodes() {
		if !strings.Contains(v, "wire [31:0] w_"+n.Name+";") {
			t.Errorf("missing wire for %q", n.Name)
		}
		if !strings.Contains(v, "assign w_"+n.Name+" =") {
			t.Errorf("missing assignment for %q", n.Name)
		}
	}
	// Balanced module/endmodule.
	if strings.Count(v, "module ") != strings.Count(v, "endmodule") {
		t.Error("unbalanced module/endmodule")
	}
}

func TestVerilogInputWires(t *testing.T) {
	// Input references must be prefixed consistently; the raw graph input
	// names feed w_<name> wires via the port list. The emitter references
	// operands as w_<sig>, so inputs used as operands appear as w_i1 etc.
	ex := benchmarks.Diffeq()
	res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ctrl.Build(ex.Graph, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	v := Verilog(ex.Graph, res.Schedule, res.Datapath, c)
	if !strings.Contains(v, "w_dx") {
		t.Error("input operand not referenced")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"abc":     "abc",
		"a-b.c":   "a_b_c",
		"":        "sig",
		"x$1":     "x_1",
		"Under_9": "Under_9",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 17: 5}
	for n, want := range cases {
		if got := bits(n); got != want {
			t.Errorf("bits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPipelinedRestartComment(t *testing.T) {
	ex := benchmarks.Diffeq()
	res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: 8, Latency: 4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ctrl.Build(ex.Graph, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	v := Verilog(ex.Graph, res.Schedule, res.Datapath, c)
	if !strings.Contains(v, "functional pipelining") {
		t.Error("pipelined FSM not annotated")
	}
	if !strings.Contains(v, "state == 3") {
		t.Error("restart bound should be latency-1 = 3")
	}
}
