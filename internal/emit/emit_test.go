package emit

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/ctrl"
	"repro/internal/dfg"
	"repro/internal/mfsa"
	"repro/internal/op"
)

func TestVerilogStructure(t *testing.T) {
	ex := benchmarks.Facet()
	res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: 5})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ctrl.Build(ex.Graph, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	v := Verilog(ex.Graph, res.Schedule, res.Datapath, c)
	wants := []string{
		"module facet",
		"endmodule",
		"input  wire        clk",
		"input  wire [31:0] i1",
		"output wire [31:0] out_",
		"reg [31:0] R0",
		"always @(posedge clk)",
		"case (state)",
		"assign w_add1 = w_i1 + w_i2",
	}
	for _, w := range wants {
		if !strings.Contains(v, w) {
			t.Errorf("netlist missing %q", w)
		}
	}
	// Every node has a wire declaration and an assignment.
	for _, n := range ex.Graph.Nodes() {
		if !strings.Contains(v, "wire [31:0] w_"+n.Name+";") {
			t.Errorf("missing wire for %q", n.Name)
		}
		if !strings.Contains(v, "assign w_"+n.Name+" =") {
			t.Errorf("missing assignment for %q", n.Name)
		}
	}
	// Balanced module/endmodule.
	if strings.Count(v, "module ") != strings.Count(v, "endmodule") {
		t.Error("unbalanced module/endmodule")
	}
}

func TestVerilogInputWires(t *testing.T) {
	// Input references must be prefixed consistently; the raw graph input
	// names feed w_<name> wires via the port list. The emitter references
	// operands as w_<sig>, so inputs used as operands appear as w_i1 etc.
	ex := benchmarks.Diffeq()
	res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ctrl.Build(ex.Graph, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	v := Verilog(ex.Graph, res.Schedule, res.Datapath, c)
	if !strings.Contains(v, "w_dx") {
		t.Error("input operand not referenced")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"abc":     "abc",
		"a-b.c":   "a_b_c",
		"":        "sig",
		"x$1":     "x_1",
		"Under_9": "Under_9",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 17: 5}
	for n, want := range cases {
		if got := bits(n); got != want {
			t.Errorf("bits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPipelinedRestartComment(t *testing.T) {
	ex := benchmarks.Diffeq()
	res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: 8, Latency: 4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ctrl.Build(ex.Graph, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	v := Verilog(ex.Graph, res.Schedule, res.Datapath, c)
	if !strings.Contains(v, "functional pipelining") {
		t.Error("pipelined FSM not annotated")
	}
	if !strings.Contains(v, "state == 3") {
		t.Error("restart bound should be latency-1 = 3")
	}
}

func TestNamerCollisions(t *testing.T) {
	// "a+b" and "a-b" both sanitize to "a_b"; the namer must keep the
	// emitted identifiers distinct and must not shadow the FSM's fixed
	// names (clk, rst, state).
	g := dfg.New("collide")
	for _, in := range []string{"a+b", "a-b", "state", "clk"} {
		if err := g.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddOp("x.y", op.Add, "a+b", "a-b"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddOp("x$y", op.Mul, "x.y", "state"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddOp("x*y", op.Add, "x$y", "clk"); err != nil {
		t.Fatal(err)
	}
	g.Freeze()
	res, err := mfsa.Synthesize(g, mfsa.Options{CS: 4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := ctrl.Build(g, res.Schedule, res.Datapath)
	if err != nil {
		t.Fatal(err)
	}
	v := Verilog(g, res.Schedule, res.Datapath, c)
	// Distinct ports for the colliding inputs, uniqued away from the
	// reserved names.
	for _, want := range []string{
		"input  wire [31:0] a_b,",
		"input  wire [31:0] a_b_2,",
		"input  wire [31:0] state_2,",
		"input  wire [31:0] clk_2,",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("netlist missing port %q", want)
		}
	}
	// Every emitted identifier is declared exactly once: collect
	// declarations and check for duplicates.
	decls := make(map[string]int)
	for _, line := range strings.Split(v, "\n") {
		line = strings.TrimSpace(line)
		for _, pfx := range []string{"input  wire [31:0] ", "output wire [31:0] ", "wire [31:0] ", "reg [31:0] "} {
			if rest, ok := strings.CutPrefix(line, pfx); ok {
				id := strings.TrimRight(rest, ",;")
				decls[id]++
				break
			}
		}
	}
	for id, n := range decls {
		if n > 1 {
			t.Errorf("identifier %q declared %d times", id, n)
		}
	}
	if len(decls) < 11 { // 4 ports + 1 output + 4 taps + 3 node wires at minimum
		t.Errorf("unexpectedly few declarations: %d (%v)", len(decls), decls)
	}
}
