package emit

import (
	"strings"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/mfsa"
	"repro/internal/sim"
)

func TestTestbenchStructure(t *testing.T) {
	ex := benchmarks.Facet()
	res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: 5})
	if err != nil {
		t.Fatal(err)
	}
	vectors := []map[string]int64{
		sim.RandomInputs(ex.Graph, 1),
		sim.RandomInputs(ex.Graph, 2),
	}
	tb, err := Testbench(ex.Graph, res.Schedule, vectors)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module facet_tb", "endmodule", ".clk(clk)", "repeat (5) @(posedge clk)",
		"// vector 0", "// vector 1", "task check", "$finish",
	} {
		if !strings.Contains(tb, want) {
			t.Errorf("testbench missing %q", want)
		}
	}
	// One check per output per vector.
	if got := strings.Count(tb, "check(out_"); got != 2*len(ex.Graph.Outputs()) {
		t.Errorf("checks = %d, want %d", got, 2*len(ex.Graph.Outputs()))
	}
	// Expected values come from the simulator: spot-check one output.
	expected, err := sim.Run(res.Schedule, vectors[0])
	if err != nil {
		t.Fatal(err)
	}
	out := ex.Graph.Outputs()[0]
	needle := "check(out_" + out
	if !strings.Contains(tb, needle) {
		t.Fatalf("output %s unchecked", out)
	}
	_ = expected
}

func TestTestbenchErrors(t *testing.T) {
	ex := benchmarks.Facet()
	res, err := mfsa.Synthesize(ex.Graph, mfsa.Options{CS: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Testbench(ex.Graph, res.Schedule, nil); err == nil {
		t.Error("no vectors accepted")
	}
	if _, err := Testbench(ex.Graph, res.Schedule, []map[string]int64{{}}); err == nil {
		t.Error("incomplete vector accepted")
	}
}
