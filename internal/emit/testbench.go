package emit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfg"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Testbench generates a self-checking Verilog-style testbench for a
// synthesized design: each vector drives the primary inputs, waits for
// the schedule's makespan, and compares every primary output against the
// value the cycle-accurate simulator predicts. The expected values come
// from sim.Run, so the testbench encodes the same behavior the design
// was verified against.
func Testbench(g *dfg.Graph, s *sched.Schedule, vectors []map[string]int64) (string, error) {
	if len(vectors) == 0 {
		return "", fmt.Errorf("emit: testbench needs at least one vector")
	}
	name := sanitize(g.Name)
	nm := newNamer(g)
	outs := g.Outputs()
	ins := g.Inputs()

	var b strings.Builder
	fmt.Fprintf(&b, "// Self-checking testbench for %s: %d vectors, %d cycles each\n",
		name, len(vectors), s.CS)
	fmt.Fprintf(&b, "module %s_tb;\n", name)
	fmt.Fprintf(&b, "    reg clk = 0, rst = 1;\n")
	for _, in := range ins {
		fmt.Fprintf(&b, "    reg  [31:0] %s;\n", nm.input(in))
	}
	for _, out := range outs {
		fmt.Fprintf(&b, "    wire [31:0] %s;\n", nm.output(out))
	}
	fmt.Fprintf(&b, "    integer errors = 0;\n\n")
	fmt.Fprintf(&b, "    %s dut (.clk(clk), .rst(rst)", name)
	for _, in := range ins {
		fmt.Fprintf(&b, ", .%s(%s)", nm.input(in), nm.input(in))
	}
	for _, out := range outs {
		fmt.Fprintf(&b, ", .%s(%s)", nm.output(out), nm.output(out))
	}
	fmt.Fprintf(&b, ");\n\n")
	fmt.Fprintf(&b, "    always #5 clk = ~clk;\n\n")
	fmt.Fprintf(&b, "    task check(input [31:0] got, input [31:0] want, input [127:0] sig);\n")
	fmt.Fprintf(&b, "        if (got !== want) begin\n")
	fmt.Fprintf(&b, "            $display(\"FAIL %%0s: got %%0d want %%0d\", sig, got, want);\n")
	fmt.Fprintf(&b, "            errors = errors + 1;\n")
	fmt.Fprintf(&b, "        end\n")
	fmt.Fprintf(&b, "    endtask\n\n")
	fmt.Fprintf(&b, "    initial begin\n")
	for vi, vec := range vectors {
		expected, err := sim.Run(s, vec)
		if err != nil {
			return "", fmt.Errorf("emit: vector %d: %w", vi, err)
		}
		fmt.Fprintf(&b, "        // vector %d\n", vi)
		fmt.Fprintf(&b, "        rst = 1; @(posedge clk); rst = 0;\n")
		keys := make([]string, 0, len(vec))
		for k := range vec {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "        %s = 32'd%d;\n", nm.input(k), uint32(vec[k]))
		}
		fmt.Fprintf(&b, "        repeat (%d) @(posedge clk);\n", s.CS)
		for _, out := range outs {
			fmt.Fprintf(&b, "        check(%s, 32'd%d, \"%s\");\n",
				nm.output(out), uint32(expected[out]), sanitize(out))
		}
	}
	fmt.Fprintf(&b, "        if (errors == 0) $display(\"PASS: %d vectors\");\n", len(vectors))
	fmt.Fprintf(&b, "        else $display(\"FAIL: %%0d mismatches\", errors);\n")
	fmt.Fprintf(&b, "        $finish;\n")
	fmt.Fprintf(&b, "    end\nendmodule\n")
	return b.String(), nil
}
