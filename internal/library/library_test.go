package library

import (
	"testing"
	"testing/quick"

	"repro/internal/op"
)

func TestNCRLikeValid(t *testing.T) {
	l := NCRLike()
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestEveryKindCovered(t *testing.T) {
	l := NCRLike()
	for _, k := range op.Kinds() {
		if l.Single(k) == nil {
			t.Errorf("no single-function unit for %v", k)
		}
		if len(l.UnitsFor(k)) == 0 {
			t.Errorf("UnitsFor(%v) empty", k)
		}
	}
}

func TestUnitCan(t *testing.T) {
	u := Compose(op.Add, op.Sub)
	if !u.Can(op.Add) || !u.Can(op.Sub) {
		t.Error("composed ALU missing capability")
	}
	if u.Can(op.Mul) {
		t.Error("composed ALU claims mul")
	}
	if !u.Multifunction() {
		t.Error("two-op unit not multifunction")
	}
	if u.Pipelined() {
		t.Error("composed unit should not be pipelined")
	}
}

func TestSymbols(t *testing.T) {
	l := NCRLike()
	addsub, ok := l.Lookup(ComposeName(op.Add, op.Sub))
	if !ok {
		t.Fatal("no add/sub ALU")
	}
	if got := addsub.Symbol(); got != "(+-)" {
		t.Errorf("Symbol = %q, want (+-)", got)
	}
	pmul, ok := l.Lookup("pfu_mul")
	if !ok {
		t.Fatal("no pipelined multiplier")
	}
	if got := pmul.Symbol(); got != "p(*)" {
		t.Errorf("pipelined Symbol = %q, want p(*)", got)
	}
	if pmul.Stages != 2 {
		t.Errorf("pipelined multiplier stages = %d, want 2", pmul.Stages)
	}
}

func TestMergeProfitability(t *testing.T) {
	// A multi-function ALU must cost less than the sum of its parts but
	// more than any single part — the ordering MFSA's f^ALU term relies on.
	sets := [][]op.Kind{
		{op.Add, op.Sub},
		{op.Add, op.Sub, op.Lt},
		{op.And, op.Or},
		{op.Add, op.Sub, op.Mul},
	}
	for _, s := range sets {
		merged := ComposeArea(s...)
		sum, max := 0.0, 0.0
		for _, k := range s {
			sum += ComposeArea(k)
			if a := ComposeArea(k); a > max {
				max = a
			}
		}
		if !(merged < sum) {
			t.Errorf("%v: merged %v not cheaper than separate %v", s, merged, sum)
		}
		if !(merged > max) {
			t.Errorf("%v: merged %v not dearer than largest member %v", s, merged, max)
		}
	}
	if ComposeArea() != 0 {
		t.Error("ComposeArea() != 0")
	}
}

func TestMuxAreaShape(t *testing.T) {
	l := NCRLike()
	if l.MuxArea(0) != 0 || l.MuxArea(1) != 0 {
		t.Error("0/1-input mux should be free")
	}
	if l.MuxArea(2) != l.MuxBase {
		t.Errorf("MuxArea(2) = %v, want MuxBase %v", l.MuxArea(2), l.MuxBase)
	}
	// Monotonic and concave: increments strictly positive, non-increasing.
	prev := l.MuxArea(2)
	prevInc := l.MuxArea(3) - l.MuxArea(2)
	for n := 3; n <= 40; n++ {
		cur := l.MuxArea(n)
		inc := cur - prev
		if inc <= 0 {
			t.Fatalf("MuxArea not monotonic at %d", n)
		}
		if inc > prevInc+1e-9 {
			t.Fatalf("MuxArea increment grew at %d: %v > %v", n, inc, prevInc)
		}
		prev, prevInc = cur, inc
	}
}

func TestMaxMuxStepBounds(t *testing.T) {
	l := NCRLike()
	// MaxMuxStep must dominate every actual widening increment.
	f := func(n uint8) bool {
		r := int(n%40) + 2
		return l.MuxArea(r+1)-l.MuxArea(r) <= l.MaxMuxStep()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if l.MuxArea(2)-l.MuxArea(1) > l.MaxMuxStep() {
		t.Error("MaxMuxStep misses the first step")
	}
}

func TestMaxUnitArea(t *testing.T) {
	l := NCRLike()
	max := l.MaxUnitArea()
	if max <= 0 {
		t.Fatal("MaxUnitArea <= 0")
	}
	for _, u := range l.Units() {
		if u.Area > max {
			t.Errorf("unit %s area %v exceeds MaxUnitArea %v", u.Name, u.Area, max)
		}
	}
}

func TestRestrict(t *testing.T) {
	l := NCRLike()
	sub, err := l.Restrict("fu_add", "fu_mul")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Units()) != 2 {
		t.Errorf("restricted units = %d, want 2", len(sub.Units()))
	}
	if sub.Single(op.Sub) != nil {
		t.Error("restricted library still offers sub")
	}
	if _, err := l.Restrict("nonexistent"); err == nil {
		t.Error("Restrict accepted unknown unit")
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("restricted library invalid: %v", err)
	}
}

func TestAddValidation(t *testing.T) {
	l := New("t", 700, 300, 260, 0.08)
	bad := []*Unit{
		{Name: "", Ops: []op.Kind{op.Add}, Area: 1, Stages: 1},
		{Name: "u", Ops: nil, Area: 1, Stages: 1},
		{Name: "u", Ops: []op.Kind{op.Add, op.Add}, Area: 1, Stages: 1},
		{Name: "u", Ops: []op.Kind{op.Kind(99)}, Area: 1, Stages: 1},
		{Name: "u", Ops: []op.Kind{op.Add}, Area: 0, Stages: 1},
		{Name: "u", Ops: []op.Kind{op.Add}, Area: 1, Stages: 0},
	}
	for i, u := range bad {
		if err := l.Add(u); err == nil {
			t.Errorf("case %d: bad unit accepted", i)
		}
	}
	good := &Unit{Name: "u", Ops: []op.Kind{op.Add}, Area: 1, Stages: 1}
	if err := l.Add(good); err != nil {
		t.Fatal(err)
	}
	dup := &Unit{Name: "u", Ops: []op.Kind{op.Sub}, Area: 1, Stages: 1}
	if err := l.Add(dup); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestEmptyLibraryInvalid(t *testing.T) {
	l := New("empty", 700, 300, 260, 0.08)
	if err := l.Validate(); err == nil {
		t.Error("empty library validated")
	}
}

func TestSinglePrefersCheapest(t *testing.T) {
	l := NCRLike()
	u := l.Single(op.Add)
	if u == nil {
		t.Fatal("no adder")
	}
	if u.Multifunction() {
		t.Errorf("Single(add) picked multifunction %s", u.Name)
	}
	if u.Area != singleArea[op.Add] {
		t.Errorf("Single(add).Area = %v, want %v", u.Area, singleArea[op.Add])
	}
}

func TestSingleSkipsPipelined(t *testing.T) {
	l := New("p", 700, 300, 260, 0.08)
	l.Add(&Unit{Name: "pmul", Ops: []op.Kind{op.Mul}, Area: 100, Stages: 2})
	if l.Single(op.Mul) != nil {
		t.Error("Single returned a pipelined unit")
	}
}

func TestComposeNameDeterministic(t *testing.T) {
	a := ComposeName(op.Sub, op.Add)
	b := ComposeName(op.Add, op.Sub)
	if a != b {
		t.Errorf("ComposeName order-sensitive: %q vs %q", a, b)
	}
	if a != "alu_add_sub" {
		t.Errorf("ComposeName = %q", a)
	}
}
