package library

import (
	"sort"
	"strings"

	"repro/internal/op"
)

// Single-function cell areas (µm²) for the NCR-like synthetic library.
// Absolute values are calibrated so that complete datapaths land in the
// 40 000–100 000 µm² range the paper's Table 2 reports; the orderings that
// matter to the algorithms are: multiply/divide an order of magnitude
// dearer than add/sub, comparators cheaper than adders, logic cheapest.
var singleArea = map[op.Kind]float64{
	op.Add: 2500,
	op.Sub: 2600,
	op.Mul: 16000,
	op.Div: 18000,
	op.And: 800,
	op.Or:  800,
	op.Xor: 900,
	op.Not: 500,
	op.Lt:  1200,
	op.Gt:  1200,
	op.Le:  1300,
	op.Ge:  1300,
	op.Eq:  1100,
	op.Ne:  1100,
	op.Shl: 1500,
	op.Shr: 1500,
	op.Neg: 1400,
	op.Mov: 400,
}

// ComposeArea returns the synthetic area of a multi-function ALU covering
// the given kinds: the dearest member's full area plus 30 % of each other
// member's area. This keeps every merge profitable versus separate units
// (the property MFSA's f^ALU term exploits) while still charging for added
// capability.
func ComposeArea(kinds ...op.Kind) float64 {
	if len(kinds) == 0 {
		return 0
	}
	max, sum := 0.0, 0.0
	for _, k := range kinds {
		a := singleArea[k]
		sum += a
		if a > max {
			max = a
		}
	}
	return max + 0.3*(sum-max)
}

// ComposeName builds a deterministic unit name for a capability set, e.g.
// "alu_add_sub".
func ComposeName(kinds ...op.Kind) string {
	ks := append([]op.Kind(nil), kinds...)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = kindSlug(k)
	}
	return "alu_" + strings.Join(parts, "_")
}

func kindSlug(k op.Kind) string {
	switch k {
	case op.Add:
		return "add"
	case op.Sub:
		return "sub"
	case op.Mul:
		return "mul"
	case op.Div:
		return "div"
	case op.And:
		return "and"
	case op.Or:
		return "or"
	case op.Xor:
		return "xor"
	case op.Not:
		return "not"
	case op.Lt:
		return "lt"
	case op.Gt:
		return "gt"
	case op.Le:
		return "le"
	case op.Ge:
		return "ge"
	case op.Eq:
		return "eq"
	case op.Ne:
		return "ne"
	case op.Shl:
		return "shl"
	case op.Shr:
		return "shr"
	case op.Neg:
		return "neg"
	case op.Mov:
		return "mov"
	}
	return "x"
}

// Compose builds a multi-function ALU Unit with synthetic area.
func Compose(kinds ...op.Kind) *Unit {
	ks := append([]op.Kind(nil), kinds...)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return &Unit{Name: ComposeName(ks...), Ops: ks, Area: ComposeArea(ks...), Stages: 1}
}

// combos are the multi-function ALU capability sets offered by the
// NCR-like library, covering the shapes Table 2's result columns use:
// add/sub, add/compare, add/sub/compare, logic combinations, and the
// divide-carrying ALUs of examples #1 and #2.
var combos = [][]op.Kind{
	{op.Add, op.Sub},
	{op.Add, op.Lt},
	{op.Add, op.Gt},
	{op.Sub, op.Gt},
	{op.Add, op.Sub, op.Lt},
	{op.Add, op.Sub, op.Gt},
	{op.Add, op.Sub, op.Gt, op.Ne},
	{op.Add, op.Div, op.Gt, op.Ne},
	{op.Add, op.Or},
	{op.And, op.Or},
	{op.And, op.Sub},
	{op.And, op.Div},
	{op.Eq, op.Or},
	{op.And, op.Add, op.Div},
	{op.Sub, op.Gt},
	{op.Add, op.Sub, op.Mul},
}

// NCRLike constructs the synthetic stand-in for the NCR ASIC data book:
// one single-function unit per operation kind, the multi-function ALUs
// above, and 2-stage pipelined multiplier/divider cells for structural
// pipelining. Register area is 700 µm²; a 2-input multiplexer is 300 µm²
// and each further input adds a concavely shrinking increment (see
// Library.MuxArea).
func NCRLike() *Library {
	l := New("ncr-like", 700, 300, 260, 0.08)
	for k, a := range singleArea {
		mustAdd(l, &Unit{Name: "fu_" + kindSlug(k), Ops: []op.Kind{k}, Area: a, Stages: 1})
	}
	for _, c := range combos {
		u := Compose(c...)
		if _, ok := l.Lookup(u.Name); ok {
			continue // combo list may contain duplicates
		}
		mustAdd(l, u)
	}
	// Structurally pipelined cells: same area premium as a 2-way ALU merge.
	for _, k := range []op.Kind{op.Mul, op.Div} {
		mustAdd(l, &Unit{
			Name:   "pfu_" + kindSlug(k),
			Ops:    []op.Kind{k},
			Area:   singleArea[k] * 1.25,
			Stages: 2,
		})
	}
	return l
}

// mustAdd registers a built-in unit. Add fails only on a duplicate name,
// an empty op list, or a non-positive area/stage count — none of which
// the static singleArea and combos tables above contain (the package
// tests validate the full NCRLike result), so this is unreachable short
// of an inconsistent edit to those literals: a programming error that
// must fail loudly at construction, in the regexp.MustCompile tradition,
// rather than hand every caller an error for data baked into the binary.
func mustAdd(l *Library, u *Unit) {
	if err := l.Add(u); err != nil {
		panic("library: invalid built-in unit table: " + err.Error())
	}
}
