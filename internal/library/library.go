// Package library models the cell library an allocator works against: the
// functional-unit (ALU) cells available, their capabilities and silicon
// areas, the area of a register, and the area of an r-input multiplexer.
//
// The paper evaluates against the proprietary NCR ASIC data book [21];
// NCRLike constructs a synthetic stand-in that preserves the relative cost
// structure MFSA's decisions depend on: a multi-function ALU is cheaper
// than the sum of its single-function parts but dearer than any one of
// them, and multiplexer area grows concavely (sub-linearly) with input
// count, exactly the non-linearity §4.1 calls out.
package library

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/op"
)

// Unit describes one functional-unit cell: the set of operations it can
// perform, its area, and its pipeline depth.
type Unit struct {
	Name string

	// Ops is the unit's capability set (sorted, no duplicates). A unit with
	// more than one op is a multi-function ALU in the paper's sense.
	Ops []op.Kind

	// Area is the cell's silicon area in µm².
	Area float64

	// Stages is the pipeline depth: 1 for a combinational or multi-cycle
	// (non-pipelined) unit; >1 for a structurally pipelined unit whose
	// stages can serve different operations in consecutive control steps
	// (§5.5.1).
	Stages int
}

// Can reports whether the unit can perform operation k.
func (u *Unit) Can(k op.Kind) bool {
	for _, o := range u.Ops {
		if o == k {
			return true
		}
	}
	return false
}

// Multifunction reports whether the unit performs more than one kind.
func (u *Unit) Multifunction() bool { return len(u.Ops) > 1 }

// Pipelined reports whether the unit has more than one pipeline stage.
func (u *Unit) Pipelined() bool { return u.Stages > 1 }

// Symbol renders the capability set in the paper's notation, e.g. "(+-)"
// for an add/sub ALU, with a leading "p" for a pipelined unit: "p(*)".
func (u *Unit) Symbol() string {
	var b strings.Builder
	if u.Pipelined() {
		b.WriteByte('p')
	}
	b.WriteByte('(')
	for _, o := range u.Ops {
		b.WriteString(o.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (u *Unit) String() string { return u.Symbol() }

func (u *Unit) validate() error {
	if u.Name == "" {
		return fmt.Errorf("library: unit with empty name")
	}
	if len(u.Ops) == 0 {
		return fmt.Errorf("library: unit %s: empty capability set", u.Name)
	}
	seen := make(map[op.Kind]bool)
	for _, o := range u.Ops {
		if !o.Valid() {
			return fmt.Errorf("library: unit %s: invalid op", u.Name)
		}
		if seen[o] {
			return fmt.Errorf("library: unit %s: duplicate op %v", u.Name, o)
		}
		seen[o] = true
	}
	if u.Area <= 0 {
		return fmt.Errorf("library: unit %s: area %v", u.Name, u.Area)
	}
	if u.Stages < 1 {
		return fmt.Errorf("library: unit %s: stages %d", u.Name, u.Stages)
	}
	return nil
}

// Library is a set of functional-unit cells plus register and multiplexer
// cost models.
type Library struct {
	Name string

	// RegArea is the area of one register in µm².
	RegArea float64

	// MuxBase is the area of a 2-input multiplexer; MuxStep and MuxCurve
	// shape the concave growth of MuxArea with input count.
	MuxBase, MuxStep, MuxCurve float64

	units []*Unit
}

// New returns an empty library with the given cost parameters.
func New(name string, regArea, muxBase, muxStep, muxCurve float64) *Library {
	return &Library{Name: name, RegArea: regArea, MuxBase: muxBase, MuxStep: muxStep, MuxCurve: muxCurve}
}

// Add registers a unit cell after validating it. Unit names are unique.
func (l *Library) Add(u *Unit) error {
	if err := u.validate(); err != nil {
		return err
	}
	for _, e := range l.units {
		if e.Name == u.Name {
			return fmt.Errorf("library %s: duplicate unit %s", l.Name, u.Name)
		}
	}
	ops := append([]op.Kind(nil), u.Ops...)
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	u.Ops = ops
	l.units = append(l.units, u)
	sort.Slice(l.units, func(i, j int) bool { return l.units[i].Name < l.units[j].Name })
	return nil
}

// Units returns every unit in name order. The slice must not be modified.
func (l *Library) Units() []*Unit { return l.units }

// UnitsFor returns every unit capable of performing k, in name order.
func (l *Library) UnitsFor(k op.Kind) []*Unit {
	var out []*Unit
	for _, u := range l.units {
		if u.Can(k) {
			out = append(out, u)
		}
	}
	return out
}

// Single returns the cheapest non-pipelined unit capable of k, or nil if
// the library has none. Pure-scheduling mode (MFS) treats every operation
// type as implemented by such a unit.
func (l *Library) Single(k op.Kind) *Unit {
	var best *Unit
	for _, u := range l.units {
		if !u.Can(k) || u.Pipelined() {
			continue
		}
		if best == nil || u.Area < best.Area {
			best = u
		}
	}
	return best
}

// Lookup returns the unit with the given name, if present.
func (l *Library) Lookup(name string) (*Unit, bool) {
	for _, u := range l.units {
		if u.Name == name {
			return u, true
		}
	}
	return nil, false
}

// Restrict returns a sub-library containing only the named units; the
// paper notes the user's cell library "may be restricted to some specific
// types" before running MFSA.
func (l *Library) Restrict(names ...string) (*Library, error) {
	sub := New(l.Name+"/restricted", l.RegArea, l.MuxBase, l.MuxStep, l.MuxCurve)
	for _, name := range names {
		u, ok := l.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("library %s: no unit %s", l.Name, name)
		}
		if err := sub.Add(u); err != nil {
			return nil, err
		}
	}
	return sub, nil
}

// MuxArea returns the area of an n-input multiplexer. Zero or one input
// needs no multiplexer and costs nothing. Growth with n is concave but
// strictly monotonic: each extra input costs MuxStep/(1 + MuxCurve·(n-2)),
// never less than a quarter of MuxStep, matching §4.1's observation that
// MUX cost is not linear in input count.
func (l *Library) MuxArea(n int) float64 {
	if n <= 1 {
		return 0
	}
	area := l.MuxBase
	for r := 3; r <= n; r++ {
		area += l.muxIncrement(r)
	}
	return area
}

func (l *Library) muxIncrement(r int) float64 {
	inc := l.MuxStep / (1 + l.MuxCurve*float64(r-2))
	if min := l.MuxStep / 4; inc < min {
		inc = min
	}
	return inc
}

// MaxMuxStep returns an upper bound on the area added by widening any
// multiplexer by one input — the quantity 2·max{Cost(MUX_{r+1}) −
// Cost(MUX_r)}/2 the paper uses for f^MUX_max when sizing the
// time-dominance constant C. The largest single step is the first one
// (2-input mux from nothing), i.e. MuxBase.
func (l *Library) MaxMuxStep() float64 {
	if l.MuxBase >= l.MuxStep {
		return l.MuxBase
	}
	return l.MuxStep
}

// MaxUnitArea returns the area of the dearest unit (f^ALU_max in §4.1).
func (l *Library) MaxUnitArea() float64 {
	max := 0.0
	for _, u := range l.units {
		if u.Area > max {
			max = u.Area
		}
	}
	return max
}

// Validate checks the library is internally consistent and usable:
// positive cost parameters, at least one unit, and monotonic mux areas.
func (l *Library) Validate() error {
	if len(l.units) == 0 {
		return fmt.Errorf("library %s: no units", l.Name)
	}
	if l.RegArea <= 0 || l.MuxBase <= 0 || l.MuxStep <= 0 || l.MuxCurve < 0 {
		return fmt.Errorf("library %s: non-positive cost parameters", l.Name)
	}
	for _, u := range l.units {
		if err := u.validate(); err != nil {
			return err
		}
	}
	for n := 2; n < 64; n++ {
		if l.MuxArea(n+1) <= l.MuxArea(n) {
			return fmt.Errorf("library %s: MuxArea not monotonic at %d", l.Name, n)
		}
	}
	return nil
}
