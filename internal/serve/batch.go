package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	hls "repro"
	"repro/internal/core"
	"repro/internal/dfg"
)

// batcher coalesces queued /sweep requests that share a config and a
// [lo, hi] range into one hls.SweepGraphsCtx fan-out: the multi-graph
// entry point amortizes the per-call setup and schedules all points of
// all graphs onto one worker pool, which beats running each request's
// sweep alone whenever sweeps arrive in bursts (the elliptic-filter
// replay pattern). The first request of a batch opens a short window
// (Options.BatchWindow) for companions to join; the batch runs when the
// window closes or BatchMax graphs have gathered, whichever is first,
// occupying a single worker slot.
type batcher struct {
	s       *Server
	mu      sync.Mutex
	pending map[string]*batch

	batches atomic.Uint64 // fan-outs run
	joined  atomic.Uint64 // requests carried by those fan-outs
}

// batch is one pending fan-out: the graphs gathered so far and the
// result channel of each waiting request.
type batch struct {
	key     string
	cfg     core.Config
	lo, hi  int
	graphs  []*dfg.Graph
	chans   []chan batchResult
	timer   *time.Timer
	flushed bool
}

type batchResult struct {
	points []core.SweepPoint
	err    error
}

func newBatcher(s *Server) *batcher {
	return &batcher{s: s, pending: make(map[string]*batch)}
}

// batchKeyOf groups requests that one SweepGraphsCtx call can serve:
// identical wire config (json.Marshal is deterministic — struct field
// order, sorted map keys) and identical range.
func batchKeyOf(cj ConfigJSON, lo, hi int) (string, error) {
	b, err := json.Marshal(cj)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%d:%d:%s", lo, hi, b), nil
}

// submit enqueues one graph and waits for its row of the batched
// fan-out. The wait is bounded by ctx (client disconnect, deadline,
// server Close); an abandoned request leaves the batch to complete for
// the others.
func (b *batcher) submit(ctx context.Context, d *decoded, lo, hi int, cj ConfigJSON) ([]core.SweepPoint, error) {
	s := b.s
	// Waiters count against the same admission bound as /synthesize.
	if s.queued.Add(1) > int64(s.opts.QueueDepth) {
		s.queued.Add(-1)
		return nil, ErrQueueFull
	}
	defer s.queued.Add(-1)

	key, err := batchKeyOf(cj, lo, hi)
	if err != nil {
		return nil, err
	}
	ch := make(chan batchResult, 1)

	b.mu.Lock()
	bt := b.pending[key]
	if bt == nil {
		bt = &batch{key: key, cfg: d.cfg, lo: lo, hi: hi}
		bt.timer = time.AfterFunc(s.opts.BatchWindow, func() { b.flush(bt) })
		b.pending[key] = bt
	}
	bt.graphs = append(bt.graphs, d.graph)
	bt.chans = append(bt.chans, ch)
	full := len(bt.graphs) >= s.opts.BatchMax
	b.mu.Unlock()
	if full {
		b.flush(bt)
	}

	select {
	case res := <-ch:
		return res.points, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// flush runs the batch exactly once (timer and the BatchMax trigger can
// race; the flushed flag arbitrates) on one worker slot, under the
// server context so Close cancels the fan-out itself, and distributes
// each graph's row — or the shared error — to every waiter.
func (b *batcher) flush(bt *batch) {
	b.mu.Lock()
	if bt.flushed {
		b.mu.Unlock()
		return
	}
	bt.flushed = true
	bt.timer.Stop()
	if b.pending[bt.key] == bt {
		delete(b.pending, bt.key)
	}
	graphs, chans := bt.graphs, bt.chans
	b.mu.Unlock()

	b.batches.Add(1)
	b.joined.Add(uint64(len(graphs)))

	fail := func(err error) {
		for _, ch := range chans {
			ch <- batchResult{err: err}
		}
	}
	release, err := b.s.acquireSlot(b.s.ctx)
	if err != nil {
		fail(err)
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(b.s.ctx, b.s.opts.DefaultTimeout)
	defer cancel()

	cfg := bt.cfg
	cfg.Parallelism = 0 // the batch owns its slot; fan out on the machine
	rows, err := hls.SweepGraphsCtx(ctx, graphs, cfg, bt.lo, bt.hi)
	if err != nil {
		fail(err)
		return
	}
	for i, ch := range chans {
		ch <- batchResult{points: rows[i]}
	}
}
