package serve

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/canon"
)

func key(bucket, entry byte) cacheKey {
	var k cacheKey
	k.bucket[0] = bucket
	k.entry[0] = entry
	return k
}

func TestCacheLRUByEntries(t *testing.T) {
	c := newCache(2, 0)
	c.put(key(1, 1), []byte("a"))
	c.put(key(2, 1), []byte("b"))
	if _, ok := c.get(key(1, 1)); !ok { // touch 1: now 2 is coldest
		t.Fatal("entry 1 missing")
	}
	c.put(key(3, 1), []byte("c")) // evicts 2
	if _, ok := c.get(key(2, 1)); ok {
		t.Error("coldest entry not evicted")
	}
	if _, ok := c.get(key(1, 1)); !ok {
		t.Error("recently used entry evicted")
	}
	st := c.stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries, 1 eviction", st)
	}
}

func TestCacheLRUByBytes(t *testing.T) {
	c := newCache(0, 10)
	c.put(key(1, 1), []byte("aaaa"))
	c.put(key(2, 1), []byte("bbbb"))
	c.put(key(3, 1), []byte("cccc")) // 12 bytes > 10: evicts key 1
	if _, ok := c.get(key(1, 1)); ok {
		t.Error("byte cap did not evict the coldest entry")
	}
	if st := c.stats(); st.Bytes != 8 {
		t.Errorf("bytes = %d, want 8", st.Bytes)
	}

	// A body that alone exceeds the cap is not admitted at all.
	c.put(key(4, 1), bytes.Repeat([]byte("x"), 11))
	if _, ok := c.get(key(4, 1)); ok {
		t.Error("oversized body admitted")
	}
}

func TestCacheBucketAccounting(t *testing.T) {
	c := newCache(8, 0)
	// Two entries in one bucket (same canonical hash, different
	// fingerprints — the isomorphic-rename case), one in another.
	c.put(key(1, 1), []byte("a"))
	c.put(key(1, 2), []byte("b"))
	c.put(key(2, 1), []byte("c"))
	st := c.stats()
	if st.Entries != 3 || st.Buckets != 2 {
		t.Errorf("stats = %+v, want 3 entries in 2 buckets", st)
	}

	// Replacing an entry must not double-count.
	c.put(key(1, 1), []byte("aa"))
	st = c.stats()
	if st.Entries != 3 || st.Buckets != 2 || st.Bytes != 4 {
		t.Errorf("after replace: stats = %+v, want 3 entries, 2 buckets, 4 bytes", st)
	}
}

func TestCacheReplaceUpdatesBody(t *testing.T) {
	c := newCache(4, 0)
	c.put(key(1, 1), []byte("old"))
	c.put(key(1, 1), []byte("new"))
	got, ok := c.get(key(1, 1))
	if !ok || string(got) != "new" {
		t.Errorf("got %q, %v; want new", got, ok)
	}
}

func TestCacheKeysDistinct(t *testing.T) {
	// mixKey must separate endpoints and options for the same
	// fingerprint, and stay deterministic.
	var fp canon.Hash
	fp[0] = 7
	seen := map[canon.Hash]string{}
	for _, tc := range []struct {
		name  string
		parts [][]byte
	}{
		{"synthesize", [][]byte{[]byte("synthesize"), u64bytes(0, 0)}},
		{"synthesize+netlist", [][]byte{[]byte("synthesize"), u64bytes(1, 0)}},
		{"sweep", [][]byte{[]byte("sweep"), u64bytes(1, 8)}},
		{"certify", [][]byte{[]byte("certify")}},
	} {
		k := mixKey(fp, tc.parts...)
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %s and %s", prev, tc.name)
		}
		seen[k] = tc.name
		if again := mixKey(fp, tc.parts...); again != k {
			t.Errorf("%s: mixKey not deterministic", tc.name)
		}
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newCache(64, 0)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := key(byte(i%16), byte(w))
				c.put(k, []byte(fmt.Sprintf("%d-%d", w, i)))
				c.get(k)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if st := c.stats(); st.Entries > 64 {
		t.Errorf("entries = %d, want <= 64", st.Entries)
	}
}
