package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	hls "repro"
	"repro/internal/benchmarks"
	"repro/internal/core"
	"repro/internal/dfgio"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func graphJSON(t *testing.T, ex *benchmarks.Example) json.RawMessage {
	t.Helper()
	b, err := dfgio.EncodeGraph(ex.Graph)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestSynthesizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ex := benchmarks.Facet()
	req := SynthesizeRequest{
		Graph:   graphJSON(t, ex),
		Config:  ConfigJSON{CS: ex.TimeConstraints[0]},
		Netlist: true,
	}

	resp, body := post(t, ts.URL+"/synthesize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Hlsd-Cache"); got != "miss" {
		t.Errorf("first request cache header = %q, want miss", got)
	}
	var sr SynthesizeResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.CS != ex.TimeConstraints[0] || sr.Cost.Total <= 0 || sr.Cost.NumALUs <= 0 {
		t.Errorf("implausible response: %+v", sr)
	}
	if sr.Netlist == "" {
		t.Error("netlist requested but absent")
	}
	if sr.Hash == "" || sr.Fingerprint == "" {
		t.Error("hashes missing from response")
	}

	// Same request again: a hit, served byte-identically.
	resp2, body2 := post(t, ts.URL+"/synthesize", req)
	if got := resp2.Header.Get("X-Hlsd-Cache"); got != "hit" {
		t.Errorf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cache hit body differs from fresh synthesis body")
	}

	// Different response shaping must not share the cached bytes.
	req.Netlist = false
	resp3, body3 := post(t, ts.URL+"/synthesize", req)
	if got := resp3.Header.Get("X-Hlsd-Cache"); got != "miss" {
		t.Errorf("reshaped request cache header = %q, want miss", got)
	}
	if bytes.Equal(body, body3) {
		t.Error("netlist-free response shares bytes with netlist response")
	}
}

// TestCacheHitsByteIdentical32Clients is the concurrency contract under
// -race: after one cold synthesis, 32 concurrent clients replaying the
// same request must all receive bytes identical to the fresh response,
// and the cache must have served them without re-synthesis.
func TestCacheHitsByteIdentical32Clients(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	ex := benchmarks.Diffeq()
	req := SynthesizeRequest{
		Graph:    graphJSON(t, ex),
		Config:   ConfigJSON{CS: ex.TimeConstraints[0]},
		Schedule: true,
	}
	resp, fresh := post(t, ts.URL+"/synthesize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold request: status %d: %s", resp.StatusCode, fresh)
	}
	misses := s.Metrics().Cache.Misses

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, err := json.Marshal(req)
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.Post(ts.URL+"/synthesize", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out bytes.Buffer
			if _, err := out.ReadFrom(resp.Body); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, out.Bytes())
				return
			}
			if hdr := resp.Header.Get("X-Hlsd-Cache"); hdr != "hit" {
				errs <- fmt.Errorf("cache header = %q, want hit", hdr)
				return
			}
			if !bytes.Equal(out.Bytes(), fresh) {
				errs <- fmt.Errorf("response bytes differ from fresh synthesis")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := s.Metrics()
	if m.Cache.Hits < clients {
		t.Errorf("cache hits = %d, want >= %d", m.Cache.Hits, clients)
	}
	if m.Cache.Misses != misses {
		t.Errorf("cache misses grew from %d to %d during the replay", misses, m.Cache.Misses)
	}
}

// TestIsomorphicRequestsShareBucket: a renamed copy of a cached graph
// reports the same canonical hash (same bucket) but is served by fresh
// synthesis — its response embeds its own names.
func TestIsomorphicRequestsShareBucket(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ex := benchmarks.Facet()
	cfg := ConfigJSON{CS: ex.TimeConstraints[0]}

	_, body1 := post(t, ts.URL+"/synthesize", SynthesizeRequest{Graph: graphJSON(t, ex), Config: cfg})

	// Rename every primary input (quoted whole tokens, so the JSON keys
	// and the arg references stay consistent).
	renamed := graphJSON(t, ex)
	for i := 1; i <= 8; i++ {
		renamed = bytes.ReplaceAll(renamed,
			[]byte(fmt.Sprintf(`"i%d"`, i)), []byte(fmt.Sprintf(`"z%d"`, i)))
	}
	if bytes.Equal(renamed, graphJSON(t, ex)) {
		t.Fatal("rename had no effect")
	}
	resp2, body2 := post(t, ts.URL+"/synthesize", SynthesizeRequest{Graph: renamed, Config: cfg})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("renamed request: status %d: %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Hlsd-Cache"); got != "miss" {
		t.Errorf("renamed request cache header = %q, want miss (names differ)", got)
	}
	var r1, r2 SynthesizeResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Hash != r2.Hash {
		t.Errorf("isomorphic graphs in different buckets: %s != %s", r1.Hash, r2.Hash)
	}
	if r1.Fingerprint == r2.Fingerprint {
		t.Error("renamed graph shares a fingerprint with the original")
	}
	if r1.Cost != r2.Cost {
		t.Errorf("isomorphic graphs cost differently: %+v != %+v", r1.Cost, r2.Cost)
	}
}

// TestSweepBatching: concurrent /sweep requests over the same config
// and range coalesce into fewer SweepGraphsCtx fan-outs, and every
// client's points match a direct hls.Sweep of its graph.
func TestSweepBatching(t *testing.T) {
	s, ts := newTestServer(t, Options{BatchWindow: 20 * time.Millisecond})
	exs := []*benchmarks.Example{benchmarks.Facet(), benchmarks.Diffeq(), benchmarks.ARLattice()}
	const lo, hi = 1, 8

	type result struct {
		ex   *benchmarks.Example
		body []byte
		code int
	}
	results := make(chan result, 3*len(exs))
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, ex := range exs {
			wg.Add(1)
			go func(ex *benchmarks.Example) {
				defer wg.Done()
				req := SweepRequest{Graph: graphJSON(t, ex), CsLo: lo, CsHi: hi}
				b, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(b))
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				var out bytes.Buffer
				out.ReadFrom(resp.Body)
				results <- result{ex, out.Bytes(), resp.StatusCode}
			}(ex)
		}
	}
	wg.Wait()
	close(results)

	for res := range results {
		if res.code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", res.ex.Name, res.code, res.body)
		}
		var sr SweepResponse
		if err := json.Unmarshal(res.body, &sr); err != nil {
			t.Fatal(err)
		}
		want, err := hls.Sweep(res.ex.Graph, core.Config{}, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(sr.Points) != len(want) {
			t.Fatalf("%s: %d points, want %d", res.ex.Name, len(sr.Points), len(want))
		}
		for i, p := range sr.Points {
			w := want[i]
			if p.CS != w.CS || p.Cost.Total != w.Cost.Total || p.Pareto != w.Pareto {
				t.Errorf("%s point %d: got %+v, want %+v", res.ex.Name, i, p, w)
			}
		}
	}

	m := s.Metrics()
	if m.BatchedReqs == 0 {
		t.Fatal("no requests went through the batcher")
	}
	if m.Batches >= m.BatchedReqs {
		t.Errorf("no coalescing: %d batches for %d batched requests (cache absorbed the rest)",
			m.Batches, m.BatchedReqs)
	}
}

func TestSweepInfeasibleRangeRejectedAlone(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ex := benchmarks.Facet() // critical path 4
	req := SweepRequest{Graph: graphJSON(t, ex), CsLo: 1, CsHi: 3}
	resp, body := post(t, ts.URL+"/sweep", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "critical path") {
		t.Errorf("error body %q does not name the critical path", body)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ex := benchmarks.Facet()
	cases := []struct {
		name string
		req  SynthesizeRequest
	}{
		{"neither graph nor source", SynthesizeRequest{Config: ConfigJSON{CS: 4}}},
		{"both graph and source", SynthesizeRequest{
			Graph: graphJSON(t, ex), Source: "out y\ny = a + b\n", Config: ConfigJSON{CS: 4}}},
		{"malformed graph", SynthesizeRequest{Graph: json.RawMessage(`{"nodes": 3}`), Config: ConfigJSON{CS: 4}}},
		{"too many weights", SynthesizeRequest{
			Graph: graphJSON(t, ex), Config: ConfigJSON{CS: 4, Weights: []float64{1, 2, 3, 4, 5}}}},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+"/synthesize", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
	}

	getResp, err := http.Get(ts.URL + "/synthesize")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /synthesize: status %d, want 405", getResp.StatusCode)
	}
}

func TestSynthesizeFromSource(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	src := "design fromsrc\ninput a, b, c\ny = a * b + c\n"
	req := SynthesizeRequest{Source: src, Config: ConfigJSON{CS: 4}}
	resp, body := post(t, ts.URL+"/synthesize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	resp2, body2 := post(t, ts.URL+"/synthesize", req)
	if got := resp2.Header.Get("X-Hlsd-Cache"); got != "hit" {
		t.Errorf("repeat source request cache header = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("source-request hit bytes differ")
	}
}

func TestCertifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ex := benchmarks.Facet()
	req := SynthesizeRequest{Graph: graphJSON(t, ex), Config: ConfigJSON{CS: ex.TimeConstraints[0]}}
	resp, body := post(t, ts.URL+"/certify", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr CertifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	var cert struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(cr.Certificate, &cert); err != nil {
		t.Fatal(err)
	}
	if cert.Status != "certified" {
		t.Errorf("certificate status = %q, want certified (%s)", cert.Status, cr.Certificate)
	}
}

// TestQueueBounds exercises the admission control directly: with one
// worker slot held, one request may wait, and the next is refused.
func TestQueueBounds(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()

	release, err := s.acquireSlot(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	waited := make(chan error, 1)
	go func() {
		// Occupies the single queue space until the slot frees.
		rel, err := s.acquire(context.Background())
		if err == nil {
			rel()
		}
		waited <- err
	}()

	// Give the waiter time to enter the queue, then overflow it.
	deadline := time.Now().Add(time.Second)
	for s.queued.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow acquire: err = %v, want ErrQueueFull", err)
	}

	release()
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire failed after slot freed: %v", err)
	}
}

// TestShutdownCancelsQueued is the drain criterion: a request waiting
// in the queue observes Close and fails out in well under 100ms.
func TestShutdownCancelsQueued(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	release, err := s.acquireSlot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	waited := make(chan error, 1)
	go func() {
		_, err := s.acquire(context.Background())
		waited <- err
	}()
	deadline := time.Now().Add(time.Second)
	for s.queued.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	s.Close()
	select {
	case err := <-waited:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("queued request err = %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Errorf("queued request took %v to observe Close, want < 100ms", d)
		}
	case <-time.After(time.Second):
		t.Fatal("queued request never observed Close")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ex := benchmarks.Facet()
	post(t, ts.URL+"/synthesize", SynthesizeRequest{
		Graph: graphJSON(t, ex), Config: ConfigJSON{CS: ex.TimeConstraints[0]}})

	resp, body := func() (*http.Response, []byte) {
		r, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(r.Body)
		return r, out.Bytes()
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests["synthesize"] != 1 {
		t.Errorf("synthesize requests = %d, want 1", m.Requests["synthesize"])
	}
	if m.Cache.Misses != 1 || m.Cache.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 miss / 1 entry", m.Cache)
	}
	if m.Served == 0 {
		t.Error("latency sample count is zero after a served request")
	}
}
