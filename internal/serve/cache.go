package serve

import (
	"container/list"
	"sync"

	"repro/internal/canon"
)

// cacheKey identifies one cached response: the canonical bucket the
// request falls into plus the strict entry key (fingerprint mixed with
// the endpoint and its response-shaping options). Isomorphic requests
// share a bucket; only byte-identical requests share an entry.
type cacheKey struct {
	bucket canon.Hash
	entry  canon.Hash
}

// cacheEntry is one stored response body on the LRU list.
type cacheEntry struct {
	key  cacheKey
	body []byte
	elem *list.Element
}

// CacheStats is the cache section of the /metrics report.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Buckets   int    `json:"buckets"`
	Bytes     int64  `json:"bytes"`
}

// cache is the bounded LRU result cache. Both knobs evict from the cold
// end: MaxEntries caps the entry count, MaxBytes the sum of stored body
// sizes. A zero knob means that dimension is unbounded (the server
// always sets at least one).
type cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64

	ll      *list.List // *cacheEntry; front = most recently used
	entries map[cacheKey]*cacheEntry
	buckets map[canon.Hash]int // live entries per canonical bucket

	bytes                   int64
	hits, misses, evictions uint64
}

func newCache(maxEntries int, maxBytes int64) *cache {
	return &cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		entries:    make(map[cacheKey]*cacheEntry),
		buckets:    make(map[canon.Hash]int),
	}
}

// get returns the stored body for key and marks it most recently used.
// The returned slice is the stored one; callers must not mutate it.
func (c *cache) get(key cacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(e.elem)
	return e.body, true
}

// put stores body under key, replacing any previous entry, and evicts
// from the cold end until both knobs are satisfied. A body larger than
// MaxBytes on its own is not cached at all.
func (c *cache) put(key cacheKey, body []byte) {
	if c.maxBytes > 0 && int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		c.ll.MoveToFront(e.elem)
	} else {
		e := &cacheEntry{key: key, body: body}
		e.elem = c.ll.PushFront(e)
		c.entries[key] = e
		c.buckets[key.bucket]++
		c.bytes += int64(len(body))
	}
	for (c.maxEntries > 0 && len(c.entries) > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		c.evictOldest()
	}
}

// evictOldest drops the least recently used entry. Caller holds c.mu.
func (c *cache) evictOldest() {
	back := c.ll.Back()
	if back == nil {
		return
	}
	e := back.Value.(*cacheEntry)
	c.ll.Remove(back)
	delete(c.entries, e.key)
	c.bytes -= int64(len(e.body))
	c.buckets[e.key.bucket]--
	if c.buckets[e.key.bucket] == 0 {
		delete(c.buckets, e.key.bucket)
	}
	c.evictions++
}

func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Buckets:   len(c.buckets),
		Bytes:     c.bytes,
	}
}
